// Command dmstream is the progressive-streaming replay client: it walks
// a deterministic camera flyover against a tile server's /stream
// endpoint, decodes every answer batch by batch, and reports the wire
// cost per frame — bytes to the first renderable mesh vs bytes to the
// exact answer — plus flyover-wide means.
//
// Usage:
//
//	dmstream [-addr host:port] [-dataset highland|crater] [-size N] [-seed S]
//	         [-frames N] [-overlap F] [-lod P] [-drift F] [-resume-demo]
//
// With no -addr, dmstream self-hosts: it builds the dataset, starts a
// serve.Server on a loopback port, and replays against it — the
// one-command demo. Point -addr at a running tileserver (or a cluster
// front) to replay against real infrastructure.
//
// -resume-demo additionally exercises the resume protocol on the first
// frame: the client drops the connection after the first batch, then
// re-requests with resume=<last applied batch> and verifies the
// continuation completes to the same exact mesh.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"text/tabwriter"
	"time"

	"dmesh"
	"dmesh/internal/serve"
	"dmesh/internal/stream"
	"dmesh/internal/workload"
)

func main() {
	if err := mainErr(); err != nil {
		fmt.Fprintln(os.Stderr, "dmstream:", err)
		os.Exit(1)
	}
}

func mainErr() error {
	var (
		addr       = flag.String("addr", "", "tile server address (empty = self-host a server)")
		dataset    = flag.String("dataset", "highland", "dataset for the self-hosted server: highland or crater")
		size       = flag.Int("size", 129, "grid side of the self-hosted dataset")
		seed       = flag.Int64("seed", 1, "generation seed of the self-hosted dataset")
		frames     = flag.Int("frames", 16, "flyover frames to replay")
		overlap    = flag.Float64("overlap", 0.6, "viewport overlap between consecutive frames")
		lod        = flag.Float64("lod", 0.95, "target LOD percentile in [0, 1]")
		drift      = flag.Float64("drift", 0.1, "lateral camera drift fraction")
		resumeDemo = flag.Bool("resume-demo", false, "drop frame 0 after its first batch and complete it via resume")
	)
	flag.Parse()

	base := *addr
	if base == "" {
		terrain, err := dmesh.Build(dmesh.Config{Dataset: *dataset, Size: *size, Seed: *seed})
		if err != nil {
			return err
		}
		s, err := serve.New(serve.Config{Terrain: terrain})
		if err != nil {
			return err
		}
		hostport, err := s.Start("127.0.0.1:0", false)
		if err != nil {
			return err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		}()
		base = hostport
		fmt.Printf("self-hosted %s (%dx%d) at %s\n", *dataset, *size, *size, base)
	}
	base = "http://" + trimScheme(base)

	planes := workload.CameraPath{
		Frames:  *frames,
		Overlap: *overlap,
		Drift:   *drift,
		Seed:    *seed,
	}.Planes()
	fmt.Printf("replaying %d frames (overlap %.2f, realized %.2f, LOD p%.0f) against %s\n",
		len(planes), *overlap, workload.MeanOverlap(planes), 100**lod, base)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "frame\tbatches\tfirst-frame B\texact B\tfirst/exact\tverts\ttris\tms")
	var sumFirst, sumExact float64
	for i, qp := range planes {
		r := qp.R
		url := fmt.Sprintf("%s/stream?x0=%g&y0=%g&x1=%g&y1=%g&lod=%g", base, r.MinX, r.MinY, r.MaxX, r.MaxY, *lod)
		start := time.Now()
		dec := stream.NewDecoder()
		if err := fetchStream(dec, url, *resumeDemo && i == 0); err != nil {
			return fmt.Errorf("frame %d: %w", i, err)
		}
		mesh := dec.Mesh()
		sumFirst += float64(dec.BytesToFirstFrame())
		sumExact += float64(dec.BytesRead())
		fmt.Fprintf(w, "%d\t%d\t%d\t%d\t%.1f%%\t%d\t%d\t%.1f\n",
			i, dec.NumBatches(), dec.BytesToFirstFrame(), dec.BytesRead(),
			100*float64(dec.BytesToFirstFrame())/float64(dec.BytesRead()),
			len(mesh.Vertices), len(mesh.Triangles),
			float64(time.Since(start))/float64(time.Millisecond))
	}
	if err := w.Flush(); err != nil {
		return err
	}
	n := float64(len(planes))
	fmt.Printf("mean bytes to first frame %.0f, to exact %.0f (%.1f%%)\n",
		sumFirst/n, sumExact/n, 100*sumFirst/sumExact)
	return nil
}

// fetchStream drives one /stream request to completion. With dropFirst,
// it cuts the connection after the first applied batch and finishes
// through a second request at resume=LastApplied() — the exact recovery
// a client performs after a broken transfer.
func fetchStream(dec *stream.Decoder, url string, dropFirst bool) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	if err := dec.Attach(resp.Body); err != nil {
		resp.Body.Close()
		return err
	}
	for !dec.Done() {
		if _, _, err := dec.Next(); err != nil {
			resp.Body.Close()
			return err
		}
		if dropFirst && dec.LastApplied() == 0 {
			resp.Body.Close() // simulate a broken transfer after batch 0
			fmt.Printf("  resume demo: dropped after batch 0, resuming at %d\n", dec.LastApplied())
			return fetchStream(dec, fmt.Sprintf("%s&resume=%d", url, dec.LastApplied()), false)
		}
	}
	resp.Body.Close()
	return nil
}

// trimScheme accepts both "host:port" and "http://host:port" -addr
// spellings.
func trimScheme(addr string) string {
	for _, p := range []string{"http://", "https://"} {
		if len(addr) > len(p) && addr[:len(p)] == p {
			return addr[len(p):]
		}
	}
	return addr
}
