// Command dmquery runs ad-hoc multiresolution queries against a store
// directory written by cmd/dmbuild, reporting the retrieved mesh and its
// disk-access cost, optionally exporting the mesh as a Wavefront OBJ file.
//
// Usage:
//
//	dmquery -store DIR -roi x0,y0,x1,y1 -lod 0.001            # uniform LOD
//	dmquery -store DIR -roi x0,y0,x1,y1 -emin 0.0005 -emax 0.01  # query plane
//	dmquery ... -obj mesh.obj                                  # export
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"dmesh"
	"dmesh/internal/geom"
	"dmesh/internal/mesh"
)

func main() {
	var (
		storeDir = flag.String("store", "", "store directory from dmbuild (required)")
		roiStr   = flag.String("roi", "0.25,0.25,0.75,0.75", "region of interest: x0,y0,x1,y1 in [0,1]")
		lod      = flag.Float64("lod", -1, "uniform LOD value (viewpoint-independent query)")
		emin     = flag.Float64("emin", -1, "query-plane minimum LOD (viewpoint-dependent)")
		emax     = flag.Float64("emax", -1, "query-plane maximum LOD (viewpoint-dependent)")
		multi    = flag.Bool("multi", false, "use the multi-base optimizer for plane queries")
		explain  = flag.Bool("explain", false, "print the multi-base plan for a plane query instead of executing it")
		viewer   = flag.String("viewer", "", "radial query viewer position as x,y (with -scale)")
		scale    = flag.Float64("scale", 0, "radial query LOD-per-distance scale")
		objPath  = flag.String("obj", "", "write the mesh as Wavefront OBJ to this path")
	)
	flag.Parse()
	if *storeDir == "" {
		fmt.Fprintln(os.Stderr, "dmquery: -store is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*storeDir, *roiStr, *lod, *emin, *emax, *multi, *explain, *viewer, *scale, *objPath); err != nil {
		fmt.Fprintln(os.Stderr, "dmquery:", err)
		os.Exit(1)
	}
}

func parseROI(s string) (dmesh.Rect, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 {
		return dmesh.Rect{}, fmt.Errorf("roi must be x0,y0,x1,y1, got %q", s)
	}
	var v [4]float64
	for i, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return dmesh.Rect{}, fmt.Errorf("roi component %d: %w", i, err)
		}
		v[i] = f
	}
	return dmesh.NewRect(v[0], v[1], v[2], v[3]), nil
}

func run(storeDir, roiStr string, lod, emin, emax float64, multi, explain bool, viewer string, scale float64, objPath string) error {
	roi, err := parseROI(roiStr)
	if err != nil {
		return err
	}
	store, err := dmesh.OpenDMStore(storeDir)
	if err != nil {
		return err
	}
	defer store.Close()

	// -explain plans without executing, so it skips the measured run.
	if explain && emin >= 0 && emax >= emin {
		qp := dmesh.QueryPlane{R: roi, EMin: emin, EMax: emax, Axis: 1}
		model, merr := dmesh.NewCostModel(store)
		if merr != nil {
			return merr
		}
		plan, perr := store.ExplainPlane(qp, model, 0)
		if perr != nil {
			return perr
		}
		fmt.Print(plan)
		return nil
	}

	var res *dmesh.Result
	da, err := dmesh.MeasuredRun(store, func() error {
		var qerr error
		switch {
		case viewer != "":
			parts := strings.Split(viewer, ",")
			if len(parts) != 2 || scale <= 0 {
				return fmt.Errorf("radial query needs -viewer x,y and a positive -scale")
			}
			vx, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
			vy, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
			if err1 != nil || err2 != nil {
				return fmt.Errorf("bad -viewer %q", viewer)
			}
			res, qerr = store.Radial(roi, geom.Point2{X: vx, Y: vy}, scale, 8)
		case lod >= 0:
			res, qerr = store.ViewpointIndependent(roi, lod)
		case emin >= 0 && emax >= emin:
			qp := dmesh.QueryPlane{R: roi, EMin: emin, EMax: emax, Axis: 1}
			if multi {
				model, merr := dmesh.NewCostModel(store)
				if merr != nil {
					return merr
				}
				res, qerr = store.MultiBase(qp, model, 0)
			} else {
				res, qerr = store.SingleBase(qp)
			}
		default:
			return fmt.Errorf("specify -lod for a uniform query or -emin/-emax for a plane query")
		}
		return qerr
	})
	if err != nil {
		return err
	}

	fmt.Printf("vertices:      %d\n", len(res.Vertices))
	fmt.Printf("edges:         %d\n", len(res.Edges))
	fmt.Printf("triangles:     %d\n", len(res.Triangles))
	fmt.Printf("records read:  %d (in %d range quer%s)\n", res.FetchedRecords, res.Strips, plural(res.Strips, "y", "ies"))
	fmt.Printf("disk accesses: %d\n", da)
	bd := store.Breakdown()
	fmt.Printf("  data %d, index %d, id-index %d, overflow %d\n", bd.Data, bd.Index, bd.IDIndex, bd.Overflow)

	if objPath != "" {
		if err := writeOBJ(res, objPath); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", objPath)
	}
	return nil
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// writeOBJ converts the query result into a mesh.Mesh (remapping sparse
// vertex IDs to dense indices) and writes it as OBJ.
func writeOBJ(res *dmesh.Result, path string) error {
	ids := make([]int64, 0, len(res.Vertices))
	for id := range res.Vertices {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	remap := make(map[int64]int64, len(ids))
	m := &mesh.Mesh{Positions: make([]geom.Point3, len(ids))}
	for i, id := range ids {
		remap[id] = int64(i)
		m.Positions[i] = res.Vertices[id]
	}
	for _, t := range res.Triangles {
		m.Tris = append(m.Tris, geom.Triangle{A: remap[t.A], B: remap[t.B], C: remap[t.C]})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return m.WriteOBJ(f)
}
