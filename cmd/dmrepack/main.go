// Command dmrepack rewrites an existing Direct Mesh store directory
// under a different physical layout — the offline re-layout pass. It
// reads every node record (including overflowed connection lists) out of
// the source store, recomputes the record order for the target layout,
// and writes a fresh, independently openable store. Queries against the
// repacked store return byte-identical answers; only page placement —
// and therefore disk accesses — changes.
//
// Usage:
//
//	dmrepack -src ./stores/highland -out ./stores/highland-connect [-layout connect]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dmesh"
)

func main() {
	var (
		src     = flag.String("src", "", "source store directory (required)")
		out     = flag.String("out", "", "output directory for the repacked store (required)")
		layoutF = flag.String("layout", "connect", "target layout: str, hilbert, rowmajor, connect, or packed")
	)
	flag.Parse()
	if *src == "" || *out == "" {
		fmt.Fprintln(os.Stderr, "dmrepack: -src and -out are required")
		flag.Usage()
		os.Exit(2)
	}
	layout, err := dmesh.ParseLayout(*layoutF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmrepack:", err)
		os.Exit(2)
	}
	if err := run(*src, *out, layout); err != nil {
		fmt.Fprintln(os.Stderr, "dmrepack:", err)
		os.Exit(1)
	}
}

func run(src, out string, layout dmesh.Layout) error {
	s, err := dmesh.OpenDMStore(src)
	if err != nil {
		return err
	}
	defer s.Close()
	fmt.Printf("repacking %s (%s layout, %d nodes, %d+%d data/overflow pages) -> %s (%s layout)...\n",
		src, s.Layout(), s.NumNodes(), s.DataPages(), s.OverflowPages(), out, layout)

	start := time.Now()
	rp, err := dmesh.RepackDMStore(s, dmesh.StorePools{Layout: layout}, out)
	if err != nil {
		return err
	}
	defer rp.Close()
	fmt.Printf("  done (%.1fs): %d nodes, %d+%d data/overflow pages\n",
		time.Since(start).Seconds(), rp.NumNodes(), rp.DataPages(), rp.OverflowPages())
	return nil
}
