// Command dmbuild generates a synthetic terrain, simplifies it into a
// Direct Mesh dataset, and writes the disk-resident store (heap file,
// R*-tree, B+-tree, overflow file) into a directory that cmd/dmquery and
// the examples can open.
//
// Usage:
//
//	dmbuild -out ./stores/highland [-dataset highland|crater] [-size N] [-seed S]
//	        [-layout str|hilbert|rowmajor|connect|packed]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"dmesh"
)

func main() {
	var (
		out     = flag.String("out", "", "output directory for the store (required)")
		dataset = flag.String("dataset", "highland", "terrain generator: highland or crater")
		size    = flag.Int("size", 257, "heightfield side length (size*size points)")
		seed    = flag.Int64("seed", 1, "generation seed")
		demPath = flag.String("dem", "", "build from an ESRI ASCII grid DEM file instead of generating")
		xyzPath = flag.String("xyz", "", "build from an XYZ survey-point file (Delaunay-triangulated)")
		mtmPath = flag.String("mtm", "", "also save the collapse sequence in compact MTM format to this path")
		layoutF = flag.String("layout", "str", "physical record layout: str, hilbert, rowmajor, connect, or packed")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "dmbuild: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	layout, err := dmesh.ParseLayout(*layoutF)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmbuild:", err)
		os.Exit(2)
	}
	if err := run(*out, *dataset, *size, *seed, *demPath, *xyzPath, *mtmPath, layout); err != nil {
		fmt.Fprintln(os.Stderr, "dmbuild:", err)
		os.Exit(1)
	}
}

func run(out, dataset string, size int, seed int64, demPath, xyzPath, mtmPath string, layout dmesh.Layout) error {
	start := time.Now()
	var t *dmesh.Terrain
	var err error
	switch {
	case demPath != "" && xyzPath != "":
		return fmt.Errorf("-dem and -xyz are mutually exclusive")
	case demPath != "":
		fmt.Printf("reading DEM %s...\n", demPath)
		f, err2 := os.Open(demPath)
		if err2 != nil {
			return err2
		}
		g, err2 := dmesh.ReadASCIIGrid(f)
		f.Close()
		if err2 != nil {
			return err2
		}
		t, err = dmesh.BuildFromGrid(g, dmesh.Config{Seed: seed})
	case xyzPath != "":
		fmt.Printf("reading points %s...\n", xyzPath)
		f, err2 := os.Open(xyzPath)
		if err2 != nil {
			return err2
		}
		pts, err2 := dmesh.ReadXYZ(f)
		f.Close()
		if err2 != nil {
			return err2
		}
		t, err = dmesh.BuildFromPoints(pts, dmesh.Config{Seed: seed})
	default:
		fmt.Printf("generating %s terrain (%dx%d points)...\n", dataset, size, size)
		t, err = dmesh.Build(dmesh.Config{Dataset: dataset, Size: size, Seed: seed})
	}
	if err != nil {
		return err
	}
	fmt.Printf("  %d points, %d multiresolution nodes, max LOD %.4g (%.1fs)\n",
		t.NumPoints(), t.Dataset.Tree.Len(), t.MaxLOD(), time.Since(start).Seconds())

	st := t.Sequence.Stats()
	fmt.Printf("  connection lists: avg %.1f similar-LOD (max %d), avg %.1f total\n",
		st.AvgSimilarLOD, st.MaxSimilarLOD, st.AvgTotal)

	fmt.Printf("writing store to %s (%s layout)...\n", out, layout)
	start = time.Now()
	store, err := t.BuildDMStoreAtWithPools(dmesh.StorePools{Layout: layout}, out)
	if err != nil {
		return err
	}
	defer store.Close()
	fmt.Printf("  done (%.1fs); LOD percentiles: p50=%.4g p90=%.4g p99=%.4g\n",
		time.Since(start).Seconds(),
		t.LODPercentile(0.5), t.LODPercentile(0.9), t.LODPercentile(0.99))

	if mtmPath != "" {
		f, err := os.Create(mtmPath)
		if err != nil {
			return err
		}
		if err := t.SaveSequence(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		st, err := os.Stat(mtmPath)
		if err != nil {
			return err
		}
		fmt.Printf("wrote compact MTM %s (%d bytes, %.1f bytes/point)\n",
			mtmPath, st.Size(), float64(st.Size())/float64(t.NumPoints()))
	}
	return nil
}
