// Command dmbench reproduces the paper's evaluation: it builds the two
// benchmark datasets, runs the workload behind every figure of Section 6,
// and prints the measured series (average cold-cache disk accesses).
//
// Usage:
//
//	dmbench [-fig all|6a|6b|6c|6d|8a|8b|8c|8d|8e|8f|conn|throughput|flyover|tilecache|faults|dabreakdown|layoutcmp|cluster|stream|obstrace]
//	        [-size N] [-size2 N] [-seed S] [-locations L] [-layout str|hilbert|rowmajor|connect|packed]
//	        [-resultdir D] [-cpuprofile F] [-memprofile F]
//
// -fig throughput is not a paper figure: it measures concurrent query
// serving against a sharded buffer pool (queries/sec and speedup by
// worker count, with per-query disk accesses held constant).
//
// -fig flyover is not a paper figure either: it measures the
// temporal-coherence extension — mean disk accesses per frame along a
// camera path, full re-query vs the incremental (delta) engine, swept
// over the frame-to-frame overlap on a memory-constrained store.
//
// -fig tilecache measures the shared mesh-tile cache: mean disk accesses
// per query on a skewed (hot-spot) multi-client workload, direct engine
// vs cache-served, with cold-miss and singleflight-dedup counts.
//
// -fig faults is the chaos run: the hot-spot workload served off a
// checksummed store whose (simulated) disk fails reads and flips bits at
// a sweep of fault rates, reporting error rate, degraded-answer rate
// (retry-once), and DA overhead — with zero panics and zero answers that
// differ from a clean oracle store.
//
// -fig dabreakdown is the telemetry figure: the paper's query mix traced
// phase by phase (index descent, record fetch, overflow walks,
// triangulation, planning, tile materialization, stitching), with each
// query's per-phase disk accesses verified to sum exactly to its
// independently counted session total.
//
// -fig layoutcmp is the physical-layout figure: the dabreakdown query
// mix measured before (the -layout flag's layout) and after (the
// connectivity-clustered layout) on the same terrain, reported side by
// side per phase and written to results/BENCH_layout.json. The headline
// number is the overflow_walk column: the connect layout co-allocates
// overflow chains with their owners, so those reads become cache hits.
// The same run then sweeps every layout — the fixed encodings, connect,
// and the compressed packed encoding — and writes the footprint/density/
// DA table to results/BENCH_compression.json; its headline is the packed
// layout's data-heap DA and records-per-page against connect.
//
// -fig cluster is the scale-out figure: the hot-spot workload answered
// by an in-process sharded tile-serving cluster (consistent-hash
// routing, hot-tile replication, fan-out stitching over real HTTP),
// swept over shard counts. It reports QPS, speedup, tail latency, and
// per-shard disk accesses against the single-node tile-cache steady
// state, and writes the series to results/BENCH_cluster.json. Every
// cluster answer is cross-checked against a single-node oracle.
//
// -fig stream is the progressive-streaming figure: every frame of a
// camera flyover answered as a coarse-to-fine batch stream (the /stream
// wire format), reporting mean bytes to the first renderable frame vs
// bytes to the exact answer, the per-batch byte schedule, and the
// overhead against shipping the exact answer in one shot. Every stream
// is decoded back and verified exactly equal to the direct query; the
// series goes to results/BENCH_stream.json.
//
// -fig obstrace is the distributed-tracing figure: the cluster query
// mix traced end to end over the wire (shard phase traces spliced into
// the router's fan-out spans), decomposed per hop and per phase, with
// the cross-hop accounting invariant — root trace == Σ shard response
// headers == Σ spliced shard spans — hard-checked on every single
// query, including with a shard fail-stopped mid-workload. The legs go
// to results/BENCH_obstrace.json.
//
// -layout selects the DM store's physical record layout for every
// figure; layoutcmp uses it as the "before" side.
//
// -resultdir redirects the results/ JSON outputs (the benchdiff
// regression gate points it at a scratch directory).
//
// -cpuprofile and -memprofile write pprof profiles of whatever figure
// selection ran (go tool pprof reads them).
//
// The 2M-point and 17M-point datasets of the paper are represented by
// synthetic DEMs ("highland" and "crater"); -size and -size2 set their
// grid side lengths. Defaults are laptop-scale; the figure shapes are
// scale-invariant in this regime (see EXPERIMENTS.md).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"text/tabwriter"

	"dmesh"
	"dmesh/internal/experiments"
	"dmesh/internal/obs"
	"dmesh/internal/workload"
)

func main() {
	if err := mainErr(); err != nil {
		fmt.Fprintln(os.Stderr, "dmbench:", err)
		os.Exit(1)
	}
}

// mainErr holds the flag parsing and profile lifecycle; keeping the
// deferred profile flushes out of main lets them run even when the
// selected figure fails.
func mainErr() error {
	var (
		fig       = flag.String("fig", "all", "figure to reproduce (6a..6d, 8a..8f, conn, throughput, flyover, tilecache, faults, dabreakdown, layoutcmp, cluster, stream, obstrace, all)")
		layoutF   = flag.String("layout", "str", "physical DM-store layout: str, hilbert, rowmajor, connect, or packed")
		resultDir = flag.String("resultdir", "results", "directory the BENCH_*.json figure outputs go to")
		size      = flag.Int("size", 257, "grid side of the highland dataset (the paper's 2M-point terrain)")
		size2     = flag.Int("size2", 513, "grid side of the crater dataset (the paper's 17M-point terrain)")
		seed      = flag.Int64("seed", 1, "generation seed")
		locations = flag.Int("locations", 20, "random ROI placements averaged per measurement")
		csvOut    = flag.Bool("csv", false, "emit figures as CSV instead of aligned tables")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	layout, err := dmesh.ParseLayout(*layoutF)
	if err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dmbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dmbench:", err)
			}
		}()
	}
	env := &benchEnv{
		cfg:       workload.Config{Locations: *locations, Seed: *seed},
		size:      *size,
		size2:     *size2,
		seed:      *seed,
		csv:       *csvOut,
		layout:    layout,
		resultDir: *resultDir,
	}
	return run(env, strings.ToLower(*fig))
}

// benchEnv is the shared setup every figure runner draws on: flag-derived
// parameters plus lazily built, memoized dataset bundles — a runner only
// pays for the datasets it actually touches.
type benchEnv struct {
	cfg         workload.Config
	size, size2 int
	seed        int64
	csv         bool
	layout      dmesh.Layout
	resultDir   string

	bundles map[string]*experiments.Bundle
}

// resultPath places one BENCH_*.json output under -resultdir.
func (e *benchEnv) resultPath(name string) string {
	return filepath.Join(e.resultDir, name)
}

// bundle builds (once) and returns the named dataset bundle.
func (e *benchEnv) bundle(name string) (*experiments.Bundle, error) {
	if b, ok := e.bundles[name]; ok {
		return b, nil
	}
	size := e.size
	if name == "crater" {
		size = e.size2
	}
	fmt.Fprintf(os.Stderr, "building %s dataset (%dx%d points, %s layout)...\n", name, size, size, e.layout)
	b, err := experiments.BuildBundleLayout(name, size, e.seed, e.layout)
	if err != nil {
		return nil, err
	}
	if e.bundles == nil {
		e.bundles = make(map[string]*experiments.Bundle)
	}
	e.bundles[name] = b
	return b, nil
}

// paperFigure adapts one Fig6/Fig8 measurement into a runner: build the
// dataset, run the workload, print the series table (or CSV).
func paperFigure(id, dataset string, f func(*experiments.Bundle, workload.Config) (*experiments.Figure, error)) figureRunner {
	return figureRunner{id: id, run: func(e *benchEnv) error {
		b, err := e.bundle(dataset)
		if err != nil {
			return err
		}
		fig, err := f(b, e.cfg)
		if err != nil {
			return fmt.Errorf("figure %s: %w", id, err)
		}
		if e.csv {
			printFigureCSV(id, fig)
		} else {
			printFigure(id, fig)
		}
		return nil
	}}
}

// figureRunner is one -fig selection: runners share the benchEnv setup,
// so adding a figure is one table entry.
type figureRunner struct {
	id  string
	run func(*benchEnv) error
}

// runners dispatches -fig. Order is the -fig all output order.
func runners() []figureRunner {
	roiFracsH := []float64{0.02, 0.04, 0.06, 0.08, 0.10, 0.12}
	roiFracsC := []float64{0.01, 0.02, 0.03, 0.04, 0.05}
	lodPcts := []float64{0.70, 0.80, 0.90, 0.95, 0.99}
	angleFracs := []float64{0.1, 0.3, 0.5, 0.7, 0.9}

	return []figureRunner{
		{"conn", func(e *benchEnv) error {
			for _, name := range []string{"highland", "crater"} {
				b, err := e.bundle(name)
				if err != nil {
					return err
				}
				printConn(b)
			}
			return nil
		}},
		{"throughput", func(e *benchEnv) error {
			b, err := e.bundle("highland")
			if err != nil {
				return err
			}
			return printThroughput(b, e.cfg)
		}},
		{"flyover", func(e *benchEnv) error {
			for _, name := range []string{"highland", "crater"} {
				b, err := e.bundle(name)
				if err != nil {
					return err
				}
				if err := printFlyover(b, e.cfg); err != nil {
					return err
				}
			}
			return nil
		}},
		paperFigure("6a", "highland", func(b *experiments.Bundle, cfg workload.Config) (*experiments.Figure, error) {
			return b.Fig6ROI(cfg, roiFracsH)
		}),
		paperFigure("6b", "highland", func(b *experiments.Bundle, cfg workload.Config) (*experiments.Figure, error) {
			return b.Fig6LOD(cfg, 0.10, lodPcts)
		}),
		paperFigure("6c", "crater", func(b *experiments.Bundle, cfg workload.Config) (*experiments.Figure, error) {
			return b.Fig6ROI(cfg, roiFracsC)
		}),
		paperFigure("6d", "crater", func(b *experiments.Bundle, cfg workload.Config) (*experiments.Figure, error) {
			return b.Fig6LOD(cfg, 0.05, lodPcts)
		}),
		paperFigure("8a", "highland", func(b *experiments.Bundle, cfg workload.Config) (*experiments.Figure, error) {
			return b.Fig8ROI(cfg, roiFracsH)
		}),
		paperFigure("8b", "highland", func(b *experiments.Bundle, cfg workload.Config) (*experiments.Figure, error) {
			return b.Fig8LOD(cfg, 0.10, lodPcts)
		}),
		paperFigure("8c", "highland", func(b *experiments.Bundle, cfg workload.Config) (*experiments.Figure, error) {
			return b.Fig8Angle(cfg, 0.10, angleFracs)
		}),
		paperFigure("8d", "crater", func(b *experiments.Bundle, cfg workload.Config) (*experiments.Figure, error) {
			return b.Fig8ROI(cfg, roiFracsC)
		}),
		paperFigure("8e", "crater", func(b *experiments.Bundle, cfg workload.Config) (*experiments.Figure, error) {
			return b.Fig8LOD(cfg, 0.05, lodPcts)
		}),
		paperFigure("8f", "crater", func(b *experiments.Bundle, cfg workload.Config) (*experiments.Figure, error) {
			return b.Fig8Angle(cfg, 0.05, angleFracs)
		}),
		{"tilecache", func(e *benchEnv) error {
			for _, name := range []string{"highland", "crater"} {
				b, err := e.bundle(name)
				if err != nil {
					return err
				}
				if err := printTileCache(b, e.seed); err != nil {
					return err
				}
			}
			return nil
		}},
		{"faults", func(e *benchEnv) error {
			for _, name := range []string{"highland", "crater"} {
				b, err := e.bundle(name)
				if err != nil {
					return err
				}
				if err := printFaults(b, e.seed); err != nil {
					return err
				}
			}
			return nil
		}},
		{"dabreakdown", func(e *benchEnv) error {
			fracs := map[string]float64{"highland": 0.10, "crater": 0.05}
			for _, name := range []string{"highland", "crater"} {
				b, err := e.bundle(name)
				if err != nil {
					return err
				}
				if err := printDABreakdown(b, e.cfg, fracs[name]); err != nil {
					return err
				}
			}
			return nil
		}},
		{"layoutcmp", func(e *benchEnv) error {
			fracs := map[string]float64{"highland": 0.10, "crater": 0.05}
			all := []dmesh.Layout{dmesh.LayoutSTR, dmesh.LayoutHilbert,
				dmesh.LayoutRowMajor, dmesh.LayoutConnect, dmesh.LayoutPacked}
			var cmps []*experiments.LayoutCompare
			var sweeps []*experiments.LayoutSweep
			for _, name := range []string{"highland", "crater"} {
				b, err := e.bundle(name)
				if err != nil {
					return err
				}
				cmp, err := b.CompareLayouts(e.cfg, fracs[name], 24, dmesh.LayoutConnect)
				if err != nil {
					return fmt.Errorf("layoutcmp: %w", err)
				}
				if err := printLayoutCompare(cmp, fracs[name]); err != nil {
					return err
				}
				cmps = append(cmps, cmp)
				sweep, err := b.SweepLayouts(e.cfg, fracs[name], 24, all)
				if err != nil {
					return fmt.Errorf("layoutcmp: %w", err)
				}
				if err := printLayoutSweep(sweep, fracs[name]); err != nil {
					return err
				}
				sweeps = append(sweeps, sweep)
			}
			if err := writeLayoutJSON(e.resultPath("BENCH_layout.json"), e, cmps); err != nil {
				return err
			}
			return writeCompressionJSON(e.resultPath("BENCH_compression.json"), e, sweeps)
		}},
		{"cluster", func(e *benchEnv) error {
			b, err := e.bundle("highland")
			if err != nil {
				return err
			}
			fig, err := b.ClusterScaleOut(e.seed, 8, 20, []int{1, 2, 4, 8})
			if err != nil {
				return fmt.Errorf("cluster: %w", err)
			}
			if err := printCluster(fig); err != nil {
				return err
			}
			return writeClusterJSON(e.resultPath("BENCH_cluster.json"), e, []*experiments.ClusterFigure{fig})
		}},
		{"stream", func(e *benchEnv) error {
			var figs []*experiments.StreamFigure
			for _, name := range []string{"highland", "crater"} {
				b, err := e.bundle(name)
				if err != nil {
					return err
				}
				fig, err := b.Streaming(e.seed, 24, 0.6, 0.95)
				if err != nil {
					return fmt.Errorf("stream: %w", err)
				}
				if err := printStream(fig); err != nil {
					return err
				}
				figs = append(figs, fig)
			}
			return writeStreamJSON(e.resultPath("BENCH_stream.json"), e, figs)
		}},
		{"obstrace", func(e *benchEnv) error {
			var figs []*experiments.ObsTraceFigure
			for _, name := range []string{"highland", "crater"} {
				b, err := e.bundle(name)
				if err != nil {
					return err
				}
				fig, err := b.ObsTrace(e.seed, 8, 10, 4)
				if err != nil {
					return fmt.Errorf("obstrace: %w", err)
				}
				if err := printObsTrace(fig); err != nil {
					return err
				}
				figs = append(figs, fig)
			}
			return writeObsTraceJSON(e.resultPath("BENCH_obstrace.json"), e, figs)
		}},
	}
}

func run(env *benchEnv, fig string) error {
	ran := false
	for _, r := range runners() {
		if fig != "all" && fig != r.id {
			continue
		}
		ran = true
		if err := r.run(env); err != nil {
			return err
		}
	}
	if !ran {
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

func printFigure(id string, f *experiments.Figure) {
	fmt.Printf("\nFigure %s: %s\n", id, f.Title)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "%s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "\t%s", s.Method)
	}
	fmt.Fprintln(w)
	if len(f.Series) > 0 {
		for i := range f.Series[0].Points {
			fmt.Fprintf(w, "%.1f", f.Series[0].Points[i].X)
			for _, s := range f.Series {
				fmt.Fprintf(w, "\t%.0f", s.Points[i].DA)
			}
			fmt.Fprintln(w)
		}
	}
	w.Flush()
}

// printFigureCSV emits one figure as CSV rows: figure,x,method,da.
func printFigureCSV(id string, f *experiments.Figure) {
	for _, s := range f.Series {
		for _, p := range s.Points {
			fmt.Printf("%s,%g,%s,%g\n", id, p.X, s.Method, p.DA)
		}
	}
}

// printThroughput runs the concurrent-serving measurement: the fig-6(a)
// uniform workload answered by a worker pool over a sharded buffer pool.
func printThroughput(b *experiments.Bundle, cfg workload.Config) error {
	if b == nil {
		return nil
	}
	workers := []int{1, 2, 4, 8}
	if n := runtime.GOMAXPROCS(0); n > 8 {
		workers = append(workers, n)
	}
	pts, err := b.ParallelThroughput(cfg, 0.06, workers, 20)
	if err != nil {
		return fmt.Errorf("throughput: %w", err)
	}
	fmt.Printf("\nConcurrent serving throughput (%s, %d queries/round, %d pool shards):\n",
		b.Name, pts[0].Queries, runtime.GOMAXPROCS(0))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workers\tqueries/sec\tspeedup\tDA/query")
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%.0f\t%.2fx\t%.1f\n", p.Workers, p.QPS, p.Speedup, p.DAPerQuery)
	}
	return w.Flush()
}

// printFlyover runs the temporal-coherence measurement: a camera path
// answered by full re-query (cold and warm pool) and by the incremental
// coherent engine, on a deliberately memory-constrained store.
func printFlyover(b *experiments.Bundle, cfg workload.Config) error {
	if b == nil {
		return nil
	}
	overlaps := []float64{0.5, 0.7, 0.8, 0.9, 0.95}
	fig, err := b.Flyover(cfg, overlaps, 40)
	if err != nil {
		return fmt.Errorf("flyover: %w", err)
	}
	fmt.Printf("\nFlyover coherence (%s, %d frames/path, pools %d/%d/%d/%d pages, mean DA/frame, frame 0 excluded):\n",
		fig.Name, fig.Frames, fig.Pools.Data, fig.Pools.Overflow, fig.Pools.Index, fig.Pools.IDIndex)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "overlap\trealized\tFullCold\tFullWarm\tIncSB\tIncMB\tWarm/IncSB\tfallbacks")
	for _, p := range fig.Points {
		ratio := 0.0
		if p.IncSBDA > 0 {
			ratio = p.FullWarmDA / p.IncSBDA
		}
		fmt.Fprintf(w, "%.2f\t%.2f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1fx\t%d/%d\n",
			p.Overlap, p.Realized, p.FullColdDA, p.FullWarmDA, p.IncSBDA, p.IncMBDA, ratio,
			p.IncSBFull, p.IncMBFull)
	}
	return w.Flush()
}

// printTileCache runs the shared mesh-tile cache measurement: mean disk
// accesses per query on the skewed multi-client workload, direct engine
// vs cache-served.
func printTileCache(b *experiments.Bundle, seed int64) error {
	if b == nil {
		return nil
	}
	fig, err := b.TileCacheSharing(seed, 8, 20)
	if err != nil {
		return fmt.Errorf("tilecache: %w", err)
	}
	fmt.Printf("\nShared tile cache (%s, %d clients x %d queries, %d hot spots, LOD p%.0f, mean DA/query):\n",
		fig.Name, fig.Clients, fig.PerClient, fig.Spots, 100*fig.EPct)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "uncached\tcached(cold)\tcached(steady)\tspeedup\tcold misses\tdeduped\thits\tevictions\ttiles\tMB")
	speedup := "inf"
	if fig.Speedup > 0 {
		speedup = fmt.Sprintf("%.1fx", fig.Speedup)
	}
	fmt.Fprintf(w, "%.1f\t%.1f\t%.1f\t%s\t%d\t%d\t%d\t%d\t%d\t%.2f\n",
		fig.UncachedDA, fig.CachedColdDA, fig.CachedSteadyDA, speedup,
		fig.ColdMisses, fig.DedupedMisses, fig.Hits, fig.Evictions,
		fig.Tiles, float64(fig.Bytes)/(1<<20))
	return w.Flush()
}

// printCluster prints the sharded-cluster scale-out table: QPS, tail
// latency, and DA per query by shard count, against the single-node
// tile-cache steady state the per-shard cost must stay within noise of.
func printCluster(fig *experiments.ClusterFigure) error {
	fmt.Printf("\nSharded tile cluster (%s, %d clients x %d queries, %d hot spots, LOD p%.0f, single-node steady %.1f DA/query):\n",
		fig.Name, fig.Clients, fig.PerClient, fig.Spots, 100*fig.EPct, fig.SingleNodeSteadyDA)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "shards\tqueries/sec\tspeedup\tp50 us\tp99 us\tDA/query\tshard DA/query\tredirects\thot keys\treplica warmups")
	for _, p := range fig.Points {
		fmt.Fprintf(w, "%d\t%.0f\t%.2fx\t%.0f\t%.0f\t%.1f\t%.1f\t%d\t%d\t%d\n",
			p.Shards, p.QPS, p.Speedup, p.P50Micros, p.P99Micros,
			p.DAPerQuery, p.MeanShardDAPerQuery, p.Redirects, p.HotKeys, p.Replicated)
	}
	return w.Flush()
}

// writeClusterJSON persists the scale-out series for the repo's
// clustercheck tooling and the EXPERIMENTS.md cluster table.
func writeClusterJSON(path string, e *benchEnv, figs []*experiments.ClusterFigure) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	doc := struct {
		Sizes    [2]int                       `json:"sizes"`
		Seed     int64                        `json:"seed"`
		Datasets []*experiments.ClusterFigure `json:"datasets"`
	}{
		Sizes: [2]int{e.size, e.size2}, Seed: e.seed, Datasets: figs,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}

// printStream prints the progressive-streaming wire-cost table: bytes
// to the first renderable frame vs bytes to the exact answer per
// flyover frame, the per-batch byte schedule, and the progressivity
// overhead against a single-shot transfer.
func printStream(fig *experiments.StreamFigure) error {
	fmt.Printf("\nProgressive streaming (%s, %d frames, overlap %.1f, LOD p%.0f, %d batches to E %.3g):\n",
		fig.Name, fig.Frames, fig.Overlap, 100*fig.EPct, fig.Batches, fig.SnappedE)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "first-frame B\texact B\tfirst/exact\tsingle-shot B\toverhead\tDA/stream")
	fmt.Fprintf(w, "%.0f\t%.0f\t%.1f%%\t%.0f\t%.2fx\t%.1f\n",
		fig.MeanBytesToFirstFrame, fig.MeanBytesToExact, 100*fig.FirstFrameFraction,
		fig.MeanBytesSingleShot, fig.ProgressiveOverhead, fig.MeanDAPerStream)
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Print("  batch bytes (coarse->fine):")
	for _, b := range fig.MeanBatchBytes {
		fmt.Printf(" %.0f", b)
	}
	fmt.Println()
	return nil
}

// writeStreamJSON persists the streaming series for the repo's
// streamcheck tooling and the EXPERIMENTS.md stream table.
func writeStreamJSON(path string, e *benchEnv, figs []*experiments.StreamFigure) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	doc := struct {
		Sizes    [2]int                      `json:"sizes"`
		Seed     int64                       `json:"seed"`
		Datasets []*experiments.StreamFigure `json:"datasets"`
	}{
		Sizes: [2]int{e.size, e.size2}, Seed: e.seed, Datasets: figs,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}

// printFaults runs the chaos measurement: the hot-spot workload off a
// checksummed store under injected read failures and bit flips, swept
// over fault rates with a retry-once policy. Panics or oracle mismatches
// are a hard failure — the whole point is that there are none.
func printFaults(b *experiments.Bundle, seed int64) error {
	if b == nil {
		return nil
	}
	rates := []float64{0, 0.002, 0.01, 0.05}
	fig, err := b.FaultTolerance(seed, rates, 8, 20)
	if err != nil {
		return fmt.Errorf("faults: %w", err)
	}
	fmt.Printf("\nFault tolerance (%s, %d clients x %d queries, %d hot spots, LOD p%.0f, checksummed store, retry once):\n",
		fig.Name, fig.Clients, fig.PerClient, fig.Spots, 100*fig.EPct)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "rate\tqueries\tok\tdegraded\tfailed\twrong\tpanics\tinjected\tflipped\tDA/ok\toverhead")
	base := 0.0
	if len(fig.Points) > 0 {
		base = fig.Points[0].MeanDA
	}
	var bad bool
	for _, p := range fig.Points {
		overhead := "-"
		if base > 0 && p.MeanDA > 0 {
			overhead = fmt.Sprintf("%.2fx", p.MeanDA/base)
		}
		fmt.Fprintf(w, "%.3f\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.1f\t%s\n",
			p.Rate, p.Queries, p.OK, p.Degraded, p.Failed, p.Wrong, p.Panics,
			p.InjectedReads, p.FlippedReads, p.MeanDA, overhead)
		if p.Wrong != 0 || p.Panics != 0 {
			bad = true
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if bad {
		return fmt.Errorf("faults: wrong answers or panics under injected faults (see table)")
	}
	return nil
}

// printDABreakdown runs the telemetry decomposition: the paper's query
// mix traced phase by phase, each query's per-phase disk accesses checked
// to sum exactly to its session total (an attribution gap is a hard
// failure, not a footnote), then aggregated per query kind.
func printDABreakdown(b *experiments.Bundle, cfg workload.Config, roiFrac float64) error {
	if b == nil {
		return nil
	}
	rows, err := b.DABreakdown(cfg, roiFrac, 24)
	if err != nil {
		return fmt.Errorf("dabreakdown: %w", err)
	}
	fmt.Printf("\nPer-phase DA breakdown (%s, ROI %.0f%%, exact attribution, DA [spans]):\n",
		b.Name, roiFrac*100)
	// Column per phase that shows up in any row, in phase enum order.
	var used [obs.NumPhases]bool
	for _, r := range rows {
		for _, ps := range r.Phases {
			used[ps.Phase] = true
		}
	}
	var phases []string
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		if used[p] {
			phases = append(phases, p.String())
		}
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "kind\tqueries\ttotal DA")
	for _, p := range phases {
		fmt.Fprintf(w, "\t%s", p)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d", r.Kind, r.Queries, r.TotalDA)
		cells := map[string]string{}
		var sum uint64
		for _, ps := range r.Phases {
			cells[ps.Name] = fmt.Sprintf("%d [%d]", ps.DA, ps.Spans)
			sum += ps.DA
		}
		for _, p := range phases {
			c, ok := cells[p]
			if !ok {
				c = "-"
			}
			fmt.Fprintf(w, "\t%s", c)
		}
		fmt.Fprintln(w)
		if sum != r.TotalDA {
			w.Flush()
			return fmt.Errorf("dabreakdown: %s phases sum to %d DA, total is %d", r.Kind, sum, r.TotalDA)
		}
	}
	return w.Flush()
}

// printLayoutCompare prints the before/after physical-layout comparison:
// per query kind, total DA and the overflow_walk share under each
// layout, then the store footprints and the headline reductions.
func printLayoutCompare(c *experiments.LayoutCompare, roiFrac float64) error {
	fmt.Printf("\nLayout comparison (%s, ROI %.0f%%, %s vs %s, DA per workload):\n",
		c.Dataset, roiFrac*100, c.Before.Layout, c.After.Layout)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "kind\tqueries\t%s total\toverflow\t%s total\toverflow\ttotal Δ\n",
		c.Before.Layout, c.After.Layout)
	after := map[string]experiments.DABreakdownRow{}
	for _, r := range c.After.Rows {
		after[r.Kind] = r
	}
	ovDA := func(r experiments.DABreakdownRow) uint64 {
		for _, ps := range r.Phases {
			if ps.Name == "overflow_walk" {
				return ps.DA
			}
		}
		return 0
	}
	for _, br := range c.Before.Rows {
		ar, ok := after[br.Kind]
		if !ok {
			return fmt.Errorf("layoutcmp: kind %q missing from the %s side", br.Kind, c.After.Layout)
		}
		delta := "-"
		if br.TotalDA > 0 {
			delta = fmt.Sprintf("%+.1f%%", 100*(float64(ar.TotalDA)-float64(br.TotalDA))/float64(br.TotalDA))
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%s\n",
			br.Kind, br.Queries, br.TotalDA, ovDA(br), ar.TotalDA, ovDA(ar), delta)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	bTotal, bOv := c.Before.Totals()
	aTotal, aOv := c.After.Totals()
	fmt.Printf("  pages: %d+%d data/overflow (%s) vs %d+%d (%s)\n",
		c.Before.DataPages, c.Before.OverflowPages, c.Before.Layout,
		c.After.DataPages, c.After.OverflowPages, c.After.Layout)
	if bOv > 0 {
		fmt.Printf("  overflow_walk DA: %d -> %d (%.1f%% reduction)\n",
			bOv, aOv, 100*(1-float64(aOv)/float64(bOv)))
	}
	if bTotal > 0 {
		fmt.Printf("  total DA: %d -> %d (%+.1f%%)\n",
			bTotal, aTotal, 100*(float64(aTotal)-float64(bTotal))/float64(bTotal))
	}
	return nil
}

// writeLayoutJSON persists the layout comparison for the repo's
// layoutcheck tooling and EXPERIMENTS.md tables.
func writeLayoutJSON(path string, e *benchEnv, cmps []*experiments.LayoutCompare) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	doc := struct {
		Sizes     [2]int                       `json:"sizes"`
		Seed      int64                        `json:"seed"`
		Locations int                          `json:"locations"`
		Datasets  []*experiments.LayoutCompare `json:"datasets"`
	}{
		Sizes: [2]int{e.size, e.size2}, Seed: e.seed,
		Locations: e.cfg.Locations, Datasets: cmps,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}

// printLayoutSweep prints the all-layouts compression table: footprint,
// realized density, and the workload's data-heap and total DA per
// layout, with the packed-vs-connect headline underneath.
func printLayoutSweep(s *experiments.LayoutSweep, roiFrac float64) error {
	fmt.Printf("\nLayout sweep (%s, ROI %.0f%%, DA per workload):\n", s.Dataset, roiFrac*100)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "layout\trecords\tdata pages\toverflow pages\trec/page\tdata DA\ttotal DA\n")
	for i := range s.Sides {
		side := &s.Sides[i]
		total, _ := side.Totals()
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.1f\t%d\t%d\n",
			side.Layout, side.NumRecords, side.DataPages, side.OverflowPages,
			side.RecordsPerPage(), side.DataDA(), total)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	connect, packed := s.Side("connect"), s.Side("packed")
	if connect != nil && packed != nil && connect.DataDA() > 0 && connect.RecordsPerPage() > 0 {
		fmt.Printf("  packed vs connect: %.2fx records/page, data-heap DA %d -> %d (%.1f%% reduction)\n",
			packed.RecordsPerPage()/connect.RecordsPerPage(),
			connect.DataDA(), packed.DataDA(),
			100*(1-float64(packed.DataDA())/float64(connect.DataDA())))
	}
	return nil
}

// writeCompressionJSON persists the all-layouts sweep for the repo's
// packcheck tooling and the EXPERIMENTS.md compression table.
func writeCompressionJSON(path string, e *benchEnv, sweeps []*experiments.LayoutSweep) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	doc := struct {
		Sizes     [2]int                     `json:"sizes"`
		Seed      int64                      `json:"seed"`
		Locations int                        `json:"locations"`
		Datasets  []*experiments.LayoutSweep `json:"datasets"`
	}{
		Sizes: [2]int{e.size, e.size2}, Seed: e.seed,
		Locations: e.cfg.Locations, Datasets: sweeps,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}

// printObsTrace prints the distributed-tracing decomposition: one row
// per workload leg (cold, steady, resumed streams, shard killed), DA
// and latency totals plus the per-phase exclusive-DA columns recovered
// from the spliced shard traces. Every query behind these numbers
// already passed the cross-hop invariant — an attribution gap fails the
// figure before it prints.
func printObsTrace(fig *experiments.ObsTraceFigure) error {
	fmt.Printf("\nDistributed trace decomposition (%s, %d shards, %d clients x %d queries, LOD p%.0f, exact cross-hop attribution):\n",
		fig.Name, fig.Shards, fig.Clients, fig.PerClient, 100*fig.EPct)
	var used [obs.NumPhases]bool
	for _, leg := range fig.Legs {
		for _, ps := range leg.Phases {
			used[ps.Phase] = true
		}
	}
	var phases []string
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		if used[p] {
			phases = append(phases, p.String())
		}
	}
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(w, "leg\tqueries\tDA\ttraced DA\tredirects\tp50 us\tp99 us")
	for _, p := range phases {
		fmt.Fprintf(w, "\t%s", p)
	}
	fmt.Fprintln(w)
	for _, leg := range fig.Legs {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%.0f\t%.0f",
			leg.Leg, leg.Queries, leg.DA, leg.TraceDA, leg.Redirected,
			leg.P50Micros, leg.P99Micros)
		cells := map[string]string{}
		for _, ps := range leg.Phases {
			cells[ps.Name] = fmt.Sprintf("%d [%d]", ps.DA, ps.Spans)
		}
		for _, p := range phases {
			c, ok := cells[p]
			if !ok {
				c = "-"
			}
			fmt.Fprintf(w, "\t%s", c)
		}
		fmt.Fprintln(w)
	}
	return w.Flush()
}

// writeObsTraceJSON persists the tracing decomposition for the
// benchdiff regression gate and the EXPERIMENTS.md obstrace table.
func writeObsTraceJSON(path string, e *benchEnv, figs []*experiments.ObsTraceFigure) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	doc := struct {
		Sizes    [2]int                        `json:"sizes"`
		Seed     int64                         `json:"seed"`
		Datasets []*experiments.ObsTraceFigure `json:"datasets"`
	}{
		Sizes: [2]int{e.size, e.size2}, Seed: e.seed, Datasets: figs,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", path)
	return nil
}

func printConn(b *experiments.Bundle) {
	if b == nil {
		return
	}
	st := b.Terrain.Sequence.Stats()
	fmt.Printf("\nConnection statistics (%s, %d points):\n", b.Name, b.Terrain.NumPoints())
	fmt.Printf("  median similar-LOD connection points: %d (paper: ~12)\n", st.MedianSimilarLOD)
	fmt.Printf("  avg similar-LOD connection points:    %.1f (max %d)\n", st.AvgSimilarLOD, st.MaxSimilarLOD)
	fmt.Printf("  avg total connection points:          %.1f (paper: 180 at 2M / 840 at 17M)\n", st.AvgTotal)
}
