// Command dmbench reproduces the paper's evaluation: it builds the two
// benchmark datasets, runs the workload behind every figure of Section 6,
// and prints the measured series (average cold-cache disk accesses).
//
// Usage:
//
//	dmbench [-fig all|6a|6b|6c|6d|8a|8b|8c|8d|8e|8f|conn|throughput|flyover]
//	        [-size N] [-size2 N] [-seed S] [-locations L]
//	        [-cpuprofile F] [-memprofile F]
//
// -fig throughput is not a paper figure: it measures concurrent query
// serving against a sharded buffer pool (queries/sec and speedup by
// worker count, with per-query disk accesses held constant).
//
// -fig flyover is not a paper figure either: it measures the
// temporal-coherence extension — mean disk accesses per frame along a
// camera path, full re-query vs the incremental (delta) engine, swept
// over the frame-to-frame overlap on a memory-constrained store.
//
// -cpuprofile and -memprofile write pprof profiles of whatever figure
// selection ran (go tool pprof reads them).
//
// The 2M-point and 17M-point datasets of the paper are represented by
// synthetic DEMs ("highland" and "crater"); -size and -size2 set their
// grid side lengths. Defaults are laptop-scale; the figure shapes are
// scale-invariant in this regime (see EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"text/tabwriter"

	"dmesh/internal/experiments"
	"dmesh/internal/workload"
)

func main() {
	if err := mainErr(); err != nil {
		fmt.Fprintln(os.Stderr, "dmbench:", err)
		os.Exit(1)
	}
}

// mainErr holds the flag parsing and profile lifecycle; keeping the
// deferred profile flushes out of main lets them run even when the
// selected figure fails.
func mainErr() error {
	var (
		fig       = flag.String("fig", "all", "figure to reproduce (6a..6d, 8a..8f, conn, throughput, all)")
		size      = flag.Int("size", 257, "grid side of the highland dataset (the paper's 2M-point terrain)")
		size2     = flag.Int("size2", 513, "grid side of the crater dataset (the paper's 17M-point terrain)")
		seed      = flag.Int64("seed", 1, "generation seed")
		locations = flag.Int("locations", 20, "random ROI placements averaged per measurement")
		csvOut    = flag.Bool("csv", false, "emit figures as CSV instead of aligned tables")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dmbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dmbench:", err)
			}
		}()
	}
	return run(*fig, *size, *size2, *seed, *locations, *csvOut)
}

func run(fig string, size, size2 int, seed int64, locations int, csvOut bool) error {
	fig = strings.ToLower(fig)
	cfg := workload.Config{Locations: locations, Seed: seed}

	needHighland := fig == "all" || fig == "conn" || fig == "throughput" || fig == "flyover" ||
		strings.HasSuffix(fig, "a") || strings.HasSuffix(fig, "b") || fig == "8c"
	needCrater := fig == "all" || fig == "conn" || fig == "flyover" ||
		strings.HasSuffix(fig, "c") && fig != "8c" || strings.HasSuffix(fig, "d") || strings.HasSuffix(fig, "e") || strings.HasSuffix(fig, "f")
	if fig == "6c" {
		needCrater = true
	}

	var highland, crater *experiments.Bundle
	var err error
	if needHighland {
		fmt.Fprintf(os.Stderr, "building highland dataset (%dx%d points)...\n", size, size)
		if highland, err = experiments.BuildBundle("highland", size, seed); err != nil {
			return err
		}
	}
	if needCrater {
		fmt.Fprintf(os.Stderr, "building crater dataset (%dx%d points)...\n", size2, size2)
		if crater, err = experiments.BuildBundle("crater", size2, seed); err != nil {
			return err
		}
	}

	roiFracsH := []float64{0.02, 0.04, 0.06, 0.08, 0.10, 0.12}
	roiFracsC := []float64{0.01, 0.02, 0.03, 0.04, 0.05}
	lodPcts := []float64{0.70, 0.80, 0.90, 0.95, 0.99}
	angleFracs := []float64{0.1, 0.3, 0.5, 0.7, 0.9}

	type job struct {
		id  string
		run func() (*experiments.Figure, error)
	}
	jobs := []job{
		{"6a", func() (*experiments.Figure, error) { return highland.Fig6ROI(cfg, roiFracsH) }},
		{"6b", func() (*experiments.Figure, error) { return highland.Fig6LOD(cfg, 0.10, lodPcts) }},
		{"6c", func() (*experiments.Figure, error) { return crater.Fig6ROI(cfg, roiFracsC) }},
		{"6d", func() (*experiments.Figure, error) { return crater.Fig6LOD(cfg, 0.05, lodPcts) }},
		{"8a", func() (*experiments.Figure, error) { return highland.Fig8ROI(cfg, roiFracsH) }},
		{"8b", func() (*experiments.Figure, error) { return highland.Fig8LOD(cfg, 0.10, lodPcts) }},
		{"8c", func() (*experiments.Figure, error) { return highland.Fig8Angle(cfg, 0.10, angleFracs) }},
		{"8d", func() (*experiments.Figure, error) { return crater.Fig8ROI(cfg, roiFracsC) }},
		{"8e", func() (*experiments.Figure, error) { return crater.Fig8LOD(cfg, 0.05, lodPcts) }},
		{"8f", func() (*experiments.Figure, error) { return crater.Fig8Angle(cfg, 0.05, angleFracs) }},
	}

	if fig == "conn" || fig == "all" {
		printConn(highland)
		printConn(crater)
		if fig == "conn" {
			return nil
		}
	}

	if fig == "throughput" || fig == "all" {
		if err := printThroughput(highland, cfg); err != nil {
			return err
		}
		if fig == "throughput" {
			return nil
		}
	}

	if fig == "flyover" || fig == "all" {
		for _, b := range []*experiments.Bundle{highland, crater} {
			if err := printFlyover(b, cfg); err != nil {
				return err
			}
		}
		if fig == "flyover" {
			return nil
		}
	}

	ran := false
	for _, j := range jobs {
		if fig != "all" && fig != j.id {
			continue
		}
		ran = true
		f, err := j.run()
		if err != nil {
			return fmt.Errorf("figure %s: %w", j.id, err)
		}
		if csvOut {
			printFigureCSV(j.id, f)
		} else {
			printFigure(j.id, f)
		}
	}
	if !ran && fig != "all" && fig != "conn" {
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}

func printFigure(id string, f *experiments.Figure) {
	fmt.Printf("\nFigure %s: %s\n", id, f.Title)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "%s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "\t%s", s.Method)
	}
	fmt.Fprintln(w)
	if len(f.Series) > 0 {
		for i := range f.Series[0].Points {
			fmt.Fprintf(w, "%.1f", f.Series[0].Points[i].X)
			for _, s := range f.Series {
				fmt.Fprintf(w, "\t%.0f", s.Points[i].DA)
			}
			fmt.Fprintln(w)
		}
	}
	w.Flush()
}

// printFigureCSV emits one figure as CSV rows: figure,x,method,da.
func printFigureCSV(id string, f *experiments.Figure) {
	for _, s := range f.Series {
		for _, p := range s.Points {
			fmt.Printf("%s,%g,%s,%g\n", id, p.X, s.Method, p.DA)
		}
	}
}

// printThroughput runs the concurrent-serving measurement: the fig-6(a)
// uniform workload answered by a worker pool over a sharded buffer pool.
func printThroughput(b *experiments.Bundle, cfg workload.Config) error {
	if b == nil {
		return nil
	}
	workers := []int{1, 2, 4, 8}
	if n := runtime.GOMAXPROCS(0); n > 8 {
		workers = append(workers, n)
	}
	pts, err := b.ParallelThroughput(cfg, 0.06, workers, 20)
	if err != nil {
		return fmt.Errorf("throughput: %w", err)
	}
	fmt.Printf("\nConcurrent serving throughput (%s, %d queries/round, %d pool shards):\n",
		b.Name, pts[0].Queries, runtime.GOMAXPROCS(0))
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "workers\tqueries/sec\tspeedup\tDA/query")
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%.0f\t%.2fx\t%.1f\n", p.Workers, p.QPS, p.Speedup, p.DAPerQuery)
	}
	return w.Flush()
}

// printFlyover runs the temporal-coherence measurement: a camera path
// answered by full re-query (cold and warm pool) and by the incremental
// coherent engine, on a deliberately memory-constrained store.
func printFlyover(b *experiments.Bundle, cfg workload.Config) error {
	if b == nil {
		return nil
	}
	overlaps := []float64{0.5, 0.7, 0.8, 0.9, 0.95}
	fig, err := b.Flyover(cfg, overlaps, 40)
	if err != nil {
		return fmt.Errorf("flyover: %w", err)
	}
	fmt.Printf("\nFlyover coherence (%s, %d frames/path, pools %d/%d/%d/%d pages, mean DA/frame, frame 0 excluded):\n",
		fig.Name, fig.Frames, fig.Pools.Data, fig.Pools.Overflow, fig.Pools.Index, fig.Pools.IDIndex)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "overlap\trealized\tFullCold\tFullWarm\tIncSB\tIncMB\tWarm/IncSB\tfallbacks")
	for _, p := range fig.Points {
		ratio := 0.0
		if p.IncSBDA > 0 {
			ratio = p.FullWarmDA / p.IncSBDA
		}
		fmt.Fprintf(w, "%.2f\t%.2f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1fx\t%d/%d\n",
			p.Overlap, p.Realized, p.FullColdDA, p.FullWarmDA, p.IncSBDA, p.IncMBDA, ratio,
			p.IncSBFull, p.IncMBFull)
	}
	return w.Flush()
}

func printConn(b *experiments.Bundle) {
	if b == nil {
		return
	}
	st := b.Terrain.Sequence.Stats()
	fmt.Printf("\nConnection statistics (%s, %d points):\n", b.Name, b.Terrain.NumPoints())
	fmt.Printf("  median similar-LOD connection points: %d (paper: ~12)\n", st.MedianSimilarLOD)
	fmt.Printf("  avg similar-LOD connection points:    %.1f (max %d)\n", st.AvgSimilarLOD, st.MaxSimilarLOD)
	fmt.Printf("  avg total connection points:          %.1f (paper: 180 at 2M / 840 at 17M)\n", st.AvgTotal)
}
