package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// testServer builds a small server, drives enough traffic through every
// endpoint flavor to populate the telemetry, and hands back the httptest
// front end. Threshold 0 admits every request to the slow log.
func testServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(33, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes(true))
	t.Cleanup(ts.Close)

	get := func(path string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	get("/tile?x0=0.2&y0=0.2&x1=0.6&y1=0.6&lod=0.9")
	get("/tile?x0=0.2&y0=0.2&x1=0.6&y1=0.6&lod=0.9") // cache hit
	get("/tile?x0=0.1&y0=0.1&x1=0.5&y1=0.5&lod=0.9&nocache=1")
	get("/frame?session=cam1&x0=0.2&y0=0.0&x1=0.7&y1=0.4&near=0.75&far=0.99")
	get("/frame?session=cam1&x0=0.2&y0=0.1&x1=0.7&y1=0.5&near=0.75&far=0.99")
	return s, ts
}

func fetch(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestObsSmoke drives the introspection endpoints end to end: /metrics
// must be Prometheus text carrying the server's series, /slowlog must
// return phase-attributed entries, /debug/vars must be expvar JSON with
// the published registry.
func TestObsSmoke(t *testing.T) {
	_, ts := testServer(t)

	resp, body := fetch(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE tileserver_tile_requests_total counter",
		"tileserver_tile_requests_total 3",
		"tileserver_frame_requests_total 2",
		"# TYPE tileserver_tile_disk_accesses histogram",
		"tileserver_tile_disk_accesses_count 3",
		"tileserver_cameras_active 1",
		"tileserver_cache_entries",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, body = fetch(t, ts, "/slowlog?n=10")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/slowlog: status %d", resp.StatusCode)
	}
	var slow struct {
		ThresholdNanos int64 `json:"threshold_nanos"`
		Entries        []struct {
			Query  string `json:"query"`
			DA     uint64 `json:"disk_accesses"`
			Phases []struct {
				Phase string `json:"phase"`
				DA    uint64 `json:"disk_accesses"`
			} `json:"phases"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(body, &slow); err != nil {
		t.Fatalf("/slowlog: %v\n%s", err, body)
	}
	if len(slow.Entries) != 5 {
		t.Fatalf("/slowlog: got %d entries, want 5 (threshold 0 admits all)", len(slow.Entries))
	}
	// Every traced entry's phase DA must sum exactly to the entry's DA —
	// the attribution invariant, visible all the way out at the endpoint.
	for _, e := range slow.Entries {
		var sum uint64
		for _, p := range e.Phases {
			sum += p.DA
		}
		if sum != e.DA {
			t.Errorf("entry %q: phase DA sum %d != entry DA %d", e.Query, sum, e.DA)
		}
		if e.DA > 0 && len(e.Phases) == 0 {
			t.Errorf("entry %q: %d disk accesses but no phase breakdown", e.Query, e.DA)
		}
	}

	resp, body = fetch(t, ts, "/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars: status %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["tileserver"]; !ok {
		t.Error("/debug/vars missing published \"tileserver\" registry")
	}

	if resp, _ := fetch(t, ts, "/debug/pprof/"); resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/: status %d", resp.StatusCode)
	}
}

// TestStatsEncodingDeterministic is the regression for the JSON
// determinism audit: for a fixed server state, two back-to-back
// encodings of the /stats and /cachestats payloads must be
// byte-identical — no map-iteration order, no unsorted slices.
// /stats is pinned to one timestamp because IdleSeconds is (second
// granularity) time-dependent; everything else must not depend on when
// it is encoded.
func TestStatsEncodingDeterministic(t *testing.T) {
	s, ts := testServer(t)

	now := time.Now()
	a, err := json.Marshal(s.statsSnapshot(now))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(s.statsSnapshot(now))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("/stats payload not deterministic:\n%s\n%s", a, b)
	}

	// /cachestats has no time-dependent fields at all, so the HTTP
	// responses themselves must match byte for byte.
	_, c1 := fetch(t, ts, "/cachestats")
	_, c2 := fetch(t, ts, "/cachestats")
	if !bytes.Equal(c1, c2) {
		t.Errorf("/cachestats response not deterministic:\n%s\n%s", c1, c2)
	}
}

// TestIntrospectionOptOut checks that -introspect=false leaves only the
// serving endpoints mounted.
func TestIntrospectionOptOut(t *testing.T) {
	s, err := newServer(33, 0)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.routes(false))
	defer ts.Close()
	for _, path := range []string{"/metrics", "/slowlog", "/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s with introspection off: status %d, want 404", path, resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/stats"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET /stats: status %d", resp.StatusCode)
		}
	}
}
