package main

import (
	"encoding/json"
	"testing"

	"dmesh/internal/serve"
)

// The serving behavior itself (obs smoke, stats determinism,
// introspection opt-out, patch wire endpoint, graceful drain) is tested
// where the code now lives, in internal/serve, on the same shared
// harness. This smoke test only checks the example's deployment shape:
// the extracted core wired up the way main() does it still answers the
// canonical traffic mix.
func TestExampleServesExtractedCore(t *testing.T) {
	_, ts := serve.StartTestHarness(t)

	resp, body := serve.Fetch(t, ts.URL, "/tile?x0=0.2&y0=0.2&x1=0.6&y1=0.6&lod=0.9")
	if resp.StatusCode != 200 {
		t.Fatalf("/tile: status %d", resp.StatusCode)
	}
	var tile struct {
		LOD       float64               `json:"lod"`
		Vertices  map[string][3]float64 `json:"vertices"`
		Triangles [][3]int64            `json:"triangles"`
	}
	if err := json.Unmarshal(body, &tile); err != nil {
		t.Fatalf("/tile not JSON: %v", err)
	}
	if len(tile.Vertices) == 0 || len(tile.Triangles) == 0 {
		t.Fatal("/tile answered an empty mesh")
	}

	if resp, _ := serve.Fetch(t, ts.URL, "/stats"); resp.StatusCode != 200 {
		t.Fatalf("/stats: status %d", resp.StatusCode)
	}
	if resp, _ := serve.Fetch(t, ts.URL, "/metrics"); resp.StatusCode != 200 {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
}
