// Tileserver: an HTTP service that answers multiresolution mesh-tile
// requests from a Direct Mesh store — the "light-weight applications ...
// and Internet applications" scenario from the paper's introduction.
// Clients ask for a region and a LOD percentile and receive the
// triangulated approximation as JSON.
//
// Requests are served fully concurrently: the buffer pool is sharded
// across roughly one shard per CPU, and each request runs in its own
// store session (dmesh.DMSession), so the per-tile disk-access count is
// exact without a global query lock or a ResetStats between requests.
//
//	go run ./examples/tileserver [-addr :8080]
//
//	curl 'http://localhost:8080/tile?x0=0.2&y0=0.2&x1=0.5&y1=0.5&lod=0.9'
//	curl 'http://localhost:8080/stats'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"

	"dmesh"
)

type server struct {
	terrain *dmesh.Terrain
	store   *dmesh.DMStore
	served  atomic.Uint64
	tileDA  atomic.Uint64
}

type tileResponse struct {
	LOD          float64               `json:"lod"`
	Vertices     map[string][3]float64 `json:"vertices"`
	Triangles    [][3]int64            `json:"triangles"`
	DiskAccesses uint64                `json:"disk_accesses"`
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	size := flag.Int("size", 129, "terrain size")
	flag.Parse()

	terrain, err := dmesh.Build(dmesh.Config{Dataset: "highland", Size: *size, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	store, err := terrain.NewDMStoreWithPools(dmesh.StorePools{Shards: runtime.NumCPU()})
	if err != nil {
		log.Fatal(err)
	}
	s := &server{terrain: terrain, store: store}

	mux := http.NewServeMux()
	mux.HandleFunc("/tile", s.handleTile)
	mux.HandleFunc("/stats", s.handleStats)
	log.Printf("serving %d-point terrain on %s (%d pool shards)",
		terrain.NumPoints(), *addr, runtime.NumCPU())
	log.Fatal(http.ListenAndServe(*addr, mux))
}

func queryFloat(r *http.Request, name string, def float64) (float64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	return strconv.ParseFloat(v, 64)
}

func (s *server) handleTile(w http.ResponseWriter, r *http.Request) {
	x0, err1 := queryFloat(r, "x0", 0)
	y0, err2 := queryFloat(r, "y0", 0)
	x1, err3 := queryFloat(r, "x1", 1)
	y1, err4 := queryFloat(r, "y1", 1)
	pct, err5 := queryFloat(r, "lod", 0.9)
	for _, err := range []error{err1, err2, err3, err4, err5} {
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	if pct < 0 || pct > 1 {
		http.Error(w, "lod must be a percentile in [0,1]", http.StatusBadRequest)
		return
	}
	roi := dmesh.NewRect(x0, y0, x1, y1)
	lod := s.terrain.LODPercentile(pct)

	// One session per request: the session's counters see only this
	// request's page reads, so concurrent tiles get exact costs.
	sess := s.store.NewSession()
	res, err := sess.ViewpointIndependent(roi, lod)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	da := sess.DiskAccesses()
	s.served.Add(1)
	s.tileDA.Add(da)

	resp := tileResponse{
		LOD:          lod,
		Vertices:     make(map[string][3]float64, len(res.Vertices)),
		Triangles:    make([][3]int64, 0, len(res.Triangles)),
		DiskAccesses: da,
	}
	for id, p := range res.Vertices {
		resp.Vertices[strconv.FormatInt(id, 10)] = [3]float64{p.X, p.Y, p.Z}
	}
	for _, t := range res.Triangles {
		resp.Triangles = append(resp.Triangles, [3]int64{t.A, t.B, t.C})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("tile encode: %v", err)
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "points:    %d\n", s.terrain.NumPoints())
	fmt.Fprintf(w, "nodes:     %d\n", s.terrain.Dataset.Tree.Len())
	fmt.Fprintf(w, "max LOD:   %g\n", s.terrain.MaxLOD())
	for _, p := range []float64{0.5, 0.9, 0.99} {
		fmt.Fprintf(w, "LOD p%2.0f:   %g\n", p*100, s.terrain.LODPercentile(p))
	}
	served := s.served.Load()
	fmt.Fprintf(w, "tiles:     %d\n", served)
	if served > 0 {
		fmt.Fprintf(w, "DA/tile:   %.1f\n", float64(s.tileDA.Load())/float64(served))
	}
	fmt.Fprintf(w, "pool DA:   %d\n", s.store.DiskAccesses())
}
