// Tileserver: an HTTP service that answers multiresolution mesh-tile
// requests from a Direct Mesh store — the "light-weight applications ...
// and Internet applications" scenario from the paper's introduction.
// Clients ask for a region and a LOD percentile and receive the
// triangulated approximation as JSON.
//
// Requests are served fully concurrently: the buffer pool is sharded
// across roughly one shard per CPU, and each request runs in its own
// store session (dmesh.DMSession), so the per-tile disk-access count is
// exact without a global query lock or a ResetStats between requests.
//
// Tiles are served through a shared mesh-tile cache (dmesh.DMTileCache):
// the requested region and LOD quantize onto a canonical quadtree tile
// grid, hot tiles are materialized once and stitched per request, so
// overlapping requests from many clients cost one materialization
// instead of N full queries. /cachestats exposes the cache counters;
// tile?nocache=1 bypasses the cache for comparison.
//
// Clients animating a camera use /frame instead of /tile: naming a
// session keeps a coherent session (dmesh.DMCoherentSession) alive on
// the server between requests, so consecutive overlapping frames are
// answered incrementally — only the newly exposed volume is fetched.
//
// Every request is traced (internal/obs): wall time and exact per-phase
// disk-access attribution. -introspect (default on) mounts the
// observability endpoints: /metrics (Prometheus text), /slowlog (the N
// slowest requests with their phase breakdowns; threshold set by
// -slowms), /debug/vars (expvar JSON including the metrics registry),
// and the /debug/pprof/ suite.
//
//	go run ./examples/tileserver [-addr :8080] [-slowms 50] [-introspect=true]
//
//	curl 'http://localhost:8080/tile?x0=0.2&y0=0.2&x1=0.5&y1=0.5&lod=0.9'
//	curl 'http://localhost:8080/frame?session=cam1&x0=0.2&y0=0.0&x1=0.7&y1=0.4&near=0.75&far=0.99'
//	curl 'http://localhost:8080/frame?session=cam1&x0=0.2&y0=0.1&x1=0.7&y1=0.5&near=0.75&far=0.99'
//	curl 'http://localhost:8080/stats'
//	curl 'http://localhost:8080/cachestats'
//	curl 'http://localhost:8080/metrics'
//	curl 'http://localhost:8080/slowlog?n=5'
//	curl 'http://localhost:8080/debug/vars'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dmesh"
	"dmesh/internal/obs"
)

type server struct {
	terrain *dmesh.Terrain
	store   *dmesh.DMStore
	model   *dmesh.CostModel
	cache   *dmesh.DMTileCache
	served  atomic.Uint64
	tileDA  atomic.Uint64

	// Telemetry: the metrics registry behind /metrics and /debug/vars,
	// and the ring-buffered slow-request log behind /slowlog.
	reg  *obs.Registry
	slow *obs.SlowLog

	mTileReqs  *obs.Counter
	mFrameReqs *obs.Counter
	mErrors    *obs.Counter
	hTileDA    *obs.Histogram
	hTileNanos *obs.Histogram
	hFrameDA   *obs.Histogram
	hFrameNs   *obs.Histogram

	// Named coherent sessions, one per animating client. A coherent
	// session is stateful and not safe for concurrent use, so each entry
	// carries its own lock; the map itself has another. Evicted clients'
	// frame and disk-access totals roll up into the evicted* fields so
	// /stats never under-reports served work.
	camMu         sync.Mutex
	cameras       map[string]*camera
	camEvictions  uint64
	evictedFrames uint64
	evictedDA     uint64
}

// maxCameras caps the retained coherent sessions; the least recently
// used one is dropped when a new client would exceed it.
const maxCameras = 64

type camera struct {
	mu       sync.Mutex
	cs       *dmesh.DMCoherentSession
	tr       *obs.Trace // the session's trace; reset every frame
	lastUsed time.Time
	frames   uint64
	da       uint64
}

// newServer builds the terrain, the sharded store, the tile cache, and
// the telemetry plumbing. Extracted from main so tests can run the whole
// stack against httptest.
func newServer(size int, slowThreshold time.Duration) (*server, error) {
	terrain, err := dmesh.Build(dmesh.Config{Dataset: "highland", Size: size, Seed: 3})
	if err != nil {
		return nil, err
	}
	store, err := terrain.NewDMStoreWithPools(dmesh.StorePools{Shards: runtime.NumCPU()})
	if err != nil {
		return nil, err
	}
	model, err := dmesh.NewCostModel(store)
	if err != nil {
		return nil, err
	}
	cache, err := terrain.NewTileCache(store, 0)
	if err != nil {
		return nil, err
	}
	s := &server{
		terrain: terrain, store: store, model: model, cache: cache,
		cameras: make(map[string]*camera),
		reg:     obs.NewRegistry(),
		slow:    obs.NewSlowLog(128, slowThreshold),
	}
	s.mTileReqs = s.reg.Counter("tileserver_tile_requests_total", "tile requests served")
	s.mFrameReqs = s.reg.Counter("tileserver_frame_requests_total", "coherent frames served")
	s.mErrors = s.reg.Counter("tileserver_request_errors_total", "requests answered with an error status")
	s.hTileDA = s.reg.Histogram("tileserver_tile_disk_accesses", "disk accesses per tile request")
	s.hTileNanos = s.reg.Histogram("tileserver_tile_latency_nanos", "tile request latency in nanoseconds")
	s.hFrameDA = s.reg.Histogram("tileserver_frame_disk_accesses", "disk accesses per coherent frame")
	s.hFrameNs = s.reg.Histogram("tileserver_frame_latency_nanos", "frame request latency in nanoseconds")
	s.reg.GaugeFunc("tileserver_cache_entries", "resident tile-cache patches", func() int64 {
		return int64(cache.Stats().Entries)
	})
	s.reg.GaugeFunc("tileserver_cache_bytes", "estimated resident tile-cache bytes", func() int64 {
		return int64(cache.Stats().Bytes)
	})
	s.reg.GaugeFunc("tileserver_cameras_active", "retained coherent sessions", func() int64 {
		s.camMu.Lock()
		defer s.camMu.Unlock()
		return int64(len(s.cameras))
	})
	s.reg.PublishExpvar("tileserver")
	return s, nil
}

// routes mounts the serving endpoints, plus (when introspect is set) the
// observability surface: /metrics, /slowlog, /debug/vars, /debug/pprof/.
func (s *server) routes(introspect bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/tile", s.handleTile)
	mux.HandleFunc("/frame", s.handleFrame)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/cachestats", s.handleCacheStats)
	if introspect {
		mux.Handle("/metrics", obs.MetricsHandler(s.reg))
		mux.Handle("/slowlog", obs.SlowLogHandler(s.slow))
		obs.RegisterDebug(mux)
	}
	return mux
}

// lookupCamera returns the named client's coherent session, creating it
// (and evicting the least recently used one past the cap) if needed.
func (s *server) lookupCamera(name string) *camera {
	s.camMu.Lock()
	defer s.camMu.Unlock()
	if c, ok := s.cameras[name]; ok {
		c.lastUsed = time.Now()
		return c
	}
	if len(s.cameras) >= maxCameras {
		var oldest string
		for n, c := range s.cameras {
			if oldest == "" || c.lastUsed.Before(s.cameras[oldest].lastUsed) {
				oldest = n
			}
		}
		// Roll the evicted client's stats into the totals instead of
		// silently dropping them with the session.
		old := s.cameras[oldest]
		old.mu.Lock()
		frames, da := old.frames, old.da
		old.mu.Unlock()
		s.camEvictions++
		s.evictedFrames += frames
		s.evictedDA += da
		delete(s.cameras, oldest)
		log.Printf("evicted coherent session %q (%d frames, %d disk accesses)", oldest, frames, da)
	}
	cs := s.store.NewCoherentSession(s.model)
	c := &camera{cs: cs, tr: cs.EnableTrace(), lastUsed: time.Now()}
	s.cameras[name] = c
	return c
}

type tileResponse struct {
	LOD          float64               `json:"lod"`
	Vertices     map[string][3]float64 `json:"vertices"`
	Triangles    [][3]int64            `json:"triangles"`
	DiskAccesses uint64                `json:"disk_accesses"`
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	size := flag.Int("size", 129, "terrain size")
	slowMS := flag.Int("slowms", 50, "slow-log admission threshold in milliseconds")
	introspect := flag.Bool("introspect", true, "mount /metrics, /slowlog, /debug/vars and /debug/pprof/")
	flag.Parse()

	s, err := newServer(*size, time.Duration(*slowMS)*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %d-point terrain on %s (%d pool shards, introspection %v)",
		s.terrain.NumPoints(), *addr, runtime.NumCPU(), *introspect)
	log.Fatal(http.ListenAndServe(*addr, s.routes(*introspect)))
}

func queryFloat(r *http.Request, name string, def float64) (float64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	return strconv.ParseFloat(v, 64)
}

// jsonError answers a failed request with a JSON body, so API clients
// parsing every response get structured errors instead of plain text.
// I/O faults under a query surface here as a 500 with the error chain
// (e.g. an injected fault or a checksum mismatch) — the server itself
// keeps serving.
func (s *server) jsonError(w http.ResponseWriter, status int, err error) {
	s.mErrors.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if encErr := json.NewEncoder(w).Encode(map[string]string{"error": err.Error()}); encErr != nil {
		log.Printf("error encode: %v", encErr)
	}
}

func (s *server) handleTile(w http.ResponseWriter, r *http.Request) {
	x0, err1 := queryFloat(r, "x0", 0)
	y0, err2 := queryFloat(r, "y0", 0)
	x1, err3 := queryFloat(r, "x1", 1)
	y1, err4 := queryFloat(r, "y1", 1)
	pct, err5 := queryFloat(r, "lod", 0.9)
	for _, err := range []error{err1, err2, err3, err4, err5} {
		if err != nil {
			s.jsonError(w, http.StatusBadRequest, err)
			return
		}
	}
	if pct < 0 || pct > 1 {
		s.jsonError(w, http.StatusBadRequest, fmt.Errorf("lod must be a percentile in [0,1]"))
		return
	}
	roi := dmesh.NewRect(x0, y0, x1, y1)
	lod := s.terrain.LODPercentile(pct)

	var res *dmesh.Result
	var da uint64
	var tr *obs.Trace
	var err error
	start := time.Now()
	nocache := r.URL.Query().Get("nocache") != ""
	if nocache {
		// Bypass the tile cache: one session per request, so the
		// session's counters see only this request's page reads — and the
		// trace samples them directly.
		sess := s.store.NewSession()
		tr = sess.NewTrace()
		res, err = sess.ViewpointIndependent(roi, lod)
		da = sess.DiskAccesses()
	} else {
		// The cache snaps the LOD onto its ladder, materializes any cold
		// tiles (once, however many requests race) and stitches; da is
		// only the store I/O this request's cold tiles cost, and the
		// charge-based trace attributes exactly that.
		tr = dmesh.NewQueryTrace(nil)
		var qs dmesh.TileQueryStats
		res, qs, err = s.cache.QueryTraced(roi, lod, tr)
		lod, da = qs.SnappedE, qs.DA
	}
	dur := time.Since(start)
	if err != nil {
		s.jsonError(w, http.StatusInternalServerError, err)
		return
	}
	s.served.Add(1)
	s.tileDA.Add(da)
	s.mTileReqs.Inc()
	s.hTileDA.Observe(da)
	s.hTileNanos.Observe(uint64(dur))
	s.slow.Observe(fmt.Sprintf("tile roi=[%g,%g,%g,%g] lod=%g nocache=%t", x0, y0, x1, y1, pct, nocache),
		dur, da, tr)

	resp := tileResponse{
		LOD:          lod,
		Vertices:     make(map[string][3]float64, len(res.Vertices)),
		Triangles:    make([][3]int64, 0, len(res.Triangles)),
		DiskAccesses: da,
	}
	for id, p := range res.Vertices {
		resp.Vertices[strconv.FormatInt(id, 10)] = [3]float64{p.X, p.Y, p.Z}
	}
	for _, t := range res.Triangles {
		resp.Triangles = append(resp.Triangles, [3]int64{t.A, t.B, t.C})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("tile encode: %v", err)
	}
}

type frameResponse struct {
	Session      string                `json:"session"`
	Full         bool                  `json:"full"`
	Retained     int                   `json:"retained"`
	Fetched      int                   `json:"fetched"`
	Evicted      int                   `json:"evicted"`
	Vertices     map[string][3]float64 `json:"vertices"`
	Triangles    [][3]int64            `json:"triangles"`
	DiskAccesses uint64                `json:"disk_accesses"`
}

// handleFrame answers one frame of a named client's camera animation
// through its retained coherent session. near and far are LOD
// percentiles at the low- and high-y edges of the view (equal values
// give a uniform frame); overlapping consecutive frames are answered
// incrementally.
func (s *server) handleFrame(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("session")
	if name == "" {
		s.jsonError(w, http.StatusBadRequest, fmt.Errorf("session parameter required"))
		return
	}
	x0, err1 := queryFloat(r, "x0", 0)
	y0, err2 := queryFloat(r, "y0", 0)
	x1, err3 := queryFloat(r, "x1", 1)
	y1, err4 := queryFloat(r, "y1", 1)
	near, err5 := queryFloat(r, "near", 0.75)
	far, err6 := queryFloat(r, "far", 0.99)
	for _, err := range []error{err1, err2, err3, err4, err5, err6} {
		if err != nil {
			s.jsonError(w, http.StatusBadRequest, err)
			return
		}
	}
	if near < 0 || near > 1 || far < 0 || far > 1 {
		s.jsonError(w, http.StatusBadRequest, fmt.Errorf("near and far must be percentiles in [0,1]"))
		return
	}
	plane := dmesh.QueryPlane{
		R:    dmesh.NewRect(x0, y0, x1, y1),
		EMin: s.terrain.LODPercentile(near),
		EMax: s.terrain.LODPercentile(far),
		Axis: 1,
	}

	cam := s.lookupCamera(name)
	cam.mu.Lock()
	start := time.Now()
	res, st, err := cam.cs.Frame(plane)
	dur := time.Since(start)
	if err == nil {
		cam.frames++
		cam.da += st.DA
		// Observe under the camera lock: the trace is reset by the next
		// frame, and Observe copies the phase stats out.
		s.slow.Observe(fmt.Sprintf("frame session=%s roi=[%g,%g,%g,%g]", name, x0, y0, x1, y1),
			dur, st.DA, cam.tr)
	}
	cam.mu.Unlock()
	if err != nil {
		s.jsonError(w, http.StatusInternalServerError, err)
		return
	}
	s.mFrameReqs.Inc()
	s.hFrameDA.Observe(st.DA)
	s.hFrameNs.Observe(uint64(dur))

	resp := frameResponse{
		Session:      name,
		Full:         st.Full,
		Retained:     st.Retained,
		Fetched:      st.Fetched,
		Evicted:      st.Evicted,
		Vertices:     make(map[string][3]float64, len(res.Vertices)),
		Triangles:    make([][3]int64, 0, len(res.Triangles)),
		DiskAccesses: st.DA,
	}
	for id, p := range res.Vertices {
		resp.Vertices[strconv.FormatInt(id, 10)] = [3]float64{p.X, p.Y, p.Z}
	}
	for _, t := range res.Triangles {
		resp.Triangles = append(resp.Triangles, [3]int64{t.A, t.B, t.C})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("frame encode: %v", err)
	}
}

// cameraStats is one retained coherent session's accounting in /stats.
type cameraStats struct {
	Session      string `json:"session"`
	Frames       uint64 `json:"frames"`
	DiskAccesses uint64 `json:"disk_accesses"`
	IdleSeconds  int64  `json:"idle_seconds"`
}

type statsResponse struct {
	Points         int                `json:"points"`
	Nodes          int                `json:"nodes"`
	MaxLOD         float64            `json:"max_lod"`
	LODPercentiles map[string]float64 `json:"lod_percentiles"`

	TilesServed uint64  `json:"tiles_served"`
	TileDA      uint64  `json:"tile_disk_accesses"`
	DAPerTile   float64 `json:"da_per_tile"`

	// Coherent-session LRU: per-client occupancy plus eviction counts.
	// Totals include clients already evicted from the LRU, so nothing is
	// silently dropped.
	Cameras          []cameraStats `json:"cameras"`
	CameraOccupancy  int           `json:"camera_occupancy"`
	CameraCapacity   int           `json:"camera_capacity"`
	CameraEvictions  uint64        `json:"camera_evictions"`
	TotalFrames      uint64        `json:"total_frames"`
	TotalFrameDA     uint64        `json:"total_frame_disk_accesses"`
	EvictedFrames    uint64        `json:"evicted_frames"`
	EvictedFrameDA   uint64        `json:"evicted_frame_disk_accesses"`
	StoreDiskAccsses uint64        `json:"store_disk_accesses"`
}

// statsSnapshot assembles the /stats response at the given time.
// Deterministic for a fixed server state and now: the only map in the
// response is encoded by encoding/json (sorted keys) and the camera list
// is sorted by session name.
func (s *server) statsSnapshot(now time.Time) statsResponse {
	resp := statsResponse{
		Points:         s.terrain.NumPoints(),
		Nodes:          s.terrain.Dataset.Tree.Len(),
		MaxLOD:         s.terrain.MaxLOD(),
		LODPercentiles: make(map[string]float64),
		TilesServed:    s.served.Load(),
		TileDA:         s.tileDA.Load(),
		CameraCapacity: maxCameras,
	}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		resp.LODPercentiles[fmt.Sprintf("p%.0f", p*100)] = s.terrain.LODPercentile(p)
	}
	if resp.TilesServed > 0 {
		resp.DAPerTile = float64(resp.TileDA) / float64(resp.TilesServed)
	}
	s.camMu.Lock()
	resp.CameraOccupancy = len(s.cameras)
	resp.CameraEvictions = s.camEvictions
	resp.EvictedFrames = s.evictedFrames
	resp.EvictedFrameDA = s.evictedDA
	resp.TotalFrames = s.evictedFrames
	resp.TotalFrameDA = s.evictedDA
	for name, c := range s.cameras {
		c.mu.Lock()
		resp.Cameras = append(resp.Cameras, cameraStats{
			Session:      name,
			Frames:       c.frames,
			DiskAccesses: c.da,
			IdleSeconds:  int64(now.Sub(c.lastUsed).Seconds()),
		})
		resp.TotalFrames += c.frames
		resp.TotalFrameDA += c.da
		c.mu.Unlock()
	}
	s.camMu.Unlock()
	sort.Slice(resp.Cameras, func(i, j int) bool { return resp.Cameras[i].Session < resp.Cameras[j].Session })
	resp.StoreDiskAccsses = s.store.DiskAccesses()
	return resp
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.statsSnapshot(time.Now())); err != nil {
		log.Printf("stats encode: %v", err)
	}
}

// cacheStatsResponse is the /cachestats body: global cache counters plus
// the per-tile hit/cost accounting, hottest tiles first (ties keep the
// underlying Key order, so the encoding is deterministic).
type cacheStatsResponse struct {
	Stats  dmesh.TileCacheStats `json:"stats"`
	Ladder []float64            `json:"lod_ladder"`
	Tiles  []cacheTileStat      `json:"tiles"`
}

type cacheTileStat struct {
	Level int    `json:"level"`
	IX    int    `json:"ix"`
	IY    int    `json:"iy"`
	Band  int    `json:"band"`
	Hits  uint64 `json:"hits"`
	DA    uint64 `json:"disk_accesses"`
	Bytes int    `json:"bytes"`
	Nodes int    `json:"nodes"`
}

// cacheStatsSnapshot assembles the /cachestats response. TileStats
// returns tiles in Key total order; the stable sort re-orders by hits
// only, so equal-hit tiles keep a deterministic order.
func (s *server) cacheStatsSnapshot() cacheStatsResponse {
	resp := cacheStatsResponse{
		Stats:  s.cache.Stats(),
		Ladder: s.cache.Ladder(),
	}
	for _, ts := range s.cache.TileStats() {
		resp.Tiles = append(resp.Tiles, cacheTileStat{
			Level: ts.Key.Level, IX: ts.Key.IX, IY: ts.Key.IY, Band: ts.Key.Band,
			Hits: ts.Hits, DA: ts.DA, Bytes: ts.Bytes, Nodes: ts.Nodes,
		})
	}
	sort.SliceStable(resp.Tiles, func(i, j int) bool { return resp.Tiles[i].Hits > resp.Tiles[j].Hits })
	return resp
}

// handleCacheStats reports the shared tile cache: global counters plus
// the per-tile hit/cost accounting, hottest tiles first.
func (s *server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(s.cacheStatsSnapshot()); err != nil {
		log.Printf("cachestats encode: %v", err)
	}
}
