// Tileserver: an HTTP service that answers multiresolution mesh-tile
// requests from a Direct Mesh store — the "light-weight applications ...
// and Internet applications" scenario from the paper's introduction.
// Clients ask for a region and a LOD percentile and receive the
// triangulated approximation as JSON.
//
// Requests are served fully concurrently: the buffer pool is sharded
// across roughly one shard per CPU, and each request runs in its own
// store session (dmesh.DMSession), so the per-tile disk-access count is
// exact without a global query lock or a ResetStats between requests.
//
// Clients animating a camera use /frame instead of /tile: naming a
// session keeps a coherent session (dmesh.DMCoherentSession) alive on
// the server between requests, so consecutive overlapping frames are
// answered incrementally — only the newly exposed volume is fetched.
//
//	go run ./examples/tileserver [-addr :8080]
//
//	curl 'http://localhost:8080/tile?x0=0.2&y0=0.2&x1=0.5&y1=0.5&lod=0.9'
//	curl 'http://localhost:8080/frame?session=cam1&x0=0.2&y0=0.0&x1=0.7&y1=0.4&near=0.75&far=0.99'
//	curl 'http://localhost:8080/frame?session=cam1&x0=0.2&y0=0.1&x1=0.7&y1=0.5&near=0.75&far=0.99'
//	curl 'http://localhost:8080/stats'
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dmesh"
)

type server struct {
	terrain *dmesh.Terrain
	store   *dmesh.DMStore
	model   *dmesh.CostModel
	served  atomic.Uint64
	tileDA  atomic.Uint64

	// Named coherent sessions, one per animating client. A coherent
	// session is stateful and not safe for concurrent use, so each entry
	// carries its own lock; the map itself has another.
	camMu   sync.Mutex
	cameras map[string]*camera
}

// maxCameras caps the retained coherent sessions; the least recently
// used one is dropped when a new client would exceed it.
const maxCameras = 64

type camera struct {
	mu       sync.Mutex
	cs       *dmesh.DMCoherentSession
	lastUsed time.Time
	frames   uint64
	da       uint64
}

// lookupCamera returns the named client's coherent session, creating it
// (and evicting the least recently used one past the cap) if needed.
func (s *server) lookupCamera(name string) *camera {
	s.camMu.Lock()
	defer s.camMu.Unlock()
	if c, ok := s.cameras[name]; ok {
		c.lastUsed = time.Now()
		return c
	}
	if len(s.cameras) >= maxCameras {
		var oldest string
		for n, c := range s.cameras {
			if oldest == "" || c.lastUsed.Before(s.cameras[oldest].lastUsed) {
				oldest = n
			}
		}
		delete(s.cameras, oldest)
	}
	c := &camera{cs: s.store.NewCoherentSession(s.model), lastUsed: time.Now()}
	s.cameras[name] = c
	return c
}

type tileResponse struct {
	LOD          float64               `json:"lod"`
	Vertices     map[string][3]float64 `json:"vertices"`
	Triangles    [][3]int64            `json:"triangles"`
	DiskAccesses uint64                `json:"disk_accesses"`
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	size := flag.Int("size", 129, "terrain size")
	flag.Parse()

	terrain, err := dmesh.Build(dmesh.Config{Dataset: "highland", Size: *size, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	store, err := terrain.NewDMStoreWithPools(dmesh.StorePools{Shards: runtime.NumCPU()})
	if err != nil {
		log.Fatal(err)
	}
	model, err := dmesh.NewCostModel(store)
	if err != nil {
		log.Fatal(err)
	}
	s := &server{terrain: terrain, store: store, model: model, cameras: make(map[string]*camera)}

	mux := http.NewServeMux()
	mux.HandleFunc("/tile", s.handleTile)
	mux.HandleFunc("/frame", s.handleFrame)
	mux.HandleFunc("/stats", s.handleStats)
	log.Printf("serving %d-point terrain on %s (%d pool shards)",
		terrain.NumPoints(), *addr, runtime.NumCPU())
	log.Fatal(http.ListenAndServe(*addr, mux))
}

func queryFloat(r *http.Request, name string, def float64) (float64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	return strconv.ParseFloat(v, 64)
}

func (s *server) handleTile(w http.ResponseWriter, r *http.Request) {
	x0, err1 := queryFloat(r, "x0", 0)
	y0, err2 := queryFloat(r, "y0", 0)
	x1, err3 := queryFloat(r, "x1", 1)
	y1, err4 := queryFloat(r, "y1", 1)
	pct, err5 := queryFloat(r, "lod", 0.9)
	for _, err := range []error{err1, err2, err3, err4, err5} {
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	if pct < 0 || pct > 1 {
		http.Error(w, "lod must be a percentile in [0,1]", http.StatusBadRequest)
		return
	}
	roi := dmesh.NewRect(x0, y0, x1, y1)
	lod := s.terrain.LODPercentile(pct)

	// One session per request: the session's counters see only this
	// request's page reads, so concurrent tiles get exact costs.
	sess := s.store.NewSession()
	res, err := sess.ViewpointIndependent(roi, lod)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	da := sess.DiskAccesses()
	s.served.Add(1)
	s.tileDA.Add(da)

	resp := tileResponse{
		LOD:          lod,
		Vertices:     make(map[string][3]float64, len(res.Vertices)),
		Triangles:    make([][3]int64, 0, len(res.Triangles)),
		DiskAccesses: da,
	}
	for id, p := range res.Vertices {
		resp.Vertices[strconv.FormatInt(id, 10)] = [3]float64{p.X, p.Y, p.Z}
	}
	for _, t := range res.Triangles {
		resp.Triangles = append(resp.Triangles, [3]int64{t.A, t.B, t.C})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("tile encode: %v", err)
	}
}

type frameResponse struct {
	Session      string                `json:"session"`
	Full         bool                  `json:"full"`
	Retained     int                   `json:"retained"`
	Fetched      int                   `json:"fetched"`
	Evicted      int                   `json:"evicted"`
	Vertices     map[string][3]float64 `json:"vertices"`
	Triangles    [][3]int64            `json:"triangles"`
	DiskAccesses uint64                `json:"disk_accesses"`
}

// handleFrame answers one frame of a named client's camera animation
// through its retained coherent session. near and far are LOD
// percentiles at the low- and high-y edges of the view (equal values
// give a uniform frame); overlapping consecutive frames are answered
// incrementally.
func (s *server) handleFrame(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("session")
	if name == "" {
		http.Error(w, "session parameter required", http.StatusBadRequest)
		return
	}
	x0, err1 := queryFloat(r, "x0", 0)
	y0, err2 := queryFloat(r, "y0", 0)
	x1, err3 := queryFloat(r, "x1", 1)
	y1, err4 := queryFloat(r, "y1", 1)
	near, err5 := queryFloat(r, "near", 0.75)
	far, err6 := queryFloat(r, "far", 0.99)
	for _, err := range []error{err1, err2, err3, err4, err5, err6} {
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
	}
	if near < 0 || near > 1 || far < 0 || far > 1 {
		http.Error(w, "near and far must be percentiles in [0,1]", http.StatusBadRequest)
		return
	}
	plane := dmesh.QueryPlane{
		R:    dmesh.NewRect(x0, y0, x1, y1),
		EMin: s.terrain.LODPercentile(near),
		EMax: s.terrain.LODPercentile(far),
		Axis: 1,
	}

	cam := s.lookupCamera(name)
	cam.mu.Lock()
	res, st, err := cam.cs.Frame(plane)
	if err == nil {
		cam.frames++
		cam.da += st.DA
	}
	cam.mu.Unlock()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}

	resp := frameResponse{
		Session:      name,
		Full:         st.Full,
		Retained:     st.Retained,
		Fetched:      st.Fetched,
		Evicted:      st.Evicted,
		Vertices:     make(map[string][3]float64, len(res.Vertices)),
		Triangles:    make([][3]int64, 0, len(res.Triangles)),
		DiskAccesses: st.DA,
	}
	for id, p := range res.Vertices {
		resp.Vertices[strconv.FormatInt(id, 10)] = [3]float64{p.X, p.Y, p.Z}
	}
	for _, t := range res.Triangles {
		resp.Triangles = append(resp.Triangles, [3]int64{t.A, t.B, t.C})
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(resp); err != nil {
		log.Printf("frame encode: %v", err)
	}
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "points:    %d\n", s.terrain.NumPoints())
	fmt.Fprintf(w, "nodes:     %d\n", s.terrain.Dataset.Tree.Len())
	fmt.Fprintf(w, "max LOD:   %g\n", s.terrain.MaxLOD())
	for _, p := range []float64{0.5, 0.9, 0.99} {
		fmt.Fprintf(w, "LOD p%2.0f:   %g\n", p*100, s.terrain.LODPercentile(p))
	}
	served := s.served.Load()
	fmt.Fprintf(w, "tiles:     %d\n", served)
	if served > 0 {
		fmt.Fprintf(w, "DA/tile:   %.1f\n", float64(s.tileDA.Load())/float64(served))
	}
	s.camMu.Lock()
	var camFrames, camDA uint64
	nCams := len(s.cameras)
	for _, c := range s.cameras {
		c.mu.Lock()
		camFrames += c.frames
		camDA += c.da
		c.mu.Unlock()
	}
	s.camMu.Unlock()
	fmt.Fprintf(w, "cameras:   %d\n", nCams)
	fmt.Fprintf(w, "frames:    %d\n", camFrames)
	if camFrames > 0 {
		fmt.Fprintf(w, "DA/frame:  %.1f\n", float64(camDA)/float64(camFrames))
	}
	fmt.Fprintf(w, "pool DA:   %d\n", s.store.DiskAccesses())
}
