// Tileserver: an HTTP service that answers multiresolution mesh-tile
// requests from a Direct Mesh store — the "light-weight applications ...
// and Internet applications" scenario from the paper's introduction.
// Clients ask for a region and a LOD percentile and receive the
// triangulated approximation as JSON.
//
// The serving core lives in internal/serve (shared tile cache, coherent
// camera sessions, per-request DA attribution, /metrics + /slowlog +
// /debug introspection); this binary is the single-node deployment of
// it: build a terrain, mount the server, run until SIGINT/SIGTERM, then
// drain in-flight requests with a graceful shutdown. The same core run
// N times behind a consistent-hash router is the sharded cluster
// (internal/cluster).
//
//	go run ./examples/tileserver [-addr :8080] [-slowms 50] [-introspect=true]
//
//	curl 'http://localhost:8080/tile?x0=0.2&y0=0.2&x1=0.5&y1=0.5&lod=0.9'
//	curl 'http://localhost:8080/frame?session=cam1&x0=0.2&y0=0.0&x1=0.7&y1=0.4&near=0.75&far=0.99'
//	curl 'http://localhost:8080/frame?session=cam1&x0=0.2&y0=0.1&x1=0.7&y1=0.5&near=0.75&far=0.99'
//	curl 'http://localhost:8080/patch?level=1&ix=0&iy=1&band=3'
//	curl 'http://localhost:8080/hottiles?n=10'
//	curl 'http://localhost:8080/stats'
//	curl 'http://localhost:8080/cachestats'
//	curl 'http://localhost:8080/metrics'
//	curl 'http://localhost:8080/slowlog?n=5'
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"dmesh"
	"dmesh/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	size := flag.Int("size", 129, "terrain size")
	slowMS := flag.Int("slowms", 50, "slow-log admission threshold in milliseconds")
	introspect := flag.Bool("introspect", true, "mount /metrics, /slowlog, /debug/vars and /debug/pprof/")
	drainSec := flag.Int("drain", 10, "graceful-shutdown drain timeout in seconds")
	flag.Parse()

	terrain, err := dmesh.Build(dmesh.Config{Dataset: "highland", Size: *size, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	s, err := serve.New(serve.Config{
		Terrain:       terrain,
		SlowThreshold: time.Duration(*slowMS) * time.Millisecond,
		ExpvarName:    "tileserver",
	})
	if err != nil {
		log.Fatal(err)
	}
	bound, err := s.Start(*addr, *introspect)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %d-point terrain on %s (%d pool shards, introspection %v)",
		terrain.NumPoints(), bound, runtime.NumCPU(), *introspect)

	// Run until interrupted, then drain: stop accepting, let in-flight
	// tile fetches finish, give up after the drain timeout.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	sig := <-stop
	log.Printf("received %v, draining (up to %ds)", sig, *drainSec)
	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(*drainSec)*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		log.Fatalf("shutdown: %v", err)
	}
	log.Print("drained cleanly")
}
