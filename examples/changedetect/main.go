// Changedetect: spatiotemporal terrain analysis across captured versions —
// the paper's introduction motivates DBMS-managed terrain partly because
// "terrain data is captured over a period of time thus multiple versions
// may be used together for spatiotemporal analysis". Two survey epochs of
// the same highland differ by an excavation; diffing them at increasingly
// fine LODs shows the cost/precision tradeoff of multiresolution change
// detection.
//
//	go run ./examples/changedetect
package main

import (
	"fmt"
	"log"

	"dmesh"
	"dmesh/internal/heightfield"
)

func main() {
	// Epoch 1: the original survey. Epoch 2: the same terrain after an
	// excavation near (0.3, 0.3).
	g1 := heightfield.Highland(65, 21)
	g2 := heightfield.NewGrid(65)
	copy(g2.Z, g1.Z)
	g2.Excavate(0.3, 0.3, 0.12, 0.5)

	t1, err := dmesh.BuildFromGrid(g1, dmesh.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	t2, err := dmesh.BuildFromGrid(g2, dmesh.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	s1, err := t1.NewDMStore()
	if err != nil {
		log.Fatal(err)
	}
	s2, err := t2.NewDMStore()
	if err != nil {
		log.Fatal(err)
	}

	var series dmesh.Series
	series.Add("epoch-1", s1)
	series.Add("epoch-2", s2)

	roi := dmesh.NewRect(0.02, 0.02, 0.98, 0.98)
	fmt.Printf("%-8s %10s %10s %10s %12s\n", "LOD pct", "mean |dz|", "max |dz|", "changed%", "disk access")
	for _, pct := range []float64{0.95, 0.8, 0.5, 0.2} {
		res, err := series.Diff(0, 1, roi, t1.LODPercentile(pct), 96, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("p%-7.0f %10.4f %10.4f %9.1f%% %12d\n",
			pct*100, res.MeanAbs, res.Max, res.ChangedFraction*100, res.DiskAccesses)
	}
	fmt.Println("\ncoarse LODs detect the change cheaply; fine LODs bound its extent precisely")
}
