// Render: query the same terrain at several levels of detail and write
// hillshaded images plus an error report — the visible version of the
// LOD-vs-quality tradeoff the multiresolution structure exists for.
//
//	go run ./examples/render [-out DIR]
//
// Writes reference.ppm, lod-coarse.ppm, lod-medium.ppm, lod-fine.ppm and
// view-dependent.ppm into DIR (default .).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dmesh"
	"dmesh/internal/render"
)

func main() {
	out := flag.String("out", ".", "output directory for PPM images")
	size := flag.Int("size", 129, "terrain size")
	flag.Parse()

	terrain, err := dmesh.Build(dmesh.Config{Dataset: "crater", Size: *size, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	store, err := terrain.NewDMStore()
	if err != nil {
		log.Fatal(err)
	}

	const imgSize = 512
	ref := render.Grid(terrain.Grid, imgSize, imgSize)
	if err := writePPM(ref, filepath.Join(*out, "reference.ppm")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s %8s %8s %10s %10s\n", "image", "verts", "tris", "RMS err", "max err")

	full := dmesh.NewRect(-1, -1, 2, 2)
	for _, c := range []struct {
		name string
		pct  float64
	}{
		{"lod-coarse", 0.99},
		{"lod-medium", 0.9},
		{"lod-fine", 0.5},
	} {
		res, err := store.ViewpointIndependent(full, terrain.LODPercentile(c.pct))
		if err != nil {
			log.Fatal(err)
		}
		r := render.Mesh(res.Vertices, res.Triangles, imgSize, imgSize)
		q, err := render.Compare(r, ref)
		if err != nil {
			log.Fatal(err)
		}
		if err := writePPM(r, filepath.Join(*out, c.name+".ppm")); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %8d %8d %10.4f %10.4f\n", c.name, len(res.Vertices), len(res.Triangles), q.RMS, q.Max)
	}

	// A viewpoint-dependent mesh: fine at the south edge, coarse north.
	plane := dmesh.QueryPlane{
		R: full, EMin: terrain.LODPercentile(0.5), EMax: terrain.LODPercentile(0.995), Axis: 1,
	}
	view, err := store.SingleBase(plane)
	if err != nil {
		log.Fatal(err)
	}
	r := render.Mesh(view.Vertices, view.Triangles, imgSize, imgSize)
	q, err := render.Compare(r, ref)
	if err != nil {
		log.Fatal(err)
	}
	if err := writePPM(r, filepath.Join(*out, "view-dependent.ppm")); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s %8d %8d %10.4f %10.4f\n", "view-dependent", len(view.Vertices), len(view.Triangles), q.RMS, q.Max)
	fmt.Printf("\nimages written to %s\n", *out)
}

func writePPM(r *render.Raster, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return r.WritePPM(f)
}
