// Quickstart: build a terrain, store it as a Direct Mesh, and run the two
// query types the structure supports.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dmesh"
)

func main() {
	// 1. Generate a terrain and build its multiresolution structures:
	//    full-resolution mesh -> QEM edge-collapse sequence -> Direct Mesh
	//    (LOD intervals + connection lists).
	terrain, err := dmesh.Build(dmesh.Config{Dataset: "highland", Size: 129, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("terrain: %d points, %d multiresolution nodes\n",
		terrain.NumPoints(), terrain.Dataset.Tree.Len())

	// 2. Lay it out on paged storage: a heap file clustered on the 3D
	//    R*-tree that indexes every point's (x, y, LOD-interval) segment.
	store, err := terrain.NewDMStore()
	if err != nil {
		log.Fatal(err)
	}

	// 3. A viewpoint-independent query: one region, one level of detail.
	//    LODs are approximation errors; percentiles of the dataset's LOD
	//    distribution are the convenient way to pick them.
	//    dmesh.MeasuredRun is the paper's cold-cache methodology in one
	//    call: drop the buffer pools, zero the counters, run, count.
	roi := dmesh.NewRect(0.25, 0.25, 0.75, 0.75)
	lod := terrain.LODPercentile(0.9)
	var res *dmesh.Result
	da, err := dmesh.MeasuredRun(store, func() error {
		var qerr error
		res, qerr = store.ViewpointIndependent(roi, lod)
		return qerr
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nuniform mesh over %v at LOD %.4g:\n", roi, lod)
	fmt.Printf("  %d vertices, %d triangles, %d disk accesses\n",
		len(res.Vertices), len(res.Triangles), da)

	// 4. A viewpoint-dependent query: fine detail near the viewer (low y),
	//    coarse in the distance, in a single pass — no tree traversal.
	plane := dmesh.QueryPlane{
		R:    roi,
		EMin: terrain.LODPercentile(0.8),
		EMax: terrain.LODPercentile(0.99),
		Axis: 1, // LOD grows along y
	}
	var view *dmesh.Result
	da, err = dmesh.MeasuredRun(store, func() error {
		var qerr error
		view, qerr = store.SingleBase(plane)
		return qerr
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nviewpoint-dependent mesh (LOD %.4g near -> %.4g far):\n", plane.EMin, plane.EMax)
	fmt.Printf("  %d vertices, %d triangles, %d disk accesses\n",
		len(view.Vertices), len(view.Triangles), da)

	// 5. The multi-base optimizer plans several query cubes hugging the
	//    plane when the cost model predicts fewer disk accesses.
	model, err := dmesh.NewCostModel(store)
	if err != nil {
		log.Fatal(err)
	}
	var mb *dmesh.Result
	da, err = dmesh.MeasuredRun(store, func() error {
		var qerr error
		mb, qerr = store.MultiBase(plane, model, 0)
		return qerr
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmulti-base plan: %d cube(s), %d disk accesses\n", mb.Strips, da)
}
