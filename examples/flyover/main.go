// Flyover: a camera travels across the terrain issuing one viewpoint-
// dependent query per frame — the interactive-visualization workload the
// paper's introduction motivates. Consecutive frames overlap heavily, so
// the program answers the same camera path twice: once by re-running the
// full query every frame (warm buffer pool — the stateless engine's best
// case) and once with a coherent session (dmesh.DMCoherentSession) that
// retains the previous frame's nodes and triangulation and only fetches
// the newly exposed volume. The buffer pool is deliberately small, as on
// a server answering many flyovers at once; that is the regime where
// temporal coherence pays.
//
//	go run ./examples/flyover
package main

import (
	"fmt"
	"log"

	"dmesh"
	"dmesh/internal/workload"
)

const frames = 16

func main() {
	terrain, err := dmesh.Build(dmesh.Config{Dataset: "crater", Size: 129, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	store, err := terrain.NewDMStoreWithPools(dmesh.StorePools{
		Data: 64, Overflow: 16, Index: 64, IDIndex: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	model, err := dmesh.NewCostModel(store)
	if err != nil {
		log.Fatal(err)
	}

	// The camera flies south to north, each frame seeing a viewport-sized
	// ROI with LOD falling off with distance; consecutive frames share 85%
	// of their view.
	path := workload.CameraPath{
		Frames:    frames,
		ViewWidth: 0.5, ViewHeight: 0.4,
		Overlap: 0.85,
		Axis:    1,
		EMin:    terrain.LODPercentile(0.75), // fine near the camera
		EMax:    terrain.LODPercentile(0.99), // coarse at the horizon
		Seed:    7,
	}
	planes := path.Planes()

	// Pass 1: full re-query per frame against a warm pool.
	if err := store.DropCaches(); err != nil {
		log.Fatal(err)
	}
	sess := store.NewSession()
	fullDA := make([]uint64, len(planes))
	for f, plane := range planes {
		sess.ResetStats()
		if _, err := sess.SingleBase(plane); err != nil {
			log.Fatal(err)
		}
		fullDA[f] = sess.DiskAccesses()
	}

	// Pass 2: the coherent session answers the same frames incrementally.
	if err := store.DropCaches(); err != nil {
		log.Fatal(err)
	}
	cs := store.NewCoherentSession(model)
	fmt.Printf("%5s  %-14s  %6s  %6s  %7s  %7s  %7s  %8s  %7s\n",
		"frame", "view y", "verts", "tris", "retain", "fetch", "evict", "DA(full)", "DA(inc)")
	var sumFull, sumInc uint64
	for f, plane := range planes {
		res, st, err := cs.Frame(plane)
		if err != nil {
			log.Fatal(err)
		}
		mode := ""
		if st.Full {
			mode = " (full)"
		}
		fmt.Printf("%5d  y=[%.2f,%.2f]  %6d  %6d  %7d  %7d  %7d  %8d  %6d%s\n",
			f, plane.R.MinY, plane.R.MaxY, len(res.Vertices), len(res.Triangles),
			st.Retained, st.Fetched, st.Evicted, fullDA[f], st.DA, mode)
		if f > 0 { // frame 0 is cold for both engines
			sumFull += fullDA[f]
			sumInc += st.DA
		}
	}
	fmt.Printf("\nframes 1..%d: full re-query %d disk accesses, incremental %d (%.1fx fewer)\n",
		len(planes)-1, sumFull, sumInc, float64(sumFull)/float64(sumInc))
}
