// Flyover: a camera travels across the terrain issuing one viewpoint-
// dependent query per frame — the interactive-visualization workload the
// paper's introduction motivates. Each frame's mesh is finest near the
// camera and coarsens with distance; the program reports per-frame mesh
// sizes and I/O, comparing single-base and multi-base retrieval.
//
//	go run ./examples/flyover
package main

import (
	"fmt"
	"log"

	"dmesh"
)

const frames = 12

func main() {
	terrain, err := dmesh.Build(dmesh.Config{Dataset: "crater", Size: 129, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	store, err := terrain.NewDMStore()
	if err != nil {
		log.Fatal(err)
	}
	model, err := dmesh.NewCostModel(store)
	if err != nil {
		log.Fatal(err)
	}

	// The camera flies south to north over the crater; each frame sees a
	// viewport-sized ROI ahead of it with LOD falling off with distance.
	const (
		viewWidth = 0.5
		viewDepth = 0.4
	)
	eNear := terrain.LODPercentile(0.75) // fine near the camera
	eFar := terrain.LODPercentile(0.99)  // coarse at the horizon

	fmt.Printf("%5s  %-28s  %8s  %8s  %10s  %10s\n",
		"frame", "view", "verts", "tris", "DA(single)", "DA(multi)")
	for f := 0; f < frames; f++ {
		camY := float64(f) / frames * (1 - viewDepth)
		roi := dmesh.NewRect(0.5-viewWidth/2, camY, 0.5+viewWidth/2, camY+viewDepth)
		plane := dmesh.QueryPlane{R: roi, EMin: eNear, EMax: eFar, Axis: 1}

		if err := store.DropCaches(); err != nil {
			log.Fatal(err)
		}
		store.ResetStats()
		sb, err := store.SingleBase(plane)
		if err != nil {
			log.Fatal(err)
		}
		daSingle := store.DiskAccesses()

		if err := store.DropCaches(); err != nil {
			log.Fatal(err)
		}
		store.ResetStats()
		mb, err := store.MultiBase(plane, model, 0)
		if err != nil {
			log.Fatal(err)
		}
		daMulti := store.DiskAccesses()

		if len(mb.Vertices) != len(sb.Vertices) {
			log.Fatalf("frame %d: single/multi vertex sets differ (%d vs %d)",
				f, len(sb.Vertices), len(mb.Vertices))
		}
		fmt.Printf("%5d  y=[%.2f,%.2f] x=[%.2f,%.2f]  %8d  %8d  %10d  %10d\n",
			f, roi.MinY, roi.MaxY, roi.MinX, roi.MaxX,
			len(sb.Vertices), len(sb.Triangles), daSingle, daMulti)
	}
}
