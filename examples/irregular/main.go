// Irregular: the survey-data workflow — irregular XYZ sample points are
// Delaunay-triangulated into a TIN, simplified, stored as a Direct Mesh,
// and queried, exactly like grid terrains ("a surface can be approximated
// using a regular or irregular mesh", Section 1 of the paper).
//
//	go run ./examples/irregular
package main

import (
	"bytes"
	"fmt"
	"log"

	"dmesh"
	"dmesh/internal/demio"
	"dmesh/internal/heightfield"
)

func main() {
	// Simulate a field survey: 4000 irregular samples of a crater.
	source := heightfield.Crater(129, 5)
	samples := source.SampleIrregular(4000, 99)

	// Round-trip them through the XYZ interchange format, as a real
	// pipeline would.
	var xyz bytes.Buffer
	if err := demio.WriteXYZ(&xyz, samples); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("survey: %d points, %d bytes of XYZ\n", len(samples), xyz.Len())

	points, err := dmesh.ReadXYZ(&xyz)
	if err != nil {
		log.Fatal(err)
	}
	terrain, err := dmesh.BuildFromPoints(points, dmesh.Config{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TIN: %d triangles at full resolution, %d multiresolution nodes\n",
		terrain.Mesh.NumTriangles(), terrain.Dataset.Tree.Len())

	store, err := terrain.NewDMStore()
	if err != nil {
		log.Fatal(err)
	}
	roi := dmesh.NewRect(0.25, 0.25, 0.75, 0.75)
	fmt.Printf("\n%-8s %9s %9s %12s\n", "LOD pct", "vertices", "triangles", "disk access")
	for _, pct := range []float64{0.95, 0.8, 0.5, 0.1} {
		var res *dmesh.Result
		da, err := dmesh.MeasuredRun(store, func() error {
			var qerr error
			res, qerr = store.ViewpointIndependent(roi, terrain.LODPercentile(pct))
			return qerr
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("p%-7.0f %9d %9d %12d\n", pct*100, len(res.Vertices), len(res.Triangles), da)
	}
}
