// Compare: run the same multiresolution workload against all three
// storage designs — Direct Mesh, Progressive Mesh on the LOD-quadtree, and
// the HDoV-tree — and print their disk-access costs side by side: the
// paper's evaluation in miniature.
//
//	go run ./examples/compare [-size 129] [-locations 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"dmesh/internal/experiments"
	"dmesh/internal/workload"
)

func main() {
	size := flag.Int("size", 129, "terrain size")
	locations := flag.Int("locations", 5, "random query locations per measurement")
	flag.Parse()

	fmt.Printf("building stores for a %dx%d highland terrain...\n", *size, *size)
	bundle, err := experiments.BuildBundle("highland", *size, 1)
	if err != nil {
		log.Fatal(err)
	}
	cfg := workload.Config{Locations: *locations, Seed: 99}

	fmt.Println("\nviewpoint-independent queries (average disk accesses):")
	fig, err := bundle.Fig6ROI(cfg, []float64{0.02, 0.06, 0.10})
	if err != nil {
		log.Fatal(err)
	}
	printFigure(fig)

	fmt.Println("\nviewpoint-dependent queries (average disk accesses):")
	fig, err = bundle.Fig8ROI(cfg, []float64{0.02, 0.06, 0.10})
	if err != nil {
		log.Fatal(err)
	}
	printFigure(fig)

	avgSim, avgTotal, maxSim := bundle.ConnStats()
	fmt.Printf("\nconnection lists: avg %.1f similar-LOD (max %d) vs %.1f total candidates\n",
		avgSim, maxSim, avgTotal)
	fmt.Println("(the similar-LOD restriction is what keeps Direct Mesh records small)")
}

func printFigure(f *experiments.Figure) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "  %s", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "\t%s", s.Method)
	}
	fmt.Fprintln(w)
	for i := range f.Series[0].Points {
		fmt.Fprintf(w, "  %.1f", f.Series[0].Points[i].X)
		for _, s := range f.Series {
			fmt.Fprintf(w, "\t%.0f", s.Points[i].DA)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
}
