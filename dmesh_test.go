package dmesh_test

import (
	"bytes"
	"math"
	"testing"

	"dmesh"
)

func buildTerrain(t *testing.T) *dmesh.Terrain {
	t.Helper()
	tr, err := dmesh.Build(dmesh.Config{Dataset: "highland", Size: 33, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBuildDefaults(t *testing.T) {
	tr, err := dmesh.Build(dmesh.Config{Size: 17})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Config.Dataset != "highland" {
		t.Fatalf("default dataset = %q", tr.Config.Dataset)
	}
	if tr.NumPoints() != 17*17 {
		t.Fatalf("NumPoints = %d", tr.NumPoints())
	}
	if tr.MaxLOD() <= 0 {
		t.Fatal("MaxLOD must be positive")
	}
}

func TestBuildUnknownDataset(t *testing.T) {
	if _, err := dmesh.Build(dmesh.Config{Dataset: "atlantis", Size: 17}); err == nil {
		t.Fatal("unknown dataset must fail")
	}
}

func TestLODPercentileMonotone(t *testing.T) {
	tr := buildTerrain(t)
	prev := -1.0
	for _, p := range []float64{-0.5, 0, 0.25, 0.5, 0.75, 1, 1.5} {
		v := tr.LODPercentile(p)
		if v < prev {
			t.Fatalf("LODPercentile not monotone at %g", p)
		}
		prev = v
	}
	if tr.LODPercentile(1) != tr.MaxLOD() {
		t.Fatalf("LODPercentile(1) = %g, MaxLOD = %g", tr.LODPercentile(1), tr.MaxLOD())
	}
	if tr.MeanLOD() <= 0 {
		t.Fatal("MeanLOD must be positive")
	}
}

func TestEndToEndQuery(t *testing.T) {
	tr := buildTerrain(t)
	store, err := tr.NewDMStore()
	if err != nil {
		t.Fatal(err)
	}
	roi := dmesh.NewRect(0.1, 0.1, 0.9, 0.9)
	e := tr.LODPercentile(0.5)
	res, err := store.ViewpointIndependent(roi, e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vertices) == 0 || len(res.Triangles) == 0 {
		t.Fatalf("empty result: %d vertices, %d triangles", len(res.Vertices), len(res.Triangles))
	}
	for _, tri := range res.Triangles {
		for _, v := range []int64{tri.A, tri.B, tri.C} {
			if _, ok := res.Vertices[v]; !ok {
				t.Fatalf("triangle references missing vertex %d", v)
			}
		}
	}
}

func TestEndToEndViewpointDependent(t *testing.T) {
	tr := buildTerrain(t)
	store, err := tr.NewDMStore()
	if err != nil {
		t.Fatal(err)
	}
	model, err := dmesh.NewCostModel(store)
	if err != nil {
		t.Fatal(err)
	}
	roi := dmesh.NewRect(0.1, 0.1, 0.9, 0.9)
	qp := dmesh.PlaneForAngle(roi, tr.LODPercentile(0.3), 0.01, 1)
	sb, err := store.SingleBase(qp)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := store.MultiBase(qp, model, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sb.Vertices) == 0 || len(mb.Vertices) != len(sb.Vertices) {
		t.Fatalf("vertex sets: sb=%d mb=%d", len(sb.Vertices), len(mb.Vertices))
	}
}

func TestBaselineStores(t *testing.T) {
	tr := buildTerrain(t)
	pmStore, err := tr.NewPMStore()
	if err != nil {
		t.Fatal(err)
	}
	hdovStore, err := tr.NewHDoVStore()
	if err != nil {
		t.Fatal(err)
	}
	roi := dmesh.NewRect(0.2, 0.2, 0.8, 0.8)
	e := tr.LODPercentile(0.5)
	pres, err := pmStore.QueryUniform(roi, e)
	if err != nil {
		t.Fatal(err)
	}
	hres, err := hdovStore.QueryUniform(roi, e)
	if err != nil {
		t.Fatal(err)
	}
	if len(pres.Frontier) == 0 || len(hres.Points) == 0 {
		t.Fatal("baseline queries returned nothing")
	}
}

func TestMaxAngle(t *testing.T) {
	if got := dmesh.MaxAngle(1, 1); math.Abs(got-math.Pi/4) > 1e-12 {
		t.Fatalf("MaxAngle(1,1) = %g", got)
	}
	if got := dmesh.MaxAngle(1, 0); got != math.Pi/2 {
		t.Fatalf("MaxAngle(1,0) = %g", got)
	}
}

func TestVerticalDistanceConfig(t *testing.T) {
	tr, err := dmesh.Build(dmesh.Config{Dataset: "crater", Size: 17, Seed: 1, VerticalDistanceError: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.MaxLOD() <= 0 {
		t.Fatal("vertical-distance build produced no LOD range")
	}
}

func TestIrregularTerrain(t *testing.T) {
	tr, err := dmesh.Build(dmesh.Config{Dataset: "crater", Size: 65, Seed: 3, IrregularPoints: 600})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumPoints() != 600 {
		t.Fatalf("NumPoints = %d, want 600", tr.NumPoints())
	}
	store, err := tr.NewDMStore()
	if err != nil {
		t.Fatal(err)
	}
	res, err := store.ViewpointIndependent(dmesh.NewRect(0, 0, 1, 1), tr.LODPercentile(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vertices) == 0 || len(res.Triangles) == 0 {
		t.Fatalf("irregular terrain query: %d vertices, %d triangles", len(res.Vertices), len(res.Triangles))
	}
	// Full resolution over the whole domain must return every point.
	full, err := store.ViewpointIndependent(dmesh.NewRect(-1, -1, 2, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Vertices) != 600 {
		t.Fatalf("full-resolution irregular query returned %d of 600 points", len(full.Vertices))
	}
}

func TestSequenceSaveLoad(t *testing.T) {
	tr := buildTerrain(t)
	var buf bytes.Buffer
	if err := tr.SaveSequence(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := dmesh.LoadSequence(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumPoints() != tr.NumPoints() || loaded.MaxLOD() != tr.MaxLOD() {
		t.Fatalf("loaded terrain differs: %d points, maxLOD %g", loaded.NumPoints(), loaded.MaxLOD())
	}
	// Queries against a store built from the loaded sequence match the
	// original.
	a, err := tr.NewDMStore()
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.NewDMStore()
	if err != nil {
		t.Fatal(err)
	}
	roi := dmesh.NewRect(0.1, 0.1, 0.9, 0.9)
	e := tr.LODPercentile(0.5)
	ra, err := a.ViewpointIndependent(roi, e)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.ViewpointIndependent(roi, e)
	if err != nil {
		t.Fatal(err)
	}
	if len(ra.Vertices) != len(rb.Vertices) || len(ra.Edges) != len(rb.Edges) {
		t.Fatalf("loaded store answers differently: %d/%d vertices", len(rb.Vertices), len(ra.Vertices))
	}
	if _, err := loaded.NewHDoVStore(); err == nil {
		t.Fatal("HDoV store must be unavailable without a grid")
	}
}

func TestRadialThroughFacade(t *testing.T) {
	tr := buildTerrain(t)
	store, err := tr.NewDMStore()
	if err != nil {
		t.Fatal(err)
	}
	res, err := store.Radial(dmesh.NewRect(0, 0, 1, 1), dmesh.Point2{X: 0.5, Y: 0.0},
		tr.LODPercentile(0.6)/0.2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vertices) == 0 {
		t.Fatal("empty radial result")
	}
	if res.Strips != 16 {
		t.Fatalf("expected 16 tiles, got %d", res.Strips)
	}
}

func TestTileCacheFacade(t *testing.T) {
	tr := buildTerrain(t)
	store, err := tr.NewDMStore()
	if err != nil {
		t.Fatal(err)
	}
	ladder := tr.DefaultLODLadder()
	if len(ladder) == 0 {
		t.Fatal("empty default ladder")
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i] <= ladder[i-1] {
			t.Fatalf("ladder not strictly ascending: %v", ladder)
		}
	}
	cache, err := tr.NewTileCache(store, 0)
	if err != nil {
		t.Fatal(err)
	}
	roi := dmesh.NewRect(0.2, 0.2, 0.7, 0.6)
	e := tr.LODPercentile(0.9)
	res, qs, err := cache.Query(roi, e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vertices) == 0 || len(res.Triangles) == 0 {
		t.Fatal("empty cached result")
	}
	want, err := store.ViewpointIndependent(roi, qs.SnappedE)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vertices) != len(want.Vertices) || len(res.Triangles) != len(want.Triangles) {
		t.Fatalf("cached %d/%d verts/tris, direct %d/%d",
			len(res.Vertices), len(res.Triangles), len(want.Vertices), len(want.Triangles))
	}
	if st := cache.Stats(); st.Queries != 1 || st.Misses == 0 {
		t.Fatalf("unexpected stats %+v", st)
	}

	// Explicit-config constructor.
	c2, err := dmesh.NewTileCacheWithConfig(dmesh.TileCacheConfig{
		Store: store, Ladder: []float64{e}, MaxLevel: 2, MaxBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.SnapE(e * 3); got != e {
		t.Fatalf("SnapE = %g, want %g", got, e)
	}
}
