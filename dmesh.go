// Package dmesh is the public facade of the Direct Mesh reproduction
// (Xu, Zhou, Lin; ICDE 2004): multiresolution terrain storage and
// query processing over a relational-style page store.
//
// The typical flow:
//
//	t, err := dmesh.Build(dmesh.Config{Dataset: "highland", Size: 257, Seed: 1})
//	store, err := t.NewDMStore()
//	res, err := store.ViewpointIndependent(dmesh.NewRect(0.2, 0.2, 0.6, 0.6), t.LODPercentile(0.5))
//	// res.Vertices, res.Edges, res.Triangles hold the approximation.
//
// Build generates a synthetic terrain, triangulates it, simplifies it with
// quadric error metrics into a progressive-mesh collapse sequence, and
// derives the Direct Mesh dataset (LOD intervals + connection lists). The
// New*Store methods lay the data out on paged storage: NewDMStore for the
// paper's contribution (heap file + 3D R*-tree), NewPMStore for the
// progressive-mesh baseline on an LOD-quadtree, NewHDoVStore for the
// HDoV-tree baseline. All stores count disk accesses the way the paper
// measures them.
package dmesh

import (
	"fmt"
	"io"
	"sort"

	"dmesh/internal/costmodel"
	"dmesh/internal/delaunay"
	"dmesh/internal/demio"
	"dmesh/internal/dm"
	"dmesh/internal/geom"
	"dmesh/internal/hdov"
	"dmesh/internal/heightfield"
	"dmesh/internal/mesh"
	"dmesh/internal/mtmcodec"
	"dmesh/internal/obs"
	"dmesh/internal/pm"
	"dmesh/internal/simplify"
	"dmesh/internal/temporal"
	"dmesh/internal/tilecache"
)

// Re-exported geometry types: these appear throughout the query API.
type (
	// Rect is an axis-aligned region of interest in the (x, y) plane.
	Rect = geom.Rect
	// Point3 is a terrain point.
	Point3 = geom.Point3
	// Point2 is a point in the (x, y) plane (e.g. a radial-query viewer).
	Point2 = geom.Point2
	// QueryPlane describes a viewpoint-dependent query: LOD varying
	// linearly across the ROI.
	QueryPlane = geom.QueryPlane
	// Triangle is a triangle over vertex IDs.
	Triangle = geom.Triangle
	// Result is a Direct Mesh query result.
	Result = dm.Result
	// DMStore is the disk-resident Direct Mesh.
	DMStore = dm.Store
	// DMSession is a per-request view of a DMStore that attributes disk
	// accesses to itself (DMStore.NewSession), enabling concurrent
	// serving without a global query lock.
	DMSession = dm.Session
	// DMCoherentSession answers a temporally coherent frame sequence (a
	// terrain flyover) incrementally, retaining the previous frame's
	// fetched nodes and triangulation (DMStore.NewCoherentSession).
	DMCoherentSession = dm.CoherentSession
	// FrameStats describes how one coherent frame was answered: delta vs
	// full, nodes retained/fetched/evicted, disk accesses.
	FrameStats = dm.FrameStats
	// DMTileCache serves uniform queries from a shared cache of
	// materialized mesh tiles (quadtree grid x discrete LOD ladder), so
	// overlapping ROIs from many clients cost one materialization
	// (Terrain.NewTileCache, tilecache.New).
	DMTileCache = tilecache.Cache
	// TileCacheConfig parameterizes a DMTileCache (store, LOD ladder,
	// grid depth, byte budget).
	TileCacheConfig = tilecache.Config
	// TileCacheStats is a DMTileCache counter snapshot (hits, misses,
	// singleflight dedups, evictions, bytes).
	TileCacheStats = tilecache.Stats
	// TileQueryStats describes how one DMTileCache.Query was answered
	// (snapped LOD, tiles stitched, cold misses, disk accesses).
	TileQueryStats = tilecache.QueryStats
	// BatchQuery describes one independent query for DMStore.QueryBatch.
	BatchQuery = dm.BatchQuery
	// BatchResult is one QueryBatch outcome: mesh, per-query disk
	// accesses, error.
	BatchResult = dm.BatchResult
	// PMStore is the disk-resident Progressive Mesh baseline.
	PMStore = pm.Store
	// HDoVStore is the disk-resident HDoV-tree baseline.
	HDoVStore = hdov.Store
	// CostModel estimates range-query disk accesses for the multi-base
	// optimizer.
	CostModel = costmodel.Model
	// Series holds multiple terrain versions for spatiotemporal change
	// analysis.
	Series = temporal.Series
	// DiffResult summarizes elevation change between two versions.
	DiffResult = temporal.DiffResult
)

// ColdMeasurable is the store-side contract of a paper-style measured
// query: drop every buffer pool, zero the counters, run, read the
// disk-access total. DMStore, DMSession, PMStore, and HDoVStore all
// satisfy it.
type ColdMeasurable = obs.ColdMeasurable

// QueryTrace records one query's hierarchical phase spans with exact
// per-phase disk-access attribution (see internal/obs). Install on a
// store with DMStore.SetTrace, or per session with DMSession.NewTrace.
type QueryTrace = obs.Trace

// NewQueryTrace builds a trace sampling the given monotone disk-access
// counter (e.g. a DMSession's DiskAccesses method). A nil sampler makes
// a charge-based trace for callers that attribute DA explicitly, like
// DMTileCache.QueryTraced.
func NewQueryTrace(sample func() uint64) *QueryTrace { return obs.NewTrace(sample) }

// MeasuredRun executes fn as a cold measured query — DropCaches +
// ResetStats, then fn, then the store's disk-access total — the exact
// prologue the paper's cold-cache methodology requires. The DA count is
// returned even when fn fails.
func MeasuredRun(s ColdMeasurable, fn func() error) (uint64, error) {
	return obs.MeasuredRun(s, fn)
}

// NewRect returns the rectangle spanning two corners given in any order.
func NewRect(x0, y0, x1, y1 float64) Rect { return geom.NewRect(x0, y0, x1, y1) }

// PlaneForAngle builds a viewpoint-dependent query plane over r from a
// start LOD and an angle in radians (Figure 7 of the paper).
func PlaneForAngle(r Rect, emin, angle float64, axis int) QueryPlane {
	return geom.PlaneForAngle(r, emin, angle, axis)
}

// MaxAngle returns the paper's θmax for a dataset maximum LOD over a ROI
// extent.
func MaxAngle(lodMax, roiExtent float64) float64 { return geom.MaxAngle(lodMax, roiExtent) }

// Config selects a terrain and its preprocessing.
type Config struct {
	// Dataset is "highland" (the stand-in for the paper's 2M-point mining
	// terrain) or "crater" (the stand-in for the 17M-point Crater Lake
	// DEM).
	Dataset string
	// Size is the heightfield side length; Size*Size points.
	Size int
	// Seed makes generation deterministic.
	Seed int64
	// VerticalDistanceError selects the simple vertical-distance error
	// measure instead of quadric error metrics.
	VerticalDistanceError bool
	// IrregularPoints, when positive, samples that many survey-style
	// irregular points from the heightfield and Delaunay-triangulates
	// them instead of using the regular grid — the paper's "irregular
	// mesh" input modality.
	IrregularPoints int
}

// Terrain bundles a generated terrain with its multiresolution structures.
type Terrain struct {
	Config   Config
	Grid     *heightfield.Grid
	Mesh     *mesh.Mesh
	Sequence *simplify.Sequence
	Dataset  *dm.Dataset

	sortedLODs []float64
}

// Build generates a synthetic terrain and its multiresolution structures.
func Build(cfg Config) (*Terrain, error) {
	if cfg.Dataset == "" {
		cfg.Dataset = "highland"
	}
	if cfg.Size == 0 {
		cfg.Size = 129
	}
	g, err := heightfield.Named(cfg.Dataset, cfg.Size, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return BuildFromGrid(g, cfg)
}

// BuildFromGrid builds the multiresolution structures over an existing
// heightfield (for example one read with ReadASCIIGrid). Heights keep
// their original units, so LOD values come out in those units too; callers
// with very different horizontal and vertical scales should normalize
// first (heightfield.Grid.Normalize). Config.Dataset and Config.Size are
// ignored.
func BuildFromGrid(g *heightfield.Grid, cfg Config) (*Terrain, error) {
	var m *mesh.Mesh
	if cfg.IrregularPoints > 0 {
		pts := g.SampleIrregular(cfg.IrregularPoints, cfg.Seed+1)
		var err error
		if m, err = triangulatePoints(pts); err != nil {
			return nil, err
		}
	} else {
		m = mesh.FromGrid(g)
	}
	return finishBuild(cfg, g, m)
}

// BuildFromPoints builds the multiresolution structures over an irregular
// point set in the unit square (for example one read with ReadXYZ),
// Delaunay-triangulating it first. Config generation fields are ignored.
func BuildFromPoints(pts []Point3, cfg Config) (*Terrain, error) {
	m, err := triangulatePoints(pts)
	if err != nil {
		return nil, err
	}
	return finishBuild(cfg, nil, m)
}

func triangulatePoints(pts []geom.Point3) (*mesh.Mesh, error) {
	pts2 := make([]geom.Point2, len(pts))
	for i, p := range pts {
		pts2[i] = p.XY()
	}
	tris, err := delaunay.Triangulate(pts2)
	if err != nil {
		return nil, fmt.Errorf("dmesh: triangulate points: %w", err)
	}
	return &mesh.Mesh{Positions: append([]geom.Point3(nil), pts...), Tris: tris}, nil
}

// finishBuild runs the shared tail of every construction path:
// simplification, Direct Mesh derivation, LOD statistics. grid may be nil
// for point-set inputs (visibility-dependent features like the HDoV
// baseline then need an explicit grid).
func finishBuild(cfg Config, g *heightfield.Grid, m *mesh.Mesh) (*Terrain, error) {
	opts := simplify.Options{}
	if cfg.VerticalDistanceError {
		opts.Metric = simplify.VerticalDistance
	}
	seq, err := simplify.Run(m, opts)
	if err != nil {
		return nil, fmt.Errorf("dmesh: simplify: %w", err)
	}
	ds, err := dm.FromSequence(seq)
	if err != nil {
		return nil, err
	}
	t := &Terrain{Config: cfg, Grid: g, Mesh: m, Sequence: seq, Dataset: ds}
	for i := range ds.Tree.Nodes {
		if !ds.Tree.Nodes[i].IsLeaf() {
			t.sortedLODs = append(t.sortedLODs, ds.Tree.Nodes[i].ELow)
		}
	}
	sort.Float64s(t.sortedLODs)
	return t, nil
}

// NumPoints returns the number of original terrain points.
func (t *Terrain) NumPoints() int { return t.Sequence.BaseVertices }

// MaxLOD returns the dataset's maximum LOD value (the root's error).
func (t *Terrain) MaxLOD() float64 { return t.Dataset.MaxE() }

// LODPercentile maps p in [0, 1] to the p-th percentile of the internal
// nodes' LOD values. Raw quadric errors are extremely skewed, so
// percentiles are how meaningful LOD sweeps are expressed.
func (t *Terrain) LODPercentile(p float64) float64 {
	if len(t.sortedLODs) == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return t.sortedLODs[int(p*float64(len(t.sortedLODs)-1))]
}

// MeanLOD returns the arithmetic mean of the internal nodes' LOD values
// (the paper's "average LOD value of the dataset").
func (t *Terrain) MeanLOD() float64 {
	if len(t.sortedLODs) == 0 {
		return 0
	}
	var sum float64
	for _, e := range t.sortedLODs {
		sum += e
	}
	return sum / float64(len(t.sortedLODs))
}

// StorePools re-exports the Direct Mesh store pool configuration.
type StorePools = dm.StorePools

// Layout selects the physical order of Direct Mesh records on disk.
type Layout = dm.Layout

// Physical record layouts (see dm.Layout). LayoutConnect is the
// connectivity-clustered layout that co-locates connection-list
// neighbors and their overflow chains; LayoutPacked adds the compressed
// delta-varint record encoding on the same placement.
const (
	LayoutSTR      = dm.LayoutSTR
	LayoutHilbert  = dm.LayoutHilbert
	LayoutRowMajor = dm.LayoutRowMajor
	LayoutConnect  = dm.LayoutConnect
	LayoutPacked   = dm.LayoutPacked
)

// ParseLayout parses a layout flag value ("str", "hilbert", "rowmajor",
// "connect", "packed").
func ParseLayout(name string) (Layout, error) { return dm.ParseLayout(name) }

// RepackDMStore rewrites an open store into dir under the layout (and
// pools) given — the offline re-layout pass behind cmd/dmrepack. The
// source store is only read.
func RepackDMStore(src *DMStore, pools StorePools, dir string) (*DMStore, error) {
	return dm.Repack(src, pools, dir)
}

// NewDMStore lays the Direct Mesh out on paged storage: records in Hilbert
// order, a 3D R*-tree over vertical segments, a B+-tree by ID.
func (t *Terrain) NewDMStore() (*DMStore, error) {
	return dm.BuildStore(t.Dataset, dm.StorePools{})
}

// NewDMStoreWithPools is NewDMStore with explicit buffer-pool sizes.
func (t *Terrain) NewDMStoreWithPools(pools StorePools) (*DMStore, error) {
	return dm.BuildStore(t.Dataset, pools)
}

// BuildDMStoreAt builds the Direct Mesh store as files in dir, reopenable
// with OpenDMStore.
func (t *Terrain) BuildDMStoreAt(dir string) (*DMStore, error) {
	return dm.BuildStoreAt(t.Dataset, dm.StorePools{}, dir)
}

// BuildDMStoreAtWithPools is BuildDMStoreAt with explicit pool
// configuration (layout, buffer sizes, checksums).
func (t *Terrain) BuildDMStoreAtWithPools(pools StorePools, dir string) (*DMStore, error) {
	return dm.BuildStoreAt(t.Dataset, pools, dir)
}

// OpenDMStore opens a store directory written by BuildDMStoreAt.
func OpenDMStore(dir string) (*DMStore, error) {
	return dm.OpenStore(dir, dm.StorePools{})
}

// DefaultLODLadder returns the discrete LOD rungs a tile cache
// materializes at by default: a spread of the terrain's LOD percentiles
// from mid-detail to the coarse end, deduplicated and ascending.
func (t *Terrain) DefaultLODLadder() []float64 {
	pcts := []float64{0.50, 0.70, 0.80, 0.90, 0.95, 0.97, 0.99, 0.995}
	var ladder []float64
	for _, p := range pcts {
		e := t.LODPercentile(p)
		if len(ladder) == 0 || e > ladder[len(ladder)-1] {
			ladder = append(ladder, e)
		}
	}
	return ladder
}

// NewTileCache builds a shared mesh-tile cache over a DM store built from
// this terrain, using the default LOD ladder. maxBytes <= 0 selects the
// default byte budget.
func (t *Terrain) NewTileCache(s *DMStore, maxBytes int) (*DMTileCache, error) {
	if maxBytes < 0 {
		maxBytes = 0
	}
	return tilecache.New(tilecache.Config{
		Store:    s,
		Ladder:   t.DefaultLODLadder(),
		MaxBytes: maxBytes,
	})
}

// NewTileCacheWithConfig builds a tile cache with explicit configuration
// (custom LOD ladder, grid depth, byte budget).
func NewTileCacheWithConfig(cfg TileCacheConfig) (*DMTileCache, error) {
	return tilecache.New(cfg)
}

// NewCostModel scans a DM store's R*-tree into the cost model driving the
// multi-base optimizer. Build it once per store (a once-off cost).
func NewCostModel(s *DMStore) (*CostModel, error) {
	return s.CostModel()
}

// NewPMStore lays the Progressive Mesh baseline out on an LOD-quadtree
// with a B+-tree ID index (the paper's PM + LOD-quadtree configuration).
func (t *Terrain) NewPMStore() (*PMStore, error) {
	return pm.BuildStore(t.Dataset.Tree, 4096, 1024)
}

// NewHDoVStore builds the HDoV-tree baseline (LOD-R-tree with
// visibility). It needs the source heightfield for the visibility
// precomputation, so it is unavailable for point-set terrains.
func (t *Terrain) NewHDoVStore() (*HDoVStore, error) {
	if t.Grid == nil {
		return nil, fmt.Errorf("dmesh: HDoV store needs a heightfield terrain (built from a grid)")
	}
	return hdov.Build(t.Dataset.Tree, t.Grid, hdov.Options{})
}

// SaveSequence writes the terrain's multiresolution collapse sequence in
// the compact MTM format (varint/delta coded, DEFLATE compressed) —
// simplification is the expensive step, so preprocessed terrains ship
// this way.
func (t *Terrain) SaveSequence(w io.Writer) error {
	return mtmcodec.Write(w, t.Sequence)
}

// LoadSequence reads a compact MTM stream written by SaveSequence and
// rebuilds the terrain's query structures. The source heightfield and
// full-resolution mesh are not part of the stream, so Grid and Mesh are
// nil on the returned terrain (the HDoV baseline, which needs the grid,
// is unavailable).
func LoadSequence(r io.Reader) (*Terrain, error) {
	seq, err := mtmcodec.Read(r)
	if err != nil {
		return nil, err
	}
	ds, err := dm.FromSequence(seq)
	if err != nil {
		return nil, err
	}
	t := &Terrain{Sequence: seq, Dataset: ds}
	for i := range ds.Tree.Nodes {
		if !ds.Tree.Nodes[i].IsLeaf() {
			t.sortedLODs = append(t.sortedLODs, ds.Tree.Nodes[i].ELow)
		}
	}
	sort.Float64s(t.sortedLODs)
	return t, nil
}

// ReadASCIIGrid parses an ESRI/Arc-Info ASCII grid DEM (the format USGS
// DEMs ship in) into a heightfield usable with BuildFromGrid.
func ReadASCIIGrid(r io.Reader) (*heightfield.Grid, error) {
	g, _, err := demio.ReadASCIIGrid(r)
	return g, err
}

// ReadXYZ parses "x y z" survey points (normalized into the unit square)
// usable with BuildFromPoints.
func ReadXYZ(r io.Reader) ([]Point3, error) {
	pts, _, err := demio.ReadXYZ(r)
	return pts, err
}
