// Benchmarks reproducing the paper's evaluation, one per figure, plus
// ablations of the design decisions in DESIGN.md. The interesting output
// is the custom metric disk-accesses/op (the paper's y axis), not ns/op.
// Run with:
//
//	go test -bench=. -benchmem
//
// Full-scale figure series are produced by cmd/dmbench; these benchmarks
// run a representative middle point of each sweep at a laptop-friendly
// scale so the whole suite stays fast.
package dmesh_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"dmesh"
	"dmesh/internal/costmodel"
	"dmesh/internal/dm"
	"dmesh/internal/experiments"
	"dmesh/internal/workload"
)

const (
	benchSizeHighland = 129
	benchSizeCrater   = 161
	benchSeed         = 1
)

var (
	benchMu      sync.Mutex
	benchBundles = map[string]*experiments.Bundle{}
)

func bundle(b *testing.B, name string) *experiments.Bundle {
	b.Helper()
	benchMu.Lock()
	defer benchMu.Unlock()
	if bb, ok := benchBundles[name]; ok {
		return bb
	}
	size := benchSizeHighland
	if name == "crater" {
		size = benchSizeCrater
	}
	bb, err := experiments.BuildBundle(name, size, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	benchBundles[name] = bb
	return bb
}

func benchCfg() workload.Config { return workload.Config{Locations: 5, Seed: benchSeed} }

// reportSeries runs one figure and reports each method's average disk
// accesses as custom metrics.
func reportSeries(b *testing.B, run func() (*experiments.Figure, error)) {
	b.Helper()
	var fig *experiments.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = run()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, s := range fig.Series {
		var sum float64
		for _, p := range s.Points {
			sum += p.DA
		}
		b.ReportMetric(sum/float64(len(s.Points)), "DA/"+string(s.Method))
	}
}

// --- Figure 6: viewpoint-independent (uniform mesh) ------------------------

func BenchmarkFig6aUniformROIHighland(b *testing.B) {
	bb := bundle(b, "highland")
	reportSeries(b, func() (*experiments.Figure, error) {
		return bb.Fig6ROI(benchCfg(), []float64{0.06})
	})
}

func BenchmarkFig6bUniformLODHighland(b *testing.B) {
	bb := bundle(b, "highland")
	reportSeries(b, func() (*experiments.Figure, error) {
		return bb.Fig6LOD(benchCfg(), 0.10, []float64{0.9})
	})
}

func BenchmarkFig6cUniformROICrater(b *testing.B) {
	bb := bundle(b, "crater")
	reportSeries(b, func() (*experiments.Figure, error) {
		return bb.Fig6ROI(benchCfg(), []float64{0.03})
	})
}

func BenchmarkFig6dUniformLODCrater(b *testing.B) {
	bb := bundle(b, "crater")
	reportSeries(b, func() (*experiments.Figure, error) {
		return bb.Fig6LOD(benchCfg(), 0.05, []float64{0.9})
	})
}

// --- Figure 8: viewpoint-dependent --------------------------------------

func BenchmarkFig8aViewROIHighland(b *testing.B) {
	bb := bundle(b, "highland")
	reportSeries(b, func() (*experiments.Figure, error) {
		return bb.Fig8ROI(benchCfg(), []float64{0.06})
	})
}

func BenchmarkFig8bViewLODHighland(b *testing.B) {
	bb := bundle(b, "highland")
	reportSeries(b, func() (*experiments.Figure, error) {
		return bb.Fig8LOD(benchCfg(), 0.10, []float64{0.9})
	})
}

func BenchmarkFig8cViewAngleHighland(b *testing.B) {
	bb := bundle(b, "highland")
	reportSeries(b, func() (*experiments.Figure, error) {
		return bb.Fig8Angle(benchCfg(), 0.10, []float64{0.5})
	})
}

func BenchmarkFig8dViewROICrater(b *testing.B) {
	bb := bundle(b, "crater")
	reportSeries(b, func() (*experiments.Figure, error) {
		return bb.Fig8ROI(benchCfg(), []float64{0.03})
	})
}

func BenchmarkFig8eViewLODCrater(b *testing.B) {
	bb := bundle(b, "crater")
	reportSeries(b, func() (*experiments.Figure, error) {
		return bb.Fig8LOD(benchCfg(), 0.05, []float64{0.9})
	})
}

func BenchmarkFig8fViewAngleCrater(b *testing.B) {
	bb := bundle(b, "crater")
	reportSeries(b, func() (*experiments.Figure, error) {
		return bb.Fig8Angle(benchCfg(), 0.05, []float64{0.5})
	})
}

// --- Section 4 in-text numbers -------------------------------------------

func BenchmarkConnStats(b *testing.B) {
	bb := bundle(b, "highland")
	var avgSim, avgTotal float64
	for i := 0; i < b.N; i++ {
		avgSim, avgTotal, _ = bb.ConnStats()
	}
	b.ReportMetric(avgSim, "avg-similar-conn")
	b.ReportMetric(avgTotal, "avg-total-conn")
}

// --- Ablations (DESIGN.md Section 5) --------------------------------------

// BenchmarkAblationClustering compares heap layouts for the DM store: the
// default index-clustered (STR) order against pure (x, y) Hilbert order and
// unclustered creation order.
func BenchmarkAblationClustering(b *testing.B) {
	bb := bundle(b, "highland")
	e := bb.Terrain.LODPercentile(0.9)
	rois := workload.ROIs(benchCfg(), 0.08)
	for _, lay := range []struct {
		name   string
		layout dm.Layout
	}{
		{"STR", dm.LayoutSTR},
		{"Hilbert", dm.LayoutHilbert},
		{"RowMajor", dm.LayoutRowMajor},
	} {
		b.Run(lay.name, func(b *testing.B) {
			store, err := dm.BuildStore(bb.Terrain.Dataset, dm.StorePools{Layout: lay.layout})
			if err != nil {
				b.Fatal(err)
			}
			var da uint64
			for i := 0; i < b.N; i++ {
				da = 0
				for _, roi := range rois {
					roi := roi
					qda, err := dmesh.MeasuredRun(store, func() error {
						_, err := store.ViewpointIndependent(roi, e)
						return err
					})
					if err != nil {
						b.Fatal(err)
					}
					da += qda
				}
			}
			b.ReportMetric(float64(da)/float64(len(rois)), "DA/query")
		})
	}
}

// BenchmarkAblationMultiBase compares viewpoint-dependent strategies: the
// cost-model-driven multi-base plan against single-base and fixed strip
// counts, isolating the value of the optimizer of Section 5.3.
func BenchmarkAblationMultiBase(b *testing.B) {
	bb := bundle(b, "highland")
	emin := bb.Terrain.LODPercentile(0.85)
	rois := workload.ROIs(benchCfg(), 0.10)
	cases := []struct {
		name string
		plan func(qp dmesh.QueryPlane) []costmodel.Strip
	}{
		{"SingleBase", func(qp dmesh.QueryPlane) []costmodel.Strip { return costmodel.EqualStrips(qp, 1) }},
		{"Optimizer", func(qp dmesh.QueryPlane) []costmodel.Strip { return bb.Model.PlanStrips(qp, 0) }},
		{"Fixed4", func(qp dmesh.QueryPlane) []costmodel.Strip { return costmodel.EqualStrips(qp, 4) }},
		{"Fixed16", func(qp dmesh.QueryPlane) []costmodel.Strip { return costmodel.EqualStrips(qp, 16) }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var da uint64
			for i := 0; i < b.N; i++ {
				da = 0
				for _, roi := range rois {
					qp := workload.PlaneFor(roi, emin, bb.EffectiveMaxLOD(), 0.5)
					qda, err := dmesh.MeasuredRun(bb.DM, func() error {
						_, err := bb.DM.ExecuteStrips(qp, c.plan(qp))
						return err
					})
					if err != nil {
						b.Fatal(err)
					}
					da += qda
				}
			}
			b.ReportMetric(float64(da)/float64(len(rois)), "DA/query")
		})
	}
}

// BenchmarkAblationWarmCache quantifies the cold-cache methodology: the
// same query without flushing buffers between runs.
func BenchmarkAblationWarmCache(b *testing.B) {
	bb := bundle(b, "highland")
	e := bb.Terrain.LODPercentile(0.9)
	roi := workload.ROIs(benchCfg(), 0.08)[0]
	b.Run("Cold", func(b *testing.B) {
		var da uint64
		for i := 0; i < b.N; i++ {
			qda, err := dmesh.MeasuredRun(bb.DM, func() error {
				_, err := bb.DM.ViewpointIndependent(roi, e)
				return err
			})
			if err != nil {
				b.Fatal(err)
			}
			da = qda
		}
		b.ReportMetric(float64(da), "DA/query")
	})
	b.Run("Warm", func(b *testing.B) {
		// Prime once, then measure re-execution.
		if _, err := bb.DM.ViewpointIndependent(roi, e); err != nil {
			b.Fatal(err)
		}
		var da uint64
		for i := 0; i < b.N; i++ {
			bb.DM.ResetStats()
			if _, err := bb.DM.ViewpointIndependent(roi, e); err != nil {
				b.Fatal(err)
			}
			da = bb.DM.DiskAccesses()
		}
		b.ReportMetric(float64(da), "DA/query")
	})
}

// BenchmarkAblationPoolSize varies the buffer-pool size: once the pool is
// smaller than a query's working set, pages are re-read within a single
// query and the disk-access count rises above the cold minimum.
func BenchmarkAblationPoolSize(b *testing.B) {
	bb := bundle(b, "highland")
	e := bb.Terrain.LODPercentile(0.8)
	roi := workload.ROIs(benchCfg(), 0.10)[0]
	for _, pool := range []int{8, 64, 4096} {
		b.Run(fmt.Sprintf("pool%d", pool), func(b *testing.B) {
			store, err := bb.Terrain.NewDMStoreWithPools(dmesh.StorePools{
				Data: pool, Index: pool, IDIndex: pool, Overflow: pool,
			})
			if err != nil {
				b.Fatal(err)
			}
			var da uint64
			for i := 0; i < b.N; i++ {
				qda, err := dmesh.MeasuredRun(store, func() error {
					_, err := store.ViewpointIndependent(roi, e)
					return err
				})
				if err != nil {
					b.Fatal(err)
				}
				da = qda
			}
			b.ReportMetric(float64(da), "DA/query")
		})
	}
}

// BenchmarkFlyoverCoherent runs one point of the temporal-coherence
// experiment (90% frame overlap on a memory-constrained store) and
// reports each engine's mean disk accesses per frame — the incremental
// engine's DA/IncSB is the headline number against DA/FullWarm.
func BenchmarkFlyoverCoherent(b *testing.B) {
	bb := bundle(b, "highland")
	var fig *experiments.FlyoverFigure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = bb.Flyover(benchCfg(), []float64{0.9}, 20)
		if err != nil {
			b.Fatal(err)
		}
	}
	p := fig.Points[0]
	b.ReportMetric(p.FullColdDA, "DA/FullCold")
	b.ReportMetric(p.FullWarmDA, "DA/FullWarm")
	b.ReportMetric(p.IncSBDA, "DA/IncSB")
	b.ReportMetric(p.IncMBDA, "DA/IncMB")
}

// BenchmarkBuildPipeline measures end-to-end dataset construction (terrain
// generation, simplification, store building) — the once-off cost the
// paper excludes from query measurements.
func BenchmarkBuildPipeline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t, err := dmesh.Build(dmesh.Config{Dataset: "highland", Size: 65, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := t.NewDMStore(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationVisibility compares the HDoV-tree against its
// visibility-blind LOD-R-tree mode, reproducing the paper's note that
// visibility selection helps little on open terrain.
func BenchmarkAblationVisibility(b *testing.B) {
	bb := bundle(b, "highland")
	emin := bb.Terrain.LODPercentile(0.85)
	rois := workload.ROIs(benchCfg(), 0.10)
	for _, c := range []struct {
		name   string
		useDoV bool
	}{
		{"HDoV", true},
		{"LODRTree", false},
	} {
		b.Run(c.name, func(b *testing.B) {
			var da uint64
			for i := 0; i < b.N; i++ {
				da = 0
				for _, roi := range rois {
					qp := workload.PlaneFor(roi, emin, bb.EffectiveMaxLOD(), 0.5)
					qda, err := dmesh.MeasuredRun(bb.HDoV, func() error {
						var qerr error
						if c.useDoV {
							_, qerr = bb.HDoV.QueryPlane(qp)
						} else {
							_, qerr = bb.HDoV.QueryPlaneLODRTree(qp)
						}
						return qerr
					})
					if err != nil {
						b.Fatal(err)
					}
					da += qda
				}
			}
			b.ReportMetric(float64(da)/float64(len(rois)), "DA/query")
		})
	}
}

// BenchmarkParallelThroughput measures concurrent query serving: the
// figure-6(a) uniform workload answered through Store.QueryBatch against
// a sharded buffer pool, one cold round per iteration. The serial
// baseline (workers=1) is timed before the benchmark loop, so the
// reported speedup is parallel QPS over serial QPS on the same machine.
// The load-bearing invariant is DA/query: sharing the pool means a page
// is read from the backend once no matter how many workers race to it,
// so parallelism must leave the paper's metric untouched (serial and
// parallel DA/query are both reported; they must match).
func BenchmarkParallelThroughput(b *testing.B) {
	bb := bundle(b, "highland")
	workers := runtime.GOMAXPROCS(0)
	store, err := bb.Terrain.NewDMStoreWithPools(dmesh.StorePools{Shards: workers})
	if err != nil {
		b.Fatal(err)
	}
	e := bb.Terrain.LODPercentile(0.97)
	rois := workload.ROIs(benchCfg(), 0.06)
	qs := make([]dmesh.BatchQuery, 0, len(rois)*4)
	for r := 0; r < 4; r++ {
		for _, roi := range rois {
			qs = append(qs, dmesh.BatchQuery{ROI: roi, E: e})
		}
	}

	coldRound := func(w int) (uint64, float64) {
		b.Helper()
		// DA comes from the batch's per-session attribution, not the pool
		// total MeasuredRun returns.
		var da uint64
		var secs float64
		if _, err := dmesh.MeasuredRun(store, func() error {
			start := time.Now()
			out := store.QueryBatch(qs, w)
			secs = time.Since(start).Seconds()
			for i, r := range out {
				if r.Err != nil {
					b.Fatalf("query %d: %v", i, r.Err)
				}
				da += r.DA
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
		return da, secs
	}

	serialDA, serialSecs := coldRound(1)

	var parDA uint64
	var parSecs float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		da, secs := coldRound(workers)
		parDA += da
		parSecs += secs
	}
	b.StopTimer()

	n := float64(b.N)
	b.ReportMetric(float64(len(qs))*n/parSecs, "queries/sec")
	b.ReportMetric((float64(len(qs))/parSecs*n)/(float64(len(qs))/serialSecs), "speedup-vs-serial")
	b.ReportMetric(float64(parDA)/(float64(len(qs))*n), "DA/query")
	b.ReportMetric(float64(serialDA)/float64(len(qs)), "serial-DA/query")
}

// BenchmarkTileCacheSharing measures the shared mesh-tile cache on the
// skewed multi-client workload: mean disk accesses per query for the
// direct engine (cold cache per query) vs the cache-served engine cold
// and at steady state, plus the sharing counters.
func BenchmarkTileCacheSharing(b *testing.B) {
	bb := bundle(b, "highland")
	var fig *experiments.TileCacheFigure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = bb.TileCacheSharing(benchSeed, 8, 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fig.UncachedDA, "DA/uncached")
	b.ReportMetric(fig.CachedColdDA, "DA/cached-cold")
	b.ReportMetric(fig.CachedSteadyDA, "DA/cached-steady")
	b.ReportMetric(float64(fig.ColdMisses), "tiles-materialized")
	b.ReportMetric(float64(fig.DedupedMisses), "deduped-misses")
}
