module dmesh

go 1.22
