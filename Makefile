GO ?= go

.PHONY: verify build vet test race bench figures

# The CI gate: build, vet, and the full test suite under the race
# detector (short mode keeps the large-terrain tests out of the loop).
verify: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# The paper's metric: custom DA/... counters, not ns/op.
bench:
	$(GO) test -bench=. -benchmem

# Full-scale figure reproduction (several minutes); output under results/.
figures:
	$(GO) run ./cmd/dmbench -fig all
