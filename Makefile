GO ?= go

.PHONY: verify fmt build vet test race racecache chaos obssmoke layoutcheck packcheck clustercheck streamcheck obstracecheck fuzzsmoke benchdiff bench benchsmoke figures

# The CI gate: formatting, build, vet, and the full test suite under the
# race detector (short mode keeps the large-terrain tests out of the
# loop), plus a non-short race pass over the concurrent tile cache, the
# small-scale chaos run, the observability smoke over the tileserver
# introspection endpoints, the physical-layout equivalence gate, the
# packed-encoding gate, the sharded-cluster gate, the progressive-
# streaming gate, the distributed-tracing gate, the decoder fuzz smoke,
# and the benchmark regression gate.
verify: fmt build vet race racecache chaos obssmoke layoutcheck packcheck clustercheck streamcheck obstracecheck fuzzsmoke benchdiff

# gofmt cleanliness: fails listing the offending files, fixes nothing.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# The tile cache is the most concurrent subsystem (singleflight,
# eviction, invalidation racing queries); run its full suite — including
# tests a -short pass would skip — under the race detector.
racecache:
	$(GO) test -race -count=1 ./internal/tilecache/

# Chaos gate: the fault-tolerance figure at small scale. dmbench exits
# nonzero if any query under injected read failures / bit flips panics
# or returns an answer that differs from the clean oracle store.
chaos:
	$(GO) run ./cmd/dmbench -fig faults -size 65 -size2 65

# Observability smoke: boots the tileserver stack under httptest and
# exercises /metrics, /slowlog and /debug/vars, including the per-phase
# disk-access attribution invariant visible in the slow log.
obssmoke:
	$(GO) test -count=1 ./examples/tileserver/

# Layout equivalence gate: every physical layout — including stores
# rewritten by the offline repack pass — must answer every query kind
# byte-identically, and the reconstruction anchor must hold on all of
# them. Physical placement changes cost, never answers.
layoutcheck:
	$(GO) test -count=1 -run 'ExactAgainstReplay|Layout|Repack|Connect|OverflowChains' ./internal/dm/

# Packed-encoding gate: the compressed record codec must round-trip
# every IEEE-754 bit pattern exactly, reject corruption with ErrCorrupt
# (fuzz seeds included), keep spilled chains co-located, beat the plain
# variable encoding's page density by >=1.7x, and survive the persist /
# version-gate paths. The decoder fuzz seeds run as part of the suite; a
# longer exploration is `go test -fuzz FuzzPackedRecordDecode ./internal/dm/`.
packcheck:
	$(GO) test -count=1 -run 'Packed|Dyadic' ./internal/dm/
	$(GO) test -count=1 -run 'SweepLayouts' ./internal/experiments/

# Cluster gate: the serving core and the sharded tile cluster under the
# race detector — ring determinism and balance, byte-identical answers
# against a single-node cache (including with a shard killed), failover
# accounting (every redirect counted, zero wrong answers), deterministic
# hot-tile replication, and graceful shutdown draining in-flight fetches.
clustercheck:
	$(GO) test -race -count=1 ./internal/serve/ ./internal/cluster/

# Progressive-streaming gate: the wire codec under the race detector —
# every batch prefix decodes to a valid mesh, the full stream decodes
# exactly equal to the direct query on both datasets, truncation at any
# byte offset is resumable, corruption rejected with ErrCorrupt — plus
# the serve/cluster streaming paths (byte-identical /stream bodies,
# truncated-body failover, Content-Length on every fixed-size response)
# and the tile-wire decoder fuzz seeds. A longer exploration is
# `go test -fuzz FuzzTilePatchDecode ./internal/dm/`.
streamcheck:
	$(GO) test -race -count=1 ./internal/stream/
	$(GO) test -race -count=1 -run 'Stream|Truncated|ContentLength' ./internal/serve/ ./internal/cluster/
	$(GO) test -count=1 -run FuzzTilePatchDecode ./internal/dm/

# Distributed-tracing gate: the trace wire codec and the cross-hop
# accounting invariant under the race detector — round trips, corrupt
# rejection, SpliceRemote charging, the shard /patch and /stream trace
# attachments, the router splice (including with a shard killed
# mid-workload), the cluster metric merge, and the concurrent slow log
# carrying wire traces.
obstracecheck:
	$(GO) test -race -count=1 -run 'TraceWire|SpliceRemote|Traced|PatchTrace|StreamTrace|Prom|LatencyHist|Health|SlowLog' \
		./internal/obs/ ./internal/serve/ ./internal/cluster/

# Fuzz smoke: a few seconds of live fuzzing over each untrusted-input
# decoder — the trace wire, the packed record codec, and the tile wire.
# None may panic; all must reject corruption with their layer's
# ErrCorrupt. Longer explorations just raise -fuzztime.
fuzzsmoke:
	$(GO) test -fuzz 'FuzzTraceWireDecode' -fuzztime 5s -run '^FuzzTraceWireDecode$$' ./internal/obs/
	$(GO) test -fuzz 'FuzzPackedRecordDecode' -fuzztime 5s -run '^FuzzPackedRecordDecode$$' ./internal/dm/
	$(GO) test -fuzz 'FuzzTilePatchDecode' -fuzztime 5s -run '^FuzzTilePatchDecode$$' ./internal/dm/

# Benchmark regression gate: regenerate the tracing figure at the gate
# scale (129-point grids keep it under CI budgets) into results/gate and
# diff it against the checked-in baselines under results/baselines.
# dmbenchdiff exits nonzero when a disk-access or byte metric drifts
# beyond tolerance; timing metrics are ignored (they measure the
# machine). The full-scale baselines for the other figures live in the
# same directory and are compared whenever their BENCH_*.json is
# regenerated into the gate directory at the baseline's scale.
benchdiff:
	$(GO) run ./cmd/dmbench -fig obstrace -size 129 -size2 129 -resultdir results/gate
	$(GO) run ./cmd/dmbenchdiff -baseline results/baselines -current results/gate

# The paper's metric: custom DA/... counters, not ns/op. Runs the unit
# suite first (a benchmark of broken code measures nothing); -run '^$$'
# keeps the tests out of the timed benchmark binary itself.
bench: test
	$(GO) test -bench=. -benchmem -run '^$$'

# One-iteration benchmark pass: proves every benchmark still runs
# without paying for statistically meaningful timings (the CI smoke).
benchsmoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

# Full-scale figure reproduction (several minutes); output under results/.
figures:
	$(GO) run ./cmd/dmbench -fig all
