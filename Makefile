GO ?= go

.PHONY: verify build vet test race bench benchsmoke figures

# The CI gate: build, vet, and the full test suite under the race
# detector (short mode keeps the large-terrain tests out of the loop).
verify: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# The paper's metric: custom DA/... counters, not ns/op. Runs the unit
# suite first (a benchmark of broken code measures nothing); -run '^$$'
# keeps the tests out of the timed benchmark binary itself.
bench: test
	$(GO) test -bench=. -benchmem -run '^$$'

# One-iteration benchmark pass: proves every benchmark still runs
# without paying for statistically meaningful timings (the CI smoke).
benchsmoke:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

# Full-scale figure reproduction (several minutes); output under results/.
figures:
	$(GO) run ./cmd/dmbench -fig all
