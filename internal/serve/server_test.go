package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"dmesh/internal/dm"
	"dmesh/internal/tilecache"
)

// TestObsSmoke drives the introspection endpoints end to end: /metrics
// must be Prometheus text carrying the server's series, /slowlog must
// return phase-attributed entries, /debug/vars must be expvar JSON with
// the published registry.
func TestObsSmoke(t *testing.T) {
	_, ts := StartTestHarness(t)

	resp, body := Fetch(t, ts.URL, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE tileserver_tile_requests_total counter",
		"tileserver_tile_requests_total 3",
		"tileserver_frame_requests_total 2",
		"# TYPE tileserver_tile_disk_accesses histogram",
		"tileserver_tile_disk_accesses_count 3",
		"tileserver_cameras_active 1",
		"tileserver_cache_entries",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, body = Fetch(t, ts.URL, "/slowlog?n=10")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/slowlog: status %d", resp.StatusCode)
	}
	var slow struct {
		ThresholdNanos int64 `json:"threshold_nanos"`
		Entries        []struct {
			Query  string `json:"query"`
			DA     uint64 `json:"disk_accesses"`
			Phases []struct {
				Phase string `json:"phase"`
				DA    uint64 `json:"disk_accesses"`
			} `json:"phases"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(body, &slow); err != nil {
		t.Fatalf("/slowlog: %v\n%s", err, body)
	}
	if len(slow.Entries) != 5 {
		t.Fatalf("/slowlog: got %d entries, want 5 (threshold 0 admits all)", len(slow.Entries))
	}
	// Every traced entry's phase DA must sum exactly to the entry's DA —
	// the attribution invariant, visible all the way out at the endpoint.
	for _, e := range slow.Entries {
		var sum uint64
		for _, p := range e.Phases {
			sum += p.DA
		}
		if sum != e.DA {
			t.Errorf("entry %q: phase DA sum %d != entry DA %d", e.Query, sum, e.DA)
		}
		if e.DA > 0 && len(e.Phases) == 0 {
			t.Errorf("entry %q: %d disk accesses but no phase breakdown", e.Query, e.DA)
		}
	}

	resp, body = Fetch(t, ts.URL, "/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars: status %d", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["tileserver"]; !ok {
		t.Error("/debug/vars missing published \"tileserver\" registry")
	}

	if resp, _ := Fetch(t, ts.URL, "/debug/pprof/"); resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/: status %d", resp.StatusCode)
	}
}

// TestStatsEncodingDeterministic is the regression for the JSON
// determinism audit: for a fixed server state, two back-to-back
// encodings of the /stats and /cachestats payloads must be
// byte-identical — no map-iteration order, no unsorted slices.
// /stats is pinned to one timestamp because IdleSeconds is (second
// granularity) time-dependent; everything else must not depend on when
// it is encoded.
func TestStatsEncodingDeterministic(t *testing.T) {
	s, ts := StartTestHarness(t)

	now := time.Now()
	a, err := json.Marshal(s.StatsSnapshot(now))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(s.StatsSnapshot(now))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("/stats payload not deterministic:\n%s\n%s", a, b)
	}

	// /cachestats has no time-dependent fields at all, so the HTTP
	// responses themselves must match byte for byte.
	_, c1 := Fetch(t, ts.URL, "/cachestats")
	_, c2 := Fetch(t, ts.URL, "/cachestats")
	if !bytes.Equal(c1, c2) {
		t.Errorf("/cachestats response not deterministic:\n%s\n%s", c1, c2)
	}
}

// TestIntrospectionOptOut checks that introspect=false leaves only the
// serving endpoints mounted.
func TestIntrospectionOptOut(t *testing.T) {
	s := NewTestServer(t, 33, 0)
	ts := httptest.NewServer(s.Handler(false))
	defer ts.Close()
	for _, path := range []string{"/metrics", "/slowlog", "/debug/vars", "/debug/pprof/"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s with introspection off: status %d, want 404", path, resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/stats"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET /stats: status %d", resp.StatusCode)
		}
	}
}

// TestPatchEndpoint fetches a wire patch, checks it decodes to the same
// patch the cache serves locally, and that the stats headers carry the
// cold/warm distinction. Invalid keys must be a 400.
func TestPatchEndpoint(t *testing.T) {
	s := NewTestServer(t, 33, 0)
	ts := httptest.NewServer(s.Handler(false))
	defer ts.Close()

	g := s.Grid()
	k := tilecache.Key{Level: 1, IX: 0, IY: 1, Band: len(g.Ladder()) / 2}
	path := fmt.Sprintf("/patch?level=%d&ix=%d&iy=%d&band=%d", k.Level, k.IX, k.IY, k.Band)

	// Cold-cache discipline: the store's buffer pool is warm from the
	// build, so empty it first or the cold fetch may cost zero DA.
	if err := s.Store().DropCaches(); err != nil {
		t.Fatal(err)
	}

	resp, body := Fetch(t, ts.URL, path)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold patch: status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("content type %q", ct)
	}
	if c := resp.Header.Get("X-DM-Cold"); c != "true" {
		t.Errorf("first fetch X-DM-Cold = %q, want true", c)
	}
	da, err := strconv.ParseUint(resp.Header.Get("X-DM-DA"), 10, 64)
	if err != nil || da == 0 {
		t.Errorf("cold fetch X-DM-DA = %q, want a positive count", resp.Header.Get("X-DM-DA"))
	}
	got, err := dm.DecodeTilePatch(body)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	want, _, err := s.Cache().Patch(k)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dm.EncodeTilePatch(got), dm.EncodeTilePatch(want)) {
		t.Error("served patch differs from the cache's own")
	}

	// Warm: same bytes, zero DA, not cold.
	resp2, body2 := Fetch(t, ts.URL, path)
	if resp2.Header.Get("X-DM-Cold") != "false" || resp2.Header.Get("X-DM-DA") != "0" {
		t.Errorf("warm fetch: cold=%q da=%q", resp2.Header.Get("X-DM-Cold"), resp2.Header.Get("X-DM-DA"))
	}
	if !bytes.Equal(body, body2) {
		t.Error("warm fetch served different bytes")
	}

	if resp, _ := Fetch(t, ts.URL, "/patch?level=99&ix=0&iy=0&band=0"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid key: status %d, want 400", resp.StatusCode)
	}
	if resp, _ := Fetch(t, ts.URL, "/patch?level=x"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed key: status %d, want 400", resp.StatusCode)
	}
}

// TestHotTilesAndGridInfo checks the shard-facing metadata endpoints:
// /hottiles ranks by hits with deterministic ties, /gridinfo round-trips
// into an identical tilecache.Grid.
func TestHotTilesAndGridInfo(t *testing.T) {
	s, ts := StartTestHarness(t)

	var hot []struct {
		Level int    `json:"level"`
		IX    int    `json:"ix"`
		IY    int    `json:"iy"`
		Band  int    `json:"band"`
		Hits  uint64 `json:"hits"`
	}
	resp, body := Fetch(t, ts.URL, "/hottiles?n=3")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/hottiles: status %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &hot); err != nil {
		t.Fatalf("/hottiles: %v\n%s", err, body)
	}
	if len(hot) == 0 {
		t.Fatal("/hottiles empty after traffic")
	}
	for i := 1; i < len(hot); i++ {
		if hot[i].Hits > hot[i-1].Hits {
			t.Errorf("/hottiles not sorted by hits: %v", hot)
		}
	}

	var gi struct {
		DataRect [4]float64 `json:"data_rect"`
		MaxLevel int        `json:"max_level"`
		Ladder   []float64  `json:"lod_ladder"`
	}
	if _, body := Fetch(t, ts.URL, "/gridinfo"); json.Unmarshal(body, &gi) != nil {
		t.Fatalf("/gridinfo not JSON: %s", body)
	}
	g := s.Grid()
	if gi.MaxLevel != g.MaxLevel() {
		t.Errorf("gridinfo max level %d, want %d", gi.MaxLevel, g.MaxLevel())
	}
	wantLadder := g.Ladder()
	if len(gi.Ladder) != len(wantLadder) {
		t.Fatalf("gridinfo ladder %v, want %v", gi.Ladder, wantLadder)
	}
	for i := range wantLadder {
		if gi.Ladder[i] != wantLadder[i] {
			t.Fatalf("gridinfo ladder %v, want %v", gi.Ladder, wantLadder)
		}
	}
	dr := g.DataRect()
	if gi.DataRect != [4]float64{dr.MinX, dr.MinY, dr.MaxX, dr.MaxY} {
		t.Errorf("gridinfo data rect %v, want %v", gi.DataRect, dr)
	}
}

// TestGracefulShutdown starts a real listener, parks a request in a slow
// handler region (a cold /tile is plenty), and checks Shutdown blocks
// until the response completes — the drain contract — while new
// connections are refused afterwards.
func TestGracefulShutdown(t *testing.T) {
	s := NewTestServer(t, 33, 0)
	addr, err := s.Start("127.0.0.1:0", false)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr

	// Park one request in-flight, then shut down while it runs.
	done := make(chan error, 1)
	go func() {
		resp, err := http.Get(base + "/tile?x0=0&y0=0&x1=1&y1=1&lod=0.99&nocache=1")
		if err != nil {
			done <- err
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil && resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("status %d: %s", resp.StatusCode, body)
		}
		if err == nil && len(body) == 0 {
			err = fmt.Errorf("empty body")
		}
		done <- err
	}()
	// Wait until the request is actually inside a handler (or already
	// finished, in which case the drain is trivially satisfied).
	for i := 0; s.inflight.Load() == 0 && len(done) == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}

	// A serving process must probe healthy and ready right up until the
	// drain begins — the orchestration contract /healthz and /readyz exist
	// for.
	for _, probe := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(base + probe)
		if err != nil {
			t.Fatalf("GET %s while serving: %v", probe, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s while serving: status %d: %s", probe, resp.StatusCode, body)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Shutdown returning means the in-flight request was drained; its
	// response must have been complete and well-formed.
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("in-flight request failed across shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request still pending after Shutdown returned")
	}
	if s.inflight.Load() != 0 {
		t.Errorf("%d requests still tracked in-flight after drain", s.inflight.Load())
	}

	if _, err := http.Get(base + "/stats"); err == nil {
		t.Error("server still accepting connections after Shutdown")
	}
	// Idempotent and safe without a live listener.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}
