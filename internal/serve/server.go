// Package serve is the reusable HTTP tile-serving core extracted from
// examples/tileserver: the hardened single-process server (shared mesh-
// tile cache, per-request store sessions, coherent camera sessions, obs
// registry + slow log + introspection endpoints) behind an importable
// API, so a cluster shard is exactly the example server over a subset of
// tile keys.
//
// On top of the example's JSON endpoints (/tile, /frame, /stats,
// /cachestats) it serves the shard-facing surface the cluster router
// consumes:
//
//   - /patch?level=&ix=&iy=&band= — one canonical tile, materialized
//     through the shared cache and returned in the deterministic binary
//     wire encoding (dm.EncodeTilePatch); per-request disk accesses and
//     cache coldness travel in X-DM-DA / X-DM-Cold headers.
//   - /hottiles?n=K — the cache's top-K hottest tiles (hit-count order,
//     Key total-order tie-breaks), the router's replication input.
//   - /gridinfo — the tile grid parameters (data rect, max level, LOD
//     ladder), so any client can verify it quantizes like the shard.
//   - /stream?x0=&y0=&x1=&y1=&lod=&resume= — the progressive answer: a
//     chunked body carrying the internal/stream header plus one delta
//     batch per LOD-ladder rung, coarse to fine, each flushed as soon as
//     its rung's query completes. resume=K (the last fully received
//     batch index) re-sends the header and skips batches <= K, so an
//     interrupted client pays only for what it never got.
//
// Start runs the server on a listener; Shutdown drains: it stops
// accepting, then blocks until every in-flight request (tile fetches
// included) has completed or the context expires.
package serve

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dmesh"
	"dmesh/internal/dm"
	"dmesh/internal/geom"
	"dmesh/internal/obs"
	"dmesh/internal/stream"
	"dmesh/internal/tilecache"
)

// Config parameterizes a Server. Terrain is required; everything else
// has a serviceable zero value.
type Config struct {
	// Terrain is the dataset to serve. Shards of one cluster share a
	// single *dmesh.Terrain and each build their own store over it.
	Terrain *dmesh.Terrain
	// Store serves the queries; nil builds one from Terrain with one
	// buffer-pool shard per CPU.
	Store *dmesh.DMStore
	// CacheMaxBytes caps the shared tile cache (0 = tilecache default).
	CacheMaxBytes int
	// SlowThreshold is the slow-log admission threshold (0 admits all).
	SlowThreshold time.Duration
	// SlowLogSize is the slow-log ring capacity (0 = 128).
	SlowLogSize int
	// ExpvarName, when non-empty, publishes the metrics registry under
	// this expvar key. Leave empty for in-process clusters: expvar is
	// process-global and the first registry would shadow the rest.
	ExpvarName string
}

// Server is the serving core: store, tile cache, coherent camera
// sessions, and the telemetry behind the introspection endpoints.
type Server struct {
	terrain *dmesh.Terrain
	store   *dmesh.DMStore
	model   *dmesh.CostModel
	cache   *dmesh.DMTileCache

	served   atomic.Uint64
	tileDA   atomic.Uint64
	patches  atomic.Uint64
	patchDA  atomic.Uint64
	streams  atomic.Uint64
	streamDA atomic.Uint64
	inflight atomic.Int64

	// Telemetry: the metrics registry behind /metrics and /debug/vars,
	// and the ring-buffered slow-request log behind /slowlog.
	reg  *obs.Registry
	slow *obs.SlowLog

	mTileReqs   *obs.Counter
	mFrameReqs  *obs.Counter
	mPatchReqs  *obs.Counter
	mStreamReqs *obs.Counter
	mErrors     *obs.Counter
	hTileDA     *obs.Histogram
	hTileNanos  *obs.Histogram
	hFrameDA    *obs.Histogram
	hFrameNs    *obs.Histogram
	hPatchDA    *obs.Histogram
	hPatchNs    *obs.Histogram
	hStreamDA   *obs.Histogram
	hStreamBy   *obs.Histogram
	hStreamNs   *obs.Histogram

	// Named coherent sessions, one per animating client. A coherent
	// session is stateful and not safe for concurrent use, so each entry
	// carries its own lock; the map itself has another. Evicted clients'
	// frame and disk-access totals roll up into the evicted* fields so
	// /stats never under-reports served work.
	camMu         sync.Mutex
	cameras       map[string]*camera
	camEvictions  uint64
	evictedFrames uint64
	evictedDA     uint64

	httpMu   sync.Mutex
	httpSrv  *http.Server
	listener net.Listener
}

// maxCameras caps the retained coherent sessions; the least recently
// used one is dropped when a new client would exceed it.
const maxCameras = 64

type camera struct {
	mu       sync.Mutex
	cs       *dmesh.DMCoherentSession
	tr       *obs.Trace // the session's trace; reset every frame
	lastUsed time.Time
	frames   uint64
	da       uint64
}

// New builds the store (unless provided), the tile cache, and the
// telemetry plumbing over cfg.Terrain.
func New(cfg Config) (*Server, error) {
	if cfg.Terrain == nil {
		return nil, fmt.Errorf("serve: Config.Terrain is required")
	}
	store := cfg.Store
	if store == nil {
		var err error
		store, err = cfg.Terrain.NewDMStoreWithPools(dmesh.StorePools{Shards: runtime.NumCPU()})
		if err != nil {
			return nil, err
		}
	}
	model, err := dmesh.NewCostModel(store)
	if err != nil {
		return nil, err
	}
	cache, err := cfg.Terrain.NewTileCache(store, cfg.CacheMaxBytes)
	if err != nil {
		return nil, err
	}
	slowSize := cfg.SlowLogSize
	if slowSize == 0 {
		slowSize = 128
	}
	s := &Server{
		terrain: cfg.Terrain, store: store, model: model, cache: cache,
		cameras: make(map[string]*camera),
		reg:     obs.NewRegistry(),
		slow:    obs.NewSlowLog(slowSize, cfg.SlowThreshold),
	}
	s.mTileReqs = s.reg.Counter("tileserver_tile_requests_total", "tile requests served")
	s.mFrameReqs = s.reg.Counter("tileserver_frame_requests_total", "coherent frames served")
	s.mPatchReqs = s.reg.Counter("tileserver_patch_requests_total", "wire tile patches served")
	s.mErrors = s.reg.Counter("tileserver_request_errors_total", "requests answered with an error status")
	s.hTileDA = s.reg.Histogram("tileserver_tile_disk_accesses", "disk accesses per tile request")
	s.hTileNanos = s.reg.Histogram("tileserver_tile_latency_nanos", "tile request latency in nanoseconds")
	s.hFrameDA = s.reg.Histogram("tileserver_frame_disk_accesses", "disk accesses per coherent frame")
	s.hFrameNs = s.reg.Histogram("tileserver_frame_latency_nanos", "frame request latency in nanoseconds")
	s.hPatchDA = s.reg.Histogram("tileserver_patch_disk_accesses", "disk accesses per wire patch request")
	s.hPatchNs = s.reg.Histogram("tileserver_patch_latency_nanos", "wire patch request latency in nanoseconds")
	s.mStreamReqs = s.reg.Counter("tileserver_stream_requests_total", "progressive streams served")
	s.hStreamDA = s.reg.Histogram("tileserver_stream_disk_accesses", "disk accesses per progressive stream")
	s.hStreamBy = s.reg.Histogram("tileserver_stream_bytes", "bytes written per progressive stream")
	s.hStreamNs = s.reg.Histogram("tileserver_stream_latency_nanos", "progressive stream latency in nanoseconds")
	s.reg.GaugeFunc("tileserver_cache_entries", "resident tile-cache patches", func() int64 {
		return int64(cache.Stats().Entries)
	})
	s.reg.GaugeFunc("tileserver_cache_bytes", "estimated resident tile-cache bytes", func() int64 {
		return int64(cache.Stats().Bytes)
	})
	s.reg.GaugeFunc("tileserver_cameras_active", "retained coherent sessions", func() int64 {
		s.camMu.Lock()
		defer s.camMu.Unlock()
		return int64(len(s.cameras))
	})
	s.reg.GaugeFunc("tileserver_inflight_requests", "requests currently being served", func() int64 {
		return s.inflight.Load()
	})
	if cfg.ExpvarName != "" {
		s.reg.PublishExpvar(cfg.ExpvarName)
	}
	return s, nil
}

// Terrain returns the served dataset.
func (s *Server) Terrain() *dmesh.Terrain { return s.terrain }

// Store returns the server's DM store.
func (s *Server) Store() *dmesh.DMStore { return s.store }

// Cache returns the shared mesh-tile cache (per-tile stats included).
func (s *Server) Cache() *dmesh.DMTileCache { return s.cache }

// Registry returns the server's metrics registry, so an in-process
// cluster can read per-shard counters without scraping /metrics.
func (s *Server) Registry() *obs.Registry { return s.reg }

// PatchTotals reports the wire-patch traffic: requests served and the
// store disk accesses they cost (cold materializations only).
func (s *Server) PatchTotals() (served, da uint64) {
	return s.patches.Load(), s.patchDA.Load()
}

// StreamTotals reports the progressive-stream traffic: streams served
// and the store disk accesses their rung queries cost.
func (s *Server) StreamTotals() (served, da uint64) {
	return s.streams.Load(), s.streamDA.Load()
}

// Handler mounts the serving endpoints, plus (when introspect is set)
// the observability surface: /metrics, /slowlog, /debug/vars,
// /debug/pprof/. Every handler runs inside the in-flight tracker that
// Shutdown drains.
func (s *Server) Handler(introspect bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/tile", s.handleTile)
	mux.HandleFunc("/frame", s.handleFrame)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/cachestats", s.handleCacheStats)
	mux.HandleFunc("/patch", s.handlePatch)
	mux.HandleFunc("/stream", s.handleStream)
	mux.HandleFunc("/hottiles", s.handleHotTiles)
	mux.HandleFunc("/gridinfo", s.handleGridInfo)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	if introspect {
		mux.Handle("/metrics", obs.MetricsHandler(s.reg))
		mux.Handle("/slowlog", obs.SlowLogHandler(s.slow))
		obs.RegisterDebug(mux)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		mux.ServeHTTP(w, r)
	})
}

// Start listens on addr and serves in the background; the returned
// address carries the bound port (useful with ":0"). Stop with Shutdown.
func (s *Server) Start(addr string, introspect bool) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: s.Handler(introspect)}
	s.httpMu.Lock()
	s.httpSrv, s.listener = srv, l
	s.httpMu.Unlock()
	go func() {
		if err := srv.Serve(l); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("serve: %v", err)
		}
	}()
	return l.Addr().String(), nil
}

// Shutdown stops accepting connections and blocks until every in-flight
// request has drained (tile fetches run inside their handlers, so a
// completed drain means no request is still touching the store) or ctx
// expires. Safe to call without a prior Start.
func (s *Server) Shutdown(ctx context.Context) error {
	s.httpMu.Lock()
	srv := s.httpSrv
	s.httpMu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

// lookupCamera returns the named client's coherent session, creating it
// (and evicting the least recently used one past the cap) if needed.
func (s *Server) lookupCamera(name string) *camera {
	s.camMu.Lock()
	defer s.camMu.Unlock()
	if c, ok := s.cameras[name]; ok {
		c.lastUsed = time.Now()
		return c
	}
	if len(s.cameras) >= maxCameras {
		var oldest string
		for n, c := range s.cameras {
			if oldest == "" || c.lastUsed.Before(s.cameras[oldest].lastUsed) {
				oldest = n
			}
		}
		// Roll the evicted client's stats into the totals instead of
		// silently dropping them with the session.
		old := s.cameras[oldest]
		old.mu.Lock()
		frames, da := old.frames, old.da
		old.mu.Unlock()
		s.camEvictions++
		s.evictedFrames += frames
		s.evictedDA += da
		delete(s.cameras, oldest)
		log.Printf("evicted coherent session %q (%d frames, %d disk accesses)", oldest, frames, da)
	}
	cs := s.store.NewCoherentSession(s.model)
	c := &camera{cs: cs, tr: cs.EnableTrace(), lastUsed: time.Now()}
	s.cameras[name] = c
	return c
}

// traceRequested reports whether the client asked this response to
// carry its phase trace (trace=1). Tracing is strictly opt-in: default
// serving records nothing extra and ships nothing extra, so every
// untraced figure number stays byte-identical.
func traceRequested(r *http.Request) bool {
	return r.URL.Query().Get("trace") != ""
}

// attachTrace sets X-DM-Trace to the base64 TraceWire encoding of tr.
// Must run before the body goes out when h is a response's header map
// (trailers, declared up front, may set it after). A trace that fails
// to encode — open spans — drops the header, never the response.
func attachTrace(h http.Header, tr *obs.Trace) {
	if tr == nil {
		return
	}
	buf, err := tr.EncodeWire()
	if err != nil {
		log.Printf("trace encode: %v", err)
		return
	}
	h.Set("X-DM-Trace", base64.StdEncoding.EncodeToString(buf))
}

// HealthResponse is the /healthz and /readyz body.
type HealthResponse struct {
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

// writeHealth answers a probe with a fixed-size JSON body. Probe misses
// are not request errors: a 503 from /readyz is the endpoint working.
func (s *Server) writeHealth(w http.ResponseWriter, status int, resp HealthResponse) {
	body, err := json.Marshal(resp)
	if err != nil {
		body = []byte(`{"status":"error"}`)
	}
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// handleHealthz is the liveness probe: the process is up and the HTTP
// stack is answering. Always 200.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeHealth(w, http.StatusOK, HealthResponse{Status: "ok"})
}

// ReadyError reports why the server cannot serve queries yet, nil when
// it can: the store is opened and the tile cache is warm-capable (a
// grid with LOD rungs over a non-empty dataset).
func (s *Server) ReadyError() error {
	if s.store == nil {
		return fmt.Errorf("store not opened")
	}
	if s.cache == nil || len(s.cache.Ladder()) == 0 {
		return fmt.Errorf("tile cache has no LOD ladder")
	}
	if s.terrain.NumPoints() == 0 {
		return fmt.Errorf("terrain has no points")
	}
	return nil
}

// handleReadyz is the readiness probe: 200 once the store is opened and
// the tile cache can warm, 503 (with the reason) until then.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if err := s.ReadyError(); err != nil {
		s.writeHealth(w, http.StatusServiceUnavailable, HealthResponse{Status: "unready", Error: err.Error()})
		return
	}
	s.writeHealth(w, http.StatusOK, HealthResponse{Status: "ready"})
}

type tileResponse struct {
	LOD          float64               `json:"lod"`
	Vertices     map[string][3]float64 `json:"vertices"`
	Triangles    [][3]int64            `json:"triangles"`
	DiskAccesses uint64                `json:"disk_accesses"`
}

func queryFloat(r *http.Request, name string, def float64) (float64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	return strconv.ParseFloat(v, 64)
}

func queryInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	return strconv.Atoi(v)
}

// jsonError answers a failed request with a JSON body, so API clients
// parsing every response get structured errors instead of plain text.
// I/O faults under a query surface here as a 500 with the error chain
// (e.g. an injected fault or a checksum mismatch) — the server itself
// keeps serving. The body is marshaled before the header goes out, so
// the status line and Content-Length always describe the bytes actually
// sent.
func (s *Server) jsonError(w http.ResponseWriter, status int, err error) {
	s.mErrors.Inc()
	body, encErr := json.Marshal(map[string]string{"error": err.Error()})
	if encErr != nil {
		// A map[string]string cannot fail to marshal; keep the client
		// parseable anyway.
		body = []byte(`{"error":"error encoding failed"}`)
	}
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	if _, err := w.Write(body); err != nil {
		log.Printf("error write: %v", err)
	}
}

// writeJSON buffers the whole encoding, sets Content-Length, then
// writes. Streaming json.NewEncoder(w).Encode straight into the
// ResponseWriter cannot do that: once the header is out, an encode or
// write failure leaves the client a truncated 200 indistinguishable
// from a short document, with nothing but a server-side log line to
// show for it. With the length declared up front a cut body surfaces at
// the client as an unexpected EOF.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		s.jsonError(w, http.StatusInternalServerError, err)
		return
	}
	body = append(body, '\n')
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	if _, err := w.Write(body); err != nil {
		log.Printf("response write: %v", err)
	}
}

func (s *Server) handleTile(w http.ResponseWriter, r *http.Request) {
	x0, err1 := queryFloat(r, "x0", 0)
	y0, err2 := queryFloat(r, "y0", 0)
	x1, err3 := queryFloat(r, "x1", 1)
	y1, err4 := queryFloat(r, "y1", 1)
	pct, err5 := queryFloat(r, "lod", 0.9)
	for _, err := range []error{err1, err2, err3, err4, err5} {
		if err != nil {
			s.jsonError(w, http.StatusBadRequest, err)
			return
		}
	}
	if pct < 0 || pct > 1 {
		s.jsonError(w, http.StatusBadRequest, fmt.Errorf("lod must be a percentile in [0,1]"))
		return
	}
	roi := dmesh.NewRect(x0, y0, x1, y1)
	lod := s.terrain.LODPercentile(pct)

	var res *dmesh.Result
	var da uint64
	var tr *obs.Trace
	var err error
	start := time.Now()
	nocache := r.URL.Query().Get("nocache") != ""
	if nocache {
		// Bypass the tile cache: one session per request, so the
		// session's counters see only this request's page reads — and the
		// trace samples them directly.
		sess := s.store.NewSession()
		tr = sess.NewTrace()
		res, err = sess.ViewpointIndependent(roi, lod)
		da = sess.DiskAccesses()
	} else {
		// The cache snaps the LOD onto its ladder, materializes any cold
		// tiles (once, however many requests race) and stitches; da is
		// only the store I/O this request's cold tiles cost, and the
		// charge-based trace attributes exactly that.
		tr = dmesh.NewQueryTrace(nil)
		var qs dmesh.TileQueryStats
		res, qs, err = s.cache.QueryTraced(roi, lod, tr)
		lod, da = qs.SnappedE, qs.DA
	}
	dur := time.Since(start)
	if err != nil {
		s.jsonError(w, http.StatusInternalServerError, err)
		return
	}
	s.served.Add(1)
	s.tileDA.Add(da)
	s.mTileReqs.Inc()
	s.hTileDA.Observe(da)
	s.hTileNanos.Observe(uint64(dur))
	s.slow.Observe(fmt.Sprintf("tile roi=[%g,%g,%g,%g] lod=%g nocache=%t", x0, y0, x1, y1, pct, nocache),
		dur, da, tr)
	if traceRequested(r) {
		attachTrace(w.Header(), tr)
	}

	resp := tileResponse{
		LOD:          lod,
		Vertices:     make(map[string][3]float64, len(res.Vertices)),
		Triangles:    make([][3]int64, 0, len(res.Triangles)),
		DiskAccesses: da,
	}
	for id, p := range res.Vertices {
		resp.Vertices[strconv.FormatInt(id, 10)] = [3]float64{p.X, p.Y, p.Z}
	}
	for _, t := range res.Triangles {
		resp.Triangles = append(resp.Triangles, [3]int64{t.A, t.B, t.C})
	}
	s.writeJSON(w, resp)
}

// handlePatch answers one canonical tile by key in the binary wire
// encoding — the shard endpoint the cluster router fans out to. The
// response is deterministic for a key (the patch encoding sorts nodes),
// so any replica returns byte-identical bodies.
func (s *Server) handlePatch(w http.ResponseWriter, r *http.Request) {
	level, err1 := queryInt(r, "level", -1)
	ix, err2 := queryInt(r, "ix", -1)
	iy, err3 := queryInt(r, "iy", -1)
	band, err4 := queryInt(r, "band", -1)
	for _, err := range []error{err1, err2, err3, err4} {
		if err != nil {
			s.jsonError(w, http.StatusBadRequest, err)
			return
		}
	}
	k := tilecache.Key{Level: level, IX: ix, IY: iy, Band: band}
	var tr *obs.Trace
	if traceRequested(r) {
		// Charge-based: the cache counts DA through per-flight sessions,
		// so the trace total equals the X-DM-DA header exactly — the
		// per-hop half of the cluster's cross-hop invariant.
		tr = dmesh.NewQueryTrace(nil)
	}
	start := time.Now()
	tp, st, err := s.cache.PatchTraced(k, tr)
	if err != nil {
		if errors.Is(err, tilecache.ErrInvalidKey) {
			s.jsonError(w, http.StatusBadRequest, err)
		} else {
			s.jsonError(w, http.StatusInternalServerError, err)
		}
		return
	}
	dur := time.Since(start)
	s.patches.Add(1)
	s.patchDA.Add(st.DA)
	s.mPatchReqs.Inc()
	s.hPatchDA.Observe(st.DA)
	s.hPatchNs.Observe(uint64(dur))
	s.slow.Observe(fmt.Sprintf("patch key=%s cold=%t", k, st.Cold), dur, st.DA, tr)

	// Encode fully before the header goes out: with Content-Length
	// declared, a write that dies mid-body surfaces at the router as a
	// short read (a failed attempt eligible for failover) instead of a
	// clean-looking truncated 200.
	body := dm.EncodeTilePatch(tp)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Header().Set("X-DM-DA", strconv.FormatUint(st.DA, 10))
	w.Header().Set("X-DM-Cold", strconv.FormatBool(st.Cold))
	if tr != nil {
		attachTrace(w.Header(), tr)
	}
	if _, err := w.Write(body); err != nil {
		log.Printf("patch write: %v", err)
	}
}

// handleStream answers one ROI progressively: the stream header, then
// one delta batch per LOD-ladder rung from the coarsest rung down to
// the one the requested LOD snaps to, each flushed as soon as its
// rung's query completes — so the client renders a coarse mesh after
// the first frame and refines to the exact answer. Every rung's answer
// comes through the shared tile cache, so the per-rung queries are the
// same canonical tile fetches /tile and /patch pay for.
//
// resume is the last batch index the client fully received (-1, the
// default, streams everything): the server still replays the earlier
// rungs' queries to rebuild the delta state, but transmits only the
// batches after resume.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	x0, err1 := queryFloat(r, "x0", 0)
	y0, err2 := queryFloat(r, "y0", 0)
	x1, err3 := queryFloat(r, "x1", 1)
	y1, err4 := queryFloat(r, "y1", 1)
	pct, err5 := queryFloat(r, "lod", 0.9)
	resume, err6 := queryInt(r, "resume", -1)
	for _, err := range []error{err1, err2, err3, err4, err5, err6} {
		if err != nil {
			s.jsonError(w, http.StatusBadRequest, err)
			return
		}
	}
	if pct < 0 || pct > 1 {
		s.jsonError(w, http.StatusBadRequest, fmt.Errorf("lod must be a percentile in [0,1]"))
		return
	}
	roi := dmesh.NewRect(x0, y0, x1, y1)
	band, _ := s.cache.Grid().SnapE(s.terrain.LODPercentile(pct))
	levels, err := stream.LevelsFor(s.cache.Grid().Ladder(), band)
	if err != nil {
		s.jsonError(w, http.StatusBadRequest, err)
		return
	}
	if resume < -1 || resume >= len(levels) {
		s.jsonError(w, http.StatusBadRequest,
			fmt.Errorf("resume %d outside [-1, %d)", resume, len(levels)))
		return
	}
	enc, err := stream.NewEncoder(roi, levels)
	if err != nil {
		s.jsonError(w, http.StatusInternalServerError, err)
		return
	}

	var tr *obs.Trace
	if traceRequested(r) {
		// The trace is complete only after the last batch, so it travels
		// as an HTTP trailer: declared here, set after the body. The DA
		// total rides along for clients that want the invariant without
		// decoding the trace.
		tr = dmesh.NewQueryTrace(nil)
		w.Header().Set("Trailer", "X-DM-Trace, X-DM-DA")
	}

	start := time.Now()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-DM-Batches", strconv.Itoa(len(levels)))
	w.Header().Set("X-DM-Target-E", strconv.FormatFloat(enc.TargetE(), 'g', -1, 64))
	flusher, _ := w.(http.Flusher)
	written, werr := w.Write(enc.Header())
	sent := int64(written)
	if werr != nil {
		s.mErrors.Inc()
		log.Printf("stream write: %v", werr)
		return
	}
	if flusher != nil {
		flusher.Flush()
	}
	var da uint64
	tr.Begin(obs.PhaseQuery)
	for i, e := range levels {
		// A resumed stream re-runs rungs <= resume only to rebuild the
		// encoder's delta state; wrap that replayed work in its own span
		// so a trace shows what a resume paid for but never transmitted.
		replay := i <= resume
		if replay {
			tr.Begin(obs.PhaseStreamReplay)
		}
		res, qs, err := s.cache.QueryTraced(roi, e, tr)
		if err != nil {
			// The header (and possibly earlier frames) are out, so the
			// status line cannot change; cutting the connection leaves the
			// client a length-prefixed truncation it can resume from.
			s.mErrors.Inc()
			log.Printf("stream query (rung %d): %v", i, err)
			return
		}
		da += qs.DA
		frame, err := enc.EncodeNextTraced(res, tr)
		if err != nil {
			s.mErrors.Inc()
			log.Printf("stream encode (rung %d): %v", i, err)
			return
		}
		if replay {
			tr.End()
			continue
		}
		n, err := w.Write(frame)
		sent += int64(n)
		if err != nil {
			s.mErrors.Inc()
			log.Printf("stream write (rung %d): %v", i, err)
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	tr.End()
	dur := time.Since(start)
	s.streams.Add(1)
	s.streamDA.Add(da)
	s.mStreamReqs.Inc()
	s.hStreamDA.Observe(da)
	s.hStreamBy.Observe(uint64(sent))
	s.hStreamNs.Observe(uint64(dur))
	s.slow.Observe(fmt.Sprintf("stream roi=[%g,%g,%g,%g] lod=%g resume=%d", x0, y0, x1, y1, pct, resume),
		dur, da, tr)
	if tr != nil {
		// Trailer values: set on the header map after the body, delivered
		// in the chunked trailer block (declared before the first write).
		attachTrace(w.Header(), tr)
		w.Header().Set("X-DM-DA", strconv.FormatUint(da, 10))
	}
}

// hotTile is one entry of the /hottiles ranking.
type hotTile struct {
	Level int    `json:"level"`
	IX    int    `json:"ix"`
	IY    int    `json:"iy"`
	Band  int    `json:"band"`
	Hits  uint64 `json:"hits"`
	DA    uint64 `json:"disk_accesses"`
	Bytes int    `json:"bytes"`
	Nodes int    `json:"nodes"`
}

// handleHotTiles reports the cache's top-K hottest tiles in the
// deterministic replication order (hits descending, Key order ties).
func (s *Server) handleHotTiles(w http.ResponseWriter, r *http.Request) {
	n, err := queryInt(r, "n", 0)
	if err != nil {
		s.jsonError(w, http.StatusBadRequest, err)
		return
	}
	top := s.cache.TopTiles(n)
	out := make([]hotTile, 0, len(top))
	for _, ts := range top {
		out = append(out, hotTile{
			Level: ts.Key.Level, IX: ts.Key.IX, IY: ts.Key.IY, Band: ts.Key.Band,
			Hits: ts.Hits, DA: ts.DA, Bytes: ts.Bytes, Nodes: ts.Nodes,
		})
	}
	s.writeJSON(w, out)
}

// gridInfo is the /gridinfo body: everything needed to rebuild the
// shard's quantization grid (and so compute identical tile keys).
type gridInfo struct {
	DataRect [4]float64 `json:"data_rect"` // min_x, min_y, max_x, max_y
	MaxLevel int        `json:"max_level"`
	Ladder   []float64  `json:"lod_ladder"`
}

func (s *Server) handleGridInfo(w http.ResponseWriter, r *http.Request) {
	g := s.cache.Grid()
	dr := g.DataRect()
	s.writeJSON(w, gridInfo{
		DataRect: [4]float64{dr.MinX, dr.MinY, dr.MaxX, dr.MaxY},
		MaxLevel: g.MaxLevel(),
		Ladder:   g.Ladder(),
	})
}

// Grid returns the cache's quantization grid.
func (s *Server) Grid() *tilecache.Grid { return s.cache.Grid() }

// DataSpace returns the store's data rect (for grid reconstruction).
func (s *Server) DataSpace() geom.Rect { return s.cache.Grid().DataRect() }

type frameResponse struct {
	Session      string                `json:"session"`
	Full         bool                  `json:"full"`
	Retained     int                   `json:"retained"`
	Fetched      int                   `json:"fetched"`
	Evicted      int                   `json:"evicted"`
	Vertices     map[string][3]float64 `json:"vertices"`
	Triangles    [][3]int64            `json:"triangles"`
	DiskAccesses uint64                `json:"disk_accesses"`
}

// handleFrame answers one frame of a named client's camera animation
// through its retained coherent session. near and far are LOD
// percentiles at the low- and high-y edges of the view (equal values
// give a uniform frame); overlapping consecutive frames are answered
// incrementally.
func (s *Server) handleFrame(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("session")
	if name == "" {
		s.jsonError(w, http.StatusBadRequest, fmt.Errorf("session parameter required"))
		return
	}
	x0, err1 := queryFloat(r, "x0", 0)
	y0, err2 := queryFloat(r, "y0", 0)
	x1, err3 := queryFloat(r, "x1", 1)
	y1, err4 := queryFloat(r, "y1", 1)
	near, err5 := queryFloat(r, "near", 0.75)
	far, err6 := queryFloat(r, "far", 0.99)
	for _, err := range []error{err1, err2, err3, err4, err5, err6} {
		if err != nil {
			s.jsonError(w, http.StatusBadRequest, err)
			return
		}
	}
	if near < 0 || near > 1 || far < 0 || far > 1 {
		s.jsonError(w, http.StatusBadRequest, fmt.Errorf("near and far must be percentiles in [0,1]"))
		return
	}
	plane := dmesh.QueryPlane{
		R:    dmesh.NewRect(x0, y0, x1, y1),
		EMin: s.terrain.LODPercentile(near),
		EMax: s.terrain.LODPercentile(far),
		Axis: 1,
	}

	cam := s.lookupCamera(name)
	cam.mu.Lock()
	start := time.Now()
	res, st, err := cam.cs.Frame(plane)
	dur := time.Since(start)
	var wire string
	if err == nil {
		cam.frames++
		cam.da += st.DA
		// Observe under the camera lock: the trace is reset by the next
		// frame, and Observe copies the phase stats out. The wire encoding
		// is captured under the same lock for the same reason.
		s.slow.Observe(fmt.Sprintf("frame session=%s roi=[%g,%g,%g,%g]", name, x0, y0, x1, y1),
			dur, st.DA, cam.tr)
		if traceRequested(r) {
			if buf, encErr := cam.tr.EncodeWire(); encErr == nil {
				wire = base64.StdEncoding.EncodeToString(buf)
			}
		}
	}
	cam.mu.Unlock()
	if err != nil {
		s.jsonError(w, http.StatusInternalServerError, err)
		return
	}
	if wire != "" {
		w.Header().Set("X-DM-Trace", wire)
	}
	s.mFrameReqs.Inc()
	s.hFrameDA.Observe(st.DA)
	s.hFrameNs.Observe(uint64(dur))

	resp := frameResponse{
		Session:      name,
		Full:         st.Full,
		Retained:     st.Retained,
		Fetched:      st.Fetched,
		Evicted:      st.Evicted,
		Vertices:     make(map[string][3]float64, len(res.Vertices)),
		Triangles:    make([][3]int64, 0, len(res.Triangles)),
		DiskAccesses: st.DA,
	}
	for id, p := range res.Vertices {
		resp.Vertices[strconv.FormatInt(id, 10)] = [3]float64{p.X, p.Y, p.Z}
	}
	for _, t := range res.Triangles {
		resp.Triangles = append(resp.Triangles, [3]int64{t.A, t.B, t.C})
	}
	s.writeJSON(w, resp)
}

// CameraStats is one retained coherent session's accounting in /stats.
type CameraStats struct {
	Session      string `json:"session"`
	Frames       uint64 `json:"frames"`
	DiskAccesses uint64 `json:"disk_accesses"`
	IdleSeconds  int64  `json:"idle_seconds"`
}

// StatsResponse is the /stats body.
type StatsResponse struct {
	Points         int                `json:"points"`
	Nodes          int                `json:"nodes"`
	MaxLOD         float64            `json:"max_lod"`
	LODPercentiles map[string]float64 `json:"lod_percentiles"`

	TilesServed uint64  `json:"tiles_served"`
	TileDA      uint64  `json:"tile_disk_accesses"`
	DAPerTile   float64 `json:"da_per_tile"`

	PatchesServed uint64 `json:"patches_served"`
	PatchDA       uint64 `json:"patch_disk_accesses"`

	// Coherent-session LRU: per-client occupancy plus eviction counts.
	// Totals include clients already evicted from the LRU, so nothing is
	// silently dropped.
	Cameras          []CameraStats `json:"cameras"`
	CameraOccupancy  int           `json:"camera_occupancy"`
	CameraCapacity   int           `json:"camera_capacity"`
	CameraEvictions  uint64        `json:"camera_evictions"`
	TotalFrames      uint64        `json:"total_frames"`
	TotalFrameDA     uint64        `json:"total_frame_disk_accesses"`
	EvictedFrames    uint64        `json:"evicted_frames"`
	EvictedFrameDA   uint64        `json:"evicted_frame_disk_accesses"`
	StoreDiskAccsses uint64        `json:"store_disk_accesses"`
}

// StatsSnapshot assembles the /stats response at the given time.
// Deterministic for a fixed server state and now: the only map in the
// response is encoded by encoding/json (sorted keys) and the camera list
// is sorted by session name.
func (s *Server) StatsSnapshot(now time.Time) StatsResponse {
	resp := StatsResponse{
		Points:         s.terrain.NumPoints(),
		Nodes:          s.terrain.Dataset.Tree.Len(),
		MaxLOD:         s.terrain.MaxLOD(),
		LODPercentiles: make(map[string]float64),
		TilesServed:    s.served.Load(),
		TileDA:         s.tileDA.Load(),
		PatchesServed:  s.patches.Load(),
		PatchDA:        s.patchDA.Load(),
		CameraCapacity: maxCameras,
	}
	for _, p := range []float64{0.5, 0.9, 0.99} {
		resp.LODPercentiles[fmt.Sprintf("p%.0f", p*100)] = s.terrain.LODPercentile(p)
	}
	if resp.TilesServed > 0 {
		resp.DAPerTile = float64(resp.TileDA) / float64(resp.TilesServed)
	}
	s.camMu.Lock()
	resp.CameraOccupancy = len(s.cameras)
	resp.CameraEvictions = s.camEvictions
	resp.EvictedFrames = s.evictedFrames
	resp.EvictedFrameDA = s.evictedDA
	resp.TotalFrames = s.evictedFrames
	resp.TotalFrameDA = s.evictedDA
	for name, c := range s.cameras {
		c.mu.Lock()
		resp.Cameras = append(resp.Cameras, CameraStats{
			Session:      name,
			Frames:       c.frames,
			DiskAccesses: c.da,
			IdleSeconds:  int64(now.Sub(c.lastUsed).Seconds()),
		})
		resp.TotalFrames += c.frames
		resp.TotalFrameDA += c.da
		c.mu.Unlock()
	}
	s.camMu.Unlock()
	sort.Slice(resp.Cameras, func(i, j int) bool { return resp.Cameras[i].Session < resp.Cameras[j].Session })
	resp.StoreDiskAccsses = s.store.DiskAccesses()
	return resp
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, s.StatsSnapshot(time.Now()))
}

// CacheStatsResponse is the /cachestats body: global cache counters plus
// the per-tile hit/cost accounting, hottest tiles first (ties keep the
// underlying Key order, so the encoding is deterministic).
type CacheStatsResponse struct {
	Stats  dmesh.TileCacheStats `json:"stats"`
	Ladder []float64            `json:"lod_ladder"`
	Tiles  []hotTile            `json:"tiles"`
}

// CacheStatsSnapshot assembles the /cachestats response. TopTiles ranks
// by hits with Key total-order tie-breaks, so the encoding is
// deterministic.
func (s *Server) CacheStatsSnapshot() CacheStatsResponse {
	resp := CacheStatsResponse{
		Stats:  s.cache.Stats(),
		Ladder: s.cache.Ladder(),
	}
	for _, ts := range s.cache.TopTiles(0) {
		resp.Tiles = append(resp.Tiles, hotTile{
			Level: ts.Key.Level, IX: ts.Key.IX, IY: ts.Key.IY, Band: ts.Key.Band,
			Hits: ts.Hits, DA: ts.DA, Bytes: ts.Bytes, Nodes: ts.Nodes,
		})
	}
	return resp
}

// handleCacheStats reports the shared tile cache: global counters plus
// the per-tile hit/cost accounting, hottest tiles first.
func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, s.CacheStatsSnapshot())
}
