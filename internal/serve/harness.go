package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dmesh"
)

// This file is the shared test harness for every consumer of the serving
// core — the serve package's own tests, the examples/tileserver smoke
// test, and the cluster tests — so the canonical traffic mix and fetch
// helpers live in exactly one place. It ships in the package proper
// (like net/http/httptest does) because test files cannot be imported
// across packages.

// NewTestServer builds a small server for tests: a size x size highland
// terrain (seed 3, matching the example binary) with the given slow-log
// admission threshold. Threshold 0 admits every request.
func NewTestServer(tb testing.TB, size int, slowThreshold time.Duration) *Server {
	tb.Helper()
	terrain, err := dmesh.Build(dmesh.Config{Dataset: "highland", Size: size, Seed: 3})
	if err != nil {
		tb.Fatal(err)
	}
	s, err := New(Config{Terrain: terrain, SlowThreshold: slowThreshold, ExpvarName: "tileserver"})
	if err != nil {
		tb.Fatal(err)
	}
	return s
}

// StartTestHarness builds a small server, drives enough traffic through
// every endpoint flavor to populate the telemetry (3 tile requests — one
// a cache hit, one uncached — and 2 coherent frames on one camera), and
// hands back the httptest front end.
func StartTestHarness(tb testing.TB) (*Server, *httptest.Server) {
	tb.Helper()
	s := NewTestServer(tb, 33, 0)
	ts := httptest.NewServer(s.Handler(true))
	tb.Cleanup(ts.Close)

	get := func(path string) {
		tb.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			tb.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			tb.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	get("/tile?x0=0.2&y0=0.2&x1=0.6&y1=0.6&lod=0.9")
	get("/tile?x0=0.2&y0=0.2&x1=0.6&y1=0.6&lod=0.9") // cache hit
	get("/tile?x0=0.1&y0=0.1&x1=0.5&y1=0.5&lod=0.9&nocache=1")
	get("/frame?session=cam1&x0=0.2&y0=0.0&x1=0.7&y1=0.4&near=0.75&far=0.99")
	get("/frame?session=cam1&x0=0.2&y0=0.1&x1=0.7&y1=0.5&near=0.75&far=0.99")
	return s, ts
}

// Fetch GETs baseURL+path and returns the response with its full body
// read and closed.
func Fetch(tb testing.TB, baseURL, path string) (*http.Response, []byte) {
	tb.Helper()
	resp, err := http.Get(baseURL + path)
	if err != nil {
		tb.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		tb.Fatal(err)
	}
	return resp, body
}
