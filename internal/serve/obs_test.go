package serve

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"dmesh/internal/obs"
	"dmesh/internal/tilecache"
)

// TestHealthEndpoints pins the probe semantics: /healthz is liveness
// (200 whenever the process answers), /readyz is readiness (200 only
// with a serving store behind it), and both are mounted even with
// introspection off — orchestration must always be able to probe.
func TestHealthEndpoints(t *testing.T) {
	s := NewTestServer(t, 33, 0)
	ts := httptest.NewServer(s.Handler(false))
	defer ts.Close()

	for _, path := range []string{"/healthz", "/readyz"} {
		resp, body := Fetch(t, ts.URL, path)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		var h struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(body, &h); err != nil {
			t.Errorf("GET %s: not JSON: %v", path, err)
		}
	}
	if err := s.ReadyError(); err != nil {
		t.Errorf("built server not ready: %v", err)
	}
	// A hollow server is alive but must not probe ready.
	var empty Server
	if err := empty.ReadyError(); err == nil {
		t.Error("zero-value server reported ready")
	}
}

// TestPatchTraceHeader drives the shard side of the distributed-tracing
// wire: a /patch request with trace=1 must carry an X-DM-Trace header
// whose decoded spans fully account for the X-DM-DA header — the
// per-hop half of the cluster's cross-hop invariant — and an untraced
// request must not pay for or carry one.
func TestPatchTraceHeader(t *testing.T) {
	s := NewTestServer(t, 33, 0)
	ts := httptest.NewServer(s.Handler(false))
	defer ts.Close()

	k := tilecache.Key{Level: 1, IX: 0, IY: 1, Band: len(s.Grid().Ladder()) / 2}
	path := fmt.Sprintf("/patch?level=%d&ix=%d&iy=%d&band=%d", k.Level, k.IX, k.IY, k.Band)
	if err := s.Store().DropCaches(); err != nil {
		t.Fatal(err)
	}

	resp, _ := Fetch(t, ts.URL, path+"&trace=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced patch: status %d", resp.StatusCode)
	}
	da, err := strconv.ParseUint(resp.Header.Get("X-DM-DA"), 10, 64)
	if err != nil || da == 0 {
		t.Fatalf("cold traced patch X-DM-DA = %q, want a positive count", resp.Header.Get("X-DM-DA"))
	}
	wireB64 := resp.Header.Get("X-DM-Trace")
	if wireB64 == "" {
		t.Fatal("traced patch carried no X-DM-Trace header")
	}
	buf, err := base64.StdEncoding.DecodeString(wireB64)
	if err != nil {
		t.Fatalf("X-DM-Trace not base64: %v", err)
	}
	wt, err := obs.DecodeTraceWire(buf)
	if err != nil {
		t.Fatalf("X-DM-Trace: %v", err)
	}
	if wt.TotalDA() != da {
		t.Errorf("wire trace accounts for %d DA, header says %d", wt.TotalDA(), da)
	}
	if len(wt.Spans) == 0 || wt.Spans[0].Phase != obs.PhaseQuery {
		t.Errorf("trace root is not a query span: %+v", wt.Spans)
	}

	// Untraced requests stay exactly as before: no trace header.
	resp2, _ := Fetch(t, ts.URL, path)
	if h := resp2.Header.Get("X-DM-Trace"); h != "" {
		t.Errorf("untraced patch carried X-DM-Trace %q", h)
	}
}

// TestStreamTraceTrailer checks the /stream side: the trace covers the
// whole progressive response, so it rides an HTTP trailer — declared
// before the body, delivered after it — and must account for the
// trailing X-DM-DA exactly, with the stream-specific phases present.
func TestStreamTraceTrailer(t *testing.T) {
	s := NewTestServer(t, 33, 0)
	ts := httptest.NewServer(s.Handler(false))
	defer ts.Close()
	if err := s.Store().DropCaches(); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/stream?x0=0.1&y0=0.1&x1=0.8&y1=0.8&lod=0.95&resume=0&trace=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced stream: status %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body) // trailers arrive after the body
	if err != nil {
		t.Fatal(err)
	}
	if len(body) == 0 {
		t.Fatal("empty stream body")
	}
	da, err := strconv.ParseUint(resp.Trailer.Get("X-DM-DA"), 10, 64)
	if err != nil {
		t.Fatalf("trailer X-DM-DA = %q: %v", resp.Trailer.Get("X-DM-DA"), err)
	}
	buf, err := base64.StdEncoding.DecodeString(resp.Trailer.Get("X-DM-Trace"))
	if err != nil {
		t.Fatalf("trailer X-DM-Trace not base64: %v", err)
	}
	wt, err := obs.DecodeTraceWire(buf)
	if err != nil {
		t.Fatal(err)
	}
	if wt.TotalDA() != da {
		t.Errorf("stream trace accounts for %d DA, trailer says %d", wt.TotalDA(), da)
	}
	var sawEncode, sawReplay bool
	for _, sp := range wt.Spans {
		switch sp.Phase {
		case obs.PhaseStreamEncode:
			sawEncode = true
		case obs.PhaseStreamReplay:
			sawReplay = true
		}
	}
	if !sawEncode {
		t.Error("stream trace has no stream_encode spans")
	}
	if !sawReplay {
		t.Error("resumed stream trace has no stream_replay span")
	}
}

// TestLatencyHistogramsExposed: the per-endpoint duration histograms
// must show up on /metrics after traffic and the whole page must
// survive the cluster-side Prometheus parser — the scrape contract
// /clustermetrics depends on.
func TestLatencyHistogramsExposed(t *testing.T) {
	s := NewTestServer(t, 33, 0)
	ts := httptest.NewServer(s.Handler(true))
	defer ts.Close()

	k := tilecache.Key{Level: 0, IX: 0, IY: 0, Band: 0}
	Fetch(t, ts.URL, fmt.Sprintf("/patch?level=%d&ix=%d&iy=%d&band=%d", k.Level, k.IX, k.IY, k.Band))
	Fetch(t, ts.URL, "/stream?x0=0.1&y0=0.1&x1=0.6&y1=0.6&lod=0.9")

	resp, body := Fetch(t, ts.URL, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: status %d", resp.StatusCode)
	}
	snap, err := obs.ParsePrometheus(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics page does not parse: %v", err)
	}
	for _, name := range []string{"tileserver_patch_latency_nanos", "tileserver_stream_latency_nanos"} {
		m := snap.Metrics[name]
		if m == nil || m.Kind != "histogram" {
			t.Fatalf("%s missing or not a histogram: %+v", name, m)
		}
		if m.Count == 0 {
			t.Errorf("%s observed nothing after traffic", name)
		}
		if !strings.Contains(string(body), "# TYPE "+name+" histogram") {
			t.Errorf("/metrics missing TYPE line for %s", name)
		}
	}
}
