package serve

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"dmesh/internal/dm"
	"dmesh/internal/geom"
	"dmesh/internal/stream"
	"dmesh/internal/tilecache"
)

// expectedStream rebuilds, through the server's own cache, the exact
// stream the /stream endpoint should serve for (roi, pct) — the codec is
// deterministic, so the HTTP body must be byte-identical.
func expectedStream(t *testing.T, s *Server, roi geom.Rect, pct float64) *stream.Stream {
	t.Helper()
	band, _ := s.Cache().Grid().SnapE(s.Terrain().LODPercentile(pct))
	levels, err := stream.LevelsFor(s.Cache().Grid().Ladder(), band)
	if err != nil {
		t.Fatal(err)
	}
	meshes := make([]*dm.Result, 0, len(levels))
	for _, e := range levels {
		res, _, err := s.Cache().Query(roi, e)
		if err != nil {
			t.Fatal(err)
		}
		meshes = append(meshes, res)
	}
	st, err := stream.Encode(roi, levels, meshes)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStreamEndpoint: the full /stream body decodes batch by batch into
// exactly the direct query answer at the snapped LOD, and is
// byte-identical to a locally encoded stream over the same cache.
func TestStreamEndpoint(t *testing.T) {
	s := NewTestServer(t, 33, 0)
	ts := httptest.NewServer(s.Handler(false))
	defer ts.Close()

	roi := geom.Rect{MinX: 0.2, MinY: 0.15, MaxX: 0.75, MaxY: 0.7}
	const pct = 0.9
	want := expectedStream(t, s, roi, pct)

	path := fmt.Sprintf("/stream?x0=%g&y0=%g&x1=%g&y1=%g&lod=%g", roi.MinX, roi.MinY, roi.MaxX, roi.MaxY, pct)
	resp, body := Fetch(t, ts.URL, path)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("content type %q", ct)
	}
	if nb := resp.Header.Get("X-DM-Batches"); nb != strconv.Itoa(len(want.Frames)) {
		t.Errorf("X-DM-Batches = %q, want %d", nb, len(want.Frames))
	}

	var wantBody bytes.Buffer
	if _, err := want.WriteTo(&wantBody, -1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, wantBody.Bytes()) {
		t.Fatalf("/stream body (%d B) differs from local encoding (%d B)", len(body), wantBody.Len())
	}

	dec := stream.NewDecoder()
	if err := dec.Attach(bytes.NewReader(body)); err != nil {
		t.Fatal(err)
	}
	for !dec.Done() {
		if _, _, err := dec.Next(); err != nil {
			t.Fatal(err)
		}
	}
	_, snapped := s.Cache().Grid().SnapE(s.Terrain().LODPercentile(pct))
	direct, err := s.Store().ViewpointIndependent(roi, snapped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dm.CanonicalMesh(dec.Mesh()), dm.CanonicalMesh(direct)) {
		t.Fatal("streamed mesh differs from the direct query answer")
	}

	if served, _ := s.StreamTotals(); served != 1 {
		t.Errorf("StreamTotals served = %d, want 1", served)
	}
}

// TestStreamResume: a resume=k response must be exactly the header plus
// the frames after k, and a decoder cut mid-stream must complete through
// a second request at resume=LastApplied().
func TestStreamResume(t *testing.T) {
	s := NewTestServer(t, 33, 0)
	ts := httptest.NewServer(s.Handler(false))
	defer ts.Close()

	roi := geom.Rect{MinX: 0.1, MinY: 0.2, MaxX: 0.8, MaxY: 0.85}
	const pct = 0.55 // deep target: several batches
	want := expectedStream(t, s, roi, pct)
	if len(want.Frames) < 3 {
		t.Fatalf("test wants >= 3 batches, got %d", len(want.Frames))
	}
	base := fmt.Sprintf("/stream?x0=%g&y0=%g&x1=%g&y1=%g&lod=%g", roi.MinX, roi.MinY, roi.MaxX, roi.MaxY, pct)

	for k := -1; k < len(want.Frames); k++ {
		resp, body := Fetch(t, ts.URL, fmt.Sprintf("%s&resume=%d", base, k))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("resume=%d: status %d: %s", k, resp.StatusCode, body)
		}
		var wantBody bytes.Buffer
		if _, err := want.WriteTo(&wantBody, k); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(body, wantBody.Bytes()) {
			t.Fatalf("resume=%d body (%d B) differs from header+frames[%d:] (%d B)",
				k, len(body), k+1, wantBody.Len())
		}
	}

	// A client cut mid-transfer: decode a prefix of the full body that
	// ends inside frame 2, then complete over a resumed request.
	_, full := Fetch(t, ts.URL, base)
	cut := len(want.Header) + len(want.Frames[0]) + len(want.Frames[1]) + len(want.Frames[2])/2
	dec := stream.NewDecoder()
	if err := dec.Attach(bytes.NewReader(full[:cut])); err != nil {
		t.Fatal(err)
	}
	for {
		if _, _, err := dec.Next(); err != nil {
			if !errors.Is(err, stream.ErrTruncated) {
				t.Fatalf("cut decode: %v, want ErrTruncated", err)
			}
			break
		}
	}
	if dec.LastApplied() != 1 {
		t.Fatalf("LastApplied after cut = %d, want 1", dec.LastApplied())
	}
	resp, err := http.Get(ts.URL + fmt.Sprintf("%s&resume=%d", base, dec.LastApplied()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := dec.Attach(resp.Body); err != nil {
		t.Fatal(err)
	}
	for !dec.Done() {
		if _, _, err := dec.Next(); err != nil {
			t.Fatalf("resumed decode: %v", err)
		}
	}
	_, snapped := s.Cache().Grid().SnapE(s.Terrain().LODPercentile(pct))
	direct, derr := s.Store().ViewpointIndependent(roi, snapped)
	if derr != nil {
		t.Fatal(derr)
	}
	if !bytes.Equal(dm.CanonicalMesh(dec.Mesh()), dm.CanonicalMesh(direct)) {
		t.Fatal("two-request stream decodes a different mesh than the direct query")
	}
}

// TestStreamBadParams pins the endpoint's 400 surface.
func TestStreamBadParams(t *testing.T) {
	s := NewTestServer(t, 17, 0)
	ts := httptest.NewServer(s.Handler(false))
	defer ts.Close()
	for _, path := range []string{
		"/stream?lod=1.5",
		"/stream?lod=-0.1",
		"/stream?x0=abc",
		"/stream?resume=99",
		"/stream?resume=-2",
	} {
		resp, body := Fetch(t, ts.URL, path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s: status %d, want 400: %s", path, resp.StatusCode, body)
		}
		if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(body)) {
			t.Errorf("GET %s: Content-Length %q, body is %d bytes", path, cl, len(body))
		}
	}
}

// TestContentLengthDeclared is the regression for the truncation-safety
// bugfix: every fixed-size response — the binary /patch body, every JSON
// endpoint, and JSON errors — must declare Content-Length matching the
// body, so a connection cut mid-body surfaces to clients as a short read
// instead of a clean-looking truncated 200.
func TestContentLengthDeclared(t *testing.T) {
	s, ts := StartTestHarness(t)

	k := tilecache.Key{Level: 1, IX: 0, IY: 1, Band: len(s.Grid().Ladder()) / 2}
	paths := []string{
		fmt.Sprintf("/patch?level=%d&ix=%d&iy=%d&band=%d", k.Level, k.IX, k.IY, k.Band),
		"/tile?x0=0.2&y0=0.2&x1=0.6&y1=0.6&lod=0.9",
		"/frame?session=cl&x0=0.2&y0=0.0&x1=0.7&y1=0.4&near=0.75&far=0.99",
		"/stats",
		"/cachestats",
		"/hottiles?n=5",
		"/gridinfo",
		"/slowlog?n=5",
		"/metrics",
		"/healthz",
		"/readyz",
		"/patch?level=99&ix=0&iy=0&band=0", // a jsonError response
		"/tile?x0=abc",                     // another
	}
	for _, path := range paths {
		resp, body := Fetch(t, ts.URL, path)
		if cl := resp.Header.Get("Content-Length"); cl != strconv.Itoa(len(body)) {
			t.Errorf("GET %s: Content-Length %q, body is %d bytes", path, cl, len(body))
		}
	}

	// And the transport-level check the declaration buys: a body cut
	// below the declared length must surface as an error, not EOF-as-OK.
	resp, err := http.Get(ts.URL + paths[0])
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.ContentLength <= 0 {
		t.Fatalf("patch ContentLength = %d, want positive", resp.ContentLength)
	}
	half := make([]byte, resp.ContentLength/2)
	if _, err := io.ReadFull(resp.Body, half); err != nil {
		t.Fatal(err)
	}
}
