package mtmcodec

import (
	"bytes"
	"reflect"
	"testing"

	"dmesh/internal/dm"
	"dmesh/internal/heightfield"
	"dmesh/internal/mesh"
	"dmesh/internal/simplify"
)

func buildSeq(t testing.TB, size int, name string) *simplify.Sequence {
	t.Helper()
	g, err := heightfield.Named(name, size, 5)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := simplify.Run(mesh.FromGrid(g), simplify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestRoundTripExact(t *testing.T) {
	for _, name := range []string{"highland", "crater"} {
		seq := buildSeq(t, 17, name)
		var buf bytes.Buffer
		if err := Write(&buf, seq); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.BaseVertices != seq.BaseVertices {
			t.Fatalf("BaseVertices %d vs %d", got.BaseVertices, seq.BaseVertices)
		}
		if !reflect.DeepEqual(got.Positions, seq.Positions) {
			t.Fatal("positions differ")
		}
		if !reflect.DeepEqual(got.Collapses, seq.Collapses) {
			t.Fatal("collapses differ")
		}
		if !reflect.DeepEqual(got.Roots, seq.Roots) {
			t.Fatal("roots differ")
		}
		if !reflect.DeepEqual(got.ConnLists, seq.ConnLists) {
			t.Fatal("connection lists differ")
		}
		if !reflect.DeepEqual(got.InitialAdj, seq.InitialAdj) {
			t.Fatal("initial adjacency differs")
		}
	}
}

func TestDecodedSequenceDrivesThePipeline(t *testing.T) {
	seq := buildSeq(t, 9, "highland")
	var buf bytes.Buffer
	if err := Write(&buf, seq); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dm.FromSequence(got)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dm.BuildStore(ds, dm.StorePools{}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionRatio(t *testing.T) {
	seq := buildSeq(t, 33, "highland")
	var buf bytes.Buffer
	if err := Write(&buf, seq); err != nil {
		t.Fatal(err)
	}
	// A naive encoding: 3 floats/position + 4 ids + float per collapse +
	// 8 bytes per list entry.
	naive := len(seq.Positions)*24 + len(seq.Collapses)*40
	for _, l := range seq.ConnLists {
		naive += 8 * len(l)
	}
	for _, l := range seq.InitialAdj {
		naive += 8 * len(l)
	}
	ratio := float64(naive) / float64(buf.Len())
	if ratio < 1.5 {
		t.Fatalf("compression ratio %.2f (compact %d vs naive %d) — expected at least 1.5x", ratio, buf.Len(), naive)
	}
	t.Logf("compression: %d -> %d bytes (%.1fx)", naive, buf.Len(), ratio)
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("MTM1"),                 // truncated after magic
		[]byte("MTM1\x00\x00\x00\x00"), // not valid flate
	}
	for i, src := range cases {
		if _, err := Read(bytes.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	seq := buildSeq(t, 9, "crater")
	var buf bytes.Buffer
	if err := Write(&buf, seq); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Cuts near the very end may leave a complete logical payload (only
	// the flate trailer is lost), so test mid-stream truncations.
	for _, cut := range []int{len(data) / 4, len(data) / 2, 3 * len(data) / 4} {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}
