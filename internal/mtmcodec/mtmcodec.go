// Package mtmcodec serializes multiresolution collapse sequences in a
// compact binary form: varint-coded IDs relative to each node (the IDs an
// MTM node references cluster near its own), delta-coded sorted lists,
// and a DEFLATE wrapper. Simplification is by far the most expensive step
// of the pipeline, so shipping its result compactly matters — the same
// motivation as the multiresolution-mesh compression line of work the
// paper cites (Danovaro et al., SSTD 2001).
package mtmcodec

import (
	"bufio"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"dmesh/internal/geom"
	"dmesh/internal/simplify"
)

const (
	magic   = "MTM1"
	version = 1
)

// Write serializes seq to w.
func Write(w io.Writer, seq *simplify.Sequence) error {
	if _, err := io.WriteString(w, magic); err != nil {
		return err
	}
	fw, err := flate.NewWriter(w, flate.DefaultCompression)
	if err != nil {
		return err
	}
	e := &encoder{w: bufio.NewWriter(fw)}

	e.uvarint(version)
	e.uvarint(uint64(seq.BaseVertices))
	e.uvarint(uint64(len(seq.Positions)))
	e.uvarint(uint64(len(seq.Collapses)))

	for _, p := range seq.Positions {
		e.float(p.X)
		e.float(p.Y)
		e.float(p.Z)
	}
	for i, c := range seq.Collapses {
		// The created node ID is implicit (BaseVertices + i); references
		// are coded relative to it — children and wings are usually close.
		newID := int64(seq.BaseVertices + i)
		if c.New != newID {
			return fmt.Errorf("mtmcodec: collapse %d creates %d, want %d", i, c.New, newID)
		}
		e.rel(newID, c.Child1)
		e.rel(newID, c.Child2)
		e.rel(newID, c.Wing1)
		e.rel(newID, c.Wing2)
		e.float(c.Err)
		e.uvarint(uint64(len(c.Child1Adj)))
		for _, id := range c.Child1Adj {
			e.varint(newID - id)
		}
	}
	e.uvarint(uint64(len(seq.Roots)))
	for _, r := range seq.Roots {
		e.uvarint(uint64(r))
	}
	e.idLists(seq.ConnLists)
	e.idLists(seq.InitialAdj)

	if e.err != nil {
		return e.err
	}
	if err := e.w.Flush(); err != nil {
		return err
	}
	return fw.Close()
}

// Read deserializes a sequence written by Write.
func Read(r io.Reader) (*simplify.Sequence, error) {
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("mtmcodec: %w", err)
	}
	if string(head) != magic {
		return nil, errors.New("mtmcodec: bad magic")
	}
	d := &decoder{r: bufio.NewReader(flate.NewReader(r))}

	if v := d.uvarint(); v != version {
		if d.err != nil {
			return nil, d.err
		}
		return nil, fmt.Errorf("mtmcodec: version %d, want %d", v, version)
	}
	base := int(d.uvarint())
	numPos := int(d.uvarint())
	numCol := int(d.uvarint())
	if d.err != nil {
		return nil, d.err
	}
	const sanity = 1 << 31
	if base < 0 || numPos < base || numPos > sanity || numCol != numPos-base {
		return nil, fmt.Errorf("mtmcodec: inconsistent counts base=%d pos=%d collapses=%d", base, numPos, numCol)
	}

	seq := &simplify.Sequence{BaseVertices: base}
	seq.Positions = make([]geom.Point3, numPos)
	for i := range seq.Positions {
		seq.Positions[i] = geom.Point3{X: d.float(), Y: d.float(), Z: d.float()}
	}
	seq.Collapses = make([]simplify.Collapse, numCol)
	for i := range seq.Collapses {
		newID := int64(base + i)
		col := simplify.Collapse{
			New:    newID,
			Child1: d.rel(newID),
			Child2: d.rel(newID),
			Wing1:  d.rel(newID),
			Wing2:  d.rel(newID),
			Pos:    seq.Positions[newID],
			Err:    d.float(),
		}
		cnt := int(d.uvarint())
		if d.err != nil {
			return nil, d.err
		}
		if cnt > numPos {
			return nil, fmt.Errorf("mtmcodec: collapse %d has %d partition entries", i, cnt)
		}
		if cnt > 0 {
			col.Child1Adj = make([]int64, cnt)
			for k := range col.Child1Adj {
				col.Child1Adj[k] = newID - d.varint()
			}
		}
		seq.Collapses[i] = col
	}
	numRoots := int(d.uvarint())
	if d.err != nil {
		return nil, d.err
	}
	if numRoots < 0 || numRoots > numPos {
		return nil, fmt.Errorf("mtmcodec: %d roots for %d nodes", numRoots, numPos)
	}
	seq.Roots = make([]int64, numRoots)
	for i := range seq.Roots {
		seq.Roots[i] = int64(d.uvarint())
	}
	var err error
	if seq.ConnLists, err = d.idLists(numPos); err != nil {
		return nil, err
	}
	if seq.InitialAdj, err = d.idLists(numPos); err != nil {
		return nil, err
	}
	if d.err != nil {
		return nil, d.err
	}
	return seq, nil
}

// --- encoding primitives ----------------------------------------------

type encoder struct {
	w   *bufio.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

func (e *encoder) uvarint(v uint64) {
	if e.err != nil {
		return
	}
	n := binary.PutUvarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

func (e *encoder) varint(v int64) {
	if e.err != nil {
		return
	}
	n := binary.PutVarint(e.buf[:], v)
	_, e.err = e.w.Write(e.buf[:n])
}

// rel codes id relative to base; the sentinel -1 (absent wing) is
// preserved.
func (e *encoder) rel(base, id int64) {
	if id == -1 {
		e.varint(0) // 0 cannot be a real delta: a node never references itself
		return
	}
	e.varint(base - id)
}

func (e *encoder) float(v float64) {
	if e.err != nil {
		return
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	_, e.err = e.w.Write(b[:])
}

// idLists codes per-node sorted ID lists as length + first value + deltas.
// nil lists (unused vertex slots) are distinguished from empty ones.
func (e *encoder) idLists(lists [][]int64) {
	e.uvarint(uint64(len(lists)))
	for _, l := range lists {
		if l == nil {
			e.uvarint(0)
			continue
		}
		e.uvarint(uint64(len(l)) + 1)
		prev := int64(0)
		for _, id := range l {
			e.varint(id - prev)
			prev = id
		}
	}
}

type decoder struct {
	r   *bufio.Reader
	err error
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadUvarint(d.r)
	if err != nil {
		d.err = fmt.Errorf("mtmcodec: %w", err)
	}
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, err := binary.ReadVarint(d.r)
	if err != nil {
		d.err = fmt.Errorf("mtmcodec: %w", err)
	}
	return v
}

func (d *decoder) rel(base int64) int64 {
	delta := d.varint()
	if delta == 0 {
		return -1
	}
	return base - delta
}

func (d *decoder) float() float64 {
	if d.err != nil {
		return 0
	}
	var b [8]byte
	if _, err := io.ReadFull(d.r, b[:]); err != nil {
		d.err = fmt.Errorf("mtmcodec: %w", err)
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:]))
}

func (d *decoder) idLists(maxID int) ([][]int64, error) {
	n := int(d.uvarint())
	if d.err != nil {
		return nil, d.err
	}
	if n < 0 || n > maxID {
		return nil, fmt.Errorf("mtmcodec: %d id lists for %d nodes", n, maxID)
	}
	lists := make([][]int64, n)
	for i := range lists {
		l := d.uvarint()
		if d.err != nil {
			return nil, d.err
		}
		if l == 0 {
			continue // nil list
		}
		cnt := int(l - 1)
		if cnt > maxID {
			return nil, fmt.Errorf("mtmcodec: id list of %d entries", cnt)
		}
		lst := make([]int64, cnt)
		prev := int64(0)
		for k := range lst {
			prev += d.varint()
			lst[k] = prev
		}
		lists[i] = lst
	}
	return lists, nil
}
