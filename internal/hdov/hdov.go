// Package hdov implements the HDoV-tree baseline of the paper's
// evaluation (Shou, Huang, Tan; ICDE 2003): an LOD-R-tree — a spatial
// hierarchy whose internal nodes store pre-generalized approximation
// meshes of their subtrees — extended with per-node degree-of-visibility
// (DoV) data held in the "indexed-vertical storage scheme" (one array per
// view direction, so a query touching many nodes reads few visibility
// pages).
//
// Following Section 6 of the paper, "the terrain is partitioned into
// grids, which serve as the objects in the HDoV tree"; the hierarchy here
// is a regular quadtree of grid cells (the shape an R-tree packs uniform
// grid objects into), with one approximation mesh per node, generalized
// from the same multiresolution cuts the other methods use. Queries stop
// descending once a node's stored LOD suffices (or the node is occluded),
// and then read the node's whole mesh — the coarse-granularity behaviour
// the paper criticizes: "entire node needs to be retrieved even if only a
// small part of the area covered by the node is needed".
package hdov

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"dmesh/internal/geom"
	"dmesh/internal/heightfield"
	"dmesh/internal/pm"
	"dmesh/internal/storage/heapfile"
	"dmesh/internal/storage/pager"
)

// Direction indexes the four canonical viewer placements visibility is
// precomputed for (the viewer stands at the middle of that edge of the
// terrain).
type Direction int

// View directions.
const (
	South Direction = iota // viewer at low y
	North                  // viewer at high y
	West                   // viewer at low x
	East                   // viewer at high x
	numDirections
)

// DirectionForPlane returns the precomputed direction matching a query
// plane: the viewer stands at the plane's low edge.
func DirectionForPlane(qp geom.QueryPlane) Direction {
	if qp.Axis == 0 {
		return West
	}
	return South
}

const (
	// meshRecordSize is one approximation vertex row: a full point record
	// (the same schema as the PM table — the HDoV tree materializes the
	// points of each node's generalized mesh as ordinary table rows).
	// Rows of all levels live in one table laid out in Hilbert (x, y)
	// order, so cost differences between methods come from structure, not
	// from storage packing.
	meshRecordSize = pm.RecordSize
	// dirRecordSize is one directory node: region rect, stored LOD,
	// children indices, row-list head, row count.
	dirRecordSize = 32 + 8 + 4*8 + 8 + 8
	// visRecordSize is one DoV value.
	visRecordSize = 8
	// rowListFanout is how many vertex-row references one row-list record
	// holds; longer lists chain through a next pointer.
	rowListFanout = 64
	// rowListRecordSize is next(8) + count(2) + references.
	rowListRecordSize = 8 + 2 + rowListFanout*8
	// noChild marks an absent child (and terminates row-list chains).
	noChild = int64(-1)
)

// Point is one vertex of a retrieved approximation.
type Point struct {
	ID  int64
	Pos geom.Point3
}

// Store is a disk-resident HDoV-tree.
type Store struct {
	dir   *heapfile.File // directory nodes
	msh   *heapfile.File // vertex rows, Hilbert-ordered
	rl    *heapfile.File // per-node row-reference lists
	vis   *heapfile.File // degree-of-visibility arrays
	dirP  *pager.Pager
	mshP  *pager.Pager
	rlP   *pager.Pager
	visP  *pager.Pager
	root  heapfile.RID
	count int64 // directory nodes
	maxE  float64
}

type dirNode struct {
	region   geom.Rect
	e        float64 // LOD of the stored approximation (0 = exact)
	children [4]int64
	rowHead  int64 // first row-list record (noChild when empty)
	rowCount int64
}

func encodeDir(n *dirNode, buf []byte) {
	le := binary.LittleEndian
	le.PutUint64(buf[0:], math.Float64bits(n.region.MinX))
	le.PutUint64(buf[8:], math.Float64bits(n.region.MinY))
	le.PutUint64(buf[16:], math.Float64bits(n.region.MaxX))
	le.PutUint64(buf[24:], math.Float64bits(n.region.MaxY))
	le.PutUint64(buf[32:], math.Float64bits(n.e))
	for i, c := range n.children {
		le.PutUint64(buf[40+i*8:], uint64(c))
	}
	le.PutUint64(buf[72:], uint64(n.rowHead))
	le.PutUint64(buf[80:], uint64(n.rowCount))
}

func decodeDir(buf []byte) dirNode {
	le := binary.LittleEndian
	var n dirNode
	n.region = geom.Rect{
		MinX: math.Float64frombits(le.Uint64(buf[0:])),
		MinY: math.Float64frombits(le.Uint64(buf[8:])),
		MaxX: math.Float64frombits(le.Uint64(buf[16:])),
		MaxY: math.Float64frombits(le.Uint64(buf[24:])),
	}
	n.e = math.Float64frombits(le.Uint64(buf[32:]))
	for i := range n.children {
		n.children[i] = int64(le.Uint64(buf[40+i*8:]))
	}
	n.rowHead = int64(le.Uint64(buf[72:]))
	n.rowCount = int64(le.Uint64(buf[80:]))
	return n
}

// Options configure the build. The zero value selects defaults.
type Options struct {
	// Levels is the hierarchy depth (root = level 0). 0 selects a depth
	// giving leaf cells of roughly 256 points.
	Levels int
	// Pools sizes the buffer pools in pages.
	MeshPool, DirPool, VisPool, RowPool int
}

func (o *Options) defaults(points int) {
	if o.Levels <= 0 {
		o.Levels = 1
		for cells := 1; points/(cells*cells) > 256 && o.Levels < 8; {
			o.Levels++
			cells *= 2
		}
	}
	if o.MeshPool <= 0 {
		o.MeshPool = 4096
	}
	if o.DirPool <= 0 {
		o.DirPool = 512
	}
	if o.VisPool <= 0 {
		o.VisPool = 256
	}
	if o.RowPool <= 0 {
		o.RowPool = 512
	}
}

// Build constructs the HDoV store from the multiresolution tree (for the
// per-level generalized meshes) and the original heightfield (for the
// visibility precomputation).
func Build(tree *pm.Tree, g *heightfield.Grid, opts Options) (*Store, error) {
	opts.defaults(len(tree.Nodes))
	s := &Store{
		dirP: pager.New(pager.NewMemBackend(), opts.DirPool),
		mshP: pager.New(pager.NewMemBackend(), opts.MeshPool),
		rlP:  pager.New(pager.NewMemBackend(), opts.RowPool),
		visP: pager.New(pager.NewMemBackend(), opts.VisPool),
		maxE: tree.MaxE,
	}
	var err error
	if s.dir, err = heapfile.Create(s.dirP, dirRecordSize); err != nil {
		return nil, fmt.Errorf("hdov: %w", err)
	}
	if s.msh, err = heapfile.Create(s.mshP, meshRecordSize); err != nil {
		return nil, fmt.Errorf("hdov: %w", err)
	}
	if s.rl, err = heapfile.Create(s.rlP, rowListRecordSize); err != nil {
		return nil, fmt.Errorf("hdov: %w", err)
	}
	if s.vis, err = heapfile.Create(s.visP, visRecordSize); err != nil {
		return nil, fmt.Errorf("hdov: %w", err)
	}

	// Per-level LOD values: the leaf level stores the exact terrain
	// (e = 0); each level up stores roughly a quarter of the points,
	// which the monotone collapse sequence gives directly.
	levels := opts.Levels
	eOf := levelLODs(tree, levels)

	// Pass 1: every node's generalized mesh, as (node, point) rows.
	type nodeKey struct{ lvl, cell int }
	type row struct {
		key nodeKey
		id  int64
	}
	var rows []row
	for lvl := 0; lvl < levels; lvl++ {
		cells := 1 << lvl
		cuts := cutByCell(tree, eOf[lvl], cells)
		for cell, pts := range cuts {
			for _, id := range pts {
				rows = append(rows, row{key: nodeKey{lvl, cell}, id: id})
			}
		}
	}

	// Pass 2: lay the vertex rows out in Hilbert (x, y) order and record
	// each node's row references.
	sort.SliceStable(rows, func(a, b int) bool {
		ka := geom.HilbertKey(tree.Nodes[rows[a].id].Pos.XY())
		kb := geom.HilbertKey(tree.Nodes[rows[b].id].Pos.XY())
		if ka != kb {
			return ka < kb
		}
		return rows[a].id < rows[b].id
	})
	rids := make(map[nodeKey][]int64)
	mbuf := make([]byte, meshRecordSize)
	for _, r := range rows {
		encodeMeshRecord(&tree.Nodes[r.id], mbuf)
		rid, err := s.msh.Append(mbuf)
		if err != nil {
			return nil, fmt.Errorf("hdov: mesh append: %w", err)
		}
		rids[r.key] = append(rids[r.key], int64(rid))
	}

	// Pass 3: write each node's row list as a chain (tail first, so every
	// record knows its successor).
	heads := make(map[nodeKey]int64)
	rlbuf := make([]byte, rowListRecordSize)
	for lvl := 0; lvl < levels; lvl++ {
		cells := 1 << lvl
		for cell := 0; cell < cells*cells; cell++ {
			key := nodeKey{lvl, cell}
			list := rids[key]
			head := noChild
			for start := ((len(list) - 1) / rowListFanout) * rowListFanout; start >= 0; start -= rowListFanout {
				end := start + rowListFanout
				if end > len(list) {
					end = len(list)
				}
				encodeRowList(list[start:end], head, rlbuf)
				rid, err := s.rl.Append(rlbuf)
				if err != nil {
					return nil, fmt.Errorf("hdov: row list append: %w", err)
				}
				head = int64(rid)
			}
			if len(list) == 0 {
				head = noChild
			}
			heads[key] = head
		}
	}

	// Pass 4: directory nodes, bottom-up so children RIDs exist first.
	type lvlNodes struct{ ids []int64 }
	var prev lvlNodes
	buf := make([]byte, dirRecordSize)
	for lvl := levels - 1; lvl >= 0; lvl-- {
		cells := 1 << lvl
		cur := lvlNodes{ids: make([]int64, cells*cells)}
		for cy := 0; cy < cells; cy++ {
			for cx := 0; cx < cells; cx++ {
				cell := cy*cells + cx
				key := nodeKey{lvl, cell}
				n := dirNode{
					region: geom.Rect{
						MinX: float64(cx) / float64(cells),
						MinY: float64(cy) / float64(cells),
						MaxX: float64(cx+1) / float64(cells),
						MaxY: float64(cy+1) / float64(cells),
					},
					e:        eOf[lvl],
					children: [4]int64{noChild, noChild, noChild, noChild},
					rowHead:  heads[key],
					rowCount: int64(len(rids[key])),
				}
				if lvl < levels-1 {
					for q := 0; q < 4; q++ {
						ccx, ccy := cx*2+q%2, cy*2+q/2
						n.children[q] = prev.ids[ccy*(cells*2)+ccx]
					}
				}
				encodeDir(&n, buf)
				rid, err := s.dir.Append(buf)
				if err != nil {
					return nil, fmt.Errorf("hdov: dir append: %w", err)
				}
				cur.ids[cell] = int64(rid)
			}
		}
		prev = cur
	}
	s.root = heapfile.RID(prev.ids[0])
	s.count = s.dir.NumRecords()

	// Visibility: DoV per node per direction, written direction-major
	// (the indexed-vertical scheme — all values for one direction are
	// contiguous).
	dov, err := s.computeVisibility(g)
	if err != nil {
		return nil, err
	}
	vbuf := make([]byte, visRecordSize)
	for d := Direction(0); d < numDirections; d++ {
		for i := int64(0); i < s.count; i++ {
			binary.LittleEndian.PutUint64(vbuf, math.Float64bits(dov[d][i]))
			if _, err := s.vis.Append(vbuf); err != nil {
				return nil, fmt.Errorf("hdov: vis append: %w", err)
			}
		}
	}
	return s, nil
}

// encodeRowList writes one row-list record holding refs (len <=
// rowListFanout) chaining to next.
func encodeRowList(refs []int64, next int64, buf []byte) {
	le := binary.LittleEndian
	le.PutUint64(buf[0:], uint64(next))
	le.PutUint16(buf[8:], uint16(len(refs)))
	for i, r := range refs {
		le.PutUint64(buf[10+i*8:], uint64(r))
	}
}

// decodeRowList reads one row-list record.
func decodeRowList(buf []byte) (refs []int64, next int64) {
	le := binary.LittleEndian
	next = int64(le.Uint64(buf[0:]))
	cnt := int(le.Uint16(buf[8:]))
	refs = make([]int64, cnt)
	for i := 0; i < cnt; i++ {
		refs[i] = int64(le.Uint64(buf[10+i*8:]))
	}
	return refs, next
}

func encodeMeshRecord(n *pm.Node, buf []byte) {
	pm.EncodeRecord(n, buf)
}

func decodeMeshRecord(buf []byte) Point {
	n := pm.DecodeRecord(buf)
	return Point{ID: n.ID, Pos: n.Pos}
}

// levelLODs picks one LOD value per level: 0 at the leaves, then the LOD
// at which the global cut retains about a quarter of the previous level's
// points, up to the root.
func levelLODs(tree *pm.Tree, levels int) []float64 {
	base := 0
	for i := range tree.Nodes {
		if tree.Nodes[i].IsLeaf() {
			base++
		}
	}
	collapses := len(tree.Nodes) - base
	es := make([]float64, levels)
	for lvl := levels - 1; lvl >= 0; lvl-- {
		depth := levels - 1 - lvl // 0 at leaves
		if depth == 0 {
			es[lvl] = 0
			continue
		}
		keep := base
		for d := 0; d < depth; d++ {
			keep /= 4
		}
		if keep < 1 {
			keep = 1
		}
		k := base - keep // collapses applied
		if k > collapses {
			k = collapses
		}
		if k <= 0 {
			es[lvl] = 0
			continue
		}
		// The k-th collapse's error: nodes are ordered children-first, so
		// internal node base+k-1 was created by collapse k-1.
		es[lvl] = tree.Nodes[base+k-1].ELow
	}
	return es
}

// cutByCell buckets the uniform cut at LOD e into a cells x cells grid.
func cutByCell(tree *pm.Tree, e float64, cells int) [][]int64 {
	out := make([][]int64, cells*cells)
	for i := range tree.Nodes {
		n := &tree.Nodes[i]
		if !n.Interval().Contains(e) {
			continue
		}
		cx := int(n.Pos.X * float64(cells))
		cy := int(n.Pos.Y * float64(cells))
		cx = clampInt(cx, 0, cells-1)
		cy = clampInt(cy, 0, cells-1)
		out[cy*cells+cx] = append(out[cy*cells+cx], int64(i))
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// computeVisibility precomputes, for every directory node and each of the
// four edge viewpoints, the fraction of sample points in the node's
// region with an unobstructed line of sight — the degree of visibility.
func (s *Store) computeVisibility(g *heightfield.Grid) ([numDirections][]float64, error) {
	var dov [numDirections][]float64
	viewers := [numDirections]geom.Point3{
		South: {X: 0.5, Y: -0.05},
		North: {X: 0.5, Y: 1.05},
		West:  {X: -0.05, Y: 0.5},
		East:  {X: 1.05, Y: 0.5},
	}
	// The viewer hovers just below the terrain maximum: high enough to
	// see open terrain (on gentle datasets DoV stays near 1, matching the
	// paper's observation that visibility helps little there), low enough
	// that major features like a crater rim occlude what lies behind them.
	_, hi := g.MinMax()
	for d := range viewers {
		viewers[d].Z = 1.1 * hi
	}
	for d := Direction(0); d < numDirections; d++ {
		dov[d] = make([]float64, s.count)
	}
	buf := make([]byte, dirRecordSize)
	for i := int64(0); i < s.count; i++ {
		if err := s.dir.Read(heapfile.RID(i), buf); err != nil {
			return dov, err
		}
		n := decodeDir(buf)
		for d := Direction(0); d < numDirections; d++ {
			dov[d][i] = regionDoV(g, n.region, viewers[d])
		}
	}
	return dov, nil
}

// regionDoV samples a 3x3 grid of points in region and returns the
// fraction visible from the viewer.
func regionDoV(g *heightfield.Grid, region geom.Rect, viewer geom.Point3) float64 {
	visible, total := 0, 0
	for sy := 0; sy < 3; sy++ {
		for sx := 0; sx < 3; sx++ {
			x := region.MinX + (float64(sx)+0.5)/3*region.Width()
			y := region.MinY + (float64(sy)+0.5)/3*region.Height()
			total++
			// A small clearance above the ground marks the target,
			// avoiding grazing self-occlusion along the terrain surface.
			target := geom.Point3{X: x, Y: y, Z: sampleHeight(g, x, y) + 0.02}
			if lineOfSight(g, viewer, target) {
				visible++
			}
		}
	}
	return float64(visible) / float64(total)
}

func sampleHeight(g *heightfield.Grid, x, y float64) float64 {
	i := clampInt(int(x*float64(g.Size-1)+0.5), 0, g.Size-1)
	j := clampInt(int(y*float64(g.Size-1)+0.5), 0, g.Size-1)
	return g.At(i, j)
}

// lineOfSight marches from the viewer toward the target just above the
// terrain and reports whether the target is visible.
func lineOfSight(g *heightfield.Grid, from, to geom.Point3) bool {
	const steps = 48
	for k := 1; k < steps; k++ {
		t := float64(k) / steps
		x := from.X + (to.X-from.X)*t
		y := from.Y + (to.Y-from.Y)*t
		if x < 0 || x > 1 || y < 0 || y > 1 {
			continue
		}
		rayZ := from.Z + (to.Z-from.Z)*t
		if sampleHeight(g, x, y) > rayZ+1e-9 {
			return false
		}
	}
	return true
}
