package hdov

import (
	"sort"
	"testing"

	"dmesh/internal/geom"
	"dmesh/internal/heightfield"
	"dmesh/internal/mesh"
	"dmesh/internal/pm"
	"dmesh/internal/simplify"
)

func buildAll(t testing.TB, size int, name string) (*pm.Tree, *heightfield.Grid, *Store) {
	t.Helper()
	g, err := heightfield.Named(name, size, 5)
	if err != nil {
		t.Fatal(err)
	}
	m := mesh.FromGrid(g)
	seq, err := simplify.Run(m, simplify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := pm.FromSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	store, err := Build(tree, g, Options{Levels: 4})
	if err != nil {
		t.Fatal(err)
	}
	return tree, g, store
}

func eAtPercentile(tree *pm.Tree, p float64) float64 {
	var es []float64
	for i := range tree.Nodes {
		if !tree.Nodes[i].IsLeaf() {
			es = append(es, tree.Nodes[i].ELow)
		}
	}
	sort.Float64s(es)
	return es[int(p*float64(len(es)-1))]
}

func TestBuildAndDirRoundTrip(t *testing.T) {
	n := dirNode{
		region:   geom.Rect{MinX: 0.25, MinY: 0.5, MaxX: 0.5, MaxY: 0.75},
		e:        3.25,
		children: [4]int64{1, 2, noChild, 4},
		rowHead:  100,
		rowCount: 7,
	}
	buf := make([]byte, dirRecordSize)
	encodeDir(&n, buf)
	if got := decodeDir(buf); got != n {
		t.Fatalf("round trip: %+v != %+v", got, n)
	}
}

func TestMeshRecordRoundTrip(t *testing.T) {
	buf := make([]byte, meshRecordSize)
	n := pm.Node{ID: 42, Pos: geom.Point3{X: 0.1, Y: 0.2, Z: 0.3}}
	encodeMeshRecord(&n, buf)
	p := decodeMeshRecord(buf)
	if p.ID != 42 || p.Pos != n.Pos {
		t.Fatalf("round trip: %+v", p)
	}
}

func TestLevelLODsMonotone(t *testing.T) {
	tree, _, _ := buildAll(t, 9, "highland")
	es := levelLODs(tree, 5)
	if es[len(es)-1] != 0 {
		t.Fatalf("leaf level LOD = %g, want 0", es[len(es)-1])
	}
	for i := 1; i < len(es); i++ {
		if es[i] > es[i-1] {
			t.Fatalf("level LODs not monotone: %v", es)
		}
	}
}

func TestQueryUniformFullResolution(t *testing.T) {
	tree, _, s := buildAll(t, 8, "highland")
	res, err := s.QueryUniform(geom.Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// At e=0 only leaf nodes suffice; they store the exact cut at 0 = all
	// original points.
	base := 0
	for i := range tree.Nodes {
		if tree.Nodes[i].IsLeaf() {
			base++
		}
	}
	if len(res.Points) != base {
		t.Fatalf("full-res query returned %d points, want %d", len(res.Points), base)
	}
}

func TestQueryUniformLODSufficiency(t *testing.T) {
	tree, _, s := buildAll(t, 9, "highland")
	e := eAtPercentile(tree, 0.6)
	res, err := s.QueryUniform(geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8}, e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("empty result")
	}
	// Every returned point must be at least as fine as required: it
	// belongs to a stored approximation with node LOD <= e, so its own
	// interval must include that node LOD... i.e. the point is live at
	// some LOD <= e, meaning its ELow <= e.
	for _, p := range res.Points {
		if tree.Nodes[p.ID].ELow > e {
			t.Fatalf("point %d coarser than required: ELow %g > e %g", p.ID, tree.Nodes[p.ID].ELow, e)
		}
	}
	// All points in ROI.
	roi := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8}
	for _, p := range res.Points {
		if !roi.ContainsPoint(p.Pos.XY()) {
			t.Fatalf("point outside ROI: %v", p.Pos)
		}
	}
}

func TestWholeNodeOverfetch(t *testing.T) {
	// A tiny ROI still reads whole node meshes: fetched records must
	// exceed returned points — the granularity problem the paper
	// describes.
	tree, _, s := buildAll(t, 9, "highland")
	e := eAtPercentile(tree, 0.3)
	roi := geom.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.45, MaxY: 0.45}
	res, err := s.QueryUniform(roi, e)
	if err != nil {
		t.Fatal(err)
	}
	if res.FetchedRecords <= len(res.Points) {
		t.Fatalf("expected over-fetch: fetched %d, returned %d", res.FetchedRecords, len(res.Points))
	}
}

func TestQueryPlane(t *testing.T) {
	tree, _, s := buildAll(t, 9, "crater")
	qp := geom.QueryPlane{
		R:    geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.9},
		EMin: eAtPercentile(tree, 0.2), EMax: eAtPercentile(tree, 0.9), Axis: 1,
	}
	res, err := s.QueryPlane(qp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("empty result")
	}
	if res.NodesUsed == 0 {
		t.Fatal("no nodes used")
	}
}

func TestVisibilityBounds(t *testing.T) {
	_, g, s := buildAll(t, 8, "crater")
	for i := int64(0); i < s.count; i++ {
		for d := Direction(0); d < numDirections; d++ {
			dov, err := s.readDoV(i, d)
			if err != nil {
				t.Fatal(err)
			}
			if dov < 0 || dov > 1 {
				t.Fatalf("DoV out of range: %g", dov)
			}
		}
	}
	_ = g
}

func TestCraterOcclusion(t *testing.T) {
	// The crater rim should occlude at least part of the terrain from a
	// low edge viewpoint: some node must have DoV < 1.
	_, _, s := buildAll(t, 9, "crater")
	occluded := false
	for i := int64(0); i < s.count && !occluded; i++ {
		dov, err := s.readDoV(i, South)
		if err != nil {
			t.Fatal(err)
		}
		if dov < 1 {
			occluded = true
		}
	}
	if !occluded {
		t.Fatal("crater terrain shows no occlusion at all")
	}
}

func TestDiskAccessesCounted(t *testing.T) {
	tree, _, s := buildAll(t, 9, "highland")
	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	e := eAtPercentile(tree, 0.5)
	if _, err := s.QueryUniform(geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8}, e); err != nil {
		t.Fatal(err)
	}
	if s.DiskAccesses() == 0 {
		t.Fatal("cold query cost nothing")
	}
}

func TestCoarserQueryCostsLess(t *testing.T) {
	tree, _, s := buildAll(t, 9, "highland")
	roi := geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.9}

	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	if _, err := s.QueryUniform(roi, eAtPercentile(tree, 0.9)); err != nil {
		t.Fatal(err)
	}
	coarse := s.DiskAccesses()

	if err := s.DropCaches(); err != nil {
		t.Fatal(err)
	}
	s.ResetStats()
	if _, err := s.QueryUniform(roi, eAtPercentile(tree, 0.05)); err != nil {
		t.Fatal(err)
	}
	fine := s.DiskAccesses()
	if coarse >= fine {
		t.Fatalf("coarse query (%d DA) should cost less than fine query (%d DA)", coarse, fine)
	}
}

func TestRowListChainsLongLists(t *testing.T) {
	refs := make([]int64, 150) // needs 3 chained records at fanout 64
	for i := range refs {
		refs[i] = int64(i * 3)
	}
	buf := make([]byte, rowListRecordSize)
	encodeRowList(refs[:64], 7, buf)
	got, next := decodeRowList(buf)
	if next != 7 || len(got) != 64 || got[63] != 63*3 {
		t.Fatalf("row list round trip: %d refs, next %d", len(got), next)
	}
	// End-to-end: a leaf node holding >64 rows must read back complete.
	tree, _, s := buildAll(t, 13, "highland") // 169 points, few leaf cells
	res, err := s.QueryUniform(geom.Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	base := 0
	for i := range tree.Nodes {
		if tree.Nodes[i].IsLeaf() {
			base++
		}
	}
	if len(res.Points) != base {
		t.Fatalf("full-res read through chained row lists returned %d of %d", len(res.Points), base)
	}
}

// The paper observes that visibility helps HDoV little on open terrain
// but can help where relief occludes. Compare HDoV with its visibility-
// blind LOD-R-tree mode on both datasets.
func TestVisibilityAblation(t *testing.T) {
	for _, name := range []string{"highland", "crater"} {
		tree, _, s := buildAll(t, 17, name)
		qp := geom.QueryPlane{
			R:    geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.9},
			EMin: eAtPercentile(tree, 0.5), EMax: eAtPercentile(tree, 0.95), Axis: 1,
		}
		if err := s.DropCaches(); err != nil {
			t.Fatal(err)
		}
		s.ResetStats()
		withVis, err := s.QueryPlane(qp)
		if err != nil {
			t.Fatal(err)
		}
		daVis := s.DiskAccesses()

		if err := s.DropCaches(); err != nil {
			t.Fatal(err)
		}
		s.ResetStats()
		noVis, err := s.QueryPlaneLODRTree(qp)
		if err != nil {
			t.Fatal(err)
		}
		daNo := s.DiskAccesses()

		// Visibility can only prune or coarsen: it never fetches MORE
		// records than the blind traversal.
		if withVis.FetchedRecords > noVis.FetchedRecords {
			t.Fatalf("%s: visibility fetched more records (%d > %d)",
				name, withVis.FetchedRecords, noVis.FetchedRecords)
		}
		t.Logf("%s: with visibility %d DA / %d records, without %d DA / %d records (skipped %d subtrees)",
			name, daVis, withVis.FetchedRecords, daNo, noVis.FetchedRecords, withVis.Skipped)
	}
}
