package hdov

import (
	"encoding/binary"
	"fmt"
	"math"

	"dmesh/internal/geom"
	"dmesh/internal/storage/heapfile"
	"dmesh/internal/storage/pager"
)

// Result is the outcome of an HDoV query: the retrieved approximation
// points plus retrieval statistics.
type Result struct {
	Points []Point
	// FetchedRecords counts every mesh record read, including points
	// outside the ROI that came along because whole node meshes are read.
	FetchedRecords int
	// NodesUsed counts the directory nodes whose meshes were used.
	NodesUsed int
	// Skipped counts subtrees pruned by visibility.
	Skipped int
}

// DropCaches flushes and empties the buffer pools.
func (s *Store) DropCaches() error {
	for _, p := range s.pagers() {
		if err := p.DropCache(); err != nil {
			return err
		}
	}
	return nil
}

// ResetStats zeroes the disk-access counters.
func (s *Store) ResetStats() {
	for _, p := range s.pagers() {
		p.ResetStats()
	}
}

// DiskAccesses returns pages read since the last ResetStats.
func (s *Store) DiskAccesses() uint64 {
	var total uint64
	for _, p := range s.pagers() {
		total += p.Stats().Reads
	}
	return total
}

func (s *Store) pagers() []*pager.Pager {
	return []*pager.Pager{s.dirP, s.mshP, s.rlP, s.visP}
}

// MaxE returns the dataset's maximum LOD value.
func (s *Store) MaxE() float64 { return s.maxE }

func (s *Store) readDir(rid int64, buf []byte) (dirNode, error) {
	if err := s.dir.Read(heapfile.RID(rid), buf); err != nil {
		return dirNode{}, fmt.Errorf("hdov: read dir %d: %w", rid, err)
	}
	return decodeDir(buf), nil
}

// readDoV reads the degree of visibility of node rid for direction d from
// the direction-major (indexed-vertical) array.
func (s *Store) readDoV(rid int64, d Direction) (float64, error) {
	buf := make([]byte, visRecordSize)
	if err := s.vis.Read(heapfile.RID(int64(d)*s.count+rid), buf); err != nil {
		return 0, fmt.Errorf("hdov: read dov: %w", err)
	}
	return decodeFloat(buf), nil
}

// readMesh reads a node's whole approximation mesh — the row-list chain,
// then every referenced vertex row — appending the points inside r to
// dst. Whole-node granularity is inherent to the structure: every row is
// read even when only part of the node's region is needed.
func (s *Store) readMesh(n *dirNode, r geom.Rect, dst *Result) error {
	lbuf := make([]byte, rowListRecordSize)
	buf := make([]byte, meshRecordSize)
	for head := n.rowHead; head != noChild; {
		if err := s.rl.Read(heapfile.RID(head), lbuf); err != nil {
			return fmt.Errorf("hdov: read row list: %w", err)
		}
		var refs []int64
		refs, head = decodeRowList(lbuf)
		for _, ref := range refs {
			if err := s.msh.Read(heapfile.RID(ref), buf); err != nil {
				return fmt.Errorf("hdov: read mesh row: %w", err)
			}
			dst.FetchedRecords++
			p := decodeMeshRecord(buf)
			if r.ContainsPoint(p.Pos.XY()) {
				dst.Points = append(dst.Points, p)
			}
		}
	}
	dst.NodesUsed++
	return nil
}

// QueryUniform answers the viewpoint-independent query Q(M, r, e): the
// tree is descended until a node's stored LOD is sufficient, then that
// node's whole mesh is read.
func (s *Store) QueryUniform(r geom.Rect, e float64) (*Result, error) {
	res := &Result{}
	buf := make([]byte, dirRecordSize)
	var visit func(rid int64) error
	visit = func(rid int64) error {
		n, err := s.readDir(rid, buf)
		if err != nil {
			return err
		}
		if !n.region.Intersects(r) {
			return nil
		}
		if n.e <= e || n.children[0] == noChild {
			return s.readMesh(&n, r, res)
		}
		for _, c := range n.children {
			if err := visit(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := visit(int64(s.root)); err != nil {
		return nil, err
	}
	return res, nil
}

// QueryPlane answers a viewpoint-dependent query. Visibility modulates
// the required LOD: fully occluded subtrees are excluded, and low-DoV
// regions accept coarser approximations (the HDoV premise). The viewer
// direction is derived from the plane.
func (s *Store) QueryPlane(qp geom.QueryPlane) (*Result, error) {
	return s.queryPlane(qp, true)
}

// QueryPlaneLODRTree answers the same query without consulting visibility
// — the plain LOD-R-tree behavior (Kofler et al.) that the HDoV-tree
// extends. Comparing the two reproduces the paper's observation that "the
// visibility selection does not help the HDoV-tree much because
// obstruction among the areas of the terrain is not as much as in the
// synthetic city model".
func (s *Store) QueryPlaneLODRTree(qp geom.QueryPlane) (*Result, error) {
	return s.queryPlane(qp, false)
}

func (s *Store) queryPlane(qp geom.QueryPlane, useVisibility bool) (*Result, error) {
	res := &Result{}
	dir := DirectionForPlane(qp)
	buf := make([]byte, dirRecordSize)
	var visit func(rid int64) error
	visit = func(rid int64) error {
		n, err := s.readDir(rid, buf)
		if err != nil {
			return err
		}
		if !n.region.Intersects(qp.R) {
			return nil
		}
		req := qp.MinOver(n.region.Intersect(qp.R))
		if useVisibility {
			dov, err := s.readDoV(rid, dir)
			if err != nil {
				return err
			}
			if dov == 0 {
				// Fully occluded: excluded from the result.
				res.Skipped++
				return nil
			}
			// The binding requirement over the visible part of the
			// region, relaxed toward the coarse end as visibility drops.
			req += (1 - dov) * (qp.EMax - req)
		}
		if n.e <= req || n.children[0] == noChild {
			return s.readMesh(&n, qp.R, res)
		}
		for _, c := range n.children {
			if err := visit(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := visit(int64(s.root)); err != nil {
		return nil, err
	}
	return res, nil
}

func decodeFloat(buf []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(buf))
}
