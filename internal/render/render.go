// Package render rasterizes terrain meshes to images (orthographic top-
// down with hillshading, PPM output) and measures approximation quality
// by comparing a rasterized mesh against the original heightfield. It is
// the visualization end of the pipeline the paper's introduction motivates
// and the instrument behind the LOD-vs-error validation tests.
package render

import (
	"bufio"
	"fmt"
	"io"
	"math"

	"dmesh/internal/geom"
	"dmesh/internal/heightfield"
)

// Raster is a rendered terrain: a height buffer over the unit square plus
// a coverage mask.
type Raster struct {
	W, H    int
	Z       []float64 // row-major heights
	Covered []bool    // false where no triangle covered the pixel
}

// NewRaster allocates an empty raster.
func NewRaster(w, h int) *Raster {
	if w < 1 || h < 1 {
		panic(fmt.Sprintf("render: invalid raster size %dx%d", w, h))
	}
	return &Raster{W: w, H: h, Z: make([]float64, w*h), Covered: make([]bool, w*h)}
}

// Mesh rasterizes the triangles (vertices in the unit square) into a
// w x h raster, interpolating heights barycentrically. Later triangles do
// not overwrite earlier ones at equal coverage (terrain meshes do not
// overlap in (x, y), so order is immaterial).
func Mesh(vertices map[int64]geom.Point3, tris []geom.Triangle, w, h int) *Raster {
	r := NewRaster(w, h)
	for _, t := range tris {
		a, okA := vertices[t.A]
		b, okB := vertices[t.B]
		c, okC := vertices[t.C]
		if !okA || !okB || !okC {
			continue
		}
		r.fillTriangle(a, b, c)
	}
	return r
}

// Grid rasterizes a heightfield directly (the reference image).
func Grid(g *heightfield.Grid, w, h int) *Raster {
	r := NewRaster(w, h)
	for j := 0; j < h; j++ {
		for i := 0; i < w; i++ {
			x := (float64(i) + 0.5) / float64(w)
			y := (float64(j) + 0.5) / float64(h)
			r.Z[j*w+i] = g.HeightAt(x, y)
			r.Covered[j*w+i] = true
		}
	}
	return r
}

// fillTriangle rasterizes one triangle with barycentric interpolation.
func (r *Raster) fillTriangle(a, b, c geom.Point3) {
	ax, ay := a.X*float64(r.W), a.Y*float64(r.H)
	bx, by := b.X*float64(r.W), b.Y*float64(r.H)
	cx, cy := c.X*float64(r.W), c.Y*float64(r.H)
	minX := int(math.Floor(math.Min(ax, math.Min(bx, cx))))
	maxX := int(math.Ceil(math.Max(ax, math.Max(bx, cx))))
	minY := int(math.Floor(math.Min(ay, math.Min(by, cy))))
	maxY := int(math.Ceil(math.Max(ay, math.Max(by, cy))))
	if minX < 0 {
		minX = 0
	}
	if minY < 0 {
		minY = 0
	}
	if maxX > r.W-1 {
		maxX = r.W - 1
	}
	if maxY > r.H-1 {
		maxY = r.H - 1
	}
	area := (bx-ax)*(cy-ay) - (by-ay)*(cx-ax)
	if area == 0 {
		return
	}
	for j := minY; j <= maxY; j++ {
		for i := minX; i <= maxX; i++ {
			px, py := float64(i)+0.5, float64(j)+0.5
			w0 := ((bx-px)*(cy-py) - (by-py)*(cx-px)) / area
			w1 := ((cx-px)*(ay-py) - (cy-py)*(ax-px)) / area
			w2 := 1 - w0 - w1
			const eps = -1e-9
			if w0 < eps || w1 < eps || w2 < eps {
				continue
			}
			idx := j*r.W + i
			r.Z[idx] = w0*a.Z + w1*b.Z + w2*c.Z
			r.Covered[idx] = true
		}
	}
}

// Coverage returns the fraction of pixels covered by at least one
// triangle.
func (r *Raster) Coverage() float64 {
	n := 0
	for _, c := range r.Covered {
		if c {
			n++
		}
	}
	return float64(n) / float64(len(r.Covered))
}

// Quality summarizes the height error of a rasterized approximation
// against a reference raster over their mutually covered pixels.
type Quality struct {
	RMS      float64 // root mean squared height error
	Max      float64 // largest absolute height error
	Compared int     // pixels compared
}

// Compare measures r against the reference (same dimensions required).
func Compare(r, ref *Raster) (Quality, error) {
	if r.W != ref.W || r.H != ref.H {
		return Quality{}, fmt.Errorf("render: size mismatch %dx%d vs %dx%d", r.W, r.H, ref.W, ref.H)
	}
	var q Quality
	var sq float64
	for i := range r.Z {
		if !r.Covered[i] || !ref.Covered[i] {
			continue
		}
		d := math.Abs(r.Z[i] - ref.Z[i])
		sq += d * d
		if d > q.Max {
			q.Max = d
		}
		q.Compared++
	}
	if q.Compared > 0 {
		q.RMS = math.Sqrt(sq / float64(q.Compared))
	}
	return q, nil
}

// WritePPM writes the raster as a hillshaded binary PPM image: slopes
// facing the northwest light render bright, uncovered pixels render as
// deep blue.
func (r *Raster) WritePPM(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", r.W, r.H); err != nil {
		return err
	}
	// Height range for the color ramp.
	lo, hi := math.Inf(1), math.Inf(-1)
	for i, z := range r.Z {
		if !r.Covered[i] {
			continue
		}
		lo = math.Min(lo, z)
		hi = math.Max(hi, z)
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	// The light comes from the northwest, elevated 45 degrees.
	lx, ly, lz := -math.Sqrt(1.0/3), -math.Sqrt(1.0/3), math.Sqrt(1.0/3)
	// Vertical exaggeration for legible shading on unit-square terrain.
	const zScale = 2.0
	pix := make([]byte, 3)
	for j := 0; j < r.H; j++ {
		for i := 0; i < r.W; i++ {
			idx := j*r.W + i
			if !r.Covered[idx] {
				pix[0], pix[1], pix[2] = 8, 16, 64
				if _, err := bw.Write(pix); err != nil {
					return err
				}
				continue
			}
			// Central-difference normal from the height buffer.
			zl := r.sample(i-1, j, idx)
			zr := r.sample(i+1, j, idx)
			zu := r.sample(i, j-1, idx)
			zd := r.sample(i, j+1, idx)
			dx := (zr - zl) * zScale * float64(r.W) / 2
			dy := (zd - zu) * zScale * float64(r.H) / 2
			nl := math.Sqrt(dx*dx + dy*dy + 1)
			shade := (-dx*lx - dy*ly + lz) / nl
			if shade < 0 {
				shade = 0
			}
			if shade > 1 {
				shade = 1
			}
			t := (r.Z[idx] - lo) / span
			// Hypsometric ramp: green lowlands to rocky highlands, shaded.
			cr := (90 + 150*t) * (0.35 + 0.65*shade)
			cg := (120 + 90*t) * (0.35 + 0.65*shade)
			cb := (70 + 110*t) * (0.35 + 0.65*shade)
			pix[0], pix[1], pix[2] = clampByte(cr), clampByte(cg), clampByte(cb)
			if _, err := bw.Write(pix); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// sample returns the height at (i, j), falling back to the center pixel
// off the raster or over uncovered ground.
func (r *Raster) sample(i, j, fallback int) float64 {
	if i < 0 || i >= r.W || j < 0 || j >= r.H {
		return r.Z[fallback]
	}
	idx := j*r.W + i
	if !r.Covered[idx] {
		return r.Z[fallback]
	}
	return r.Z[idx]
}

func clampByte(v float64) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}
