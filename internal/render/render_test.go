package render

import (
	"bytes"
	"testing"

	"dmesh/internal/dm"
	"dmesh/internal/geom"
	"dmesh/internal/heightfield"
	"dmesh/internal/mesh"
	"dmesh/internal/simplify"
)

func TestNewRasterPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRaster(0, 10)
}

func TestGridRasterCoversEverything(t *testing.T) {
	g := heightfield.Highland(17, 1)
	r := Grid(g, 32, 32)
	if r.Coverage() != 1 {
		t.Fatalf("grid raster coverage = %g", r.Coverage())
	}
}

func TestSingleTriangleRaster(t *testing.T) {
	verts := map[int64]geom.Point3{
		0: {X: 0, Y: 0, Z: 1},
		1: {X: 1, Y: 0, Z: 1},
		2: {X: 0, Y: 1, Z: 1},
	}
	r := Mesh(verts, []geom.Triangle{{A: 0, B: 1, C: 2}}, 64, 64)
	cov := r.Coverage()
	// The triangle is half the square.
	if cov < 0.45 || cov > 0.55 {
		t.Fatalf("coverage = %g, want ~0.5", cov)
	}
	for i, covd := range r.Covered {
		if covd && r.Z[i] != 1 {
			t.Fatalf("flat triangle interpolated height %g", r.Z[i])
		}
	}
}

func TestBarycentricInterpolation(t *testing.T) {
	verts := map[int64]geom.Point3{
		0: {X: 0, Y: 0, Z: 0},
		1: {X: 1, Y: 0, Z: 1},
		2: {X: 0, Y: 1, Z: 0},
		3: {X: 1, Y: 1, Z: 1},
	}
	tris := []geom.Triangle{{A: 0, B: 1, C: 2}, {A: 1, B: 3, C: 2}}
	r := Mesh(verts, tris, 64, 64)
	// Height must equal x everywhere (the plane z = x).
	for j := 0; j < r.H; j++ {
		for i := 0; i < r.W; i++ {
			idx := j*r.W + i
			if !r.Covered[idx] {
				continue
			}
			x := (float64(i) + 0.5) / float64(r.W)
			if d := r.Z[idx] - x; d > 1e-9 || d < -1e-9 {
				t.Fatalf("pixel (%d,%d): z=%g want %g", i, j, r.Z[idx], x)
			}
		}
	}
}

func TestMeshSkipsMissingVertices(t *testing.T) {
	verts := map[int64]geom.Point3{0: {}, 1: {X: 1}}
	r := Mesh(verts, []geom.Triangle{{A: 0, B: 1, C: 99}}, 16, 16)
	if r.Coverage() != 0 {
		t.Fatal("triangle with missing vertex must be skipped")
	}
}

func TestCompare(t *testing.T) {
	g := heightfield.Crater(33, 2)
	ref := Grid(g, 48, 48)
	same, err := Compare(ref, ref)
	if err != nil {
		t.Fatal(err)
	}
	if same.RMS != 0 || same.Max != 0 || same.Compared != 48*48 {
		t.Fatalf("self comparison: %+v", same)
	}
	other := NewRaster(24, 24)
	if _, err := Compare(ref, other); err == nil {
		t.Fatal("size mismatch must error")
	}
}

// The end-to-end semantic test: coarser LODs must measure larger height
// error against the original terrain, and full resolution must measure
// (near) zero.
func TestLODErrorMonotone(t *testing.T) {
	g := heightfield.Highland(33, 5)
	m := mesh.FromGrid(g)
	seq, err := simplify.Run(m, simplify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dm.FromSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	store, err := dm.BuildStore(ds, dm.StorePools{})
	if err != nil {
		t.Fatal(err)
	}
	ref := Grid(g, 64, 64)
	full := geom.Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2}

	var lods []float64
	for i := range ds.Tree.Nodes {
		if !ds.Tree.Nodes[i].IsLeaf() {
			lods = append(lods, ds.Tree.Nodes[i].ELow)
		}
	}
	// Percentile positions, coarse to fine.
	pick := func(p float64) float64 {
		sorted := append([]float64(nil), lods...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		return sorted[int(p*float64(len(sorted)-1))]
	}

	var prevRMS float64 = -1
	for _, e := range []float64{pick(0.99), pick(0.8), pick(0.4), 0} {
		res, err := store.ViewpointIndependent(full, e)
		if err != nil {
			t.Fatal(err)
		}
		r := Mesh(res.Vertices, res.Triangles, 64, 64)
		q, err := Compare(r, ref)
		if err != nil {
			t.Fatal(err)
		}
		if q.Compared == 0 {
			t.Fatal("nothing compared")
		}
		if prevRMS >= 0 && q.RMS > prevRMS+1e-9 {
			t.Fatalf("finer LOD e=%g has larger RMS error (%g > %g)", e, q.RMS, prevRMS)
		}
		prevRMS = q.RMS
	}
	// Full resolution reproduces the sampled terrain up to the difference
	// between the reference's bilinear cell interpolation and the mesh's
	// linear triangles (~1% of relief on rugged 33x33 terrain).
	if prevRMS > 0.02 {
		t.Fatalf("full-resolution RMS error %g too large", prevRMS)
	}
}

func TestWritePPM(t *testing.T) {
	g := heightfield.Crater(33, 3)
	r := Grid(g, 40, 30)
	var buf bytes.Buffer
	if err := r.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	wantHeader := "P6\n40 30\n255\n"
	if string(out[:len(wantHeader)]) != wantHeader {
		t.Fatalf("bad header: %q", out[:16])
	}
	if len(out) != len(wantHeader)+40*30*3 {
		t.Fatalf("PPM size %d, want %d", len(out), len(wantHeader)+40*30*3)
	}
}

func TestWritePPMUncoveredPixels(t *testing.T) {
	r := NewRaster(4, 4) // nothing covered
	var buf bytes.Buffer
	if err := r.WritePPM(&buf); err != nil {
		t.Fatal(err)
	}
	// All pixels must be the deep-blue background.
	data := buf.Bytes()[len("P6\n4 4\n255\n"):]
	for i := 0; i < len(data); i += 3 {
		if data[i] != 8 || data[i+1] != 16 || data[i+2] != 64 {
			t.Fatalf("uncovered pixel %d rendered as %v", i/3, data[i:i+3])
		}
	}
}

func BenchmarkRasterize(b *testing.B) {
	g := heightfield.Highland(65, 5)
	m := mesh.FromGrid(g)
	verts := make(map[int64]geom.Point3, len(m.Positions))
	for i, p := range m.Positions {
		verts[int64(i)] = p
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mesh(verts, m.Tris, 256, 256)
	}
}
