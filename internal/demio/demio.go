// Package demio reads and writes the plain-text DEM formats terrain data
// actually ships in: the ESRI/Arc-Info ASCII grid (the format USGS DEMs —
// like the paper's Crater Lake dataset — are commonly distributed in) and
// XYZ point lists for irregular survey data. Coordinates are normalized
// into the unit square on read, matching the rest of the pipeline.
package demio

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"dmesh/internal/geom"
	"dmesh/internal/heightfield"
)

// ASCIIGridHeader carries the georeferencing of an ESRI ASCII grid.
type ASCIIGridHeader struct {
	Cols, Rows           int
	XLLCorner, YLLCorner float64
	CellSize             float64
	NoDataValue          float64
	HasNoData            bool
}

// ReadASCIIGrid parses an ESRI ASCII grid ("ncols/nrows/xllcorner/...")
// into a square heightfield grid. Non-square inputs are center-cropped to
// the largest square (the pipeline's grids are square); no-data cells are
// filled with the minimum valid height. The returned header preserves the
// original georeferencing.
func ReadASCIIGrid(r io.Reader) (*heightfield.Grid, ASCIIGridHeader, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var hdr ASCIIGridHeader
	hdr.NoDataValue = math.NaN()

	// Header: keyword/value lines until the first line starting with a
	// number.
	var dataFirst []string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		key := strings.ToLower(fields[0])
		isKeyword := true
		switch key {
		case "ncols", "nrows":
			if len(fields) != 2 {
				return nil, hdr, fmt.Errorf("demio: malformed header line %q", line)
			}
			v, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, hdr, fmt.Errorf("demio: %s: %w", key, err)
			}
			if key == "ncols" {
				hdr.Cols = v
			} else {
				hdr.Rows = v
			}
		case "xllcorner", "yllcorner", "cellsize", "nodata_value":
			if len(fields) != 2 {
				return nil, hdr, fmt.Errorf("demio: malformed header line %q", line)
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, hdr, fmt.Errorf("demio: %s: %w", key, err)
			}
			switch key {
			case "xllcorner":
				hdr.XLLCorner = v
			case "yllcorner":
				hdr.YLLCorner = v
			case "cellsize":
				hdr.CellSize = v
			case "nodata_value":
				hdr.NoDataValue = v
				hdr.HasNoData = true
			}
		default:
			isKeyword = false
		}
		if !isKeyword {
			dataFirst = fields
			break
		}
	}
	if hdr.Cols < 2 || hdr.Rows < 2 {
		return nil, hdr, fmt.Errorf("demio: grid %dx%d too small (need ncols/nrows >= 2)", hdr.Cols, hdr.Rows)
	}

	values := make([]float64, 0, hdr.Cols*hdr.Rows)
	consume := func(fields []string) error {
		for _, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return fmt.Errorf("demio: bad height %q: %w", f, err)
			}
			values = append(values, v)
		}
		return nil
	}
	if err := consume(dataFirst); err != nil {
		return nil, hdr, err
	}
	for sc.Scan() {
		if err := consume(strings.Fields(sc.Text())); err != nil {
			return nil, hdr, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, hdr, fmt.Errorf("demio: %w", err)
	}
	if len(values) != hdr.Cols*hdr.Rows {
		return nil, hdr, fmt.Errorf("demio: got %d heights, want %d", len(values), hdr.Cols*hdr.Rows)
	}

	// No-data handling: replace with the minimum valid height.
	minValid := math.Inf(1)
	valid := 0
	for _, v := range values {
		if hdr.HasNoData && v == hdr.NoDataValue {
			continue
		}
		minValid = math.Min(minValid, v)
		valid++
	}
	if valid == 0 {
		return nil, hdr, errors.New("demio: grid contains only no-data cells")
	}

	// Center-crop to the largest square.
	size := hdr.Cols
	if hdr.Rows < size {
		size = hdr.Rows
	}
	offC := (hdr.Cols - size) / 2
	offR := (hdr.Rows - size) / 2
	g := heightfield.NewGrid(size)
	for j := 0; j < size; j++ {
		for i := 0; i < size; i++ {
			// ASCII grids store rows north to south; flip so j grows with y.
			srcRow := offR + (size - 1 - j)
			v := values[srcRow*hdr.Cols+offC+i]
			if hdr.HasNoData && v == hdr.NoDataValue {
				v = minValid
			}
			g.Set(i, j, v)
		}
	}
	return g, hdr, nil
}

// WriteASCIIGrid writes g as an ESRI ASCII grid with the given
// georeferencing (zero-value header writes a unit-cell grid at the
// origin).
func WriteASCIIGrid(w io.Writer, g *heightfield.Grid, hdr ASCIIGridHeader) error {
	bw := bufio.NewWriter(w)
	cell := hdr.CellSize
	if cell == 0 {
		cell = 1
	}
	fmt.Fprintf(bw, "ncols %d\n", g.Size)
	fmt.Fprintf(bw, "nrows %d\n", g.Size)
	fmt.Fprintf(bw, "xllcorner %g\n", hdr.XLLCorner)
	fmt.Fprintf(bw, "yllcorner %g\n", hdr.YLLCorner)
	fmt.Fprintf(bw, "cellsize %g\n", cell)
	if hdr.HasNoData {
		fmt.Fprintf(bw, "NODATA_value %g\n", hdr.NoDataValue)
	}
	for j := g.Size - 1; j >= 0; j-- { // north to south
		for i := 0; i < g.Size; i++ {
			if i > 0 {
				bw.WriteByte(' ')
			}
			fmt.Fprintf(bw, "%g", g.At(i, j))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadXYZ parses whitespace-separated "x y z" lines (comments start with
// '#'), normalizing x and y into the unit square and returning the
// original bounding rectangle. At least three points are required.
func ReadXYZ(r io.Reader) ([]geom.Point3, geom.Rect, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var pts []geom.Point3
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			return nil, geom.Rect{}, fmt.Errorf("demio: line %d: want x y z, got %q", lineNo, line)
		}
		var v [3]float64
		for i := 0; i < 3; i++ {
			f, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, geom.Rect{}, fmt.Errorf("demio: line %d: %w", lineNo, err)
			}
			v[i] = f
		}
		pts = append(pts, geom.Point3{X: v[0], Y: v[1], Z: v[2]})
	}
	if err := sc.Err(); err != nil {
		return nil, geom.Rect{}, fmt.Errorf("demio: %w", err)
	}
	if len(pts) < 3 {
		return nil, geom.Rect{}, fmt.Errorf("demio: %d points, need at least 3", len(pts))
	}
	bounds := geom.PointRect(pts[0].XY())
	for _, p := range pts[1:] {
		bounds = bounds.ExpandPoint(p.XY())
	}
	w, h := bounds.Width(), bounds.Height()
	if w == 0 || h == 0 {
		return nil, bounds, errors.New("demio: points are collinear along an axis")
	}
	for i := range pts {
		pts[i].X = (pts[i].X - bounds.MinX) / w
		pts[i].Y = (pts[i].Y - bounds.MinY) / h
	}
	return pts, bounds, nil
}

// WriteXYZ writes points as "x y z" lines.
func WriteXYZ(w io.Writer, pts []geom.Point3) error {
	bw := bufio.NewWriter(w)
	for _, p := range pts {
		if _, err := fmt.Fprintf(bw, "%g %g %g\n", p.X, p.Y, p.Z); err != nil {
			return err
		}
	}
	return bw.Flush()
}
