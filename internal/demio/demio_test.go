package demio

import (
	"bytes"
	"strings"
	"testing"

	"dmesh/internal/geom"
	"dmesh/internal/heightfield"
)

const sampleGrid = `ncols 4
nrows 4
xllcorner 100.0
yllcorner 200.0
cellsize 30.0
NODATA_value -9999
1 2 3 4
5 6 7 8
9 10 11 12
13 14 15 16
`

func TestReadASCIIGrid(t *testing.T) {
	g, hdr, err := ReadASCIIGrid(strings.NewReader(sampleGrid))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Cols != 4 || hdr.Rows != 4 || hdr.CellSize != 30 || hdr.XLLCorner != 100 || hdr.YLLCorner != 200 {
		t.Fatalf("header: %+v", hdr)
	}
	if !hdr.HasNoData || hdr.NoDataValue != -9999 {
		t.Fatalf("no-data: %+v", hdr)
	}
	if g.Size != 4 {
		t.Fatalf("size = %d", g.Size)
	}
	// The first data row is the NORTH edge: it must land at j = Size-1.
	if g.At(0, 3) != 1 || g.At(3, 3) != 4 {
		t.Fatalf("north row misplaced: %v %v", g.At(0, 3), g.At(3, 3))
	}
	if g.At(0, 0) != 13 || g.At(3, 0) != 16 {
		t.Fatalf("south row misplaced: %v %v", g.At(0, 0), g.At(3, 0))
	}
}

func TestReadASCIIGridNoData(t *testing.T) {
	src := strings.Replace(sampleGrid, "11", "-9999", 1)
	g, _, err := ReadASCIIGrid(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	// The no-data cell is filled with the minimum valid height (1).
	if got := g.At(2, 1); got != 1 {
		t.Fatalf("no-data cell = %g, want min valid 1", got)
	}
}

func TestReadASCIIGridNonSquareCrops(t *testing.T) {
	src := `ncols 6
nrows 4
xllcorner 0
yllcorner 0
cellsize 1
1 2 3 4 5 6
7 8 9 10 11 12
13 14 15 16 17 18
19 20 21 22 23 24
`
	g, _, err := ReadASCIIGrid(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if g.Size != 4 {
		t.Fatalf("cropped size = %d, want 4", g.Size)
	}
	// Center crop drops one column on each side: the north row starts at 2.
	if g.At(0, 3) != 2 || g.At(3, 3) != 5 {
		t.Fatalf("crop misaligned: %v..%v", g.At(0, 3), g.At(3, 3))
	}
}

func TestReadASCIIGridErrors(t *testing.T) {
	cases := []string{
		"ncols 1\nnrows 4\nxllcorner 0\nyllcorner 0\ncellsize 1\n1 2 3 4\n",
		"ncols 2\nnrows 2\nxllcorner 0\nyllcorner 0\ncellsize 1\n1 2 3\n", // short data
		"ncols 2\nnrows 2\nxllcorner 0\nyllcorner 0\ncellsize 1\n1 2 3 oops\n",
		"ncols 2\nnrows 2\nxllcorner 0\nyllcorner 0\ncellsize 1\nNODATA_value -1\n-1 -1 -1 -1\n",
	}
	for i, src := range cases {
		if _, _, err := ReadASCIIGrid(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestASCIIGridRoundTrip(t *testing.T) {
	g := heightfield.Crater(17, 3)
	hdr := ASCIIGridHeader{XLLCorner: 5, YLLCorner: 6, CellSize: 10, NoDataValue: -1, HasNoData: true}
	var buf bytes.Buffer
	if err := WriteASCIIGrid(&buf, g, hdr); err != nil {
		t.Fatal(err)
	}
	g2, hdr2, err := ReadASCIIGrid(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr2.CellSize != 10 || hdr2.XLLCorner != 5 {
		t.Fatalf("header round trip: %+v", hdr2)
	}
	if g2.Size != g.Size {
		t.Fatalf("size round trip: %d vs %d", g2.Size, g.Size)
	}
	for j := 0; j < g.Size; j++ {
		for i := 0; i < g.Size; i++ {
			a, b := g.At(i, j), g2.At(i, j)
			if d := a - b; d > 1e-9 || d < -1e-9 {
				t.Fatalf("cell (%d,%d): %g vs %g", i, j, a, b)
			}
		}
	}
}

func TestReadXYZ(t *testing.T) {
	src := `# survey points
100 200 5
300 200 7

100 400 9
300 400 11
`
	pts, bounds, err := ReadXYZ(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	if bounds != (geom.Rect{MinX: 100, MinY: 200, MaxX: 300, MaxY: 400}) {
		t.Fatalf("bounds = %v", bounds)
	}
	// Normalized into the unit square with heights untouched.
	if pts[0] != (geom.Point3{X: 0, Y: 0, Z: 5}) {
		t.Fatalf("first point = %v", pts[0])
	}
	if pts[3] != (geom.Point3{X: 1, Y: 1, Z: 11}) {
		t.Fatalf("last point = %v", pts[3])
	}
}

func TestReadXYZErrors(t *testing.T) {
	cases := []string{
		"1 2 3\n4 5 6\n",        // too few
		"1 2\n3 4 5\n6 7 8\n",   // short line
		"a b c\n1 2 3\n4 5 6\n", // parse error
		"1 5 0\n2 5 1\n3 5 2\n", // collinear along y
	}
	for i, src := range cases {
		if _, _, err := ReadXYZ(strings.NewReader(src)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestXYZRoundTrip(t *testing.T) {
	g := heightfield.Highland(9, 2)
	pts := g.SampleIrregular(50, 4)
	var buf bytes.Buffer
	if err := WriteXYZ(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadXYZ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("round trip count %d vs %d", len(got), len(pts))
	}
	// Input was already unit-square so normalization is identity.
	for i := range pts {
		if d := pts[i].Dist(got[i]); d > 1e-9 {
			t.Fatalf("point %d moved by %g", i, d)
		}
	}
}
