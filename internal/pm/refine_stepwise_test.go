package pm

import (
	"fmt"
	"reflect"
	"testing"
)

// TestExactStepwiseReplay splits in exact reverse collapse order with
// recorded partitions, checking full adjacency equality after EVERY step.
func TestExactStepwiseReplay(t *testing.T) {
	tree, seq := buildTreeNamed(t, 9, "highland")
	r := NewRefiner(tree)
	r.UseExactPartitions(seq)
	// Split in exact reverse collapse order, checking after each step.
	for k := len(seq.Collapses) - 1; k >= 0; k-- {
		m := seq.Collapses[k].New
		if !r.Live(m) {
			t.Fatalf("node %d not live before its split", m)
		}
		if err := r.Split(m); err != nil {
			t.Fatal(err)
		}
		want, err := seq.AdjacencyAtStep(k)
		if err != nil {
			t.Fatal(err)
		}
		got := r.Adjacency()
		if len(got) != len(want) {
			t.Fatalf("step %d: %d live, want %d", k, len(got), len(want))
		}
		for v, ns := range want {
			if !reflect.DeepEqual(got[v], ns) {
				n := &tree.Nodes[m]
				fmt.Printf("first divergence after splitting %d (wings %d,%d children %d,%d)\n",
					m, n.Wing1, n.Wing2, n.Child1, n.Child2)
				fmt.Printf("  point %d: got %v want %v\n", v, got[v], ns)
				prev, _ := seq.AdjacencyAtStep(k + 1)
				fmt.Printf("  m's neighbors before split: %v\n", prev[m])
				t.Fatalf("diverged at step %d", k)
			}
		}
	}
}
