package pm

import (
	"fmt"
	"sort"

	"dmesh/internal/geom"
	"dmesh/internal/simplify"
)

// Refiner replays the collapse hierarchy backward with wing-based vertex
// splits — the literal reconstruction process of Section 2 of the paper:
// "Knowing that v4 and v7 are the wing points of v9 makes it possible to
// reverse the collapse". Starting from a base approximation, Split(m)
// replaces point m with its children, connects them to each other and to
// the wings, and redistributes m's other neighbors between the children.
//
// The redistribution is topological: m's neighbors form a fan (a path for
// boundary points, a cycle for interior ones) in the link graph of the
// current mesh; the wings cut that fan into the two children's sub-fans.
// Only the binary choice of which sub-fan belongs to which child is
// geometric (total proximity). This is how a Progressive Mesh recovers
// connectivity without connection lists; Direct Mesh exists to avoid
// having to run this traversal against the database.
type Refiner struct {
	t   *Tree
	adj map[int64]map[int64]struct{}
	// exact, when set, holds the recorded child1-side neighbor partition
	// per splitting node (Hoppe-style vsplit annotations); splits are then
	// exact instead of geometric.
	exact map[int64]map[int64]bool
}

// NewRefiner starts at the coarsest approximation: the roots, with no
// edges between them. The redistribution rule is unreliable at the
// degenerate top of the hierarchy — Hoppe's original PM ships a base mesh
// M0 for this reason — so callers wanting faithful meshes should seed a
// base approximation with NewRefinerFromBase.
func NewRefiner(t *Tree) *Refiner {
	r := &Refiner{t: t, adj: make(map[int64]map[int64]struct{}, len(t.Roots))}
	for _, root := range t.Roots {
		r.adj[root] = make(map[int64]struct{})
	}
	return r
}

// NewRefinerFromBase starts from a known base approximation: the live
// points and their adjacency (for example a uniform cut produced by a
// Direct Mesh query, or Hoppe's stored base mesh M0). Further Split calls
// refine below the base.
func NewRefinerFromBase(t *Tree, adjacency map[int64][]int64) *Refiner {
	r := &Refiner{t: t, adj: make(map[int64]map[int64]struct{}, len(adjacency))}
	for v, ns := range adjacency {
		set := make(map[int64]struct{}, len(ns))
		for _, u := range ns {
			set[u] = struct{}{}
		}
		r.adj[v] = set
	}
	return r
}

// UseExactPartitions equips the refiner with the recorded collapse-time
// neighbor partitions (simplify.Collapse.Child1Adj) — the information
// Hoppe's vsplit records carry — making every Split exact on replayed
// states.
func (r *Refiner) UseExactPartitions(seq *simplify.Sequence) {
	r.exact = make(map[int64]map[int64]bool, len(seq.Collapses))
	for _, c := range seq.Collapses {
		set := make(map[int64]bool, len(c.Child1Adj))
		for _, id := range c.Child1Adj {
			set[id] = true
		}
		r.exact[c.New] = set
	}
}

// Live reports whether point id is in the current approximation.
func (r *Refiner) Live(id int64) bool {
	_, ok := r.adj[id]
	return ok
}

// Adjacency returns the current approximation's sorted neighbor lists.
func (r *Refiner) Adjacency() map[int64][]int64 {
	out := make(map[int64][]int64, len(r.adj))
	for v, set := range r.adj {
		lst := make([]int64, 0, len(set))
		for u := range set {
			lst = append(lst, u)
		}
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		out[v] = lst
	}
	return out
}

// Split reverses the collapse that created m.
func (r *Refiner) Split(m int64) error {
	n := &r.t.Nodes[m]
	if n.IsLeaf() {
		return fmt.Errorf("pm: cannot split leaf %d", m)
	}
	nbrs, ok := r.adj[m]
	if !ok {
		return fmt.Errorf("pm: split of %d, which is not in the approximation", m)
	}
	c1, c2 := n.Child1, n.Child2

	link := func(a, b int64) {
		r.adj[a][b] = struct{}{}
		r.adj[b][a] = struct{}{}
	}
	r.adj[c1] = make(map[int64]struct{}, len(nbrs)/2+3)
	r.adj[c2] = make(map[int64]struct{}, len(nbrs)/2+3)

	assign := func(nb int64, toC1 bool) {
		delete(r.adj[nb], m)
		switch nb {
		case n.Wing1, n.Wing2:
			link(c1, nb)
			link(c2, nb)
		default:
			if toC1 {
				link(c1, nb)
			} else {
				link(c2, nb)
			}
		}
	}

	p1 := r.t.Nodes[c1].Pos.XY()
	p2 := r.t.Nodes[c2].Pos.XY()

	// Exact mode: the recorded partition decides directly.
	if c1Side, ok := r.exact[m]; ok {
		for nb := range nbrs {
			assign(nb, c1Side[nb])
		}
		delete(r.adj, m)
		link(c1, c2)
		return nil
	}

	arcA, arcB, ok := r.fanArcs(n, nbrs)
	if !ok {
		// Degenerate link (or no wings): assign each neighbor by
		// proximity. Typical only near the top of the hierarchy.
		for nb := range nbrs {
			q := r.t.Nodes[nb].Pos.XY()
			assign(nb, q.Dist(p1) <= q.Dist(p2))
		}
		delete(r.adj, m)
		link(c1, c2)
		return nil
	}

	// The only geometric decision left: which sub-fan belongs to which
	// child. Total proximity of each pairing decides.
	sum := func(ids []int64, p geom.Point2) float64 {
		var s float64
		for _, id := range ids {
			s += r.t.Nodes[id].Pos.XY().Dist(p)
		}
		return s
	}
	aToC1 := sum(arcA, p1)+sum(arcB, p2) <= sum(arcA, p2)+sum(arcB, p1)
	for _, nb := range arcA {
		assign(nb, aToC1)
	}
	for _, nb := range arcB {
		assign(nb, !aToC1)
	}
	if n.Wing1 != None {
		assign(n.Wing1, true)
	}
	if n.Wing2 != None {
		assign(n.Wing2, true)
	}
	delete(r.adj, m)
	link(c1, c2)
	return nil
}

// fanArcs orders m's neighbors topologically (walking the link graph: the
// current mesh edges between m's neighbors) and cuts the fan at the wings
// into the two children's arcs (wings excluded). ok is false when the
// link is not a simple path or cycle, or the wings cannot cut it.
func (r *Refiner) fanArcs(n *Node, nbrs map[int64]struct{}) (arcA, arcB []int64, ok bool) {
	if n.Wing1 == None && n.Wing2 == None {
		return nil, nil, false
	}
	// Link degrees within the neighbor set.
	deg := make(map[int64]int, len(nbrs))
	for u := range nbrs {
		for v := range r.adj[u] {
			if _, in := nbrs[v]; in {
				deg[u]++
			}
		}
	}
	var endpoints []int64
	for u := range nbrs {
		switch {
		case deg[u] > 2:
			return nil, nil, false // non-manifold link
		case deg[u] <= 1:
			endpoints = append(endpoints, u)
		}
	}
	var order []int64
	switch len(endpoints) {
	case 0: // cycle: start at a wing for a deterministic walk
		start := n.Wing1
		if start == None {
			start = n.Wing2
		}
		if _, in := nbrs[start]; !in {
			return nil, nil, false
		}
		order = r.walkLink(nbrs, start)
	case 2: // path: start at the smaller endpoint
		s := endpoints[0]
		if endpoints[1] < s {
			s = endpoints[1]
		}
		order = r.walkLink(nbrs, s)
	default:
		return nil, nil, false // disconnected link
	}
	if len(order) != len(nbrs) {
		return nil, nil, false
	}

	w1 := indexOf64(order, n.Wing1)
	w2 := indexOf64(order, n.Wing2)
	switch {
	case w1 >= 0 && w2 >= 0:
		if w1 > w2 {
			w1, w2 = w2, w1
		}
		// Between the wings -> one child; the rest -> the other. For a
		// cycle this is the standard two-arc cut; for a path (boundary
		// point with an interior split edge) the middle run is the
		// interior child's fan and the outer runs the boundary child's.
		for i, id := range order {
			if i == w1 || i == w2 {
				continue
			}
			if i > w1 && i < w2 {
				arcA = append(arcA, id)
			} else {
				arcB = append(arcB, id)
			}
		}
		return arcA, arcB, true
	case (w1 >= 0) != (w2 >= 0):
		if len(endpoints) != 2 {
			return nil, nil, false // one wing cannot cut a cycle
		}
		w := w1
		if w < 0 {
			w = w2
		}
		for i, id := range order {
			if i == w {
				continue
			}
			if i < w {
				arcA = append(arcA, id)
			} else {
				arcB = append(arcB, id)
			}
		}
		return arcA, arcB, true
	default:
		return nil, nil, false
	}
}

// walkLink traverses the link graph from start, visiting each neighbor of
// the splitting point once.
func (r *Refiner) walkLink(nbrs map[int64]struct{}, start int64) []int64 {
	order := []int64{start}
	visited := map[int64]bool{start: true}
	cur := start
	for {
		next := int64(-1)
		for v := range r.adj[cur] {
			if _, in := nbrs[v]; in && !visited[v] {
				if next == -1 || v < next {
					next = v
				}
			}
		}
		if next == -1 {
			return order
		}
		visited[next] = true
		order = append(order, next)
		cur = next
	}
}

func indexOf64(order []int64, id int64) int {
	if id == None {
		return -1
	}
	for i, v := range order {
		if v == id {
			return i
		}
	}
	return -1
}

// RefineToLOD splits every live point whose LOD exceeds e, in descending
// LOD order (monotone errors make node-ID order the split schedule).
func (r *Refiner) RefineToLOD(e float64) error {
	for id := int64(len(r.t.Nodes)) - 1; id >= 0; id-- {
		if !r.Live(id) {
			continue
		}
		n := &r.t.Nodes[id]
		if n.IsLeaf() || n.ELow <= e {
			continue
		}
		if err := r.Split(id); err != nil {
			return err
		}
	}
	return nil
}
