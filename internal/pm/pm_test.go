package pm

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"dmesh/internal/geom"
	"dmesh/internal/heightfield"
	"dmesh/internal/mesh"
	"dmesh/internal/simplify"
)

func buildTree(t testing.TB, size int) (*Tree, *simplify.Sequence) {
	t.Helper()
	g := heightfield.Highland(size, 5)
	m := mesh.FromGrid(g)
	seq, err := simplify.Run(m, simplify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := FromSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	return tree, seq
}

// fullRect generously covers the whole domain, including generated points
// that drift slightly outside the unit square.
func fullRect() geom.Rect { return geom.Rect{MinX: -1, MinY: -1, MaxX: 2, MaxY: 2} }

// eAtPercentile returns the p-th percentile (0..1) of internal-node ELow
// values. Raw QEM errors are extremely skewed, so percentiles — not
// fractions of the maximum — give LOD values where the mesh has
// interesting density.
func eAtPercentile(tree *Tree, p float64) float64 {
	var es []float64
	for i := range tree.Nodes {
		if !tree.Nodes[i].IsLeaf() {
			es = append(es, tree.Nodes[i].ELow)
		}
	}
	sort.Float64s(es)
	idx := int(p * float64(len(es)-1))
	return es[idx]
}

func TestFromSequenceInvariants(t *testing.T) {
	tree, seq := buildTree(t, 9)
	if tree.Len() != seq.NumVertices() {
		t.Fatalf("Len = %d, want %d", tree.Len(), seq.NumVertices())
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tree.MaxE <= 0 {
		t.Fatalf("MaxE = %g", tree.MaxE)
	}
	// Leaves have ELow 0.
	for i := 0; i < seq.BaseVertices; i++ {
		if tree.Nodes[i].ELow != 0 {
			t.Fatalf("leaf %d has ELow %g", i, tree.Nodes[i].ELow)
		}
	}
}

func TestCutProperty(t *testing.T) {
	tree, _ := buildTree(t, 8)
	for _, frac := range []float64{0, 0.01, 0.1, 0.3, 0.5, 0.9, 0.999} {
		if err := tree.ValidateCut(frac * tree.MaxE); err != nil {
			t.Fatal(err)
		}
	}
}

func TestFrontierFullResolution(t *testing.T) {
	tree, seq := buildTree(t, 8)
	frontier := tree.FrontierUniform(fullRect(), 0)
	// At e = 0 the frontier is exactly the original points (the paper's
	// condition: all leaf nodes form the highest-LOD approximation).
	if len(frontier) != seq.BaseVertices {
		t.Fatalf("frontier at e=0 has %d vertices, want %d", len(frontier), seq.BaseVertices)
	}
	for _, id := range frontier {
		if !tree.Nodes[id].IsLeaf() {
			t.Fatalf("non-leaf %d in full-resolution frontier", id)
		}
	}
}

func TestFrontierCoarsest(t *testing.T) {
	tree, _ := buildTree(t, 8)
	frontier := tree.FrontierUniform(fullRect(), tree.MaxE)
	if len(frontier) != len(tree.Roots) {
		t.Fatalf("frontier at MaxE has %d vertices, want %d roots", len(frontier), len(tree.Roots))
	}
}

func TestFrontierMatchesIntervals(t *testing.T) {
	// Over the full domain, selective refinement must return exactly the
	// nodes whose LOD interval contains e — the equivalence that Direct
	// Mesh is built on.
	tree, _ := buildTree(t, 9)
	for _, pct := range []float64{0.2, 0.5, 0.8, 0.95} {
		e := eAtPercentile(tree, pct)
		got := append([]int64(nil), tree.FrontierUniform(fullRect(), e)...)
		var want []int64
		for i := range tree.Nodes {
			if tree.Nodes[i].Interval().Contains(e) {
				want = append(want, int64(i))
			}
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		if len(got) != len(want) {
			t.Fatalf("e=%g: frontier %d nodes, interval cut %d", e, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("e=%g: frontier differs from interval cut at %d", e, i)
			}
		}
	}
}

func TestFrontierROISubset(t *testing.T) {
	tree, _ := buildTree(t, 9)
	roi := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.6, MaxY: 0.6}
	e := eAtPercentile(tree, 0.5)
	frontier := tree.FrontierUniform(roi, e)
	if len(frontier) == 0 {
		t.Fatal("empty frontier for interior ROI")
	}
	full := tree.FrontierUniform(fullRect(), e)
	fullSet := make(map[int64]bool, len(full))
	for _, id := range full {
		fullSet[id] = true
	}
	for _, id := range frontier {
		n := tree.Nodes[id]
		if !roi.ContainsPoint(n.Pos.XY()) {
			t.Fatalf("frontier vertex %d outside ROI", id)
		}
		// Inside the ROI, refinement depth matches the full query: every
		// ROI frontier vertex is also a full-domain frontier vertex.
		if !fullSet[id] {
			t.Fatalf("ROI frontier vertex %d not in full frontier", id)
		}
	}
}

func TestExpandedAreAncestorsOfFrontier(t *testing.T) {
	tree, _ := buildTree(t, 8)
	roi := geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.7, MaxY: 0.7}
	e := eAtPercentile(tree, 0.5)
	expanded := tree.ExpandedUniform(roi, e)
	for _, id := range expanded {
		n := tree.Nodes[id]
		if n.IsLeaf() {
			t.Fatalf("leaf %d in expanded set", id)
		}
		if n.ELow <= e {
			t.Fatalf("node %d with ELow %g <= e %g was expanded", id, n.ELow, e)
		}
	}
}

func TestFrontierPlane(t *testing.T) {
	tree, _ := buildTree(t, 9)
	qp := geom.QueryPlane{
		R:    geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.9},
		EMin: eAtPercentile(tree, 0.2), EMax: eAtPercentile(tree, 0.9), Axis: 1,
	}
	frontier := tree.FrontierPlane(qp)
	if len(frontier) == 0 {
		t.Fatal("empty viewpoint-dependent frontier")
	}
	// The near (low-y) half must be at least as refined as the far half:
	// compare average ELow.
	var nearSum, farSum float64
	var nearN, farN int
	for _, id := range frontier {
		n := tree.Nodes[id]
		if n.Pos.Y < 0.5 {
			nearSum += n.ELow
			nearN++
		} else {
			farSum += n.ELow
			farN++
		}
	}
	if nearN == 0 || farN == 0 {
		t.Skip("degenerate split")
	}
	if nearSum/float64(nearN) > farSum/float64(farN) {
		t.Fatalf("near half coarser (%g) than far half (%g)", nearSum/float64(nearN), farSum/float64(farN))
	}
}

func TestRecordRoundTrip(t *testing.T) {
	tree, _ := buildTree(t, 6)
	buf := make([]byte, RecordSize)
	for i := range tree.Nodes {
		n := &tree.Nodes[i]
		EncodeRecord(n, buf)
		got := DecodeRecord(buf)
		if got != *n {
			t.Fatalf("round trip mismatch for node %d:\n got %+v\nwant %+v", i, got, *n)
		}
	}
}

func TestRecordRoundTripInfinity(t *testing.T) {
	n := Node{ID: 1, EHigh: math.Inf(1), Parent: None, Child1: None, Child2: None, Wing1: None, Wing2: None}
	buf := make([]byte, RecordSize)
	EncodeRecord(&n, buf)
	got := DecodeRecord(buf)
	if !math.IsInf(got.EHigh, 1) {
		t.Fatalf("EHigh round trip lost infinity: %g", got.EHigh)
	}
}

func TestStoreUniformMatchesInMemory(t *testing.T) {
	tree, _ := buildTree(t, 9)
	store, err := BuildStore(tree, 4096, 1024)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		r geom.Rect
		e float64
	}{
		{fullRect(), eAtPercentile(tree, 0.7)},
		{fullRect(), eAtPercentile(tree, 0.2)},
		{geom.Rect{MinX: 0.2, MinY: 0.3, MaxX: 0.7, MaxY: 0.8}, eAtPercentile(tree, 0.5)},
		{geom.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.6, MaxY: 0.6}, eAtPercentile(tree, 0.1)},
	}
	for _, c := range cases {
		want := tree.FrontierUniform(c.r, c.e)
		res, err := store.QueryUniform(c.r, c.e)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Frontier) != len(want) {
			t.Fatalf("r=%v e=%g: store frontier %d, in-memory %d", c.r, c.e, len(res.Frontier), len(want))
		}
		for _, id := range want {
			fv, ok := res.Frontier[id]
			if !ok {
				t.Fatalf("store frontier missing vertex %d", id)
			}
			if fv.Pos != tree.Nodes[id].Pos {
				t.Fatalf("vertex %d position mismatch", id)
			}
		}
	}
}

func TestStorePlaneMatchesInMemory(t *testing.T) {
	tree, _ := buildTree(t, 9)
	store, err := BuildStore(tree, 4096, 1024)
	if err != nil {
		t.Fatal(err)
	}
	qp := geom.QueryPlane{
		R:    geom.Rect{MinX: 0.1, MinY: 0.2, MaxX: 0.8, MaxY: 0.9},
		EMin: eAtPercentile(tree, 0.3), EMax: eAtPercentile(tree, 0.9), Axis: 1,
	}
	want := tree.FrontierPlane(qp)
	res, err := store.QueryPlane(qp)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Frontier) != len(want) {
		t.Fatalf("store frontier %d, in-memory %d", len(res.Frontier), len(want))
	}
	for _, id := range want {
		if _, ok := res.Frontier[id]; !ok {
			t.Fatalf("store frontier missing vertex %d", id)
		}
	}
}

func TestStoreCountsDiskAccesses(t *testing.T) {
	tree, _ := buildTree(t, 9)
	store, err := BuildStore(tree, 4096, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.DropCaches(); err != nil {
		t.Fatal(err)
	}
	store.ResetStats()
	roi := geom.Rect{MinX: 0.3, MinY: 0.3, MaxX: 0.7, MaxY: 0.7}
	res, err := store.QueryUniform(roi, eAtPercentile(tree, 0.5))
	if err != nil {
		t.Fatal(err)
	}
	small := store.DiskAccesses()
	if small == 0 {
		t.Fatal("cold query reported zero disk accesses")
	}
	if res.FetchedNodes == 0 {
		t.Fatal("query fetched nothing")
	}

	// A finer query over a larger region must cost more.
	if err := store.DropCaches(); err != nil {
		t.Fatal(err)
	}
	store.ResetStats()
	if _, err := store.QueryUniform(fullRect(), eAtPercentile(tree, 0.05)); err != nil {
		t.Fatal(err)
	}
	large := store.DiskAccesses()
	if large <= small {
		t.Fatalf("larger+finer query (%d DA) should cost more than smaller query (%d DA)", large, small)
	}
}

func TestStoreChasesOutOfROIAncestors(t *testing.T) {
	// With a small ROI, most ancestors sit outside it and must be chased
	// by ID — the inefficiency the paper attributes to PM.
	tree, _ := buildTree(t, 9)
	store, err := BuildStore(tree, 4096, 1024)
	if err != nil {
		t.Fatal(err)
	}
	roi := geom.Rect{MinX: 0.05, MinY: 0.05, MaxX: 0.2, MaxY: 0.2}
	res, err := store.QueryUniform(roi, eAtPercentile(tree, 0.3))
	if err != nil {
		t.Fatal(err)
	}
	if res.ChasedNodes == 0 {
		t.Fatal("expected by-ID chasing for a corner ROI")
	}
}

// Property: for arbitrary LOD values (including negatives and values past
// the maximum), the interval cut is a partition of the leaves: every
// leaf-to-root path crosses it exactly once for e >= 0, and zero times
// only when e < 0.
func TestCutPropertyQuick(t *testing.T) {
	tree, _ := buildTree(t, 8)
	f := func(raw float64) bool {
		e := math.Abs(raw)
		if math.IsNaN(e) || math.IsInf(e, 0) {
			return true
		}
		// Scale into an interesting range around the distribution.
		e = math.Mod(e, tree.MaxE*1.5)
		return tree.ValidateCut(e) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
