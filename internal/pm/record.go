package pm

import (
	"encoding/binary"
	"math"

	"dmesh/internal/geom"
)

// RecordSize is the fixed on-disk size of a PM node record: the paper's
// (ID, x, y, z, e, parent, child1, child2, wing1, wing2) tuple plus the
// normalized LOD interval and footprint MBR. Child geometry is NOT
// embedded: materializing a frontier point requires fetching its own
// record, the per-node retrieval the paper charges to MTM traversal.
const RecordSize = 8 + // ID
	24 + // Pos
	8 + 8 + 8 + // ERaw, ELow, EHigh
	8*5 + // Parent, Child1, Child2, Wing1, Wing2
	32 // MBR

// EncodeRecord serializes n into buf (len >= RecordSize).
func EncodeRecord(n *Node, buf []byte) {
	le := binary.LittleEndian
	off := 0
	putI := func(v int64) { le.PutUint64(buf[off:], uint64(v)); off += 8 }
	putF := func(v float64) { le.PutUint64(buf[off:], math.Float64bits(v)); off += 8 }
	putI(n.ID)
	putF(n.Pos.X)
	putF(n.Pos.Y)
	putF(n.Pos.Z)
	putF(n.ERaw)
	putF(n.ELow)
	putF(n.EHigh)
	putI(n.Parent)
	putI(n.Child1)
	putI(n.Child2)
	putI(n.Wing1)
	putI(n.Wing2)
	putF(n.MBR.MinX)
	putF(n.MBR.MinY)
	putF(n.MBR.MaxX)
	putF(n.MBR.MaxY)
}

// DecodeRecord deserializes a node from buf.
func DecodeRecord(buf []byte) Node {
	le := binary.LittleEndian
	off := 0
	getI := func() int64 { v := int64(le.Uint64(buf[off:])); off += 8; return v }
	getF := func() float64 { v := math.Float64frombits(le.Uint64(buf[off:])); off += 8; return v }
	var n Node
	n.ID = getI()
	n.Pos = geom.Point3{X: getF(), Y: getF(), Z: getF()}
	n.ERaw = getF()
	n.ELow = getF()
	n.EHigh = getF()
	n.Parent = getI()
	n.Child1 = getI()
	n.Child2 = getI()
	n.Wing1 = getI()
	n.Wing2 = getI()
	n.MBR = geom.Rect{MinX: getF(), MinY: getF(), MaxX: getF(), MaxY: getF()}
	return n
}
