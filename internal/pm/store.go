package pm

import (
	"fmt"

	"dmesh/internal/geom"
	"dmesh/internal/quadtree"
	"dmesh/internal/storage/btree"
	"dmesh/internal/storage/pager"
)

// Store is the disk-resident PM baseline of the paper's evaluation: every
// PM node record is clustered in an LOD-quadtree at the point
// (x, y, ELow), and a B+-tree maps node IDs to their quadtree locations
// for the by-ID fetches selective refinement needs when a required node
// was not caught by the range query (ancestors whose own point falls
// outside the ROI, and descendants whose subtree re-enters it).
type Store struct {
	qt    *quadtree.Tree
	idx   *btree.Tree
	qtP   *pager.Pager
	idxP  *pager.Pager
	roots []int64
	maxE  float64
}

// BuildStore lays the tree's records out on two fresh in-memory pagers
// (quadtree data + B+-tree ID index). Pool sizes are in pages.
func BuildStore(t *Tree, dataPool, indexPool int) (*Store, error) {
	qtP := pager.New(pager.NewMemBackend(), dataPool)
	idxP := pager.New(pager.NewMemBackend(), indexPool)

	items := make([]quadtree.Item, len(t.Nodes))
	buf := make([]byte, RecordSize)
	for i := range t.Nodes {
		n := &t.Nodes[i]
		EncodeRecord(n, buf)
		items[i] = quadtree.Item{
			X: n.Pos.X, Y: n.Pos.Y, E: n.ELow,
			Payload: append([]byte(nil), buf...),
		}
	}
	qt, refs, err := quadtree.Build(qtP, RecordSize, items)
	if err != nil {
		return nil, fmt.Errorf("pm: build quadtree: %w", err)
	}
	idx, err := btree.Create(idxP)
	if err != nil {
		return nil, fmt.Errorf("pm: build index: %w", err)
	}
	for i, r := range refs {
		if err := idx.Put(int64(i), int64(r)); err != nil {
			return nil, fmt.Errorf("pm: index put: %w", err)
		}
	}
	return &Store{
		qt: qt, idx: idx, qtP: qtP, idxP: idxP,
		roots: append([]int64(nil), t.Roots...),
		maxE:  t.MaxE,
	}, nil
}

// MaxE returns the dataset's maximum LOD value.
func (s *Store) MaxE() float64 { return s.maxE }

// Roots returns the root node IDs.
func (s *Store) Roots() []int64 { return s.roots }

// DropCaches flushes and empties every buffer pool, reproducing the
// paper's cold-cache methodology.
func (s *Store) DropCaches() error {
	if err := s.qtP.DropCache(); err != nil {
		return err
	}
	return s.idxP.DropCache()
}

// ResetStats zeroes the disk-access counters.
func (s *Store) ResetStats() {
	s.qtP.ResetStats()
	s.idxP.ResetStats()
}

// DiskAccesses returns the total pages read since the last ResetStats —
// the paper's cost metric.
func (s *Store) DiskAccesses() uint64 {
	return s.qtP.Stats().Reads + s.idxP.Stats().Reads
}

// fetchByID reads one node record through the B+-tree: an index probe plus
// a data-page access, the "sequential I/O operations, one for each node"
// the paper attributes to tree traversal.
func (s *Store) fetchByID(id int64) (Node, error) {
	ref, err := s.idx.Get(id)
	if err != nil {
		return Node{}, fmt.Errorf("pm: fetch node %d: %w", id, err)
	}
	_, _, _, payload, err := s.qt.Fetch(quadtree.Ref(ref))
	if err != nil {
		return Node{}, fmt.Errorf("pm: fetch node %d: %w", id, err)
	}
	return DecodeRecord(payload), nil
}

// QueryResult carries the outcome of a PM query: the refined subtree's
// internal nodes (fetched), the frontier vertices (the approximation), and
// how each group of fetches was paid for.
type QueryResult struct {
	// Frontier holds the mesh vertices: ID -> node data. Every frontier
	// node's own record is fetched (by ID when the range query missed
	// it).
	Frontier map[int64]FrontierVertex
	// FetchedNodes is the number of node records retrieved.
	FetchedNodes int
	// ChasedNodes counts the records that the range query missed and had
	// to be fetched individually by ID.
	ChasedNodes int
}

// FrontierVertex is one output vertex of a PM query.
type FrontierVertex struct {
	ID  int64
	Pos geom.Point3
}

// QueryUniform answers the viewpoint-independent query Q(M, r, e) against
// the disk store, reproducing the baseline method of Sections 3 and 6:
//
//  1. One 3D range query on the LOD-quadtree with the query cube
//     r x [e, maxE] (the paper's Figure 3: under the LOD-quadtree "the
//     query needs to be converted into a 3D range query using a query
//     cube defined by the r, e and the maximum LOD of the dataset").
//     This fetches the refined subtree's internal nodes whose points lie
//     inside r.
//  2. Individual by-ID fetches for the internal nodes the cube missed:
//     ancestors positioned outside r and nodes whose own point is outside
//     r but whose footprint re-enters it. This level-by-level chasing is
//     the structural inefficiency the paper attributes to MTM traversal.
func (s *Store) QueryUniform(r geom.Rect, e float64) (*QueryResult, error) {
	fetched := make(map[int64]Node)
	// Step 1: the cube query.
	cube := geom.BoxFromRect(r, e, s.maxE)
	err := s.qt.Query(cube, func(x, y, el float64, payload []byte) bool {
		n := DecodeRecord(payload)
		fetched[n.ID] = n
		return true
	})
	if err != nil {
		return nil, err
	}
	res := &QueryResult{Frontier: make(map[int64]FrontierVertex)}
	res.FetchedNodes = len(fetched)

	// The cube catches nodes with ELow >= e; among them only those with
	// footprints meeting r are part of M'. Records fetched but not needed
	// still cost their I/O (that is the point of the comparison); they are
	// simply not expanded.
	needs := func(n *Node) bool {
		return !n.IsLeaf() && n.ELow > e && n.MBR.Intersects(r)
	}

	// Step 2: complete M' top-down, chasing missing nodes by ID.
	var ensure func(id int64) (Node, error)
	ensure = func(id int64) (Node, error) {
		if n, ok := fetched[id]; ok {
			return n, nil
		}
		n, err := s.fetchByID(id)
		if err != nil {
			return Node{}, err
		}
		fetched[id] = n
		res.FetchedNodes++
		res.ChasedNodes++
		return n, nil
	}
	var expand func(id int64) error
	expand = func(id int64) error {
		n, err := ensure(id)
		if err != nil {
			return err
		}
		if !needs(&n) {
			// Frontier node: it is part of the approximation.
			if r.ContainsPoint(n.Pos.XY()) {
				res.Frontier[n.ID] = FrontierVertex{ID: n.ID, Pos: n.Pos}
			}
			return nil
		}
		if err := expand(n.Child1); err != nil {
			return err
		}
		return expand(n.Child2)
	}
	for _, root := range s.roots {
		if err := expand(root); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// QueryPlane answers a viewpoint-dependent query against the disk store.
// PM has no way to bound the cube from above by the query plane: selective
// refinement must start from the root, so the cube spans [qp.EMin, maxE]
// over the whole ROI (Section 5.2: "the query cube used here is smaller
// [for DM] as the top plane is no longer the maximum LOD of the data set,
// i.e., that of the root node").
func (s *Store) QueryPlane(qp geom.QueryPlane) (*QueryResult, error) {
	fetched := make(map[int64]Node)
	cube := geom.BoxFromRect(qp.R, qp.EMin, s.maxE)
	err := s.qt.Query(cube, func(x, y, el float64, payload []byte) bool {
		n := DecodeRecord(payload)
		fetched[n.ID] = n
		return true
	})
	if err != nil {
		return nil, err
	}
	res := &QueryResult{Frontier: make(map[int64]FrontierVertex)}
	res.FetchedNodes = len(fetched)

	needs := func(n *Node) bool {
		if n.IsLeaf() || !n.MBR.Intersects(qp.R) {
			return false
		}
		return n.ELow > qp.MinOver(n.MBR.Intersect(qp.R))
	}
	var ensure func(id int64) (Node, error)
	ensure = func(id int64) (Node, error) {
		if n, ok := fetched[id]; ok {
			return n, nil
		}
		n, err := s.fetchByID(id)
		if err != nil {
			return Node{}, err
		}
		fetched[id] = n
		res.FetchedNodes++
		res.ChasedNodes++
		return n, nil
	}
	var expand func(id int64) error
	expand = func(id int64) error {
		n, err := ensure(id)
		if err != nil {
			return err
		}
		if !needs(&n) {
			if qp.R.ContainsPoint(n.Pos.XY()) {
				res.Frontier[n.ID] = FrontierVertex{ID: n.ID, Pos: n.Pos}
			}
			return nil
		}
		if err := expand(n.Child1); err != nil {
			return err
		}
		return expand(n.Child2)
	}
	for _, root := range s.roots {
		if err := expand(root); err != nil {
			return nil, err
		}
	}
	return res, nil
}
