// Package pm implements the Progressive Mesh multiresolution tree of
// Section 2 of the paper: an unbalanced binary tree whose leaves are the
// original terrain points and whose internal nodes are the points created
// by edge collapses, each recording its children, its wing points, its
// approximation error, and the footprint MBR of its descendants.
//
// The package provides both the in-memory tree (construction from a
// collapse sequence, LOD normalization, selective refinement) and the
// disk-resident baseline store the paper evaluates against: PM node
// records clustered in an LOD-quadtree with a B+-tree for by-ID fetches.
package pm

import (
	"fmt"
	"math"

	"dmesh/internal/geom"
	"dmesh/internal/simplify"
)

// None marks an absent node reference (no parent, wing, or child).
const None int64 = -1

// Node is one PM tree node: the paper's
// (ID, x, y, z, e, parent, child1, child2, wing1, wing2) record, plus the
// footprint MBR internal nodes must carry ("all internal nodes of the MTM
// tree must record ... its 'footprint'") and the normalized LOD interval.
type Node struct {
	ID  int64
	Pos geom.Point3

	// ERaw is the approximation error assigned by the simplifier.
	ERaw float64
	// ELow is the normalized LOD (Section 4): 0 for leaves, otherwise
	// max(ERaw, children's ELow), so LOD never decreases toward the root.
	ELow float64
	// EHigh is the parent's ELow (+Inf for roots). The node belongs to the
	// approximation at LOD e exactly when ELow <= e < EHigh.
	EHigh float64

	Parent, Child1, Child2 int64
	Wing1, Wing2           int64

	// MBR is the footprint: the (x, y) bounding rectangle of the node's
	// point and all its descendants.
	MBR geom.Rect
}

// Interval returns the node's LOD interval.
func (n *Node) Interval() geom.Interval { return geom.Interval{Low: n.ELow, High: n.EHigh} }

// IsLeaf reports whether the node is an original terrain point.
func (n *Node) IsLeaf() bool { return n.Child1 == None }

// Tree is an in-memory PM tree. Nodes are indexed by ID.
type Tree struct {
	Nodes []Node
	Roots []int64
	// MaxE is the dataset's maximum LOD value (the largest root ELow),
	// the top of the query cube in the paper's Figure 3.
	MaxE float64
}

// FromSequence builds the PM tree from a collapse sequence, applying the
// LOD normalization of Section 4.
func FromSequence(seq *simplify.Sequence) (*Tree, error) {
	if seq.NumVertices() == 0 {
		return nil, fmt.Errorf("pm: empty sequence")
	}
	t := &Tree{Nodes: make([]Node, seq.NumVertices())}
	for i := range t.Nodes {
		n := &t.Nodes[i]
		n.ID = int64(i)
		n.Pos = seq.Positions[i]
		n.Parent, n.Child1, n.Child2, n.Wing1, n.Wing2 = None, None, None, None, None
		n.EHigh = math.Inf(1)
		n.MBR = geom.PointRect(n.Pos.XY())
	}
	// Collapses are ordered children-before-parent, so one forward pass
	// computes normalized LODs and footprints bottom-up.
	for _, c := range seq.Collapses {
		p := &t.Nodes[c.New]
		c1, c2 := &t.Nodes[c.Child1], &t.Nodes[c.Child2]
		p.ERaw = c.Err
		p.ELow = c.Err
		if c1.ELow > p.ELow {
			p.ELow = c1.ELow
		}
		if c2.ELow > p.ELow {
			p.ELow = c2.ELow
		}
		p.Child1, p.Child2 = c.Child1, c.Child2
		p.Wing1, p.Wing2 = c.Wing1, c.Wing2
		p.MBR = p.MBR.Union(c1.MBR).Union(c2.MBR)
		c1.Parent, c2.Parent = c.New, c.New
		c1.EHigh, c2.EHigh = p.ELow, p.ELow
	}
	t.Roots = append([]int64(nil), seq.Roots...)
	for _, r := range t.Roots {
		if e := t.Nodes[r].ELow; e > t.MaxE {
			t.MaxE = e
		}
	}
	return t, nil
}

// Node returns the node with the given ID.
func (t *Tree) Node(id int64) *Node { return &t.Nodes[id] }

// Len returns the total number of nodes.
func (t *Tree) Len() int { return len(t.Nodes) }

// CheckInvariants validates the normalization and structural invariants:
// monotone LODs along paths, interval nesting, footprint containment, and
// that every non-root has a parent whose children include it.
func (t *Tree) CheckInvariants() error {
	for i := range t.Nodes {
		n := &t.Nodes[i]
		if n.ELow < 0 {
			return fmt.Errorf("pm: node %d has negative LOD %g", n.ID, n.ELow)
		}
		if n.EHigh < n.ELow {
			return fmt.Errorf("pm: node %d has inverted interval [%g,%g)", n.ID, n.ELow, n.EHigh)
		}
		if n.IsLeaf() != (n.Child2 == None) {
			return fmt.Errorf("pm: node %d has exactly one child", n.ID)
		}
		if n.Parent == None {
			if !math.IsInf(n.EHigh, 1) {
				return fmt.Errorf("pm: root %d has finite EHigh %g", n.ID, n.EHigh)
			}
			continue
		}
		p := &t.Nodes[n.Parent]
		if p.Child1 != n.ID && p.Child2 != n.ID {
			return fmt.Errorf("pm: node %d not among parent %d's children", n.ID, n.Parent)
		}
		if p.ELow < n.ELow {
			return fmt.Errorf("pm: LOD not monotone: node %d (%g) above child %d (%g)", p.ID, p.ELow, n.ID, n.ELow)
		}
		if n.EHigh != p.ELow {
			return fmt.Errorf("pm: node %d EHigh %g != parent ELow %g", n.ID, n.EHigh, p.ELow)
		}
		if !p.MBR.ContainsRect(n.MBR) {
			return fmt.Errorf("pm: footprint of %d not inside parent %d", n.ID, n.Parent)
		}
	}
	return nil
}

// cutCheck verifies that for LOD value e every leaf-to-root path crosses
// exactly one node whose interval contains e; used by tests through
// ValidateCut.
func (t *Tree) ValidateCut(e float64) error {
	for i := range t.Nodes {
		if !t.Nodes[i].IsLeaf() {
			continue
		}
		crossings := 0
		for id := int64(i); id != None; id = t.Nodes[id].Parent {
			if t.Nodes[id].Interval().Contains(e) {
				crossings++
			}
		}
		if crossings != 1 {
			return fmt.Errorf("pm: leaf %d crosses the LOD-%g cut %d times", i, e, crossings)
		}
	}
	return nil
}

// FrontierUniform performs in-memory selective refinement for the
// viewpoint-independent query Q(M, r, e) and returns the IDs of the mesh
// vertices: the frontier nodes of the refined subtree whose points lie in
// r. This is the ground-truth result that the disk-based stores (PM
// baseline and Direct Mesh) must reproduce.
func (t *Tree) FrontierUniform(r geom.Rect, e float64) []int64 {
	var frontier []int64
	var visit func(id int64)
	visit = func(id int64) {
		n := &t.Nodes[id]
		if n.ELow > e && !n.IsLeaf() && n.MBR.Intersects(r) {
			visit(n.Child1)
			visit(n.Child2)
			return
		}
		if r.ContainsPoint(n.Pos.XY()) {
			frontier = append(frontier, id)
		}
	}
	for _, root := range t.Roots {
		visit(root)
	}
	return frontier
}

// ExpandedUniform returns the IDs of the internal nodes of the refined
// subtree M' for Q(M, r, e): the nodes selective refinement must visit
// (and a disk-resident PM must fetch) to produce the frontier.
func (t *Tree) ExpandedUniform(r geom.Rect, e float64) []int64 {
	var expanded []int64
	var visit func(id int64)
	visit = func(id int64) {
		n := &t.Nodes[id]
		if n.ELow > e && !n.IsLeaf() && n.MBR.Intersects(r) {
			expanded = append(expanded, id)
			visit(n.Child1)
			visit(n.Child2)
		}
	}
	for _, root := range t.Roots {
		visit(root)
	}
	return expanded
}

// FrontierPlane performs in-memory selective refinement for a viewpoint-
// dependent query: the required LOD varies over the ROI following the
// query plane qp. A node is refined while its LOD exceeds the plane's
// requirement anywhere in its footprint (the most demanding point governs,
// since different parts of a footprint may need different LODs).
func (t *Tree) FrontierPlane(qp geom.QueryPlane) []int64 {
	var frontier []int64
	var visit func(id int64)
	visit = func(id int64) {
		n := &t.Nodes[id]
		if !n.IsLeaf() && n.MBR.Intersects(qp.R) && n.ELow > qp.MinOver(n.MBR.Intersect(qp.R)) {
			visit(n.Child1)
			visit(n.Child2)
			return
		}
		if qp.R.ContainsPoint(n.Pos.XY()) {
			frontier = append(frontier, id)
		}
	}
	for _, root := range t.Roots {
		visit(root)
	}
	return frontier
}

// ExpandedPlane returns the internal nodes visited by FrontierPlane.
func (t *Tree) ExpandedPlane(qp geom.QueryPlane) []int64 {
	var expanded []int64
	var visit func(id int64)
	visit = func(id int64) {
		n := &t.Nodes[id]
		if !n.IsLeaf() && n.MBR.Intersects(qp.R) && n.ELow > qp.MinOver(n.MBR.Intersect(qp.R)) {
			expanded = append(expanded, id)
			visit(n.Child1)
			visit(n.Child2)
		}
	}
	for _, root := range t.Roots {
		visit(root)
	}
	return expanded
}
