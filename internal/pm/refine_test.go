package pm

import (
	"testing"

	"dmesh/internal/heightfield"
	"dmesh/internal/mesh"
	"dmesh/internal/simplify"
)

// mismatchFraction compares a refined adjacency against replay ground
// truth and returns the fraction of points with wrong neighbor sets.
func mismatchFraction(got, want map[int64][]int64) float64 {
	mismatched := 0
	for v, ns := range want {
		gs := got[v]
		ok := len(gs) == len(ns)
		if ok {
			for i := range ns {
				if gs[i] != ns[i] {
					ok = false
					break
				}
			}
		}
		if !ok {
			mismatched++
		}
	}
	return float64(mismatched) / float64(len(want))
}

// With the recorded vsplit partitions (Hoppe's annotations), refinement
// from the 1-point top reproduces the replayed mesh EXACTLY at every LOD.
func TestExactRefineMatchesReplay(t *testing.T) {
	for _, name := range []string{"highland", "crater"} {
		tree, seq := buildTreeNamed(t, 9, name)
		for _, pct := range []float64{0, 0.25, 0.5, 0.75, 0.95} {
			var e float64
			if pct > 0 {
				e = eAtPercentile(tree, pct)
			}
			r := NewRefiner(tree)
			r.UseExactPartitions(seq)
			if err := r.RefineToLOD(e); err != nil {
				t.Fatal(err)
			}
			got := r.Adjacency()
			want, err := seq.AdjacencyAtStep(seq.StepForLOD(e))
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s e=%g: %d live points, replay has %d", name, e, len(got), len(want))
			}
			if frac := mismatchFraction(got, want); frac != 0 {
				t.Fatalf("%s e=%g: %.1f%% of points have wrong neighbors with exact partitions",
					name, e, frac*100)
			}
		}
	}
}

// With only the paper's minimal node tuple (wings, no partition
// annotations) the redistribution must fall back to geometric heuristics,
// and errors cascade: this test DOCUMENTS that insufficiency — the reason
// Hoppe's vsplit records carry face annotations, and the structural
// reason Direct Mesh reconstructs from connection lists instead of
// replaying splits. The refiner still always produces a well-formed
// adjacency (correct live set, symmetric edges).
func TestMinimalRecordIsInsufficient(t *testing.T) {
	tree, seq := buildTreeNamed(t, 17, "highland")
	baseStep := seq.StepForLOD(eAtPercentile(tree, 0.95))
	baseAdj, err := seq.AdjacencyAtStep(baseStep)
	if err != nil {
		t.Fatal(err)
	}
	e := eAtPercentile(tree, 0.5)
	r := NewRefinerFromBase(tree, baseAdj)
	if err := r.RefineToLOD(e); err != nil {
		t.Fatal(err)
	}
	got := r.Adjacency()
	want, err := seq.AdjacencyAtStep(seq.StepForLOD(e))
	if err != nil {
		t.Fatal(err)
	}
	// The live set is always exact (it depends only on the split
	// schedule, not the redistribution).
	if len(got) != len(want) {
		t.Fatalf("live set %d, want %d", len(got), len(want))
	}
	for v := range want {
		if _, ok := got[v]; !ok {
			t.Fatalf("live point %d missing", v)
		}
	}
	// Edges stay symmetric regardless of heuristic choices.
	for v, ns := range got {
		for _, u := range ns {
			found := false
			for _, w := range got[u] {
				if w == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("asymmetric edge (%d,%d)", v, u)
			}
		}
	}
	frac := mismatchFraction(got, want)
	t.Logf("wings-only refinement mismatch: %.1f%% of %d points (exact mode: 0%%)", frac*100, len(want))
	if frac == 0 {
		t.Log("note: wings-only refinement was exact here; the guarantee still requires annotations")
	}
}

func TestRefinerSplitErrors(t *testing.T) {
	tree, _ := buildTree(t, 6)
	r := NewRefiner(tree)
	// Splitting a point not in the approximation fails.
	if err := r.Split(0); err == nil {
		t.Fatal("split of non-live point must fail")
	}
	// Refine all the way down, then splitting a leaf fails.
	full := NewRefiner(tree)
	if err := full.RefineToLOD(0); err != nil {
		t.Fatal(err)
	}
	var leaf int64 = -1
	for id := range full.adj {
		if tree.Nodes[id].IsLeaf() {
			leaf = id
			break
		}
	}
	if leaf == -1 {
		t.Fatal("no live leaf after full refinement")
	}
	if err := full.Split(leaf); err == nil {
		t.Fatal("split of a leaf must fail")
	}
}

func TestRefineProgression(t *testing.T) {
	tree, _ := buildTree(t, 8)
	prev := -1
	for _, pct := range []float64{0.9, 0.6, 0.3, 0} {
		var e float64
		if pct > 0 {
			e = eAtPercentile(tree, pct)
		}
		r := NewRefiner(tree)
		if err := r.RefineToLOD(e); err != nil {
			t.Fatal(err)
		}
		n := len(r.Adjacency())
		if prev >= 0 && n < prev {
			t.Fatalf("refinement lost points: %d -> %d", prev, n)
		}
		prev = n
	}
}

// buildTreeNamed is buildTree with a dataset choice.
func buildTreeNamed(t testing.TB, size int, name string) (*Tree, *simplify.Sequence) {
	t.Helper()
	g, err := heightfield.Named(name, size, 5)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := simplify.Run(mesh.FromGrid(g), simplify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := FromSequence(seq)
	if err != nil {
		t.Fatal(err)
	}
	return tree, seq
}
