package geom

// HilbertD2XY and HilbertXY2D implement the 2D Hilbert curve used to lay
// terrain point records out on disk in an (x, y)-clustered order, as the
// paper requires ("terrain data is arranged on the disk in such a way that
// their (x, y) clustering is preserved as much as possible").

// HilbertXY2D returns the distance along the Hilbert curve of order k
// (a 2^k x 2^k grid) of the cell (x, y).
func HilbertXY2D(order uint, x, y uint32) uint64 {
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		x, y = hilbertRot(s, x, y, rx, ry)
	}
	return d
}

// HilbertD2XY is the inverse of HilbertXY2D: it maps a curve distance back
// to grid coordinates.
func HilbertD2XY(order uint, d uint64) (x, y uint32) {
	t := d
	for s := uint32(1); s < uint32(1)<<order; s <<= 1 {
		rx := uint32(1) & uint32(t/2)
		ry := uint32(1) & uint32(t^uint64(rx))
		x, y = hilbertRot(s, x, y, rx, ry)
		x += s * rx
		y += s * ry
		t /= 4
	}
	return x, y
}

func hilbertRot(s, x, y, rx, ry uint32) (uint32, uint32) {
	if ry == 0 {
		if rx == 1 {
			x = s - 1 - x
			y = s - 1 - y
		}
		x, y = y, x
	}
	return x, y
}

// HilbertKey maps a point in the unit square to a 32-order Hilbert curve
// distance. Points outside [0,1] are clamped. Useful as a sort key for
// spatially clustered record placement.
func HilbertKey(p Point2) uint64 {
	const order = 16
	const n = 1 << order
	x := clamp01(p.X) * (n - 1)
	y := clamp01(p.Y) * (n - 1)
	return HilbertXY2D(order, uint32(x), uint32(y))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
