package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := NewRect(3, 4, 1, 2) // corners in arbitrary order
	if r != (Rect{1, 2, 3, 4}) {
		t.Fatalf("NewRect normalization: got %v", r)
	}
	if got := r.Width(); got != 2 {
		t.Errorf("Width = %g, want 2", got)
	}
	if got := r.Height(); got != 2 {
		t.Errorf("Height = %g, want 2", got)
	}
	if got := r.Area(); got != 4 {
		t.Errorf("Area = %g, want 4", got)
	}
	if got := r.Center(); got != (Point2{2, 3}) {
		t.Errorf("Center = %v, want (2,3)", got)
	}
	if !r.ContainsPoint(Point2{1, 2}) || !r.ContainsPoint(Point2{3, 4}) {
		t.Error("boundary points must be contained")
	}
	if r.ContainsPoint(Point2{0.999, 3}) {
		t.Error("point left of rect reported contained")
	}
}

func TestRectAround(t *testing.T) {
	r := RectAround(Point2{5, 5}, 2, 4)
	want := Rect{4, 3, 6, 7}
	if r != want {
		t.Fatalf("RectAround = %v, want %v", r, want)
	}
}

func TestRectIntersection(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{1, 1, 3, 3}
	c := Rect{5, 5, 6, 6}
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("a and b should intersect")
	}
	if a.Intersects(c) {
		t.Error("a and c should not intersect")
	}
	i := a.Intersect(b)
	if i != (Rect{1, 1, 2, 2}) {
		t.Errorf("Intersect = %v", i)
	}
	if v := a.Intersect(c); v.Valid() {
		t.Errorf("disjoint Intersect should be invalid, got %v", v)
	}
	// Touching rectangles intersect (closed boxes).
	d := Rect{2, 0, 4, 2}
	if !a.Intersects(d) {
		t.Error("touching rects must intersect")
	}
}

func TestRectUnionContains(t *testing.T) {
	a := Rect{0, 0, 1, 1}
	b := Rect{2, 2, 3, 3}
	u := a.Union(b)
	if !u.ContainsRect(a) || !u.ContainsRect(b) {
		t.Errorf("union %v must contain both inputs", u)
	}
	if u != (Rect{0, 0, 3, 3}) {
		t.Errorf("Union = %v", u)
	}
	e := a.ExpandPoint(Point2{-1, 5})
	if !e.ContainsPoint(Point2{-1, 5}) || !e.ContainsRect(a) {
		t.Errorf("ExpandPoint result %v wrong", e)
	}
}

func TestBoxBasics(t *testing.T) {
	b := BoxFromRect(Rect{0, 0, 2, 3}, 1, 5)
	if b.Width() != 2 || b.Height() != 3 || b.Depth() != 4 {
		t.Fatalf("extents wrong: %v", b)
	}
	if b.Volume() != 24 {
		t.Errorf("Volume = %g, want 24", b.Volume())
	}
	if b.Margin() != 9 {
		t.Errorf("Margin = %g, want 9", b.Margin())
	}
	if got := b.Center(); got != (Point3{1, 1.5, 3}) {
		t.Errorf("Center = %v", got)
	}
	if !b.ContainsPoint(2, 3, 5) {
		t.Error("boundary point must be contained")
	}
	if b.ContainsPoint(0, 0, 0.999) {
		t.Error("point below must not be contained")
	}
}

func TestBoxIntersectUnion(t *testing.T) {
	a := Box{0, 0, 0, 2, 2, 2}
	b := Box{1, 1, 1, 3, 3, 3}
	if !a.Intersects(b) {
		t.Fatal("boxes should intersect")
	}
	if got := a.OverlapVolume(b); got != 1 {
		t.Errorf("OverlapVolume = %g, want 1", got)
	}
	u := a.Union(b)
	if !u.Contains(a) || !u.Contains(b) {
		t.Errorf("union must contain inputs: %v", u)
	}
	if got := a.EnlargementVolume(b); got != u.Volume()-a.Volume() {
		t.Errorf("EnlargementVolume = %g", got)
	}
	c := Box{10, 10, 10, 11, 11, 11}
	if a.Intersects(c) {
		t.Error("disjoint boxes reported intersecting")
	}
	if a.OverlapVolume(c) != 0 {
		t.Error("disjoint overlap volume must be 0")
	}
}

func TestVerticalSegment(t *testing.T) {
	s := VerticalSegment(0.5, 0.25, 1, 4)
	if s.Width() != 0 || s.Height() != 0 || s.Depth() != 3 {
		t.Fatalf("vertical segment extents wrong: %v", s)
	}
	// The query-plane intersection semantics from Section 5.1: the segment
	// intersects the plane (r, e) iff (x,y) in r and eLow <= e <= eHigh.
	plane := BoxFromRect(Rect{0, 0, 1, 1}, 2, 2)
	if !s.Intersects(plane) {
		t.Error("segment must intersect plane at e=2")
	}
	below := BoxFromRect(Rect{0, 0, 1, 1}, 0.5, 0.5)
	if s.Intersects(below) {
		t.Error("segment must not intersect plane at e=0.5")
	}
}

func TestIntervalSemantics(t *testing.T) {
	iv := Interval{1, 3}
	if !iv.Contains(1) {
		t.Error("half-open interval must contain its low end")
	}
	if iv.Contains(3) {
		t.Error("half-open interval must not contain its high end")
	}
	if iv.Empty() {
		t.Error("non-degenerate interval reported empty")
	}
	if !(Interval{2, 2}).Empty() {
		t.Error("degenerate interval must be empty")
	}
	// Overlap is open at both high ends: [1,3) and [3,5) do not overlap.
	if iv.Overlaps(Interval{3, 5}) {
		t.Error("adjacent intervals must not overlap")
	}
	if !iv.Overlaps(Interval{2.9, 5}) {
		t.Error("intervals sharing (2.9,3) must overlap")
	}
	got := iv.Intersect(Interval{2, 5})
	if got != (Interval{2, 3}) {
		t.Errorf("Intersect = %v", got)
	}
}

func TestIntervalRootInfinity(t *testing.T) {
	root := Interval{7, math.Inf(1)}
	if !root.Contains(7) || !root.Contains(1e18) {
		t.Error("root interval must contain all e >= its low end")
	}
	if root.Contains(6.999) {
		t.Error("root interval must not contain e below its low end")
	}
}

func TestTriangleCanon(t *testing.T) {
	perms := []Triangle{{1, 2, 3}, {2, 1, 3}, {3, 2, 1}, {1, 3, 2}, {2, 3, 1}, {3, 1, 2}}
	for _, p := range perms {
		if got := p.Canon(); got != (Triangle{1, 2, 3}) {
			t.Errorf("Canon(%v) = %v", p, got)
		}
	}
	if (Triangle{1, 2, 3}).Degenerate() {
		t.Error("proper triangle reported degenerate")
	}
	if !(Triangle{1, 1, 3}).Degenerate() {
		t.Error("degenerate triangle not detected")
	}
}

func TestVectorOps(t *testing.T) {
	p := Point3{1, 0, 0}
	q := Point3{0, 1, 0}
	if got := p.Cross(q); got != (Point3{0, 0, 1}) {
		t.Errorf("Cross = %v", got)
	}
	if got := p.Dot(q); got != 0 {
		t.Errorf("Dot = %g", got)
	}
	if got := (Point3{3, 4, 0}).Norm(); got != 5 {
		t.Errorf("Norm = %g", got)
	}
	if got := (Point2{1, 0}).Cross(Point2{0, 1}); got != 1 {
		t.Errorf("2D Cross = %g", got)
	}
	if d := (Point2{0, 0}).Dist(Point2{3, 4}); d != 5 {
		t.Errorf("Dist = %g", d)
	}
}

// Property: union of two rects always contains both; intersection, when
// valid, is contained in both.
func TestRectUnionIntersectProperty(t *testing.T) {
	f := func(ax, ay, aw, ah, bx, by, bw, bh float64) bool {
		a := NewRect(ax, ay, ax+math.Abs(aw), ay+math.Abs(ah))
		b := NewRect(bx, by, bx+math.Abs(bw), by+math.Abs(bh))
		u := a.Union(b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			return false
		}
		i := a.Intersect(b)
		if i.Valid() && (!a.ContainsRect(i) || !b.ContainsRect(i)) {
			return false
		}
		// Intersects must agree with Intersect validity.
		return a.Intersects(b) == i.Valid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: box intersection symmetry and containment monotonicity.
func TestBoxIntersectsProperty(t *testing.T) {
	f := func(a, b Box) bool {
		a = normBox(a)
		b = normBox(b)
		if a.Intersects(b) != b.Intersects(a) {
			return false
		}
		u := a.Union(b)
		return u.Contains(a) && u.Contains(b) && u.Intersects(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func normBox(b Box) Box {
	if b.MinX > b.MaxX {
		b.MinX, b.MaxX = b.MaxX, b.MinX
	}
	if b.MinY > b.MaxY {
		b.MinY, b.MaxY = b.MaxY, b.MinY
	}
	if b.MinE > b.MaxE {
		b.MinE, b.MaxE = b.MaxE, b.MinE
	}
	return b
}

// Property: interval overlap is symmetric and consistent with intersection
// emptiness.
func TestIntervalOverlapProperty(t *testing.T) {
	f := func(a, b, c, d float64) bool {
		iv := Interval{math.Min(a, b), math.Max(a, b)}
		jv := Interval{math.Min(c, d), math.Max(c, d)}
		if iv.Overlaps(jv) != jv.Overlaps(iv) {
			return false
		}
		return iv.Overlaps(jv) == !iv.Intersect(jv).Empty()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHilbertRoundTrip(t *testing.T) {
	const order = 6
	n := uint32(1) << order
	seen := make(map[uint64]bool, n*n)
	for x := uint32(0); x < n; x++ {
		for y := uint32(0); y < n; y++ {
			d := HilbertXY2D(order, x, y)
			if seen[d] {
				t.Fatalf("duplicate Hilbert distance %d for (%d,%d)", d, x, y)
			}
			seen[d] = true
			gx, gy := HilbertD2XY(order, d)
			if gx != x || gy != y {
				t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", x, y, d, gx, gy)
			}
		}
	}
}

func TestHilbertLocality(t *testing.T) {
	// Consecutive distances along the curve must be 4-adjacent cells.
	const order = 5
	n := uint64(1) << order
	px, py := HilbertD2XY(order, 0)
	for d := uint64(1); d < n*n; d++ {
		x, y := HilbertD2XY(order, d)
		dx := int64(x) - int64(px)
		dy := int64(y) - int64(py)
		if dx*dx+dy*dy != 1 {
			t.Fatalf("curve jump at d=%d: (%d,%d)->(%d,%d)", d, px, py, x, y)
		}
		px, py = x, y
	}
}

func TestHilbertKeyClamps(t *testing.T) {
	lo := HilbertKey(Point2{-5, -5})
	hi := HilbertKey(Point2{5, 5})
	if lo == hi {
		t.Error("distinct clamped corners should map to distinct keys")
	}
	if HilbertKey(Point2{0, 0}) != lo {
		t.Error("clamping must map (-5,-5) to the (0,0) key")
	}
}
