package geom

import (
	"math"
	"math/rand"
	"testing"
)

// latticeBox draws a box with coordinates on a k/8 lattice so exact
// face contact and shared boundaries occur often.
func latticeBox(rng *rand.Rand) Box {
	coord := func() float64 { return float64(rng.Intn(9)) / 8 }
	span := func() (float64, float64) {
		a, b := coord(), coord()
		if b < a {
			a, b = b, a
		}
		return a, b
	}
	x0, x1 := span()
	y0, y1 := span()
	e0, e1 := span()
	return Box{x0, y0, e0, x1, y1, e1}
}

func boxesContain(boxes []Box, x, y, e float64) bool {
	for _, b := range boxes {
		if b.ContainsPoint(x, y, e) {
			return true
		}
	}
	return false
}

func TestSubtractDisjointAndContained(t *testing.T) {
	b := Box{0, 0, 0, 1, 1, 1}
	if got := b.Subtract(Box{2, 2, 2, 3, 3, 3}); len(got) != 1 || got[0] != b {
		t.Fatalf("disjoint subtract = %v, want [b]", got)
	}
	if got := b.Subtract(Box{-1, -1, -1, 2, 2, 2}); got != nil {
		t.Fatalf("covered subtract = %v, want nil", got)
	}
	// Face contact exposes no new volume: keep b whole.
	if got := b.Subtract(Box{1, 0, 0, 2, 1, 1}); len(got) != 1 || got[0] != b {
		t.Fatalf("face-contact subtract = %v, want [b]", got)
	}
}

func TestSubtractDegenerateBox(t *testing.T) {
	// A viewpoint-independent query volume is degenerate on e; chipping
	// an advanced copy off it must yield the uncovered slab, still at
	// the same e.
	b := Box{0, 0, 0.5, 1, 1, 0.5}
	c := Box{0, 0.25, 0.5, 1, 1.25, 0.5}
	frags := b.Subtract(c)
	if len(frags) != 1 {
		t.Fatalf("got %d fragments, want 1: %v", len(frags), frags)
	}
	want := Box{0, 0, 0.5, 1, 0.25, 0.5}
	if frags[0] != want {
		t.Fatalf("fragment = %v, want %v", frags[0], want)
	}
}

// TestSubtractProperty checks the partition contract on random lattice
// boxes: fragments stay inside b, never overlap c's interior, conserve
// the uncovered volume exactly, and cover every sampled point of b \ c.
func TestSubtractProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 2000; iter++ {
		b, c := latticeBox(rng), latticeBox(rng)
		frags := b.Subtract(c)
		var vol float64
		for _, f := range frags {
			if !f.Valid() {
				t.Fatalf("iter %d: invalid fragment %v from %v \\ %v", iter, f, b, c)
			}
			if !b.Contains(f) {
				t.Fatalf("iter %d: fragment %v escapes %v", iter, f, b)
			}
			vol += f.Volume()
			if ov := f.OverlapVolume(c); ov != 0 {
				t.Fatalf("iter %d: fragment %v overlaps %v by %g", iter, f, c, ov)
			}
		}
		// Volume conservation implies the fragments are interior-disjoint.
		i := b.Intersect(c)
		uncovered := b.Volume()
		if i.Valid() && !(i.Width() == 0 && b.Width() > 0) &&
			!(i.Height() == 0 && b.Height() > 0) &&
			!(i.Depth() == 0 && b.Depth() > 0) {
			uncovered -= i.Volume()
		}
		if math.Abs(vol-uncovered) > 1e-12 {
			t.Fatalf("iter %d: fragment volume %g, want %g (%v \\ %v)", iter, vol, uncovered, b, c)
		}
		for s := 0; s < 20; s++ {
			x := b.MinX + rng.Float64()*b.Width()
			y := b.MinY + rng.Float64()*b.Height()
			e := b.MinE + rng.Float64()*b.Depth()
			if !c.ContainsPoint(x, y, e) && !boxesContain(frags, x, y, e) {
				t.Fatalf("iter %d: point (%g,%g,%g) in %v \\ %v missed by fragments %v",
					iter, x, y, e, b, c, frags)
			}
		}
	}
}

// TestDifferenceProperty checks the delta-query contract: every sampled
// point inside some target but outside every cover box lies in a
// fragment, and every fragment stays inside its originating target set.
func TestDifferenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 500; iter++ {
		targets := make([]Box, 1+rng.Intn(3))
		for i := range targets {
			targets[i] = latticeBox(rng)
		}
		cover := make([]Box, rng.Intn(4))
		for i := range cover {
			cover[i] = latticeBox(rng)
		}
		frags := Difference(targets, cover)
		for _, f := range frags {
			inTarget := false
			for _, tb := range targets {
				if tb.Contains(f) {
					inTarget = true
					break
				}
			}
			if !inTarget {
				t.Fatalf("iter %d: fragment %v outside all targets %v", iter, f, targets)
			}
		}
		for s := 0; s < 50; s++ {
			tb := targets[rng.Intn(len(targets))]
			x := tb.MinX + rng.Float64()*tb.Width()
			y := tb.MinY + rng.Float64()*tb.Height()
			e := tb.MinE + rng.Float64()*tb.Depth()
			if !boxesContain(cover, x, y, e) && !boxesContain(frags, x, y, e) {
				t.Fatalf("iter %d: uncovered point (%g,%g,%g) missed (targets %v cover %v frags %v)",
					iter, x, y, e, targets, cover, frags)
			}
		}
	}
}

func TestDifferenceDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	targets := []Box{latticeBox(rng), latticeBox(rng)}
	cover := []Box{latticeBox(rng), latticeBox(rng), latticeBox(rng)}
	a := Difference(targets, cover)
	b := Difference(targets, cover)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fragment %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}
