package geom

// Subtract returns boxes that cover every point of b not covered by c.
// The fragments and the remainder b ∩ c partition b (the axis-sweep
// construction peels at most six slabs off b, one per face of c), so
// their union with c covers b exactly; fragments are closed boxes whose
// pairwise overlap — and overlap with c — is limited to shared boundary
// faces. Subtracting a box that only touches b on a face returns b
// whole: a zero-volume contact exposes no new query volume.
//
// Fragments inherit b's extent on the non-split axes, so subtracting
// from a degenerate box (a query plane r x [e, e]) yields degenerate
// fragments, which remain valid range-query volumes.
func (b Box) Subtract(c Box) []Box {
	i := b.Intersect(c)
	if !i.Valid() {
		return []Box{b}
	}
	// Face contact only: the intersection is degenerate on an axis where
	// b is not, so it carves nothing measurable out of b.
	if (i.Width() == 0 && b.Width() > 0) ||
		(i.Height() == 0 && b.Height() > 0) ||
		(i.Depth() == 0 && b.Depth() > 0) {
		return []Box{b}
	}
	if c.Contains(b) {
		return nil
	}
	out := make([]Box, 0, 6)
	rem := b
	if i.MinX > rem.MinX {
		out = append(out, Box{rem.MinX, rem.MinY, rem.MinE, i.MinX, rem.MaxY, rem.MaxE})
		rem.MinX = i.MinX
	}
	if i.MaxX < rem.MaxX {
		out = append(out, Box{i.MaxX, rem.MinY, rem.MinE, rem.MaxX, rem.MaxY, rem.MaxE})
		rem.MaxX = i.MaxX
	}
	if i.MinY > rem.MinY {
		out = append(out, Box{rem.MinX, rem.MinY, rem.MinE, rem.MaxX, i.MinY, rem.MaxE})
		rem.MinY = i.MinY
	}
	if i.MaxY < rem.MaxY {
		out = append(out, Box{rem.MinX, i.MaxY, rem.MinE, rem.MaxX, rem.MaxY, rem.MaxE})
		rem.MaxY = i.MaxY
	}
	if i.MinE > rem.MinE {
		out = append(out, Box{rem.MinX, rem.MinY, rem.MinE, rem.MaxX, rem.MaxY, i.MinE})
		rem.MinE = i.MinE
	}
	if i.MaxE < rem.MaxE {
		out = append(out, Box{rem.MinX, rem.MinY, i.MaxE, rem.MaxX, rem.MaxY, rem.MaxE})
		rem.MaxE = i.MaxE
	}
	return out
}

// Difference returns boxes covering every point of ∪targets not covered
// by ∪cover: each target is chipped by each cover box in turn, so the
// result depends deterministically on the input order. Every removed
// point lies in some cover box, which is the contract delta queries
// rely on: fetching the returned fragments plus whatever was already
// fetched for cover sees every item intersecting the targets.
func Difference(targets, cover []Box) []Box {
	frags := make([]Box, len(targets))
	copy(frags, targets)
	for _, c := range cover {
		if len(frags) == 0 {
			break
		}
		next := frags[:0:0]
		for _, f := range frags {
			next = append(next, f.Subtract(c)...)
		}
		frags = next
	}
	return frags
}
