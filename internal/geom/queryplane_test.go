package geom

import (
	"math"
	"testing"
)

func TestEAtLinearAlongAxis(t *testing.T) {
	qp := QueryPlane{R: Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 2}, EMin: 10, EMax: 30, Axis: 1}
	cases := []struct {
		y    float64
		want float64
	}{
		{0, 10}, {1, 20}, {2, 30},
		{-5, 10}, // clamped below
		{9, 30},  // clamped above
	}
	for _, c := range cases {
		if got := qp.EAt(0.5, c.y); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("EAt(y=%g) = %g, want %g", c.y, got, c.want)
		}
	}
	// x has no effect on an axis-1 plane.
	if qp.EAt(0, 1) != qp.EAt(1, 1) {
		t.Error("axis-1 plane must ignore x")
	}
}

func TestEAtAxisX(t *testing.T) {
	qp := QueryPlane{R: Rect{MinX: 2, MinY: 0, MaxX: 4, MaxY: 1}, EMin: 0, EMax: 8, Axis: 0}
	if got := qp.EAt(3, 0.5); math.Abs(got-4) > 1e-12 {
		t.Fatalf("EAt(x=3) = %g, want 4", got)
	}
}

func TestEAtDegenerateROI(t *testing.T) {
	qp := QueryPlane{R: Rect{MinX: 1, MinY: 1, MaxX: 1, MaxY: 1}, EMin: 5, EMax: 7, Axis: 1}
	if got := qp.EAt(1, 1); got != 5 {
		t.Fatalf("zero-extent ROI EAt = %g, want EMin", got)
	}
}

func TestMinOver(t *testing.T) {
	qp := QueryPlane{R: Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, EMin: 0, EMax: 10, Axis: 1}
	sub := Rect{MinX: 0.2, MinY: 0.3, MaxX: 0.8, MaxY: 0.9}
	if got := qp.MinOver(sub); math.Abs(got-3) > 1e-12 {
		t.Fatalf("MinOver = %g, want 3 (the near edge requirement)", got)
	}
	// Invalid rect -> no requirement (EMax).
	if got := qp.MinOver(Rect{MinX: 1, MaxX: 0, MinY: 0, MaxY: 1}); got != 10 {
		t.Fatalf("MinOver(invalid) = %g", got)
	}
}

func TestAngleAndPlaneForAngleRoundTrip(t *testing.T) {
	r := Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 0.5}
	for _, angle := range []float64{0.1, 0.5, 1.0} {
		qp := PlaneForAngle(r, 2, angle, 1)
		if math.Abs(qp.Angle()-angle) > 1e-12 {
			t.Errorf("angle %g round-tripped to %g", angle, qp.Angle())
		}
		if qp.EMin != 2 {
			t.Errorf("EMin changed: %g", qp.EMin)
		}
		wantEMax := 2 + math.Tan(angle)*r.Height()
		if math.Abs(qp.EMax-wantEMax) > 1e-12 {
			t.Errorf("EMax = %g, want %g", qp.EMax, wantEMax)
		}
	}
}

func TestAngleDegenerate(t *testing.T) {
	qp := QueryPlane{R: Rect{}, EMin: 0, EMax: 5, Axis: 1}
	if qp.Angle() != math.Pi/2 {
		t.Fatalf("zero-run plane angle = %g", qp.Angle())
	}
	if MaxAngle(3, 0) != math.Pi/2 {
		t.Fatal("MaxAngle over zero extent must be pi/2")
	}
	if got, want := MaxAngle(1, 1), math.Pi/4; math.Abs(got-want) > 1e-12 {
		t.Fatalf("MaxAngle(1,1) = %g", got)
	}
}
