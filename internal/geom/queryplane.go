package geom

import "math"

// QueryPlane models the paper's viewpoint-dependent query: over the ROI R
// the required LOD varies linearly from EMin at the viewer-near edge to
// EMax at the far edge ("the region closer to the viewer can have a higher
// LOD, i.e. a smaller approximation error value"). The paper's experiments
// use planes parallel to an axis (Section 5.2 presents the method on the
// (y, e) projection); Axis selects which.
type QueryPlane struct {
	R          Rect
	EMin, EMax float64
	// Axis is the direction along which the required LOD grows: 0 for x,
	// 1 for y. The viewer sits at the low edge of that axis.
	Axis int
}

// EAt returns the LOD the plane requires at point (x, y), clamped to
// [EMin, EMax]. Points outside R clamp to the nearest edge requirement.
func (qp QueryPlane) EAt(x, y float64) float64 {
	var t float64
	if qp.Axis == 0 {
		if w := qp.R.Width(); w > 0 {
			t = (x - qp.R.MinX) / w
		}
	} else {
		if h := qp.R.Height(); h > 0 {
			t = (y - qp.R.MinY) / h
		}
	}
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	return qp.EMin + (qp.EMax-qp.EMin)*t
}

// MinOver returns the smallest LOD the plane requires anywhere in rect —
// the binding requirement when deciding whether a region is refined
// enough. An invalid (empty) rect yields EMax (no requirement).
func (qp QueryPlane) MinOver(rect Rect) float64 {
	if !rect.Valid() {
		return qp.EMax
	}
	// The requirement grows along Axis, so the minimum is at the low
	// corner (EAt only reads the Axis coordinate).
	return qp.EAt(rect.MinX, rect.MinY)
}

// Angle returns the angle in radians between the query plane and the
// bottom plane (Figure 7 of the paper): atan of LOD rise over ROI run.
func (qp QueryPlane) Angle() float64 {
	run := qp.R.Height()
	if qp.Axis == 0 {
		run = qp.R.Width()
	}
	if run == 0 {
		return math.Pi / 2
	}
	return math.Atan((qp.EMax - qp.EMin) / run)
}

// MaxAngle returns the paper's θmax for a dataset with the given maximum
// LOD over a ROI of the given extent: arctan(LODmax / roiExtent).
func MaxAngle(lodMax, roiExtent float64) float64 {
	if roiExtent == 0 {
		return math.Pi / 2
	}
	return math.Atan(lodMax / roiExtent)
}

// PlaneForAngle builds the query plane over r with the given start LOD
// emin and angle (radians): emax = emin + tan(angle) * extent(axis).
func PlaneForAngle(r Rect, emin, angle float64, axis int) QueryPlane {
	run := r.Height()
	if axis == 0 {
		run = r.Width()
	}
	return QueryPlane{R: r, EMin: emin, EMax: emin + math.Tan(angle)*run, Axis: axis}
}
