// Package geom provides the geometric primitives shared by every other
// package in the repository: 2D points and rectangles, 3D points and boxes,
// vertical line segments in (x, y, e) space, and triangles.
//
// Throughout the repository the third dimension of query space is the level
// of detail (LOD) value e, not the terrain elevation z. A terrain point
// carries both: (x, y, z) locate it on the surface, while its LOD interval
// [eLow, eHigh) positions it in query space. Package geom is agnostic to
// that interpretation; it only manipulates coordinates.
package geom

import (
	"fmt"
	"math"
)

// Point2 is a point in the (x, y) plane.
type Point2 struct {
	X, Y float64
}

// Sub returns the vector p - q.
func (p Point2) Sub(q Point2) Point2 { return Point2{p.X - q.X, p.Y - q.Y} }

// Add returns the vector p + q.
func (p Point2) Add(q Point2) Point2 { return Point2{p.X + q.X, p.Y + q.Y} }

// Scale returns p scaled by s.
func (p Point2) Scale(s float64) Point2 { return Point2{p.X * s, p.Y * s} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point2) Dot(q Point2) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product of p and q viewed as
// vectors, i.e. the signed parallelogram area.
func (p Point2) Cross(q Point2) float64 { return p.X*q.Y - p.Y*q.X }

// Dist returns the Euclidean distance between p and q.
func (p Point2) Dist(q Point2) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// Point3 is a point in (x, y, z) space.
type Point3 struct {
	X, Y, Z float64
}

// XY projects p onto the (x, y) plane.
func (p Point3) XY() Point2 { return Point2{p.X, p.Y} }

// Sub returns the vector p - q.
func (p Point3) Sub(q Point3) Point3 { return Point3{p.X - q.X, p.Y - q.Y, p.Z - q.Z} }

// Add returns the vector p + q.
func (p Point3) Add(q Point3) Point3 { return Point3{p.X + q.X, p.Y + q.Y, p.Z + q.Z} }

// Scale returns p scaled by s.
func (p Point3) Scale(s float64) Point3 { return Point3{p.X * s, p.Y * s, p.Z * s} }

// Dot returns the dot product of p and q viewed as vectors.
func (p Point3) Dot(q Point3) float64 { return p.X*q.X + p.Y*q.Y + p.Z*q.Z }

// Cross returns the cross product of p and q viewed as vectors.
func (p Point3) Cross(q Point3) Point3 {
	return Point3{
		p.Y*q.Z - p.Z*q.Y,
		p.Z*q.X - p.X*q.Z,
		p.X*q.Y - p.Y*q.X,
	}
}

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point3) Norm() float64 { return math.Sqrt(p.Dot(p)) }

// Dist returns the Euclidean distance between p and q.
func (p Point3) Dist(q Point3) float64 { return p.Sub(q).Norm() }

// Rect is an axis-aligned rectangle in the (x, y) plane. A Rect is valid
// when MinX <= MaxX and MinY <= MaxY; the zero Rect is a single point at
// the origin.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// NewRect returns the rectangle spanning the two corner points in any order.
func NewRect(x0, y0, x1, y1 float64) Rect {
	if x1 < x0 {
		x0, x1 = x1, x0
	}
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	return Rect{x0, y0, x1, y1}
}

// RectAround returns the rectangle centered at c with the given width and
// height.
func RectAround(c Point2, width, height float64) Rect {
	return Rect{c.X - width/2, c.Y - height/2, c.X + width/2, c.Y + height/2}
}

// Valid reports whether r has non-negative extent on both axes.
func (r Rect) Valid() bool { return r.MinX <= r.MaxX && r.MinY <= r.MaxY }

// Width returns the x extent of r.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the y extent of r.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the center point of r.
func (r Rect) Center() Point2 { return Point2{(r.MinX + r.MaxX) / 2, (r.MinY + r.MaxY) / 2} }

// ContainsPoint reports whether p lies inside r (boundary inclusive).
func (r Rect) ContainsPoint(p Point2) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	return s.MinX >= r.MinX && s.MaxX <= r.MaxX && s.MinY >= r.MinY && s.MaxY <= r.MaxY
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	return r.MinX <= s.MaxX && s.MinX <= r.MaxX && r.MinY <= s.MaxY && s.MinY <= r.MaxY
}

// Intersect returns the overlap of r and s. The result is invalid
// (Valid() == false) when they do not intersect.
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		math.Max(r.MinX, s.MinX), math.Max(r.MinY, s.MinY),
		math.Min(r.MaxX, s.MaxX), math.Min(r.MaxY, s.MaxY),
	}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	return Rect{
		math.Min(r.MinX, s.MinX), math.Min(r.MinY, s.MinY),
		math.Max(r.MaxX, s.MaxX), math.Max(r.MaxY, s.MaxY),
	}
}

// ExpandPoint returns the smallest rectangle containing r and p.
func (r Rect) ExpandPoint(p Point2) Rect {
	return Rect{
		math.Min(r.MinX, p.X), math.Min(r.MinY, p.Y),
		math.Max(r.MaxX, p.X), math.Max(r.MaxY, p.Y),
	}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]", r.MinX, r.MaxX, r.MinY, r.MaxY)
}

// PointRect returns the degenerate rectangle containing only p.
func PointRect(p Point2) Rect { return Rect{p.X, p.Y, p.X, p.Y} }

// Box is an axis-aligned box in (x, y, e) query space. The e axis holds LOD
// values. A Box is valid when Min <= Max on every axis.
type Box struct {
	MinX, MinY, MinE float64
	MaxX, MaxY, MaxE float64
}

// BoxFromRect lifts a 2D rectangle into query space with the LOD extent
// [eLow, eHigh].
func BoxFromRect(r Rect, eLow, eHigh float64) Box {
	return Box{r.MinX, r.MinY, eLow, r.MaxX, r.MaxY, eHigh}
}

// VerticalSegment returns the degenerate box representing the vertical line
// segment <(x, y, eLow), (x, y, eHigh)> that a Direct Mesh point becomes in
// (x, y, e) space.
func VerticalSegment(x, y, eLow, eHigh float64) Box {
	return Box{x, y, eLow, x, y, eHigh}
}

// Valid reports whether b has non-negative extent on every axis.
func (b Box) Valid() bool {
	return b.MinX <= b.MaxX && b.MinY <= b.MaxY && b.MinE <= b.MaxE
}

// Rect projects b onto the (x, y) plane.
func (b Box) Rect() Rect { return Rect{b.MinX, b.MinY, b.MaxX, b.MaxY} }

// Width returns the x extent of b.
func (b Box) Width() float64 { return b.MaxX - b.MinX }

// Height returns the y extent of b.
func (b Box) Height() float64 { return b.MaxY - b.MinY }

// Depth returns the e extent of b.
func (b Box) Depth() float64 { return b.MaxE - b.MinE }

// Volume returns the volume of b.
func (b Box) Volume() float64 { return b.Width() * b.Height() * b.Depth() }

// Margin returns the sum of b's edge lengths on the three axes, the
// "margin" quantity minimized by the R*-tree split heuristic.
func (b Box) Margin() float64 { return b.Width() + b.Height() + b.Depth() }

// Center returns the center point of b, with Z holding the e coordinate.
func (b Box) Center() Point3 {
	return Point3{(b.MinX + b.MaxX) / 2, (b.MinY + b.MaxY) / 2, (b.MinE + b.MaxE) / 2}
}

// Intersects reports whether b and c share at least one point.
func (b Box) Intersects(c Box) bool {
	return b.MinX <= c.MaxX && c.MinX <= b.MaxX &&
		b.MinY <= c.MaxY && c.MinY <= b.MaxY &&
		b.MinE <= c.MaxE && c.MinE <= b.MaxE
}

// Contains reports whether c lies entirely inside b.
func (b Box) Contains(c Box) bool {
	return c.MinX >= b.MinX && c.MaxX <= b.MaxX &&
		c.MinY >= b.MinY && c.MaxY <= b.MaxY &&
		c.MinE >= b.MinE && c.MaxE <= b.MaxE
}

// ContainsPoint reports whether the point (x, y, e) lies inside b
// (boundary inclusive).
func (b Box) ContainsPoint(x, y, e float64) bool {
	return x >= b.MinX && x <= b.MaxX && y >= b.MinY && y <= b.MaxY && e >= b.MinE && e <= b.MaxE
}

// Union returns the smallest box containing both b and c.
func (b Box) Union(c Box) Box {
	return Box{
		math.Min(b.MinX, c.MinX), math.Min(b.MinY, c.MinY), math.Min(b.MinE, c.MinE),
		math.Max(b.MaxX, c.MaxX), math.Max(b.MaxY, c.MaxY), math.Max(b.MaxE, c.MaxE),
	}
}

// Intersect returns the overlap of b and c. The result is invalid when they
// do not intersect.
func (b Box) Intersect(c Box) Box {
	return Box{
		math.Max(b.MinX, c.MinX), math.Max(b.MinY, c.MinY), math.Max(b.MinE, c.MinE),
		math.Min(b.MaxX, c.MaxX), math.Min(b.MaxY, c.MaxY), math.Min(b.MaxE, c.MaxE),
	}
}

// OverlapVolume returns the volume shared by b and c (zero when disjoint).
func (b Box) OverlapVolume(c Box) float64 {
	i := b.Intersect(c)
	if !i.Valid() {
		return 0
	}
	return i.Volume()
}

// EnlargementVolume returns how much b's volume grows when extended to
// contain c.
func (b Box) EnlargementVolume(c Box) float64 {
	return b.Union(c).Volume() - b.Volume()
}

func (b Box) String() string {
	return fmt.Sprintf("[%g,%g]x[%g,%g]x[%g,%g]", b.MinX, b.MaxX, b.MinY, b.MaxY, b.MinE, b.MaxE)
}

// Interval is a half-open LOD interval [Low, High). Direct Mesh assigns one
// to every point: the point belongs to the approximation at LOD e exactly
// when e is inside the interval. The root of an MTM tree has High = +Inf.
type Interval struct {
	Low, High float64
}

// Contains reports whether e lies in the half-open interval [Low, High).
func (iv Interval) Contains(e float64) bool { return e >= iv.Low && e < iv.High }

// Overlaps reports whether iv and jv share any LOD value. Two points whose
// intervals overlap have "similar LOD" in the paper's terminology.
func (iv Interval) Overlaps(jv Interval) bool {
	return iv.Low < jv.High && jv.Low < iv.High
}

// Empty reports whether the interval contains no LOD value.
func (iv Interval) Empty() bool { return iv.High <= iv.Low }

// Intersect returns the overlap of iv and jv (possibly empty).
func (iv Interval) Intersect(jv Interval) Interval {
	return Interval{math.Max(iv.Low, jv.Low), math.Min(iv.High, jv.High)}
}

func (iv Interval) String() string { return fmt.Sprintf("[%g,%g)", iv.Low, iv.High) }

// Triangle is a triangle over three vertex IDs. Callers keep the actual
// coordinates elsewhere; ID-level triangles are what mesh reconstruction
// produces.
type Triangle struct {
	A, B, C int64
}

// Canon returns t with its vertex IDs sorted ascending, so that triangles
// compare equal regardless of winding or rotation.
func (t Triangle) Canon() Triangle {
	a, b, c := t.A, t.B, t.C
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return Triangle{a, b, c}
}

// Degenerate reports whether two of t's vertex IDs coincide.
func (t Triangle) Degenerate() bool { return t.A == t.B || t.B == t.C || t.A == t.C }
