package experiments

import (
	"testing"

	"dmesh"
	"dmesh/internal/workload"
)

// One shared bundle per dataset: building stores dominates test time.
var bundles = map[string]*Bundle{}

func bundle(t testing.TB, name string) *Bundle {
	t.Helper()
	if b, ok := bundles[name]; ok {
		return b
	}
	b, err := BuildBundle(name, 33, 5)
	if err != nil {
		t.Fatal(err)
	}
	bundles[name] = b
	return b
}

func cfg() workload.Config { return workload.Config{Locations: 3, Seed: 42} }

// seriesByMethod indexes a figure's series.
func seriesByMethod(f *Figure) map[Method][]Point {
	out := make(map[Method][]Point)
	for _, s := range f.Series {
		out[s.Method] = s.Points
	}
	return out
}

func TestFig6ROIShape(t *testing.T) {
	b := bundle(t, "highland")
	fig, err := b.Fig6ROI(cfg(), []float64{0.04, 0.16})
	if err != nil {
		t.Fatal(err)
	}
	sm := seriesByMethod(fig)
	for _, m := range []Method{DMSB, PM, HDoV} {
		pts := sm[m]
		if len(pts) != 2 {
			t.Fatalf("%s has %d points", m, len(pts))
		}
		for _, p := range pts {
			if p.DA <= 0 {
				t.Fatalf("%s has non-positive DA", m)
			}
		}
	}
	// The headline result: DM beats PM on every point.
	for i := range sm[DMSB] {
		if sm[DMSB][i].DA >= sm[PM][i].DA {
			t.Errorf("point %d: DM-SB (%g) not below PM (%g)", i, sm[DMSB][i].DA, sm[PM][i].DA)
		}
	}
}

func TestFig6LODShape(t *testing.T) {
	b := bundle(t, "highland")
	fig, err := b.Fig6LOD(cfg(), 0.1, []float64{0.3, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	sm := seriesByMethod(fig)
	// Finer LOD (lower percentile) must not be cheaper than coarser for
	// DM (more points retrieved).
	if sm[DMSB][0].DA < sm[DMSB][1].DA {
		t.Errorf("DM-SB finer LOD cheaper than coarser: %v", sm[DMSB])
	}
	for i := range sm[DMSB] {
		if sm[DMSB][i].DA >= sm[PM][i].DA {
			t.Errorf("point %d: DM-SB (%g) not below PM (%g)", i, sm[DMSB][i].DA, sm[PM][i].DA)
		}
	}
}

func TestFig8ROIShape(t *testing.T) {
	b := bundle(t, "highland")
	fig, err := b.Fig8ROI(cfg(), []float64{0.04, 0.16})
	if err != nil {
		t.Fatal(err)
	}
	sm := seriesByMethod(fig)
	if len(sm) != 4 {
		t.Fatalf("expected 4 methods, got %d", len(sm))
	}
	for i := range sm[DMMB] {
		if sm[DMMB][i].DA > sm[DMSB][i].DA {
			t.Errorf("point %d: DM-MB (%g) above DM-SB (%g)", i, sm[DMMB][i].DA, sm[DMSB][i].DA)
		}
		if sm[DMSB][i].DA >= sm[PM][i].DA {
			t.Errorf("point %d: DM-SB (%g) not below PM (%g)", i, sm[DMSB][i].DA, sm[PM][i].DA)
		}
	}
}

func TestFig8AngleShape(t *testing.T) {
	b := bundle(t, "highland")
	fig, err := b.Fig8Angle(cfg(), 0.1, []float64{0.25, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	sm := seriesByMethod(fig)
	// DM cost grows with angle (taller query cubes), the paper's
	// observation for Figures 8(c)/8(f).
	if sm[DMSB][1].DA < sm[DMSB][0].DA {
		t.Errorf("DM-SB cost fell as angle grew: %v", sm[DMSB])
	}
}

func TestFig8LODRuns(t *testing.T) {
	b := bundle(t, "highland")
	fig, err := b.Fig8LOD(cfg(), 0.1, []float64{0.2, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		if len(s.Points) != 2 {
			t.Fatalf("%s has %d points", s.Method, len(s.Points))
		}
	}
}

func TestConnStats(t *testing.T) {
	b := bundle(t, "highland")
	avgSim, avgTotal, maxSim := b.ConnStats()
	if avgSim <= 0 || maxSim <= 0 {
		t.Fatal("empty connection stats")
	}
	if avgTotal <= avgSim {
		t.Fatalf("total (%g) must exceed similar-LOD (%g)", avgTotal, avgSim)
	}
}

func TestMeasureRejectsBadMethod(t *testing.T) {
	b := bundle(t, "highland")
	if _, err := b.measureUniform(DMMB, workload.ROIs(cfg(), 0.1)[0], 1); err == nil {
		t.Fatal("DM-MB must be rejected for viewpoint-independent queries")
	}
	if _, err := b.measurePlane(Method("bogus"), workload.PlaneFor(workload.ROIs(cfg(), 0.1)[0], 0, b.Terrain.MaxLOD(), 0.5)); err == nil {
		t.Fatal("unknown method must be rejected")
	}
}

func TestCraterBundleSmoke(t *testing.T) {
	b := bundle(t, "crater")
	fig, err := b.Fig6ROI(cfg(), []float64{0.05})
	if err != nil {
		t.Fatal(err)
	}
	sm := seriesByMethod(fig)
	if sm[DMSB][0].DA <= 0 || sm[PM][0].DA <= 0 || sm[HDoV][0].DA <= 0 {
		t.Fatalf("crater figure has non-positive DA: %v", fig.Series)
	}
	if sm[DMSB][0].DA >= sm[PM][0].DA {
		t.Errorf("crater: DM-SB (%g) not below PM (%g)", sm[DMSB][0].DA, sm[PM][0].DA)
	}
	plane, err := b.Fig8Angle(cfg(), 0.05, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(plane.Series) != 4 {
		t.Fatalf("crater angle figure has %d series", len(plane.Series))
	}
}

func TestCompareLayoutsRuns(t *testing.T) {
	b := bundle(t, "highland")
	cmp, err := b.CompareLayouts(cfg(), 0.16, 6, dmesh.LayoutConnect)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Before.Layout != "str" || cmp.After.Layout != "connect" {
		t.Fatalf("sides are %s/%s, want str/connect", cmp.Before.Layout, cmp.After.Layout)
	}
	if len(cmp.Before.Rows) != len(cmp.After.Rows) {
		t.Fatalf("%d before rows vs %d after rows", len(cmp.Before.Rows), len(cmp.After.Rows))
	}
	if cmp.After.OverflowPages != 0 {
		t.Errorf("connect side has %d overflow pages, want 0", cmp.After.OverflowPages)
	}
	// The tentpole property, at any scale: the connect layout's
	// overflow_walk DA is (near) zero — co-allocated chains are read off
	// already-fetched pages.
	bTotal, bOv := cmp.Before.Totals()
	aTotal, aOv := cmp.After.Totals()
	if bTotal == 0 || aTotal == 0 {
		t.Fatalf("empty comparison: %d vs %d total DA", bTotal, aTotal)
	}
	if bOv > 0 && aOv*10 > bOv {
		t.Errorf("overflow_walk DA %d -> %d: expected at least a 10x reduction", bOv, aOv)
	}
}

func TestSweepLayoutsRuns(t *testing.T) {
	b := bundle(t, "highland")
	sweep, err := b.SweepLayouts(cfg(), 0.16, 6,
		[]dmesh.Layout{dmesh.LayoutSTR, dmesh.LayoutConnect, dmesh.LayoutPacked})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Sides) != 3 {
		t.Fatalf("sweep has %d sides, want 3", len(sweep.Sides))
	}
	connect, packed := sweep.Side("connect"), sweep.Side("packed")
	if connect == nil || packed == nil {
		t.Fatal("sweep is missing the connect or packed side")
	}
	// The compression tentpole, at any scale: packed pages hold more
	// records, so the packed store is strictly smaller.
	if packed.RecordsPerPage() < 1.7*connect.RecordsPerPage() {
		t.Errorf("packed density %.1f rec/page < 1.7x connect %.1f",
			packed.RecordsPerPage(), connect.RecordsPerPage())
	}
	if packed.DataPages >= connect.DataPages {
		t.Errorf("packed store has %d data pages, connect %d: no footprint win",
			packed.DataPages, connect.DataPages)
	}
	for i := range sweep.Sides {
		if total, _ := sweep.Sides[i].Totals(); total == 0 {
			t.Errorf("%s side measured no DA", sweep.Sides[i].Layout)
		}
	}
}

func TestDABreakdownInvariant(t *testing.T) {
	b := bundle(t, "highland")
	rows, err := b.DABreakdown(cfg(), 0.16, 6)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []string{"uniform", "single-base", "multi-base", "coherent", "tilecache"}
	if len(rows) != len(kinds) {
		t.Fatalf("got %d rows, want %d", len(rows), len(kinds))
	}
	for i, r := range rows {
		if r.Kind != kinds[i] {
			t.Errorf("row %d is %q, want %q", i, r.Kind, kinds[i])
		}
		if r.Queries == 0 {
			t.Errorf("%s: zero queries", r.Kind)
		}
		// The per-row invariant DABreakdown itself enforces per query,
		// re-checked on the aggregate: phase DAs sum to the total.
		var sum uint64
		for _, ps := range r.Phases {
			sum += ps.DA
		}
		if sum != r.TotalDA {
			t.Errorf("%s: phase DA sums to %d, total is %d", r.Kind, sum, r.TotalDA)
		}
		if r.Kind != "coherent" && r.TotalDA == 0 {
			t.Errorf("%s: zero total DA", r.Kind)
		}
	}
}
