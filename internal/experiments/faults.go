package experiments

import (
	"errors"
	"fmt"

	"dmesh"
	"dmesh/internal/geom"
	"dmesh/internal/storage/faultfs"
	"dmesh/internal/storage/pager"
	"dmesh/internal/workload"
)

// FaultsPoint is one fault-rate row of the chaos figure: the hot-spot
// workload served off a checksummed store whose disk fails reads and
// flips bits at Rate, with a retry-once policy.
type FaultsPoint struct {
	Rate    float64
	Queries int

	OK       int // succeeded on the first attempt
	Degraded int // succeeded only on the single retry
	Failed   int // clean error from both attempts
	Wrong    int // successful answer that mismatched the oracle (must be 0)
	Panics   int // recovered panics (must be 0)

	InjectedReads uint64 // read failures the disk injected
	FlippedReads  uint64 // reads returned bit-flipped (checksums must catch)

	MeanDA float64 // mean disk accesses per successful attempt
}

// FaultsFigure is the -fig faults experiment: error-rate, degraded-answer
// rate, and DA overhead of the serving path under injected I/O faults.
type FaultsFigure struct {
	Name      string
	Clients   int
	PerClient int
	Spots     int
	EPct      float64
	Points    []FaultsPoint
}

// FaultTolerance serves the skewed hot-spot workload (serially, cold
// caches per query — the paper's discipline) off a dedicated checksummed
// store wrapped in fault injection, at each fault rate in rates. Each
// rate schedules independent read failures and read bit-flips with that
// probability. A failed query is retried once; a query that panics is
// recovered and counted. Every successful answer is cross-checked
// against a clean oracle store, so silent corruption shows up as Wrong
// instead of skewing the curve.
func (b *Bundle) FaultTolerance(seed int64, rates []float64, clients, perClient int) (*FaultsFigure, error) {
	if clients <= 0 {
		clients = 8
	}
	if perClient <= 0 {
		perClient = 20
	}
	if len(rates) == 0 {
		rates = []float64{0, 0.002, 0.01, 0.05}
	}
	const ePct = 0.95

	// The store under test: checksums on, fault injection beneath them
	// (faults model the disk, checksums are the serving path's defense).
	var fbs []*faultfs.Backend
	pools := dmesh.StorePools{
		Checksums: true,
		WrapBackend: func(bk pager.Backend) pager.Backend {
			fb := faultfs.Wrap(bk)
			fbs = append(fbs, fb)
			return fb
		},
	}
	store, err := b.Terrain.NewDMStoreWithPools(pools)
	if err != nil {
		return nil, fmt.Errorf("experiments: faults store: %w", err)
	}
	oracle, err := b.Terrain.NewDMStore()
	if err != nil {
		return nil, fmt.Errorf("experiments: faults oracle: %w", err)
	}

	e := b.Terrain.LODPercentile(ePct)
	hs := workload.HotSpot{Clients: clients, PerClient: perClient, AreaFrac: 0.04, Seed: seed}
	hs.Defaults()
	fig := &FaultsFigure{
		Name: b.Name, Clients: hs.Clients, PerClient: hs.PerClient,
		Spots: hs.Spots, EPct: ePct,
	}

	// Flatten the client streams and precompute the oracle's answer sizes
	// once; the faulted runs are compared against these.
	var rois []geom.Rect
	for _, qs := range hs.ROIs() {
		rois = append(rois, qs...)
	}
	type answer struct{ verts, tris int }
	oracleAns := make([]answer, len(rois))
	for i, r := range rois {
		res, err := oracle.ViewpointIndependent(r, e)
		if err != nil {
			return nil, fmt.Errorf("experiments: faults oracle query %d: %w", i, err)
		}
		oracleAns[i] = answer{len(res.Vertices), len(res.Triangles)}
	}

	// attempt runs one cold query, recovering any panic into an error —
	// the experiment's job is to report panics as a count, not crash.
	attempt := func(r geom.Rect) (verts, tris int, da uint64, panicked bool, err error) {
		defer func() {
			if p := recover(); p != nil {
				panicked = true
				err = fmt.Errorf("panic: %v", p)
			}
		}()
		if err = store.DropCaches(); err != nil {
			return
		}
		store.ResetStats()
		res, qerr := store.ViewpointIndependent(r, e)
		da = store.DiskAccesses()
		if qerr != nil {
			err = qerr
			return
		}
		return len(res.Vertices), len(res.Triangles), da, false, nil
	}

	for ri, rate := range rates {
		// Distinct seeds per rate point keep the fault pattern fixed for a
		// fixed (seed, rates) input but independent across points.
		fseed := seed ^ int64(ri+1)*1_000_003
		for _, fb := range fbs {
			fb.SetSchedule(faultfs.Read, faultfs.Schedule{Rate: rate, Seed: fseed})
			fb.SetCorrupt(faultfs.Schedule{Rate: rate, Seed: fseed + 7})
			fb.ResetStats()
		}
		pt := FaultsPoint{Rate: rate, Queries: len(rois)}
		var okDA uint64
		var okAttempts int
		for i, r := range rois {
			verts, tris, da, panicked, err := attempt(r)
			if panicked {
				pt.Panics++
			}
			degraded := false
			if err != nil {
				// Retry-once policy: transient injected faults hit different
				// access indices on the retry, so most queries recover.
				if !errors.Is(err, faultfs.ErrInjected) && !errors.Is(err, pager.ErrChecksum) && !panicked {
					return nil, fmt.Errorf("experiments: faults: non-injected error at %v: %w", r, err)
				}
				verts, tris, da, panicked, err = attempt(r)
				if panicked {
					pt.Panics++
				}
				degraded = err == nil
			}
			if err != nil {
				pt.Failed++
				continue
			}
			if degraded {
				pt.Degraded++
			} else {
				pt.OK++
			}
			okDA += da
			okAttempts++
			if verts != oracleAns[i].verts || tris != oracleAns[i].tris {
				pt.Wrong++
			}
		}
		for _, fb := range fbs {
			st := fb.Stats()
			pt.InjectedReads += st.Injected[faultfs.Read]
			pt.FlippedReads += st.Corrupted
		}
		if okAttempts > 0 {
			pt.MeanDA = float64(okDA) / float64(okAttempts)
		}
		fig.Points = append(fig.Points, pt)
	}
	for _, fb := range fbs {
		fb.Heal()
	}
	return fig, nil
}
