package experiments

import (
	"fmt"

	"dmesh"
	"dmesh/internal/workload"
)

// LayoutSide is one physical layout's half of a before/after comparison:
// the store's page footprint plus the full per-phase DA decomposition of
// the paper's query mix against it.
type LayoutSide struct {
	Layout        string
	DataPages     int64
	OverflowPages int64
	// NumRecords sizes the density figure: records per data page is the
	// compression headline (NumRecords / DataPages).
	NumRecords int64
	Rows       []DABreakdownRow
}

// RecordsPerPage is the side's realized data-page density.
func (s *LayoutSide) RecordsPerPage() float64 {
	if s.DataPages == 0 {
		return 0
	}
	return float64(s.NumRecords) / float64(s.DataPages)
}

// LayoutCompare is one dataset's before/after layout comparison — the
// same workload, the same terrain, the same logical answers; only the
// physical page placement differs.
type LayoutCompare struct {
	Dataset string
	Before  LayoutSide
	After   LayoutSide
}

// Totals sums a side's per-kind DA into (total, overflow-walk) —
// the two numbers the connect layout is judged on.
func (s *LayoutSide) Totals() (total, overflow uint64) {
	for _, r := range s.Rows {
		total += r.TotalDA
		for _, ps := range r.Phases {
			if ps.Name == "overflow_walk" {
				overflow += ps.DA
			}
		}
	}
	return total, overflow
}

// DataDA sums the side's data-heap disk accesses — the record-fetch loop
// plus its overflow walks, the reads the compressed encoding exists to
// cut (index descents are layout-invariant).
func (s *LayoutSide) DataDA() uint64 {
	var da uint64
	for _, r := range s.Rows {
		for _, ps := range r.Phases {
			if ps.Name == "dm_fetch" || ps.Name == "overflow_walk" {
				da += ps.DA
			}
		}
	}
	return da
}

// CompareLayouts runs the DABreakdown query mix against the bundle's own
// DM store and against a shadow store on the target layout, built from
// the same dataset. The shadow bundle shares the terrain and baselines
// but carries its own DM store and cost model — plans legitimately
// differ between layouts (each R*-tree calibrates its own model); the
// figure compares what each layout pays for the same workload, which is
// exactly what an operator choosing a layout sees.
func (b *Bundle) CompareLayouts(cfg workload.Config, roiFrac float64, frames int, target dmesh.Layout) (*LayoutCompare, error) {
	before, err := b.layoutSide(cfg, roiFrac, frames)
	if err != nil {
		return nil, fmt.Errorf("experiments: layout compare (%s): %w", b.DM.Layout(), err)
	}
	shadow := &Bundle{Name: b.Name, Terrain: b.Terrain, PM: b.PM, HDoV: b.HDoV}
	if shadow.DM, err = b.Terrain.NewDMStoreWithPools(dmesh.StorePools{Layout: target}); err != nil {
		return nil, fmt.Errorf("experiments: layout compare: shadow store: %w", err)
	}
	if shadow.Model, err = dmesh.NewCostModel(shadow.DM); err != nil {
		return nil, fmt.Errorf("experiments: layout compare: shadow model: %w", err)
	}
	after, err := shadow.layoutSide(cfg, roiFrac, frames)
	if err != nil {
		return nil, fmt.Errorf("experiments: layout compare (%s): %w", target, err)
	}
	return &LayoutCompare{Dataset: b.Name, Before: before, After: after}, nil
}

func (b *Bundle) layoutSide(cfg workload.Config, roiFrac float64, frames int) (LayoutSide, error) {
	rows, err := b.DABreakdown(cfg, roiFrac, frames)
	if err != nil {
		return LayoutSide{}, err
	}
	return LayoutSide{
		Layout:        b.DM.Layout().String(),
		DataPages:     b.DM.DataPages(),
		OverflowPages: b.DM.OverflowPages(),
		NumRecords:    b.DM.NumNodes(),
		Rows:          rows,
	}, nil
}

// LayoutSweep is one dataset's measurement of the same workload under
// every physical layout: footprint, realized page density, and the full
// per-phase DA decomposition per layout. The compression figure reads
// the packed-vs-connect pair out of it; the rest of the sweep puts the
// encodings in context against the fixed layouts.
type LayoutSweep struct {
	Dataset string
	Sides   []LayoutSide
}

// Side returns the sweep's side for the named layout, or nil.
func (s *LayoutSweep) Side(layout string) *LayoutSide {
	for i := range s.Sides {
		if s.Sides[i].Layout == layout {
			return &s.Sides[i]
		}
	}
	return nil
}

// SweepLayouts measures the DABreakdown query mix under each target
// layout in order, reusing the bundle's own store when its layout is in
// the list and building a shadow store (with its own calibrated cost
// model, as in CompareLayouts) for the rest.
func (b *Bundle) SweepLayouts(cfg workload.Config, roiFrac float64, frames int, targets []dmesh.Layout) (*LayoutSweep, error) {
	sweep := &LayoutSweep{Dataset: b.Name}
	for _, target := range targets {
		side := b
		if b.DM.Layout() != target {
			shadow := &Bundle{Name: b.Name, Terrain: b.Terrain, PM: b.PM, HDoV: b.HDoV}
			var err error
			if shadow.DM, err = b.Terrain.NewDMStoreWithPools(dmesh.StorePools{Layout: target}); err != nil {
				return nil, fmt.Errorf("experiments: layout sweep (%s): %w", target, err)
			}
			if shadow.Model, err = dmesh.NewCostModel(shadow.DM); err != nil {
				return nil, fmt.Errorf("experiments: layout sweep (%s): %w", target, err)
			}
			side = shadow
		}
		s, err := side.layoutSide(cfg, roiFrac, frames)
		if err != nil {
			return nil, fmt.Errorf("experiments: layout sweep (%s): %w", target, err)
		}
		sweep.Sides = append(sweep.Sides, s)
	}
	return sweep, nil
}
