package experiments

import (
	"fmt"
	"sync"

	"dmesh/internal/workload"
)

// TileCacheFigure is the -fig tilecache experiment: the skewed
// multi-client workload answered by the plain engine (every query pays
// its own disk accesses, cold cache per query — the paper's stateless
// methodology) vs the shared mesh-tile cache (overlapping ROIs share
// materialized tiles; only cold tiles touch the store).
type TileCacheFigure struct {
	Name      string
	Clients   int
	PerClient int
	Spots     int
	EPct      float64 // LOD percentile the workload queries at

	// UncachedDA is the mean disk accesses per query of the direct
	// engine, caches dropped before every query.
	UncachedDA float64
	// CachedColdDA is the mean per-query disk accesses of the first
	// epoch through the tile cache, every client racing concurrently
	// from a cold cache and a cold store — includes all materialization.
	CachedColdDA float64
	// CachedSteadyDA is the mean per-query disk accesses of a second,
	// freshly drawn epoch over the same hot spots, caches dropped before
	// every query — the steady-state serving cost.
	CachedSteadyDA float64
	// Speedup is UncachedDA / CachedSteadyDA.
	Speedup float64

	// Cache counters over both epochs.
	ColdMisses    uint64 // tiles materialized
	DedupedMisses uint64 // concurrent lookups that waited on a flight
	Hits          uint64 // lookups served from resident tiles
	Evictions     uint64
	Tiles         int // resident tiles at the end
	Bytes         int // resident bytes at the end
}

// TileCacheSharing measures the shared-tile-cache experiment on a
// dedicated store (the bundle's stores keep their global counters
// untouched). Every cached answer is cross-checked against the direct
// engine's mesh (vertex and triangle counts at the snapped LOD), so a
// correctness regression fails the measurement instead of skewing it.
func (b *Bundle) TileCacheSharing(seed int64, clients, perClient int) (*TileCacheFigure, error) {
	if clients <= 0 {
		clients = 8
	}
	if perClient <= 0 {
		perClient = 20
	}
	const ePct = 0.95
	store, err := b.Terrain.NewDMStore()
	if err != nil {
		return nil, fmt.Errorf("experiments: tilecache store: %w", err)
	}
	cache, err := b.Terrain.NewTileCache(store, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: tilecache: %w", err)
	}
	e := b.Terrain.LODPercentile(ePct)
	hs := workload.HotSpot{
		Clients:   clients,
		PerClient: perClient,
		AreaFrac:  0.04,
		Seed:      seed,
	}
	hs.Defaults()
	fig := &TileCacheFigure{
		Name: b.Name, Clients: hs.Clients, PerClient: hs.PerClient,
		Spots: hs.Spots, EPct: ePct,
	}
	epoch1 := hs.ROIs()
	hs.Epoch = 1
	epoch2 := hs.ROIs()
	queries := float64(hs.Clients * hs.PerClient)

	// Uncached baseline: the paper's cold-cache discipline, one query at
	// a time (epoch 1's exact query set).
	var uncachedDA uint64
	for _, qs := range epoch1 {
		for _, r := range qs {
			if err := store.DropCaches(); err != nil {
				return nil, err
			}
			store.ResetStats()
			if _, err := store.ViewpointIndependent(r, cache.SnapE(e)); err != nil {
				return nil, err
			}
			uncachedDA += store.DiskAccesses()
		}
	}
	fig.UncachedDA = float64(uncachedDA) / queries

	// Epoch 1 through the cache: all clients race from a cold cache and
	// a cold store, so the singleflight dedup is exercised for real. Each
	// query's disk accesses come from its own session (charges sum to the
	// store's true I/O).
	if err := store.DropCaches(); err != nil {
		return nil, err
	}
	daByClient := make([]uint64, hs.Clients)
	errs := make([]error, hs.Clients)
	var wg sync.WaitGroup
	for ci := range epoch1 {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			for _, r := range epoch1[ci] {
				_, qs, err := cache.Query(r, e)
				if err != nil {
					errs[ci] = err
					return
				}
				daByClient[ci] += qs.DA
			}
		}(ci)
	}
	wg.Wait()
	var coldDA uint64
	for ci := range daByClient {
		if errs[ci] != nil {
			return nil, errs[ci]
		}
		coldDA += daByClient[ci]
	}
	fig.CachedColdDA = float64(coldDA) / queries

	// Epoch 2: fresh draws over the same hot spots, measured one query at
	// a time under the same drop-caches discipline as the baseline — the
	// tile cache is the only state allowed to survive. Every answer is
	// cross-checked against the direct engine.
	var steadyDA uint64
	for _, qs := range epoch2 {
		for _, r := range qs {
			if err := store.DropCaches(); err != nil {
				return nil, err
			}
			res, st, err := cache.Query(r, e)
			if err != nil {
				return nil, err
			}
			steadyDA += st.DA
			want, err := store.ViewpointIndependent(r, st.SnappedE)
			if err != nil {
				return nil, err
			}
			if len(res.Vertices) != len(want.Vertices) || len(res.Triangles) != len(want.Triangles) {
				return nil, fmt.Errorf("experiments: tilecache mismatch at %v: %d/%d vertices, %d/%d triangles",
					r, len(res.Vertices), len(want.Vertices), len(res.Triangles), len(want.Triangles))
			}
		}
	}
	fig.CachedSteadyDA = float64(steadyDA) / queries
	if fig.CachedSteadyDA > 0 {
		fig.Speedup = fig.UncachedDA / fig.CachedSteadyDA
	}

	st := cache.Stats()
	fig.ColdMisses = st.Misses
	fig.DedupedMisses = st.DedupedMisses
	fig.Hits = st.Hits
	fig.Evictions = st.Evictions
	fig.Tiles = st.Entries
	fig.Bytes = st.Bytes
	return fig, nil
}
