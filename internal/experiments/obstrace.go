package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"dmesh/internal/cluster"
	"dmesh/internal/geom"
	"dmesh/internal/obs"
	"dmesh/internal/workload"
)

// ObsTraceLeg is one workload leg's per-hop decomposition: the cluster
// query mix traced end to end, every query hard-checked against the
// cross-hop invariant before its spans are merged in. Phases carry the
// exclusive DA and wall time summed over the leg — shard_hop self-DA is
// the accounting gap between headers and shard spans, and stays zero
// while every shard explains itself.
type ObsTraceLeg struct {
	Leg        string          `json:"leg"`
	Queries    int             `json:"queries"`
	DA         uint64          `json:"disk_accesses"`
	TraceDA    uint64          `json:"trace_accounted_da"`
	Redirected int             `json:"redirected"`
	P50Micros  float64         `json:"p50_micros"`
	P99Micros  float64         `json:"p99_micros"`
	Phases     []obs.PhaseStat `json:"phases"`
}

// ObsTraceFigure is the -fig obstrace result for one dataset: the
// distributed-trace decomposition of the cluster query mix, cold and
// steady, with a shard killed mid-workload, and over resumed
// progressive streams.
type ObsTraceFigure struct {
	Name      string        `json:"dataset"`
	Shards    int           `json:"shards"`
	Clients   int           `json:"clients"`
	PerClient int           `json:"per_client"`
	EPct      float64       `json:"lod_percentile"`
	Legs      []ObsTraceLeg `json:"legs"`
}

// traceChecked runs the cross-hop hard invariant for one traced cluster
// query: the root trace's accounted DA equals the independently summed
// shard headers (CheckTotal: Σ phase self-DA == Σ X-DM-DA, no span
// over-claimed), and the shards' own spliced spans account for every
// header access (TraceDA == DA). Any gap fails the figure.
func traceChecked(tr *obs.Trace, da, traceDA uint64) error {
	if err := tr.CheckTotal(da); err != nil {
		return err
	}
	if traceDA != da {
		return fmt.Errorf("shard traces account for %d of %d header disk accesses", traceDA, da)
	}
	return nil
}

// latPct returns the p'th percentile of lats in microseconds.
func latPct(lats []time.Duration, p float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return float64(sorted[int(p*float64(len(sorted)-1))]) / float64(time.Microsecond)
}

// ObsTrace measures the distributed tracing plane over an in-process
// cluster: it warms the shard caches with one HotSpot epoch, then runs
// traced legs of the query mix — a cold-store epoch, a steady repeat, a
// fresh epoch with one shard fail-stopped mid-workload, and resumed
// progressive streams — verifying the cross-hop invariant on every
// single traced query and aggregating the spliced spans into per-phase
// DA/latency rows. The figure hard-fails on any attribution gap.
func (b *Bundle) ObsTrace(seed int64, clients, perClient, shards int) (*ObsTraceFigure, error) {
	if clients <= 0 {
		clients = 8
	}
	if perClient <= 0 {
		perClient = 10
	}
	if shards <= 0 {
		shards = 4
	}
	const ePct = 0.95
	e := b.Terrain.LODPercentile(ePct)
	hs := workload.HotSpot{Clients: clients, PerClient: perClient, AreaFrac: 0.04, Seed: seed}
	hs.Defaults()
	fig := &ObsTraceFigure{
		Name: b.Name, Shards: shards,
		Clients: hs.Clients, PerClient: hs.PerClient, EPct: ePct,
	}
	warm := hs.ROIs()
	hs.Epoch = 1
	epoch2 := hs.ROIs()
	hs.Epoch = 2
	epoch3 := hs.ROIs()

	lc, err := cluster.StartLocal(cluster.LocalConfig{Terrain: b.Terrain, Shards: shards})
	if err != nil {
		return nil, fmt.Errorf("experiments: obstrace cluster: %w", err)
	}
	defer lc.Close()

	// Warm epoch, untraced: populate the shard tile caches.
	for _, qs := range warm {
		for _, r := range qs {
			if _, _, err := lc.Router.Query(r, e); err != nil {
				return nil, fmt.Errorf("experiments: obstrace warmup: %w", err)
			}
		}
	}

	// runLeg plays one epoch sequentially with a fresh trace per query —
	// the invariant is per-query, so batching would only blur it.
	redirects := func() uint64 {
		return lc.Router.Registry().Counter("cluster_router_redirects_total", "").Value()
	}
	runLeg := func(name string, rois [][]geom.Rect) (*ObsTraceLeg, error) {
		leg := &ObsTraceLeg{Leg: name}
		var agg phaseAgg
		var lats []time.Duration
		redirects0 := redirects()
		tr := obs.NewTrace(nil)
		for _, qs := range rois {
			for _, r := range qs {
				tr.Reset()
				t0 := time.Now()
				_, st, err := lc.Router.QueryTraced(r, e, tr)
				lats = append(lats, time.Since(t0))
				if err != nil {
					return nil, fmt.Errorf("experiments: obstrace %s query %v: %w", name, r, err)
				}
				if err := traceChecked(tr, st.DA, st.TraceDA); err != nil {
					return nil, fmt.Errorf("experiments: obstrace %s query %v: %w", name, r, err)
				}
				agg.add(tr)
				leg.Queries++
				leg.DA += st.DA
				leg.TraceDA += st.TraceDA
			}
		}
		leg.Redirected = int(redirects() - redirects0)
		leg.P50Micros = latPct(lats, 0.50)
		leg.P99Micros = latPct(lats, 0.99)
		row := agg.row(name, leg.Queries, leg.DA)
		leg.Phases = row.Phases
		return leg, nil
	}

	// Cold leg: fresh buffer pools, warm tile caches — the serving
	// steady state the cluster figure measures, now with attribution.
	for _, s := range lc.Servers {
		if err := s.Store().DropCaches(); err != nil {
			return nil, err
		}
	}
	leg, err := runLeg("cold", epoch2)
	if err != nil {
		return nil, err
	}
	fig.Legs = append(fig.Legs, *leg)

	// Steady leg: the same epoch again; every tile is resident, so the
	// decomposition shows pure cache/stitch time with zero DA.
	if leg, err = runLeg("steady", epoch2); err != nil {
		return nil, err
	}
	fig.Legs = append(fig.Legs, *leg)

	// Stream leg: resumed progressive streams (resume=0 replays the
	// coarsest rung without transmitting it), traced end to end. The
	// invariant extends over every rung's fan-out.
	streamLeg := ObsTraceLeg{Leg: "stream_resume"}
	{
		var agg phaseAgg
		var lats []time.Duration
		redirects0 := redirects()
		tr := obs.NewTrace(nil)
		for _, r := range epoch2[0] {
			tr.Reset()
			t0 := time.Now()
			_, st, err := lc.Router.StreamTraced(r, e, 0, io.Discard, tr)
			lats = append(lats, time.Since(t0))
			if err != nil {
				return nil, fmt.Errorf("experiments: obstrace stream %v: %w", r, err)
			}
			if err := traceChecked(tr, st.DA, st.TraceDA); err != nil {
				return nil, fmt.Errorf("experiments: obstrace stream %v: %w", r, err)
			}
			agg.add(tr)
			streamLeg.Queries++
			streamLeg.DA += st.DA
			streamLeg.TraceDA += st.TraceDA
		}
		streamLeg.Redirected = int(redirects() - redirects0)
		streamLeg.P50Micros = latPct(lats, 0.50)
		streamLeg.P99Micros = latPct(lats, 0.99)
		streamLeg.Phases = agg.row(streamLeg.Leg, streamLeg.Queries, streamLeg.DA).Phases
	}
	fig.Legs = append(fig.Legs, streamLeg)

	// Killed-shard leg: fail-stop the last shard, then trace a fresh
	// epoch. Redirected tiles land on failover candidates whose caches
	// never saw them, so the leg pays cold materializations — and the
	// invariant must hold on every query anyway: the failover hop's
	// header and trace come from the shard that actually answered.
	lc.KillShard(shards - 1)
	if leg, err = runLeg("shard_killed", epoch3); err != nil {
		return nil, err
	}
	fig.Legs = append(fig.Legs, *leg)

	return fig, nil
}
