// Package experiments reproduces the paper's evaluation (Section 6):
// every figure is a runner that executes the corresponding query workload
// against the Direct Mesh store and the PM and HDoV baselines, measuring
// cold-cache disk accesses averaged over randomly placed regions of
// interest.
package experiments

import (
	"fmt"

	"dmesh"
	"dmesh/internal/geom"
	"dmesh/internal/workload"
)

// Method names a query-processing strategy under test.
type Method string

// The strategies compared in the paper's figures.
const (
	DMSB Method = "DM-SB" // Direct Mesh, single-base
	DMMB Method = "DM-MB" // Direct Mesh, multi-base (viewpoint-dependent only)
	PM   Method = "PM"    // Progressive Mesh on the LOD-quadtree
	HDoV Method = "HDoV"  // HDoV-tree
)

// Bundle holds one dataset with all stores built, ready to measure.
type Bundle struct {
	Name    string
	Terrain *dmesh.Terrain
	DM      *dmesh.DMStore
	PM      *dmesh.PMStore
	HDoV    *dmesh.HDoVStore
	Model   *dmesh.CostModel
}

// BuildBundle generates a dataset and builds every store on it, with the
// DM store on its default layout.
func BuildBundle(name string, size int, seed int64) (*Bundle, error) {
	return BuildBundleLayout(name, size, seed, dmesh.LayoutSTR)
}

// BuildBundleLayout is BuildBundle with an explicit physical layout for
// the DM store (the -layout flag of cmd/dmbench).
func BuildBundleLayout(name string, size int, seed int64, layout dmesh.Layout) (*Bundle, error) {
	t, err := dmesh.Build(dmesh.Config{Dataset: name, Size: size, Seed: seed})
	if err != nil {
		return nil, err
	}
	b := &Bundle{Name: name, Terrain: t}
	if b.DM, err = t.NewDMStoreWithPools(dmesh.StorePools{Layout: layout}); err != nil {
		return nil, fmt.Errorf("experiments: dm store: %w", err)
	}
	if b.Model, err = dmesh.NewCostModel(b.DM); err != nil {
		return nil, fmt.Errorf("experiments: cost model: %w", err)
	}
	if b.PM, err = t.NewPMStore(); err != nil {
		return nil, fmt.Errorf("experiments: pm store: %w", err)
	}
	if b.HDoV, err = t.NewHDoVStore(); err != nil {
		return nil, fmt.Errorf("experiments: hdov store: %w", err)
	}
	return b, nil
}

// Point is one measured (x, average disk accesses) pair.
type Point struct {
	X  float64
	DA float64
}

// Series is one method's curve in a figure.
type Series struct {
	Method Method
	Points []Point
}

// Figure is one reproduced figure: the paper's plot as a set of series.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	Series []Series
}

// coldRun resolves a method to its store and runs fn as a cold measured
// query (dmesh.MeasuredRun: DropCaches + ResetStats + fn + DiskAccesses).
func coldRun(s dmesh.ColdMeasurable, fn func() error) (float64, error) {
	da, err := dmesh.MeasuredRun(s, fn)
	if err != nil {
		return 0, err
	}
	return float64(da), nil
}

// measureUniform runs one cold viewpoint-independent query and returns
// its disk accesses.
func (b *Bundle) measureUniform(m Method, roi geom.Rect, e float64) (float64, error) {
	switch m {
	case DMSB:
		return coldRun(b.DM, func() error {
			_, err := b.DM.ViewpointIndependent(roi, e)
			return err
		})
	case PM:
		return coldRun(b.PM, func() error {
			_, err := b.PM.QueryUniform(roi, e)
			return err
		})
	case HDoV:
		return coldRun(b.HDoV, func() error {
			_, err := b.HDoV.QueryUniform(roi, e)
			return err
		})
	default:
		return 0, fmt.Errorf("experiments: method %q not applicable to viewpoint-independent queries", m)
	}
}

// measurePlane runs one cold viewpoint-dependent query.
func (b *Bundle) measurePlane(m Method, qp geom.QueryPlane) (float64, error) {
	switch m {
	case DMSB:
		return coldRun(b.DM, func() error {
			_, err := b.DM.SingleBase(qp)
			return err
		})
	case DMMB:
		return coldRun(b.DM, func() error {
			_, err := b.DM.MultiBase(qp, b.Model, 0)
			return err
		})
	case PM:
		return coldRun(b.PM, func() error {
			_, err := b.PM.QueryPlane(qp)
			return err
		})
	case HDoV:
		return coldRun(b.HDoV, func() error {
			_, err := b.HDoV.QueryPlane(qp)
			return err
		})
	default:
		return 0, fmt.Errorf("experiments: unknown method %q", m)
	}
}

// avgUniform averages a viewpoint-independent measurement over ROIs.
func (b *Bundle) avgUniform(m Method, rois []geom.Rect, e float64) (float64, error) {
	var sum float64
	for _, roi := range rois {
		da, err := b.measureUniform(m, roi, e)
		if err != nil {
			return 0, err
		}
		sum += da
	}
	return sum / float64(len(rois)), nil
}

// avgPlane averages a viewpoint-dependent measurement, building the plane
// per ROI via mk.
func (b *Bundle) avgPlane(m Method, rois []geom.Rect, mk func(geom.Rect) geom.QueryPlane) (float64, error) {
	var sum float64
	for _, roi := range rois {
		da, err := b.measurePlane(m, mk(roi))
		if err != nil {
			return 0, err
		}
		sum += da
	}
	return sum / float64(len(rois)), nil
}

// EffectiveMaxLOD is the LOD used as "the maximal LOD value of the
// dataset" in the θmax formula (Section 6.2). The absolute maximum is a
// degenerate outlier (the last few collapses merge the entire terrain
// into a handful of points), so the robust 99.5th percentile stands in:
// with it, angle sweeps move the query cube through LOD ranges that
// actually contain points.
func (b *Bundle) EffectiveMaxLOD() float64 { return b.Terrain.LODPercentile(0.995) }

// DensityLOD is the LOD used where the paper says "the LOD of the mesh is
// set to the average LOD value of the dataset ... chosen to allow for a
// mesh with reasonable data density when displayed". The raw mean of
// quadric errors is degenerate (a few huge top-level collapses dominate
// it, leaving meshes of a handful of points), so the workload uses the
// LOD at which the approximation retains a few percent of the points —
// the density the paper describes.
func (b *Bundle) DensityLOD() float64 { return b.Terrain.LODPercentile(0.97) }

// Fig6ROI reproduces Figures 6(a)/6(c): viewpoint-independent queries
// with varying ROI size at the dataset's display-density LOD.
func (b *Bundle) Fig6ROI(cfg workload.Config, roiFracs []float64) (*Figure, error) {
	e := b.DensityLOD()
	fig := &Figure{
		ID:     "6-roi",
		Title:  fmt.Sprintf("Uniform mesh, varying ROI (%s)", b.Name),
		XLabel: "ROI (% of dataset area)",
	}
	for _, m := range []Method{DMSB, PM, HDoV} {
		s := Series{Method: m}
		for _, frac := range roiFracs {
			rois := workload.ROIs(cfg, frac)
			da, err := b.avgUniform(m, rois, e)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: frac * 100, DA: da})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig6LOD reproduces Figures 6(b)/6(d): viewpoint-independent queries
// with varying LOD at a fixed ROI. LOD values are given as percentiles of
// the dataset's LOD distribution (the paper uses the range "that contains
// substantial number of points"; raw errors are too skewed for a linear
// percentage axis).
func (b *Bundle) Fig6LOD(cfg workload.Config, roiFrac float64, lodPcts []float64) (*Figure, error) {
	fig := &Figure{
		ID:     "6-lod",
		Title:  fmt.Sprintf("Uniform mesh, varying LOD (%s)", b.Name),
		XLabel: "LOD (percentile of LOD distribution)",
	}
	rois := workload.ROIs(cfg, roiFrac)
	for _, m := range []Method{DMSB, PM, HDoV} {
		s := Series{Method: m}
		for _, pct := range lodPcts {
			e := b.Terrain.LODPercentile(pct)
			da, err := b.avgUniform(m, rois, e)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: pct * 100, DA: da})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// planeMethods are the strategies compared on viewpoint-dependent queries.
func planeMethods() []Method { return []Method{DMMB, DMSB, PM, HDoV} }

// Fig8ROI reproduces Figures 8(a)/8(d): viewpoint-dependent queries with
// varying ROI size; the angle is half of θmax and the plane starts at the
// dataset's display-density LOD.
func (b *Bundle) Fig8ROI(cfg workload.Config, roiFracs []float64) (*Figure, error) {
	emin := b.DensityLOD()
	maxLOD := b.EffectiveMaxLOD()
	fig := &Figure{
		ID:     "8-roi",
		Title:  fmt.Sprintf("Viewpoint-dependent mesh, varying ROI (%s)", b.Name),
		XLabel: "ROI (% of dataset area)",
	}
	for _, m := range planeMethods() {
		s := Series{Method: m}
		for _, frac := range roiFracs {
			rois := workload.ROIs(cfg, frac)
			da, err := b.avgPlane(m, rois, func(roi geom.Rect) geom.QueryPlane {
				return workload.PlaneFor(roi, emin, maxLOD, 0.5)
			})
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: frac * 100, DA: da})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig8LOD reproduces Figures 8(b)/8(e): viewpoint-dependent queries with
// varying e_min (as LOD-distribution percentiles); the angle stays at half
// of θmax, so e_max follows e_min.
func (b *Bundle) Fig8LOD(cfg workload.Config, roiFrac float64, eminPcts []float64) (*Figure, error) {
	maxLOD := b.EffectiveMaxLOD()
	fig := &Figure{
		ID:     "8-lod",
		Title:  fmt.Sprintf("Viewpoint-dependent mesh, varying LOD (%s)", b.Name),
		XLabel: "e_min (percentile of LOD distribution)",
	}
	rois := workload.ROIs(cfg, roiFrac)
	for _, m := range planeMethods() {
		s := Series{Method: m}
		for _, pct := range eminPcts {
			emin := b.Terrain.LODPercentile(pct)
			da, err := b.avgPlane(m, rois, func(roi geom.Rect) geom.QueryPlane {
				return workload.PlaneFor(roi, emin, maxLOD, 0.5)
			})
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: pct * 100, DA: da})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// Fig8Angle reproduces Figures 8(c)/8(f): viewpoint-dependent queries
// with varying angle (as a fraction of θmax); e_min is fixed low so large
// angles are possible (the paper sets it to 1%).
func (b *Bundle) Fig8Angle(cfg workload.Config, roiFrac float64, angleFracs []float64) (*Figure, error) {
	// The paper fixes e_min to a small value (1% of max) so a wide angle
	// range is possible; the distribution-aware analogue is a moderately
	// fine LOD.
	emin := b.Terrain.LODPercentile(0.85)
	maxLOD := b.EffectiveMaxLOD()
	fig := &Figure{
		ID:     "8-angle",
		Title:  fmt.Sprintf("Viewpoint-dependent mesh, varying angle (%s)", b.Name),
		XLabel: "angle (% of θmax)",
	}
	rois := workload.ROIs(cfg, roiFrac)
	for _, m := range planeMethods() {
		s := Series{Method: m}
		for _, frac := range angleFracs {
			da, err := b.avgPlane(m, rois, func(roi geom.Rect) geom.QueryPlane {
				return workload.PlaneFor(roi, emin, maxLOD, frac)
			})
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: frac * 100, DA: da})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// ConnStats reproduces the in-text numbers of Section 4: the average
// similar-LOD connection-list length versus the average number of all
// possible connection points.
func (b *Bundle) ConnStats() (avgSimilar, avgTotal float64, maxSimilar int) {
	st := b.Terrain.Sequence.Stats()
	return st.AvgSimilarLOD, st.AvgTotal, st.MaxSimilarLOD
}
