package experiments

import (
	"fmt"
	"runtime"
	"time"

	"dmesh"
	"dmesh/internal/workload"
)

// ThroughputPoint is one worker-count measurement of the concurrent
// serving experiment: queries per second, speedup over the 1-worker run,
// and the average per-query disk accesses (which must not depend on the
// worker count — parallelism buys wall-clock, never extra I/O).
type ThroughputPoint struct {
	Workers    int
	Queries    int
	QPS        float64
	Speedup    float64
	DAPerQuery float64
}

// ParallelThroughput measures concurrent query serving against one
// sharded Direct Mesh store: the figure-6(a) uniform workload (random
// ROIs at the display-density LOD) is answered by QueryBatch at each
// worker count, cold each round, and per-query disk accesses come from
// the batch's per-session attribution. repeat repeats the ROI list to
// give each round enough work to time (<= 0 means 20).
func (b *Bundle) ParallelThroughput(cfg workload.Config, roiFrac float64, workerCounts []int, repeat int) ([]ThroughputPoint, error) {
	if repeat <= 0 {
		repeat = 20
	}
	store, err := b.Terrain.NewDMStoreWithPools(dmesh.StorePools{Shards: runtime.GOMAXPROCS(0)})
	if err != nil {
		return nil, fmt.Errorf("experiments: sharded store: %w", err)
	}
	e := b.DensityLOD()
	rois := workload.ROIs(cfg, roiFrac)
	qs := make([]dmesh.BatchQuery, 0, len(rois)*repeat)
	for r := 0; r < repeat; r++ {
		for _, roi := range rois {
			qs = append(qs, dmesh.BatchQuery{ROI: roi, E: e})
		}
	}

	out := make([]ThroughputPoint, 0, len(workerCounts))
	var baseline float64
	for _, w := range workerCounts {
		if w < 1 {
			w = 1
		}
		// Per-query DA comes from the batch's per-session attribution; the
		// pool-level total MeasuredRun returns is redundant with it.
		var elapsed time.Duration
		var da uint64
		if _, err := dmesh.MeasuredRun(store, func() error {
			start := time.Now()
			results := store.QueryBatch(qs, w)
			elapsed = time.Since(start)
			for i, r := range results {
				if r.Err != nil {
					return fmt.Errorf("experiments: throughput query %d: %w", i, r.Err)
				}
				da += r.DA
			}
			return nil
		}); err != nil {
			return nil, err
		}
		p := ThroughputPoint{
			Workers:    w,
			Queries:    len(qs),
			QPS:        float64(len(qs)) / elapsed.Seconds(),
			DAPerQuery: float64(da) / float64(len(qs)),
		}
		if baseline == 0 {
			baseline = p.QPS
		}
		p.Speedup = p.QPS / baseline
		out = append(out, p)
	}
	return out, nil
}
