package experiments

import (
	"bytes"
	"fmt"

	"dmesh/internal/dm"
	"dmesh/internal/stream"
	"dmesh/internal/workload"
)

// StreamFigure is the -fig stream experiment: the wire cost of the
// progressive stream over a camera flyover — how few bytes buy the
// first renderable frame versus the exact answer, and what the
// progressivity overhead is against shipping the exact answer in one
// shot.
type StreamFigure struct {
	Name    string  `json:"dataset"`
	Frames  int     `json:"frames"`
	Overlap float64 `json:"overlap"`
	EPct    float64 `json:"lod_percentile"`

	Batches  int     `json:"batches"`   // ladder rungs per stream
	SnappedE float64 `json:"snapped_e"` // the target rung the streams decode to

	// Per-stream means over the flyover's frames.
	MeanBytesToFirstFrame float64 `json:"mean_bytes_to_first_frame"`
	MeanBytesToExact      float64 `json:"mean_bytes_to_exact"`
	// FirstFrameFraction = MeanBytesToFirstFrame / MeanBytesToExact: the
	// slice of the full transfer after which the client can render.
	FirstFrameFraction float64 `json:"first_frame_fraction"`

	// MeanBytesSingleShot is the same answer encoded as one batch at the
	// target rung — the non-progressive baseline — and
	// ProgressiveOverhead the multiplicative wire cost of progressivity
	// (exact bytes / single-shot bytes).
	MeanBytesSingleShot float64 `json:"mean_bytes_single_shot"`
	ProgressiveOverhead float64 `json:"progressive_overhead"`

	// MeanBatchBytes[i] is the mean encoded size of batch i (coarse
	// first) across the flyover.
	MeanBatchBytes []float64 `json:"mean_batch_bytes"`

	// MeanDAPerStream is the mean store disk accesses one stream's rung
	// queries cost through a shared tile cache, cold store per frame.
	MeanDAPerStream float64 `json:"mean_da_per_stream"`
}

// Streaming measures the progressive wire codec over a CameraPath
// flyover: every frame's ROI is encoded as a full coarse-to-fine stream
// through a shared tile cache, decoded back, and verified exactly equal
// (canonical mesh serialization) to the direct store answer at the
// snapped LOD — a correctness regression fails the run instead of
// skewing it.
func (b *Bundle) Streaming(seed int64, frames int, overlap, lodPct float64) (*StreamFigure, error) {
	if frames <= 0 {
		frames = 24
	}
	store, err := b.Terrain.NewDMStore()
	if err != nil {
		return nil, fmt.Errorf("experiments: stream store: %w", err)
	}
	cache, err := b.Terrain.NewTileCache(store, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: stream cache: %w", err)
	}
	band, snapped := cache.Grid().SnapE(b.Terrain.LODPercentile(lodPct))
	levels, err := stream.LevelsFor(cache.Grid().Ladder(), band)
	if err != nil {
		return nil, err
	}
	planes := workload.CameraPath{
		Frames:  frames,
		Overlap: overlap,
		Seed:    seed,
		EMin:    snapped,
	}.Planes()

	fig := &StreamFigure{
		Name: b.Name, Frames: len(planes), Overlap: overlap, EPct: lodPct,
		Batches: len(levels), SnappedE: snapped,
		MeanBatchBytes: make([]float64, len(levels)),
	}
	var sumFirst, sumExact, sumSingle, sumDA float64
	for _, qp := range planes {
		roi := qp.R
		// Paper discipline: each frame's stream is measured cold-store
		// (the tile cache itself stays warm across frames, exactly like
		// the serving path).
		if err := store.DropCaches(); err != nil {
			return nil, err
		}
		store.ResetStats()
		meshes := make([]*dm.Result, 0, len(levels))
		var da uint64
		for _, e := range levels {
			res, qs, err := cache.Query(roi, e)
			if err != nil {
				return nil, fmt.Errorf("experiments: stream rung query: %w", err)
			}
			da += qs.DA
			meshes = append(meshes, res)
		}
		st, err := stream.Encode(roi, levels, meshes)
		if err != nil {
			return nil, err
		}
		sumFirst += float64(st.BytesToFirstFrame())
		sumExact += float64(st.BytesToExact())
		sumDA += float64(da)
		for i, fr := range st.Frames {
			fig.MeanBatchBytes[i] += float64(len(fr))
		}

		// Oracle: the decoded full stream must equal the direct answer.
		dec := stream.NewDecoder()
		var body bytes.Buffer
		if _, err := st.WriteTo(&body, -1); err != nil {
			return nil, err
		}
		if err := dec.Attach(&body); err != nil {
			return nil, err
		}
		for !dec.Done() {
			if _, _, err := dec.Next(); err != nil {
				return nil, fmt.Errorf("experiments: stream decode: %w", err)
			}
		}
		direct, err := store.ViewpointIndependent(roi, snapped)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(dm.CanonicalMesh(dec.Mesh()), dm.CanonicalMesh(direct)) {
			return nil, fmt.Errorf("experiments: streamed mesh at %v differs from the direct answer", roi)
		}

		// Single-shot baseline: the same answer as one batch.
		single, err := stream.Encode(roi, levels[len(levels)-1:], meshes[len(meshes)-1:])
		if err != nil {
			return nil, err
		}
		sumSingle += float64(single.BytesToExact())
	}
	n := float64(len(planes))
	fig.MeanBytesToFirstFrame = sumFirst / n
	fig.MeanBytesToExact = sumExact / n
	fig.MeanBytesSingleShot = sumSingle / n
	fig.MeanDAPerStream = sumDA / n
	if fig.MeanBytesToExact > 0 {
		fig.FirstFrameFraction = fig.MeanBytesToFirstFrame / fig.MeanBytesToExact
	}
	if fig.MeanBytesSingleShot > 0 {
		fig.ProgressiveOverhead = fig.MeanBytesToExact / fig.MeanBytesSingleShot
	}
	for i := range fig.MeanBatchBytes {
		fig.MeanBatchBytes[i] /= n
	}
	return fig, nil
}
