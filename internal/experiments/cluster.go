package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"dmesh/internal/cluster"
	"dmesh/internal/geom"
	"dmesh/internal/workload"
)

// ClusterShardLoad is one shard's share of a scale-out measurement,
// read from the shard's own obs counters (per-shard DA attribution
// survives the fan-out).
type ClusterShardLoad struct {
	Shard         int     `json:"shard"`
	Patches       uint64  `json:"patches_served"`
	PatchDA       uint64  `json:"patch_disk_accesses"`
	DAPerPatch    float64 `json:"da_per_patch"`
	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	ResidentTiles int     `json:"resident_tiles"`
}

// ClusterPoint is one shard-count measurement of the scale-out figure.
type ClusterPoint struct {
	Shards int `json:"shards"`
	// Queries is the timed query count: Rounds full epochs. The DA
	// figures come from one additional cold-store epoch before it.
	Queries int `json:"queries"`
	Rounds  int `json:"rounds"`

	QPS     float64 `json:"qps"`
	Speedup float64 `json:"speedup"` // QPS relative to the 1-shard point

	P50Micros float64 `json:"p50_micros"`
	P99Micros float64 `json:"p99_micros"`

	// DAPerQuery is the mean store I/O per measured query, summed over
	// every shard the query fanned out to — comparable to the
	// single-node tile-cache steady figure.
	DAPerQuery float64 `json:"da_per_query"`
	// MeanShardDAPerQuery is DAPerQuery averaged over the shards that
	// served it: the I/O one shard pays per cluster query.
	MeanShardDAPerQuery float64 `json:"mean_shard_da_per_query"`

	Redirects  uint64 `json:"redirects"`
	HotKeys    int    `json:"hot_keys_replicated"`
	Replicated int    `json:"replica_warmups"`

	ShardLoads []ClusterShardLoad `json:"shard_loads"`
}

// ClusterFigure is the -fig cluster experiment: QPS and tail latency vs
// shard count under the skewed HotSpot workload, with the single-node
// tile-cache steady-state DA as the reference the per-shard cost must
// stay within noise of.
type ClusterFigure struct {
	Name      string  `json:"dataset"`
	Clients   int     `json:"clients"`
	PerClient int     `json:"per_client"`
	Spots     int     `json:"spots"`
	EPct      float64 `json:"lod_percentile"`

	// SingleNodeSteadyDA is the steady-state mean DA/query of one
	// process's tile cache over the same workload (the tilecache
	// figure's discipline) — the scale-out must not inflate it.
	SingleNodeSteadyDA float64 `json:"single_node_steady_da"`

	Points []ClusterPoint `json:"points"`
}

// ClusterScaleOut measures the sharded tile-serving cluster: for each
// shard count it starts an in-process cluster (real HTTP, real wire
// codec), warms it with one HotSpot epoch, replicates the hot tiles,
// then times a second, freshly drawn epoch with all clients querying
// concurrently. Every measured answer is cross-checked against a
// single-node tile cache (vertex/triangle counts at the snapped LOD),
// so a correctness regression fails the run instead of skewing it.
func (b *Bundle) ClusterScaleOut(seed int64, clients, perClient int, shardCounts []int) (*ClusterFigure, error) {
	if clients <= 0 {
		clients = 8
	}
	if perClient <= 0 {
		perClient = 20
	}
	if len(shardCounts) == 0 {
		shardCounts = []int{1, 2, 4, 8}
	}
	const ePct = 0.95
	e := b.Terrain.LODPercentile(ePct)
	hs := workload.HotSpot{
		Clients:   clients,
		PerClient: perClient,
		AreaFrac:  0.04,
		Seed:      seed,
	}
	hs.Defaults()
	fig := &ClusterFigure{
		Name: b.Name, Clients: hs.Clients, PerClient: hs.PerClient,
		Spots: hs.Spots, EPct: ePct,
	}
	epoch1 := hs.ROIs()
	hs.Epoch = 1
	epoch2 := hs.ROIs()
	queries := hs.Clients * hs.PerClient

	// Single-node reference: a fresh tile cache over its own store, same
	// warm-then-measure discipline. Its epoch-2 meshes double as the
	// correctness oracle for every cluster answer.
	refStore, err := b.Terrain.NewDMStore()
	if err != nil {
		return nil, fmt.Errorf("experiments: cluster reference store: %w", err)
	}
	refCache, err := b.Terrain.NewTileCache(refStore, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: cluster reference cache: %w", err)
	}
	if err := refStore.DropCaches(); err != nil {
		return nil, err
	}
	for _, qs := range epoch1 {
		for _, r := range qs {
			if _, _, err := refCache.Query(r, e); err != nil {
				return nil, err
			}
		}
	}
	oracles := make(map[geom.Rect]meshOracle)
	var refDA uint64
	for _, qs := range epoch2 {
		for _, r := range qs {
			res, st, err := refCache.Query(r, e)
			if err != nil {
				return nil, err
			}
			refDA += st.DA
			oracles[r] = meshOracle{vertices: len(res.Vertices), triangles: len(res.Triangles)}
		}
	}
	fig.SingleNodeSteadyDA = float64(refDA) / float64(queries)

	var baselineQPS float64
	for _, n := range shardCounts {
		if n < 1 {
			n = 1
		}
		lc, err := cluster.StartLocal(cluster.LocalConfig{Terrain: b.Terrain, Shards: n})
		if err != nil {
			return nil, fmt.Errorf("experiments: cluster with %d shards: %w", n, err)
		}
		pt, err := b.measureClusterPoint(lc, n, epoch1, epoch2, e, oracles)
		lc.Close()
		if err != nil {
			return nil, err
		}
		// Collect the torn-down cluster before the next point: without
		// this, later (larger) points are also measured against the
		// accumulated garbage of earlier ones — a confound monotone in
		// shard count.
		runtime.GC()
		if baselineQPS == 0 {
			baselineQPS = pt.QPS
		}
		pt.Speedup = pt.QPS / baselineQPS
		fig.Points = append(fig.Points, *pt)
	}
	return fig, nil
}

// meshOracle is the single-node answer shape for one ROI; every cluster
// answer must match it exactly.
type meshOracle struct{ vertices, triangles int }

func (b *Bundle) measureClusterPoint(lc *cluster.LocalCluster, n int, epoch1, epoch2 [][]geom.Rect, e float64, oracles map[geom.Rect]meshOracle) (*ClusterPoint, error) {
	// Warm epoch: populate the shard caches, then replicate the hot set
	// onto R=2 so skewed reads can spread.
	for _, qs := range epoch1 {
		for _, r := range qs {
			if _, _, err := lc.Router.Query(r, e); err != nil {
				return nil, fmt.Errorf("experiments: cluster warmup: %w", err)
			}
		}
	}
	rb, err := lc.Router.Rebalance(16, 2)
	if err != nil {
		return nil, err
	}
	// Cold-store discipline for the measured epoch: only the tile caches
	// may carry state across the epoch boundary, exactly like the
	// single-node tile-cache figure.
	for _, s := range lc.Servers {
		if err := s.Store().DropCaches(); err != nil {
			return nil, err
		}
	}
	patches0 := make([]uint64, len(lc.Servers))
	patchDA0 := make([]uint64, len(lc.Servers))
	for i, s := range lc.Servers {
		patches0[i], patchDA0[i] = s.PatchTotals()
	}
	redirects0 := lc.Router.Registry().Counter("cluster_router_redirects_total", "").Value()

	// runEpoch plays epoch2 with every client as a goroutine issuing its
	// stream in order, cross-checking each answer against the oracle and
	// recording per-query latencies.
	type clientResult struct {
		da        uint64
		latencies []time.Duration
		err       error
	}
	runEpoch := func() ([]clientResult, time.Duration, error) {
		results := make([]clientResult, len(epoch2))
		var wg sync.WaitGroup
		start := time.Now()
		for ci := range epoch2 {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				cr := &results[ci]
				for _, r := range epoch2[ci] {
					t0 := time.Now()
					res, st, err := lc.Router.Query(r, e)
					cr.latencies = append(cr.latencies, time.Since(t0))
					if err != nil {
						cr.err = fmt.Errorf("experiments: cluster query %v: %w", r, err)
						return
					}
					cr.da += st.DA
					want := oracles[r]
					if len(res.Vertices) != want.vertices || len(res.Triangles) != want.triangles {
						cr.err = fmt.Errorf("experiments: cluster mismatch at %v: %d/%d vertices, %d/%d triangles",
							r, len(res.Vertices), want.vertices, len(res.Triangles), want.triangles)
						return
					}
				}
			}(ci)
		}
		wg.Wait()
		elapsed := time.Since(start)
		for ci := range results {
			if results[ci].err != nil {
				return nil, 0, results[ci].err
			}
		}
		return results, elapsed, nil
	}

	// DA epoch: one cold-store pass — this is the pass comparable to the
	// single-node tile-cache figure, so the DA columns come from it.
	daResults, _, err := runEpoch()
	if err != nil {
		return nil, err
	}
	var da uint64
	daQueries := 0
	for ci := range daResults {
		da += daResults[ci].da
		daQueries += len(daResults[ci].latencies)
	}
	pt := &ClusterPoint{
		Shards:     n,
		DAPerQuery: float64(da) / float64(daQueries),
		Redirects:  lc.Router.Registry().Counter("cluster_router_redirects_total", "").Value() - redirects0,
		HotKeys:    rb.HotKeys,
		Replicated: rb.Replicated,
	}
	pt.MeanShardDAPerQuery = pt.DAPerQuery / float64(n)
	for i, s := range lc.Servers {
		patches, patchDA := s.PatchTotals()
		patches -= patches0[i]
		patchDA -= patchDA0[i]
		cs := s.Cache().Stats()
		load := ClusterShardLoad{
			Shard: i, Patches: patches, PatchDA: patchDA,
			CacheHits: cs.Hits, CacheMisses: cs.Misses, ResidentTiles: cs.Entries,
		}
		if patches > 0 {
			load.DAPerPatch = float64(patchDA) / float64(patches)
		}
		pt.ShardLoads = append(pt.ShardLoads, load)
	}

	// Timed epochs: the caches are now steady, so repeat the epoch a few
	// times and pool the latencies — one epoch is only a second or two of
	// wall clock, short enough for a single scheduler stall to dominate
	// the QPS number on a small host.
	const rounds = 3
	runtime.GC()
	var lats []time.Duration
	var elapsed time.Duration
	queries := 0
	for round := 0; round < rounds; round++ {
		results, d, err := runEpoch()
		if err != nil {
			return nil, err
		}
		elapsed += d
		for ci := range results {
			lats = append(lats, results[ci].latencies...)
			queries += len(results[ci].latencies)
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return float64(lats[i]) / float64(time.Microsecond)
	}
	pt.Queries = queries
	pt.Rounds = rounds
	pt.QPS = float64(queries) / elapsed.Seconds()
	pt.P50Micros = pct(0.50)
	pt.P99Micros = pct(0.99)
	return pt, nil
}
