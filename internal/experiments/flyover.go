package experiments

import (
	"fmt"

	"dmesh"
	"dmesh/internal/workload"
)

// FlyoverPoint is one overlap setting of the temporal-coherence
// experiment: the mean per-frame disk accesses of four engines answering
// the same camera path, with frame 0 (cold for every engine) excluded.
type FlyoverPoint struct {
	// Overlap is the configured frame-to-frame overlap; Realized is the
	// mean overlap of the generated path (turns push it off slightly).
	Overlap, Realized float64
	// FullColdDA re-runs the full query with caches dropped before every
	// frame — the paper's stateless measurement methodology.
	FullColdDA float64
	// FullWarmDA re-runs the full query against a shared warm buffer
	// pool — the stateless engine's best case, and the baseline the
	// incremental engine must beat.
	FullWarmDA float64
	// IncSBDA and IncMBDA are the coherent engine's single-base and
	// multi-base frames.
	IncSBDA, IncMBDA float64
	// IncSBFull and IncMBFull count frames past the first where the cost
	// model fell back to a full query instead of the delta plan.
	IncSBFull, IncMBFull int
}

// FlyoverFigure is the -fig flyover experiment: mean disk accesses per
// frame along a terrain flyover, full-query engines vs the coherent
// (incremental) engine, swept over the frame-to-frame overlap.
type FlyoverFigure struct {
	Name       string
	Frames     int
	Pools      dmesh.StorePools
	EMin, EMax float64
	Points     []FlyoverPoint
}

// flyoverPools deliberately constrains the buffer pools: the coherence
// win exists when frames compete for buffer space (a server answering
// many flyovers at once), because a big enough pool answers warm
// full queries from memory and there is nothing left to save.
func flyoverPools() dmesh.StorePools {
	return dmesh.StorePools{Data: 64, Overflow: 16, Index: 64, IDIndex: 16}
}

// Flyover measures the temporal-coherence experiment on this bundle's
// terrain. Every engine answers the identical camera path on a dedicated
// memory-constrained store; the incremental passes are cross-checked
// frame by frame against the full-query mesh (vertex and triangle
// counts), so a correctness regression fails the measurement instead of
// skewing it.
func (b *Bundle) Flyover(cfg workload.Config, overlaps []float64, frames int) (*FlyoverFigure, error) {
	if frames < 2 {
		frames = 40
	}
	store, err := b.Terrain.NewDMStoreWithPools(flyoverPools())
	if err != nil {
		return nil, fmt.Errorf("experiments: flyover store: %w", err)
	}
	model, err := dmesh.NewCostModel(store)
	if err != nil {
		return nil, fmt.Errorf("experiments: flyover cost model: %w", err)
	}
	fig := &FlyoverFigure{
		Name:   b.Name,
		Frames: frames,
		Pools:  flyoverPools(),
		EMin:   b.Terrain.LODPercentile(0.5),
		EMax:   b.Terrain.LODPercentile(0.95),
	}

	for _, overlap := range overlaps {
		cp := workload.CameraPath{
			Frames:  frames,
			Overlap: overlap,
			Axis:    1,
			EMin:    fig.EMin,
			EMax:    fig.EMax,
			Seed:    cfg.Seed,
		}
		planes := cp.Planes()
		pt := FlyoverPoint{Overlap: overlap, Realized: workload.MeanOverlap(planes)}
		mean := float64(len(planes) - 1)

		// Full query, cold cache every frame (the stateless methodology
		// of every other figure).
		for i, qp := range planes {
			if i == 0 {
				continue
			}
			qp := qp
			da, err := dmesh.MeasuredRun(store, func() error {
				_, err := store.SingleBase(qp)
				return err
			})
			if err != nil {
				return nil, err
			}
			pt.FullColdDA += float64(da) / mean
		}

		// Full query against a shared warm pool; its per-frame meshes are
		// the oracle for the incremental single-base pass.
		type counts struct{ verts, tris int }
		oracleSB := make([]counts, len(planes))
		if err := store.DropCaches(); err != nil {
			return nil, err
		}
		sess := store.NewSession()
		for i, qp := range planes {
			sess.ResetStats()
			res, err := sess.SingleBase(qp)
			if err != nil {
				return nil, err
			}
			oracleSB[i] = counts{len(res.Vertices), len(res.Triangles)}
			if i > 0 {
				pt.FullWarmDA += float64(sess.DiskAccesses()) / mean
			}
		}

		// The multi-base mesh can differ slightly from the single-base one
		// (lifted edges whose representative chains leave the strip volume
		// are dropped), so the multi-base pass gets its own oracle.
		oracleMB := make([]counts, len(planes))
		for i, qp := range planes {
			res, err := sess.MultiBase(qp, model, 0)
			if err != nil {
				return nil, err
			}
			oracleMB[i] = counts{len(res.Vertices), len(res.Triangles)}
		}

		// Coherent engine, single-base and multi-base frames.
		incremental := func(multiBase bool) (float64, int, error) {
			if err := store.DropCaches(); err != nil {
				return 0, 0, err
			}
			cs := store.NewCoherentSession(model)
			var da float64
			var full int
			for i, qp := range planes {
				var res *dmesh.Result
				var st dmesh.FrameStats
				var err error
				oracle := oracleSB[i]
				if multiBase {
					res, st, err = cs.FrameMultiBase(qp, 0)
					oracle = oracleMB[i]
				} else {
					res, st, err = cs.Frame(qp)
				}
				if err != nil {
					return 0, 0, err
				}
				if got := (counts{len(res.Vertices), len(res.Triangles)}); got != oracle {
					return 0, 0, fmt.Errorf(
						"experiments: flyover overlap %g frame %d: incremental mesh (%d verts, %d tris) != full query (%d, %d)",
						overlap, i, got.verts, got.tris, oracle.verts, oracle.tris)
				}
				if i > 0 {
					da += float64(st.DA) / mean
					if st.Full {
						full++
					}
				}
			}
			return da, full, nil
		}
		if pt.IncSBDA, pt.IncSBFull, err = incremental(false); err != nil {
			return nil, err
		}
		if pt.IncMBDA, pt.IncMBFull, err = incremental(true); err != nil {
			return nil, err
		}

		fig.Points = append(fig.Points, pt)
	}
	return fig, nil
}
