package experiments

import (
	"fmt"
	"time"

	"dmesh"
	"dmesh/internal/obs"
	"dmesh/internal/workload"
)

// DABreakdownRow is one query kind's aggregate phase decomposition over
// its workload: the total disk accesses and, per phase, the exclusive DA,
// wall time, and span count summed across every query. The decomposition
// is exact, not sampled: each query's trace is checked (CheckTotal)
// against its independently counted DA before being merged in, so a row's
// phase DAs always sum to its TotalDA.
type DABreakdownRow struct {
	Kind    string
	Queries int
	TotalDA uint64
	Phases  []obs.PhaseStat
}

// phaseAgg accumulates per-phase exclusive costs across many traces.
type phaseAgg struct {
	da    [obs.NumPhases]uint64
	dur   [obs.NumPhases]time.Duration
	spans [obs.NumPhases]int
}

func (a *phaseAgg) add(tr *obs.Trace) {
	for _, ps := range tr.PhaseStats() {
		a.da[ps.Phase] += ps.DA
		a.dur[ps.Phase] += ps.Dur
		a.spans[ps.Phase] += ps.Spans
	}
}

func (a *phaseAgg) row(kind string, queries int, total uint64) DABreakdownRow {
	r := DABreakdownRow{Kind: kind, Queries: queries, TotalDA: total}
	for p := obs.Phase(0); p < obs.NumPhases; p++ {
		if a.spans[p] == 0 {
			continue
		}
		r.Phases = append(r.Phases, obs.PhaseStat{
			Phase: p, Name: p.String(),
			DA: a.da[p], Dur: a.dur[p], Spans: a.spans[p],
		})
	}
	return r
}

// DABreakdown decomposes the paper's query mix into per-phase disk
// accesses: the figure-6 uniform workload, the figure-8 single-base and
// multi-base workloads (cold per query, the stateless methodology), a
// coherent flyover (frames after the first), and the tile-cache serving
// path (charge-based trace over a fresh cache). Every traced query is
// cross-checked against its session total; any attribution gap fails the
// figure rather than skewing it.
func (b *Bundle) DABreakdown(cfg workload.Config, roiFrac float64, frames int) ([]DABreakdownRow, error) {
	if frames < 2 {
		frames = 16
	}
	rois := workload.ROIs(cfg, roiFrac)
	e := b.DensityLOD()
	emin, maxLOD := b.DensityLOD(), b.EffectiveMaxLOD()

	var rows []DABreakdownRow

	// Cold store-level kinds share one trace installed on the DM store.
	tr := obs.NewTrace(b.DM.DiskAccesses)
	b.DM.SetTrace(tr)
	defer b.DM.SetTrace(nil)
	coldKinds := []struct {
		kind string
		run  func(roi dmesh.Rect) error
	}{
		{"uniform", func(roi dmesh.Rect) error {
			_, err := b.DM.ViewpointIndependent(roi, e)
			return err
		}},
		{"single-base", func(roi dmesh.Rect) error {
			_, err := b.DM.SingleBase(workload.PlaneFor(roi, emin, maxLOD, 0.5))
			return err
		}},
		{"multi-base", func(roi dmesh.Rect) error {
			_, err := b.DM.MultiBase(workload.PlaneFor(roi, emin, maxLOD, 0.5), b.Model, 0)
			return err
		}},
	}
	for _, k := range coldKinds {
		var agg phaseAgg
		var total uint64
		for i, roi := range rois {
			roi := roi
			tr.Reset()
			da, err := dmesh.MeasuredRun(b.DM, func() error { return k.run(roi) })
			if err != nil {
				return nil, fmt.Errorf("experiments: dabreakdown %s query %d: %w", k.kind, i, err)
			}
			if err := tr.CheckTotal(da); err != nil {
				return nil, fmt.Errorf("experiments: dabreakdown %s query %d: %w", k.kind, i, err)
			}
			agg.add(tr)
			total += da
		}
		rows = append(rows, agg.row(k.kind, len(rois), total))
	}
	b.DM.SetTrace(nil)

	// Coherent flyover: the incremental engine's frames past the cold
	// first one, traced through the session's own counters.
	cp := workload.CameraPath{
		Frames: frames, Overlap: 0.6, Axis: 1,
		EMin: b.Terrain.LODPercentile(0.5), EMax: b.Terrain.LODPercentile(0.95),
		Seed: cfg.Seed,
	}
	planes := cp.Planes()
	if err := b.DM.DropCaches(); err != nil {
		return nil, err
	}
	b.DM.ResetStats()
	cs := b.DM.NewCoherentSession(b.Model)
	ctr := cs.EnableTrace()
	var cagg phaseAgg
	var ctotal uint64
	var cqueries int
	for i, qp := range planes {
		_, st, err := cs.Frame(qp)
		if err != nil {
			return nil, fmt.Errorf("experiments: dabreakdown coherent frame %d: %w", i, err)
		}
		if err := ctr.CheckTotal(st.DA); err != nil {
			return nil, fmt.Errorf("experiments: dabreakdown coherent frame %d: %w", i, err)
		}
		if i == 0 {
			continue // cold frame: every engine pays it, the figure is about steady state
		}
		cagg.add(ctr)
		ctotal += st.DA
		cqueries++
	}
	rows = append(rows, cagg.row("coherent", cqueries, ctotal))

	// Tile-cache serving path: a fresh cache answers the uniform workload;
	// the charge-based trace attributes exactly the DA the cache charges
	// each query (cold materializations; hits and deduped waits are free).
	cache, err := b.Terrain.NewTileCache(b.DM, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: dabreakdown tile cache: %w", err)
	}
	if err := b.DM.DropCaches(); err != nil {
		return nil, err
	}
	b.DM.ResetStats()
	qtr := obs.NewTrace(nil)
	var tagg phaseAgg
	var ttotal uint64
	for i, roi := range rois {
		qtr.Reset()
		_, qs, err := cache.QueryTraced(roi, e, qtr)
		if err != nil {
			return nil, fmt.Errorf("experiments: dabreakdown tilecache query %d: %w", i, err)
		}
		if err := qtr.CheckTotal(qs.DA); err != nil {
			return nil, fmt.Errorf("experiments: dabreakdown tilecache query %d: %w", i, err)
		}
		tagg.add(qtr)
		ttotal += qs.DA
	}
	rows = append(rows, tagg.row("tilecache", len(rois), ttotal))

	return rows, nil
}
