// Package rtree implements a disk-resident 3D R*-tree (Beckmann, Kriegel,
// Schneider, Seeger; SIGMOD 1990) over (x, y, e) boxes — the index the
// paper builds Direct Mesh on ("we use R*-tree in this paper"). It supports
// dynamic insertion with forced reinsert and the R* split, Sort-Tile-
// Recursive bulk loading, range queries, and node-geometry enumeration for
// the disk-access cost model of Section 5.3.
package rtree

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"dmesh/internal/geom"
	"dmesh/internal/storage/pager"
)

const (
	magic    = 0x52545245 // "RTRE"
	metaPage = pager.PageID(0)
)

// ErrCorrupt is the sentinel wrapped by every structural-inconsistency
// error: a page that is not a valid node, an impossible entry count, a
// parent/child mismatch, or a traversal deeper than the tree's height
// (a child-pointer cycle). A corrupted index page — which checksummed
// backends turn into a read error but plain backends deliver verbatim —
// surfaces as an error wrapping ErrCorrupt on query paths, never a
// panic or an endless descent.
var ErrCorrupt = errors.New("rtree: corrupt structure")

// Tree is a paged 3D R*-tree. All node accesses go through the pager, so
// the pager's Stats.Reads is the number of index disk accesses.
type Tree struct {
	p      *pager.Pager
	root   pager.PageID
	height int // 1 = root is a leaf
	count  int64
}

// Create initializes an empty tree on an empty pager.
func Create(p *pager.Pager) (*Tree, error) {
	if p.NumPages() != 0 {
		return nil, errors.New("rtree: Create requires an empty pager")
	}
	meta, err := p.Allocate()
	if err != nil {
		return nil, err
	}
	defer meta.Unpin()
	t := &Tree{p: p, height: 1}
	root := &node{leaf: true}
	if err := t.allocNode(root); err != nil {
		return nil, err
	}
	t.root = root.id
	t.writeMeta(meta.Data())
	meta.MarkDirty()
	return t, nil
}

// Open attaches to an existing tree.
func Open(p *pager.Pager) (*Tree, error) {
	meta, err := p.Get(metaPage)
	if err != nil {
		return nil, fmt.Errorf("rtree: open: %w", err)
	}
	defer meta.Unpin()
	d := meta.Data()
	if binary.LittleEndian.Uint32(d[0:]) != magic {
		return nil, errors.New("rtree: bad magic")
	}
	return &Tree{
		p:      p,
		root:   pager.PageID(binary.LittleEndian.Uint32(d[4:])),
		height: int(binary.LittleEndian.Uint32(d[8:])),
		count:  int64(binary.LittleEndian.Uint64(d[12:])),
	}, nil
}

func (t *Tree) writeMeta(d []byte) {
	binary.LittleEndian.PutUint32(d[0:], magic)
	binary.LittleEndian.PutUint32(d[4:], uint32(t.root))
	binary.LittleEndian.PutUint32(d[8:], uint32(t.height))
	binary.LittleEndian.PutUint64(d[12:], uint64(t.count))
}

func (t *Tree) syncMeta() error {
	meta, err := t.p.Get(metaPage)
	if err != nil {
		return err
	}
	t.writeMeta(meta.Data())
	meta.MarkDirty()
	meta.Unpin()
	return nil
}

// WithSession returns a read-only view of the tree whose page accesses
// are additionally attributed to s (per-query disk-access accounting).
// The view shares the underlying pager pool; do not Insert/Delete through
// it.
func (t *Tree) WithSession(s *pager.Session) *Tree {
	cp := *t
	cp.p = t.p.WithSession(s)
	return &cp
}

// Len returns the number of stored data entries.
func (t *Tree) Len() int64 { return t.count }

// Height returns the number of levels (1 = single leaf).
func (t *Tree) Height() int { return t.height }

// Search calls fn for every data entry whose box intersects query,
// stopping early if fn returns false. The traversal order is the on-disk
// entry order (deterministic).
func (t *Tree) Search(query geom.Box, fn func(ref int64, box geom.Box) bool) error {
	_, err := t.search(t.root, query, fn, t.height)
	return err
}

// search descends below id; depth is the number of levels that may
// remain (the guard that turns a corrupted child-pointer cycle into an
// ErrCorrupt instead of unbounded recursion).
func (t *Tree) search(id pager.PageID, query geom.Box, fn func(int64, geom.Box) bool, depth int) (bool, error) {
	if depth < 1 {
		return false, fmt.Errorf("%w: traversal exceeds height %d at node %d", ErrCorrupt, t.height, id)
	}
	n, err := t.readNode(id)
	if err != nil {
		return false, err
	}
	for _, e := range n.entries {
		if !e.box.Intersects(query) {
			continue
		}
		if n.leaf {
			if !fn(e.ref, e.box) {
				return false, nil
			}
		} else {
			cont, err := t.search(pager.PageID(e.ref), query, fn, depth-1)
			if err != nil || !cont {
				return cont, err
			}
		}
	}
	return true, nil
}

// Insert adds a data entry with the given box and reference.
func (t *Tree) Insert(box geom.Box, ref int64) error {
	if !box.Valid() {
		return fmt.Errorf("rtree: invalid box %v", box)
	}
	// reinserted tracks the levels that already did a forced reinsert
	// during this insertion (R* does it at most once per level).
	reinserted := make(map[int]bool)
	if err := t.insert(entry{box: box, ref: ref}, 1, reinserted); err != nil {
		return err
	}
	t.count++
	return t.syncMeta()
}

// insert places e at the given target level (1 = leaf). Levels count from
// the leaves up, so data entries go to level 1 and a subtree of height h
// reinserts at level h+1... The root is at level t.height.
func (t *Tree) insert(e entry, level int, reinserted map[int]bool) error {
	path, err := t.choosePath(e.box, level)
	if err != nil {
		return err
	}
	n := path[len(path)-1]
	n.entries = append(n.entries, e)
	return t.handleOverflow(path, reinserted)
}

// choosePath descends from the root to the node at the target level using
// the R* ChooseSubtree criteria, returning the node chain.
func (t *Tree) choosePath(box geom.Box, targetLevel int) ([]*node, error) {
	var path []*node
	id := t.root
	for level := t.height; ; level-- {
		n, err := t.readNode(id)
		if err != nil {
			return nil, err
		}
		path = append(path, n)
		if level == targetLevel || n.leaf {
			return path, nil
		}
		if level <= 1 {
			// An inner node where a leaf belongs: descending further would
			// never terminate.
			return nil, fmt.Errorf("%w: inner node %d at leaf level", ErrCorrupt, n.id)
		}
		childLeaf := level-1 == 1
		id = pager.PageID(n.entries[t.chooseSubtree(n, box, childLeaf)].ref)
	}
}

// chooseSubtree picks the entry of n to descend into for box. When the
// children are leaves, R* minimizes overlap enlargement; otherwise volume
// enlargement. Ties break by volume enlargement, then volume, then entry
// order (deterministic).
func (t *Tree) chooseSubtree(n *node, box geom.Box, childrenAreLeaves bool) int {
	best := 0
	bestOverlap := 0.0
	bestEnlarge := 0.0
	bestVol := 0.0
	for i, e := range n.entries {
		enlarged := e.box.Union(box)
		enlarge := enlarged.Volume() - e.box.Volume()
		vol := e.box.Volume()
		overlap := 0.0
		if childrenAreLeaves {
			// Overlap enlargement of entry i against its siblings.
			for j, s := range n.entries {
				if j == i {
					continue
				}
				overlap += enlarged.OverlapVolume(s.box) - e.box.OverlapVolume(s.box)
			}
		}
		better := false
		if i == 0 {
			better = true
		} else if childrenAreLeaves && overlap != bestOverlap {
			better = overlap < bestOverlap
		} else if enlarge != bestEnlarge {
			better = enlarge < bestEnlarge
		} else if vol != bestVol {
			better = vol < bestVol
		}
		if better {
			best, bestOverlap, bestEnlarge, bestVol = i, overlap, enlarge, vol
		}
	}
	return best
}

// handleOverflow writes back the modified tail node of path, splitting or
// force-reinserting as needed, and propagates MBR updates and splits
// upward.
func (t *Tree) handleOverflow(path []*node, reinserted map[int]bool) error {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		level := t.height - i
		if len(n.entries) <= MaxEntries {
			if err := t.writeNode(n); err != nil {
				return err
			}
			if err := t.adjustParentBox(path, i); err != nil {
				return err
			}
			continue
		}
		isRoot := i == 0
		if !isRoot && !reinserted[level] {
			reinserted[level] = true
			removed, err := t.forceReinsertPrep(n)
			if err != nil {
				return err
			}
			if err := t.adjustParentBox(path, i); err != nil {
				return err
			}
			// Write back ancestors before reinserting through them.
			for j := i - 1; j >= 0; j-- {
				if err := t.writeNode(path[j]); err != nil {
					return err
				}
				if err := t.adjustParentBox(path, j); err != nil {
					return err
				}
			}
			for _, e := range removed {
				if err := t.insert(e, level, reinserted); err != nil {
					return err
				}
			}
			return nil
		}
		// Split.
		left, right := t.split(n)
		if err := t.writeNode(left); err != nil {
			return err
		}
		if err := t.allocNode(right); err != nil {
			return err
		}
		if isRoot {
			newRoot := &node{leaf: false, entries: []entry{
				{box: left.mbr(), ref: int64(left.id)},
				{box: right.mbr(), ref: int64(right.id)},
			}}
			if err := t.allocNode(newRoot); err != nil {
				return err
			}
			t.root = newRoot.id
			t.height++
			return t.syncMeta()
		}
		parent := path[i-1]
		// Update the parent entry for the (reused) left node and add the
		// right node.
		pi, err := parentEntryIndex(parent, left.id)
		if err != nil {
			return err
		}
		parent.entries[pi].box = left.mbr()
		parent.entries = append(parent.entries, entry{box: right.mbr(), ref: int64(right.id)})
	}
	return t.syncMeta()
}

// parentEntryIndex finds the entry of parent pointing at child id. A
// parent without such an entry is a structural inconsistency a corrupted
// index page can produce; it is reported, not panicked on.
func parentEntryIndex(parent *node, id pager.PageID) (int, error) {
	for i, e := range parent.entries {
		if pager.PageID(e.ref) == id {
			return i, nil
		}
	}
	return 0, fmt.Errorf("%w: parent %d has no entry for child %d", ErrCorrupt, parent.id, id)
}

// adjustParentBox refreshes the MBR of path[i] inside its parent entry
// (in memory; the parent is written back later in the loop).
func (t *Tree) adjustParentBox(path []*node, i int) error {
	if i == 0 {
		return nil
	}
	parent := path[i-1]
	pi, err := parentEntryIndex(parent, path[i].id)
	if err != nil {
		return err
	}
	parent.entries[pi].box = path[i].mbr()
	return nil
}

// forceReinsertPrep removes the reinsertCount entries of n farthest from
// its MBR center (R* forced reinsert), writes n back, and returns the
// removed entries sorted closest-first for reinsertion.
func (t *Tree) forceReinsertPrep(n *node) ([]entry, error) {
	c := n.mbr().Center()
	type de struct {
		e entry
		d float64
	}
	ds := make([]de, len(n.entries))
	for i, e := range n.entries {
		ds[i] = de{e, e.box.Center().Sub(c).Norm()}
	}
	sort.SliceStable(ds, func(i, j int) bool { return ds[i].d > ds[j].d }) // farthest first
	removed := make([]entry, reinsertCount)
	for i := 0; i < reinsertCount; i++ {
		removed[i] = ds[i].e
	}
	keep := make([]entry, 0, len(ds)-reinsertCount)
	for _, x := range ds[reinsertCount:] {
		keep = append(keep, x.e)
	}
	n.entries = keep
	if err := t.writeNode(n); err != nil {
		return nil, err
	}
	// Reinsert closest-first ("close reinsert" of Beckmann et al.).
	for i, j := 0, len(removed)-1; i < j; i, j = i+1, j-1 {
		removed[i], removed[j] = removed[j], removed[i]
	}
	return removed, nil
}

// split applies the R* topological split: choose the axis with minimum
// total margin over all distributions, then the distribution on that axis
// with minimum overlap (ties: minimum total volume). The left node reuses
// n's page; the right node is new (caller allocates).
func (t *Tree) split(n *node) (left, right *node) {
	entries := n.entries
	m := MinEntries
	if m < 1 {
		m = 1
	}
	type axisSort struct {
		byLower func(i, j int) bool
		byUpper func(i, j int) bool
	}
	lower := []func(e entry) float64{
		func(e entry) float64 { return e.box.MinX },
		func(e entry) float64 { return e.box.MinY },
		func(e entry) float64 { return e.box.MinE },
	}
	upper := []func(e entry) float64{
		func(e entry) float64 { return e.box.MaxX },
		func(e entry) float64 { return e.box.MaxY },
		func(e entry) float64 { return e.box.MaxE },
	}

	bestMargin := -1.0
	var bestSorted []entry
	for axis := 0; axis < 3; axis++ {
		for pass := 0; pass < 2; pass++ {
			s := append([]entry(nil), entries...)
			key := lower[axis]
			tie := upper[axis]
			if pass == 1 {
				key, tie = upper[axis], lower[axis]
			}
			sort.SliceStable(s, func(i, j int) bool {
				if key(s[i]) != key(s[j]) {
					return key(s[i]) < key(s[j])
				}
				return tie(s[i]) < tie(s[j])
			})
			margin := 0.0
			for k := m; k <= len(s)-m; k++ {
				margin += mbrOf(s[:k]).Margin() + mbrOf(s[k:]).Margin()
			}
			if bestMargin < 0 || margin < bestMargin {
				bestMargin, bestSorted = margin, s
			}
		}
	}

	// Choose the distribution with minimum overlap, then minimum volume.
	s := bestSorted
	bestK := m
	bestOverlap, bestVol := 0.0, 0.0
	for k := m; k <= len(s)-m; k++ {
		lb, rb := mbrOf(s[:k]), mbrOf(s[k:])
		ov := lb.OverlapVolume(rb)
		vol := lb.Volume() + rb.Volume()
		if k == m || ov < bestOverlap || (ov == bestOverlap && vol < bestVol) {
			bestK, bestOverlap, bestVol = k, ov, vol
		}
	}
	left = &node{id: n.id, leaf: n.leaf, entries: append([]entry(nil), s[:bestK]...)}
	right = &node{leaf: n.leaf, entries: append([]entry(nil), s[bestK:]...)}
	return left, right
}

func mbrOf(es []entry) geom.Box {
	b := es[0].box
	for _, e := range es[1:] {
		b = b.Union(e.box)
	}
	return b
}

// NodeInfo describes one tree node for the cost model and for diagnostics.
type NodeInfo struct {
	Level   int // 1 = leaf
	Box     geom.Box
	Entries int
}

// Nodes calls fn for every node in the tree (root first, depth-first).
// The cost model of Section 5.3 needs every node's extents (w_i, h_i, d_i
// in formula (1)).
func (t *Tree) Nodes(fn func(NodeInfo) bool) error {
	_, err := t.nodes(t.root, t.height, fn)
	return err
}

func (t *Tree) nodes(id pager.PageID, level int, fn func(NodeInfo) bool) (bool, error) {
	if level < 1 {
		return false, fmt.Errorf("%w: traversal exceeds height %d at node %d", ErrCorrupt, t.height, id)
	}
	n, err := t.readNode(id)
	if err != nil {
		return false, err
	}
	if !fn(NodeInfo{Level: level, Box: n.mbr(), Entries: len(n.entries)}) {
		return false, nil
	}
	if !n.leaf {
		for _, e := range n.entries {
			cont, err := t.nodes(pager.PageID(e.ref), level-1, fn)
			if err != nil || !cont {
				return cont, err
			}
		}
	}
	return true, nil
}

// NumNodes counts the tree's nodes (requires a full traversal).
func (t *Tree) NumNodes() (int, error) {
	n := 0
	err := t.Nodes(func(NodeInfo) bool { n++; return true })
	return n, err
}

// checkInvariants verifies structural invariants below id; used by tests.
func (t *Tree) checkInvariants(id pager.PageID, level int, within *geom.Box) (int64, error) {
	n, err := t.readNode(id)
	if err != nil {
		return 0, err
	}
	if n.leaf != (level == 1) {
		return 0, fmt.Errorf("rtree: node %d leaf=%v at level %d", id, n.leaf, level)
	}
	if id != t.root && len(n.entries) < 1 {
		return 0, fmt.Errorf("rtree: node %d is empty", id)
	}
	if len(n.entries) > MaxEntries {
		return 0, fmt.Errorf("rtree: node %d overfull (%d)", id, len(n.entries))
	}
	var data int64
	for _, e := range n.entries {
		if within != nil && !within.Contains(e.box) {
			return 0, fmt.Errorf("rtree: node %d entry box %v outside parent MBR %v", id, e.box, *within)
		}
		if n.leaf {
			data++
		} else {
			box := e.box
			sub, err := t.checkInvariants(pager.PageID(e.ref), level-1, &box)
			if err != nil {
				return 0, err
			}
			data += sub
		}
	}
	return data, nil
}

// CheckInvariants validates the whole tree: level/leaf consistency, MBR
// containment, fill bounds, and that the entry count matches Len.
func (t *Tree) CheckInvariants() error {
	data, err := t.checkInvariants(t.root, t.height, nil)
	if err != nil {
		return err
	}
	if data != t.count {
		return fmt.Errorf("rtree: %d data entries found, count says %d", data, t.count)
	}
	return nil
}
