package rtree

import (
	"math/rand"
	"testing"

	"dmesh/internal/geom"
)

// TestSearchDeltaInvariant checks the contract coherent queries rely
// on: for random item sets and random target/cover volumes, every item
// intersecting a target box is either found by the delta search or
// intersects a cover box; and the delta search only returns items that
// intersect a target box.
func TestSearchDeltaInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr, _ := newTree(t, 64)
	var items []Item
	for i := 0; i < 400; i++ {
		b := randBox(rng, 0.1)
		items = append(items, Item{Box: b, Ref: int64(i)})
		if err := tr.Insert(b, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	intersectsAny := func(b geom.Box, boxes []geom.Box) bool {
		for _, q := range boxes {
			if b.Intersects(q) {
				return true
			}
		}
		return false
	}
	for iter := 0; iter < 50; iter++ {
		target := []geom.Box{randBox(rng, 0.5), randBox(rng, 0.5)}
		cover := []geom.Box{randBox(rng, 0.5), randBox(rng, 0.4), randBox(rng, 0.3)}
		found := make(map[int64]bool)
		err := tr.SearchDelta(target, cover, func(ref int64, _ geom.Box) bool {
			if found[ref] {
				t.Fatalf("iter %d: ref %d visited twice", iter, ref)
			}
			found[ref] = true
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, it := range items {
			inTarget := intersectsAny(it.Box, target)
			if found[it.Ref] && !inTarget {
				t.Fatalf("iter %d: delta search returned ref %d outside targets", iter, it.Ref)
			}
			if inTarget && !found[it.Ref] && !intersectsAny(it.Box, cover) {
				t.Fatalf("iter %d: ref %d intersects target, misses cover, not found", iter, it.Ref)
			}
		}
	}
}

// TestSearchBoxesDedupAndOrder checks that an entry matching several
// boxes is visited once, and that the visit order is deterministic.
func TestSearchBoxesDedupAndOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr, _ := newTree(t, 64)
	for i := 0; i < 200; i++ {
		if err := tr.Insert(randBox(rng, 0.2), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Two heavily overlapping boxes: most entries match both.
	boxes := []geom.Box{
		{MinX: 0, MinY: 0, MinE: 0, MaxX: 0.8, MaxY: 0.8, MaxE: 0.8},
		{MinX: 0.1, MinY: 0.1, MinE: 0.1, MaxX: 0.9, MaxY: 0.9, MaxE: 0.9},
	}
	run := func() []int64 {
		var out []int64
		if err := tr.SearchBoxes(boxes, func(ref int64, _ geom.Box) bool {
			out = append(out, ref)
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a := run()
	seen := make(map[int64]bool, len(a))
	for _, ref := range a {
		if seen[ref] {
			t.Fatalf("ref %d visited twice", ref)
		}
		seen[ref] = true
	}
	union := collect(t, tr, boxes[0])
	for _, ref := range collect(t, tr, boxes[1]) {
		if !seen[ref] {
			t.Fatalf("ref %d in box[1] missing from SearchBoxes result", ref)
		}
	}
	for _, ref := range union {
		if !seen[ref] {
			t.Fatalf("ref %d in box[0] missing from SearchBoxes result", ref)
		}
	}
	b := run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic result count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic order at %d: %d vs %d", i, a[i], b[i])
		}
	}
	// Early stop after 5 entries.
	count := 0
	if err := tr.SearchBoxes(boxes, func(int64, geom.Box) bool {
		count++
		return count < 5
	}); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("early stop visited %d entries, want 5", count)
	}
}
