package rtree

import "dmesh/internal/geom"

// DeltaBoxes returns range-query volumes covering exactly the part of
// ∪target not already covered by ∪cover. A coherent (frame-to-frame)
// query fetches only these fragments: every item intersecting a target
// box either intersects a cover box (and was fetched for it) or
// intersects a fragment. Fragments share boundary faces with the cover
// boxes, so an item straddling a boundary can match both; callers
// deduplicate by item identity.
func DeltaBoxes(target, cover []geom.Box) []geom.Box {
	return geom.Difference(target, cover)
}

// SearchBoxes runs one range query per box, visiting each matching
// entry exactly once even when it intersects several boxes (an entry
// straddling two fragment boundaries still costs the index descents of
// both queries — that is the I/O actually paid). The traversal order is
// deterministic: boxes in order, entries in index order within each.
// fn returning false stops the whole search.
func (t *Tree) SearchBoxes(boxes []geom.Box, fn func(ref int64, box geom.Box) bool) error {
	seen := make(map[int64]bool)
	for _, q := range boxes {
		stopped := false
		err := t.Search(q, func(ref int64, box geom.Box) bool {
			if seen[ref] {
				return true
			}
			seen[ref] = true
			if !fn(ref, box) {
				stopped = true
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
		if stopped {
			return nil
		}
	}
	return nil
}

// SearchDelta visits the entries newly exposed when the query volume
// moves from ∪cover to ∪target: it searches only the uncovered
// fragments (DeltaBoxes), so entries wholly inside the covered volume
// are never touched. Entries on a cover/fragment boundary may be
// visited even though they also intersect cover; entries intersecting
// target only inside the covered volume are skipped — the caller is
// expected to still hold them from the cover-volume query.
func (t *Tree) SearchDelta(target, cover []geom.Box, fn func(ref int64, box geom.Box) bool) error {
	return t.SearchBoxes(DeltaBoxes(target, cover), fn)
}
