package rtree

import (
	"encoding/binary"
	"fmt"
	"math"

	"dmesh/internal/geom"
	"dmesh/internal/storage/pager"
)

// On-page node layout:
//
//	byte 0:    node type (leaf/inner)
//	bytes 1-2: entry count (uint16)
//	bytes 3-7: reserved
//	entries:   6 float64 box bounds + int64 ref = 56 bytes each
//
// Fanout: (4096-8)/56 = 73 entries per node, in line with the node sizes
// R*-tree papers assume for 4 KiB pages.
const (
	nodeHeader = 8
	entryBytes = 56
	leafType   = 1
	innerType  = 2

	// MaxEntries keeps one slot spare so a node can temporarily hold
	// MaxEntries+1 entries between insert and split/reinsert.
	MaxEntries = (pager.PageSize-nodeHeader)/entryBytes - 1
	// MinEntries is the R*-tree minimum fill (40% of capacity).
	MinEntries = MaxEntries * 2 / 5
	// reinsertCount is the number of entries re-inserted on first overflow
	// (30% of capacity, the p parameter of Beckmann et al.).
	reinsertCount = MaxEntries * 3 / 10
)

// entry is one slot of a node: a box plus either a child page ID (inner
// nodes) or a caller-supplied data reference (leaf nodes).
type entry struct {
	box geom.Box
	ref int64
}

// node is the in-memory form of one R*-tree page.
type node struct {
	id      pager.PageID
	leaf    bool
	entries []entry
}

func (n *node) mbr() geom.Box {
	b := n.entries[0].box
	for _, e := range n.entries[1:] {
		b = b.Union(e.box)
	}
	return b
}

// readNode loads a node page. Every call is a (possibly buffered) page
// access, which is exactly how index I/O is charged in the paper.
func (t *Tree) readNode(id pager.PageID) (*node, error) {
	fr, err := t.p.Get(id)
	if err != nil {
		return nil, fmt.Errorf("rtree: read node %d: %w", id, err)
	}
	defer fr.Unpin()
	d := fr.Data()
	typ := d[0]
	if typ != leafType && typ != innerType {
		return nil, fmt.Errorf("%w: page %d is not a node (type %d)", ErrCorrupt, id, typ)
	}
	cnt := int(binary.LittleEndian.Uint16(d[1:]))
	if cnt > MaxEntries+1 {
		return nil, fmt.Errorf("%w: page %d has impossible entry count %d", ErrCorrupt, id, cnt)
	}
	n := &node{id: id, leaf: typ == leafType, entries: make([]entry, cnt)}
	off := nodeHeader
	for i := 0; i < cnt; i++ {
		n.entries[i] = decodeEntry(d[off:])
		off += entryBytes
	}
	return n, nil
}

// writeNode stores a node to its page.
func (t *Tree) writeNode(n *node) error {
	fr, err := t.p.Get(n.id)
	if err != nil {
		return fmt.Errorf("rtree: write node %d: %w", n.id, err)
	}
	defer fr.Unpin()
	t.encodeNode(fr.Data(), n)
	fr.MarkDirty()
	return nil
}

// allocNode allocates a fresh page for n and assigns its ID.
func (t *Tree) allocNode(n *node) error {
	fr, err := t.p.Allocate()
	if err != nil {
		return fmt.Errorf("rtree: alloc node: %w", err)
	}
	defer fr.Unpin()
	n.id = fr.ID()
	t.encodeNode(fr.Data(), n)
	return nil
}

func (t *Tree) encodeNode(d []byte, n *node) {
	typ := byte(innerType)
	if n.leaf {
		typ = leafType
	}
	d[0] = typ
	binary.LittleEndian.PutUint16(d[1:], uint16(len(n.entries)))
	off := nodeHeader
	for _, e := range n.entries {
		encodeEntry(d[off:], e)
		off += entryBytes
	}
}

func encodeEntry(d []byte, e entry) {
	binary.LittleEndian.PutUint64(d[0:], math.Float64bits(e.box.MinX))
	binary.LittleEndian.PutUint64(d[8:], math.Float64bits(e.box.MinY))
	binary.LittleEndian.PutUint64(d[16:], math.Float64bits(e.box.MinE))
	binary.LittleEndian.PutUint64(d[24:], math.Float64bits(e.box.MaxX))
	binary.LittleEndian.PutUint64(d[32:], math.Float64bits(e.box.MaxY))
	binary.LittleEndian.PutUint64(d[40:], math.Float64bits(e.box.MaxE))
	binary.LittleEndian.PutUint64(d[48:], uint64(e.ref))
}

func decodeEntry(d []byte) entry {
	return entry{
		box: geom.Box{
			MinX: math.Float64frombits(binary.LittleEndian.Uint64(d[0:])),
			MinY: math.Float64frombits(binary.LittleEndian.Uint64(d[8:])),
			MinE: math.Float64frombits(binary.LittleEndian.Uint64(d[16:])),
			MaxX: math.Float64frombits(binary.LittleEndian.Uint64(d[24:])),
			MaxY: math.Float64frombits(binary.LittleEndian.Uint64(d[32:])),
			MaxE: math.Float64frombits(binary.LittleEndian.Uint64(d[40:])),
		},
		ref: int64(binary.LittleEndian.Uint64(d[48:])),
	}
}
