package rtree

import (
	"errors"
	"math"
	"sort"

	"dmesh/internal/geom"
	"dmesh/internal/storage/pager"
)

// Item is one data entry for bulk loading.
type Item struct {
	Box geom.Box
	Ref int64
}

// BulkLoad builds a tree from items on an empty pager using the Sort-Tile-
// Recursive (STR) packing algorithm extended to three dimensions: sort by
// x into slabs, each slab by y into runs, each run by e, then pack nodes
// sequentially. Upper levels re-apply the same packing to the node MBRs.
// Packed trees have near-full nodes and minimal overlap, the configuration
// the paper's (and our) cost model assumes.
func BulkLoad(p *pager.Pager, items []Item) (*Tree, error) {
	if p.NumPages() != 0 {
		return nil, errors.New("rtree: BulkLoad requires an empty pager")
	}
	meta, err := p.Allocate()
	if err != nil {
		return nil, err
	}
	defer meta.Unpin()

	t := &Tree{p: p, height: 1, count: int64(len(items))}

	if len(items) == 0 {
		root := &node{leaf: true}
		if err := t.allocNode(root); err != nil {
			return nil, err
		}
		t.root = root.id
		t.writeMeta(meta.Data())
		meta.MarkDirty()
		return t, nil
	}

	entries := make([]entry, len(items))
	for i, it := range items {
		if !it.Box.Valid() {
			return nil, errors.New("rtree: BulkLoad: invalid box")
		}
		entries[i] = entry{box: it.Box, ref: it.Ref}
	}

	leaf := true
	for {
		parents, err := t.packLevel(entries, leaf)
		if err != nil {
			return nil, err
		}
		if len(parents) == 1 {
			t.root = pager.PageID(parents[0].ref)
			break
		}
		entries = parents
		leaf = false
		t.height++
	}
	t.writeMeta(meta.Data())
	meta.MarkDirty()
	return t, nil
}

// packLevel groups entries into nodes of up to MaxEntries using STR order
// and returns one parent entry per created node.
func (t *Tree) packLevel(entries []entry, leaf bool) ([]entry, error) {
	var parents []entry
	for _, group := range strGroups(entries) {
		nd := &node{leaf: leaf, entries: append([]entry(nil), group...)}
		if err := t.allocNode(nd); err != nil {
			return nil, err
		}
		parents = append(parents, entry{box: nd.mbr(), ref: int64(nd.id)})
	}
	return parents, nil
}

// strGroups partitions entries into node-sized groups in Sort-Tile-
// Recursive order: sorted into x slabs, then y runs, then by e. The input
// slice is reordered in place; the returned groups are subslices of it.
func strGroups(entries []entry) [][]entry {
	n := len(entries)
	nodes := (n + MaxEntries - 1) / MaxEntries
	if nodes <= 1 {
		return [][]entry{entries}
	}
	s := int(math.Ceil(math.Cbrt(float64(nodes))))
	sortByCenter(entries, 0)
	slabSize := ceilDiv(n, s)
	var groups [][]entry
	for i := 0; i < n; i += slabSize {
		slab := entries[i:min(i+slabSize, n)]
		sortByCenter(slab, 1)
		runSize := ceilDiv(len(slab), s)
		for j := 0; j < len(slab); j += runSize {
			run := slab[j:min(j+runSize, len(slab))]
			sortByCenter(run, 2)
			for k := 0; k < len(run); k += MaxEntries {
				groups = append(groups, run[k:min(k+MaxEntries, len(run))])
			}
		}
	}
	return groups
}

// STRLeafOrder returns items reordered the way BulkLoad would pack them
// into leaves. Laying data records out in this order clusters the table on
// the index (records of one leaf are contiguous), the standard physical
// design for index-clustered tables.
func STRLeafOrder(items []Item) []Item {
	entries := make([]entry, len(items))
	for i, it := range items {
		entries[i] = entry{box: it.Box, ref: it.Ref}
	}
	out := make([]Item, 0, len(items))
	for _, group := range strGroups(entries) {
		for _, e := range group {
			out = append(out, Item{Box: e.box, Ref: e.ref})
		}
	}
	return out
}

// sortByCenter sorts entries by box center on the given axis (0=x, 1=y,
// 2=e), with full-center tie-breaks for determinism.
func sortByCenter(es []entry, axis int) {
	center := func(e entry, a int) float64 {
		switch a {
		case 0:
			return e.box.MinX + e.box.MaxX
		case 1:
			return e.box.MinY + e.box.MaxY
		default:
			return e.box.MinE + e.box.MaxE
		}
	}
	sort.SliceStable(es, func(i, j int) bool {
		for d := 0; d < 3; d++ {
			a := (axis + d) % 3
			ci, cj := center(es[i], a), center(es[j], a)
			if ci != cj {
				return ci < cj
			}
		}
		return es[i].ref < es[j].ref
	})
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
