package rtree

import (
	"errors"
	"math/rand"
	"testing"

	"dmesh/internal/geom"
	"dmesh/internal/storage/pager"
)

// buildTree inserts n random boxes (fixed seed) and returns the tree.
func buildCorruptibleTree(t *testing.T, n int) *Tree {
	t.Helper()
	p := pager.New(pager.NewMemBackend(), 4096)
	tr, err := Create(p)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	for i := 0; i < n; i++ {
		x, y, e := r.Float64(), r.Float64(), r.Float64()
		b := geom.Box{MinX: x, MinY: y, MinE: e, MaxX: x + 0.01, MaxY: y + 0.01, MaxE: e + 0.01}
		if err := tr.Insert(b, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() < 2 {
		t.Fatalf("tree too small to corrupt meaningfully (height %d)", tr.Height())
	}
	return tr
}

func searchAll(tr *Tree) error {
	all := geom.Box{MinX: -1, MinY: -1, MinE: -1, MaxX: 2, MaxY: 2, MaxE: 2}
	return tr.Search(all, func(int64, geom.Box) bool { return true })
}

// A page whose type byte is garbage (what a corrupted index page looks
// like on an unchecksummed backend) must surface as ErrCorrupt on query
// paths, never a panic.
func TestSearchCorruptTypeByte(t *testing.T) {
	tr := buildCorruptibleTree(t, 500)
	root, err := tr.readNode(tr.root)
	if err != nil {
		t.Fatal(err)
	}
	child := pager.PageID(root.entries[0].ref)
	fr, err := tr.p.Get(child)
	if err != nil {
		t.Fatal(err)
	}
	fr.Data()[0] = 0xEE
	fr.MarkDirty()
	fr.Unpin()
	if err := searchAll(tr); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Search over corrupt page = %v, want ErrCorrupt", err)
	}
}

func TestSearchCorruptEntryCount(t *testing.T) {
	tr := buildCorruptibleTree(t, 500)
	root, err := tr.readNode(tr.root)
	if err != nil {
		t.Fatal(err)
	}
	child := pager.PageID(root.entries[0].ref)
	fr, err := tr.p.Get(child)
	if err != nil {
		t.Fatal(err)
	}
	fr.Data()[1] = 0xFF // count low byte
	fr.Data()[2] = 0x7F // count high byte: 32767 entries cannot fit a page
	fr.MarkDirty()
	fr.Unpin()
	if err := searchAll(tr); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Search over corrupt count = %v, want ErrCorrupt", err)
	}
}

// A child pointer redirected back to the root (a cycle) must trip the
// depth guard instead of recursing forever.
func TestSearchCorruptChildCycle(t *testing.T) {
	tr := buildCorruptibleTree(t, 500)
	root, err := tr.readNode(tr.root)
	if err != nil {
		t.Fatal(err)
	}
	root.entries[0].ref = int64(tr.root)
	if err := tr.writeNode(root); err != nil {
		t.Fatal(err)
	}
	if err := searchAll(tr); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Search over child cycle = %v, want ErrCorrupt", err)
	}
	if err := tr.Nodes(func(NodeInfo) bool { return true }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Nodes over child cycle = %v, want ErrCorrupt", err)
	}
}

// A parent without an entry for its child — the inconsistency that used
// to panic at parentEntryIndex — is reported as ErrCorrupt.
func TestParentEntryIndexMismatch(t *testing.T) {
	parent := &node{id: 7, entries: []entry{{ref: 3}, {ref: 4}}}
	if _, err := parentEntryIndex(parent, 9); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("parentEntryIndex = %v, want ErrCorrupt", err)
	}
	i, err := parentEntryIndex(parent, 4)
	if err != nil || i != 1 {
		t.Fatalf("parentEntryIndex = (%d, %v), want (1, nil)", i, err)
	}
}

// Insert into a tree whose parent/child entries were made inconsistent
// must error out, not panic (the old behavior at rtree.go:298).
func TestInsertOverCorruptParentChildErrors(t *testing.T) {
	tr := buildCorruptibleTree(t, 900)
	// Redirect the root's first child entry at a fresh page that no parent
	// entry describes correctly, then force splits through it.
	root, err := tr.readNode(tr.root)
	if err != nil {
		t.Fatal(err)
	}
	// Swap the first child ref for the second child's page: now two entries
	// point at one child and none at the other, so any split of the orphan
	// or double-referenced child can hit a parent-entry mismatch. Whatever
	// path the inserts take, they must never panic.
	if len(root.entries) < 2 {
		t.Skip("root too small")
	}
	root.entries[0].ref = root.entries[1].ref
	if err := tr.writeNode(root); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Insert panicked over corrupt structure: %v", r)
		}
	}()
	r := rand.New(rand.NewSource(12))
	for i := 0; i < 2000; i++ {
		x, y, e := r.Float64(), r.Float64(), r.Float64()
		b := geom.Box{MinX: x, MinY: y, MinE: e, MaxX: x + 0.01, MaxY: y + 0.01, MaxE: e + 0.01}
		if err := tr.Insert(b, int64(10_000+i)); err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Insert error = %v, want ErrCorrupt", err)
			}
			return // reported cleanly
		}
	}
	// The inserts may also all succeed (the corruption stays latent on the
	// untouched path); surviving without a panic is the contract.
}
