package rtree

import (
	"math/rand"
	"testing"

	"dmesh/internal/geom"
	"dmesh/internal/storage/pager"
)

func TestDeleteMissing(t *testing.T) {
	tr, _ := newTree(t, 64)
	if err := tr.Insert(geom.VerticalSegment(0.5, 0.5, 0, 1), 1); err != nil {
		t.Fatal(err)
	}
	ok, err := tr.Delete(geom.VerticalSegment(0.5, 0.5, 0, 1), 99)
	if err != nil || ok {
		t.Fatalf("Delete(wrong ref) = %v, %v", ok, err)
	}
	ok, err = tr.Delete(geom.VerticalSegment(0.1, 0.1, 0, 1), 1)
	if err != nil || ok {
		t.Fatalf("Delete(wrong box) = %v, %v", ok, err)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after failed deletes", tr.Len())
	}
}

func TestDeleteSimple(t *testing.T) {
	tr, _ := newTree(t, 64)
	items := []Item{}
	for i := 0; i < 50; i++ {
		it := Item{Box: geom.VerticalSegment(float64(i)/50, 0.5, 0, 1), Ref: int64(i)}
		items = append(items, it)
		if err := tr.Insert(it.Box, it.Ref); err != nil {
			t.Fatal(err)
		}
	}
	ok, err := tr.Delete(items[25].Box, items[25].Ref)
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if tr.Len() != 49 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, tr, geom.Box{MaxX: 1, MaxY: 1, MaxE: 1})
	if len(got) != 49 {
		t.Fatalf("search returned %d", len(got))
	}
	for _, ref := range got {
		if ref == 25 {
			t.Fatal("deleted ref still returned")
		}
	}
}

// TestDeleteManyAgainstBruteForce interleaves random inserts and deletes,
// checking the tree against a model after each phase.
func TestDeleteManyAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	tr, _ := newTree(t, 2048)
	live := map[int64]Item{}
	nextRef := int64(0)
	for round := 0; round < 6; round++ {
		// Insert a batch.
		for i := 0; i < 700; i++ {
			it := Item{Box: randBox(rng, 0.01), Ref: nextRef}
			nextRef++
			live[it.Ref] = it
			if err := tr.Insert(it.Box, it.Ref); err != nil {
				t.Fatal(err)
			}
		}
		// Delete a random third of what is live.
		var refs []int64
		for r := range live {
			refs = append(refs, r)
		}
		rng.Shuffle(len(refs), func(i, j int) { refs[i], refs[j] = refs[j], refs[i] })
		for _, r := range refs[:len(refs)/3] {
			it := live[r]
			ok, err := tr.Delete(it.Box, it.Ref)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("round %d: live item %d not found", round, r)
			}
			delete(live, r)
		}
		if tr.Len() != int64(len(live)) {
			t.Fatalf("round %d: Len = %d, model %d", round, tr.Len(), len(live))
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// Spot queries agree with the model.
		var items []Item
		for _, it := range live {
			items = append(items, it)
		}
		for q := 0; q < 5; q++ {
			box := randBox(rng, 0.2)
			if got, want := collect(t, tr, box), bruteForce(items, box); !equalIDs(got, want) {
				t.Fatalf("round %d query %d: got %d want %d", round, q, len(got), len(want))
			}
		}
	}
}

func TestDeleteEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tr, _ := newTree(t, 512)
	var items []Item
	for i := 0; i < 800; i++ {
		it := Item{Box: randBox(rng, 0.02), Ref: int64(i)}
		items = append(items, it)
		if err := tr.Insert(it.Box, it.Ref); err != nil {
			t.Fatal(err)
		}
	}
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	for i, it := range items {
		ok, err := tr.Delete(it.Box, it.Ref)
		if err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
		if !ok {
			t.Fatalf("delete %d: item missing", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tr.Len())
	}
	if got := collect(t, tr, geom.Box{MaxX: 1, MaxY: 1, MaxE: 1}); len(got) != 0 {
		t.Fatalf("empty tree returned %d items", len(got))
	}
	// The tree stays usable.
	if err := tr.Insert(geom.VerticalSegment(0.5, 0.5, 0, 1), 7); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, tr, geom.Box{MaxX: 1, MaxY: 1, MaxE: 1}); len(got) != 1 {
		t.Fatalf("reinsert after drain returned %d", len(got))
	}
}

func TestDeletePersists(t *testing.T) {
	p := pager.New(pager.NewMemBackend(), 256)
	tr, err := Create(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(37))
	var items []Item
	for i := 0; i < 300; i++ {
		it := Item{Box: randBox(rng, 0.02), Ref: int64(i)}
		items = append(items, it)
		tr.Insert(it.Box, it.Ref)
	}
	for _, it := range items[:100] {
		if ok, err := tr.Delete(it.Box, it.Ref); err != nil || !ok {
			t.Fatal(ok, err)
		}
	}
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(p)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != 200 {
		t.Fatalf("reopened Len = %d", tr2.Len())
	}
	if got := collect(t, tr2, geom.Box{MaxX: 1, MaxY: 1, MaxE: 1}); len(got) != 200 {
		t.Fatalf("reopened search returned %d", len(got))
	}
}
