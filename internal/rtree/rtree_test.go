package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"dmesh/internal/geom"
	"dmesh/internal/storage/pager"
)

func newTree(t testing.TB, pool int) (*Tree, *pager.Pager) {
	t.Helper()
	p := pager.New(pager.NewMemBackend(), pool)
	tr, err := Create(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr, p
}

func randBox(rng *rand.Rand, maxSize float64) geom.Box {
	x := rng.Float64()
	y := rng.Float64()
	e := rng.Float64()
	return geom.Box{
		MinX: x, MinY: y, MinE: e,
		MaxX: x + rng.Float64()*maxSize,
		MaxY: y + rng.Float64()*maxSize,
		MaxE: e + rng.Float64()*maxSize,
	}
}

// bruteForce returns the refs of items intersecting q.
func bruteForce(items []Item, q geom.Box) []int64 {
	var out []int64
	for _, it := range items {
		if it.Box.Intersects(q) {
			out = append(out, it.Ref)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func collect(t testing.TB, tr *Tree, q geom.Box) []int64 {
	t.Helper()
	var out []int64
	if err := tr.Search(q, func(ref int64, _ geom.Box) bool {
		out = append(out, ref)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyTreeSearch(t *testing.T) {
	tr, _ := newTree(t, 16)
	got := collect(t, tr, geom.Box{MaxX: 1, MaxY: 1, MaxE: 1})
	if len(got) != 0 {
		t.Fatalf("empty tree returned %v", got)
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestInsertRejectsInvalidBox(t *testing.T) {
	tr, _ := newTree(t, 16)
	if err := tr.Insert(geom.Box{MinX: 1, MaxX: 0, MaxY: 1, MaxE: 1}, 1); err == nil {
		t.Fatal("invalid box accepted")
	}
}

func TestInsertSearchSmall(t *testing.T) {
	tr, _ := newTree(t, 64)
	rng := rand.New(rand.NewSource(1))
	var items []Item
	for i := 0; i < 200; i++ {
		it := Item{Box: randBox(rng, 0.05), Ref: int64(i)}
		items = append(items, it)
		if err := tr.Insert(it.Box, it.Ref); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 200 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		q := randBox(rng, 0.3)
		if got, want := collect(t, tr, q), bruteForce(items, q); !equalIDs(got, want) {
			t.Fatalf("query %v: got %d refs, want %d", q, len(got), len(want))
		}
	}
}

func TestInsertManyAgainstBruteForce(t *testing.T) {
	tr, _ := newTree(t, 512)
	rng := rand.New(rand.NewSource(2))
	var items []Item
	for i := 0; i < 5000; i++ {
		it := Item{Box: randBox(rng, 0.01), Ref: int64(i)}
		items = append(items, it)
		if err := tr.Insert(it.Box, it.Ref); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Height() < 2 {
		t.Fatalf("height = %d, expected splits", tr.Height())
	}
	for i := 0; i < 30; i++ {
		q := randBox(rng, 0.2)
		if got, want := collect(t, tr, q), bruteForce(items, q); !equalIDs(got, want) {
			t.Fatalf("query %d mismatch: got %d want %d", i, len(got), len(want))
		}
	}
	// Point (degenerate) queries.
	for i := 0; i < 30; i++ {
		p := geom.Box{MinX: rng.Float64(), MinY: rng.Float64(), MinE: rng.Float64()}
		p.MaxX, p.MaxY, p.MaxE = p.MinX, p.MinY, p.MinE
		if got, want := collect(t, tr, p), bruteForce(items, p); !equalIDs(got, want) {
			t.Fatalf("point query mismatch")
		}
	}
}

func TestVerticalSegmentWorkload(t *testing.T) {
	// The DM workload: degenerate boxes (vertical segments) queried with
	// horizontal planes.
	tr, _ := newTree(t, 512)
	rng := rand.New(rand.NewSource(3))
	var items []Item
	for i := 0; i < 3000; i++ {
		x, y := rng.Float64(), rng.Float64()
		lo := rng.Float64() * 0.8
		hi := lo + rng.Float64()*0.2
		it := Item{Box: geom.VerticalSegment(x, y, lo, hi), Ref: int64(i)}
		items = append(items, it)
		if err := tr.Insert(it.Box, it.Ref); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		e := rng.Float64()
		plane := geom.BoxFromRect(geom.NewRect(0.2, 0.2, 0.7, 0.7), e, e)
		if got, want := collect(t, tr, plane), bruteForce(items, plane); !equalIDs(got, want) {
			t.Fatalf("plane query mismatch at e=%g", e)
		}
	}
}

func TestBulkLoadMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var items []Item
	for i := 0; i < 10000; i++ {
		items = append(items, Item{Box: randBox(rng, 0.01), Ref: int64(i)})
	}
	p := pager.New(pager.NewMemBackend(), 1024)
	tr, err := BulkLoad(p, items)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != int64(len(items)) {
		t.Fatalf("Len = %d", tr.Len())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		q := randBox(rng, 0.15)
		if got, want := collect(t, tr, q), bruteForce(items, q); !equalIDs(got, want) {
			t.Fatalf("query %d mismatch", i)
		}
	}
}

func TestBulkLoadEmptyAndTiny(t *testing.T) {
	p := pager.New(pager.NewMemBackend(), 64)
	tr, err := BulkLoad(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := collect(t, tr, geom.Box{MaxX: 1, MaxY: 1, MaxE: 1}); len(got) != 0 {
		t.Fatal("empty bulk load returned data")
	}

	p2 := pager.New(pager.NewMemBackend(), 64)
	tr2, err := BulkLoad(p2, []Item{{Box: geom.VerticalSegment(0.5, 0.5, 0, 1), Ref: 7}})
	if err != nil {
		t.Fatal(err)
	}
	got := collect(t, tr2, geom.BoxFromRect(geom.NewRect(0, 0, 1, 1), 0.5, 0.5))
	if !equalIDs(got, []int64{7}) {
		t.Fatalf("got %v", got)
	}
	if tr2.Height() != 1 {
		t.Fatalf("tiny tree height = %d", tr2.Height())
	}
}

func TestBulkLoadPacking(t *testing.T) {
	// STR should produce near-full leaves: node count close to n/MaxEntries.
	rng := rand.New(rand.NewSource(5))
	var items []Item
	const n = 20000
	for i := 0; i < n; i++ {
		items = append(items, Item{Box: randBox(rng, 0.002), Ref: int64(i)})
	}
	p := pager.New(pager.NewMemBackend(), 2048)
	tr, err := BulkLoad(p, items)
	if err != nil {
		t.Fatal(err)
	}
	leaves := 0
	err = tr.Nodes(func(ni NodeInfo) bool {
		if ni.Level == 1 {
			leaves++
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	minLeaves := n / MaxEntries
	if leaves < minLeaves || leaves > minLeaves*13/10+3 {
		t.Fatalf("leaves = %d, want close to %d", leaves, minLeaves)
	}
}

func TestPersistence(t *testing.T) {
	p := pager.New(pager.NewMemBackend(), 256)
	tr, err := Create(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	var items []Item
	for i := 0; i < 2000; i++ {
		it := Item{Box: randBox(rng, 0.02), Ref: int64(i)}
		items = append(items, it)
		if err := tr.Insert(it.Box, it.Ref); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(p)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != 2000 || tr2.Height() != tr.Height() {
		t.Fatalf("reopened len=%d height=%d", tr2.Len(), tr2.Height())
	}
	q := geom.Box{MinX: 0.4, MinY: 0.4, MinE: 0.4, MaxX: 0.6, MaxY: 0.6, MaxE: 0.6}
	if got, want := collect(t, tr2, q), bruteForce(items, q); !equalIDs(got, want) {
		t.Fatal("reopened tree returns different results")
	}
}

func TestSearchEarlyStop(t *testing.T) {
	tr, _ := newTree(t, 256)
	for i := 0; i < 1000; i++ {
		x := float64(i) / 1000
		if err := tr.Insert(geom.VerticalSegment(x, x, 0, 1), int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	err := tr.Search(geom.Box{MaxX: 1, MaxY: 1, MaxE: 1}, func(int64, geom.Box) bool {
		count++
		return count < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestNodesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var items []Item
	for i := 0; i < 6000; i++ {
		items = append(items, Item{Box: randBox(rng, 0.01), Ref: int64(i)})
	}
	p := pager.New(pager.NewMemBackend(), 1024)
	tr, err := BulkLoad(p, items)
	if err != nil {
		t.Fatal(err)
	}
	var rootSeen bool
	total := 0
	err = tr.Nodes(func(ni NodeInfo) bool {
		total++
		if ni.Level == tr.Height() {
			rootSeen = true
		}
		if ni.Level < 1 || ni.Level > tr.Height() {
			t.Fatalf("node at impossible level %d", ni.Level)
		}
		if ni.Entries <= 0 {
			t.Fatal("empty node reported")
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rootSeen {
		t.Fatal("root not enumerated")
	}
	nn, err := tr.NumNodes()
	if err != nil {
		t.Fatal(err)
	}
	if nn != total {
		t.Fatalf("NumNodes = %d, enumeration saw %d", nn, total)
	}
}

func TestColdSearchCountsDiskAccesses(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var items []Item
	for i := 0; i < 20000; i++ {
		items = append(items, Item{Box: randBox(rng, 0.003), Ref: int64(i)})
	}
	p := pager.New(pager.NewMemBackend(), 4096)
	tr, err := BulkLoad(p, items)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	small := geom.Box{MinX: 0.5, MinY: 0.5, MinE: 0.5, MaxX: 0.52, MaxY: 0.52, MaxE: 0.52}
	collect(t, tr, small)
	smallDA := p.Stats().Reads

	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	big := geom.Box{MinX: 0, MinY: 0, MinE: 0, MaxX: 1, MaxY: 1, MaxE: 1}
	collect(t, tr, big)
	bigDA := p.Stats().Reads

	if smallDA == 0 || bigDA == 0 {
		t.Fatal("cold queries must incur disk accesses")
	}
	if smallDA >= bigDA {
		t.Fatalf("small query (%d DA) should be cheaper than full scan (%d DA)", smallDA, bigDA)
	}
	nn, _ := tr.NumNodes()
	if bigDA != uint64(nn) {
		t.Fatalf("full-coverage query read %d pages, tree has %d nodes", bigDA, nn)
	}
}

func TestDeterministicBuild(t *testing.T) {
	build := func() []int64 {
		rng := rand.New(rand.NewSource(10))
		var items []Item
		for i := 0; i < 3000; i++ {
			items = append(items, Item{Box: randBox(rng, 0.01), Ref: int64(i)})
		}
		p := pager.New(pager.NewMemBackend(), 512)
		tr, err := BulkLoad(p, items)
		if err != nil {
			t.Fatal(err)
		}
		var order []int64
		tr.Search(geom.Box{MaxX: 1, MaxY: 1, MaxE: 1}, func(ref int64, _ geom.Box) bool {
			order = append(order, ref)
			return true
		})
		return order
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traversal order differs at %d", i)
		}
	}
}

func BenchmarkBulkLoad10k(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	var items []Item
	for i := 0; i < 10000; i++ {
		items = append(items, Item{Box: randBox(rng, 0.01), Ref: int64(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pager.New(pager.NewMemBackend(), 2048)
		if _, err := BulkLoad(p, append([]Item(nil), items...)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	var items []Item
	for i := 0; i < 50000; i++ {
		items = append(items, Item{Box: randBox(rng, 0.005), Ref: int64(i)})
	}
	p := pager.New(pager.NewMemBackend(), 8192)
	tr, err := BulkLoad(p, items)
	if err != nil {
		b.Fatal(err)
	}
	q := geom.Box{MinX: 0.4, MinY: 0.4, MinE: 0.4, MaxX: 0.5, MaxY: 0.5, MaxE: 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		tr.Search(q, func(int64, geom.Box) bool { n++; return true })
	}
}
