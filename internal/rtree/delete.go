package rtree

import (
	"fmt"

	"dmesh/internal/geom"
	"dmesh/internal/storage/pager"
)

// Delete removes one data entry matching box and ref, reporting whether it
// was found. Removal follows Guttman's CondenseTree: underfull nodes are
// dissolved, every data entry in their subtrees is reinserted, and a root
// left with a single child is shortened.
func (t *Tree) Delete(box geom.Box, ref int64) (bool, error) {
	path, idx, err := t.findLeaf(t.root, t.height, box, ref)
	if err != nil || path == nil {
		return false, err
	}
	leaf := path[len(path)-1]
	leaf.entries = append(leaf.entries[:idx], leaf.entries[idx+1:]...)

	// Condense: walk up, dissolving underfull non-root nodes and
	// collecting the data entries of their subtrees for reinsertion.
	var orphanData []entry
	for i := len(path) - 1; i >= 1; i-- {
		n := path[i]
		parent := path[i-1]
		level := t.height - i
		if len(n.entries) < MinEntries {
			pi, err := parentEntryIndex(parent, n.id)
			if err != nil {
				return false, err
			}
			parent.entries = append(parent.entries[:pi], parent.entries[pi+1:]...)
			data, err := t.collectData(n.entries, level)
			if err != nil {
				return false, err
			}
			orphanData = append(orphanData, data...)
			// The node page is abandoned (no free list in this store; the
			// space is reclaimed on the next bulk rebuild).
			continue
		}
		if err := t.writeNode(n); err != nil {
			return false, err
		}
		if err := t.adjustParentBox(path, i); err != nil {
			return false, err
		}
	}
	if err := t.writeNode(path[0]); err != nil {
		return false, err
	}

	// Shorten the tree while the root is an inner node with one child.
	for t.height > 1 {
		r, err := t.readNode(t.root)
		if err != nil {
			return false, err
		}
		if r.leaf || len(r.entries) != 1 {
			break
		}
		t.root = pager.PageID(r.entries[0].ref)
		t.height--
	}

	t.count -= int64(1 + len(orphanData))
	if err := t.syncMeta(); err != nil {
		return false, err
	}
	// Reinsert the orphaned data entries.
	for _, e := range orphanData {
		if err := t.Insert(e.box, e.ref); err != nil {
			return false, fmt.Errorf("rtree: reinsert after delete: %w", err)
		}
	}
	return true, nil
}

// collectData flattens entries of a node at the given level (1 = leaf)
// into the data entries of their subtrees.
func (t *Tree) collectData(entries []entry, level int) ([]entry, error) {
	if level == 1 {
		return append([]entry(nil), entries...), nil
	}
	var out []entry
	for _, e := range entries {
		n, err := t.readNode(pager.PageID(e.ref))
		if err != nil {
			return nil, err
		}
		sub, err := t.collectData(n.entries, level-1)
		if err != nil {
			return nil, err
		}
		out = append(out, sub...)
	}
	return out, nil
}

// findLeaf locates the leaf containing (box, ref), returning the node path
// and the entry index, or a nil path when absent.
func (t *Tree) findLeaf(id pager.PageID, level int, box geom.Box, ref int64) ([]*node, int, error) {
	n, err := t.readNode(id)
	if err != nil {
		return nil, 0, err
	}
	if n.leaf {
		for i, e := range n.entries {
			if e.ref == ref && e.box == box {
				return []*node{n}, i, nil
			}
		}
		return nil, 0, nil
	}
	if level <= 1 {
		// An inner node where a leaf belongs: descending further would
		// never terminate.
		return nil, 0, fmt.Errorf("%w: inner node %d at leaf level", ErrCorrupt, n.id)
	}
	for _, e := range n.entries {
		if !e.box.Contains(box) {
			continue
		}
		path, idx, err := t.findLeaf(pager.PageID(e.ref), level-1, box, ref)
		if err != nil {
			return nil, 0, err
		}
		if path != nil {
			return append([]*node{n}, path...), idx, nil
		}
	}
	return nil, 0, nil
}
