package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"

	"dmesh/internal/dm"
	"dmesh/internal/obs"
)

// scrape GETs one shard introspection URL and returns the whole body,
// enforcing the same truncation discipline as the tile path: a body
// whose length disagrees with the declared Content-Length is corrupt,
// not short.
func (rt *Router) scrape(url string) ([]byte, error) {
	resp, err := rt.client.Get(url)
	if err != nil {
		return nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: %s: status %d", url, resp.StatusCode)
	}
	if resp.ContentLength >= 0 && int64(len(body)) != resp.ContentLength {
		return nil, fmt.Errorf("cluster: %s: truncated body (%d of %d declared bytes): %w",
			url, len(body), resp.ContentLength, dm.ErrCorrupt)
	}
	return body, nil
}

// Handler mounts the router's cluster-wide observability surface:
//
//   - /clustermetrics — every shard's /metrics plus the router's own
//     registry, parsed and merged deterministically (shards visited in
//     configuration order, metrics emitted name-sorted): counters and
//     histogram buckets sum bucket-wise, so the page reads like one
//     process serving the whole cluster. Synthetic gauges report how
//     many shards answered the scrape.
//   - /clusterhealth — each shard's /healthz + /readyz merged, shard
//     order preserved; 200 only when every shard is ready.
//   - /clusterslowlog — every shard's slow log merged (slowest first,
//     shard-tagged), each entry carrying its wire trace for drill-down.
//
// The merged pages fully encode before writing and declare
// Content-Length, like every fixed-size response in the repo.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/clustermetrics", rt.handleClusterMetrics)
	mux.HandleFunc("/clusterhealth", rt.handleClusterHealth)
	mux.HandleFunc("/clusterslowlog", rt.handleClusterSlowLog)
	return mux
}

// writeBody sends a fully rendered response with Content-Length.
func writeBody(w http.ResponseWriter, status int, contentType string, body []byte) {
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

func clusterError(w http.ResponseWriter, status int, err error) {
	body, _ := json.Marshal(map[string]string{"error": err.Error()})
	writeBody(w, status, "application/json", append(body, '\n'))
}

// handleClusterMetrics scrapes every shard's /metrics, merges them with
// the router's own registry, and serves the union. A shard that fails
// to answer contributes nothing — visible in the synthetic
// cluster_shards_scraped gauge — so the page stays available through
// partial outages.
func (rt *Router) handleClusterMetrics(w http.ResponseWriter, r *http.Request) {
	var own bytes.Buffer
	if err := rt.reg.WritePrometheus(&own); err != nil {
		clusterError(w, http.StatusInternalServerError, err)
		return
	}
	ownSnap, err := obs.ParsePrometheus(&own)
	if err != nil {
		clusterError(w, http.StatusInternalServerError, err)
		return
	}
	snaps := []*obs.PromSnapshot{ownSnap}
	scraped := 0
	for _, base := range rt.shards { // configuration order: deterministic
		body, err := rt.scrape(base + "/metrics")
		if err != nil {
			continue
		}
		snap, err := obs.ParsePrometheus(bytes.NewReader(body))
		if err != nil {
			continue
		}
		snaps = append(snaps, snap)
		scraped++
	}
	merged, err := obs.MergePrometheus(snaps...)
	if err != nil {
		clusterError(w, http.StatusInternalServerError, err)
		return
	}
	merged.Metrics["cluster_shards_total"] = &obs.PromMetric{
		Name: "cluster_shards_total", Help: "shards configured on this router",
		Kind: "gauge", Value: int64(len(rt.shards)),
	}
	merged.Metrics["cluster_shards_scraped"] = &obs.PromMetric{
		Name: "cluster_shards_scraped", Help: "shards whose /metrics answered this scrape",
		Kind: "gauge", Value: int64(scraped),
	}
	var buf bytes.Buffer
	if err := merged.WriteText(&buf); err != nil {
		clusterError(w, http.StatusInternalServerError, err)
		return
	}
	writeBody(w, http.StatusOK, "text/plain; version=0.0.4; charset=utf-8", buf.Bytes())
}

// ShardHealth is one shard's probe outcome in /clusterhealth.
type ShardHealth struct {
	ID      string `json:"id"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Ready   bool   `json:"ready"`
	Error   string `json:"error,omitempty"`
}

// ClusterHealth is the /clusterhealth body.
type ClusterHealth struct {
	Status string        `json:"status"` // "ready" or "degraded"
	Ready  int           `json:"ready_shards"`
	Total  int           `json:"total_shards"`
	Shards []ShardHealth `json:"shards"`
}

// Health probes every shard's /healthz and /readyz, in configuration
// order. The cluster is "ready" only when every shard is.
func (rt *Router) Health() ClusterHealth {
	ch := ClusterHealth{Total: len(rt.shards)}
	for i, base := range rt.shards {
		sh := ShardHealth{ID: rt.ids[i], URL: base}
		if _, err := rt.scrape(base + "/healthz"); err != nil {
			sh.Error = err.Error()
		} else {
			sh.Healthy = true
			if _, err := rt.scrape(base + "/readyz"); err != nil {
				sh.Error = err.Error()
			} else {
				sh.Ready = true
				ch.Ready++
			}
		}
		ch.Shards = append(ch.Shards, sh)
	}
	if ch.Ready == ch.Total {
		ch.Status = "ready"
	} else {
		ch.Status = "degraded"
	}
	return ch
}

func (rt *Router) handleClusterHealth(w http.ResponseWriter, r *http.Request) {
	ch := rt.Health()
	body, err := json.Marshal(ch)
	if err != nil {
		clusterError(w, http.StatusInternalServerError, err)
		return
	}
	status := http.StatusOK
	if ch.Status != "ready" {
		status = http.StatusServiceUnavailable
	}
	writeBody(w, status, "application/json", append(body, '\n'))
}

// ClusterSlowEntry is one shard's slow-log entry tagged with the shard
// it came from. The embedded entry keeps its wire trace, so the merged
// log still drills down to per-span DA on any hop.
type ClusterSlowEntry struct {
	Shard string `json:"shard"`
	obs.SlowEntry
}

// handleClusterSlowLog merges every shard's /slowlog, slowest first
// (ties: shard order, then newest), capped by n (default 20).
func (rt *Router) handleClusterSlowLog(w http.ResponseWriter, r *http.Request) {
	n := 20
	if s := r.URL.Query().Get("n"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			clusterError(w, http.StatusBadRequest, fmt.Errorf("n must be a positive integer"))
			return
		}
		n = v
	}
	var entries []ClusterSlowEntry
	scraped := 0
	for i, base := range rt.shards {
		body, err := rt.scrape(fmt.Sprintf("%s/slowlog?n=%d", base, n))
		if err != nil {
			continue
		}
		var page struct {
			Entries []obs.SlowEntry `json:"entries"`
		}
		if err := json.Unmarshal(body, &page); err != nil {
			continue
		}
		for _, e := range page.Entries {
			entries = append(entries, ClusterSlowEntry{Shard: rt.ids[i], SlowEntry: e})
		}
		scraped++
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Dur != entries[j].Dur {
			return entries[i].Dur > entries[j].Dur
		}
		if entries[i].Shard != entries[j].Shard {
			return entries[i].Shard < entries[j].Shard
		}
		return entries[i].Seq > entries[j].Seq
	})
	if len(entries) > n {
		entries = entries[:n]
	}
	body, err := json.Marshal(struct {
		ScrapedShards int                `json:"scraped_shards"`
		TotalShards   int                `json:"total_shards"`
		Entries       []ClusterSlowEntry `json:"entries"`
	}{scraped, len(rt.shards), entries})
	if err != nil {
		clusterError(w, http.StatusInternalServerError, err)
		return
	}
	writeBody(w, http.StatusOK, "application/json", append(body, '\n'))
}
