package cluster_test

import (
	"bytes"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"dmesh/internal/cluster"
	"dmesh/internal/dm"
	"dmesh/internal/geom"
	"dmesh/internal/obs"
	"dmesh/internal/serve"
	"dmesh/internal/stream"
	"dmesh/internal/tilecache"
)

// localStream encodes, over the single-node reference cache, the stream
// Router.Stream must produce for Q(r, e).
func localStream(t *testing.T, c *tilecache.Cache, r geom.Rect, e float64) *stream.Stream {
	t.Helper()
	band, _ := c.Grid().SnapE(e)
	levels, err := stream.LevelsFor(c.Grid().Ladder(), band)
	if err != nil {
		t.Fatal(err)
	}
	meshes := make([]*dm.Result, 0, len(levels))
	for _, le := range levels {
		res, _, err := c.Query(r, le)
		if err != nil {
			t.Fatal(err)
		}
		meshes = append(meshes, res)
	}
	st, err := stream.Encode(r, levels, meshes)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestRouterStreamMatchesSingleNode: a progressive answer assembled from
// per-shard patch fetches must be byte-identical to the single-node
// stream for the same query, with the fan-out accounting invariant
// holding across every rung — and stay so after a shard dies.
func TestRouterStreamMatchesSingleNode(t *testing.T) {
	tr := terrain(t, "highland")
	single := singleNode(t, tr)
	lc := startLocal(t, tr, 3)
	rng := rand.New(rand.NewSource(23))
	ladder := single.Ladder()

	check := func(roi geom.Rect, e float64, resume int) {
		t.Helper()
		want := localStream(t, single, roi, e)
		var wantBody bytes.Buffer
		if _, err := want.WriteTo(&wantBody, resume); err != nil {
			t.Fatal(err)
		}
		var got bytes.Buffer
		res, st, err := lc.Router.Stream(roi, e, resume, &got)
		if err != nil {
			t.Fatalf("Stream(%v, %g, %d): %v", roi, e, resume, err)
		}
		if !bytes.Equal(got.Bytes(), wantBody.Bytes()) {
			t.Fatalf("clustered stream (%d B) differs from single node (%d B)", got.Len(), wantBody.Len())
		}
		if st.Attempts != st.Tiles+st.Redirected {
			t.Fatalf("attempts %d != tiles %d + redirected %d", st.Attempts, st.Tiles, st.Redirected)
		}
		if st.BytesSent != got.Len() {
			t.Fatalf("BytesSent %d, wrote %d", st.BytesSent, got.Len())
		}
		if st.Batches != len(want.Frames) || st.Sent != len(want.Frames)-(resume+1) {
			t.Fatalf("batches %d sent %d, want %d and %d", st.Batches, st.Sent, len(want.Frames), len(want.Frames)-(resume+1))
		}
		direct, _, derr := single.Query(roi, e)
		if derr != nil {
			t.Fatal(derr)
		}
		if !bytes.Equal(canonicalMesh(res), canonicalMesh(direct)) {
			t.Fatal("Stream's returned mesh differs from the direct query answer")
		}
	}

	for _, roi := range randRects(rng, 4) {
		check(roi, ladder[rng.Intn(len(ladder))], -1)
	}
	roi := geom.Rect{MinX: 0.15, MinY: 0.1, MaxX: 0.8, MaxY: 0.75}
	check(roi, ladder[0], 1) // resume skips the first two batches

	// A dead shard must not change a single byte: failover re-fetches the
	// same canonical tiles elsewhere.
	lc.KillShard(1)
	check(roi, ladder[0], -1)

	if _, st, err := lc.Router.Stream(roi, ladder[0], 99, &bytes.Buffer{}); err == nil {
		t.Fatalf("resume past the schedule succeeded (stats %+v)", st)
	}
}

// truncatingFront fronts a healthy shard handler but serves every /patch
// body cut in half. In "clean" mode the response declares the short
// length — it looks like a complete 200 and only patch decoding can
// reject it; in "lying" mode it declares the full length and the cut
// surfaces in the client transport as an unexpected EOF.
func truncatingFront(t *testing.T, h http.Handler, lying bool) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/patch" {
			h.ServeHTTP(w, r)
			return
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, r)
		body := rec.Body.Bytes()
		half := body[:len(body)/2]
		for k, vs := range rec.Header() {
			if k == "Content-Length" {
				continue
			}
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		declared := len(half)
		if lying {
			declared = len(body)
		}
		w.Header().Set("Content-Length", strconv.Itoa(declared))
		w.WriteHeader(rec.Code)
		w.Write(half)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestFailoverTruncatedBodies is the regression for the router's
// truncation handling: shards that serve cut /patch bodies — whether the
// truncation is visible in the framing (lying Content-Length) or looks
// like a clean short 200 — must count as failed attempts and fail over,
// keeping attempts == tiles + redirects even when several failures
// precede the success. The old accounting recorded at most one redirect
// per tile, so any query with a two-failure tile broke the invariant.
func TestFailoverTruncatedBodies(t *testing.T) {
	tr := terrain(t, "highland")
	single := singleNode(t, tr)

	newShard := func() *serve.Server {
		s, err := serve.New(serve.Config{Terrain: tr})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	good := newShard()
	goodTS := httptest.NewServer(good.Handler(false))
	t.Cleanup(goodTS.Close)
	fronts := []*httptest.Server{
		truncatingFront(t, newShard().Handler(false), false), // clean truncation
		truncatingFront(t, newShard().Handler(false), true),  // lying Content-Length
		goodTS,
	}

	reg := obs.NewRegistry()
	urls := make([]string, len(fronts))
	ids := []string{"shard-0", "shard-1", "shard-2"}
	for i, f := range fronts {
		urls[i] = f.URL
	}
	rt, err := cluster.NewRouter(cluster.Config{
		Shards:   urls,
		IDs:      ids,
		Grid:     good.Grid(),
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(41))
	ladder := single.Ladder()
	maxRedirect := 0
	for _, roi := range randRects(rng, 12) {
		e := ladder[rng.Intn(len(ladder))]
		res, st, err := rt.Query(roi, e)
		if err != nil {
			t.Fatalf("Query(%v, %g): %v", roi, e, err)
		}
		if st.Attempts != st.Tiles+st.Redirected {
			t.Fatalf("attempts %d != tiles %d + redirected %d", st.Attempts, st.Tiles, st.Redirected)
		}
		direct, _, derr := single.Query(roi, e)
		if derr != nil {
			t.Fatal(derr)
		}
		if !bytes.Equal(canonicalMesh(res), canonicalMesh(direct)) {
			t.Fatal("answer assembled around truncating shards differs from single node")
		}
		if st.Redirected > maxRedirect {
			maxRedirect = st.Redirected
		}
	}
	// The ring must have routed some tile through both truncating shards
	// before the good one, or this test isn't exercising the multi-failure
	// accounting at all.
	if maxRedirect < 2 {
		t.Fatalf("no query needed >= 2 redirects (max %d); ring layout defeats the regression", maxRedirect)
	}
	// Every failed attempt preceded a success (the good shard always
	// answers), so the two global counters must agree exactly.
	errs := reg.Counter("cluster_router_shard_errors_total", "").Value()
	reds := reg.Counter("cluster_router_redirects_total", "").Value()
	if errs == 0 || errs != reds {
		t.Fatalf("shard errors %d, redirects %d; want equal and positive", errs, reds)
	}

	// Streaming rides the same fetch path: the progressive answer through
	// the truncating cluster must still be byte-identical to single node.
	roi := geom.Rect{MinX: 0.1, MinY: 0.15, MaxX: 0.85, MaxY: 0.8}
	want := localStream(t, single, roi, ladder[0])
	var wantBody bytes.Buffer
	if _, err := want.WriteTo(&wantBody, -1); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if _, _, err := rt.Stream(roi, ladder[0], -1, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), wantBody.Bytes()) {
		t.Fatal("stream through truncating cluster differs from single node")
	}
}
