package cluster_test

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"dmesh/internal/obs"
)

// checkTracedQuery runs the cross-hop hard invariant for one traced
// cluster query: the root trace balances against the independently
// summed shard headers (CheckTotal), and the shards' spliced spans
// account for every header access (TraceDA == DA).
func checkTracedQuery(t *testing.T, tr *obs.Trace, da, traceDA uint64) {
	t.Helper()
	if err := tr.CheckTotal(da); err != nil {
		t.Fatalf("cross-hop invariant: %v", err)
	}
	if traceDA != da {
		t.Fatalf("shard traces account for %d of %d header disk accesses", traceDA, da)
	}
}

// TestTracedQueryInvariant fans traced queries over a live cluster and
// holds the wire-trace plane to its contract: every query passes the
// three-way cross-hop invariant, the spliced span tree carries one
// shard_hop per fetch attempt that won, remote phases survive the
// splice, and tracing changes no answer-visible accounting (same DA as
// the untraced path).
func TestTracedQueryInvariant(t *testing.T) {
	tr := terrain(t, "highland")
	lc := startLocal(t, tr, 3)
	e := tr.LODPercentile(0.9)
	rng := rand.New(rand.NewSource(11))
	rects := randRects(rng, 12)

	trace := obs.NewTrace(nil)
	for _, r := range rects {
		trace.Reset()
		res, st, err := lc.Router.QueryTraced(r, e, trace)
		if err != nil {
			t.Fatal(err)
		}
		if res == nil {
			t.Fatal("nil result")
		}
		checkTracedQuery(t, trace, st.DA, st.TraceDA)

		spans := trace.Spans()
		var hops int
		for _, sp := range spans {
			if sp.Phase == obs.PhaseShardHop {
				hops++
				if self := sp.SelfDA(); self != 0 {
					t.Errorf("hop claims %d DA itself; the shard's trace must account for all of it", self)
				}
			}
		}
		if hops != st.Tiles {
			t.Errorf("%d shard_hop spans for %d tiles", hops, st.Tiles)
		}
		// Untraced control: identical header accounting, no trace cost.
		_, st2, err := lc.Router.Query(r, e)
		if err != nil {
			t.Fatal(err)
		}
		if st2.DA != 0 {
			t.Errorf("untraced warm repeat cost %d DA, want 0 (tile cache resident)", st2.DA)
		}
		if st2.TraceDA != 0 {
			t.Errorf("untraced query reported TraceDA %d", st2.TraceDA)
		}
	}
}

// TestTracedInvariantWithShardKilled is the acceptance clause: the
// cross-hop invariant must hold on every traced query even while the
// router is failing over around a dead shard — the hop header and wire
// trace both come from the shard that actually answered.
func TestTracedInvariantWithShardKilled(t *testing.T) {
	tr := terrain(t, "highland")
	lc := startLocal(t, tr, 3)
	e := tr.LODPercentile(0.9)
	rng := rand.New(rand.NewSource(13))
	rects := randRects(rng, 16)

	lc.KillShard(1)

	trace := obs.NewTrace(nil)
	redirected := 0
	for _, r := range rects {
		trace.Reset()
		_, st, err := lc.Router.QueryTraced(r, e, trace)
		if err != nil {
			t.Fatal(err)
		}
		checkTracedQuery(t, trace, st.DA, st.TraceDA)
		redirected += st.Redirected
		if st.Attempts != st.Tiles+st.Redirected {
			t.Errorf("attempts %d != tiles %d + redirected %d", st.Attempts, st.Tiles, st.Redirected)
		}
	}
	if redirected == 0 {
		t.Error("no redirects with a shard down; the test exercised nothing")
	}
}

// TestClusterMetricsMerged scrapes /clustermetrics and checks the merge
// contract: the page parses, per-shard counters sum across the cluster,
// the synthetic scrape gauges report the outage truthfully, and two
// scrapes with no traffic in between are byte-identical (deterministic
// merge). Killing a shard must degrade the scrape count, not the page.
func TestClusterMetricsMerged(t *testing.T) {
	tr := terrain(t, "highland")
	lc := startLocal(t, tr, 3)
	e := tr.LODPercentile(0.9)
	rng := rand.New(rand.NewSource(17))
	for _, r := range randRects(rng, 6) {
		if _, _, err := lc.Router.Query(r, e); err != nil {
			t.Fatal(err)
		}
	}
	rts := httptest.NewServer(lc.Router.Handler())
	defer rts.Close()

	fetch := func() (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(rts.URL + "/clustermetrics")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, body
	}
	resp, body := fetch()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/clustermetrics: status %d: %s", resp.StatusCode, body)
	}
	snap, err := obs.ParsePrometheus(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("/clustermetrics does not parse: %v", err)
	}
	if m := snap.Metrics["cluster_shards_total"]; m == nil || m.Value != 3 {
		t.Errorf("cluster_shards_total = %+v, want 3", m)
	}
	if m := snap.Metrics["cluster_shards_scraped"]; m == nil || m.Value != 3 {
		t.Errorf("cluster_shards_scraped = %+v, want 3", m)
	}
	// The shards' patch counters must merge into a cluster-wide sum
	// covering every tile fetch the queries fanned out.
	var shardSum uint64
	for _, s := range lc.Servers {
		shardSum += s.Registry().Counter("tileserver_patch_requests_total", "").Value()
	}
	if m := snap.Metrics["tileserver_patch_requests_total"]; m == nil || uint64(m.Value) != shardSum {
		t.Errorf("merged tileserver_patch_requests_total = %+v, shards hold %d", m, shardSum)
	}
	// Determinism: no traffic between scrapes, identical pages.
	_, body2 := fetch()
	if !bytes.Equal(body, body2) {
		t.Error("two idle /clustermetrics scrapes differ")
	}

	lc.KillShard(2)
	resp3, body3 := fetch()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("/clustermetrics with a shard down: status %d", resp3.StatusCode)
	}
	snap3, err := obs.ParsePrometheus(bytes.NewReader(body3))
	if err != nil {
		t.Fatal(err)
	}
	if m := snap3.Metrics["cluster_shards_scraped"]; m == nil || m.Value != 2 {
		t.Errorf("cluster_shards_scraped with a shard down = %+v, want 2", m)
	}
}

// TestClusterHealth: /clusterhealth is 200 "ready" with every shard up
// and 503 "degraded" naming the dead shard after a kill.
func TestClusterHealth(t *testing.T) {
	tr := terrain(t, "highland")
	lc := startLocal(t, tr, 3)
	rts := httptest.NewServer(lc.Router.Handler())
	defer rts.Close()

	fetch := func(wantStatus int) (ch struct {
		Status string `json:"status"`
		Ready  int    `json:"ready_shards"`
		Total  int    `json:"total_shards"`
		Shards []struct {
			ID      string `json:"id"`
			Healthy bool   `json:"healthy"`
			Ready   bool   `json:"ready"`
		} `json:"shards"`
	}) {
		t.Helper()
		resp, err := http.Get(rts.URL + "/clusterhealth")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != wantStatus {
			t.Fatalf("/clusterhealth: status %d, want %d: %s", resp.StatusCode, wantStatus, body)
		}
		if err := json.Unmarshal(body, &ch); err != nil {
			t.Fatalf("/clusterhealth: %v\n%s", err, body)
		}
		return ch
	}

	ch := fetch(http.StatusOK)
	if ch.Status != "ready" || ch.Ready != 3 || ch.Total != 3 {
		t.Errorf("healthy cluster reported %+v", ch)
	}

	lc.KillShard(0)
	ch = fetch(http.StatusServiceUnavailable)
	if ch.Status != "degraded" || ch.Ready != 2 {
		t.Errorf("degraded cluster reported %+v", ch)
	}
	for _, sh := range ch.Shards {
		if sh.ID == "shard-0" && (sh.Healthy || sh.Ready) {
			t.Errorf("killed shard probed as healthy=%v ready=%v", sh.Healthy, sh.Ready)
		}
		if sh.ID != "shard-0" && !sh.Ready {
			t.Errorf("live shard %s probed not ready", sh.ID)
		}
	}
}

// TestClusterSlowLogCarriesTraces: the merged /clusterslowlog must tag
// every entry with its shard, order slowest-first, and keep each
// entry's wire trace decodable — the cluster-wide drill-down the slow
// log exists for.
func TestClusterSlowLogCarriesTraces(t *testing.T) {
	tr := terrain(t, "highland")
	lc := startLocal(t, tr, 3)
	e := tr.LODPercentile(0.9)
	rng := rand.New(rand.NewSource(19))
	trace := obs.NewTrace(nil)
	for _, r := range randRects(rng, 8) {
		trace.Reset()
		if _, _, err := lc.Router.QueryTraced(r, e, trace); err != nil {
			t.Fatal(err)
		}
	}
	rts := httptest.NewServer(lc.Router.Handler())
	defer rts.Close()

	resp, err := http.Get(rts.URL + "/clusterslowlog?n=50")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/clusterslowlog: status %d: %s", resp.StatusCode, body)
	}
	var page struct {
		ScrapedShards int `json:"scraped_shards"`
		TotalShards   int `json:"total_shards"`
		Entries       []struct {
			Shard     string `json:"shard"`
			DA        uint64 `json:"disk_accesses"`
			Nanos     int64  `json:"nanos"`
			TraceWire string `json:"trace_wire"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(body, &page); err != nil {
		t.Fatalf("/clusterslowlog: %v\n%s", err, body)
	}
	if page.ScrapedShards != 3 || page.TotalShards != 3 {
		t.Errorf("scraped %d/%d shards", page.ScrapedShards, page.TotalShards)
	}
	if len(page.Entries) == 0 {
		t.Fatal("no slow-log entries after traced traffic (threshold 0 admits all)")
	}
	shards := map[string]bool{}
	for i, en := range page.Entries {
		if en.Shard == "" {
			t.Fatalf("entry %d has no shard tag", i)
		}
		shards[en.Shard] = true
		if i > 0 && en.Nanos > page.Entries[i-1].Nanos {
			t.Errorf("entries not slowest-first at %d", i)
		}
		if en.TraceWire == "" {
			t.Fatalf("entry %d (shard %s) has no wire trace", i, en.Shard)
		}
		buf, err := base64.StdEncoding.DecodeString(en.TraceWire)
		if err != nil {
			t.Fatalf("entry %d: wire not base64: %v", i, err)
		}
		wt, err := obs.DecodeTraceWire(buf)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if wt.TotalDA() != en.DA {
			t.Errorf("entry %d: wire trace DA %d, entry DA %d", i, wt.TotalDA(), en.DA)
		}
	}
	if len(shards) < 2 {
		t.Errorf("merged log covers %d shard(s), want the fan-out to hit several: %v", len(shards), shards)
	}
}
