package cluster

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"dmesh/internal/dm"
	"dmesh/internal/geom"
	"dmesh/internal/obs"
	"dmesh/internal/tilecache"
)

// Config parameterizes a Router.
type Config struct {
	// Shards are the shard base URLs ("http://host:port").
	Shards []string
	// IDs are the shards' stable ring identities, parallel to Shards.
	// Placement hashes the identity, not the address, so re-homing a
	// shard (new port, new host) never reshuffles the key space; every
	// router fronting the same identity list computes the same
	// placement. Empty defaults to the URLs themselves.
	IDs []string
	// Grid must equal every shard's tile grid (same data rect, max
	// level, LOD ladder); the router quantizes queries with it exactly
	// like a local tile cache would. Shards publish theirs at /gridinfo.
	Grid *tilecache.Grid
	// VNodes is the ring's virtual-node count per shard (0 = 64).
	VNodes int
	// MaxAttempts bounds how many candidate shards one tile request
	// tries before the query fails (0 = min(3, len(Shards))). Attempts
	// walk the key's ring-successor order, so they land on the shards
	// hot-tile replication warms.
	MaxAttempts int
	// Client issues the shard requests. Nil selects a client with a 30s
	// timeout over a dedicated transport whose idle-connection pool is
	// sized for fan-out: the default transport keeps only 2 idle
	// connections per host, so a multi-tile burst against few shards
	// would discard and re-dial almost every connection it opens.
	Client *http.Client
	// Registry receives the router metrics (nil = a private registry).
	Registry *obs.Registry
}

// QueryStats describes how one fan-out query was answered.
type QueryStats struct {
	SnappedE   float64 // the ladder rung actually served
	Level      int     // tile-grid level of the cover
	Tiles      int     // tiles fanned out to
	DA         uint64  // shard store disk accesses charged to this query
	Attempts   int     // shard requests issued (>= Tiles)
	Redirected int     // tiles served by a later candidate after a failure

	// TraceDA is the disk-access total the shards' spliced wire traces
	// account for themselves — zero on untraced queries. The cross-hop
	// invariant of a traced query is DA == TraceDA == the root trace's
	// CheckTotal figure: every header-reported access appears in exactly
	// one remote phase span.
	TraceDA uint64
}

// Router is the stdlib-only front tier: it consistent-hashes canonical
// tile keys onto shards, fans multi-tile ROI queries out, stitches the
// wire patches exactly (dm.StitchTiles), retries replicas on shard
// failure, and replicates hot tiles via Rebalance. Safe for concurrent
// use.
type Router struct {
	ring        *Ring
	shards      []string
	ids         []string
	grid        *tilecache.Grid
	maxAttempts int
	client      *http.Client

	reg        *obs.Registry
	mQueries   *obs.Counter
	mTiles     *obs.Counter
	mErrors    *obs.Counter
	mRedirects *obs.Counter
	mReplica   *obs.Counter
	hQueryDA   *obs.Histogram
	hQueryNs   *obs.Histogram

	// hot is the replicated tile set from the last Rebalance: key ->
	// replica count R. Reads of a hot key rotate across its R ring
	// candidates (all warmed), spreading the skewed load that made the
	// tile hot in the first place.
	hotMu   sync.RWMutex
	hot     map[tilecache.Key]int
	hotSeq  map[tilecache.Key]*uint64
	hotSeqM sync.Mutex
}

// NewRouter builds a router over the shard list.
func NewRouter(cfg Config) (*Router, error) {
	if cfg.Grid == nil {
		return nil, fmt.Errorf("cluster: Config.Grid is required")
	}
	ids := cfg.IDs
	if len(ids) == 0 {
		ids = cfg.Shards
	}
	if len(ids) != len(cfg.Shards) {
		return nil, fmt.Errorf("cluster: %d ring IDs for %d shards", len(ids), len(cfg.Shards))
	}
	ring, err := NewRing(ids, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	maxAttempts := cfg.MaxAttempts
	if maxAttempts == 0 {
		maxAttempts = 3
		if len(cfg.Shards) < maxAttempts {
			maxAttempts = len(cfg.Shards)
		}
	}
	if maxAttempts < 1 || maxAttempts > len(cfg.Shards) {
		return nil, fmt.Errorf("cluster: MaxAttempts %d outside [1, %d]", maxAttempts, len(cfg.Shards))
	}
	client := cfg.Client
	if client == nil {
		tr, _ := http.DefaultTransport.(*http.Transport)
		if tr != nil {
			tr = tr.Clone()
			tr.MaxIdleConns = 256
			tr.MaxIdleConnsPerHost = 64
		}
		client = &http.Client{Timeout: 30 * time.Second}
		if tr != nil {
			client.Transport = tr
		}
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	rt := &Router{
		ring:        ring,
		shards:      append([]string(nil), cfg.Shards...),
		ids:         append([]string(nil), ids...),
		grid:        cfg.Grid,
		maxAttempts: maxAttempts,
		client:      client,
		reg:         reg,
		hot:         make(map[tilecache.Key]int),
		hotSeq:      make(map[tilecache.Key]*uint64),
	}
	rt.mQueries = reg.Counter("cluster_router_queries_total", "fan-out queries answered")
	rt.mTiles = reg.Counter("cluster_router_tiles_total", "per-tile shard requests that succeeded")
	rt.mErrors = reg.Counter("cluster_router_shard_errors_total", "failed shard attempts (transport error or non-200)")
	rt.mRedirects = reg.Counter("cluster_router_redirects_total", "tiles served by a later candidate after a shard failure")
	rt.mReplica = reg.Counter("cluster_router_replicated_tiles_total", "hot-tile replica warm-ups issued by Rebalance")
	rt.hQueryDA = reg.Histogram("cluster_router_query_disk_accesses", "shard disk accesses per fan-out query")
	rt.hQueryNs = reg.Histogram("cluster_router_query_latency_nanos", "fan-out query latency in nanoseconds")
	return rt, nil
}

// Ring returns the router's placement ring.
func (rt *Router) Ring() *Ring { return rt.ring }

// Registry returns the registry carrying the router metrics.
func (rt *Router) Registry() *obs.Registry { return rt.reg }

// Grid returns the router's quantization grid.
func (rt *Router) Grid() *tilecache.Grid { return rt.grid }

// candidates returns the shard order to try for a key. A key in the hot
// set rotates its starting replica (all R are warmed by Rebalance);
// everything else starts at the primary. The full successor order
// follows in both cases, so the failover path is always complete.
func (rt *Router) candidates(k tilecache.Key) []int {
	order := rt.ring.Order(k.String())
	rt.hotMu.RLock()
	r := rt.hot[k]
	var seq *uint64
	if r > 1 {
		seq = rt.hotSeq[k]
	}
	rt.hotMu.RUnlock()
	if r <= 1 || seq == nil || r > len(order) {
		return order
	}
	rt.hotSeqM.Lock()
	start := int(*seq % uint64(r))
	*seq++
	rt.hotSeqM.Unlock()
	if start == 0 {
		return order
	}
	rot := make([]int, 0, len(order))
	rot = append(rot, order[start])
	for i, s := range order {
		if i != start {
			rot = append(rot, s)
		}
	}
	return rot
}

// tileFetch is one tile's fan-out outcome: the decoded patch, the
// winning shard's accounting, and — on traced queries — the shard's
// wire trace plus the hop's timing, recorded with the goroutine-safe
// Trace.Now so the query goroutine can splice it after the fan-out
// rejoins.
type tileFetch struct {
	tp         *dm.TilePatch
	da         uint64
	attempts   int
	redirected int
	wt         *obs.WireTrace
	start, dur time.Duration
	err        error
}

// fetchTile requests one tile from its candidate shards in order,
// bounded by MaxAttempts, and decodes the wire patch. da is the shard
// store I/O reported for the winning attempt; redirected counts the
// failed attempts that preceded it. A non-nil tr asks the winning shard
// for its phase trace; only tr.Now is called here (fetchTile runs on
// fan-out goroutines, and Now is the one goroutine-safe Trace method).
func (rt *Router) fetchTile(k tilecache.Key, tr *obs.Trace) (f tileFetch) {
	cands := rt.candidates(k)
	if len(cands) > rt.maxAttempts {
		cands = cands[:rt.maxAttempts]
	}
	var lastErr error
	for i, shard := range cands {
		f.attempts++
		start := tr.Now()
		tp, da, wt, err := rt.getPatch(rt.shards[shard], k, tr != nil)
		lastErr = err
		if lastErr == nil {
			// Count every failed attempt that preceded the winner, not
			// just the fact that one happened: the accounting invariant is
			// attempts == tiles + redirects, and with two failures before
			// a success this tile contributes 3 attempts and 1 tile.
			if i > 0 {
				f.redirected = i
				rt.mRedirects.Add(uint64(i))
			}
			rt.mTiles.Inc()
			f.tp, f.da, f.wt = tp, da, wt
			f.start, f.dur = start, tr.Now()-start
			return f
		}
		rt.mErrors.Inc()
	}
	f.err = fmt.Errorf("cluster: tile %s failed on all %d candidates: %w", k, f.attempts, lastErr)
	return f
}

// getPatch issues one /patch request and decodes the body. Any
// transport error, non-200 status, truncated body, or undecodable body
// is a failed attempt — the fail-stop model treats them all as "this
// shard cannot serve the tile right now", and fetchTile fails over to
// the next candidate. With traced set the shard is asked for its phase
// trace (trace=1) and a missing or corrupt X-DM-Trace header fails the
// attempt the same way: a traced query's accounting is part of its
// answer.
func (rt *Router) getPatch(base string, k tilecache.Key, traced bool) (*dm.TilePatch, uint64, *obs.WireTrace, error) {
	url := fmt.Sprintf("%s/patch?level=%d&ix=%d&iy=%d&band=%d", base, k.Level, k.IX, k.IY, k.Band)
	if traced {
		url += "&trace=1"
	}
	resp, err := rt.client.Get(url)
	if err != nil {
		return nil, 0, nil, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, 0, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, 0, nil, fmt.Errorf("cluster: %s: status %d: %s", url, resp.StatusCode, body)
	}
	// The shard declares Content-Length on /patch; a body of any other
	// length is a cut connection or a misbehaving middlebox. (When the
	// declared length exceeds the bytes sent, Go's transport already
	// fails the read above; this catches the short-declaration flavor,
	// where the body "completes" at the wrong size.)
	if resp.ContentLength >= 0 && int64(len(body)) != resp.ContentLength {
		return nil, 0, nil, fmt.Errorf("cluster: %s: truncated body (%d of %d declared bytes): %w",
			url, len(body), resp.ContentLength, dm.ErrCorrupt)
	}
	tp, err := dm.DecodeTilePatch(body)
	if err != nil {
		return nil, 0, nil, err
	}
	da, _ := strconv.ParseUint(resp.Header.Get("X-DM-DA"), 10, 64)
	var wt *obs.WireTrace
	if traced {
		raw, err := base64.StdEncoding.DecodeString(resp.Header.Get("X-DM-Trace"))
		if err != nil {
			return nil, 0, nil, fmt.Errorf("cluster: %s: undecodable X-DM-Trace: %v: %w", url, err, obs.ErrCorrupt)
		}
		if wt, err = obs.DecodeTraceWire(raw); err != nil {
			return nil, 0, nil, fmt.Errorf("cluster: %s: %w", url, err)
		}
	}
	return tp, da, wt, nil
}

// Query answers Q(r, e) through the cluster: snap e onto the ladder,
// cover r with canonical tiles, fetch each tile from its owner (replica
// on failure), stitch exactly. The result equals the single-node
// tilecache answer for the same query — byte for byte once encoded —
// because both sides stitch identical canonical patches.
func (rt *Router) Query(r geom.Rect, e float64) (*dm.Result, QueryStats, error) {
	return rt.QueryTraced(r, e, nil)
}

// QueryTraced is Query recording phase spans on tr (which may be nil).
// The router's trace must be charge-based (obs.NewTrace(nil)): the
// store I/O happens in other processes, so every disk access enters the
// trace through a PhaseShardHop splice — one per fetched tile, carrying
// the shard's X-DM-DA and, beneath it, the shard's own phase spans from
// the X-DM-Trace wire. The cross-hop invariant follows: the root trace
// passes CheckTotal(st.DA) exactly when no shard claims more in spans
// than in its header, and st.TraceDA == st.DA exactly when every shard
// accounts for all of it.
func (rt *Router) QueryTraced(r geom.Rect, e float64, tr *obs.Trace) (*dm.Result, QueryStats, error) {
	start := time.Now()
	tr.Begin(obs.PhaseQuery)
	defer tr.End()
	band, snapped := rt.grid.SnapE(e)
	level := rt.grid.LevelFor(r)
	keys := rt.grid.Cover(r, level, band)
	st := QueryStats{SnappedE: snapped, Level: level, Tiles: len(keys)}

	slots := make([]tileFetch, len(keys))
	var wg sync.WaitGroup
	for i, k := range keys {
		wg.Add(1)
		go func(i int, k tilecache.Key) {
			defer wg.Done()
			slots[i] = rt.fetchTile(k, tr)
		}(i, k)
	}
	wg.Wait()

	// Splice after the barrier, in cover-key order: Trace methods other
	// than Now are not goroutine-safe, and the deterministic order keeps
	// traced span sequences reproducible however the fan-out raced.
	tiles := make([]*dm.TilePatch, len(keys))
	for i := range slots {
		s := &slots[i]
		st.DA += s.da
		st.Attempts += s.attempts
		st.Redirected += s.redirected
		if s.err != nil {
			return nil, st, s.err
		}
		st.TraceDA += s.wt.TotalDA()
		tr.SpliceRemote(obs.PhaseShardHop, s.start, s.dur, s.da, s.wt)
		tiles[i] = s.tp
	}
	res, err := dm.StitchTilesTraced(r, snapped, tiles, tr)
	if err != nil {
		return nil, st, err
	}
	rt.mQueries.Inc()
	rt.hQueryDA.Observe(st.DA)
	rt.hQueryNs.Observe(uint64(time.Since(start)))
	return res, st, nil
}

// RebalanceStats summarizes one Rebalance pass.
type RebalanceStats struct {
	HotKeys    int    // distinct keys selected for replication
	Replicated int    // replica warm-ups issued (HotKeys x (R-1), minus failures)
	WarmDA     uint64 // shard disk accesses the warm-ups cost
	Failed     int    // warm-ups that failed (shard down); non-fatal
}

// Rebalance refreshes the hot-tile replica set: it pulls each shard's
// top-K tile stats (/hottiles), merges them into a global ranking —
// hits descending, Key total order on ties, so every router ranks
// identically — and warms the top keys onto their first R ring
// successors by fetching /patch there. Subsequent reads of a hot key
// rotate across its R candidates. R < 2 or K < 1 clears the hot set.
func (rt *Router) Rebalance(topK, replicas int) (RebalanceStats, error) {
	var st RebalanceStats
	if replicas > len(rt.shards) {
		replicas = len(rt.shards)
	}
	if topK < 1 || replicas < 2 {
		rt.hotMu.Lock()
		rt.hot = make(map[tilecache.Key]int)
		rt.hotSeq = make(map[tilecache.Key]*uint64)
		rt.hotMu.Unlock()
		return st, nil
	}

	// Global ranking: sum per-shard hits per key. Shards that fail to
	// answer just contribute nothing (their tiles stay primary-only).
	hits := make(map[tilecache.Key]uint64)
	for _, base := range rt.shards {
		top, err := rt.getHotTiles(base, topK)
		if err != nil {
			st.Failed++
			continue
		}
		for _, ht := range top {
			hits[ht.key] += ht.hits
		}
	}
	keys := make([]tilecache.Key, 0, len(hits))
	for k := range hits {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if hits[keys[i]] != hits[keys[j]] {
			return hits[keys[i]] > hits[keys[j]]
		}
		return keys[i].Less(keys[j])
	})
	if len(keys) > topK {
		keys = keys[:topK]
	}

	hot := make(map[tilecache.Key]int, len(keys))
	hotSeq := make(map[tilecache.Key]*uint64, len(keys))
	for _, k := range keys {
		order := rt.ring.Order(k.String())
		warmed := 1 // the primary already has it (it is where the hits happened)
		for _, shard := range order[1:replicas] {
			if _, da, _, err := rt.getPatch(rt.shards[shard], k, false); err != nil {
				st.Failed++
			} else {
				st.WarmDA += da
				st.Replicated++
				rt.mReplica.Inc()
				warmed++
			}
		}
		hot[k] = warmed
		hotSeq[k] = new(uint64)
	}
	st.HotKeys = len(keys)
	rt.hotMu.Lock()
	rt.hot = hot
	rt.hotSeq = hotSeq
	rt.hotMu.Unlock()
	return st, nil
}

type hotEntry struct {
	key  tilecache.Key
	hits uint64
}

func (rt *Router) getHotTiles(base string, n int) ([]hotEntry, error) {
	body, err := rt.scrape(fmt.Sprintf("%s/hottiles?n=%d", base, n))
	if err != nil {
		return nil, err
	}
	var raw []struct {
		Level int    `json:"level"`
		IX    int    `json:"ix"`
		IY    int    `json:"iy"`
		Band  int    `json:"band"`
		Hits  uint64 `json:"hits"`
	}
	if err := json.Unmarshal(body, &raw); err != nil {
		return nil, err
	}
	out := make([]hotEntry, 0, len(raw))
	for _, e := range raw {
		out = append(out, hotEntry{
			key:  tilecache.Key{Level: e.Level, IX: e.IX, IY: e.IY, Band: e.Band},
			hits: e.Hits,
		})
	}
	return out, nil
}
