package cluster_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"dmesh"
	"dmesh/internal/cluster"
	"dmesh/internal/dm"
	"dmesh/internal/geom"
	"dmesh/internal/tilecache"
	"dmesh/internal/workload"
)

var (
	terrainOnce sync.Once
	terrains    map[string]*dmesh.Terrain
)

// terrain memoizes the two small test terrains; simplification dominates
// test time, so every test shares them (stores are built per test).
func terrain(t *testing.T, name string) *dmesh.Terrain {
	t.Helper()
	terrainOnce.Do(func() {
		terrains = make(map[string]*dmesh.Terrain)
		for _, n := range []string{"highland", "crater"} {
			tr, err := dmesh.Build(dmesh.Config{Dataset: n, Size: 17, Seed: 7})
			if err != nil {
				panic(err)
			}
			terrains[n] = tr
		}
	})
	return terrains[name]
}

// singleNode builds the single-process reference: a tile cache over its
// own store of the same terrain.
func singleNode(t *testing.T, tr *dmesh.Terrain) *tilecache.Cache {
	t.Helper()
	s, err := tr.NewDMStore()
	if err != nil {
		t.Fatal(err)
	}
	s.DropCaches()
	c, err := tr.NewTileCache(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func startLocal(t *testing.T, tr *dmesh.Terrain, shards int) *cluster.LocalCluster {
	t.Helper()
	lc, err := cluster.StartLocal(cluster.LocalConfig{Terrain: tr, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(lc.Close)
	return lc
}

// canonicalMesh serializes a result into one deterministic byte string:
// vertices sorted by ID, edges low-high then sorted, triangles in canon
// rotation then sorted. Two results with equal canonical bytes are the
// same mesh — the test's "byte-identical" is literal.
func canonicalMesh(res *dm.Result) []byte {
	var buf bytes.Buffer
	ids := make([]int64, 0, len(res.Vertices))
	for id := range res.Vertices {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := res.Vertices[id]
		binary.Write(&buf, binary.LittleEndian, id)
		binary.Write(&buf, binary.LittleEndian, math.Float64bits(p.X))
		binary.Write(&buf, binary.LittleEndian, math.Float64bits(p.Y))
		binary.Write(&buf, binary.LittleEndian, math.Float64bits(p.Z))
	}
	edges := make([][2]int64, 0, len(res.Edges))
	for _, e := range res.Edges {
		if e[0] > e[1] {
			e[0], e[1] = e[1], e[0]
		}
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	for _, e := range edges {
		binary.Write(&buf, binary.LittleEndian, e)
	}
	tris := make([]geom.Triangle, 0, len(res.Triangles))
	for _, tr := range res.Triangles {
		tris = append(tris, tr.Canon())
	}
	sort.Slice(tris, func(i, j int) bool {
		a, b := tris[i], tris[j]
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return a.C < b.C
	})
	for _, tr := range tris {
		binary.Write(&buf, binary.LittleEndian, [3]int64{tr.A, tr.B, tr.C})
	}
	return buf.Bytes()
}

func randRects(rng *rand.Rand, n int) []geom.Rect {
	out := make([]geom.Rect, n)
	for i := range out {
		w := 0.05 + rng.Float64()*0.7
		h := 0.05 + rng.Float64()*0.7
		x := rng.Float64() * (1 - w)
		y := rng.Float64() * (1 - h)
		out[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
	}
	return out
}

// TestRingDeterministic pins the ring's placement contract: identical
// shard lists build identical rings (same successor order for every
// key), the order covers each shard exactly once, and construction
// rejects degenerate shard lists.
func TestRingDeterministic(t *testing.T) {
	ids := []string{"http://s0", "http://s1", "http://s2", "http://s3"}
	r1, err := cluster.NewRing(ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cluster.NewRing(ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(ids))
	for level := 0; level <= 3; level++ {
		n := 1 << level
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < n; ix++ {
				for band := 0; band < 4; band++ {
					k := tilecache.Key{Level: level, IX: ix, IY: iy, Band: band}.String()
					o1, o2 := r1.Order(k), r2.Order(k)
					if fmt.Sprint(o1) != fmt.Sprint(o2) {
						t.Fatalf("key %s: order %v vs %v across identical rings", k, o1, o2)
					}
					if len(o1) != len(ids) {
						t.Fatalf("key %s: order %v does not cover all shards", k, o1)
					}
					seen := make(map[int]bool)
					for _, s := range o1 {
						if seen[s] {
							t.Fatalf("key %s: shard %d repeated in order %v", k, s, o1)
						}
						seen[s] = true
					}
					if r1.Primary(k) != o1[0] {
						t.Fatalf("key %s: primary %d != order[0] %d", k, r1.Primary(k), o1[0])
					}
					counts[o1[0]]++
				}
			}
		}
	}
	// Virtual nodes must spread primaries across every shard: no shard
	// may be starved or own a wild majority.
	total := 0
	for _, c := range counts {
		total += c
	}
	for i, c := range counts {
		frac := float64(c) / float64(total)
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("shard %d owns %.0f%% of keys (counts %v); imbalance too high", i, frac*100, counts)
		}
	}

	if _, err := cluster.NewRing(nil, 0); err == nil {
		t.Error("empty shard list must be rejected")
	}
	if _, err := cluster.NewRing([]string{"a", "a"}, 0); err == nil {
		t.Error("duplicate shard IDs must be rejected")
	}
	if _, err := cluster.NewRing([]string{"a", ""}, 0); err == nil {
		t.Error("empty shard ID must be rejected")
	}
}

// TestClusterExactAgainstSingleNode is the tentpole's acceptance
// property: over random ROIs and LOD bands on both datasets, the
// cluster's fanned-out, wire-decoded, stitched answer is byte-identical
// (canonical encoding) to the single-node tile cache's — and the
// snapped LOD agrees.
func TestClusterExactAgainstSingleNode(t *testing.T) {
	for _, name := range []string{"highland", "crater"} {
		tr := terrain(t, name)
		lc := startLocal(t, tr, 3)
		ref := singleNode(t, tr)

		ladder := lc.Router.Grid().Ladder()
		rng := rand.New(rand.NewSource(99))
		rects := randRects(rng, 12)
		rects = append(rects,
			geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
			geom.Rect{MinX: 0.25, MinY: 0.25, MaxX: 0.75, MaxY: 0.75},
			geom.Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.5, MaxY: 0.5},
		)
		for i, r := range rects {
			e := ladder[rng.Intn(len(ladder))]
			label := fmt.Sprintf("%s[%d]", name, i)
			got, st, err := lc.Router.Query(r, e)
			if err != nil {
				t.Fatalf("%s: cluster query: %v", label, err)
			}
			want, qs, err := ref.Query(r, e)
			if err != nil {
				t.Fatalf("%s: single node: %v", label, err)
			}
			if st.SnappedE != qs.SnappedE {
				t.Fatalf("%s: snapped %g vs single node %g", label, st.SnappedE, qs.SnappedE)
			}
			if !bytes.Equal(canonicalMesh(got), canonicalMesh(want)) {
				t.Fatalf("%s: cluster mesh differs from single node (%d vs %d vertices)",
					label, len(got.Vertices), len(want.Vertices))
			}
		}

		// Every shard quantizes like the router (the /gridinfo contract).
		g := lc.Router.Grid()
		for i, s := range lc.Servers {
			sg := s.Grid()
			if sg.MaxLevel() != g.MaxLevel() || sg.DataRect() != g.DataRect() ||
				fmt.Sprint(sg.Ladder()) != fmt.Sprint(g.Ladder()) {
				t.Errorf("%s: shard %d grid differs from router grid", name, i)
			}
		}
	}
}

// TestClusterExactWithShardDown re-runs the exactness property with one
// shard fail-stopped: answers stay byte-identical to the single node
// (served via replicas), retries stay bounded, and the error counters
// account for every redirected tile.
func TestClusterExactWithShardDown(t *testing.T) {
	for _, name := range []string{"highland", "crater"} {
		tr := terrain(t, name)
		lc := startLocal(t, tr, 3)
		ref := singleNode(t, tr)
		lc.KillShard(1)

		ladder := lc.Router.Grid().Ladder()
		rng := rand.New(rand.NewSource(7))
		var redirects, attempts, tiles int
		for i, r := range randRects(rng, 10) {
			e := ladder[rng.Intn(len(ladder))]
			label := fmt.Sprintf("%s[%d]", name, i)
			got, st, err := lc.Router.Query(r, e)
			if err != nil {
				t.Fatalf("%s: cluster query with shard down: %v", label, err)
			}
			want, _, err := ref.Query(r, e)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(canonicalMesh(got), canonicalMesh(want)) {
				t.Fatalf("%s: wrong answer with shard down", label)
			}
			if st.Attempts > st.Tiles*2 {
				t.Errorf("%s: %d attempts for %d tiles; retries not bounded by the one dead shard",
					label, st.Attempts, st.Tiles)
			}
			if st.Attempts-st.Tiles != st.Redirected {
				t.Errorf("%s: %d extra attempts but %d redirects", label, st.Attempts-st.Tiles, st.Redirected)
			}
			redirects += st.Redirected
			attempts += st.Attempts
			tiles += st.Tiles
		}
		if redirects == 0 {
			t.Errorf("%s: no tile was ever routed to the dead shard; kill not exercised", name)
		}
		reg := lc.Router.Registry()
		errs := reg.Counter("cluster_router_shard_errors_total", "").Value()
		reds := reg.Counter("cluster_router_redirects_total", "").Value()
		if int(reds) != redirects {
			t.Errorf("%s: redirect counter %d != observed %d", name, reds, redirects)
		}
		if errs != reds {
			t.Errorf("%s: %d shard errors but %d redirects; every failure must be accounted a redirect",
				name, errs, reds)
		}
	}
}

// TestFailoverMidHotSpot is the satellite's failover drill: concurrent
// HotSpot clients, hot tiles replicated onto 2 shards, one shard killed
// mid-run. Zero wrong answers (byte-identical to the single node), zero
// failed queries, bounded retries, and the obs counters account for
// every redirected request.
func TestFailoverMidHotSpot(t *testing.T) {
	tr := terrain(t, "highland")
	lc := startLocal(t, tr, 3)
	ref := singleNode(t, tr)

	hs := workload.HotSpot{Clients: 4, PerClient: 8, AreaFrac: 0.05, Seed: 21}
	clients := hs.ROIs()
	ladder := lc.Router.Grid().Ladder()
	band := len(ladder) / 2
	e := ladder[band]

	// Precompute the single-node reference for every distinct ROI.
	want := make(map[geom.Rect][]byte)
	for _, qs := range clients {
		for _, r := range qs {
			if _, ok := want[r]; !ok {
				res, _, err := ref.Query(r, e)
				if err != nil {
					t.Fatal(err)
				}
				want[r] = canonicalMesh(res)
			}
		}
	}

	// Epoch 0 warms the primaries, then hot tiles replicate onto R=2.
	for _, qs := range clients {
		for _, r := range qs[:2] {
			if _, _, err := lc.Router.Query(r, e); err != nil {
				t.Fatalf("warmup: %v", err)
			}
		}
	}
	rb, err := lc.Router.Rebalance(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rb.HotKeys == 0 || rb.Replicated == 0 {
		t.Fatalf("rebalance replicated nothing: %+v", rb)
	}

	run := func(phase string, lo, hi int) (attempts, tiles, redirected int) {
		t.Helper()
		var mu sync.Mutex
		var wg sync.WaitGroup
		for ci := range clients {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				for _, r := range clients[ci][lo:hi] {
					res, st, err := lc.Router.Query(r, e)
					if err != nil {
						t.Errorf("%s: client %d: query failed: %v", phase, ci, err)
						return
					}
					if !bytes.Equal(canonicalMesh(res), want[r]) {
						t.Errorf("%s: client %d: WRONG ANSWER for %v", phase, ci, r)
						return
					}
					if st.Attempts > st.Tiles*2 {
						t.Errorf("%s: client %d: %d attempts for %d tiles", phase, ci, st.Attempts, st.Tiles)
					}
					mu.Lock()
					attempts += st.Attempts
					tiles += st.Tiles
					redirected += st.Redirected
					mu.Unlock()
				}
			}(ci)
		}
		wg.Wait()
		return
	}

	preA, preT, preR := run("pre-kill", 2, 5)
	if preA != preT+preR {
		t.Errorf("pre-kill: attempts %d != tiles %d + redirects %d", preA, preT, preR)
	}

	errsBefore := lc.Router.Registry().Counter("cluster_router_shard_errors_total", "").Value()
	lc.KillShard(2)
	postA, postT, postR := run("post-kill", 5, 8)
	if postR == 0 {
		t.Error("post-kill: no redirects — the dead shard owned nothing? (should be ~1/3 of keys)")
	}
	if postA != postT+postR {
		t.Errorf("post-kill: attempts %d != tiles %d + redirects %d", postA, postT, postR)
	}

	// Accounting: every post-kill shard error produced exactly one
	// redirect (only one shard is dead, so the second candidate wins).
	reg := lc.Router.Registry()
	errs := reg.Counter("cluster_router_shard_errors_total", "").Value() - errsBefore
	reds := reg.Counter("cluster_router_redirects_total", "").Value()
	if int(reds) != preR+postR {
		t.Errorf("redirect counter %d != observed %d", reds, preR+postR)
	}
	if errs != uint64(postR) {
		t.Errorf("%d post-kill shard errors but %d post-kill redirects", errs, postR)
	}
}

// TestRebalanceDeterministicAndWarm checks the replication policy: the
// global hot ranking is deterministic (two passes pick the same keys),
// replicas actually hold the tiles afterwards (a second pass costs zero
// warm DA), and R is clamped to the cluster size.
func TestRebalanceDeterministicAndWarm(t *testing.T) {
	tr := terrain(t, "highland")
	lc := startLocal(t, tr, 3)

	ladder := lc.Router.Grid().Ladder()
	e := ladder[len(ladder)/2]
	hs := workload.HotSpot{Clients: 3, PerClient: 6, AreaFrac: 0.05, Seed: 5}
	for _, qs := range hs.ROIs() {
		for _, r := range qs {
			if _, _, err := lc.Router.Query(r, e); err != nil {
				t.Fatal(err)
			}
		}
	}

	rb1, err := lc.Router.Rebalance(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rb1.HotKeys == 0 {
		t.Fatal("no hot keys after a skewed workload")
	}
	if rb1.Replicated != rb1.HotKeys {
		t.Errorf("replicated %d warm-ups for %d hot keys with R=2; want one replica each",
			rb1.Replicated, rb1.HotKeys)
	}
	// Second pass: same ranking, and the replicas are already resident,
	// so warming them again must cost no store I/O.
	rb2, err := lc.Router.Rebalance(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rb2.HotKeys != rb1.HotKeys {
		t.Errorf("hot-key count changed across identical passes: %d vs %d", rb1.HotKeys, rb2.HotKeys)
	}
	if rb2.WarmDA != 0 {
		t.Errorf("second rebalance cost %d DA; replicas were not retained", rb2.WarmDA)
	}

	// R beyond the cluster clamps instead of failing.
	if _, err := lc.Router.Rebalance(6, 99); err != nil {
		t.Errorf("oversized R: %v", err)
	}
}
