package cluster

import (
	"fmt"
	"io"
	"time"

	"dmesh/internal/dm"
	"dmesh/internal/geom"
	"dmesh/internal/obs"
	"dmesh/internal/stream"
)

// StreamStats describes how one progressive answer was assembled and
// what it cost on the wire.
type StreamStats struct {
	SnappedE float64 // the ladder rung the full stream decodes to
	Batches  int     // batches in the stream (ladder rungs, coarse to fine)
	Sent     int     // frames actually written (resume skips the rest)

	BytesToFirst int // header + coarsest batch: the first-render cost
	BytesToExact int // header + every batch: the exact-answer cost
	BytesSent    int // bytes actually written for this request

	// Fan-out accounting summed over every rung's Query; the invariant
	// Attempts == Tiles + Redirected holds for the whole stream.
	DA         uint64
	Tiles      int
	Attempts   int
	Redirected int

	// TraceDA sums the rungs' shard-trace-accounted DA (see
	// QueryStats.TraceDA); zero on untraced streams.
	TraceDA uint64
}

// Stream assembles the progressive answer for Q(r, e) from per-shard
// patch fetches and writes it to w: for each LOD-ladder rung from the
// coarsest down to the rung e snaps to, it fans the rung's tile cover
// out across the cluster, stitches exactly, and encodes the delta
// batch. The bytes written are identical to a single node's /stream
// body for the same query — both sides encode identical canonical
// meshes with the same deterministic codec — so a client cannot tell
// whether its stream was assembled by one process or a cluster.
//
// resume is the last batch index the client already holds (-1 streams
// everything). Earlier rungs are still queried — the delta state needs
// them — but not transmitted. The returned Result is the full-stream
// mesh (the direct answer at the snapped rung).
func (rt *Router) Stream(r geom.Rect, e float64, resume int, w io.Writer) (*dm.Result, StreamStats, error) {
	return rt.StreamTraced(r, e, resume, w, nil)
}

// StreamTraced is Stream recording phase spans on tr (which may be
// nil, and must be charge-based like QueryTraced's): one root span over
// the whole stream, the rung queries' fan-out hops beneath it, encode
// spans for the codec work, and PhaseStreamReplay spans wrapping the
// rungs a resumed stream re-runs only to rebuild delta state.
func (rt *Router) StreamTraced(r geom.Rect, e float64, resume int, w io.Writer, tr *obs.Trace) (*dm.Result, StreamStats, error) {
	band, snapped := rt.grid.SnapE(e)
	levels, err := stream.LevelsFor(rt.grid.Ladder(), band)
	if err != nil {
		return nil, StreamStats{}, err
	}
	st := StreamStats{SnappedE: snapped, Batches: len(levels)}
	if resume < -1 || resume >= len(levels) {
		return nil, st, fmt.Errorf("cluster: resume %d outside [-1, %d)", resume, len(levels))
	}
	enc, err := stream.NewEncoder(r, levels)
	if err != nil {
		return nil, st, err
	}
	start := time.Now()
	tr.Begin(obs.PhaseQuery)
	defer tr.End()
	hdr := enc.Header()
	st.BytesToFirst = len(hdr)
	st.BytesToExact = len(hdr)
	n, err := w.Write(hdr)
	st.BytesSent += n
	if err != nil {
		return nil, st, err
	}
	var res *dm.Result
	for i, le := range levels {
		replay := i <= resume
		if replay {
			tr.Begin(obs.PhaseStreamReplay)
		}
		var qs QueryStats
		res, qs, err = rt.QueryTraced(r, le, tr)
		if err != nil {
			if replay {
				tr.End()
			}
			return nil, st, fmt.Errorf("cluster: stream rung %d (E %g): %w", i, le, err)
		}
		st.DA += qs.DA
		st.Tiles += qs.Tiles
		st.Attempts += qs.Attempts
		st.Redirected += qs.Redirected
		st.TraceDA += qs.TraceDA
		frame, err := enc.EncodeNextTraced(res, tr)
		if err != nil {
			if replay {
				tr.End()
			}
			return nil, st, err
		}
		if i == 0 {
			st.BytesToFirst += len(frame)
		}
		st.BytesToExact += len(frame)
		if replay {
			tr.End()
			continue
		}
		n, err := w.Write(frame)
		st.BytesSent += n
		if err != nil {
			return nil, st, err
		}
		st.Sent++
	}
	rt.hQueryNs.Observe(uint64(time.Since(start)))
	return res, st, nil
}
