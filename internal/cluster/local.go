package cluster

import (
	"fmt"
	"net/http/httptest"
	"sync"

	"dmesh"
	"dmesh/internal/obs"
	"dmesh/internal/serve"
)

// LocalCluster is an in-process cluster for tests and experiments: N
// shard servers (each a full serve.Server over its own store built from
// one shared terrain) behind httptest front ends, plus a router over
// them. It exercises the real HTTP path — wire encoding, headers,
// fail-stop connection errors — without ports to coordinate.
type LocalCluster struct {
	Terrain *dmesh.Terrain
	Servers []*serve.Server
	HTTP    []*httptest.Server
	Router  *Router

	mu     sync.Mutex
	killed []bool
}

// LocalConfig parameterizes StartLocal. The zero value of everything
// but Terrain and Shards is serviceable.
type LocalConfig struct {
	// Terrain is the dataset every shard serves (required).
	Terrain *dmesh.Terrain
	// Shards is the shard count (required, >= 1).
	Shards int
	// CacheMaxBytes caps each shard's tile cache (0 = tilecache default).
	CacheMaxBytes int
	// VNodes and MaxAttempts configure the router ring (0 = defaults).
	VNodes      int
	MaxAttempts int
	// Registry receives the router metrics (nil = private).
	Registry *obs.Registry
}

// StartLocal builds and starts an in-process cluster. Callers must
// Close it.
func StartLocal(cfg LocalConfig) (*LocalCluster, error) {
	if cfg.Terrain == nil {
		return nil, fmt.Errorf("cluster: LocalConfig.Terrain is required")
	}
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("cluster: LocalConfig.Shards must be >= 1")
	}
	lc := &LocalCluster{Terrain: cfg.Terrain, killed: make([]bool, cfg.Shards)}
	urls := make([]string, 0, cfg.Shards)
	ids := make([]string, 0, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		s, err := serve.New(serve.Config{
			Terrain:       cfg.Terrain,
			CacheMaxBytes: cfg.CacheMaxBytes,
		})
		if err != nil {
			lc.Close()
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		// Introspection on: the router's /clustermetrics and
		// /clusterslowlog scrape the shards' /metrics and /slowlog.
		ts := httptest.NewServer(s.Handler(true))
		lc.Servers = append(lc.Servers, s)
		lc.HTTP = append(lc.HTTP, ts)
		urls = append(urls, ts.URL)
		// Stable logical identities: httptest ports are random, and
		// hashing them would reshuffle placement on every run.
		ids = append(ids, fmt.Sprintf("shard-%d", i))
	}
	// The router's grid is shard 0's — pure arithmetic over (data rect,
	// max level, ladder), identical on every shard by construction since
	// they share the terrain.
	rt, err := NewRouter(Config{
		Shards:      urls,
		IDs:         ids,
		Grid:        lc.Servers[0].Grid(),
		VNodes:      cfg.VNodes,
		MaxAttempts: cfg.MaxAttempts,
		Registry:    cfg.Registry,
	})
	if err != nil {
		lc.Close()
		return nil, err
	}
	lc.Router = rt
	return lc, nil
}

// KillShard fail-stops shard i: its front end closes immediately,
// in-flight and future requests to it fail at the transport, and the
// router must survive via replicas. Idempotent.
func (lc *LocalCluster) KillShard(i int) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if lc.killed[i] {
		return
	}
	lc.killed[i] = true
	lc.HTTP[i].CloseClientConnections()
	lc.HTTP[i].Close()
}

// Alive reports whether shard i has not been killed.
func (lc *LocalCluster) Alive(i int) bool {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return !lc.killed[i]
}

// Close shuts every still-alive shard down.
func (lc *LocalCluster) Close() {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	for i, ts := range lc.HTTP {
		if !lc.killed[i] {
			lc.killed[i] = true
			ts.Close()
		}
	}
}
