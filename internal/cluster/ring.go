// Package cluster is the horizontally sharded tile-serving tier: a
// deterministic consistent-hash ring partitions the canonical tilecache
// key space across N shard servers (each an internal/serve.Server), a
// stdlib-only router answers ROI queries by fanning per-tile requests
// out to the owning shards and stitching the returned wire patches with
// dm.StitchTiles, hot tiles are replicated onto R ring successors using
// the caches' per-tile hit stats, and a failed shard is survived by
// retrying the next replica (fail-stop model, bounded attempts).
//
// The partitioning trick is the HTM paper's: hierarchical cell IDs as
// shard keys. A tile key's canonical spelling (Key.String, "L/IY/IX/B")
// is hashed with FNV-1a onto a ring of virtual nodes, so every router
// and every shard — any process holding the same shard ID list —
// computes the same placement with no coordination.
//
// Every shard holds a complete DM store built from the shared terrain
// (shared-storage model), so correctness never depends on placement:
// any shard can materialize any tile, and the ring only decides whose
// cache pays for it. That is what makes failover trivial — a redirected
// request is just a cold(er) cache, never a wrong answer.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// defaultVNodes is the virtual-node count per shard; 64 keeps the
// per-shard load imbalance under a few percent for small clusters.
const defaultVNodes = 64

type ringPoint struct {
	hash  uint64
	shard int // index into the shard ID list
	vnode int
}

// Ring is an immutable consistent-hash ring over a fixed shard list.
// Construction is deterministic: the same IDs and vnode count always
// produce the same ring, whatever order maps iterate in.
type Ring struct {
	ids    []string
	points []ringPoint
}

// NewRing builds a ring with vnodes virtual nodes per shard (0 selects
// the default). Shard IDs must be non-empty and unique: they are the
// hashed identity, so a duplicate would silently merge two shards.
func NewRing(ids []string, vnodes int) (*Ring, error) {
	if len(ids) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard")
	}
	if vnodes == 0 {
		vnodes = defaultVNodes
	}
	if vnodes < 0 {
		return nil, fmt.Errorf("cluster: negative vnode count")
	}
	seen := make(map[string]bool, len(ids))
	for _, id := range ids {
		if id == "" {
			return nil, fmt.Errorf("cluster: empty shard ID")
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate shard ID %q", id)
		}
		seen[id] = true
	}
	r := &Ring{
		ids:    append([]string(nil), ids...),
		points: make([]ringPoint, 0, len(ids)*vnodes),
	}
	for si, id := range r.ids {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(fmt.Sprintf("%s#%d", id, v)),
				shard: si,
				vnode: v,
			})
		}
	}
	// Total order on (hash, shard, vnode): hash collisions between
	// distinct vnodes get a deterministic tie-break instead of an
	// iteration-order one.
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		if a.shard != b.shard {
			return a.shard < b.shard
		}
		return a.vnode < b.vnode
	})
	return r, nil
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is a splitmix64-style finalizer. FNV-1a avalanches weakly on the
// short, structured strings hashed here (tile keys, "id#vnode"), which
// clusters ring positions and skews the shard balance badly; the
// finalizer restores uniform dispersion while staying deterministic.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NumShards returns the shard count.
func (r *Ring) NumShards() int { return len(r.ids) }

// IDs returns the shard identity list in construction order.
func (r *Ring) IDs() []string { return append([]string(nil), r.ids...) }

// Order returns every shard index in the key's ring-successor order:
// element 0 is the primary owner, element 1 the first replica target,
// and so on — the failover and replication sequence for the key.
func (r *Ring) Order(key string) []int {
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, len(r.ids))
	seen := make([]bool, len(r.ids))
	for i := 0; i < len(r.points) && len(out) < len(r.ids); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}

// Primary returns the key's owning shard index.
func (r *Ring) Primary(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	return r.points[i%len(r.points)].shard
}
