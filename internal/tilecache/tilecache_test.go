package tilecache_test

// External test package: it exercises the cache through the same
// construction path real callers use (the dmesh facade builds terrains
// and stores), which the in-package tests cannot import without a cycle.

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"dmesh"
	"dmesh/internal/dm"
	"dmesh/internal/geom"
	"dmesh/internal/tilecache"
)

var (
	terrainOnce sync.Once
	terrains    map[string]*dmesh.Terrain
)

// terrain memoizes the two small test terrains; simplification dominates
// test time, so every test shares them (stores are built per test).
func terrain(t *testing.T, name string) *dmesh.Terrain {
	t.Helper()
	terrainOnce.Do(func() {
		terrains = make(map[string]*dmesh.Terrain)
		for _, n := range []string{"highland", "crater"} {
			tr, err := dmesh.Build(dmesh.Config{Dataset: n, Size: 17, Seed: 7})
			if err != nil {
				panic(err)
			}
			terrains[n] = tr
		}
	})
	return terrains[name]
}

func newCache(t *testing.T, tr *dmesh.Terrain, maxBytes int) (*tilecache.Cache, *dmesh.DMStore) {
	t.Helper()
	s, err := tr.NewDMStore()
	if err != nil {
		t.Fatal(err)
	}
	s.DropCaches() // building leaves the pool warm; materializations must pay
	c, err := tr.NewTileCache(s, maxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return c, s
}

// sameMesh compares two results as vertex/edge/triangle sets (slice
// order is unspecified).
func sameMesh(t *testing.T, label string, got, want *dm.Result) {
	t.Helper()
	if len(got.Vertices) != len(want.Vertices) {
		t.Fatalf("%s: %d vertices, want %d", label, len(got.Vertices), len(want.Vertices))
	}
	for id, p := range want.Vertices {
		if gp, ok := got.Vertices[id]; !ok || gp != p {
			t.Fatalf("%s: vertex %d missing or misplaced", label, id)
		}
	}
	edgeSet := func(es [][2]int64) map[[2]int64]struct{} {
		m := make(map[[2]int64]struct{}, len(es))
		for _, e := range es {
			if e[0] > e[1] {
				e[0], e[1] = e[1], e[0]
			}
			m[e] = struct{}{}
		}
		return m
	}
	ge, we := edgeSet(got.Edges), edgeSet(want.Edges)
	if len(ge) != len(we) {
		t.Fatalf("%s: %d edges, want %d", label, len(ge), len(we))
	}
	for e := range we {
		if _, ok := ge[e]; !ok {
			t.Fatalf("%s: edge %v missing", label, e)
		}
	}
	triSet := func(ts []geom.Triangle) map[geom.Triangle]struct{} {
		m := make(map[geom.Triangle]struct{}, len(ts))
		for _, tr := range ts {
			m[tr.Canon()] = struct{}{}
		}
		return m
	}
	gt, wt := triSet(got.Triangles), triSet(want.Triangles)
	if len(gt) != len(wt) {
		t.Fatalf("%s: %d triangles, want %d", label, len(gt), len(wt))
	}
	for tr := range wt {
		if _, ok := gt[tr]; !ok {
			t.Fatalf("%s: triangle %v missing", label, tr)
		}
	}
}

func randRects(rng *rand.Rand, n int) []geom.Rect {
	out := make([]geom.Rect, n)
	for i := range out {
		w := 0.05 + rng.Float64()*0.7
		h := 0.05 + rng.Float64()*0.7
		x := rng.Float64() * (1 - w)
		y := rng.Float64() * (1 - h)
		out[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}
	}
	return out
}

// TestQueryExactAgainstDirect is the subsystem's acceptance property:
// cached, stitched answers are exactly equal to direct dm queries at the
// snapped LOD, over randomized ROIs and LODs on both datasets — with
// repeats so later queries are answered from (partially) warm tiles.
func TestQueryExactAgainstDirect(t *testing.T) {
	for _, name := range []string{"highland", "crater"} {
		tr := terrain(t, name)
		c, s := newCache(t, tr, 0)
		rng := rand.New(rand.NewSource(11))
		rects := randRects(rng, 20)
		edge := []geom.Rect{
			{MinX: 0.25, MinY: 0.25, MaxX: 0.75, MaxY: 0.75}, // tile-aligned
			{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},             // whole space
			{MinX: 0.5, MinY: 0.5, MaxX: 0.5, MaxY: 0.5},     // zero-area
			{MinX: -0.4, MinY: 0.1, MaxX: 1.4, MaxY: 0.3},    // past the data space
		}
		rects = append(rects, edge...)
		for i, r := range rects {
			e := tr.LODPercentile(0.45 + 0.55*rng.Float64())
			res, qs, err := c.Query(r, e)
			if err != nil {
				t.Fatalf("%s[%d]: %v", name, i, err)
			}
			want, err := s.ViewpointIndependent(r, qs.SnappedE)
			if err != nil {
				t.Fatal(err)
			}
			sameMesh(t, fmt.Sprintf("%s[%d]", name, i), res, want)
		}
		st := c.Stats()
		if st.Hits == 0 {
			t.Errorf("%s: no tile hits across %d overlapping queries", name, len(rects))
		}
		if st.Misses == 0 || st.MaterializeDA == 0 {
			t.Errorf("%s: implausible stats %+v", name, st)
		}
	}
}

// TestQueryExactUnderEviction squeezes the byte budget so tiles are
// continually evicted and re-materialized; answers must stay exact and
// eviction must actually happen.
func TestQueryExactUnderEviction(t *testing.T) {
	tr := terrain(t, "highland")
	big, s := newCache(t, tr, 0)
	// Size the budget at roughly two tiles so most queries evict.
	probe, _, err := big.Query(geom.Rect{MinX: 0, MinY: 0, MaxX: 0.45, MaxY: 0.45}, tr.LODPercentile(0.9))
	if err != nil || len(probe.Vertices) == 0 {
		t.Fatalf("probe query failed: %v", err)
	}
	budget := 0
	for _, ts := range big.TileStats() {
		budget += ts.Bytes
	}
	budget = budget/len(big.TileStats())*2 + 1
	c, err := tr.NewTileCache(s, budget)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	for i, r := range randRects(rng, 30) {
		e := tr.LODPercentile(0.6 + 0.4*rng.Float64())
		res, qs, err := c.Query(r, e)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want, err := s.ViewpointIndependent(r, qs.SnappedE)
		if err != nil {
			t.Fatal(err)
		}
		sameMesh(t, fmt.Sprintf("evict[%d]", i), res, want)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("budget %d bytes never evicted: %+v", budget, st)
	}
	if st.Bytes > budget {
		t.Fatalf("resident %d bytes exceeds budget %d", st.Bytes, budget)
	}
}

// TestConcurrentSingleflight hammers one cold ROI from many goroutines:
// every tile must be materialized exactly once, the rest of the lookups
// dedup onto the flight, and all results agree. Run under -race in CI.
func TestConcurrentSingleflight(t *testing.T) {
	tr := terrain(t, "crater")
	c, s := newCache(t, tr, 0)
	r := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.6, MaxY: 0.55}
	e := tr.LODPercentile(0.9)

	const clients = 16
	results := make([]*dm.Result, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := c.Query(r, e)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	want, err := s.ViewpointIndependent(r, c.SnapE(e))
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res == nil {
			t.Fatal("missing result")
		}
		sameMesh(t, fmt.Sprintf("client[%d]", i), res, want)
	}
	st := c.Stats()
	tiles := len(c.TileStats())
	if int(st.Misses) != tiles {
		t.Errorf("%d misses for %d distinct tiles (every tile must be materialized exactly once)", st.Misses, tiles)
	}
	if st.DedupedMisses+st.Hits != uint64(clients*tiles)-st.Misses {
		t.Errorf("lookup accounting off: %+v for %d clients x %d tiles", st, clients, tiles)
	}
}

// TestConcurrentMixedWorkload runs racing queries over random ROIs with
// occasional invalidations — primarily a -race exerciser, with exactness
// re-checked after the dust settles.
func TestConcurrentMixedWorkload(t *testing.T) {
	tr := terrain(t, "highland")
	c, s := newCache(t, tr, 1<<18) // small budget: evictions race too
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			for i, r := range randRects(rng, 10) {
				e := tr.LODPercentile(0.5 + 0.5*rng.Float64())
				if _, _, err := c.Query(r, e); err != nil {
					t.Errorf("g%d q%d: %v", g, i, err)
					return
				}
				if i%7 == 3 {
					c.Invalidate(r)
				}
			}
		}(g)
	}
	wg.Wait()
	r := geom.Rect{MinX: 0.1, MinY: 0.3, MaxX: 0.8, MaxY: 0.9}
	res, qs, err := c.Query(r, tr.LODPercentile(0.8))
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.ViewpointIndependent(r, qs.SnappedE)
	if err != nil {
		t.Fatal(err)
	}
	sameMesh(t, "after races", res, want)
}

// TestInvalidate drops tiles and verifies re-materialization stays exact
// and the counters move.
func TestInvalidate(t *testing.T) {
	tr := terrain(t, "highland")
	c, s := newCache(t, tr, 0)
	r := geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.9}
	e := tr.LODPercentile(0.9)
	if _, _, err := c.Query(r, e); err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	if before.Entries == 0 {
		t.Fatal("nothing cached")
	}
	c.Invalidate(geom.Rect{MinX: 0, MinY: 0, MaxX: 0.5, MaxY: 0.5})
	mid := c.Stats()
	if mid.Entries >= before.Entries {
		t.Fatalf("invalidate dropped nothing: %d -> %d entries", before.Entries, mid.Entries)
	}
	res, qs, err := c.Query(r, e)
	if err != nil {
		t.Fatal(err)
	}
	if qs.ColdMisses == 0 {
		t.Error("re-query after invalidate should re-materialize")
	}
	want, err := s.ViewpointIndependent(r, qs.SnappedE)
	if err != nil {
		t.Fatal(err)
	}
	sameMesh(t, "after invalidate", res, want)

	c.InvalidateAll()
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("InvalidateAll left %d entries / %d bytes", st.Entries, st.Bytes)
	}
}

// TestTileStatsDeterministic checks the accounting view: sorted keys,
// hit counts that add up, per-tile DA that sums to the total.
func TestTileStatsDeterministic(t *testing.T) {
	tr := terrain(t, "highland")
	c, _ := newCache(t, tr, 0)
	r := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.7, MaxY: 0.7}
	e := tr.LODPercentile(0.95)
	for i := 0; i < 3; i++ {
		if _, _, err := c.Query(r, e); err != nil {
			t.Fatal(err)
		}
	}
	ts := c.TileStats()
	if len(ts) == 0 {
		t.Fatal("no resident tiles")
	}
	if !sort.SliceIsSorted(ts, func(i, j int) bool { return ts[i].Key.Less(ts[j].Key) }) {
		t.Fatal("TileStats not in key order")
	}
	var hits, da uint64
	for _, s := range ts {
		hits += s.Hits
		da += s.DA
	}
	st := c.Stats()
	if hits != st.Hits {
		t.Errorf("per-tile hits %d != total hits %d", hits, st.Hits)
	}
	if da != st.MaterializeDA {
		t.Errorf("per-tile DA %d != total materialize DA %d", da, st.MaterializeDA)
	}
	// Repeating the same query pattern on a fresh cache over the same
	// store reproduces the same per-tile accounting (determinism).
	c2, err := tr.NewTileCache(mustStore(t, tr), 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := c2.Query(r, e); err != nil {
			t.Fatal(err)
		}
	}
	ts2 := c2.TileStats()
	if len(ts2) != len(ts) {
		t.Fatalf("fresh cache has %d tiles, want %d", len(ts2), len(ts))
	}
	for i := range ts {
		if ts[i].Key != ts2[i].Key || ts[i].Hits != ts2[i].Hits || ts[i].Nodes != ts2[i].Nodes {
			t.Errorf("tile %d differs across identical runs: %+v vs %+v", i, ts[i], ts2[i])
		}
	}
}

func mustStore(t *testing.T, tr *dmesh.Terrain) *dmesh.DMStore {
	t.Helper()
	s, err := tr.NewDMStore()
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestConfigValidation covers New's error paths.
func TestConfigValidation(t *testing.T) {
	tr := terrain(t, "highland")
	s := mustStore(t, tr)
	if _, err := tilecache.New(tilecache.Config{Store: nil, Ladder: []float64{1}}); err == nil {
		t.Error("nil store accepted")
	}
	if _, err := tilecache.New(tilecache.Config{Store: s}); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := tilecache.New(tilecache.Config{Store: s, Ladder: []float64{1, 1}}); err == nil {
		t.Error("duplicate ladder rungs accepted")
	}
	if _, err := tilecache.New(tilecache.Config{Store: s, Ladder: []float64{1}, MaxLevel: -1}); err == nil {
		t.Error("negative MaxLevel accepted")
	}
	if _, err := tilecache.New(tilecache.Config{Store: s, Ladder: []float64{1}, MaxBytes: -1}); err == nil {
		t.Error("negative MaxBytes accepted")
	}
}

// TestPatchByKey drives the single-tile entry point the cluster shards
// serve: a cold Patch materializes and charges DA, a warm Patch is free,
// the patch matches what a Query of the same footprint would stitch from,
// and invalid keys are rejected without touching the store.
func TestPatchByKey(t *testing.T) {
	tr := terrain(t, "highland")
	c, s := newCache(t, tr, 0)
	g := c.Grid()
	e := tr.LODPercentile(0.9)
	band, snapped := g.SnapE(e)
	k := tilecache.Key{Level: 1, IX: 0, IY: 1, Band: band}

	p, st, err := c.Patch(k)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cold || st.DA == 0 {
		t.Fatalf("cold Patch: stats %+v, want cold with nonzero DA", st)
	}
	if p.E != snapped {
		t.Fatalf("patch E = %g, want snapped %g", p.E, snapped)
	}
	if p.Rect != g.RectFor(k) {
		t.Fatalf("patch footprint %v, want %v", p.Rect, g.RectFor(k))
	}

	p2, st2, err := c.Patch(k)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p {
		t.Error("warm Patch returned a different patch instance")
	}
	if st2.Cold || st2.DA != 0 {
		t.Errorf("warm Patch: stats %+v, want hit with zero DA", st2)
	}

	// The patch is the exact answer to the footprint query.
	want, err := s.ViewpointIndependent(g.RectFor(k), snapped)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Nodes) != len(want.Vertices) {
		t.Errorf("patch has %d nodes, direct query has %d vertices", len(p.Nodes), len(want.Vertices))
	}

	for _, bad := range []tilecache.Key{
		{Level: 99, IX: 0, IY: 0, Band: 0},
		{Level: 1, IX: 2, IY: 0, Band: 0},
		{Level: 1, IX: 0, IY: 0, Band: 99},
	} {
		if _, _, err := c.Patch(bad); err == nil {
			t.Errorf("Patch(%v) accepted an invalid key", bad)
		}
	}

	// Patch lookups feed the same accounting as Query lookups: the key is
	// resident and ranked.
	top := c.TopTiles(1)
	if len(top) != 1 || top[0].Key != k {
		t.Errorf("TopTiles(1) = %+v, want the patched key %v first", top, k)
	}
}

// TestTopTilesDeterministic re-runs an access pattern on a fresh cache
// and store; the hot ranking must come out identical (the cluster's
// replication policy depends on it).
func TestTopTilesDeterministic(t *testing.T) {
	tr := terrain(t, "highland")
	run := func() []tilecache.TileStat {
		c, _ := newCache(t, tr, 0)
		e := tr.LODPercentile(0.9)
		rois := []geom.Rect{
			{MinX: 0.1, MinY: 0.1, MaxX: 0.45, MaxY: 0.45},
			{MinX: 0.1, MinY: 0.1, MaxX: 0.45, MaxY: 0.45},
			{MinX: 0.55, MinY: 0.55, MaxX: 0.9, MaxY: 0.9},
			{MinX: 0.2, MinY: 0.6, MaxX: 0.4, MaxY: 0.9},
		}
		for _, r := range rois {
			if _, _, err := c.Query(r, e); err != nil {
				t.Fatal(err)
			}
		}
		return c.TopTiles(5)
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("rankings differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Key != b[i].Key || a[i].Hits != b[i].Hits {
			t.Errorf("rank %d differs across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
