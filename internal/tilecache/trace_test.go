package tilecache_test

import (
	"math/rand"
	"testing"

	"dmesh/internal/obs"
	"dmesh/internal/tilecache"
)

// TestQueryTracedInvariantAndEquivalence replays a seeded query sequence
// through QueryTraced and checks, per query, that the charge-based trace
// accounts for exactly QueryStats.DA (cold materializations charged,
// hits and deduped waits zero), and that the traced sequence's stats
// match an untraced replay on a fresh store — tracing is free.
func TestQueryTracedInvariantAndEquivalence(t *testing.T) {
	tr := terrain(t, "crater")
	type record struct {
		qs tilecache.QueryStats
	}
	run := func(traced bool) ([]record, tilecache.Stats) {
		c, _ := newCache(t, tr, 0)
		rng := rand.New(rand.NewSource(31))
		var out []record
		var qtr *obs.Trace
		if traced {
			// The cache counts DA through per-flight sessions; the trace
			// is charge-based (nil sampler).
			qtr = obs.NewTrace(nil)
		}
		for i, r := range randRects(rng, 15) {
			e := tr.LODPercentile(0.6 + 0.4*rng.Float64())
			var qs tilecache.QueryStats
			var err error
			if traced {
				qtr.Reset()
				_, qs, err = c.QueryTraced(r, e, qtr)
			} else {
				_, qs, err = c.Query(r, e)
			}
			if err != nil {
				t.Fatalf("query %d: %v", i, err)
			}
			if traced {
				if err := qtr.CheckTotal(qs.DA); err != nil {
					t.Errorf("query %d: %v", i, err)
				}
				bd := qtr.Breakdown()
				if bd[obs.PhaseMaterialize] != qs.DA {
					t.Errorf("query %d: materialize phase has %d DA, query charged %d",
						i, bd[obs.PhaseMaterialize], qs.DA)
				}
				var cacheSpans int
				for _, sp := range qtr.Spans() {
					if sp.Phase == obs.PhaseCache {
						cacheSpans++
					}
				}
				if cacheSpans != qs.Tiles {
					t.Errorf("query %d: %d cache spans for %d tiles", i, cacheSpans, qs.Tiles)
				}
			}
			out = append(out, record{qs: qs})
		}
		return out, c.Stats()
	}
	plain, pst := run(false)
	traced, tst := run(true)
	if pst != tst {
		t.Errorf("cache stats differ traced vs untraced:\n  plain  %+v\n  traced %+v", pst, tst)
	}
	for i := range plain {
		if plain[i] != traced[i] {
			t.Errorf("query %d stats differ traced vs untraced:\n  plain  %+v\n  traced %+v",
				i, plain[i].qs, traced[i].qs)
		}
	}
}
