package tilecache_test

// Fault-injection regression tests: a failed tile materialization must
// propagate its error to every waiter deduplicated onto the flight, must
// not leave a poisoned (empty or partial) patch in the cache, and a
// later retry must succeed once the fault clears.

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"dmesh"
	"dmesh/internal/geom"
	"dmesh/internal/storage/faultfs"
	"dmesh/internal/storage/pager"
	"dmesh/internal/tilecache"
)

// gate holds every ReadPage at a barrier while armed, making the
// flight-join race deterministic: the leader's materialization blocks
// here until the test has observed the waiter dedup onto the flight.
type gate struct {
	pager.Backend
	mu      sync.Mutex
	blocked chan struct{}
}

func (g *gate) arm() chan struct{} {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.blocked = make(chan struct{})
	return g.blocked
}

func (g *gate) ReadPage(id pager.PageID, buf []byte) error {
	g.mu.Lock()
	ch := g.blocked
	g.mu.Unlock()
	if ch != nil {
		<-ch
	}
	return g.Backend.ReadPage(id, buf)
}

// faultyCache builds a store whose four backends are wrapped
// gate(faultfs(mem)): faults are scheduled on the faultfs layer and the
// gate above it serializes the test's view of in-flight reads.
func faultyCache(t *testing.T, tr *dmesh.Terrain) (*tilecache.Cache, *dmesh.DMStore, []*faultfs.Backend, []*gate) {
	t.Helper()
	var fbs []*faultfs.Backend
	var gates []*gate
	pools := dmesh.StorePools{WrapBackend: func(b pager.Backend) pager.Backend {
		fb := faultfs.Wrap(b)
		fbs = append(fbs, fb)
		g := &gate{Backend: fb}
		gates = append(gates, g)
		return g
	}}
	s, err := tr.NewDMStoreWithPools(pools)
	if err != nil {
		t.Fatal(err)
	}
	s.DropCaches()
	c, err := tr.NewTileCache(s, 0)
	if err != nil {
		t.Fatal(err)
	}
	return c, s, fbs, gates
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestFillFailurePropagatesToWaiters is the singleflight failure
// contract: when the leader's materialization fails, the waiter that
// deduplicated onto the flight receives the same error (not a cached
// empty patch), nothing is retained, and a retry after the fault heals
// succeeds and is exact.
func TestFillFailurePropagatesToWaiters(t *testing.T) {
	tr := terrain(t, "highland")
	c, s, fbs, gates := faultyCache(t, tr)

	r := geom.Rect{MinX: 0.3, MinY: 0.3, MaxX: 0.45, MaxY: 0.45}
	e := tr.LODPercentile(0.9)

	// Every read fails; the gate keeps the failing flight open until the
	// waiter has joined it.
	for _, fb := range fbs {
		fb.SetSchedule(faultfs.Read, faultfs.Schedule{Every: 1})
	}
	for _, g := range gates {
		g.arm()
	}

	errs := make(chan error, 2)
	go func() { // leader
		_, _, err := c.Query(r, e)
		errs <- err
	}()
	waitFor(t, "leader to open the flight", func() bool { return c.Stats().Misses >= 1 })

	go func() { // waiter: same ROI, same first tile, joins the flight
		_, _, err := c.Query(r, e)
		errs <- err
	}()
	waitFor(t, "waiter to dedup onto the flight", func() bool { return c.Stats().DedupedMisses >= 1 })

	// Release the reads; the scheduled fault now fails the flight.
	for _, g := range gates {
		g.mu.Lock()
		close(g.blocked)
		g.blocked = nil
		g.mu.Unlock()
	}
	for i := 0; i < 2; i++ {
		err := <-errs
		if err == nil {
			t.Fatal("query over injected read faults returned nil error")
		}
		if !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("error lost the injected sentinel: %v", err)
		}
		if !strings.Contains(err.Error(), "tile") {
			t.Fatalf("error lacks tile context: %v", err)
		}
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("failed materialization left residue: %+v", st)
	}

	// Fault clears; the retry re-runs the materialization and must be
	// exact against a direct query.
	for _, fb := range fbs {
		fb.Heal()
	}
	res, qs, err := c.Query(r, e)
	if err != nil {
		t.Fatalf("retry after heal: %v", err)
	}
	if qs.ColdMisses == 0 {
		t.Fatal("retry did not re-materialize (stale failed flight served?)")
	}
	want, err := s.ViewpointIndependent(r, qs.SnappedE)
	if err != nil {
		t.Fatal(err)
	}
	sameMesh(t, "retry after heal", res, want)
	if st := c.Stats(); st.Entries == 0 {
		t.Fatal("successful retry not retained")
	}
}

// TestFillFailureEveryWaiterGetsError fans many waiters onto one failing
// flight: all must error, none may observe a nil patch with nil error.
func TestFillFailureEveryWaiterGetsError(t *testing.T) {
	tr := terrain(t, "highland")
	c, _, fbs, gates := faultyCache(t, tr)

	r := geom.Rect{MinX: 0.55, MinY: 0.55, MaxX: 0.7, MaxY: 0.7}
	e := tr.LODPercentile(0.95)
	for _, fb := range fbs {
		fb.SetSchedule(faultfs.Read, faultfs.Schedule{Every: 1})
	}
	for _, g := range gates {
		g.arm()
	}

	const clients = 8
	errs := make(chan error, clients)
	go func() {
		_, _, err := c.Query(r, e)
		errs <- err
	}()
	waitFor(t, "leader to open the flight", func() bool { return c.Stats().Misses >= 1 })
	for i := 1; i < clients; i++ {
		go func() {
			_, _, err := c.Query(r, e)
			errs <- err
		}()
	}
	waitFor(t, "waiters to dedup", func() bool { return c.Stats().DedupedMisses >= clients-1 })
	for _, g := range gates {
		g.mu.Lock()
		close(g.blocked)
		g.blocked = nil
		g.mu.Unlock()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("client %d: error = %v, want ErrInjected", i, err)
		}
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("failed flight cached a patch: %+v", st)
	}
}
