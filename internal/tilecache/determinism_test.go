package tilecache_test

import (
	"math/rand"
	"testing"

	"dmesh/internal/tilecache"
)

// TestTileStatsAndDADeterministic replays the same seeded query
// sequence on two independently built stores and fresh caches and
// requires the full accounting — per-tile DA included, unlike the
// warm-store comparison in TestTileStatsDeterministic — to match
// exactly. Serial queries on a cold store must produce a fixed I/O
// schedule; a map-order leak anywhere under materialization shows up
// here as a per-tile DA diff.
func TestTileStatsAndDADeterministic(t *testing.T) {
	tr := terrain(t, "crater")
	run := func() ([]tilecache.TileStat, tilecache.Stats) {
		c, _ := newCache(t, tr, 0) // fresh store, caches dropped
		rng := rand.New(rand.NewSource(31))
		for i, r := range randRects(rng, 15) {
			e := tr.LODPercentile(0.6 + 0.4*rng.Float64())
			if _, _, err := c.Query(r, e); err != nil {
				t.Fatalf("query %d: %v", i, err)
			}
		}
		return c.TileStats(), c.Stats()
	}
	ts1, st1 := run()
	ts2, st2 := run()
	if st1 != st2 {
		t.Errorf("cache stats differ across identical runs:\n  run1 %+v\n  run2 %+v", st1, st2)
	}
	if len(ts1) != len(ts2) {
		t.Fatalf("%d resident tiles vs %d across identical runs", len(ts1), len(ts2))
	}
	for i := range ts1 {
		if ts1[i] != ts2[i] {
			t.Errorf("tile %d accounting differs across identical runs:\n  run1 %+v\n  run2 %+v",
				i, ts1[i], ts2[i])
		}
	}
}
