package tilecache

import (
	"reflect"
	"testing"

	"dmesh/internal/geom"
)

func testGrid() *Grid {
	g, err := NewGrid(geom.Rect{MinX: -0.02, MinY: 0, MaxX: 1.01, MaxY: 1}, 4, []float64{0.1, 0.5, 2.0})
	if err != nil {
		panic(err)
	}
	return g
}

func TestSnapE(t *testing.T) {
	g := testGrid()
	cases := []struct {
		e       float64
		band    int
		snapped float64
	}{
		{0.05, 0, 0.1}, // below the ladder: lowest rung
		{0.1, 0, 0.1},  // exact rung
		{0.3, 0, 0.1},  // between rungs: snap down
		{0.5, 1, 0.5},
		{1.9, 1, 0.5},
		{2.0, 2, 2.0},
		{7.0, 2, 2.0}, // above the ladder: top rung
	}
	for _, c := range cases {
		band, snapped := g.SnapE(c.e)
		if band != c.band || snapped != c.snapped {
			t.Errorf("snapE(%g) = (%d, %g), want (%d, %g)", c.e, band, snapped, c.band, c.snapped)
		}
	}
}

func TestLevelFor(t *testing.T) {
	g := testGrid()
	cases := []struct {
		r     geom.Rect
		level int
	}{
		{geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, 0},           // whole space
		{geom.Rect{MinX: 0, MinY: 0, MaxX: 0.5, MaxY: 0.5}, 1},       // exactly one level-1 tile
		{geom.Rect{MinX: 0, MinY: 0, MaxX: 0.3, MaxY: 0.3}, 1},       // between: snap to coarser
		{geom.Rect{MinX: 0, MinY: 0, MaxX: 0.25, MaxY: 0.1}, 2},      // max dimension rules
		{geom.Rect{MinX: 0, MinY: 0, MaxX: 0.01, MaxY: 0.01}, 4},     // tiny: clamp to maxLevel
		{geom.Rect{MinX: 0.3, MinY: 0.3, MaxX: 0.3, MaxY: 0.3}, 4},   // zero-area
		{geom.Rect{MinX: -0.5, MinY: -0.5, MaxX: 1.5, MaxY: 1.5}, 0}, // oversized: clamp to 0
	}
	for _, c := range cases {
		if lv := g.LevelFor(c.r); lv != c.level {
			t.Errorf("levelFor(%v) = %d, want %d", c.r, lv, c.level)
		}
	}
}

func TestCoverBoundaryAndDegenerate(t *testing.T) {
	g := testGrid()

	// ROI exactly on level-2 tile boundaries: inclusive boundaries pull in
	// the touching row/column of tiles on the max side.
	r := geom.Rect{MinX: 0.25, MinY: 0.25, MaxX: 0.5, MaxY: 0.5}
	got := g.Cover(r, 2, 1)
	want := []Key{
		{Level: 2, IX: 1, IY: 1, Band: 1}, {Level: 2, IX: 2, IY: 1, Band: 1},
		{Level: 2, IX: 1, IY: 2, Band: 1}, {Level: 2, IX: 2, IY: 2, Band: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("boundary cover = %v, want %v", got, want)
	}

	// Degenerate zero-area ROI on a tile corner: a single tile (the one
	// whose min corner it is).
	p := geom.Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.5, MaxY: 0.5}
	got = g.Cover(p, 1, 0)
	want = []Key{{Level: 1, IX: 1, IY: 1, Band: 0}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("zero-area cover = %v, want %v", got, want)
	}

	// ROI past the data space: indices clamp to the border tiles.
	o := geom.Rect{MinX: -3, MinY: 0.6, MaxX: 9, MaxY: 0.6}
	got = g.Cover(o, 1, 2)
	want = []Key{{Level: 1, IX: 0, IY: 1, Band: 2}, {Level: 1, IX: 1, IY: 1, Band: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("clamped cover = %v, want %v", got, want)
	}

	// Covers come out in Key total order.
	for i := 1; i < len(got); i++ {
		if !got[i-1].Less(got[i]) {
			t.Fatalf("cover not sorted: %v", got)
		}
	}
}

func TestRectForBorderWidening(t *testing.T) {
	g := testGrid()

	// Interior tile: exact binary-fraction boundaries.
	in := g.RectFor(Key{Level: 2, IX: 1, IY: 1})
	if in != (geom.Rect{MinX: 0.25, MinY: 0.25, MaxX: 0.5, MaxY: 0.5}) {
		t.Errorf("interior tile = %v", in)
	}

	// Border tiles stretch to the data space, which here pokes out of the
	// unit square on both x sides but not in y.
	bl := g.RectFor(Key{Level: 2, IX: 0, IY: 0})
	if bl.MinX != g.DataRect().MinX || bl.MinY != 0 {
		t.Errorf("min border tile = %v", bl)
	}
	tr := g.RectFor(Key{Level: 2, IX: 3, IY: 3})
	if tr.MaxX != g.DataRect().MaxX || tr.MaxY != 1 {
		t.Errorf("max border tile = %v", tr)
	}

	// Adjacent tiles share their interior boundary exactly.
	a, b := g.RectFor(Key{Level: 3, IX: 2, IY: 5}), g.RectFor(Key{Level: 3, IX: 3, IY: 5})
	if a.MaxX != b.MinX {
		t.Errorf("interior seam mismatch: %v vs %v", a, b)
	}

	// Level-0 cover is a single tile spanning the whole data space.
	whole := g.RectFor(Key{Level: 0, IX: 0, IY: 0})
	if !whole.ContainsRect(g.DataRect()) {
		t.Errorf("level-0 tile %v does not contain data space %v", whole, g.DataRect())
	}
}

func TestKeyLessTotalOrder(t *testing.T) {
	ks := []Key{
		{Level: 1, IX: 0, IY: 0, Band: 0},
		{Level: 0, IX: 1, IY: 1, Band: 2},
		{Level: 1, IX: 1, IY: 0, Band: 0},
		{Level: 1, IX: 0, IY: 0, Band: 1},
		{Level: 1, IX: 0, IY: 1, Band: 0},
	}
	for i, a := range ks {
		for j, b := range ks {
			if i == j {
				if a.Less(b) {
					t.Fatalf("key %v less than itself", a)
				}
				continue
			}
			if a.Less(b) == b.Less(a) {
				t.Fatalf("Less not antisymmetric for %v, %v", a, b)
			}
		}
	}
}

func TestValidKey(t *testing.T) {
	g := testGrid()
	valid := []Key{
		{Level: 0, IX: 0, IY: 0, Band: 0},
		{Level: 4, IX: 15, IY: 15, Band: 2},
		{Level: 2, IX: 3, IY: 0, Band: 1},
	}
	for _, k := range valid {
		if !g.ValidKey(k) {
			t.Errorf("ValidKey(%v) = false, want true", k)
		}
	}
	invalid := []Key{
		{Level: -1, IX: 0, IY: 0, Band: 0}, // negative level
		{Level: 5, IX: 0, IY: 0, Band: 0},  // past maxLevel
		{Level: 2, IX: 4, IY: 0, Band: 0},  // column outside 2^2 grid
		{Level: 2, IX: 0, IY: -1, Band: 0}, // negative row
		{Level: 2, IX: 0, IY: 0, Band: 3},  // band off the ladder
		{Level: 2, IX: 0, IY: 0, Band: -1},
	}
	for _, k := range invalid {
		if g.ValidKey(k) {
			t.Errorf("ValidKey(%v) = true, want false", k)
		}
	}
}

// TestKeyStringCanonical pins the canonical key spelling: it is the byte
// string the cluster ring hashes, so changing it re-shards every cluster.
func TestKeyStringCanonical(t *testing.T) {
	k := Key{Level: 3, IX: 5, IY: 2, Band: 1}
	if got, want := k.String(), "3/2/5/1"; got != want {
		t.Fatalf("Key.String() = %q, want %q", got, want)
	}
}

// TestTopK checks the replication-policy ranking: hits descending, Key
// total-order tie-breaks, input untouched, k clamped.
func TestTopK(t *testing.T) {
	in := []TileStat{
		{Key: Key{Level: 2, IX: 1, IY: 0, Band: 0}, Hits: 3},
		{Key: Key{Level: 1, IX: 0, IY: 0, Band: 0}, Hits: 7},
		{Key: Key{Level: 2, IX: 0, IY: 0, Band: 1}, Hits: 3},
		{Key: Key{Level: 2, IX: 0, IY: 0, Band: 0}, Hits: 3},
		{Key: Key{Level: 0, IX: 0, IY: 0, Band: 0}, Hits: 1},
	}
	orig := append([]TileStat(nil), in...)
	got := TopK(in, 4)
	want := []Key{
		{Level: 1, IX: 0, IY: 0, Band: 0}, // 7 hits
		{Level: 2, IX: 0, IY: 0, Band: 0}, // 3 hits, smallest key
		{Level: 2, IX: 0, IY: 0, Band: 1}, // 3 hits
		{Level: 2, IX: 1, IY: 0, Band: 0}, // 3 hits, largest key
	}
	if len(got) != len(want) {
		t.Fatalf("TopK returned %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Key != want[i] {
			t.Errorf("rank %d = %v, want %v", i, got[i].Key, want[i])
		}
	}
	if !reflect.DeepEqual(in, orig) {
		t.Error("TopK mutated its input")
	}
	if n := len(TopK(in, 0)); n != len(in) {
		t.Errorf("TopK(stats, 0) returned %d entries, want all %d", n, len(in))
	}
	if n := len(TopK(in, 100)); n != len(in) {
		t.Errorf("TopK(stats, 100) returned %d entries, want %d", n, len(in))
	}
}
