package tilecache

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"dmesh/internal/dm"
	"dmesh/internal/geom"
	"dmesh/internal/obs"
)

// ErrInvalidKey marks a Patch request whose key does not address a cell
// of the cache's grid; servers answer it with a client error, not a
// retryable server fault.
var ErrInvalidKey = errors.New("tilecache: invalid tile key")

// Config parameterizes a Cache.
type Config struct {
	// Store is the Direct Mesh store tiles are materialized from.
	Store *dm.Store
	// Ladder is the ascending list of discrete LOD values tiles are
	// materialized at; requested LODs snap down onto it. Required.
	Ladder []float64
	// MaxLevel caps the quadtree depth (grid is at most 2^MaxLevel cells
	// per side). Default 4.
	MaxLevel int
	// MaxBytes is the byte budget for resident patches (estimated with
	// TilePatch.Bytes). Default 64 MiB. Patches larger than the whole
	// budget are served but not retained.
	MaxBytes int
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	Queries        uint64 // Query calls
	TileLookups    uint64 // tile fetches (several per query)
	Hits           uint64 // lookups served from a resident patch
	Misses         uint64 // lookups that materialized the patch
	DedupedMisses  uint64 // lookups that waited on another's materialization
	Evictions      uint64 // patches evicted for space
	Invalidations  uint64 // Invalidate/InvalidateAll calls
	MaterializeDA  uint64 // disk accesses spent materializing, total
	Entries        int    // resident patches
	Bytes          int    // estimated resident bytes
	UnretainedOver int    // patches served but too large to retain
}

// TileStat is the per-tile accounting view: how hot a resident tile is
// and what it cost to build.
type TileStat struct {
	Key   Key
	Hits  uint64 // lookups served by this resident patch
	DA    uint64 // disk accesses its materialization cost
	Bytes int
	Nodes int
}

// QueryStats describes how one Query was answered.
type QueryStats struct {
	SnappedE   float64 // the ladder rung actually served
	Level      int     // grid level chosen for the ROI
	Tiles      int     // tiles stitched
	ColdMisses int     // tiles this query materialized itself
	Deduped    int     // tiles this query waited on another for
	DA         uint64  // disk accesses charged to this query
}

// entry is one resident patch plus its GreedyDual-Size-Frequency state.
type entry struct {
	patch *dm.TilePatch
	bytes int
	hits  uint64
	cost  uint64  // materialization disk accesses
	pri   float64 // GDSF priority; larger survives longer
}

// flight is an in-progress materialization other lookups wait on.
type flight struct {
	done  chan struct{}
	patch *dm.TilePatch
	da    uint64
	err   error
	gen   uint64 // cache generation when the flight started
}

// Cache is the shared mesh-tile cache. All methods are safe for
// concurrent use; materializations run outside the lock and are
// deduplicated per key (singleflight), so N concurrent requests for a
// cold tile cost one store query.
type Cache struct {
	store *dm.Store
	grid  *Grid

	maxBytes int

	mu      sync.Mutex
	entries map[Key]*entry
	flights map[Key]*flight
	bytes   int
	clockL  float64 // GDSF inflation clock: priority floor for new entries
	gen     uint64  // bumped by invalidation; stale flights don't insert
	stats   Stats
}

// New validates cfg and returns an empty cache.
func New(cfg Config) (*Cache, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("tilecache: nil store")
	}
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = 64 << 20
	}
	if cfg.MaxBytes < 0 {
		return nil, fmt.Errorf("tilecache: negative MaxBytes")
	}
	ds := cfg.Store.DataSpace()
	g, err := NewGrid(geom.Rect{MinX: ds.MinX, MinY: ds.MinY, MaxX: ds.MaxX, MaxY: ds.MaxY},
		cfg.MaxLevel, cfg.Ladder)
	if err != nil {
		return nil, err
	}
	c := &Cache{
		store:   cfg.Store,
		grid:    g,
		entries: make(map[Key]*entry),
		flights: make(map[Key]*flight),
	}
	c.maxBytes = cfg.MaxBytes
	return c, nil
}

// Grid returns the cache's quantization grid. A router partitioning this
// cache's key space builds its own Grid from the same parameters; the
// accessor is what in-process callers (and tests) compare against.
func (c *Cache) Grid() *Grid { return c.grid }

// Ladder returns the cache's LOD ladder (ascending copy).
func (c *Cache) Ladder() []float64 {
	return c.grid.Ladder()
}

// SnapE maps a requested LOD to the ladder rung Query would serve.
func (c *Cache) SnapE(e float64) float64 {
	_, s := c.grid.SnapE(e)
	return s
}

// Query answers Q(r, e) from the cache: e snaps down onto the LOD
// ladder, the ROI quantizes onto the tile grid, missing tiles are
// materialized (once, however many requests race), and the covered
// patches are stitched and clipped to r. The result is exactly equal to
// a direct dm query at QueryStats.SnappedE.
func (c *Cache) Query(r geom.Rect, e float64) (*dm.Result, QueryStats, error) {
	return c.QueryTraced(r, e, nil)
}

// QueryTraced is Query emitting phase spans on tr (which may be nil).
// The cache's DA is counted through per-flight sessions the trace
// cannot sample, so the trace is charge-based: pass one built with a
// nil sampler (obs.NewTrace(nil)); each cold materialization charges
// its session total into its span, and the trace's accounted total
// equals QueryStats.DA exactly.
func (c *Cache) QueryTraced(r geom.Rect, e float64, tr *obs.Trace) (*dm.Result, QueryStats, error) {
	tr.Begin(obs.PhaseQuery)
	defer tr.End()
	band, snapped := c.grid.SnapE(e)
	level := c.grid.LevelFor(r)
	keys := c.grid.Cover(r, level, band)
	qs := QueryStats{SnappedE: snapped, Level: level, Tiles: len(keys)}

	c.mu.Lock()
	c.stats.Queries++
	c.mu.Unlock()

	patches := make([]*dm.TilePatch, len(keys))
	for i, k := range keys { // sorted cover order: deterministic I/O order
		p, da, cold, deduped, err := c.tile(k, tr)
		if err != nil {
			return nil, qs, fmt.Errorf("tilecache: tile %+v: %w", k, err)
		}
		patches[i] = p
		qs.DA += da
		if cold {
			qs.ColdMisses++
		}
		if deduped {
			qs.Deduped++
		}
	}
	res, err := dm.StitchTilesTraced(r, snapped, patches, tr)
	if err != nil {
		return nil, qs, err
	}
	return res, qs, nil
}

// tile returns the patch for k, materializing it if absent. The returned
// da is nonzero only for the lookup that ran the materialization (cold),
// so concurrent sessions' charges sum to the store's real I/O — and only
// that lookup's materialize span is charged, keeping trace totals
// consistent with the same accounting.
func (c *Cache) tile(k Key, tr *obs.Trace) (p *dm.TilePatch, da uint64, cold, deduped bool, err error) {
	tr.Begin(obs.PhaseCache)
	defer tr.End()
	c.mu.Lock()
	c.stats.TileLookups++
	if ent, ok := c.entries[k]; ok {
		ent.hits++
		ent.pri = c.clockL + float64(ent.hits+1)*float64(ent.cost+1)/float64(ent.bytes)
		c.stats.Hits++
		c.mu.Unlock()
		return ent.patch, 0, false, false, nil
	}
	if f, ok := c.flights[k]; ok {
		c.stats.DedupedMisses++
		c.mu.Unlock()
		<-f.done
		return f.patch, 0, false, true, f.err
	}
	f := &flight{done: make(chan struct{}), gen: c.gen}
	c.flights[k] = f
	c.stats.Misses++
	c.mu.Unlock()

	tr.Begin(obs.PhaseMaterialize)
	sess := c.store.NewSession()
	f.patch, f.err = sess.MaterializeTile(c.grid.RectFor(k), c.grid.ladder[k.Band])
	f.da = sess.DiskAccesses()
	tr.AddDA(f.da)
	tr.End()

	c.mu.Lock()
	if c.flights[k] == f {
		delete(c.flights, k)
	}
	c.stats.MaterializeDA += f.da
	if f.err == nil && f.gen == c.gen {
		c.insertLocked(k, f.patch, f.da)
	}
	c.mu.Unlock()
	close(f.done)
	return f.patch, f.da, true, false, f.err
}

// insertLocked adds a materialized patch under the byte budget, evicting
// lowest-priority entries first (GreedyDual-Size-Frequency: priority =
// clock + hits * cost/size, clock inflated to each eviction victim's
// priority so long-resident cold entries age out). Ties break on Key
// total order, so eviction is deterministic given the access history.
func (c *Cache) insertLocked(k Key, p *dm.TilePatch, cost uint64) {
	bytes := p.Bytes()
	if bytes > c.maxBytes {
		c.stats.UnretainedOver++
		return
	}
	for c.bytes+bytes > c.maxBytes && len(c.entries) > 0 {
		var victim Key
		var vent *entry
		for ck, ce := range c.entries {
			if vent == nil || ce.pri < vent.pri || (ce.pri == vent.pri && ck.Less(victim)) {
				victim, vent = ck, ce
			}
		}
		if vent.pri > c.clockL {
			c.clockL = vent.pri
		}
		c.bytes -= vent.bytes
		delete(c.entries, victim)
		c.stats.Evictions++
	}
	ent := &entry{patch: p, bytes: bytes, cost: cost}
	ent.pri = c.clockL + float64(ent.hits+1)*float64(ent.cost+1)/float64(ent.bytes)
	c.entries[k] = ent
	c.bytes += bytes
}

// Invalidate drops every resident tile whose footprint intersects r and
// prevents in-flight materializations started before the call from being
// retained. Call it after mutating the underlying terrain region.
func (c *Cache) Invalidate(r geom.Rect) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.stats.Invalidations++
	for k, ent := range c.entries {
		if ent.patch.Rect.Intersects(r) {
			c.bytes -= ent.bytes
			delete(c.entries, k)
		}
	}
}

// InvalidateAll drops every resident tile.
func (c *Cache) InvalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.stats.Invalidations++
	c.entries = make(map[Key]*entry)
	c.bytes = 0
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = len(c.entries)
	st.Bytes = c.bytes
	return st
}

// TileStats returns the per-tile accounting for every resident patch, in
// Key total order.
func (c *Cache) TileStats() []TileStat {
	c.mu.Lock()
	out := make([]TileStat, 0, len(c.entries))
	for k, ent := range c.entries {
		out = append(out, TileStat{
			Key: k, Hits: ent.hits, DA: ent.cost,
			Bytes: ent.bytes, Nodes: len(ent.patch.Nodes),
		})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Less(out[j].Key) })
	return out
}

// PatchStats describes how one Patch lookup was answered.
type PatchStats struct {
	// DA is the disk accesses charged to this lookup: nonzero only when
	// this lookup ran the materialization itself (Cold).
	DA uint64
	// Cold is set when this lookup materialized the tile.
	Cold bool
	// Deduped is set when this lookup waited on another's materialization.
	Deduped bool
}

// Patch returns the materialized patch for one tile key — the single-tile
// entry point a cluster shard serves remote fetches from. The key must
// address a cell of the cache's grid; the patch is materialized on a miss
// (deduplicated like Query's lookups) and shares the cache's eviction and
// accounting machinery, so remotely served tiles rank in TileStats and
// TopTiles alongside locally stitched ones.
func (c *Cache) Patch(k Key) (*dm.TilePatch, PatchStats, error) {
	return c.PatchTraced(k, nil)
}

// PatchTraced is Patch emitting phase spans on tr (which may be nil):
// a root PhaseQuery span over the lookup, with the same cache-lookup /
// materialize children QueryTraced records. Like QueryTraced the trace
// must be charge-based (nil sampler); its accounted total equals
// PatchStats.DA exactly.
func (c *Cache) PatchTraced(k Key, tr *obs.Trace) (*dm.TilePatch, PatchStats, error) {
	if !c.grid.ValidKey(k) {
		return nil, PatchStats{}, fmt.Errorf("tilecache: key %v outside grid (max level %d, %d ladder rungs): %w",
			k, c.grid.maxLevel, len(c.grid.ladder), ErrInvalidKey)
	}
	tr.Begin(obs.PhaseQuery)
	defer tr.End()
	p, da, cold, deduped, err := c.tile(k, tr)
	if err != nil {
		return nil, PatchStats{}, fmt.Errorf("tilecache: tile %+v: %w", k, err)
	}
	return p, PatchStats{DA: da, Cold: cold, Deduped: deduped}, nil
}

// TopK ranks tile stats by hit count, hottest first, with Key total-order
// tie-breaks, and returns at most k entries (k <= 0 means all). The input
// is not mutated. The ranking is the cluster's replication policy: given
// the same stats, every router computes the same hot set, so replica
// placement is deterministic.
func TopK(stats []TileStat, k int) []TileStat {
	out := append([]TileStat(nil), stats...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hits != out[j].Hits {
			return out[i].Hits > out[j].Hits
		}
		return out[i].Key.Less(out[j].Key)
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// TopTiles returns the k hottest resident tiles (TopK over TileStats).
func (c *Cache) TopTiles(k int) []TileStat {
	return TopK(c.TileStats(), k)
}
