package tilecache

import (
	"fmt"
	"sort"
	"sync"

	"dmesh/internal/dm"
	"dmesh/internal/geom"
	"dmesh/internal/obs"
)

// Config parameterizes a Cache.
type Config struct {
	// Store is the Direct Mesh store tiles are materialized from.
	Store *dm.Store
	// Ladder is the ascending list of discrete LOD values tiles are
	// materialized at; requested LODs snap down onto it. Required.
	Ladder []float64
	// MaxLevel caps the quadtree depth (grid is at most 2^MaxLevel cells
	// per side). Default 4.
	MaxLevel int
	// MaxBytes is the byte budget for resident patches (estimated with
	// TilePatch.Bytes). Default 64 MiB. Patches larger than the whole
	// budget are served but not retained.
	MaxBytes int
}

// Stats is a snapshot of the cache's counters.
type Stats struct {
	Queries        uint64 // Query calls
	TileLookups    uint64 // tile fetches (several per query)
	Hits           uint64 // lookups served from a resident patch
	Misses         uint64 // lookups that materialized the patch
	DedupedMisses  uint64 // lookups that waited on another's materialization
	Evictions      uint64 // patches evicted for space
	Invalidations  uint64 // Invalidate/InvalidateAll calls
	MaterializeDA  uint64 // disk accesses spent materializing, total
	Entries        int    // resident patches
	Bytes          int    // estimated resident bytes
	UnretainedOver int    // patches served but too large to retain
}

// TileStat is the per-tile accounting view: how hot a resident tile is
// and what it cost to build.
type TileStat struct {
	Key   Key
	Hits  uint64 // lookups served by this resident patch
	DA    uint64 // disk accesses its materialization cost
	Bytes int
	Nodes int
}

// QueryStats describes how one Query was answered.
type QueryStats struct {
	SnappedE   float64 // the ladder rung actually served
	Level      int     // grid level chosen for the ROI
	Tiles      int     // tiles stitched
	ColdMisses int     // tiles this query materialized itself
	Deduped    int     // tiles this query waited on another for
	DA         uint64  // disk accesses charged to this query
}

// entry is one resident patch plus its GreedyDual-Size-Frequency state.
type entry struct {
	patch *dm.TilePatch
	bytes int
	hits  uint64
	cost  uint64  // materialization disk accesses
	pri   float64 // GDSF priority; larger survives longer
}

// flight is an in-progress materialization other lookups wait on.
type flight struct {
	done  chan struct{}
	patch *dm.TilePatch
	da    uint64
	err   error
	gen   uint64 // cache generation when the flight started
}

// Cache is the shared mesh-tile cache. All methods are safe for
// concurrent use; materializations run outside the lock and are
// deduplicated per key (singleflight), so N concurrent requests for a
// cold tile cost one store query.
type Cache struct {
	store *dm.Store
	grid  grid

	maxBytes int

	mu      sync.Mutex
	entries map[Key]*entry
	flights map[Key]*flight
	bytes   int
	clockL  float64 // GDSF inflation clock: priority floor for new entries
	gen     uint64  // bumped by invalidation; stale flights don't insert
	stats   Stats
}

// New validates cfg and returns an empty cache.
func New(cfg Config) (*Cache, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("tilecache: nil store")
	}
	if len(cfg.Ladder) == 0 {
		return nil, fmt.Errorf("tilecache: empty LOD ladder")
	}
	ladder := append([]float64(nil), cfg.Ladder...)
	sort.Float64s(ladder)
	for i := 1; i < len(ladder); i++ {
		if ladder[i] == ladder[i-1] {
			return nil, fmt.Errorf("tilecache: duplicate ladder rung %g", ladder[i])
		}
	}
	if cfg.MaxLevel == 0 {
		cfg.MaxLevel = 4
	}
	if cfg.MaxLevel < 0 {
		return nil, fmt.Errorf("tilecache: negative MaxLevel")
	}
	if cfg.MaxBytes == 0 {
		cfg.MaxBytes = 64 << 20
	}
	if cfg.MaxBytes < 0 {
		return nil, fmt.Errorf("tilecache: negative MaxBytes")
	}
	ds := cfg.Store.DataSpace()
	c := &Cache{
		store: cfg.Store,
		grid: grid{
			dataRect: geom.Rect{MinX: ds.MinX, MinY: ds.MinY, MaxX: ds.MaxX, MaxY: ds.MaxY},
			maxLevel: cfg.MaxLevel,
			ladder:   ladder,
		},
		entries: make(map[Key]*entry),
		flights: make(map[Key]*flight),
	}
	c.maxBytes = cfg.MaxBytes
	return c, nil
}

// Ladder returns the cache's LOD ladder (ascending copy).
func (c *Cache) Ladder() []float64 {
	return append([]float64(nil), c.grid.ladder...)
}

// SnapE maps a requested LOD to the ladder rung Query would serve.
func (c *Cache) SnapE(e float64) float64 {
	_, s := c.grid.snapE(e)
	return s
}

// Query answers Q(r, e) from the cache: e snaps down onto the LOD
// ladder, the ROI quantizes onto the tile grid, missing tiles are
// materialized (once, however many requests race), and the covered
// patches are stitched and clipped to r. The result is exactly equal to
// a direct dm query at QueryStats.SnappedE.
func (c *Cache) Query(r geom.Rect, e float64) (*dm.Result, QueryStats, error) {
	return c.QueryTraced(r, e, nil)
}

// QueryTraced is Query emitting phase spans on tr (which may be nil).
// The cache's DA is counted through per-flight sessions the trace
// cannot sample, so the trace is charge-based: pass one built with a
// nil sampler (obs.NewTrace(nil)); each cold materialization charges
// its session total into its span, and the trace's accounted total
// equals QueryStats.DA exactly.
func (c *Cache) QueryTraced(r geom.Rect, e float64, tr *obs.Trace) (*dm.Result, QueryStats, error) {
	tr.Begin(obs.PhaseQuery)
	defer tr.End()
	band, snapped := c.grid.snapE(e)
	level := c.grid.levelFor(r)
	keys := c.grid.cover(r, level, band)
	qs := QueryStats{SnappedE: snapped, Level: level, Tiles: len(keys)}

	c.mu.Lock()
	c.stats.Queries++
	c.mu.Unlock()

	patches := make([]*dm.TilePatch, len(keys))
	for i, k := range keys { // sorted cover order: deterministic I/O order
		p, da, cold, deduped, err := c.tile(k, tr)
		if err != nil {
			return nil, qs, fmt.Errorf("tilecache: tile %+v: %w", k, err)
		}
		patches[i] = p
		qs.DA += da
		if cold {
			qs.ColdMisses++
		}
		if deduped {
			qs.Deduped++
		}
	}
	res, err := dm.StitchTilesTraced(r, snapped, patches, tr)
	if err != nil {
		return nil, qs, err
	}
	return res, qs, nil
}

// tile returns the patch for k, materializing it if absent. The returned
// da is nonzero only for the lookup that ran the materialization (cold),
// so concurrent sessions' charges sum to the store's real I/O — and only
// that lookup's materialize span is charged, keeping trace totals
// consistent with the same accounting.
func (c *Cache) tile(k Key, tr *obs.Trace) (p *dm.TilePatch, da uint64, cold, deduped bool, err error) {
	tr.Begin(obs.PhaseCache)
	defer tr.End()
	c.mu.Lock()
	c.stats.TileLookups++
	if ent, ok := c.entries[k]; ok {
		ent.hits++
		ent.pri = c.clockL + float64(ent.hits+1)*float64(ent.cost+1)/float64(ent.bytes)
		c.stats.Hits++
		c.mu.Unlock()
		return ent.patch, 0, false, false, nil
	}
	if f, ok := c.flights[k]; ok {
		c.stats.DedupedMisses++
		c.mu.Unlock()
		<-f.done
		return f.patch, 0, false, true, f.err
	}
	f := &flight{done: make(chan struct{}), gen: c.gen}
	c.flights[k] = f
	c.stats.Misses++
	c.mu.Unlock()

	tr.Begin(obs.PhaseMaterialize)
	sess := c.store.NewSession()
	f.patch, f.err = sess.MaterializeTile(c.grid.rectFor(k), c.grid.ladder[k.Band])
	f.da = sess.DiskAccesses()
	tr.AddDA(f.da)
	tr.End()

	c.mu.Lock()
	if c.flights[k] == f {
		delete(c.flights, k)
	}
	c.stats.MaterializeDA += f.da
	if f.err == nil && f.gen == c.gen {
		c.insertLocked(k, f.patch, f.da)
	}
	c.mu.Unlock()
	close(f.done)
	return f.patch, f.da, true, false, f.err
}

// insertLocked adds a materialized patch under the byte budget, evicting
// lowest-priority entries first (GreedyDual-Size-Frequency: priority =
// clock + hits * cost/size, clock inflated to each eviction victim's
// priority so long-resident cold entries age out). Ties break on Key
// total order, so eviction is deterministic given the access history.
func (c *Cache) insertLocked(k Key, p *dm.TilePatch, cost uint64) {
	bytes := p.Bytes()
	if bytes > c.maxBytes {
		c.stats.UnretainedOver++
		return
	}
	for c.bytes+bytes > c.maxBytes && len(c.entries) > 0 {
		var victim Key
		var vent *entry
		for ck, ce := range c.entries {
			if vent == nil || ce.pri < vent.pri || (ce.pri == vent.pri && ck.Less(victim)) {
				victim, vent = ck, ce
			}
		}
		if vent.pri > c.clockL {
			c.clockL = vent.pri
		}
		c.bytes -= vent.bytes
		delete(c.entries, victim)
		c.stats.Evictions++
	}
	ent := &entry{patch: p, bytes: bytes, cost: cost}
	ent.pri = c.clockL + float64(ent.hits+1)*float64(ent.cost+1)/float64(ent.bytes)
	c.entries[k] = ent
	c.bytes += bytes
}

// Invalidate drops every resident tile whose footprint intersects r and
// prevents in-flight materializations started before the call from being
// retained. Call it after mutating the underlying terrain region.
func (c *Cache) Invalidate(r geom.Rect) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.stats.Invalidations++
	for k, ent := range c.entries {
		if ent.patch.Rect.Intersects(r) {
			c.bytes -= ent.bytes
			delete(c.entries, k)
		}
	}
}

// InvalidateAll drops every resident tile.
func (c *Cache) InvalidateAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.stats.Invalidations++
	c.entries = make(map[Key]*entry)
	c.bytes = 0
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = len(c.entries)
	st.Bytes = c.bytes
	return st
}

// TileStats returns the per-tile accounting for every resident patch, in
// Key total order.
func (c *Cache) TileStats() []TileStat {
	c.mu.Lock()
	out := make([]TileStat, 0, len(c.entries))
	for k, ent := range c.entries {
		out = append(out, TileStat{
			Key: k, Hits: ent.hits, DA: ent.cost,
			Bytes: ent.bytes, Nodes: len(ent.patch.Nodes),
		})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Less(out[j].Key) })
	return out
}
