// Package tilecache serves Direct Mesh queries from a shared cache of
// materialized mesh tiles. It quantizes an arbitrary uniform query
// Q(r, e) onto a canonical quadtree-aligned tile grid crossed with a
// discrete LOD ladder, materializes each (tile, LOD-band) key at most
// once as a self-contained dm.TilePatch, and answers queries by stitching
// cached patches along their connection lists and clipping to the true
// ROI — exactly equal to the direct query at the snapped LOD, with zero
// store I/O on a full hit.
//
// Overlapping ROIs at similar LOD map to the same keys, so N clients
// flying over the same popular terrain share one materialization: the
// classic canonical-tiling fix for redundant spatial work (cf. the
// Hierarchical Triangular Mesh), with the cached tile as the unit of I/O.
package tilecache

import (
	"math"
	"sort"

	"dmesh/internal/geom"
)

// Key identifies one cacheable tile: a cell of the 2^Level x 2^Level
// quadtree grid over the unit square, at one rung of the LOD ladder.
// Identical keys are what overlapping queries share.
type Key struct {
	// Level is the quadtree depth; the grid is 2^Level cells per side.
	Level int
	// IX, IY are the cell's column and row, in [0, 2^Level).
	IX, IY int
	// Band indexes the cache's LOD ladder.
	Band int
}

// Less is the total order used everywhere tiles are iterated or
// tie-broken: by level, then row, column, band.
func (k Key) Less(o Key) bool {
	if k.Level != o.Level {
		return k.Level < o.Level
	}
	if k.IY != o.IY {
		return k.IY < o.IY
	}
	if k.IX != o.IX {
		return k.IX < o.IX
	}
	return k.Band < o.Band
}

// grid quantizes queries for one store: a power-of-two tile grid over the
// unit square whose border cells are widened to the store's data space
// (collapse placement may position merged nodes slightly outside the unit
// square; every node must land in some tile for covers to stay exact).
type grid struct {
	dataRect geom.Rect // (x, y) bounds of the stored segments
	maxLevel int
	ladder   []float64 // ascending discrete LODs
}

// snapE maps a requested LOD onto the ladder: the largest rung <= e, or
// the lowest rung when e undercuts the whole ladder. Snapping down means
// the served mesh is never coarser than requested.
func (g *grid) snapE(e float64) (band int, snapped float64) {
	i := sort.SearchFloat64s(g.ladder, e) // first rung > e is at i if not exact
	if i < len(g.ladder) && g.ladder[i] == e {
		return i, e
	}
	if i == 0 {
		return 0, g.ladder[0]
	}
	return i - 1, g.ladder[i-1]
}

// levelFor picks the grid level for an ROI: the deepest level whose tile
// side still covers the ROI's larger dimension, clamped to [0, maxLevel].
// Covers then span at most 2x2 tiles (plus boundary inclusivity), and
// similar-size ROIs land on the same level — the sharing precondition.
func (g *grid) levelFor(r geom.Rect) int {
	d := r.Width()
	if h := r.Height(); h > d {
		d = h
	}
	if d <= 0 {
		return g.maxLevel
	}
	lv := int(math.Floor(math.Log2(1 / d)))
	if lv < 0 {
		lv = 0
	}
	if lv > g.maxLevel {
		lv = g.maxLevel
	}
	return lv
}

// cover returns the keys of the tiles intersecting r at the given level
// and band, in Key total order. Indices are clamped to the grid, so ROIs
// reaching past the unit square fall into the (widened) border tiles.
func (g *grid) cover(r geom.Rect, level, band int) []Key {
	n := 1 << level
	clamp := func(f float64) int {
		if !(f >= 0) { // also catches NaN
			return 0
		}
		if f > float64(n-1) {
			return n - 1
		}
		return int(f)
	}
	ix0, ix1 := clamp(r.MinX*float64(n)), clamp(r.MaxX*float64(n))
	iy0, iy1 := clamp(r.MinY*float64(n)), clamp(r.MaxY*float64(n))
	out := make([]Key, 0, (ix1-ix0+1)*(iy1-iy0+1))
	for iy := iy0; iy <= iy1; iy++ {
		for ix := ix0; ix <= ix1; ix++ {
			out = append(out, Key{Level: level, IX: ix, IY: iy, Band: band})
		}
	}
	return out
}

// rectFor is the tile footprint: cell boundaries are exact binary
// fractions (ix * 2^-level), and border cells extend to the data space.
func (g *grid) rectFor(k Key) geom.Rect {
	n := 1 << k.Level
	side := 1.0 / float64(n)
	t := geom.Rect{
		MinX: float64(k.IX) * side, MinY: float64(k.IY) * side,
		MaxX: float64(k.IX+1) * side, MaxY: float64(k.IY+1) * side,
	}
	if k.IX == 0 && g.dataRect.MinX < t.MinX {
		t.MinX = g.dataRect.MinX
	}
	if k.IX == n-1 && g.dataRect.MaxX > t.MaxX {
		t.MaxX = g.dataRect.MaxX
	}
	if k.IY == 0 && g.dataRect.MinY < t.MinY {
		t.MinY = g.dataRect.MinY
	}
	if k.IY == n-1 && g.dataRect.MaxY > t.MaxY {
		t.MaxY = g.dataRect.MaxY
	}
	return t
}
