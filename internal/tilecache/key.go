// Package tilecache serves Direct Mesh queries from a shared cache of
// materialized mesh tiles. It quantizes an arbitrary uniform query
// Q(r, e) onto a canonical quadtree-aligned tile grid crossed with a
// discrete LOD ladder, materializes each (tile, LOD-band) key at most
// once as a self-contained dm.TilePatch, and answers queries by stitching
// cached patches along their connection lists and clipping to the true
// ROI — exactly equal to the direct query at the snapped LOD, with zero
// store I/O on a full hit.
//
// Overlapping ROIs at similar LOD map to the same keys, so N clients
// flying over the same popular terrain share one materialization: the
// classic canonical-tiling fix for redundant spatial work (cf. the
// Hierarchical Triangular Mesh), with the cached tile as the unit of I/O.
package tilecache

import (
	"fmt"
	"math"
	"sort"

	"dmesh/internal/geom"
)

// Key identifies one cacheable tile: a cell of the 2^Level x 2^Level
// quadtree grid over the unit square, at one rung of the LOD ladder.
// Identical keys are what overlapping queries share — and what the
// cluster router hashes onto shards (the key is canonical, so every
// router and every shard agree on the unit of placement).
type Key struct {
	// Level is the quadtree depth; the grid is 2^Level cells per side.
	Level int
	// IX, IY are the cell's column and row, in [0, 2^Level).
	IX, IY int
	// Band indexes the cache's LOD ladder.
	Band int
}

// Less is the total order used everywhere tiles are iterated or
// tie-broken: by level, then row, column, band.
func (k Key) Less(o Key) bool {
	if k.Level != o.Level {
		return k.Level < o.Level
	}
	if k.IY != o.IY {
		return k.IY < o.IY
	}
	if k.IX != o.IX {
		return k.IX < o.IX
	}
	return k.Band < o.Band
}

// String renders the canonical spelling of the key, "L/IY/IX/B" — the
// byte string the cluster's consistent-hash ring hashes. Two processes
// computing a key's placement must hash identical bytes, so the format
// is part of the routing contract.
func (k Key) String() string {
	return fmt.Sprintf("%d/%d/%d/%d", k.Level, k.IY, k.IX, k.Band)
}

// Grid quantizes queries for one store: a power-of-two tile grid over the
// unit square whose border cells are widened to the store's data space
// (collapse placement may position merged nodes slightly outside the unit
// square; every node must land in some tile for covers to stay exact).
//
// A Grid is pure arithmetic over its three parameters, so a cluster
// router built with the same (dataRect, maxLevel, ladder) as its shards'
// caches computes byte-identical keys and footprints without talking to
// them.
type Grid struct {
	dataRect geom.Rect // (x, y) bounds of the stored segments
	maxLevel int
	ladder   []float64 // ascending discrete LODs
}

// NewGrid validates and builds a quantization grid. The ladder is copied,
// sorted ascending, and must be non-empty without duplicate rungs;
// maxLevel < 0 is rejected and maxLevel == 0 selects the default depth 4.
func NewGrid(dataRect geom.Rect, maxLevel int, ladder []float64) (*Grid, error) {
	if len(ladder) == 0 {
		return nil, fmt.Errorf("tilecache: empty LOD ladder")
	}
	l := append([]float64(nil), ladder...)
	sort.Float64s(l)
	for i := 1; i < len(l); i++ {
		if l[i] == l[i-1] {
			return nil, fmt.Errorf("tilecache: duplicate ladder rung %g", l[i])
		}
	}
	if maxLevel == 0 {
		maxLevel = 4
	}
	if maxLevel < 0 {
		return nil, fmt.Errorf("tilecache: negative MaxLevel")
	}
	return &Grid{dataRect: dataRect, maxLevel: maxLevel, ladder: l}, nil
}

// DataRect returns the (x, y) bounds border tiles are widened to.
func (g *Grid) DataRect() geom.Rect { return g.dataRect }

// MaxLevel returns the deepest quadtree level the grid quantizes to.
func (g *Grid) MaxLevel() int { return g.maxLevel }

// Ladder returns the grid's LOD ladder (ascending copy).
func (g *Grid) Ladder() []float64 {
	return append([]float64(nil), g.ladder...)
}

// SnapE maps a requested LOD onto the ladder: the largest rung <= e, or
// the lowest rung when e undercuts the whole ladder. Snapping down means
// the served mesh is never coarser than requested.
func (g *Grid) SnapE(e float64) (band int, snapped float64) {
	i := sort.SearchFloat64s(g.ladder, e) // first rung > e is at i if not exact
	if i < len(g.ladder) && g.ladder[i] == e {
		return i, e
	}
	if i == 0 {
		return 0, g.ladder[0]
	}
	return i - 1, g.ladder[i-1]
}

// LevelFor picks the grid level for an ROI: the deepest level whose tile
// side still covers the ROI's larger dimension, clamped to [0, maxLevel].
// Covers then span at most 2x2 tiles (plus boundary inclusivity), and
// similar-size ROIs land on the same level — the sharing precondition.
func (g *Grid) LevelFor(r geom.Rect) int {
	d := r.Width()
	if h := r.Height(); h > d {
		d = h
	}
	if d <= 0 {
		return g.maxLevel
	}
	lv := int(math.Floor(math.Log2(1 / d)))
	if lv < 0 {
		lv = 0
	}
	if lv > g.maxLevel {
		lv = g.maxLevel
	}
	return lv
}

// Cover returns the keys of the tiles intersecting r at the given level
// and band, in Key total order. Indices are clamped to the grid, so ROIs
// reaching past the unit square fall into the (widened) border tiles.
func (g *Grid) Cover(r geom.Rect, level, band int) []Key {
	n := 1 << level
	clamp := func(f float64) int {
		if !(f >= 0) { // also catches NaN
			return 0
		}
		if f > float64(n-1) {
			return n - 1
		}
		return int(f)
	}
	ix0, ix1 := clamp(r.MinX*float64(n)), clamp(r.MaxX*float64(n))
	iy0, iy1 := clamp(r.MinY*float64(n)), clamp(r.MaxY*float64(n))
	out := make([]Key, 0, (ix1-ix0+1)*(iy1-iy0+1))
	for iy := iy0; iy <= iy1; iy++ {
		for ix := ix0; ix <= ix1; ix++ {
			out = append(out, Key{Level: level, IX: ix, IY: iy, Band: band})
		}
	}
	return out
}

// RectFor is the tile footprint: cell boundaries are exact binary
// fractions (ix * 2^-level), and border cells extend to the data space.
func (g *Grid) RectFor(k Key) geom.Rect {
	n := 1 << k.Level
	side := 1.0 / float64(n)
	t := geom.Rect{
		MinX: float64(k.IX) * side, MinY: float64(k.IY) * side,
		MaxX: float64(k.IX+1) * side, MaxY: float64(k.IY+1) * side,
	}
	if k.IX == 0 && g.dataRect.MinX < t.MinX {
		t.MinX = g.dataRect.MinX
	}
	if k.IX == n-1 && g.dataRect.MaxX > t.MaxX {
		t.MaxX = g.dataRect.MaxX
	}
	if k.IY == 0 && g.dataRect.MinY < t.MinY {
		t.MinY = g.dataRect.MinY
	}
	if k.IY == n-1 && g.dataRect.MaxY > t.MaxY {
		t.MaxY = g.dataRect.MaxY
	}
	return t
}

// ValidKey reports whether k addresses a cell of this grid: level within
// depth, indices inside the 2^Level x 2^Level grid, band on the ladder.
// Servers answering tile requests by key validate with it before
// materializing.
func (g *Grid) ValidKey(k Key) bool {
	if k.Level < 0 || k.Level > g.maxLevel {
		return false
	}
	n := 1 << k.Level
	if k.IX < 0 || k.IX >= n || k.IY < 0 || k.IY >= n {
		return false
	}
	return k.Band >= 0 && k.Band < len(g.ladder)
}
