// Package mesh provides an indexed triangle mesh, adjacency computation,
// manifold checks, and the regular-grid triangulation used to turn a
// heightfield into the full-resolution terrain mesh that multiresolution
// structures are built from.
package mesh

import (
	"fmt"
	"sort"

	"dmesh/internal/geom"
	"dmesh/internal/heightfield"
)

// Mesh is an indexed triangle mesh. Vertex IDs are indices into Positions;
// triangles reference vertices by ID. The mesh does not have to use every
// vertex.
type Mesh struct {
	Positions []geom.Point3
	Tris      []geom.Triangle
}

// FromGrid triangulates a heightfield into a mesh: each grid cell becomes
// two triangles, split along the diagonal that better follows the surface
// (the shorter 3D diagonal), which avoids systematic diagonal artifacts.
func FromGrid(g *heightfield.Grid) *Mesh {
	n := g.Size
	m := &Mesh{
		Positions: g.Points(),
		Tris:      make([]geom.Triangle, 0, 2*(n-1)*(n-1)),
	}
	id := func(i, j int) int64 { return int64(j*n + i) }
	for j := 0; j < n-1; j++ {
		for i := 0; i < n-1; i++ {
			a := id(i, j)
			b := id(i+1, j)
			c := id(i, j+1)
			d := id(i+1, j+1)
			pa, pb, pc, pd := m.Positions[a], m.Positions[b], m.Positions[c], m.Positions[d]
			if pa.Dist(pd) <= pb.Dist(pc) {
				// Split along a-d.
				m.Tris = append(m.Tris, geom.Triangle{A: a, B: b, C: d}, geom.Triangle{A: a, B: d, C: c})
			} else {
				// Split along b-c.
				m.Tris = append(m.Tris, geom.Triangle{A: a, B: b, C: c}, geom.Triangle{A: b, B: d, C: c})
			}
		}
	}
	return m
}

// NumVertices returns the number of vertex slots (including unused ones).
func (m *Mesh) NumVertices() int { return len(m.Positions) }

// NumTriangles returns the number of triangles.
func (m *Mesh) NumTriangles() int { return len(m.Tris) }

// Adjacency computes, for every vertex, the sorted list of vertices it
// shares an edge with. Vertices not referenced by any triangle get nil
// entries.
func (m *Mesh) Adjacency() [][]int64 {
	adj := make([]map[int64]struct{}, len(m.Positions))
	add := func(a, b int64) {
		if adj[a] == nil {
			adj[a] = make(map[int64]struct{}, 8)
		}
		adj[a][b] = struct{}{}
	}
	for _, t := range m.Tris {
		add(t.A, t.B)
		add(t.B, t.A)
		add(t.B, t.C)
		add(t.C, t.B)
		add(t.A, t.C)
		add(t.C, t.A)
	}
	out := make([][]int64, len(m.Positions))
	for v, set := range adj {
		if set == nil {
			continue
		}
		lst := make([]int64, 0, len(set))
		for u := range set {
			lst = append(lst, u)
		}
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		out[v] = lst
	}
	return out
}

// EdgeUse counts how many triangles reference each undirected edge.
type EdgeUse map[[2]int64]int

// Edges returns the use count of every undirected edge in the mesh.
func (m *Mesh) Edges() EdgeUse {
	use := make(EdgeUse, len(m.Tris)*3/2)
	bump := func(a, b int64) {
		if a > b {
			a, b = b, a
		}
		use[[2]int64{a, b}]++
	}
	for _, t := range m.Tris {
		bump(t.A, t.B)
		bump(t.B, t.C)
		bump(t.A, t.C)
	}
	return use
}

// CheckManifold verifies that every edge is used by at most two triangles
// (one on the boundary), that no triangle is degenerate, and that every
// triangle references valid vertex IDs. It returns a descriptive error for
// the first violation found.
func (m *Mesh) CheckManifold() error {
	n := int64(len(m.Positions))
	for i, t := range m.Tris {
		if t.Degenerate() {
			return fmt.Errorf("mesh: triangle %d is degenerate: %v", i, t)
		}
		for _, v := range []int64{t.A, t.B, t.C} {
			if v < 0 || v >= n {
				return fmt.Errorf("mesh: triangle %d references vertex %d out of range [0,%d)", i, v, n)
			}
		}
	}
	for e, c := range m.Edges() {
		if c > 2 {
			return fmt.Errorf("mesh: edge %v used by %d triangles", e, c)
		}
	}
	return nil
}

// BoundaryVertices returns the set of vertices incident to a boundary edge
// (an edge used by exactly one triangle).
func (m *Mesh) BoundaryVertices() map[int64]bool {
	b := make(map[int64]bool)
	for e, c := range m.Edges() {
		if c == 1 {
			b[e[0]] = true
			b[e[1]] = true
		}
	}
	return b
}

// UsedVertices returns the set of vertex IDs referenced by at least one
// triangle.
func (m *Mesh) UsedVertices() map[int64]bool {
	used := make(map[int64]bool, len(m.Positions))
	for _, t := range m.Tris {
		used[t.A] = true
		used[t.B] = true
		used[t.C] = true
	}
	return used
}

// EulerCharacteristic returns V - E + F computed over used vertices. A
// triangulated disk (such as a rectangular terrain patch) has Euler
// characteristic 1.
func (m *Mesh) EulerCharacteristic() int {
	v := len(m.UsedVertices())
	e := len(m.Edges())
	f := len(m.Tris)
	return v - e + f
}

// SurfaceArea returns the total 3D area of all triangles.
func (m *Mesh) SurfaceArea() float64 {
	var sum float64
	for _, t := range m.Tris {
		a, b, c := m.Positions[t.A], m.Positions[t.B], m.Positions[t.C]
		sum += b.Sub(a).Cross(c.Sub(a)).Norm() / 2
	}
	return sum
}

// BBox returns the (x, y) bounding rectangle of the used vertices, or a
// zero rect for an empty mesh.
func (m *Mesh) BBox() geom.Rect {
	first := true
	var r geom.Rect
	for v := range m.UsedVertices() {
		p := m.Positions[v].XY()
		if first {
			r = geom.PointRect(p)
			first = false
		} else {
			r = r.ExpandPoint(p)
		}
	}
	return r
}
