package mesh

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// WriteOBJ writes the mesh in Wavefront OBJ format, remapping vertex IDs to
// the dense 1-based indices OBJ requires. Only vertices used by triangles
// are emitted. The output is deterministic.
func (m *Mesh) WriteOBJ(w io.Writer) error {
	bw := bufio.NewWriter(w)
	used := m.UsedVertices()
	ids := make([]int64, 0, len(used))
	for v := range used {
		ids = append(ids, v)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	remap := make(map[int64]int, len(ids))
	for i, v := range ids {
		remap[v] = i + 1
		p := m.Positions[v]
		if _, err := fmt.Fprintf(bw, "v %g %g %g\n", p.X, p.Y, p.Z); err != nil {
			return err
		}
	}
	for _, t := range m.Tris {
		if _, err := fmt.Fprintf(bw, "f %d %d %d\n", remap[t.A], remap[t.B], remap[t.C]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
