package mesh

import (
	"strings"
	"testing"

	"dmesh/internal/geom"
	"dmesh/internal/heightfield"
)

func gridMesh(t *testing.T, size int) *Mesh {
	t.Helper()
	g := heightfield.Highland(size, 3)
	return FromGrid(g)
}

func TestFromGridCounts(t *testing.T) {
	for _, size := range []int{2, 3, 5, 9} {
		m := gridMesh(t, size)
		wantV := size * size
		wantT := 2 * (size - 1) * (size - 1)
		if m.NumVertices() != wantV {
			t.Errorf("size %d: vertices = %d, want %d", size, m.NumVertices(), wantV)
		}
		if m.NumTriangles() != wantT {
			t.Errorf("size %d: triangles = %d, want %d", size, m.NumTriangles(), wantT)
		}
	}
}

func TestFromGridManifold(t *testing.T) {
	m := gridMesh(t, 9)
	if err := m.CheckManifold(); err != nil {
		t.Fatal(err)
	}
}

func TestEulerCharacteristicOfDisk(t *testing.T) {
	// A rectangular terrain patch is topologically a disk: V - E + F = 1.
	for _, size := range []int{2, 4, 8} {
		m := gridMesh(t, size)
		if chi := m.EulerCharacteristic(); chi != 1 {
			t.Errorf("size %d: Euler characteristic = %d, want 1", size, chi)
		}
	}
}

func TestAdjacencySymmetric(t *testing.T) {
	m := gridMesh(t, 6)
	adj := m.Adjacency()
	for v, ns := range adj {
		for _, u := range ns {
			found := false
			for _, w := range adj[u] {
				if w == int64(v) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("adjacency asymmetric: %d->%d but not back", v, u)
			}
		}
	}
	// A strict interior vertex of a grid has degree 6 on average
	// (4 axis neighbors + diagonals from cell splits); every vertex has
	// degree >= 2.
	for v, ns := range adj {
		if ns != nil && len(ns) < 2 {
			t.Errorf("vertex %d has degree %d", v, len(ns))
		}
	}
}

func TestEdgesUseCounts(t *testing.T) {
	m := gridMesh(t, 4)
	for e, c := range m.Edges() {
		if c < 1 || c > 2 {
			t.Fatalf("edge %v used %d times", e, c)
		}
	}
}

func TestBoundaryVertices(t *testing.T) {
	size := 5
	m := gridMesh(t, size)
	b := m.BoundaryVertices()
	// A size x size grid has 4*(size-1) boundary vertices.
	want := 4 * (size - 1)
	if len(b) != want {
		t.Fatalf("boundary count = %d, want %d", len(b), want)
	}
	// Corner (0,0) has ID 0 and must be a boundary vertex; the center must
	// not.
	if !b[0] {
		t.Error("corner must be boundary")
	}
	center := int64(size * size / 2)
	if b[center] {
		t.Error("center must not be boundary")
	}
}

func TestCheckManifoldCatchesViolations(t *testing.T) {
	m := &Mesh{
		Positions: []geom.Point3{{}, {X: 1}, {Y: 1}, {X: 1, Y: 1}},
		Tris:      []geom.Triangle{{A: 0, B: 1, C: 2}},
	}
	if err := m.CheckManifold(); err != nil {
		t.Fatalf("valid mesh rejected: %v", err)
	}
	bad := &Mesh{Positions: m.Positions, Tris: []geom.Triangle{{A: 0, B: 0, C: 1}}}
	if err := bad.CheckManifold(); err == nil {
		t.Error("degenerate triangle not caught")
	}
	oob := &Mesh{Positions: m.Positions, Tris: []geom.Triangle{{A: 0, B: 1, C: 9}}}
	if err := oob.CheckManifold(); err == nil {
		t.Error("out-of-range vertex not caught")
	}
	tripled := &Mesh{
		Positions: m.Positions,
		Tris: []geom.Triangle{
			{A: 0, B: 1, C: 2}, {A: 0, B: 1, C: 3}, {A: 1, B: 0, C: 2},
		},
	}
	if err := tripled.CheckManifold(); err == nil {
		t.Error("edge shared by 3 triangles not caught")
	}
}

func TestSurfaceAreaFlatGrid(t *testing.T) {
	g := heightfield.NewGrid(3)
	m := FromGrid(g) // all heights zero: area must equal the unit square
	if got := m.SurfaceArea(); got < 0.999 || got > 1.001 {
		t.Fatalf("flat surface area = %g, want 1", got)
	}
}

func TestBBox(t *testing.T) {
	m := gridMesh(t, 4)
	r := m.BBox()
	if r != (geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}) {
		t.Fatalf("BBox = %v, want unit square", r)
	}
	empty := &Mesh{}
	if r := empty.BBox(); r != (geom.Rect{}) {
		t.Fatalf("empty BBox = %v", r)
	}
}

func TestUsedVertices(t *testing.T) {
	m := &Mesh{
		Positions: make([]geom.Point3, 10),
		Tris:      []geom.Triangle{{A: 1, B: 3, C: 5}},
	}
	used := m.UsedVertices()
	if len(used) != 3 || !used[1] || !used[3] || !used[5] {
		t.Fatalf("UsedVertices = %v", used)
	}
}

func TestWriteOBJ(t *testing.T) {
	m := &Mesh{
		Positions: []geom.Point3{{}, {X: 1}, {Y: 1}, {X: 5, Y: 5, Z: 5}}, // vertex 3 unused
		Tris:      []geom.Triangle{{A: 0, B: 1, C: 2}},
	}
	var sb strings.Builder
	if err := m.WriteOBJ(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "\nf ")+boolToInt(strings.HasPrefix(out, "f ")) != 1 {
		t.Errorf("expected 1 face line:\n%s", out)
	}
	if strings.Contains(out, "v 5 5 5") {
		t.Error("unused vertex must not be emitted")
	}
	if !strings.Contains(out, "f 1 2 3") {
		t.Errorf("face must use dense 1-based indices:\n%s", out)
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
