// Package simplify builds a multiresolution collapse sequence from a full-
// resolution terrain mesh by greedy edge collapse, following the paper's
// preprocessing: both evaluation datasets are simplified with Quadric Error
// Metrics (Garland & Heckbert). The vertical-distance error measure
// mentioned in Section 2 of the paper is available as an alternative.
//
// Each collapse replaces two points (child1, child2) with one newly
// generated point, records the two wing points (the points connected to
// both children at collapse time), and assigns the new point an
// approximation error. The resulting Sequence is exactly the information a
// progressive-mesh (PM) binary tree encodes, and is consumed by both
// internal/pm and internal/dm.
//
// While collapsing, the engine also gathers every vertex's lifetime
// neighbors: the set of points it is connected to in any approximation
// along the collapse sequence. These are the "connection points with a
// similar LOD" of Section 4 of the paper and become Direct Mesh connection
// lists. Gathering them here costs O(total collapse degree), whereas
// recovering them afterwards would require replaying the sequence.
package simplify

import (
	"container/heap"
	"fmt"
	"sort"

	"dmesh/internal/geom"
	"dmesh/internal/mesh"
)

// Metric selects the error measure driving collapse ordering.
type Metric int

const (
	// QEM is the Garland-Heckbert quadric error metric (the paper's choice).
	QEM Metric = iota
	// VerticalDistance approximates error as the largest vertical distance
	// from the removed points to the generated point, the simple measure
	// sketched in Section 2 of the paper.
	VerticalDistance
)

// Options configure the simplifier. The zero value is valid: QEM with the
// default boundary weight.
type Options struct {
	Metric Metric
	// BoundaryWeight scales the boundary-preservation quadrics; 0 means the
	// default (100).
	BoundaryWeight float64
}

// NoWing marks an absent wing point.
const NoWing int64 = -1

// Collapse records one edge collapse: Child1 and Child2 merge into the new
// point New located at Pos with approximation error Err. Wing1 and Wing2
// are the points connected to both children when the collapse happened
// (NoWing when absent, e.g. on the terrain boundary).
//
// Child1Adj lists Child1's neighbors at collapse time (excluding Child2),
// sorted ascending — the explicit neighbor partition a vertex split needs
// to reverse this collapse exactly. Hoppe's Progressive Mesh records the
// equivalent information as face references in its vsplit records; the
// paper's minimal (wings-only) node tuple omits it, which is why the
// wings-only refinement mode in internal/pm is approximate.
type Collapse struct {
	New       int64
	Child1    int64
	Child2    int64
	Wing1     int64
	Wing2     int64
	Pos       geom.Point3
	Err       float64
	Child1Adj []int64
}

// Sequence is a complete collapse history of a mesh: the PM construction
// order from the full-resolution mesh (step 0) to the coarsest
// approximation. Vertex IDs index Positions; IDs below BaseVertices are
// original mesh points, the rest are generated, in collapse order:
// collapse k creates vertex BaseVertices+k.
type Sequence struct {
	BaseVertices int
	Positions    []geom.Point3
	Collapses    []Collapse
	// Roots are the vertices alive after the last collapse (a single
	// element when the mesh collapses to one point, several when the link
	// condition stops simplification early).
	Roots []int64
	// ConnLists[v] lists every vertex v was ever connected to while alive,
	// sorted ascending: the Direct Mesh similar-LOD connection list.
	ConnLists [][]int64
	// InitialAdj is the adjacency of the full-resolution mesh, used to
	// replay the sequence (testing and PM refinement ground truth).
	InitialAdj [][]int64
}

// NumVertices returns the total number of vertex IDs (originals plus
// generated points).
func (s *Sequence) NumVertices() int { return len(s.Positions) }

// edgeKey canonicalizes an undirected edge.
func edgeKey(a, b int64) [2]int64 {
	if a > b {
		a, b = b, a
	}
	return [2]int64{a, b}
}

type candidate struct {
	err  float64
	u, v int64
	pos  geom.Point3
}

type candHeap []candidate

func (h candHeap) Len() int { return len(h) }

// Less orders by error with a total (u, v) tie-break so that simplification
// is fully deterministic regardless of map iteration order.
func (h candHeap) Less(i, j int) bool {
	if h[i].err != h[j].err {
		return h[i].err < h[j].err
	}
	if h[i].u != h[j].u {
		return h[i].u < h[j].u
	}
	return h[i].v < h[j].v
}
func (h candHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candHeap) Push(x interface{}) { *h = append(*h, x.(candidate)) }
func (h *candHeap) Pop() interface{} {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// Run simplifies m all the way down (or until no collapse satisfies the
// link condition) and returns the collapse sequence. The input mesh is not
// modified.
func Run(m *mesh.Mesh, opts Options) (*Sequence, error) {
	if err := m.CheckManifold(); err != nil {
		return nil, fmt.Errorf("simplify: input mesh invalid: %w", err)
	}
	if opts.BoundaryWeight == 0 {
		opts.BoundaryWeight = 100
	}

	base := len(m.Positions)
	seq := &Sequence{
		BaseVertices: base,
		Positions:    append([]geom.Point3(nil), m.Positions...),
	}

	// Live adjacency sets, indexed by vertex ID; nil = dead or unused.
	adj := make([]map[int64]struct{}, base, 2*base)
	for _, t := range m.Tris {
		link := func(a, b int64) {
			if adj[a] == nil {
				adj[a] = make(map[int64]struct{}, 8)
			}
			adj[a][b] = struct{}{}
		}
		link(t.A, t.B)
		link(t.B, t.A)
		link(t.B, t.C)
		link(t.C, t.B)
		link(t.A, t.C)
		link(t.C, t.A)
	}

	// Record the full-resolution adjacency for replay and seed the
	// connection lists with it.
	seq.InitialAdj = make([][]int64, base)
	seq.ConnLists = make([][]int64, base, 2*base)
	for v := range adj {
		if adj[v] == nil {
			continue
		}
		lst := make([]int64, 0, len(adj[v]))
		for u := range adj[v] {
			lst = append(lst, u)
		}
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		seq.InitialAdj[v] = lst
		seq.ConnLists[v] = append([]int64(nil), lst...)
	}

	// Per-vertex quadrics from triangle planes plus boundary constraints.
	quadrics := make([]Quadric, base, 2*base)
	for _, t := range m.Tris {
		q := TriangleQuadric(m.Positions[t.A], m.Positions[t.B], m.Positions[t.C])
		quadrics[t.A].Add(q)
		quadrics[t.B].Add(q)
		quadrics[t.C].Add(q)
	}
	// Boundary edges get perpendicular penalty planes.
	edgeTris := make(map[[2]int64]geom.Triangle)
	edgeUse := m.Edges()
	for _, t := range m.Tris {
		for _, e := range [][2]int64{edgeKey(t.A, t.B), edgeKey(t.B, t.C), edgeKey(t.A, t.C)} {
			if edgeUse[e] == 1 {
				edgeTris[e] = t
			}
		}
	}
	// Accumulate in sorted edge order: float addition is not associative,
	// so map-iteration order would make the whole sequence nondeterministic.
	boundary := make([][2]int64, 0)
	for e, c := range edgeUse {
		if c == 1 {
			boundary = append(boundary, e)
		}
	}
	sort.Slice(boundary, func(i, j int) bool {
		if boundary[i][0] != boundary[j][0] {
			return boundary[i][0] < boundary[j][0]
		}
		return boundary[i][1] < boundary[j][1]
	})
	for _, e := range boundary {
		t := edgeTris[e]
		pa, pb, pc := m.Positions[t.A], m.Positions[t.B], m.Positions[t.C]
		fn := pb.Sub(pa).Cross(pc.Sub(pa))
		q := BoundaryQuadric(m.Positions[e[0]], m.Positions[e[1]], fn, opts.BoundaryWeight)
		quadrics[e[0]].Add(q)
		quadrics[e[1]].Add(q)
	}

	alive := make([]bool, base, 2*base)
	liveCount := 0
	for v := range adj {
		if adj[v] != nil {
			alive[v] = true
			liveCount++
		}
	}

	// evaluate returns the collapse target and error for edge (u, v).
	evaluate := func(u, v int64) (geom.Point3, float64) {
		pu, pv := seq.Positions[u], seq.Positions[v]
		switch opts.Metric {
		case VerticalDistance:
			pos := pu.Add(pv).Scale(0.5)
			du := absF(pu.Z - pos.Z)
			dv := absF(pv.Z - pos.Z)
			if dv > du {
				du = dv
			}
			return pos, du
		default: // QEM
			q := quadrics[u].Plus(quadrics[v])
			if pos, ok := q.Minimize(); ok {
				// Near-singular systems can place the optimum arbitrarily
				// far away (flat regions make the 3x3 system
				// ill-conditioned). For a terrain height field the merged
				// point should stay between its children in (x, y); accept
				// the optimum only when it does (with a small margin), else
				// fall back to the best candidate below.
				margin := 0.25*pu.XY().Dist(pv.XY()) + 1e-9
				loX, hiX := minMax(pu.X, pv.X)
				loY, hiY := minMax(pu.Y, pv.Y)
				if pos.X >= loX-margin && pos.X <= hiX+margin &&
					pos.Y >= loY-margin && pos.Y <= hiY+margin {
					return pos, q.RMS(pos)
				}
			}
			// Singular system: best of the endpoints and the midpoint.
			mid := pu.Add(pv).Scale(0.5)
			best, bestErr := mid, q.RMS(mid)
			if e := q.RMS(pu); e < bestErr {
				best, bestErr = pu, e
			}
			if e := q.RMS(pv); e < bestErr {
				best, bestErr = pv, e
			}
			return best, bestErr
		}
	}

	h := &candHeap{}
	pushed := make(map[[2]int64]bool)
	pushEdge := func(u, v int64) {
		k := edgeKey(u, v)
		if pushed[k] {
			return
		}
		pushed[k] = true
		pos, err := evaluate(u, v)
		heap.Push(h, candidate{err: err, u: k[0], v: k[1], pos: pos})
	}
	for v := range adj {
		if adj[v] == nil {
			continue
		}
		for u := range adj[v] {
			if int64(v) < u {
				pushEdge(int64(v), u)
			}
		}
	}

	// Edges skipped because of the link condition wait here keyed by edge;
	// they are retried when a later collapse changes a nearby neighborhood.
	deferred := make(map[[2]int64]candidate)

	// Recorded errors are clamped to be non-decreasing along the collapse
	// sequence (the monotone error bound standard in view-dependent LOD,
	// cf. Hoppe '98 / Lindstrom-Pascucci). With monotone errors the
	// normalized LOD intervals of Section 4 of the paper align exactly
	// with collapse-sequence states: the approximation at LOD e equals the
	// mesh after the first k collapses with error <= e, which makes
	// connection-list reconstruction provably exact for uniform-LOD cuts.
	lastErr := 0.0

	appendConn := func(v, n int64) {
		seq.ConnLists[v] = append(seq.ConnLists[v], n)
	}

	for liveCount > 1 && (h.Len() > 0 || len(deferred) > 0) {
		if h.Len() == 0 {
			// Only deferred edges remain; no further progress is possible
			// because nothing will change their neighborhoods.
			break
		}
		c := heap.Pop(h).(candidate)
		delete(pushed, edgeKey(c.u, c.v))
		if !alive[c.u] || !alive[c.v] {
			continue
		}
		if _, ok := adj[c.u][c.v]; !ok {
			continue
		}

		// Link condition: the children may share at most two neighbors
		// (the wings); more would pinch the surface.
		var wings []int64
		for n := range adj[c.u] {
			if _, ok := adj[c.v][n]; ok {
				wings = append(wings, n)
			}
		}
		if len(wings) > 2 {
			deferred[edgeKey(c.u, c.v)] = c
			continue
		}
		sort.Slice(wings, func(i, j int) bool { return wings[i] < wings[j] })

		// Create the parent point.
		w := int64(len(seq.Positions))
		seq.Positions = append(seq.Positions, c.pos)
		quadrics = append(quadrics, quadrics[c.u].Plus(quadrics[c.v]))
		alive = append(alive, true)
		seq.ConnLists = append(seq.ConnLists, nil)

		// Child1's side of the neighbor partition, recorded before the
		// adjacency mutates (for exact vertex splits on replay).
		uAdj := make([]int64, 0, len(adj[c.u]))
		for n := range adj[c.u] {
			if n != c.v {
				uAdj = append(uAdj, n)
			}
		}
		sort.Slice(uAdj, func(i, j int) bool { return uAdj[i] < uAdj[j] })
		if len(uAdj) == 0 {
			uAdj = nil // canonical form: absent, not empty (codec round trip)
		}

		// New neighborhood: union of children's neighbors minus themselves.
		nbrs := make(map[int64]struct{}, len(adj[c.u])+len(adj[c.v]))
		for n := range adj[c.u] {
			if n != c.v {
				nbrs[n] = struct{}{}
			}
		}
		for n := range adj[c.v] {
			if n != c.u {
				nbrs[n] = struct{}{}
			}
		}
		adj = append(adj, nbrs)
		connW := make([]int64, 0, len(nbrs))
		for n := range nbrs {
			delete(adj[n], c.u)
			delete(adj[n], c.v)
			adj[n][w] = struct{}{}
			appendConn(n, w)
			connW = append(connW, n)
		}
		sort.Slice(connW, func(i, j int) bool { return connW[i] < connW[j] })
		seq.ConnLists[w] = connW

		alive[c.u], alive[c.v] = false, false
		adj[c.u], adj[c.v] = nil, nil
		liveCount-- // two die, one is born

		if c.err > lastErr {
			lastErr = c.err
		}
		col := Collapse{
			New: w, Child1: c.u, Child2: c.v,
			Wing1: NoWing, Wing2: NoWing,
			Pos: c.pos, Err: lastErr,
		}
		// Capture child1's side of the neighbor partition before the
		// children die (adj[c.u] was already cleared; reconstruct from
		// the new vertex's neighbors: n belonged to child1 iff child1 was
		// in n's pre-collapse adjacency — tracked below via uAdj).
		col.Child1Adj = uAdj
		if len(wings) > 0 {
			col.Wing1 = wings[0]
		}
		if len(wings) > 1 {
			col.Wing2 = wings[1]
		}
		seq.Collapses = append(seq.Collapses, col)

		// New candidate edges around w.
		for n := range nbrs {
			pushEdge(w, n)
		}
		// Retry deferred edges whose neighborhood may have changed.
		if len(deferred) > 0 {
			for k, dc := range deferred {
				if !alive[dc.u] || !alive[dc.v] {
					delete(deferred, k)
					continue
				}
				_, touchU := nbrs[dc.u]
				_, touchV := nbrs[dc.v]
				if touchU || touchV {
					delete(deferred, k)
					if !pushed[k] {
						pushed[k] = true
						heap.Push(h, dc)
					}
				}
			}
		}
	}

	for v := int64(0); v < int64(len(alive)); v++ {
		if alive[v] {
			seq.Roots = append(seq.Roots, v)
		}
	}
	sortConnLists(seq.ConnLists)
	return seq, nil
}

func sortConnLists(lists [][]int64) {
	for _, l := range lists {
		sort.Slice(l, func(i, j int) bool { return l[i] < l[j] })
	}
}

func minMax(a, b float64) (lo, hi float64) {
	if a <= b {
		return a, b
	}
	return b, a
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// StepForLOD returns the number of leading collapses with error <= e.
// Because recorded errors are non-decreasing, the mesh after that many
// collapses is exactly the approximation at LOD e.
func (s *Sequence) StepForLOD(e float64) int {
	lo, hi := 0, len(s.Collapses)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.Collapses[mid].Err <= e {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// AdjacencyAtStep replays the first step collapses and returns the live
// adjacency of the mesh approximation after them, as sorted neighbor lists
// keyed by vertex ID. step ranges from 0 (full resolution) to
// len(Collapses). This is the ground truth that Direct Mesh reconstruction
// is validated against; it is O(mesh) per call and intended for tests and
// tools, not hot paths.
func (s *Sequence) AdjacencyAtStep(step int) (map[int64][]int64, error) {
	if step < 0 || step > len(s.Collapses) {
		return nil, fmt.Errorf("simplify: step %d out of range [0,%d]", step, len(s.Collapses))
	}
	adj := make(map[int64]map[int64]struct{}, s.BaseVertices)
	for v, ns := range s.InitialAdj {
		if ns == nil {
			continue
		}
		set := make(map[int64]struct{}, len(ns))
		for _, u := range ns {
			set[u] = struct{}{}
		}
		adj[int64(v)] = set
	}
	for i := 0; i < step; i++ {
		c := s.Collapses[i]
		nbrs := make(map[int64]struct{})
		for n := range adj[c.Child1] {
			if n != c.Child2 {
				nbrs[n] = struct{}{}
			}
		}
		for n := range adj[c.Child2] {
			if n != c.Child1 {
				nbrs[n] = struct{}{}
			}
		}
		for n := range nbrs {
			delete(adj[n], c.Child1)
			delete(adj[n], c.Child2)
			adj[n][c.New] = struct{}{}
		}
		delete(adj, c.Child1)
		delete(adj, c.Child2)
		adj[c.New] = nbrs
	}
	out := make(map[int64][]int64, len(adj))
	for v, set := range adj {
		lst := make([]int64, 0, len(set))
		for u := range set {
			lst = append(lst, u)
		}
		sort.Slice(lst, func(i, j int) bool { return lst[i] < lst[j] })
		out[v] = lst
	}
	return out, nil
}

// ConnStats summarizes connection-list sizes, reproducing the in-text
// numbers of Section 4 of the paper (average similar-LOD connection points
// vs. average total connection points).
type ConnStats struct {
	AvgSimilarLOD    float64 // average ConnLists length
	MedianSimilarLOD int     // median ConnLists length (the paper reports ~12)
	MaxSimilarLOD    int
	AvgTotal         float64 // average count of all possible connection points
}

// Stats computes connection-list statistics. The "total connection points"
// of a vertex v follows the paper's recursive rules: every lifetime
// neighbor, each neighbor's ancestors up to (excluding) the first common
// ancestor, and each neighbor's descendants — i.e. every point that could
// connect to v in any approximation. We compute it as the number of
// distinct vertices u such that u's subtree-lifetime overlaps a neighbor
// relationship; concretely, for each lifetime neighbor n of v we count n
// plus all of n's ancestors and descendants, deduplicated.
func (s *Sequence) Stats() ConnStats {
	parent := make([]int64, len(s.Positions))
	children := make([][2]int64, len(s.Positions))
	for i := range parent {
		parent[i] = -1
		children[i] = [2]int64{-1, -1}
	}
	for _, c := range s.Collapses {
		parent[c.Child1] = c.New
		parent[c.Child2] = c.New
		children[c.New] = [2]int64{c.Child1, c.Child2}
	}

	var st ConnStats
	var totalSim, totalAll int
	var lengths []int
	n := 0
	for v := range s.ConnLists {
		if s.ConnLists[v] == nil {
			continue
		}
		n++
		l := len(s.ConnLists[v])
		totalSim += l
		lengths = append(lengths, l)
		if l > st.MaxSimilarLOD {
			st.MaxSimilarLOD = l
		}
		// Ancestors of v, so the walk up from each neighbor stops at the
		// first common ancestor (rule 1 of Section 4 excludes it and
		// everything above: those are ancestors of v too, and parent-child
		// pairs cannot coexist in an approximation).
		ancV := make(map[int64]struct{})
		for a := parent[v]; a != -1; a = parent[a] {
			ancV[a] = struct{}{}
		}
		seen := make(map[int64]struct{})
		for _, nb := range s.ConnLists[v] {
			// nb itself, its ancestors below the first common ancestor
			// with v, and its descendants.
			for a := nb; a != -1; a = parent[a] {
				if _, common := ancV[a]; common {
					break
				}
				seen[a] = struct{}{}
			}
			stack := []int64{nb}
			for len(stack) > 0 {
				cur := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				ch := children[cur]
				for _, c := range ch {
					if c != -1 {
						if _, ok := seen[c]; !ok {
							seen[c] = struct{}{}
							stack = append(stack, c)
						}
					}
				}
			}
		}
		totalAll += len(seen)
	}
	if n > 0 {
		st.AvgSimilarLOD = float64(totalSim) / float64(n)
		st.AvgTotal = float64(totalAll) / float64(n)
		sort.Ints(lengths)
		st.MedianSimilarLOD = lengths[len(lengths)/2]
	}
	return st
}
