package simplify

import (
	"reflect"
	"testing"

	"dmesh/internal/heightfield"
	"dmesh/internal/mesh"
)

func buildSeq(t *testing.T, size int, opts Options) *Sequence {
	t.Helper()
	g := heightfield.Highland(size, 5)
	m := mesh.FromGrid(g)
	seq, err := Run(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

func TestRunCollapsesToRoot(t *testing.T) {
	seq := buildSeq(t, 9, Options{})
	if seq.BaseVertices != 81 {
		t.Fatalf("BaseVertices = %d", seq.BaseVertices)
	}
	// Every collapse removes one live vertex.
	if got, want := len(seq.Collapses), seq.BaseVertices-len(seq.Roots); got != want {
		t.Fatalf("collapses = %d, want %d (roots = %d)", got, want, len(seq.Roots))
	}
	if len(seq.Roots) != 1 {
		t.Errorf("expected full collapse to a single root, got %d roots", len(seq.Roots))
	}
	if got, want := seq.NumVertices(), seq.BaseVertices+len(seq.Collapses); got != want {
		t.Fatalf("NumVertices = %d, want %d", got, want)
	}
}

func TestCollapseIDsAreSequential(t *testing.T) {
	seq := buildSeq(t, 7, Options{})
	for i, c := range seq.Collapses {
		if got, want := c.New, int64(seq.BaseVertices+i); got != want {
			t.Fatalf("collapse %d creates vertex %d, want %d", i, got, want)
		}
		if c.Child1 >= c.New || c.Child2 >= c.New {
			t.Fatalf("collapse %d: children %d,%d must precede parent %d", i, c.Child1, c.Child2, c.New)
		}
		if c.Child1 == c.Child2 {
			t.Fatalf("collapse %d: identical children", i)
		}
		if c.Err < 0 {
			t.Fatalf("collapse %d: negative error %g", i, c.Err)
		}
	}
}

func TestWingsAreCommonNeighborsAtCollapseTime(t *testing.T) {
	seq := buildSeq(t, 6, Options{})
	for i, c := range seq.Collapses {
		adj, err := seq.AdjacencyAtStep(i)
		if err != nil {
			t.Fatal(err)
		}
		common := intersectSorted(adj[c.Child1], adj[c.Child2])
		var wings []int64
		if c.Wing1 != NoWing {
			wings = append(wings, c.Wing1)
		}
		if c.Wing2 != NoWing {
			wings = append(wings, c.Wing2)
		}
		if !reflect.DeepEqual(common, wings) {
			if len(common) == 0 && len(wings) == 0 {
				continue
			}
			t.Fatalf("collapse %d: wings %v, common neighbors %v", i, wings, common)
		}
		if len(common) > 2 {
			t.Fatalf("collapse %d violates the link condition: %v", i, common)
		}
	}
}

func intersectSorted(a, b []int64) []int64 {
	var out []int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// The edge lifetime law (DESIGN.md decision 1): at every step of the
// sequence, every live edge (u, v) appears in both endpoints' connection
// lists. This is what lets Direct Mesh triangulate without ancestors.
func TestConnListsCoverAllLiveEdges(t *testing.T) {
	seq := buildSeq(t, 6, Options{})
	connSet := make([]map[int64]bool, len(seq.ConnLists))
	for v, l := range seq.ConnLists {
		s := make(map[int64]bool, len(l))
		for _, u := range l {
			s[u] = true
		}
		connSet[v] = s
	}
	for step := 0; step <= len(seq.Collapses); step += 3 {
		adj, err := seq.AdjacencyAtStep(step)
		if err != nil {
			t.Fatal(err)
		}
		for v, ns := range adj {
			for _, u := range ns {
				if !connSet[v][u] {
					t.Fatalf("step %d: edge (%d,%d) missing from connection list of %d", step, v, u, v)
				}
				if !connSet[u][v] {
					t.Fatalf("step %d: connection lists not symmetric for (%d,%d)", step, v, u)
				}
			}
		}
	}
}

// Conversely, every connection-list entry must be a live edge at some step
// (no spurious entries).
func TestConnListEntriesAreRealEdges(t *testing.T) {
	seq := buildSeq(t, 5, Options{})
	everAdj := make(map[[2]int64]bool)
	for step := 0; step <= len(seq.Collapses); step++ {
		adj, err := seq.AdjacencyAtStep(step)
		if err != nil {
			t.Fatal(err)
		}
		for v, ns := range adj {
			for _, u := range ns {
				everAdj[edgeKey(v, u)] = true
			}
		}
	}
	for v, l := range seq.ConnLists {
		for _, u := range l {
			if !everAdj[edgeKey(int64(v), u)] {
				t.Fatalf("connection list of %d contains %d, never adjacent", v, u)
			}
		}
	}
}

func TestErrorsMonotone(t *testing.T) {
	seq := buildSeq(t, 9, Options{})
	last := 0.0
	for i, c := range seq.Collapses {
		if c.Err < last {
			t.Fatalf("collapse %d error %g below previous %g", i, c.Err, last)
		}
		last = c.Err
	}
}

func TestStepForLOD(t *testing.T) {
	seq := buildSeq(t, 8, Options{})
	if got := seq.StepForLOD(-1); got != 0 {
		t.Fatalf("StepForLOD(-1) = %d", got)
	}
	last := seq.Collapses[len(seq.Collapses)-1].Err
	if got := seq.StepForLOD(last); got != len(seq.Collapses) {
		t.Fatalf("StepForLOD(max) = %d, want %d", got, len(seq.Collapses))
	}
	// Every returned step is consistent: all collapses before it have
	// Err <= e, the one at it (if any) has Err > e.
	for _, e := range []float64{0, 1e-9, 0.001, 0.1, last / 2} {
		k := seq.StepForLOD(e)
		if k > 0 && seq.Collapses[k-1].Err > e {
			t.Fatalf("collapse %d has Err %g > e %g", k-1, seq.Collapses[k-1].Err, e)
		}
		if k < len(seq.Collapses) && seq.Collapses[k].Err <= e {
			t.Fatalf("collapse %d has Err %g <= e %g", k, seq.Collapses[k].Err, e)
		}
	}
}

func TestDeterministic(t *testing.T) {
	a := buildSeq(t, 7, Options{})
	b := buildSeq(t, 7, Options{})
	if !reflect.DeepEqual(a.Collapses, b.Collapses) {
		t.Fatal("same input must produce identical collapse sequences")
	}
	if !reflect.DeepEqual(a.ConnLists, b.ConnLists) {
		t.Fatal("connection lists must be deterministic")
	}
}

func TestVerticalDistanceMetric(t *testing.T) {
	seq := buildSeq(t, 6, Options{Metric: VerticalDistance})
	if len(seq.Roots) != 1 {
		t.Fatalf("vertical-distance run left %d roots", len(seq.Roots))
	}
	for i, c := range seq.Collapses {
		if c.Err < 0 {
			t.Fatalf("collapse %d: negative error", i)
		}
	}
}

func TestAdjacencyAtStepBounds(t *testing.T) {
	seq := buildSeq(t, 4, Options{})
	if _, err := seq.AdjacencyAtStep(-1); err == nil {
		t.Error("negative step must error")
	}
	if _, err := seq.AdjacencyAtStep(len(seq.Collapses) + 1); err == nil {
		t.Error("step past end must error")
	}
	adj, err := seq.AdjacencyAtStep(len(seq.Collapses))
	if err != nil {
		t.Fatal(err)
	}
	if len(adj) != len(seq.Roots) {
		t.Fatalf("final adjacency has %d vertices, want %d roots", len(adj), len(seq.Roots))
	}
}

func TestAdjacencyAtStepFullResolutionMatchesMesh(t *testing.T) {
	g := heightfield.Crater(6, 9)
	m := mesh.FromGrid(g)
	seq, err := Run(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	adj, err := seq.AdjacencyAtStep(0)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Adjacency()
	for v, ns := range want {
		if ns == nil {
			continue
		}
		if !reflect.DeepEqual(adj[int64(v)], ns) {
			t.Fatalf("vertex %d adjacency mismatch: %v vs %v", v, adj[int64(v)], ns)
		}
	}
}

func TestRunRejectsInvalidMesh(t *testing.T) {
	g := heightfield.Highland(3, 1)
	m := mesh.FromGrid(g)
	m.Tris[0].B = m.Tris[0].A // make degenerate
	if _, err := Run(m, Options{}); err == nil {
		t.Fatal("invalid mesh must be rejected")
	}
}

func TestStatsSimilarVsTotal(t *testing.T) {
	seq := buildSeq(t, 9, Options{})
	st := seq.Stats()
	if st.AvgSimilarLOD <= 0 {
		t.Fatal("average similar-LOD connection count must be positive")
	}
	// The paper reports ~12 similar-LOD connections versus 180-840 total;
	// at any scale the total must strictly dominate the similar-LOD count.
	if st.AvgTotal <= st.AvgSimilarLOD {
		t.Errorf("total (%g) must exceed similar-LOD (%g)", st.AvgTotal, st.AvgSimilarLOD)
	}
	if st.MaxSimilarLOD <= 0 {
		t.Error("max similar-LOD must be positive")
	}
}

func TestPositionsFinite(t *testing.T) {
	seq := buildSeq(t, 8, Options{})
	for i, p := range seq.Positions {
		if p != p || p.X != p.X || p.Y != p.Y || p.Z != p.Z { // NaN check
			t.Fatalf("position %d is NaN: %v", i, p)
		}
	}
	// Generated points should stay inside (or very near) the unit square:
	// the boundary quadrics keep the footprint from drifting.
	for i := seq.BaseVertices; i < len(seq.Positions); i++ {
		p := seq.Positions[i]
		if p.X < -0.25 || p.X > 1.25 || p.Y < -0.25 || p.Y > 1.25 {
			t.Fatalf("generated point %d drifted far outside the domain: %v", i, p)
		}
	}
}

func BenchmarkRunQEM(b *testing.B) {
	g := heightfield.Highland(33, 5)
	m := mesh.FromGrid(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(m, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
