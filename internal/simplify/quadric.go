package simplify

import (
	"math"

	"dmesh/internal/geom"
)

// Quadric is the symmetric 4x4 error quadric of Garland & Heckbert,
// "Surface Simplification Using Quadric Error Metrics" (SIGGRAPH'97) — the
// preprocessing the paper applies to both datasets. Q(v) = v' A v + 2 b'v + c
// measures the sum of squared distances from v to a set of planes.
type Quadric struct {
	// Upper triangle of the symmetric 3x3 part A.
	A00, A01, A02, A11, A12, A22 float64
	// Linear part b and constant c.
	B0, B1, B2, C float64
	// W is the accumulated plane weight, so Eval(v)/W is the weighted
	// mean squared distance of v to the quadric's planes and
	// sqrt(Eval(v)/W) an RMS distance in terrain units.
	W float64
}

// PlaneQuadric returns the quadric of the plane with unit normal (a, b, c)
// and offset d (ax + by + cz + d = 0), scaled by weight w.
func PlaneQuadric(a, b, c, d, w float64) Quadric {
	return Quadric{
		A00: w * a * a, A01: w * a * b, A02: w * a * c,
		A11: w * b * b, A12: w * b * c,
		A22: w * c * c,
		B0:  w * a * d, B1: w * b * d, B2: w * c * d,
		C: w * d * d,
		W: w,
	}
}

// TriangleQuadric returns the area-weighted quadric of the plane through
// the triangle (p, q, r). Degenerate triangles contribute a zero quadric.
func TriangleQuadric(p, q, r geom.Point3) Quadric {
	n := q.Sub(p).Cross(r.Sub(p))
	area2 := n.Norm() // twice the area
	if area2 == 0 {
		return Quadric{}
	}
	n = n.Scale(1 / area2)
	d := -n.Dot(p)
	return PlaneQuadric(n.X, n.Y, n.Z, d, area2/2)
}

// BoundaryQuadric returns a quadric penalizing movement away from the
// boundary edge (p, q): the plane through the edge, perpendicular to the
// face whose normal is fn, weighted by w. This is the standard boundary-
// preservation constraint that stops terrain borders from eroding.
func BoundaryQuadric(p, q, fn geom.Point3, w float64) Quadric {
	e := q.Sub(p)
	n := e.Cross(fn)
	l := n.Norm()
	if l == 0 {
		return Quadric{}
	}
	n = n.Scale(1 / l)
	d := -n.Dot(p)
	return PlaneQuadric(n.X, n.Y, n.Z, d, w)
}

// Add accumulates o into q.
func (q *Quadric) Add(o Quadric) {
	q.A00 += o.A00
	q.A01 += o.A01
	q.A02 += o.A02
	q.A11 += o.A11
	q.A12 += o.A12
	q.A22 += o.A22
	q.B0 += o.B0
	q.B1 += o.B1
	q.B2 += o.B2
	q.C += o.C
	q.W += o.W
}

// Plus returns q + o.
func (q Quadric) Plus(o Quadric) Quadric {
	q.Add(o)
	return q
}

// RMS returns the weighted root-mean-square distance from v to the
// quadric's planes — a distance in terrain units, the form approximation
// errors are recorded in (Section 2 of the paper measures LOD as a
// distance, e.g. "the vertical distance from that point to the terrain
// surface").
func (q Quadric) RMS(v geom.Point3) float64 {
	if q.W <= 0 {
		return 0
	}
	return math.Sqrt(q.Eval(v) / q.W)
}

// Eval returns the quadric error at point v (clamped at zero: tiny negative
// values can appear from floating-point cancellation).
func (q Quadric) Eval(v geom.Point3) float64 {
	e := q.A00*v.X*v.X + q.A11*v.Y*v.Y + q.A22*v.Z*v.Z +
		2*(q.A01*v.X*v.Y+q.A02*v.X*v.Z+q.A12*v.Y*v.Z) +
		2*(q.B0*v.X+q.B1*v.Y+q.B2*v.Z) + q.C
	if e < 0 {
		return 0
	}
	return e
}

// Minimize returns the point minimizing the quadric error, solving
// A v = -b by Gaussian elimination. ok is false when A is (near) singular,
// in which case the caller should fall back to candidate positions.
func (q Quadric) Minimize() (v geom.Point3, ok bool) {
	m := [3][4]float64{
		{q.A00, q.A01, q.A02, -q.B0},
		{q.A01, q.A11, q.A12, -q.B1},
		{q.A02, q.A12, q.A22, -q.B2},
	}
	const eps = 1e-12
	for col := 0; col < 3; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < eps {
			return geom.Point3{}, false
		}
		m[col], m[piv] = m[piv], m[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c < 4; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	v = geom.Point3{
		X: m[0][3] / m[0][0],
		Y: m[1][3] / m[1][1],
		Z: m[2][3] / m[2][2],
	}
	if math.IsNaN(v.X) || math.IsNaN(v.Y) || math.IsNaN(v.Z) ||
		math.IsInf(v.X, 0) || math.IsInf(v.Y, 0) || math.IsInf(v.Z, 0) {
		return geom.Point3{}, false
	}
	return v, true
}
