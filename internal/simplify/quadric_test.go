package simplify

import (
	"math"
	"testing"
	"testing/quick"

	"dmesh/internal/geom"
)

func TestPlaneQuadricDistance(t *testing.T) {
	// Quadric of the plane z = 0: error at (x, y, z) must be z^2.
	q := PlaneQuadric(0, 0, 1, 0, 1)
	cases := []struct {
		p    geom.Point3
		want float64
	}{
		{geom.Point3{X: 1, Y: 2, Z: 0}, 0},
		{geom.Point3{X: 0, Y: 0, Z: 3}, 9},
		{geom.Point3{X: -5, Y: 7, Z: -2}, 4},
	}
	for _, c := range cases {
		if got := q.Eval(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Eval(%v) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestPlaneQuadricWeight(t *testing.T) {
	q1 := PlaneQuadric(0, 0, 1, 0, 1)
	q5 := PlaneQuadric(0, 0, 1, 0, 5)
	p := geom.Point3{Z: 2}
	if got, want := q5.Eval(p), 5*q1.Eval(p); math.Abs(got-want) > 1e-12 {
		t.Errorf("weighted eval = %g, want %g", got, want)
	}
}

func TestTriangleQuadricZeroOnPlane(t *testing.T) {
	a := geom.Point3{X: 0, Y: 0, Z: 1}
	b := geom.Point3{X: 1, Y: 0, Z: 1}
	c := geom.Point3{X: 0, Y: 1, Z: 1}
	q := TriangleQuadric(a, b, c)
	// Any point on the plane z=1 has zero error.
	for _, p := range []geom.Point3{a, b, c, {X: 0.3, Y: 0.3, Z: 1}} {
		if got := q.Eval(p); got > 1e-12 {
			t.Errorf("on-plane error = %g", got)
		}
	}
	// Area-weighted: distance 1 off the plane gives error = area.
	if got := q.Eval(geom.Point3{Z: 2}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("off-plane error = %g, want 0.5 (the area)", got)
	}
}

func TestTriangleQuadricDegenerate(t *testing.T) {
	p := geom.Point3{X: 1, Y: 1, Z: 1}
	q := TriangleQuadric(p, p, p)
	if q != (Quadric{}) {
		t.Errorf("degenerate triangle must give the zero quadric, got %+v", q)
	}
}

func TestQuadricAdditivity(t *testing.T) {
	qa := PlaneQuadric(0, 0, 1, 0, 1)
	qb := PlaneQuadric(1, 0, 0, -1, 1) // plane x = 1
	sum := qa.Plus(qb)
	p := geom.Point3{X: 3, Y: 0, Z: 2}
	if got, want := sum.Eval(p), qa.Eval(p)+qb.Eval(p); math.Abs(got-want) > 1e-12 {
		t.Errorf("sum eval = %g, want %g", got, want)
	}
}

func TestMinimizeFindsPlaneIntersection(t *testing.T) {
	// Three orthogonal planes meeting at (1, 2, 3).
	q := PlaneQuadric(1, 0, 0, -1, 1)
	q.Add(PlaneQuadric(0, 1, 0, -2, 1))
	q.Add(PlaneQuadric(0, 0, 1, -3, 1))
	v, ok := q.Minimize()
	if !ok {
		t.Fatal("Minimize reported singular for a full-rank system")
	}
	want := geom.Point3{X: 1, Y: 2, Z: 3}
	if v.Dist(want) > 1e-9 {
		t.Fatalf("Minimize = %v, want %v", v, want)
	}
	if e := q.Eval(v); e > 1e-12 {
		t.Errorf("error at minimum = %g", e)
	}
}

func TestMinimizeSingular(t *testing.T) {
	// A single plane: the minimizing point is not unique.
	q := PlaneQuadric(0, 0, 1, 0, 1)
	if _, ok := q.Minimize(); ok {
		t.Error("Minimize must report singular for one plane")
	}
	if _, ok := (Quadric{}).Minimize(); ok {
		t.Error("Minimize must report singular for the zero quadric")
	}
}

func TestEvalNeverNegative(t *testing.T) {
	f := func(a, b, c, d, x, y, z float64) bool {
		n := math.Sqrt(a*a + b*b + c*c)
		if n == 0 || math.IsNaN(n) || math.IsInf(n, 0) {
			return true
		}
		q := PlaneQuadric(a/n, b/n, c/n, d, 1)
		return q.Eval(geom.Point3{X: x, Y: y, Z: z}) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundaryQuadricPenalizesPerpendicularMotion(t *testing.T) {
	// Boundary edge along the x axis, face normal +z: the constraint plane
	// is y = 0, so moving in y is penalized, moving in x or z is free.
	p := geom.Point3{}
	q := geom.Point3{X: 1}
	fn := geom.Point3{Z: 1}
	bq := BoundaryQuadric(p, q, fn, 1)
	if e := bq.Eval(geom.Point3{X: 5, Z: 9}); e > 1e-12 {
		t.Errorf("in-plane motion penalized: %g", e)
	}
	if e := bq.Eval(geom.Point3{Y: 2}); math.Abs(e-4) > 1e-9 {
		t.Errorf("perpendicular motion error = %g, want 4", e)
	}
	// Degenerate edge gives zero quadric.
	if got := BoundaryQuadric(p, p, fn, 1); got != (Quadric{}) {
		t.Error("degenerate boundary edge must give zero quadric")
	}
}
