package workload

import (
	"math"
	"testing"
)

func TestCameraPathDeterministicAndInBounds(t *testing.T) {
	cp := CameraPath{Frames: 50, Overlap: 0.85, Axis: 1, EMin: 1, EMax: 5, Drift: 0.2, Seed: 9}
	a, b := cp.Planes(), cp.Planes()
	if len(a) != 50 {
		t.Fatalf("got %d planes", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("frame %d not deterministic: %+v vs %+v", i, a[i], b[i])
		}
		r := a[i].R
		if r.MinX < 0 || r.MinY < 0 || r.MaxX > 1 || r.MaxY > 1 {
			t.Fatalf("frame %d leaves the data space: %v", i, r)
		}
		if a[i].EMin != 1 || a[i].EMax != 5 || a[i].Axis != 1 {
			t.Fatalf("frame %d plane misconfigured: %+v", i, a[i])
		}
	}
	if c := (CameraPath{Frames: 50, Overlap: 0.85, Axis: 1, EMin: 1, EMax: 5, Drift: 0.2, Seed: 10}).Planes(); c[10] == a[10] && c[20] == a[20] {
		t.Fatal("different seeds gave an identical drifting path")
	}
}

func TestCameraPathOverlap(t *testing.T) {
	// Straight flight: realized overlap matches the configured one
	// except at ping-pong turns.
	for _, want := range []float64{0.5, 0.8, 0.9} {
		cp := CameraPath{Frames: 20, Overlap: want, EMin: 1, EMax: 2}
		got := MeanOverlap(cp.Planes())
		if got < want-0.05 || got > 1 {
			t.Fatalf("overlap %g: realized %g", want, got)
		}
	}
	// Consecutive straight frames overlap exactly (1 - step/along).
	cp := CameraPath{Frames: 5, Overlap: 0.9, EMin: 1, EMax: 2}
	planes := cp.Planes()
	inter := planes[1].R.Intersect(planes[0].R)
	if frac := inter.Area() / planes[0].R.Area(); math.Abs(frac-0.9) > 1e-9 {
		t.Fatalf("frame-1 overlap %g, want 0.9", frac)
	}
}

func TestCameraPathAxisX(t *testing.T) {
	cp := CameraPath{Frames: 10, Overlap: 0.5, Axis: 0, EMin: 0.5, EMax: 3}
	planes := cp.Planes()
	for i := 1; i < len(planes); i++ {
		if planes[i].R.MinY != planes[0].R.MinY {
			t.Fatalf("x-axis flight moved laterally without drift")
		}
	}
	if planes[1].R.MinX == planes[0].R.MinX {
		t.Fatal("x-axis flight did not advance along x")
	}
}

func TestCameraPathUniformPlanes(t *testing.T) {
	// EMax below EMin degrades to uniform planes at EMin.
	cp := CameraPath{Frames: 3, Overlap: 0.8, EMin: 2, EMax: 0}
	for i, qp := range cp.Planes() {
		if qp.EMin != 2 || qp.EMax != 2 {
			t.Fatalf("frame %d not uniform: %+v", i, qp)
		}
	}
}
