package workload

import (
	"math"
	"math/rand"

	"dmesh/internal/geom"
)

// CameraPath describes a deterministic terrain flyover: a viewport of
// fixed extent advancing through the unit data space along the LOD
// gradient axis, with consecutive frames sharing the configured
// fraction of their volume. It generates the frame sequence the
// coherent (incremental) query engine is measured on.
type CameraPath struct {
	// Frames is the number of query planes to generate (<= 0 means 30).
	Frames int
	// ViewWidth and ViewHeight are the viewport extent in data space
	// (defaults 0.4 x 0.3).
	ViewWidth, ViewHeight float64
	// Overlap is the fraction of the viewport shared by consecutive
	// frames along the flight direction: the camera advances
	// (1 - Overlap) * extent(Axis) per frame. Clamped to [0, 0.99].
	Overlap float64
	// Axis is the flight direction and the plane's LOD gradient axis
	// (0 = x, 1 = y).
	Axis int
	// EMin and EMax are the plane's near- and far-edge LODs, constant
	// along the path (EMax <= EMin yields uniform planes at EMin).
	EMin, EMax float64
	// Drift is the per-frame lateral drift amplitude as a fraction of
	// the lateral extent (0 = straight flight). Drifting lowers the
	// realized overlap below the configured one.
	Drift float64
	// Seed makes the drift deterministic.
	Seed int64
}

func (cp *CameraPath) defaults() {
	if cp.Frames <= 0 {
		cp.Frames = 30
	}
	if cp.ViewWidth <= 0 {
		cp.ViewWidth = 0.4
	}
	if cp.ViewHeight <= 0 {
		cp.ViewHeight = 0.3
	}
	if cp.Overlap < 0 {
		cp.Overlap = 0
	}
	if cp.Overlap > 0.99 {
		cp.Overlap = 0.99
	}
}

// Planes generates the path's query planes. The camera starts at the
// low edge of the flight axis and ping-pongs when the viewport reaches
// the data-space boundary, so any number of frames stays inside the
// unit square. The sequence is a pure function of the configuration.
func (cp CameraPath) Planes() []geom.QueryPlane {
	cp.defaults()
	rng := rand.New(rand.NewSource(cp.Seed))
	along, lateral := cp.ViewHeight, cp.ViewWidth
	if cp.Axis == 0 {
		along, lateral = cp.ViewWidth, cp.ViewHeight
	}
	step := (1 - cp.Overlap) * along
	pos, lat := 0.0, (1-lateral)/2 // start centered at the low edge
	dir := 1.0
	clamp := func(v, hi float64) float64 {
		if v < 0 {
			return 0
		}
		if v > hi {
			return hi
		}
		return v
	}
	out := make([]geom.QueryPlane, cp.Frames)
	for i := range out {
		var r geom.Rect
		if cp.Axis == 0 {
			r = geom.Rect{MinX: pos, MinY: lat, MaxX: pos + along, MaxY: lat + lateral}
		} else {
			r = geom.Rect{MinX: lat, MinY: pos, MaxX: lat + lateral, MaxY: pos + along}
		}
		out[i] = geom.QueryPlane{R: r, EMin: cp.EMin, EMax: math.Max(cp.EMin, cp.EMax), Axis: cp.Axis}
		pos += dir * step
		if pos < 0 || pos > 1-along {
			dir = -dir
			pos = clamp(pos, 1-along)
		}
		if cp.Drift > 0 {
			lat = clamp(lat+(rng.Float64()*2-1)*cp.Drift*lateral, 1-lateral)
		}
	}
	return out
}

// MeanOverlap returns the mean area overlap between consecutive frames
// of the path, as a fraction of the viewport area — the realized
// temporal coherence (ping-pong turns and drift push it off the
// configured value).
func MeanOverlap(planes []geom.QueryPlane) float64 {
	if len(planes) < 2 {
		return 1
	}
	var sum float64
	for i := 1; i < len(planes); i++ {
		inter := planes[i].R.Intersect(planes[i-1].R)
		if inter.Valid() {
			sum += inter.Area() / planes[i].R.Area()
		}
	}
	return sum / float64(len(planes)-1)
}
