package workload

import (
	"reflect"
	"testing"

	"dmesh/internal/geom"
)

func TestHotSpotDeterministicAndBounded(t *testing.T) {
	h := HotSpot{Clients: 6, PerClient: 15, AreaFrac: 0.04, Seed: 9}
	a, b := h.ROIs(), h.ROIs()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config must generate identical workloads")
	}
	if len(a) != 6 || len(a[0]) != 15 {
		t.Fatalf("shape %dx%d, want 6x15", len(a), len(a[0]))
	}
	unit := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	for ci, qs := range a {
		for qi, r := range qs {
			if !unit.ContainsRect(r) {
				t.Fatalf("client %d query %d ROI %v leaves the unit square", ci, qi, r)
			}
			if w, h := r.Width(), r.Height(); !near(w, 0.2) || !near(h, 0.2) {
				t.Fatalf("ROI %v has side %gx%g, want 0.2", r, w, h)
			}
		}
	}
	// Client streams differ from each other.
	if reflect.DeepEqual(a[0], a[1]) {
		t.Fatal("distinct clients generated identical streams")
	}
}

func TestHotSpotEpochsShareCenters(t *testing.T) {
	h1 := HotSpot{Seed: 4, Epoch: 0}
	h2 := HotSpot{Seed: 4, Epoch: 1}
	if !reflect.DeepEqual(h1.Centers(), h2.Centers()) {
		t.Fatal("epochs must keep the same hot centers")
	}
	if reflect.DeepEqual(h1.ROIs(), h2.ROIs()) {
		t.Fatal("epochs must draw fresh queries")
	}
}

func TestHotSpotSkew(t *testing.T) {
	h := HotSpot{Clients: 4, PerClient: 50, AreaFrac: 0.01, HotFrac: 0.9, Seed: 2}
	h.Defaults()
	centers := h.Centers()
	hot := 0
	total := 0
	for _, qs := range h.ROIs() {
		for _, r := range qs {
			total++
			c := r.Center()
			for _, hc := range centers {
				// Hot queries sit within jitter (default side/2 = 0.05)
				// of a center, modulo the unit-square clamp.
				if absf(c.X-hc.X) <= 0.06 && absf(c.Y-hc.Y) <= 0.06 {
					hot++
					break
				}
			}
		}
	}
	if frac := float64(hot) / float64(total); frac < 0.75 {
		t.Fatalf("only %.0f%% of queries near hot centers, want ~90%%", 100*frac)
	}
}

func near(a, b float64) bool { return absf(a-b) < 1e-9 }

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
