package workload

import (
	"math"
	"math/rand"

	"dmesh/internal/geom"
)

// HotSpot parameterizes a skewed multi-client workload: many clients fly
// over the same few popular regions, the access pattern a shared tile
// cache exists for. A HotFrac share of every client's queries lands
// jittered around one of a small set of hot centers; the rest are
// uniform over the data space.
type HotSpot struct {
	// Clients is how many independent query streams to generate.
	Clients int
	// PerClient is the number of queries in each stream.
	PerClient int
	// AreaFrac is each ROI's area as a fraction of the unit data space.
	AreaFrac float64
	// Spots is how many hot centers the skew concentrates on. Default 3.
	Spots int
	// HotFrac is the fraction of queries aimed at a hot center (the rest
	// are uniform). Default 0.9.
	HotFrac float64
	// Jitter is the maximum |offset| of a hot ROI's center from its hot
	// center, per axis. Default half the ROI side.
	Jitter float64
	// Seed makes the whole workload deterministic: hot centers derive
	// from Seed alone, client streams from Seed and the client index.
	Seed int64
	// Epoch varies the random draws without moving the hot centers:
	// successive epochs are fresh query sets over the same popular
	// terrain (steady-state measurement).
	Epoch int64
}

// Defaults fills zero fields.
func (h *HotSpot) Defaults() {
	if h.Clients <= 0 {
		h.Clients = 8
	}
	if h.PerClient <= 0 {
		h.PerClient = 20
	}
	if h.AreaFrac <= 0 {
		h.AreaFrac = 0.04
	}
	if h.Spots <= 0 {
		h.Spots = 3
	}
	if h.HotFrac <= 0 {
		h.HotFrac = 0.9
	}
}

// Centers returns the hot centers, a function of Seed only — the same
// terrain stays popular across epochs.
func (h HotSpot) Centers() []geom.Point2 {
	h.Defaults()
	rng := rand.New(rand.NewSource(h.Seed))
	out := make([]geom.Point2, h.Spots)
	for i := range out {
		out[i] = geom.Point2{X: 0.15 + 0.7*rng.Float64(), Y: 0.15 + 0.7*rng.Float64()}
	}
	return out
}

// ROIs generates the workload: out[i] is client i's query stream, in
// order. ROIs are clamped to the unit data space.
func (h HotSpot) ROIs() [][]geom.Rect {
	h.Defaults()
	side := sqrtClamped(h.AreaFrac)
	jitter := h.Jitter
	if jitter == 0 {
		jitter = side / 2
	}
	centers := h.Centers()
	out := make([][]geom.Rect, h.Clients)
	for i := range out {
		rng := rand.New(rand.NewSource(h.Seed ^ (int64(i)+1)*1_000_003 ^ h.Epoch*777_767_777))
		qs := make([]geom.Rect, h.PerClient)
		for q := range qs {
			var cx, cy float64
			if rng.Float64() < h.HotFrac {
				c := centers[rng.Intn(len(centers))]
				cx = c.X + (2*rng.Float64()-1)*jitter
				cy = c.Y + (2*rng.Float64()-1)*jitter
			} else {
				cx = rng.Float64()
				cy = rng.Float64()
			}
			qs[q] = clampUnit(geom.RectAround(geom.Point2{X: cx, Y: cy}, side, side))
		}
		out[i] = qs
	}
	return out
}

func sqrtClamped(areaFrac float64) float64 {
	s := math.Sqrt(areaFrac)
	if s > 1 {
		s = 1
	}
	return s
}

func clampUnit(r geom.Rect) geom.Rect {
	if r.MinX < 0 {
		r.MaxX -= r.MinX
		r.MinX = 0
	}
	if r.MinY < 0 {
		r.MaxY -= r.MinY
		r.MinY = 0
	}
	if r.MaxX > 1 {
		r.MinX -= r.MaxX - 1
		r.MaxX = 1
	}
	if r.MaxY > 1 {
		r.MinY -= r.MaxY - 1
		r.MaxY = 1
	}
	return r
}
