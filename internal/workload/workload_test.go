package workload

import (
	"math"
	"testing"

	"dmesh/internal/geom"
)

func TestROIsCountAndSize(t *testing.T) {
	cfg := Config{Locations: 20, Seed: 1}
	rois := ROIs(cfg, 0.1)
	if len(rois) != 20 {
		t.Fatalf("got %d ROIs", len(rois))
	}
	for _, r := range rois {
		if math.Abs(r.Area()-0.1) > 1e-9 {
			t.Fatalf("ROI area %g, want 0.1", r.Area())
		}
		if r.MinX < 0 || r.MinY < 0 || r.MaxX > 1 || r.MaxY > 1 {
			t.Fatalf("ROI out of data space: %v", r)
		}
	}
}

func TestROIsDeterministic(t *testing.T) {
	a := ROIs(Config{Locations: 5, Seed: 7}, 0.05)
	b := ROIs(Config{Locations: 5, Seed: 7}, 0.05)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same ROIs")
		}
	}
	c := ROIs(Config{Locations: 5, Seed: 8}, 0.05)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical ROIs")
	}
}

func TestROIsFullArea(t *testing.T) {
	rois := ROIs(Config{Locations: 3, Seed: 1}, 1.5) // clamped to the unit square
	for _, r := range rois {
		if r != (geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}) {
			t.Fatalf("oversized ROI not clamped: %v", r)
		}
	}
}

func TestDefaults(t *testing.T) {
	var c Config
	c.Defaults()
	if c.Locations != 20 {
		t.Fatalf("default locations = %d, want 20 (the paper's setting)", c.Locations)
	}
}

func TestPlaneFor(t *testing.T) {
	roi := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.6, MaxY: 0.6}
	maxLOD := 100.0
	qp := PlaneFor(roi, 1.0, maxLOD, 0.5)
	if qp.R != roi || qp.Axis != 1 {
		t.Fatalf("plane misconfigured: %+v", qp)
	}
	if qp.EMin != 1.0 {
		t.Fatalf("EMin = %g", qp.EMin)
	}
	if qp.EMax <= qp.EMin || qp.EMax > maxLOD {
		t.Fatalf("EMax = %g out of range", qp.EMax)
	}
	// Full angle reaches (nearly) the maximum LOD.
	full := PlaneFor(roi, 0, maxLOD, 1.0)
	if math.Abs(full.EMax-maxLOD) > 1e-6 {
		t.Fatalf("full-angle EMax = %g, want %g", full.EMax, maxLOD)
	}
	// Larger angle fraction means larger EMax.
	small := PlaneFor(roi, 0, maxLOD, 0.25)
	if small.EMax >= full.EMax {
		t.Fatal("angle fraction not monotone in EMax")
	}
}

func TestPlaneForEMaxClamping(t *testing.T) {
	roi := geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.5, MaxY: 0.5}
	maxLOD := 50.0

	// angleFrac 0: a flat plane, EMax exactly EMin (tan 0 = 0).
	flat := PlaneFor(roi, 2.5, maxLOD, 0)
	if flat.EMax != flat.EMin || flat.EMin != 2.5 {
		t.Fatalf("flat plane: EMin=%g EMax=%g", flat.EMin, flat.EMax)
	}

	// angleFrac 1 with a positive EMin: the un-clamped EMax would be
	// emin + maxLOD; PlaneFor must clamp it to the dataset maximum.
	steep := PlaneFor(roi, 5, maxLOD, 1)
	if steep.EMax != maxLOD {
		t.Fatalf("steep plane EMax = %g, want clamp to %g", steep.EMax, maxLOD)
	}
	if steep.EMin != 5 {
		t.Fatalf("steep plane EMin = %g, want 5", steep.EMin)
	}

	// angleFrac 1 from EMin 0 reaches maxLOD up to float error and must
	// never exceed it.
	full := PlaneFor(roi, 0, maxLOD, 1)
	if full.EMax > maxLOD || math.Abs(full.EMax-maxLOD) > 1e-6 {
		t.Fatalf("full-angle EMax = %g", full.EMax)
	}
}

func TestPlaneForDegenerateROI(t *testing.T) {
	// A zero-height ROI makes θmax = π/2; the zero run must not produce
	// NaN or Inf — the plane degrades to a uniform one at EMin.
	line := geom.Rect{MinX: 0.2, MinY: 0.4, MaxX: 0.8, MaxY: 0.4}
	for _, frac := range []float64{0, 0.5, 1} {
		qp := PlaneFor(line, 3, 50, frac)
		if math.IsNaN(qp.EMax) || math.IsInf(qp.EMax, 0) {
			t.Fatalf("angleFrac %g: EMax = %g", frac, qp.EMax)
		}
		if qp.EMax != qp.EMin {
			t.Fatalf("angleFrac %g: degenerate ROI should be uniform, EMin=%g EMax=%g", frac, qp.EMin, qp.EMax)
		}
	}
	// The fully degenerate point ROI as well.
	point := geom.PointRect(geom.Point2{X: 0.3, Y: 0.7})
	qp := PlaneFor(point, 1, 10, 1)
	if math.IsNaN(qp.EMax) || qp.EMax != 1 {
		t.Fatalf("point ROI: EMax = %g, want 1", qp.EMax)
	}
}

// TestROIPlacementAcrossSeeds extends the determinism check: each seed
// reproduces its own placements, distinct seeds differ, and the
// placement stream is independent of the area fraction (the same seed
// places ROI centers identically for any size).
func TestROIPlacementAcrossSeeds(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		a := ROIs(Config{Locations: 8, Seed: seed}, 0.08)
		b := ROIs(Config{Locations: 8, Seed: seed}, 0.08)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d not reproducible at ROI %d", seed, i)
			}
		}
	}
	seen := make(map[geom.Rect]int64)
	for seed := int64(0); seed < 5; seed++ {
		r := ROIs(Config{Locations: 1, Seed: seed}, 0.08)[0]
		if prev, dup := seen[r]; dup {
			t.Fatalf("seeds %d and %d placed identical ROIs", prev, seed)
		}
		seen[r] = seed
	}
}
