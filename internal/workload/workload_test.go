package workload

import (
	"math"
	"testing"

	"dmesh/internal/geom"
)

func TestROIsCountAndSize(t *testing.T) {
	cfg := Config{Locations: 20, Seed: 1}
	rois := ROIs(cfg, 0.1)
	if len(rois) != 20 {
		t.Fatalf("got %d ROIs", len(rois))
	}
	for _, r := range rois {
		if math.Abs(r.Area()-0.1) > 1e-9 {
			t.Fatalf("ROI area %g, want 0.1", r.Area())
		}
		if r.MinX < 0 || r.MinY < 0 || r.MaxX > 1 || r.MaxY > 1 {
			t.Fatalf("ROI out of data space: %v", r)
		}
	}
}

func TestROIsDeterministic(t *testing.T) {
	a := ROIs(Config{Locations: 5, Seed: 7}, 0.05)
	b := ROIs(Config{Locations: 5, Seed: 7}, 0.05)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same ROIs")
		}
	}
	c := ROIs(Config{Locations: 5, Seed: 8}, 0.05)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds gave identical ROIs")
	}
}

func TestROIsFullArea(t *testing.T) {
	rois := ROIs(Config{Locations: 3, Seed: 1}, 1.5) // clamped to the unit square
	for _, r := range rois {
		if r != (geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}) {
			t.Fatalf("oversized ROI not clamped: %v", r)
		}
	}
}

func TestDefaults(t *testing.T) {
	var c Config
	c.Defaults()
	if c.Locations != 20 {
		t.Fatalf("default locations = %d, want 20 (the paper's setting)", c.Locations)
	}
}

func TestPlaneFor(t *testing.T) {
	roi := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.6, MaxY: 0.6}
	maxLOD := 100.0
	qp := PlaneFor(roi, 1.0, maxLOD, 0.5)
	if qp.R != roi || qp.Axis != 1 {
		t.Fatalf("plane misconfigured: %+v", qp)
	}
	if qp.EMin != 1.0 {
		t.Fatalf("EMin = %g", qp.EMin)
	}
	if qp.EMax <= qp.EMin || qp.EMax > maxLOD {
		t.Fatalf("EMax = %g out of range", qp.EMax)
	}
	// Full angle reaches (nearly) the maximum LOD.
	full := PlaneFor(roi, 0, maxLOD, 1.0)
	if math.Abs(full.EMax-maxLOD) > 1e-6 {
		t.Fatalf("full-angle EMax = %g, want %g", full.EMax, maxLOD)
	}
	// Larger angle fraction means larger EMax.
	small := PlaneFor(roi, 0, maxLOD, 0.25)
	if small.EMax >= full.EMax {
		t.Fatal("angle fraction not monotone in EMax")
	}
}
