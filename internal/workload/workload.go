// Package workload generates the query workloads of the paper's Section 6:
// for each (ROI size, LOD) combination, the same mesh is created at a
// number of randomly selected locations (the paper uses 20) and costs are
// averaged.
package workload

import (
	"math"
	"math/rand"

	"dmesh/internal/geom"
)

// Config parameterizes workload generation.
type Config struct {
	// Locations is how many random ROI placements each measurement
	// averages over (the paper uses 20).
	Locations int
	// Seed makes placement deterministic.
	Seed int64
}

// Defaults fills zero fields with the paper's settings.
func (c *Config) Defaults() {
	if c.Locations <= 0 {
		c.Locations = 20
	}
}

// ROIs returns cfg.Locations square regions of interest covering the given
// fraction of the unit data-space area, uniformly placed.
func ROIs(cfg Config, areaFrac float64) []geom.Rect {
	cfg.Defaults()
	side := math.Sqrt(areaFrac)
	if side > 1 {
		side = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]geom.Rect, cfg.Locations)
	for i := range out {
		x := rng.Float64() * (1 - side)
		y := rng.Float64() * (1 - side)
		out[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + side, MaxY: y + side}
	}
	return out
}

// PlaneFor builds the viewpoint-dependent query plane over roi for the
// paper's parameterization: a starting LOD emin and an angle given as a
// fraction of θmax = arctan(maxLOD / roiExtent) (Section 6.2 and
// Figure 7). The LOD gradient runs along y.
func PlaneFor(roi geom.Rect, emin, maxLOD, angleFrac float64) geom.QueryPlane {
	thetaMax := geom.MaxAngle(maxLOD, roi.Height())
	qp := geom.PlaneForAngle(roi, emin, thetaMax*angleFrac, 1)
	if qp.EMax > maxLOD {
		qp.EMax = maxLOD
	}
	return qp
}
