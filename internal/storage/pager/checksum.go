package pager

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
)

// ErrChecksum is the sentinel wrapped by every checksum-verification
// failure: the page read from the inner backend does not match the CRC
// stamped when it was last written — corruption, a torn write, or a page
// that was never durably written.
var ErrChecksum = errors.New("pager: page checksum mismatch")

const (
	// sumBytes is the per-page checksum trailer: the CRC-32C of the page
	// followed by its bitwise complement. The complement guards the
	// trailer itself — no single corrupted trailer word can masquerade as
	// a valid stamp, and the all-zeroes trailer (never written) is always
	// invalid.
	sumBytes = 8
	// sumsPerPage is how many trailers one checksum page holds.
	sumsPerPage = PageSize / sumBytes
	// groupPages is one checksum page plus the data pages it covers; the
	// physical page space of the inner backend is a sequence of such
	// groups, so checksums persist inside the same backend (and the same
	// file) as the data they protect.
	groupPages = sumsPerPage + 1
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ChecksumBackend wraps an inner Backend so that every logical page
// carries a CRC-32C verified on ReadPage and stamped on WritePage. The
// checksums live in dedicated pages interleaved into the inner backend
// (one checksum page per sumsPerPage data pages), so the protection
// survives reopen; VerifyAll rechecks the whole store, which OpenStore
// runs at open to detect corruption and torn writes before serving.
//
// The wrapper preserves the disk-access metric exactly: the Pager counts
// one read per buffer-pool miss regardless of the backend underneath,
// and the wrapper's own checksum-page accesses are cached internally.
// Layer fault injection (faultfs) BELOW this wrapper: injected bit flips
// then model disk rot the checksums must catch.
type ChecksumBackend struct {
	inner Backend

	mu     sync.Mutex
	pages  PageID            // logical pages
	sums   map[PageID][]byte // loaded checksum pages, keyed by physical ID
	closed bool
}

// Checksummed wraps inner with per-page CRC-32C protection. The inner
// backend must be empty (a store being built) or previously produced by a
// ChecksumBackend (a store being reopened); any other layout fails
// ErrChecksum on first read.
func Checksummed(inner Backend) (*ChecksumBackend, error) {
	phys := int64(inner.NumPages())
	groups := (phys + groupPages - 1) / groupPages
	logical := phys - groups
	// A valid layout is exactly what Allocate produces: each group of up
	// to sumsPerPage data pages is led by its checksum page.
	if logical < 0 || logical+(logical+sumsPerPage-1)/sumsPerPage != phys {
		return nil, fmt.Errorf("pager: checksummed: inner backend has %d pages, not a whole group layout", phys)
	}
	return &ChecksumBackend{
		inner: inner,
		pages: PageID(logical),
		sums:  make(map[PageID][]byte),
	}, nil
}

// physical maps a logical page to its inner data page and the (checksum
// page, trailer offset) that protects it.
func physical(id PageID) (data, sumPage PageID, sumOff int) {
	group := uint64(id) / sumsPerPage
	slot := uint64(id) % sumsPerPage
	sumPage = PageID(group * groupPages)
	return sumPage + 1 + PageID(slot), sumPage, int(slot) * sumBytes
}

// sumPageLocked returns (loading if needed) the checksum page with the
// given physical ID. Caller holds b.mu.
func (b *ChecksumBackend) sumPageLocked(id PageID) ([]byte, error) {
	if s, ok := b.sums[id]; ok {
		return s, nil
	}
	s := make([]byte, PageSize)
	if err := b.inner.ReadPage(id, s); err != nil {
		return nil, fmt.Errorf("pager: checksum page %d: %w", id, err)
	}
	b.sums[id] = s
	return s, nil
}

// stamp writes the trailer for data into s at off.
func stamp(s []byte, off int, data []byte) {
	c := crc32.Checksum(data, castagnoli)
	putU32(s[off:], c)
	putU32(s[off+4:], ^c)
}

// verify checks data against the trailer at s[off:].
func verify(s []byte, off int, data []byte) bool {
	c := getU32(s[off:])
	if getU32(s[off+4:]) != ^c {
		return false // trailer itself damaged or never stamped
	}
	return crc32.Checksum(data, castagnoli) == c
}

func putU32(d []byte, v uint32) {
	d[0], d[1], d[2], d[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getU32(d []byte) uint32 {
	return uint32(d[0]) | uint32(d[1])<<8 | uint32(d[2])<<16 | uint32(d[3])<<24
}

// ReadPage implements Backend: one inner data-page read plus a cached
// checksum lookup, verified before the content reaches the buffer pool.
func (b *ChecksumBackend) ReadPage(id PageID, buf []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	if id >= b.pages {
		return fmt.Errorf("pager: checksummed: page %d out of range (%d pages)", id, b.pages)
	}
	data, sumPage, off := physical(id)
	s, err := b.sumPageLocked(sumPage)
	if err != nil {
		return err
	}
	if err := b.inner.ReadPage(data, buf); err != nil {
		return err
	}
	if !verify(s, off, buf[:PageSize]) {
		return fmt.Errorf("%w: page %d", ErrChecksum, id)
	}
	return nil
}

// WritePage implements Backend: the data page and its refreshed trailer
// are both written through to the inner backend.
func (b *ChecksumBackend) WritePage(id PageID, buf []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	if id >= b.pages {
		return fmt.Errorf("pager: checksummed: page %d out of range (%d pages)", id, b.pages)
	}
	data, sumPage, off := physical(id)
	s, err := b.sumPageLocked(sumPage)
	if err != nil {
		return err
	}
	if err := b.inner.WritePage(data, buf); err != nil {
		return err
	}
	stamp(s, off, buf[:PageSize])
	if err := b.inner.WritePage(sumPage, s); err != nil {
		return fmt.Errorf("pager: checksum page %d: %w", sumPage, err)
	}
	return nil
}

// Allocate implements Backend. The first page of each group allocates the
// group's checksum page too; the fresh (zeroed) data page is stamped
// immediately so it verifies even if read back before its first write.
func (b *ChecksumBackend) Allocate() (PageID, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, ErrClosed
	}
	id := b.pages
	_, sumPage, off := physical(id)
	if uint64(id)%sumsPerPage == 0 {
		sp, err := b.inner.Allocate()
		if err != nil {
			return 0, err
		}
		if sp != sumPage {
			return 0, fmt.Errorf("pager: checksummed: checksum page allocated at %d, want %d", sp, sumPage)
		}
		b.sums[sumPage] = make([]byte, PageSize)
	}
	dp, err := b.inner.Allocate()
	if err != nil {
		return 0, err
	}
	if want, _, _ := physical(id); dp != want {
		return 0, fmt.Errorf("pager: checksummed: data page allocated at %d, want %d", dp, want)
	}
	s, err := b.sumPageLocked(sumPage)
	if err != nil {
		return 0, err
	}
	var zero [PageSize]byte
	stamp(s, off, zero[:])
	if err := b.inner.WritePage(sumPage, s); err != nil {
		return 0, fmt.Errorf("pager: checksum page %d: %w", sumPage, err)
	}
	b.pages++
	return id, nil
}

// NumPages implements Backend (logical pages).
func (b *ChecksumBackend) NumPages() PageID {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.pages
}

// Sync implements Backend.
func (b *ChecksumBackend) Sync() error { return b.inner.Sync() }

// Close implements Backend.
func (b *ChecksumBackend) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	b.sums = nil
	b.mu.Unlock()
	return b.inner.Close()
}

// VerifyAll reads and verifies every logical page, returning the first
// checksum failure (wrapping ErrChecksum) or any inner read error. Run it
// at open to detect corruption and torn writes before serving; its reads
// go straight to the inner backend and are not counted by any pager.
func (b *ChecksumBackend) VerifyAll() error {
	n := b.NumPages()
	buf := make([]byte, PageSize)
	for id := PageID(0); id < n; id++ {
		if err := b.ReadPage(id, buf); err != nil {
			return err
		}
	}
	return nil
}
