package pager

import (
	"errors"
	"testing"
)

// faultBackend wraps a backend and fails operations on command — the
// failure-injection harness for the storage stack.
type faultBackend struct {
	Backend
	failReads  bool
	failWrites bool
	failAllocs bool
}

var errInjected = errors.New("injected fault")

func (f *faultBackend) ReadPage(id PageID, buf []byte) error {
	if f.failReads {
		return errInjected
	}
	return f.Backend.ReadPage(id, buf)
}

func (f *faultBackend) WritePage(id PageID, buf []byte) error {
	if f.failWrites {
		return errInjected
	}
	return f.Backend.WritePage(id, buf)
}

func (f *faultBackend) Allocate() (PageID, error) {
	if f.failAllocs {
		return 0, errInjected
	}
	return f.Backend.Allocate()
}

func TestReadFaultPropagates(t *testing.T) {
	fb := &faultBackend{Backend: NewMemBackend()}
	p := New(fb, 8)
	fr, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id := fr.ID()
	fr.MarkDirty()
	fr.Unpin()
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}

	fb.failReads = true
	if _, err := p.Get(id); !errors.Is(err, errInjected) {
		t.Fatalf("Get error = %v, want injected fault", err)
	}
	// The failed frame must not linger: recovery works once reads heal.
	fb.failReads = false
	fr, err = p.Get(id)
	if err != nil {
		t.Fatalf("Get after fault cleared: %v", err)
	}
	fr.Unpin()
}

func TestClockReadFaultLeavesNoGhostFrame(t *testing.T) {
	fb := &faultBackend{Backend: NewMemBackend()}
	p := NewWithPolicy(fb, 4, Clock)
	defer p.Close()
	var ids []PageID
	for i := 0; i < 3; i++ {
		fr, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fr.MarkDirty()
		ids = append(ids, fr.ID())
		fr.Unpin()
	}
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}

	// A failed read must fully unregister the frame it created: before the
	// fix it was deleted from the frame map but left in the Clock ring as a
	// pinned ghost, leaking a ring slot per fault.
	fb.failReads = true
	for i := 0; i < 8; i++ {
		if _, err := p.Get(ids[0]); !errors.Is(err, errInjected) {
			t.Fatalf("Get error = %v, want injected fault", err)
		}
	}
	for _, sh := range p.pl.shards {
		if len(sh.ring) != 0 {
			t.Fatalf("ring holds %d stale entries after failed reads", len(sh.ring))
		}
		if len(sh.frames) != 0 {
			t.Fatalf("frame map holds %d stale entries after failed reads", len(sh.frames))
		}
	}

	// The pool must still cycle through evictions normally afterwards.
	fb.failReads = false
	for round := 0; round < 3; round++ {
		for i, id := range ids {
			fr, err := p.Get(id)
			if err != nil {
				t.Fatalf("Get after faults cleared: %v", err)
			}
			if i == 0 && fr.Data()[0] != 0 {
				t.Fatalf("page %d corrupted", id)
			}
			fr.Unpin()
		}
	}
}

func TestEvictionWriteFaultPropagates(t *testing.T) {
	fb := &faultBackend{Backend: NewMemBackend()}
	p := New(fb, 4)
	// Fill the pool with dirty pages.
	for i := 0; i < 4; i++ {
		fr, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fr.MarkDirty()
		fr.Unpin()
	}
	fb.failWrites = true
	// The next allocation must evict a dirty page and fail loudly, not
	// silently drop data.
	if _, err := p.Allocate(); !errors.Is(err, errInjected) {
		t.Fatalf("Allocate during failed eviction = %v, want injected fault", err)
	}
}

func TestAllocateFaultPropagates(t *testing.T) {
	fb := &faultBackend{Backend: NewMemBackend(), failAllocs: true}
	p := New(fb, 8)
	if _, err := p.Allocate(); !errors.Is(err, errInjected) {
		t.Fatalf("Allocate = %v, want injected fault", err)
	}
}

func TestFlushFaultPropagates(t *testing.T) {
	fb := &faultBackend{Backend: NewMemBackend()}
	p := New(fb, 8)
	fr, _ := p.Allocate()
	fr.MarkDirty()
	fr.Unpin()
	fb.failWrites = true
	if err := p.FlushAll(); !errors.Is(err, errInjected) {
		t.Fatalf("FlushAll = %v, want injected fault", err)
	}
	if err := p.DropCache(); !errors.Is(err, errInjected) {
		t.Fatalf("DropCache = %v, want injected fault", err)
	}
	// Healing the backend lets the flush complete.
	fb.failWrites = false
	if err := p.FlushAll(); err != nil {
		t.Fatalf("FlushAll after healing: %v", err)
	}
}
