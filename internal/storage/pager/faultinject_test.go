package pager

import (
	"errors"
	"testing"
)

// faultBackend is a minimal in-package fault injector for the one test
// that must inspect shard internals. Everything else uses the real
// injection harness, internal/storage/faultfs (which imports this
// package, so in-package tests cannot import it back); see
// faultinject_ext_test.go.
type faultBackend struct {
	Backend
	failReads bool
}

var errInjected = errors.New("injected fault")

func (f *faultBackend) ReadPage(id PageID, buf []byte) error {
	if f.failReads {
		return errInjected
	}
	return f.Backend.ReadPage(id, buf)
}

func TestClockReadFaultLeavesNoGhostFrame(t *testing.T) {
	fb := &faultBackend{Backend: NewMemBackend()}
	p := NewWithPolicy(fb, 4, Clock)
	defer p.Close()
	var ids []PageID
	for i := 0; i < 3; i++ {
		fr, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fr.MarkDirty()
		ids = append(ids, fr.ID())
		fr.Unpin()
	}
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}

	// A failed read must fully unregister the frame it created: before the
	// fix it was deleted from the frame map but left in the Clock ring as a
	// pinned ghost, leaking a ring slot per fault.
	fb.failReads = true
	for i := 0; i < 8; i++ {
		if _, err := p.Get(ids[0]); !errors.Is(err, errInjected) {
			t.Fatalf("Get error = %v, want injected fault", err)
		}
	}
	for _, sh := range p.pl.shards {
		if len(sh.ring) != 0 {
			t.Fatalf("ring holds %d stale entries after failed reads", len(sh.ring))
		}
		if len(sh.frames) != 0 {
			t.Fatalf("frame map holds %d stale entries after failed reads", len(sh.frames))
		}
	}

	// The pool must still cycle through evictions normally afterwards.
	fb.failReads = false
	for round := 0; round < 3; round++ {
		for i, id := range ids {
			fr, err := p.Get(id)
			if err != nil {
				t.Fatalf("Get after faults cleared: %v", err)
			}
			if i == 0 && fr.Data()[0] != 0 {
				t.Fatalf("page %d corrupted", id)
			}
			fr.Unpin()
		}
	}
}
