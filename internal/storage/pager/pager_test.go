package pager

import (
	"os"
	"path/filepath"
	"testing"
)

func TestAllocateAndReadBack(t *testing.T) {
	p := New(NewMemBackend(), 8)
	defer p.Close()

	fr, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	copy(fr.Data(), "hello")
	fr.MarkDirty()
	id := fr.ID()
	fr.Unpin()

	got, err := p.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Data()[:5]) != "hello" {
		t.Fatalf("read back %q", got.Data()[:5])
	}
	got.Unpin()

	s := p.Stats()
	if s.Reads != 0 {
		t.Errorf("no disk read expected while buffered, got %d", s.Reads)
	}
	if s.Hits != 1 {
		t.Errorf("hits = %d, want 1", s.Hits)
	}
}

func TestMissCountsAsDiskAccess(t *testing.T) {
	p := New(NewMemBackend(), 8)
	defer p.Close()
	fr, _ := p.Allocate()
	copy(fr.Data(), "x")
	fr.MarkDirty()
	id := fr.ID()
	fr.Unpin()

	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()

	got, err := p.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	got.Unpin()
	s := p.Stats()
	if s.Reads != 1 || s.Misses != 1 {
		t.Fatalf("after cold read: %+v", s)
	}
	// Second access is a hit, not a disk access.
	got, _ = p.Get(id)
	got.Unpin()
	s = p.Stats()
	if s.Reads != 1 || s.Hits != 1 {
		t.Fatalf("after warm read: %+v", s)
	}
}

func TestEvictionWritesDirtyAndPreservesData(t *testing.T) {
	p := New(NewMemBackend(), 4)
	defer p.Close()
	var ids []PageID
	for i := 0; i < 10; i++ {
		fr, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = byte(i)
		fr.MarkDirty()
		ids = append(ids, fr.ID())
		fr.Unpin()
	}
	s := p.Stats()
	if s.Evictions == 0 {
		t.Fatal("expected evictions with pool smaller than working set")
	}
	if s.Writes == 0 {
		t.Fatal("dirty evictions must write")
	}
	for i, id := range ids {
		fr, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if fr.Data()[0] != byte(i) {
			t.Fatalf("page %d: got %d, want %d", id, fr.Data()[0], i)
		}
		fr.Unpin()
	}
}

func TestPinnedPagesSurviveEvictionPressure(t *testing.T) {
	p := New(NewMemBackend(), 4)
	defer p.Close()
	pinned, _ := p.Allocate()
	pinned.Data()[0] = 42
	pinned.MarkDirty()
	for i := 0; i < 8; i++ {
		fr, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fr.Unpin()
	}
	if pinned.Data()[0] != 42 {
		t.Fatal("pinned frame was recycled")
	}
	pinned.Unpin()
}

func TestPoolExhaustion(t *testing.T) {
	p := New(NewMemBackend(), 4)
	defer p.Close()
	var frames []*Frame
	for i := 0; i < 4; i++ {
		fr, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, fr)
	}
	if _, err := p.Allocate(); err == nil {
		t.Fatal("allocating past an all-pinned pool must fail")
	}
	for _, fr := range frames {
		fr.Unpin()
	}
	if _, err := p.Allocate(); err != nil {
		t.Fatalf("allocation after unpin should succeed: %v", err)
	}
}

func TestDropCacheRefusesPinned(t *testing.T) {
	p := New(NewMemBackend(), 8)
	defer p.Close()
	fr, _ := p.Allocate()
	if err := p.DropCache(); err == nil {
		t.Fatal("DropCache with pinned page must fail")
	}
	fr.Unpin()
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
}

func TestUnpinUnderflowAbsorbed(t *testing.T) {
	// A serving process must survive a double release (the error-unwind
	// pattern): it is absorbed and counted, never a panic or a negative
	// pin count.
	p := New(NewMemBackend(), 8)
	defer p.Close()
	fr, _ := p.Allocate()
	fr.Unpin()
	fr.Unpin()
	if got := p.Stats().UnpinErrors; got != 1 {
		t.Fatalf("UnpinErrors = %d, want 1", got)
	}
	if fr.f.pins != 0 {
		t.Fatalf("pin count = %d after double unpin, want 0", fr.f.pins)
	}
}

func TestClosedPagerErrors(t *testing.T) {
	p := New(NewMemBackend(), 8)
	fr, _ := p.Allocate()
	fr.Unpin()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(0); err != ErrClosed {
		t.Fatalf("Get after close: %v", err)
	}
	if _, err := p.Allocate(); err != ErrClosed {
		t.Fatalf("Allocate after close: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestLRUOrder(t *testing.T) {
	p := New(NewMemBackend(), 4)
	defer p.Close()
	var ids []PageID
	for i := 0; i < 4; i++ {
		fr, _ := p.Allocate()
		fr.Data()[0] = byte(i)
		fr.MarkDirty()
		ids = append(ids, fr.ID())
		fr.Unpin()
	}
	// Touch page 0 so page 1 becomes the LRU victim.
	fr, _ := p.Get(ids[0])
	fr.Unpin()
	fr, err := p.Allocate() // forces one eviction
	if err != nil {
		t.Fatal(err)
	}
	fr.Unpin()
	p.ResetStats()
	// Page 0 must still be buffered (no disk read)...
	fr, _ = p.Get(ids[0])
	fr.Unpin()
	if s := p.Stats(); s.Reads != 0 {
		t.Fatalf("page 0 should have been retained, stats %+v", s)
	}
	// ...while page 1 was evicted (one disk read).
	fr, _ = p.Get(ids[1])
	fr.Unpin()
	if s := p.Stats(); s.Reads != 1 {
		t.Fatalf("page 1 should have been evicted, stats %+v", s)
	}
}

func TestMemBackendBounds(t *testing.T) {
	b := NewMemBackend()
	buf := make([]byte, PageSize)
	if err := b.ReadPage(0, buf); err == nil {
		t.Fatal("read of unallocated page must fail")
	}
	if err := b.WritePage(3, buf); err == nil {
		t.Fatal("write of unallocated page must fail")
	}
}

func TestFileBackendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pages.db")
	b, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	p := New(b, 4)
	var ids []PageID
	for i := 0; i < 6; i++ {
		fr, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[100] = byte(i * 3)
		fr.MarkDirty()
		ids = append(ids, fr.ID())
		fr.Unpin()
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and verify persistence.
	b2, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if b2.NumPages() != 6 {
		t.Fatalf("NumPages = %d, want 6", b2.NumPages())
	}
	p2 := New(b2, 4)
	defer p2.Close()
	for i, id := range ids {
		fr, err := p2.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if fr.Data()[100] != byte(i*3) {
			t.Fatalf("page %d: got %d want %d", id, fr.Data()[100], i*3)
		}
		fr.Unpin()
	}
}

func TestOpenFileRejectsCorruptSize(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.db")
	if err := os.WriteFile(path, make([]byte, PageSize+1), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Fatal("OpenFile must reject a size that is not page aligned")
	}
}

func TestConcurrentAccess(t *testing.T) {
	p := New(NewMemBackend(), 32)
	defer p.Close()
	var ids []PageID
	for i := 0; i < 16; i++ {
		fr, _ := p.Allocate()
		fr.Data()[0] = byte(i)
		fr.MarkDirty()
		ids = append(ids, fr.ID())
		fr.Unpin()
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 200; i++ {
				id := ids[(g+i)%len(ids)]
				fr, err := p.Get(id)
				if err != nil {
					done <- err
					return
				}
				_ = fr.Data()[0]
				fr.Unpin()
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkGetHit(b *testing.B) {
	p := New(NewMemBackend(), 64)
	defer p.Close()
	fr, _ := p.Allocate()
	id := fr.ID()
	fr.Unpin()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr, err := p.Get(id)
		if err != nil {
			b.Fatal(err)
		}
		fr.Unpin()
	}
}
