package pager

import "testing"

func TestClockEvictionPreservesData(t *testing.T) {
	p := NewWithPolicy(NewMemBackend(), 4, Clock)
	defer p.Close()
	var ids []PageID
	for i := 0; i < 12; i++ {
		fr, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = byte(i)
		fr.MarkDirty()
		ids = append(ids, fr.ID())
		fr.Unpin()
	}
	if s := p.Stats(); s.Evictions == 0 {
		t.Fatal("expected evictions")
	}
	for i, id := range ids {
		fr, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if fr.Data()[0] != byte(i) {
			t.Fatalf("page %d corrupted", id)
		}
		fr.Unpin()
	}
}

func TestClockSecondChance(t *testing.T) {
	p := NewWithPolicy(NewMemBackend(), 4, Clock)
	defer p.Close()
	var ids []PageID
	for i := 0; i < 4; i++ {
		fr, _ := p.Allocate()
		fr.MarkDirty()
		ids = append(ids, fr.ID())
		fr.Unpin()
	}
	// First eviction sweep clears every reference bit and evicts one page.
	fr, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	fr.Unpin()
	// Re-reference one survivor (the sweep evicted the oldest page, so
	// ids[2] is still buffered): its bit is now set while other survivors'
	// bits are clear, so the next sweep must evict one of THEM.
	hot := ids[2]
	p.ResetStats()
	f, err := p.Get(hot)
	if err != nil {
		t.Fatal(err)
	}
	f.Unpin()
	if p.Stats().Reads != 0 {
		t.Fatalf("setup: expected ids[2] to be buffered")
	}
	fr, err = p.Allocate() // second eviction: must spare the hot page
	if err != nil {
		t.Fatal(err)
	}
	fr.Unpin()
	p.ResetStats()
	f, err = p.Get(hot)
	if err != nil {
		t.Fatal(err)
	}
	f.Unpin()
	if s := p.Stats(); s.Reads != 0 {
		t.Fatalf("second-chance failed: hot page %d was evicted", hot)
	}
}

func TestClockPinnedPagesSurvive(t *testing.T) {
	p := NewWithPolicy(NewMemBackend(), 4, Clock)
	defer p.Close()
	pinned, _ := p.Allocate()
	pinned.Data()[0] = 42
	pinned.MarkDirty()
	for i := 0; i < 10; i++ {
		fr, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fr.Unpin()
	}
	if pinned.Data()[0] != 42 {
		t.Fatal("pinned frame recycled")
	}
	pinned.Unpin()
}

func TestClockExhaustion(t *testing.T) {
	p := NewWithPolicy(NewMemBackend(), 4, Clock)
	defer p.Close()
	var frames []*Frame
	for i := 0; i < 4; i++ {
		fr, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, fr)
	}
	if _, err := p.Allocate(); err == nil {
		t.Fatal("all-pinned pool must refuse allocation")
	}
	for _, fr := range frames {
		fr.Unpin()
	}
	if _, err := p.Allocate(); err != nil {
		t.Fatalf("allocation after unpin: %v", err)
	}
}

func TestClockDropCache(t *testing.T) {
	p := NewWithPolicy(NewMemBackend(), 8, Clock)
	defer p.Close()
	var ids []PageID
	for i := 0; i < 6; i++ {
		fr, _ := p.Allocate()
		fr.Data()[0] = byte(i + 1)
		fr.MarkDirty()
		ids = append(ids, fr.ID())
		fr.Unpin()
	}
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	for i, id := range ids {
		fr, err := p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if fr.Data()[0] != byte(i+1) {
			t.Fatalf("page %d lost after DropCache", id)
		}
		fr.Unpin()
	}
	if s := p.Stats(); s.Reads != uint64(len(ids)) {
		t.Fatalf("cold reads = %d, want %d", s.Reads, len(ids))
	}
}

func TestClockScanResistanceVsLRU(t *testing.T) {
	// A hot page accessed between sequential sweeps must survive under
	// both policies; this pins down that Clock's ref bits actually work
	// under scan pressure.
	for _, policy := range []Policy{LRU, Clock} {
		p := NewWithPolicy(NewMemBackend(), 8, policy)
		hot, _ := p.Allocate()
		hotID := hot.ID()
		hot.MarkDirty()
		hot.Unpin()
		var cold []PageID
		for i := 0; i < 32; i++ {
			fr, _ := p.Allocate()
			fr.MarkDirty()
			cold = append(cold, fr.ID())
			fr.Unpin()
		}
		// Interleave hot accesses with a cold scan.
		for i, id := range cold {
			fr, err := p.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			fr.Unpin()
			if i%2 == 0 {
				h, err := p.Get(hotID)
				if err != nil {
					t.Fatal(err)
				}
				h.Unpin()
			}
		}
		p.ResetStats()
		h, err := p.Get(hotID)
		if err != nil {
			t.Fatal(err)
		}
		h.Unpin()
		if s := p.Stats(); s.Reads != 0 {
			t.Fatalf("policy %v: hot page evicted during scan", policy)
		}
		p.Close()
	}
}
