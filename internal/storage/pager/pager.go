// Package pager implements the page-based storage layer that every disk-
// resident structure in this repository (heap files, B+-trees, R*-trees,
// quadtrees, the HDoV tree) is built on.
//
// The paper measures query cost as the number of disk accesses reported by
// Oracle's performance statistics, with the database buffer flushed before
// each test. This package reproduces that methodology exactly: all
// structures read and write fixed-size pages through a buffer pool, a
// buffer-pool miss is one disk access, and DropCache simulates the paper's
// buffer flush. Absolute numbers therefore carry the same meaning as the
// paper's y axes.
package pager

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
)

// PageSize is the size of every page in bytes (a common DBMS block size;
// Oracle's default in the 9i era was 4 KiB or 8 KiB).
const PageSize = 4096

// PageID identifies a page within one backend.
type PageID uint32

// ErrClosed is returned by operations on a closed pager or backend.
var ErrClosed = errors.New("pager: closed")

// Backend is the raw page store underneath a Pager.
type Backend interface {
	// ReadPage fills buf (len PageSize) with the content of page id.
	ReadPage(id PageID, buf []byte) error
	// WritePage stores buf (len PageSize) as the content of page id.
	WritePage(id PageID, buf []byte) error
	// Allocate extends the store by one zeroed page and returns its ID.
	Allocate() (PageID, error)
	// NumPages returns the number of allocated pages.
	NumPages() PageID
	// Sync durably flushes backend state.
	Sync() error
	// Close releases backend resources.
	Close() error
}

// Stats counts pager activity. Reads is the paper's "number of disk
// accesses" metric: buffer-pool misses served by the backend.
type Stats struct {
	Reads     uint64 // pages read from the backend (disk accesses)
	Writes    uint64 // pages written to the backend
	Hits      uint64 // buffer-pool hits
	Misses    uint64 // buffer-pool misses (== Reads)
	Evictions uint64 // frames evicted to make room
}

// Policy selects the buffer pool's replacement policy.
type Policy int

const (
	// LRU evicts the least recently used unpinned page (the default).
	LRU Policy = iota
	// Clock approximates LRU with a second-chance ring — constant-time
	// bookkeeping per access, the policy most real buffer managers use.
	Clock
)

// frame is one buffered page.
type frame struct {
	id    PageID
	data  []byte
	dirty bool
	pins  int
	elem  *list.Element // position in the LRU list; nil while pinned
	ref   bool          // Clock: second-chance bit
	slot  int           // Clock: position in the ring (-1 when absent)
}

// Pager is an LRU buffer pool over a Backend. It is safe for concurrent
// use. Frames handed out by Get/Allocate are pinned and will not be
// evicted until unpinned.
type Pager struct {
	mu      sync.Mutex
	backend Backend
	cap     int
	policy  Policy
	frames  map[PageID]*frame
	lru     *list.List // LRU: front = most recently used; unpinned frames only
	ring    []*frame   // Clock: all frames in arrival order
	hand    int        // Clock: sweep position
	stats   Stats
	closed  bool
}

// New creates an LRU pager over backend with capacity for capPages
// buffered pages (minimum 4).
func New(backend Backend, capPages int) *Pager {
	return NewWithPolicy(backend, capPages, LRU)
}

// NewWithPolicy creates a pager with an explicit replacement policy.
func NewWithPolicy(backend Backend, capPages int, policy Policy) *Pager {
	if capPages < 4 {
		capPages = 4
	}
	return &Pager{
		backend: backend,
		cap:     capPages,
		policy:  policy,
		frames:  make(map[PageID]*frame, capPages),
		lru:     list.New(),
	}
}

// Frame is a pinned page. Callers must Unpin it when done and call
// MarkDirty before Unpin if they modified Data.
type Frame struct {
	p *Pager
	f *frame
}

// ID returns the page ID.
func (fr *Frame) ID() PageID { return fr.f.id }

// Data returns the page content. The slice is valid until Unpin.
func (fr *Frame) Data() []byte { return fr.f.data }

// MarkDirty records that the page content was modified.
func (fr *Frame) MarkDirty() {
	fr.p.mu.Lock()
	fr.f.dirty = true
	fr.p.mu.Unlock()
}

// Unpin releases the frame. After Unpin the Frame must not be used.
func (fr *Frame) Unpin() {
	fr.p.mu.Lock()
	defer fr.p.mu.Unlock()
	f := fr.f
	if f.pins <= 0 {
		panic(fmt.Sprintf("pager: unpin of page %d with pin count %d", f.id, f.pins))
	}
	f.pins--
	if f.pins == 0 {
		switch fr.p.policy {
		case LRU:
			f.elem = fr.p.lru.PushFront(f)
		case Clock:
			f.ref = true
		}
	}
}

// Get pins page id, reading it from the backend on a buffer-pool miss.
func (p *Pager) Get(id PageID) (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	if f, ok := p.frames[id]; ok {
		p.stats.Hits++
		p.touch(f)
		return &Frame{p: p, f: f}, nil
	}
	p.stats.Misses++
	p.stats.Reads++
	f, err := p.newFrame(id)
	if err != nil {
		return nil, err
	}
	if err := p.backend.ReadPage(id, f.data); err != nil {
		delete(p.frames, id)
		return nil, fmt.Errorf("pager: read page %d: %w", id, err)
	}
	return &Frame{p: p, f: f}, nil
}

// Allocate creates a new zeroed page, pinned and marked dirty. No disk
// read is charged (the page is born in the buffer pool).
func (p *Pager) Allocate() (*Frame, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, ErrClosed
	}
	id, err := p.backend.Allocate()
	if err != nil {
		return nil, fmt.Errorf("pager: allocate: %w", err)
	}
	f, err := p.newFrame(id)
	if err != nil {
		return nil, err
	}
	f.dirty = true
	return &Frame{p: p, f: f}, nil
}

// touch pins f, removing it from the LRU list if it was unpinned.
func (p *Pager) touch(f *frame) {
	switch p.policy {
	case LRU:
		if f.pins == 0 && f.elem != nil {
			p.lru.Remove(f.elem)
			f.elem = nil
		}
	case Clock:
		f.ref = true
	}
	f.pins++
}

// newFrame makes room for and registers a pinned frame for page id.
// Caller holds p.mu.
func (p *Pager) newFrame(id PageID) (*frame, error) {
	if err := p.makeRoom(); err != nil {
		return nil, err
	}
	f := &frame{id: id, data: make([]byte, PageSize), pins: 1, slot: -1}
	p.frames[id] = f
	if p.policy == Clock {
		f.slot = len(p.ring)
		p.ring = append(p.ring, f)
	}
	return f, nil
}

// makeRoom evicts one unpinned frame (per policy) when the pool is full.
// Caller holds p.mu.
func (p *Pager) makeRoom() error {
	if len(p.frames) < p.cap {
		return nil
	}
	var victim *frame
	switch p.policy {
	case LRU:
		elem := p.lru.Back()
		if elem == nil {
			return fmt.Errorf("pager: buffer pool exhausted: all %d frames pinned", p.cap)
		}
		victim = elem.Value.(*frame)
		p.lru.Remove(elem)
		victim.elem = nil
	case Clock:
		// Second-chance sweep: clear reference bits until an unpinned,
		// unreferenced frame comes around. Two full sweeps with no victim
		// means everything is pinned.
		for scanned := 0; scanned < 2*len(p.ring); scanned++ {
			f := p.ring[p.hand]
			p.hand = (p.hand + 1) % len(p.ring)
			if f.pins > 0 {
				continue
			}
			if f.ref {
				f.ref = false
				continue
			}
			victim = f
			break
		}
		if victim == nil {
			return fmt.Errorf("pager: buffer pool exhausted: all %d frames pinned", p.cap)
		}
		// Remove from the ring (swap with the last entry).
		last := len(p.ring) - 1
		p.ring[victim.slot] = p.ring[last]
		p.ring[victim.slot].slot = victim.slot
		p.ring = p.ring[:last]
		if p.hand > last {
			p.hand = 0
		} else if p.hand == last+1 {
			p.hand = 0
		}
		if len(p.ring) > 0 {
			p.hand %= len(p.ring)
		} else {
			p.hand = 0
		}
		victim.slot = -1
	}
	if victim.dirty {
		p.stats.Writes++
		if err := p.backend.WritePage(victim.id, victim.data); err != nil {
			return fmt.Errorf("pager: evict page %d: %w", victim.id, err)
		}
	}
	delete(p.frames, victim.id)
	p.stats.Evictions++
	return nil
}

// FlushAll writes every dirty buffered page to the backend (pages stay
// buffered).
func (p *Pager) FlushAll() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	return p.flushAllLocked()
}

func (p *Pager) flushAllLocked() error {
	for id, f := range p.frames {
		if !f.dirty {
			continue
		}
		p.stats.Writes++
		if err := p.backend.WritePage(id, f.data); err != nil {
			return fmt.Errorf("pager: flush page %d: %w", id, err)
		}
		f.dirty = false
	}
	return p.backend.Sync()
}

// DropCache flushes dirty pages and then empties the buffer pool,
// simulating the cold-cache state the paper establishes before each
// measured query ("the database and system buffer is flushed before each
// test"). It fails if any frame is pinned.
func (p *Pager) DropCache() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrClosed
	}
	for _, f := range p.frames {
		if f.pins > 0 {
			return fmt.Errorf("pager: DropCache with page %d pinned", f.id)
		}
	}
	if err := p.flushAllLocked(); err != nil {
		return err
	}
	p.frames = make(map[PageID]*frame, p.cap)
	p.lru.Init()
	p.ring = p.ring[:0]
	p.hand = 0
	return nil
}

// Stats returns a snapshot of the counters.
func (p *Pager) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the counters (typically right after DropCache, before
// a measured query).
func (p *Pager) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// NumPages reports the number of allocated pages in the backend.
func (p *Pager) NumPages() PageID {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.backend.NumPages()
}

// Close flushes and closes the pager and its backend.
func (p *Pager) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	if err := p.flushAllLocked(); err != nil {
		return err
	}
	p.closed = true
	return p.backend.Close()
}
