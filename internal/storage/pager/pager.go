// Package pager implements the page-based storage layer that every disk-
// resident structure in this repository (heap files, B+-trees, R*-trees,
// quadtrees, the HDoV tree) is built on.
//
// The paper measures query cost as the number of disk accesses reported by
// Oracle's performance statistics, with the database buffer flushed before
// each test. This package reproduces that methodology exactly: all
// structures read and write fixed-size pages through a buffer pool, a
// buffer-pool miss is one disk access, and DropCache simulates the paper's
// buffer flush. Absolute numbers therefore carry the same meaning as the
// paper's y axes.
//
// The buffer pool is split into independently locked shards (page ID
// hashed to shard, each shard with its own replacement state and capacity
// slice) so concurrent queries scale across cores. New and NewWithPolicy
// create a single shard, which preserves the exact replacement behavior —
// and therefore the exact disk-access counts — of a monolithic pool; the
// experiment harness relies on that. NewSharded opts into P shards for
// serving workloads. Statistics are atomic counters, and a Session can be
// attached (WithSession) to additionally attribute accesses to one query
// while other queries run.
package pager

import (
	"container/list"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// PageSize is the size of every page in bytes (a common DBMS block size;
// Oracle's default in the 9i era was 4 KiB or 8 KiB).
const PageSize = 4096

// PageID identifies a page within one backend.
type PageID uint32

// ErrClosed is returned by operations on a closed pager or backend.
var ErrClosed = errors.New("pager: closed")

// Backend is the raw page store underneath a Pager.
type Backend interface {
	// ReadPage fills buf (len PageSize) with the content of page id.
	ReadPage(id PageID, buf []byte) error
	// WritePage stores buf (len PageSize) as the content of page id.
	WritePage(id PageID, buf []byte) error
	// Allocate extends the store by one zeroed page and returns its ID.
	Allocate() (PageID, error)
	// NumPages returns the number of allocated pages.
	NumPages() PageID
	// Sync durably flushes backend state.
	Sync() error
	// Close releases backend resources.
	Close() error
}

// Stats counts pager activity. Reads is the paper's "number of disk
// accesses" metric: buffer-pool misses served by the backend.
type Stats struct {
	Reads       uint64 // pages read from the backend (disk accesses)
	Writes      uint64 // pages written to the backend
	Hits        uint64 // buffer-pool hits
	Misses      uint64 // buffer-pool misses (== Reads)
	Evictions   uint64 // frames evicted to make room
	UnpinErrors uint64 // redundant Unpin calls absorbed (see Frame.Unpin)
}

// counters is the atomic backing store for Stats.
type counters struct {
	reads       atomic.Uint64
	writes      atomic.Uint64
	hits        atomic.Uint64
	misses      atomic.Uint64
	evictions   atomic.Uint64
	unpinErrors atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Reads:       c.reads.Load(),
		Writes:      c.writes.Load(),
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Evictions:   c.evictions.Load(),
		UnpinErrors: c.unpinErrors.Load(),
	}
}

func (c *counters) reset() {
	c.reads.Store(0)
	c.writes.Store(0)
	c.hits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	c.unpinErrors.Store(0)
}

// Session attributes page accesses to one logical query (or request) while
// other queries run against the same pool. Attach it to a pager view with
// WithSession; every access through that view updates both the pool's
// global counters and the session's. A miss is charged to exactly one
// session (the one whose access performed the backend read), so concurrent
// sessions' Reads sum to the pool's Reads.
type Session struct {
	c counters
}

// NewSession returns a zeroed attribution handle.
func NewSession() *Session { return &Session{} }

// Stats returns a snapshot of the session's counters.
func (s *Session) Stats() Stats { return s.c.snapshot() }

// Reads returns the disk accesses attributed to this session — the paper's
// cost metric, scoped to one query.
func (s *Session) Reads() uint64 { return s.c.reads.Load() }

// Reset zeroes the session's counters.
func (s *Session) Reset() { s.c.reset() }

// Policy selects the buffer pool's replacement policy.
type Policy int

const (
	// LRU evicts the least recently used unpinned page (the default).
	LRU Policy = iota
	// Clock approximates LRU with a second-chance ring — constant-time
	// bookkeeping per access, the policy most real buffer managers use.
	Clock
)

// frame is one buffered page.
type frame struct {
	id    PageID
	data  []byte
	dirty bool
	pins  int
	elem  *list.Element // position in the LRU list; nil while pinned
	ref   bool          // Clock: second-chance bit
	slot  int           // Clock: position in the ring (-1 when absent)
}

// shard is one independently locked slice of the buffer pool with its own
// replacement state and capacity.
type shard struct {
	pl     *pool
	mu     sync.Mutex
	cap    int
	frames map[PageID]*frame
	lru    *list.List // LRU: front = most recently used; unpinned frames only
	ring   []*frame   // Clock: all frames in arrival order
	hand   int        // Clock: sweep position
}

// pool is the shared state behind one or more Pager views.
type pool struct {
	backend Backend
	policy  Policy
	shards  []*shard
	allocMu sync.Mutex // serializes backend allocation
	stats   counters
	closed  atomic.Bool
}

// Pager is a buffer pool over a Backend. It is safe for concurrent use.
// Frames handed out by Get/Allocate are pinned and will not be evicted
// until unpinned. A Pager value is a view: WithSession derives further
// views over the same pool that attribute accesses to a Session.
type Pager struct {
	pl   *pool
	sess *Session
}

// New creates an LRU pager over backend with capacity for capPages
// buffered pages (minimum 4) in a single shard.
func New(backend Backend, capPages int) *Pager {
	return NewSharded(backend, capPages, 1, LRU)
}

// NewWithPolicy creates a single-shard pager with an explicit replacement
// policy.
func NewWithPolicy(backend Backend, capPages int, policy Policy) *Pager {
	return NewSharded(backend, capPages, 1, policy)
}

// NewSharded creates a pager whose buffer pool is split into shards
// independently locked shards; page IDs hash to shards, and each shard
// runs the replacement policy over its own slice of the capacity. One
// shard reproduces the monolithic pool exactly (same evictions, same
// disk-access counts); more shards let concurrent queries proceed in
// parallel. The shard count is capped so every shard holds at least 4
// pages.
func NewSharded(backend Backend, capPages, shards int, policy Policy) *Pager {
	if capPages < 4 {
		capPages = 4
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capPages/4 {
		shards = capPages / 4
		if shards < 1 {
			shards = 1
		}
	}
	pl := &pool{backend: backend, policy: policy, shards: make([]*shard, shards)}
	base, extra := capPages/shards, capPages%shards
	for i := range pl.shards {
		c := base
		if i < extra {
			c++
		}
		pl.shards[i] = &shard{
			pl:     pl,
			cap:    c,
			frames: make(map[PageID]*frame, c),
			lru:    list.New(),
		}
	}
	return &Pager{pl: pl}
}

// WithSession returns a view of the same pager that additionally
// attributes page accesses to s. Views share the buffer pool, frames and
// global statistics; only the attribution differs. Any number of views may
// be used concurrently.
func (p *Pager) WithSession(s *Session) *Pager {
	return &Pager{pl: p.pl, sess: s}
}

// Shards returns the number of buffer-pool shards.
func (p *Pager) Shards() int { return len(p.pl.shards) }

// shardOf maps a page ID to its shard (Fibonacci hashing; any fixed
// deterministic map works, the requirement is an even spread).
func (pl *pool) shardOf(id PageID) *shard {
	if len(pl.shards) == 1 {
		return pl.shards[0]
	}
	h := (uint64(id) + 1) * 0x9E3779B97F4A7C15
	return pl.shards[(h>>32)%uint64(len(pl.shards))]
}

// Frame is a pinned page. Callers must Unpin it when done and call
// MarkDirty before Unpin if they modified Data.
type Frame struct {
	sh       *shard
	f        *frame
	released bool // set by Unpin; guarded by sh.mu
}

// ID returns the page ID.
func (fr *Frame) ID() PageID { return fr.f.id }

// Data returns the page content. The slice is valid until Unpin.
func (fr *Frame) Data() []byte { return fr.f.data }

// MarkDirty records that the page content was modified. It is a no-op on
// a released handle.
func (fr *Frame) MarkDirty() {
	fr.sh.mu.Lock()
	if !fr.released {
		fr.f.dirty = true
	}
	fr.sh.mu.Unlock()
}

// Unpin releases the frame. After Unpin the Frame must not be used.
//
// Unpin is idempotent per Frame handle: a second call on the same handle
// — the pattern a caller unwinding through `defer fr.Unpin()` after an
// explicit release on a mid-query error path produces — is absorbed and
// counted in Stats.UnpinErrors rather than corrupting the pin count or
// panicking. A serving process must survive I/O-error unwinding.
func (fr *Frame) Unpin() {
	sh := fr.sh
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f := fr.f
	if fr.released || f.pins <= 0 {
		fr.released = true
		sh.pl.stats.unpinErrors.Add(1)
		return
	}
	fr.released = true
	f.pins--
	if f.pins == 0 {
		switch sh.pl.policy {
		case LRU:
			f.elem = sh.lru.PushFront(f)
		case Clock:
			f.ref = true
		}
	}
}

// Get pins page id, reading it from the backend on a buffer-pool miss.
func (p *Pager) Get(id PageID) (*Frame, error) {
	pl := p.pl
	if pl.closed.Load() {
		return nil, ErrClosed
	}
	sh := pl.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if f, ok := sh.frames[id]; ok {
		pl.stats.hits.Add(1)
		if p.sess != nil {
			p.sess.c.hits.Add(1)
		}
		sh.touch(f)
		return &Frame{sh: sh, f: f}, nil
	}
	pl.stats.misses.Add(1)
	pl.stats.reads.Add(1)
	if p.sess != nil {
		p.sess.c.misses.Add(1)
		p.sess.c.reads.Add(1)
	}
	f, err := sh.newFrame(id, p.sess)
	if err != nil {
		return nil, err
	}
	if err := pl.backend.ReadPage(id, f.data); err != nil {
		sh.dropFrame(f)
		return nil, fmt.Errorf("pager: read page %d: %w", id, err)
	}
	return &Frame{sh: sh, f: f}, nil
}

// Allocate creates a new zeroed page, pinned and marked dirty. No disk
// read is charged (the page is born in the buffer pool).
func (p *Pager) Allocate() (*Frame, error) {
	pl := p.pl
	if pl.closed.Load() {
		return nil, ErrClosed
	}
	pl.allocMu.Lock()
	id, err := pl.backend.Allocate()
	pl.allocMu.Unlock()
	if err != nil {
		return nil, fmt.Errorf("pager: allocate: %w", err)
	}
	sh := pl.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	f, err := sh.newFrame(id, p.sess)
	if err != nil {
		return nil, err
	}
	f.dirty = true
	return &Frame{sh: sh, f: f}, nil
}

// touch pins f, removing it from the LRU list if it was unpinned.
// Caller holds sh.mu.
func (sh *shard) touch(f *frame) {
	switch sh.pl.policy {
	case LRU:
		if f.pins == 0 && f.elem != nil {
			sh.lru.Remove(f.elem)
			f.elem = nil
		}
	case Clock:
		f.ref = true
	}
	f.pins++
}

// newFrame makes room for and registers a pinned frame for page id.
// Caller holds sh.mu.
func (sh *shard) newFrame(id PageID, sess *Session) (*frame, error) {
	if err := sh.makeRoom(sess); err != nil {
		return nil, err
	}
	f := &frame{id: id, data: make([]byte, PageSize), pins: 1, slot: -1}
	sh.frames[id] = f
	if sh.pl.policy == Clock {
		f.slot = len(sh.ring)
		sh.ring = append(sh.ring, f)
	}
	return f, nil
}

// dropFrame unregisters a just-created pinned frame after a failed backend
// read — including its Clock ring slot, which would otherwise linger as a
// permanently pinned ghost entry every future sweep must step over.
// Caller holds sh.mu.
func (sh *shard) dropFrame(f *frame) {
	delete(sh.frames, f.id)
	if sh.pl.policy == Clock && f.slot >= 0 {
		sh.removeFromRing(f)
	}
}

// removeFromRing takes f out of the Clock ring (swap with the last entry)
// and renormalizes the sweep hand. Caller holds sh.mu.
func (sh *shard) removeFromRing(f *frame) {
	last := len(sh.ring) - 1
	sh.ring[f.slot] = sh.ring[last]
	sh.ring[f.slot].slot = f.slot
	sh.ring = sh.ring[:last]
	if len(sh.ring) > 0 {
		sh.hand %= len(sh.ring)
	} else {
		sh.hand = 0
	}
	f.slot = -1
}

// makeRoom evicts one unpinned frame (per policy) when the shard is full.
// Caller holds sh.mu.
func (sh *shard) makeRoom(sess *Session) error {
	if len(sh.frames) < sh.cap {
		return nil
	}
	var victim *frame
	switch sh.pl.policy {
	case LRU:
		elem := sh.lru.Back()
		if elem == nil {
			return fmt.Errorf("pager: buffer pool exhausted: all %d frames pinned", sh.cap)
		}
		victim = elem.Value.(*frame)
		sh.lru.Remove(elem)
		victim.elem = nil
	case Clock:
		// Second-chance sweep: clear reference bits until an unpinned,
		// unreferenced frame comes around. Two full sweeps with no victim
		// means everything is pinned.
		for scanned := 0; scanned < 2*len(sh.ring); scanned++ {
			f := sh.ring[sh.hand]
			sh.hand = (sh.hand + 1) % len(sh.ring)
			if f.pins > 0 {
				continue
			}
			if f.ref {
				f.ref = false
				continue
			}
			victim = f
			break
		}
		if victim == nil {
			return fmt.Errorf("pager: buffer pool exhausted: all %d frames pinned", sh.cap)
		}
		sh.removeFromRing(victim)
	}
	if victim.dirty {
		sh.pl.stats.writes.Add(1)
		if sess != nil {
			sess.c.writes.Add(1)
		}
		if err := sh.pl.backend.WritePage(victim.id, victim.data); err != nil {
			// The victim was already taken out of the replacement
			// structure; put it back or it would sit in the frames map
			// forever — resident and re-Gettable but never evictable, a
			// one-frame capacity leak per failed eviction write.
			switch sh.pl.policy {
			case LRU:
				victim.elem = sh.lru.PushBack(victim)
			case Clock:
				victim.slot = len(sh.ring)
				sh.ring = append(sh.ring, victim)
			}
			return fmt.Errorf("pager: evict page %d: %w", victim.id, err)
		}
	}
	delete(sh.frames, victim.id)
	sh.pl.stats.evictions.Add(1)
	if sess != nil {
		sess.c.evictions.Add(1)
	}
	return nil
}

// lockAll acquires every shard lock in shard order (the fixed order makes
// whole-pool operations deadlock-free against each other).
func (pl *pool) lockAll() {
	for _, sh := range pl.shards {
		sh.mu.Lock()
	}
}

func (pl *pool) unlockAll() {
	for _, sh := range pl.shards {
		sh.mu.Unlock()
	}
}

// FlushAll writes every dirty buffered page to the backend (pages stay
// buffered).
func (p *Pager) FlushAll() error {
	pl := p.pl
	if pl.closed.Load() {
		return ErrClosed
	}
	pl.lockAll()
	defer pl.unlockAll()
	return pl.flushAllLocked()
}

// flushAllLocked flushes every shard. Caller holds all shard locks.
func (pl *pool) flushAllLocked() error {
	for _, sh := range pl.shards {
		for id, f := range sh.frames {
			if !f.dirty {
				continue
			}
			pl.stats.writes.Add(1)
			if err := pl.backend.WritePage(id, f.data); err != nil {
				return fmt.Errorf("pager: flush page %d: %w", id, err)
			}
			f.dirty = false
		}
	}
	return pl.backend.Sync()
}

// DropCache flushes dirty pages and then empties the buffer pool,
// simulating the cold-cache state the paper establishes before each
// measured query ("the database and system buffer is flushed before each
// test"). It fails if any frame is pinned; concurrent Get/Unpin callers
// simply serialize against it.
func (p *Pager) DropCache() error {
	pl := p.pl
	if pl.closed.Load() {
		return ErrClosed
	}
	pl.lockAll()
	defer pl.unlockAll()
	for _, sh := range pl.shards {
		for _, f := range sh.frames {
			if f.pins > 0 {
				return fmt.Errorf("pager: DropCache with page %d pinned", f.id)
			}
		}
	}
	if err := pl.flushAllLocked(); err != nil {
		return err
	}
	for _, sh := range pl.shards {
		sh.frames = make(map[PageID]*frame, sh.cap)
		sh.lru.Init()
		sh.ring = sh.ring[:0]
		sh.hand = 0
	}
	return nil
}

// Stats returns a snapshot of the pool-wide counters. Under concurrency
// the fields are individually, not mutually, consistent.
func (p *Pager) Stats() Stats { return p.pl.stats.snapshot() }

// ResetStats zeroes the pool-wide counters (typically right after
// DropCache, before a measured query). Attached Sessions are unaffected.
func (p *Pager) ResetStats() { p.pl.stats.reset() }

// NumPages reports the number of allocated pages in the backend.
func (p *Pager) NumPages() PageID {
	return p.pl.backend.NumPages()
}

// Close flushes and closes the pager and its backend. All views share the
// closed state.
func (p *Pager) Close() error {
	pl := p.pl
	if pl.closed.Load() {
		return nil
	}
	pl.lockAll()
	defer pl.unlockAll()
	if pl.closed.Load() {
		return nil
	}
	if err := pl.flushAllLocked(); err != nil {
		return err
	}
	pl.closed.Store(true)
	return pl.backend.Close()
}
