package pager

import (
	"errors"
	"math/rand"
	"path/filepath"
	"testing"
)

// fill writes a deterministic page image for (id, gen) into buf.
func fillPage(buf []byte, id PageID, gen int) {
	r := rand.New(rand.NewSource(int64(id)*1000003 + int64(gen)))
	for i := range buf {
		buf[i] = byte(r.Intn(256))
	}
}

func newChecksummed(t *testing.T) *ChecksumBackend {
	t.Helper()
	b, err := Checksummed(NewMemBackend())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestChecksumRoundTrip(t *testing.T) {
	b := newChecksummed(t)
	const n = 40
	buf := make([]byte, PageSize)
	for i := 0; i < n; i++ {
		id, err := b.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		if id != PageID(i) {
			t.Fatalf("allocated page %d, want %d", id, i)
		}
		fillPage(buf, id, 0)
		if err := b.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	want := make([]byte, PageSize)
	for i := 0; i < n; i++ {
		if err := b.ReadPage(PageID(i), buf); err != nil {
			t.Fatal(err)
		}
		fillPage(want, PageID(i), 0)
		for j := range buf {
			if buf[j] != want[j] {
				t.Fatalf("page %d byte %d mismatch", i, j)
			}
		}
	}
	if err := b.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

// A fresh allocation must verify before its first write (zero page stamped
// at allocation time).
func TestChecksumFreshPageVerifies(t *testing.T) {
	b := newChecksummed(t)
	id, err := b.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := b.ReadPage(id, buf); err != nil {
		t.Fatalf("read of never-written page: %v", err)
	}
	for i, c := range buf {
		if c != 0 {
			t.Fatalf("fresh page byte %d = %d, want 0", i, c)
		}
	}
}

// Corruption injected into the inner backend (disk rot below the wrapper)
// must surface as ErrChecksum, and healthy pages must stay readable.
func TestChecksumDetectsRot(t *testing.T) {
	inner := NewMemBackend()
	b, err := Checksummed(inner)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for i := 0; i < 5; i++ {
		id, err := b.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fillPage(buf, id, 0)
		if err := b.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	// Flip one bit of logical page 3's physical image, behind the wrapper's
	// back.
	data, _, _ := physical(3)
	if err := inner.ReadPage(data, buf); err != nil {
		t.Fatal(err)
	}
	buf[17] ^= 0x20
	if err := inner.WritePage(data, buf); err != nil {
		t.Fatal(err)
	}
	if err := b.ReadPage(3, buf); !errors.Is(err, ErrChecksum) {
		t.Fatalf("read of rotted page = %v, want ErrChecksum", err)
	}
	if err := b.ReadPage(2, buf); err != nil {
		t.Fatalf("healthy page unreadable: %v", err)
	}
	if err := b.VerifyAll(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("VerifyAll = %v, want ErrChecksum", err)
	}
	// Rewriting the page re-stamps it: the store heals.
	fillPage(buf, 3, 1)
	if err := b.WritePage(3, buf); err != nil {
		t.Fatal(err)
	}
	if err := b.VerifyAll(); err != nil {
		t.Fatalf("VerifyAll after rewrite: %v", err)
	}
}

// A torn write — data page updated, checksum page not — is detected at the
// next open (VerifyAll), modeling a crash between the two writes.
func TestChecksumDetectsTornWriteAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages")
	f, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Checksummed(f)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	for i := 0; i < 4; i++ {
		id, err := b.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fillPage(buf, id, 0)
		if err := b.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean reopen verifies.
	f, err = OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err = Checksummed(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.VerifyAll(); err != nil {
		t.Fatalf("VerifyAll on clean reopen: %v", err)
	}
	if got := b.NumPages(); got != 4 {
		t.Fatalf("NumPages after reopen = %d, want 4", got)
	}
	// Tear: update logical page 1's data directly in the file, leaving the
	// stored checksum stale.
	data, _, _ := physical(1)
	fillPage(buf, 1, 99)
	if err := f.WritePage(data, buf); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	f, err = OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err = Checksummed(f)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.VerifyAll(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("VerifyAll after torn write = %v, want ErrChecksum", err)
	}
}

// Crossing checksum-group boundaries: allocate well past one group
// (sumsPerPage pages) and verify the physical interleaving stays aligned.
func TestChecksumGroupBoundaries(t *testing.T) {
	b := newChecksummed(t)
	const n = sumsPerPage*2 + 7 // three groups
	buf := make([]byte, PageSize)
	for i := 0; i < n; i++ {
		id, err := b.Allocate()
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		fillPage(buf, id, 0)
		if err := b.WritePage(id, buf); err != nil {
			t.Fatal(err)
		}
	}
	wantPhys := PageID(n) + 3 // three checksum pages interleaved
	if got := b.inner.NumPages(); got != wantPhys {
		t.Fatalf("inner pages = %d, want %d", got, wantPhys)
	}
	// Spot-check pages straddling the group boundaries.
	for _, id := range []PageID{0, sumsPerPage - 1, sumsPerPage, 2*sumsPerPage - 1, 2 * sumsPerPage, n - 1} {
		if err := b.ReadPage(id, buf); err != nil {
			t.Fatalf("read %d: %v", id, err)
		}
		want := make([]byte, PageSize)
		fillPage(want, id, 0)
		for j := range buf {
			if buf[j] != want[j] {
				t.Fatalf("page %d byte %d mismatch", id, j)
			}
		}
	}
	if err := b.VerifyAll(); err != nil {
		t.Fatal(err)
	}
}

func TestChecksummedRejectsForeignLayout(t *testing.T) {
	inner := NewMemBackend()
	// 2 pages cannot be a group layout (1 checksum page + 1 data page would
	// be phys=2 only for logical=1... which is valid; use an invalid count).
	// Valid physical counts are 0, 2, 3, ..., 513, 515, ... — a lone page
	// (just a checksum page, no data) is invalid.
	if _, err := inner.Allocate(); err != nil {
		t.Fatal(err)
	}
	if _, err := Checksummed(inner); err == nil {
		t.Fatal("Checksummed accepted a 1-page inner backend")
	}
}

// The wrapper must not change the paper's metric: an identical operation
// sequence through a Pager yields byte-identical Stats with and without
// checksums underneath.
func TestChecksumPreservesDiskAccessCounts(t *testing.T) {
	run := func(backend Backend) Stats {
		p := New(backend, 8) // small pool to force evictions
		const n = 64
		for i := 0; i < n; i++ {
			fr, err := p.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			fillPage(fr.Data(), fr.ID(), 0)
			fr.MarkDirty()
			fr.Unpin()
		}
		if err := p.DropCache(); err != nil {
			t.Fatal(err)
		}
		p.ResetStats()
		r := rand.New(rand.NewSource(7))
		for i := 0; i < 500; i++ {
			id := PageID(r.Intn(n))
			fr, err := p.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			if i%5 == 0 {
				fillPage(fr.Data(), id, i)
				fr.MarkDirty()
			}
			fr.Unpin()
		}
		st := p.Stats()
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
		return st
	}

	plain := run(NewMemBackend())
	sums := run(newChecksummed(t))
	if plain != sums {
		t.Fatalf("stats diverge:\nplain     %+v\nchecksums %+v", plain, sums)
	}
	if plain.Reads == 0 || plain.Evictions == 0 {
		t.Fatalf("workload too small to be meaningful: %+v", plain)
	}
}

func TestChecksumOutOfRange(t *testing.T) {
	b := newChecksummed(t)
	if _, err := b.Allocate(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)
	if err := b.ReadPage(5, buf); err == nil {
		t.Fatal("read past end succeeded")
	}
	if err := b.WritePage(5, buf); err == nil {
		t.Fatal("write past end succeeded")
	}
}

// Ensure physical() is a bijection from logical pages onto non-checksum
// physical pages, in order.
func TestChecksumPhysicalMapping(t *testing.T) {
	seen := make(map[PageID]bool)
	next := PageID(0)
	for id := PageID(0); id < 3*sumsPerPage; id++ {
		data, sumPage, off := physical(id)
		if uint64(sumPage)%groupPages != 0 {
			t.Fatalf("page %d: checksum page %d not group-aligned", id, sumPage)
		}
		if off < 0 || off+sumBytes > PageSize {
			t.Fatalf("page %d: trailer offset %d out of page", id, off)
		}
		if data%groupPages == 0 {
			t.Fatalf("page %d: data page %d collides with a checksum page", id, data)
		}
		if seen[data] {
			t.Fatalf("page %d: data page %d reused", id, data)
		}
		seen[data] = true
		// Data pages fill the physical space densely in logical order,
		// skipping exactly the checksum pages.
		if next%groupPages == 0 {
			next++ // the slot `next` holds a checksum page
		}
		if data != next {
			t.Fatalf("page %d: data page %d, want %d (dense layout)", id, data, next)
		}
		next++
	}
}
