package pager_test

import (
	"errors"
	"testing"

	"dmesh/internal/storage/faultfs"
	"dmesh/internal/storage/pager"
)

// always is a schedule that fires on every access.
func always() faultfs.Schedule { return faultfs.Schedule{Every: 1} }

func TestReadFaultPropagates(t *testing.T) {
	fb := faultfs.Wrap(pager.NewMemBackend())
	p := pager.New(fb, 8)
	fr, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id := fr.ID()
	fr.MarkDirty()
	fr.Unpin()
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}

	fb.SetSchedule(faultfs.Read, always())
	if _, err := p.Get(id); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Get error = %v, want injected fault", err)
	}
	// The failed frame must not linger: recovery works once reads heal.
	fb.Heal()
	fr, err = p.Get(id)
	if err != nil {
		t.Fatalf("Get after fault cleared: %v", err)
	}
	fr.Unpin()
}

func TestEvictionWriteFaultPropagates(t *testing.T) {
	fb := faultfs.Wrap(pager.NewMemBackend())
	p := pager.New(fb, 4)
	// Fill the pool with dirty pages.
	for i := 0; i < 4; i++ {
		fr, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fr.MarkDirty()
		fr.Unpin()
	}
	fb.SetSchedule(faultfs.Write, always())
	// The next allocation must evict a dirty page and fail loudly, not
	// silently drop data.
	if _, err := p.Allocate(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Allocate during failed eviction = %v, want injected fault", err)
	}
}

// A failed eviction write must leave the victim evictable: before the
// fix the victim was removed from the replacement structure but kept in
// the frame map, so each failed eviction leaked one frame of capacity
// until the pool reported "all frames pinned" with nothing pinned.
func TestEvictionWriteFaultDoesNotLeakCapacity(t *testing.T) {
	for _, policy := range []pager.Policy{pager.LRU, pager.Clock} {
		fb := faultfs.Wrap(pager.NewMemBackend())
		p := pager.NewWithPolicy(fb, 4, policy)
		for i := 0; i < 4; i++ {
			fr, err := p.Allocate()
			if err != nil {
				t.Fatal(err)
			}
			fr.MarkDirty()
			fr.Unpin()
		}
		fb.SetSchedule(faultfs.Write, always())
		// More failed attempts than the pool has frames: every one must
		// report the injected write fault, not pool exhaustion.
		for i := 0; i < 6; i++ {
			if _, err := p.Allocate(); !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("policy %v attempt %d: Allocate = %v, want injected fault", policy, i, err)
			}
		}
		// Once writes heal, the pool cycles normally again.
		fb.Heal()
		for i := 0; i < 4; i++ {
			fr, err := p.Allocate()
			if err != nil {
				t.Fatalf("policy %v: Allocate after healing: %v", policy, err)
			}
			fr.MarkDirty()
			fr.Unpin()
		}
		if err := p.Close(); err != nil {
			t.Fatalf("policy %v: Close: %v", policy, err)
		}
	}
}

func TestAllocateFaultPropagates(t *testing.T) {
	fb := faultfs.Wrap(pager.NewMemBackend())
	fb.SetSchedule(faultfs.Alloc, always())
	p := pager.New(fb, 8)
	if _, err := p.Allocate(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("Allocate = %v, want injected fault", err)
	}
}

func TestFlushFaultPropagates(t *testing.T) {
	fb := faultfs.Wrap(pager.NewMemBackend())
	p := pager.New(fb, 8)
	fr, _ := p.Allocate()
	fr.MarkDirty()
	fr.Unpin()
	fb.SetSchedule(faultfs.Write, always())
	if err := p.FlushAll(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("FlushAll = %v, want injected fault", err)
	}
	if err := p.DropCache(); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("DropCache = %v, want injected fault", err)
	}
	// Healing the backend lets the flush complete.
	fb.Heal()
	if err := p.FlushAll(); err != nil {
		t.Fatalf("FlushAll after healing: %v", err)
	}
}

// Unpin must absorb the double release an error-unwinding caller
// produces (explicit Unpin plus a deferred one) instead of panicking or
// corrupting the pin count.
func TestUnpinIsIdempotentPerHandle(t *testing.T) {
	p := pager.New(pager.NewMemBackend(), 8)
	fr, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id := fr.ID()
	fr.MarkDirty()
	fr.Unpin()
	fr.Unpin() // the deferred duplicate — must not panic
	if got := p.Stats().UnpinErrors; got != 1 {
		t.Fatalf("UnpinErrors = %d, want 1", got)
	}

	// The duplicate must not have gone below zero: a fresh pin still
	// protects the page from DropCache.
	fr2, err := p.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.DropCache(); err == nil {
		t.Fatal("DropCache succeeded with a pinned page — duplicate Unpin corrupted the pin count")
	}
	fr2.Unpin()
	if err := p.DropCache(); err != nil {
		t.Fatalf("DropCache after release: %v", err)
	}
}

// A checksummed backend over a fault injector: injected bit rot below
// the checksum layer surfaces as ErrChecksum through the pager, and the
// pool recovers once the rot stops.
func TestChecksumOverFaultfs(t *testing.T) {
	inner := faultfs.Wrap(pager.NewMemBackend())
	cb, err := pager.Checksummed(inner)
	if err != nil {
		t.Fatal(err)
	}
	p := pager.New(cb, 8)
	fr, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id := fr.ID()
	copy(fr.Data(), "payload")
	fr.MarkDirty()
	fr.Unpin()
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}

	// Corrupt every read: the pager's Get must report a checksum failure,
	// never hand out a silently wrong page.
	inner.SetCorrupt(faultfs.Schedule{Every: 1, Seed: 3})
	if _, err := p.Get(id); !errors.Is(err, pager.ErrChecksum) {
		t.Fatalf("Get of rotted page = %v, want ErrChecksum", err)
	}
	inner.Heal()
	fr, err = p.Get(id)
	if err != nil {
		t.Fatalf("Get after rot stopped: %v", err)
	}
	if string(fr.Data()[:7]) != "payload" {
		t.Fatal("page content corrupted")
	}
	fr.Unpin()
}
