package pager

import (
	"strings"
	"sync"
	"testing"
)

// prepPages allocates n pages, writes a marker byte into each, and leaves
// the pool cold.
func prepPages(t *testing.T, p *Pager, n int) []PageID {
	t.Helper()
	ids := make([]PageID, 0, n)
	for i := 0; i < n; i++ {
		fr, err := p.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		fr.Data()[0] = byte(i)
		fr.MarkDirty()
		ids = append(ids, fr.ID())
		fr.Unpin()
	}
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	return ids
}

// TestShardedStatsConsistency hammers a sharded pool from many goroutines
// and checks the atomic counters add up: every Get is exactly one hit or
// one miss, and reads equal misses.
func TestShardedStatsConsistency(t *testing.T) {
	p := NewSharded(NewMemBackend(), 256, 8, LRU)
	defer p.Close()
	ids := prepPages(t, p, 64)

	const goroutines, iters = 8, 500
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				id := ids[(g*13+i)%len(ids)]
				fr, err := p.Get(id)
				if err != nil {
					errs <- err
					return
				}
				_ = fr.Data()[0]
				fr.Unpin()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := p.Stats()
	if got := s.Hits + s.Misses; got != goroutines*iters {
		t.Fatalf("hits+misses = %d, want %d", got, goroutines*iters)
	}
	if s.Reads != s.Misses {
		t.Fatalf("reads %d != misses %d", s.Reads, s.Misses)
	}
	// The pool is large enough that each page is read from the backend at
	// most once (single-flight under the shard lock).
	if s.Reads != uint64(len(ids)) {
		t.Fatalf("reads = %d, want %d (one compulsory miss per page)", s.Reads, len(ids))
	}
}

// TestSessionAttribution runs two sessions over disjoint page sets and
// checks each session sees exactly its own disk accesses while the global
// counters see the sum.
func TestSessionAttribution(t *testing.T) {
	p := NewSharded(NewMemBackend(), 256, 4, LRU)
	defer p.Close()
	ids := prepPages(t, p, 40)

	sa, sb := NewSession(), NewSession()
	va, vb := p.WithSession(sa), p.WithSession(sb)
	var wg sync.WaitGroup
	run := func(v *Pager, pages []PageID) {
		defer wg.Done()
		for _, id := range pages {
			fr, err := v.Get(id)
			if err != nil {
				t.Error(err)
				return
			}
			fr.Unpin()
		}
	}
	wg.Add(2)
	go run(va, ids[:25])
	go run(vb, ids[25:])
	wg.Wait()

	if got := sa.Reads(); got != 25 {
		t.Errorf("session A reads = %d, want 25", got)
	}
	if got := sb.Reads(); got != 15 {
		t.Errorf("session B reads = %d, want 15", got)
	}
	if got := p.Stats().Reads; got != sa.Reads()+sb.Reads() {
		t.Errorf("global reads %d != session sum %d", got, sa.Reads()+sb.Reads())
	}
	// Warm re-access through a session counts hits, not reads.
	fr, err := va.Get(ids[0])
	if err != nil {
		t.Fatal(err)
	}
	fr.Unpin()
	if s := sa.Stats(); s.Reads != 25 || s.Hits != 1 {
		t.Errorf("after warm re-access: %+v", s)
	}
}

// TestDropCacheInterleavesWithGets interleaves Get/Unpin traffic with
// repeated DropCache calls: DropCache either succeeds or reports a pinned
// page; it must never race or corrupt the pool (run under -race).
func TestDropCacheInterleavesWithGets(t *testing.T) {
	p := NewSharded(NewMemBackend(), 128, 4, LRU)
	defer p.Close()
	ids := prepPages(t, p, 32)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				fr, err := p.Get(ids[(g+i)%len(ids)])
				if err != nil {
					t.Errorf("Get: %v", err)
					return
				}
				if want := byte((g + i) % len(ids)); fr.Data()[0] != want {
					t.Errorf("page content %d, want %d", fr.Data()[0], want)
					fr.Unpin()
					return
				}
				fr.Unpin()
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		if err := p.DropCache(); err != nil && !strings.Contains(err.Error(), "pinned") {
			t.Errorf("DropCache: %v", err)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestShardedColdReadsMatchSingleShard verifies the DA-determinism
// invariant behind the figure runners: with a pool large enough to avoid
// evictions, a cold access sequence costs exactly the same disk accesses
// no matter how many shards the pool is split into.
func TestShardedColdReadsMatchSingleShard(t *testing.T) {
	counts := make(map[int]uint64)
	for _, shards := range []int{1, 4, 16} {
		p := NewSharded(NewMemBackend(), 1024, shards, LRU)
		ids := prepPages(t, p, 100)
		// A fixed access pattern with repeats.
		for i := 0; i < 300; i++ {
			fr, err := p.Get(ids[(i*7)%len(ids)])
			if err != nil {
				t.Fatal(err)
			}
			fr.Unpin()
		}
		counts[shards] = p.Stats().Reads
		p.Close()
	}
	if counts[4] != counts[1] || counts[16] != counts[1] {
		t.Fatalf("cold reads differ across shard counts: %v", counts)
	}
}

// TestShardCapacityDistribution checks the capacity splits and the
// shard-count clamp (every shard holds at least 4 pages).
func TestShardCapacityDistribution(t *testing.T) {
	p := NewSharded(NewMemBackend(), 10, 3, LRU)
	defer p.Close()
	if got := p.Shards(); got != 2 {
		t.Fatalf("shards = %d, want clamp to 2", got)
	}
	var total int
	for _, sh := range p.pl.shards {
		if sh.cap < 4 {
			t.Fatalf("shard capacity %d below minimum", sh.cap)
		}
		total += sh.cap
	}
	if total != 10 {
		t.Fatalf("capacities sum to %d, want 10", total)
	}
}
