package pager

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestStatsSnapshotUnderConcurrentMutation hammers a sharded pool from
// several goroutines while a reader snapshots Stats continuously,
// asserting every counter is monotone across snapshots (no torn or
// negative values — a decrement would show up as a huge uint64 jump
// backwards) and that the final snapshot balances: hits + misses equals
// the accesses issued, misses equals reads.
func TestStatsSnapshotUnderConcurrentMutation(t *testing.T) {
	const (
		pages    = 256
		capPages = 32 // far smaller than the page set: constant evictions
		writers  = 6
		accesses = 4000
	)
	b := NewMemBackend()
	for i := 0; i < pages; i++ {
		if _, err := b.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	p := NewSharded(b, capPages, 4, LRU)

	var issued atomic.Uint64
	stop := make(chan struct{})
	var snapErr error
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		var prev Stats
		for {
			st := p.Stats()
			if st.Reads < prev.Reads || st.Writes < prev.Writes ||
				st.Hits < prev.Hits || st.Misses < prev.Misses ||
				st.Evictions < prev.Evictions || st.UnpinErrors < prev.UnpinErrors {
				snapErr = &statsRegression{prev: prev, cur: st}
				return
			}
			prev = st
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			x := seed*2654435761 + 1
			for i := 0; i < accesses; i++ {
				x = x*6364136223846793005 + 1442695040888963407 // LCG
				fr, err := p.Get(PageID(x % pages))
				if err != nil {
					t.Error(err)
					return
				}
				fr.Unpin()
				issued.Add(1)
			}
		}(uint64(w))
	}
	wg.Wait()
	close(stop)
	snapWG.Wait()
	if snapErr != nil {
		t.Fatal(snapErr)
	}

	st := p.Stats()
	if st.Hits+st.Misses != issued.Load() {
		t.Errorf("hits %d + misses %d = %d, want %d accesses", st.Hits, st.Misses, st.Hits+st.Misses, issued.Load())
	}
	if st.Misses != st.Reads {
		t.Errorf("misses %d != reads %d", st.Misses, st.Reads)
	}
	if st.Misses < pages {
		t.Errorf("only %d misses over %d distinct pages", st.Misses, pages)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

type statsRegression struct{ prev, cur Stats }

func (e *statsRegression) Error() string {
	return "stats went backwards between snapshots: " +
		"prev " + formatStats(e.prev) + " -> cur " + formatStats(e.cur)
}

func formatStats(s Stats) string {
	b := make([]byte, 0, 64)
	app := func(name string, v uint64) {
		b = append(b, name...)
		b = append(b, '=')
		b = appendUint(b, v)
		b = append(b, ' ')
	}
	app("reads", s.Reads)
	app("writes", s.Writes)
	app("hits", s.Hits)
	app("misses", s.Misses)
	app("evictions", s.Evictions)
	return string(b)
}

func appendUint(b []byte, v uint64) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// TestSessionStatsConcurrentAttribution runs concurrent sessions over
// one pool and checks the attribution invariant Stats documents: every
// miss is charged to exactly one session, so the sessions' Reads sum to
// the pool's Reads (and likewise hits).
func TestSessionStatsConcurrentAttribution(t *testing.T) {
	const (
		pages    = 128
		sessions = 8
		accesses = 2000
	)
	b := NewMemBackend()
	for i := 0; i < pages; i++ {
		if _, err := b.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	// Each of the 8 sessions pins one frame at a time; with 4 shards the
	// per-shard capacity must exceed the concurrent pin count.
	p := NewSharded(b, 64, 4, LRU)

	sess := make([]*Session, sessions)
	var wg sync.WaitGroup
	for i := range sess {
		sess[i] = NewSession()
		view := p.WithSession(sess[i])
		wg.Add(1)
		go func(v *Pager, seed uint64) {
			defer wg.Done()
			x := seed + 7
			for j := 0; j < accesses; j++ {
				x = x*6364136223846793005 + 1442695040888963407
				fr, err := v.Get(PageID(x % pages))
				if err != nil {
					t.Error(err)
					return
				}
				fr.Unpin()
			}
		}(view, uint64(i))
	}
	wg.Wait()

	var sumReads, sumHits uint64
	for _, s := range sess {
		st := s.Stats()
		sumReads += st.Reads
		sumHits += st.Hits
	}
	pst := p.Stats()
	if sumReads != pst.Reads {
		t.Errorf("session reads sum to %d, pool reads %d", sumReads, pst.Reads)
	}
	if sumHits != pst.Hits {
		t.Errorf("session hits sum to %d, pool hits %d", sumHits, pst.Hits)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}
