package pager

import (
	"fmt"
	"os"
	"sync"
)

// MemBackend is an in-memory page store. It is the default substrate for
// experiments: "disk accesses" are still counted by the Pager, but no real
// I/O happens, which keeps the benchmark harness deterministic and fast
// while preserving the paper's cost metric.
type MemBackend struct {
	mu     sync.RWMutex // RLock on the read path so shards read in parallel
	pages  [][]byte
	closed bool
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend { return &MemBackend{} }

// ReadPage implements Backend.
func (b *MemBackend) ReadPage(id PageID, buf []byte) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return ErrClosed
	}
	if int(id) >= len(b.pages) {
		return fmt.Errorf("membackend: page %d out of range (%d pages)", id, len(b.pages))
	}
	copy(buf, b.pages[id])
	return nil
}

// WritePage implements Backend.
func (b *MemBackend) WritePage(id PageID, buf []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	if int(id) >= len(b.pages) {
		return fmt.Errorf("membackend: page %d out of range (%d pages)", id, len(b.pages))
	}
	copy(b.pages[id], buf)
	return nil
}

// Allocate implements Backend.
func (b *MemBackend) Allocate() (PageID, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, ErrClosed
	}
	id := PageID(len(b.pages))
	b.pages = append(b.pages, make([]byte, PageSize))
	return id, nil
}

// NumPages implements Backend.
func (b *MemBackend) NumPages() PageID {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return PageID(len(b.pages))
}

// Sync implements Backend (a no-op for memory).
func (b *MemBackend) Sync() error { return nil }

// Close implements Backend.
func (b *MemBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	b.pages = nil
	return nil
}

// FileBackend stores pages in a single OS file, page i at offset
// i*PageSize.
type FileBackend struct {
	mu     sync.RWMutex // RLock on the read path (ReadAt is concurrency-safe)
	f      *os.File
	pages  PageID
	closed bool
}

// OpenFile opens (or creates) a file-backed page store at path.
func OpenFile(path string) (*FileBackend, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("filebackend: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("filebackend: %w", err)
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("filebackend: %s size %d not a multiple of page size", path, st.Size())
	}
	return &FileBackend{f: f, pages: PageID(st.Size() / PageSize)}, nil
}

// ReadPage implements Backend.
func (b *FileBackend) ReadPage(id PageID, buf []byte) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return ErrClosed
	}
	if id >= b.pages {
		return fmt.Errorf("filebackend: page %d out of range (%d pages)", id, b.pages)
	}
	_, err := b.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

// WritePage implements Backend.
func (b *FileBackend) WritePage(id PageID, buf []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	if id >= b.pages {
		return fmt.Errorf("filebackend: page %d out of range (%d pages)", id, b.pages)
	}
	_, err := b.f.WriteAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

// Allocate implements Backend.
func (b *FileBackend) Allocate() (PageID, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return 0, ErrClosed
	}
	id := b.pages
	var zero [PageSize]byte
	if _, err := b.f.WriteAt(zero[:], int64(id)*PageSize); err != nil {
		return 0, fmt.Errorf("filebackend: extend: %w", err)
	}
	b.pages++
	return id, nil
}

// NumPages implements Backend.
func (b *FileBackend) NumPages() PageID {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.pages
}

// Sync implements Backend.
func (b *FileBackend) Sync() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return ErrClosed
	}
	return b.f.Sync()
}

// Close implements Backend.
func (b *FileBackend) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	return b.f.Close()
}
