// Package faultfs wraps a pager.Backend with deterministic, seedable
// fault injection — the failure harness for the whole storage stack.
// Every disk-resident structure routes its I/O through the pager's
// Backend interface, so wrapping the backend lets tests and the chaos
// experiment (`dmbench -fig faults`) inject read/write/alloc failures,
// bit-flip corruption, and latency below any layer they want to harden,
// without touching the structure under test.
//
// Faults are scheduled, not random at run time: a Schedule decides from
// the access index (and a seed) alone, so a serial workload observes the
// exact same faults on every run. The wrapper sits BELOW the checksummed
// backend (pager.Checksummed) in the intended layering — injected
// corruption then models disk rot that checksums must catch:
//
//	Pager → Checksummed → faultfs.Backend → MemBackend / FileBackend
package faultfs

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"dmesh/internal/storage/pager"
)

// ErrInjected is the sentinel wrapped by every injected failure; use
// errors.Is to tell injected faults from real backend errors.
var ErrInjected = errors.New("faultfs: injected fault")

// Op identifies one class of backend operation.
type Op int

// The schedulable operation classes.
const (
	Read Op = iota
	Write
	Alloc
	numOps
)

func (op Op) String() string {
	switch op {
	case Read:
		return "read"
	case Write:
		return "write"
	case Alloc:
		return "alloc"
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// Schedule decides which accesses of one operation class fault. The
// decision is a pure function of the 1-based access index and the seed,
// so a fixed workload sees a fixed fault pattern. The zero Schedule
// never fires. Clauses combine as OR.
type Schedule struct {
	// Nth lists explicit 1-based access indices that fault.
	Nth []uint64
	// Every makes every Every-th access fault (0 disables).
	Every uint64
	// Rate faults each access independently with this probability,
	// decided by a deterministic hash of (Seed, index).
	Rate float64
	// Seed drives the Rate decisions.
	Seed int64
}

// fires reports whether access n (1-based) faults under s.
func (s Schedule) fires(n uint64) bool {
	for _, k := range s.Nth {
		if k == n {
			return true
		}
	}
	if s.Every > 0 && n%s.Every == 0 {
		return true
	}
	if s.Rate > 0 {
		// splitmix64 of (seed, n) → uniform in [0, 1).
		u := splitmix64(uint64(s.Seed)*0x9E3779B97F4A7C15 + n)
		if float64(u>>11)/float64(1<<53) < s.Rate {
			return true
		}
	}
	return false
}

func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Stats counts the wrapper's activity: accesses per class, injected
// failures per class, and corrupted reads.
type Stats struct {
	Ops       [3]uint64 // accesses, indexed by Op
	Injected  [3]uint64 // injected failures, indexed by Op
	Corrupted uint64    // reads whose returned page was bit-flipped
}

// Backend wraps an inner pager.Backend with fault injection. It is safe
// for concurrent use (schedule decisions and counters are serialized; the
// inner backend provides its own locking). NumPages, Sync, and Close pass
// through unmodified.
type Backend struct {
	inner pager.Backend

	mu        sync.Mutex
	ops       [3]uint64
	inj       [3]uint64
	corrupt   Schedule
	corrupted uint64
	sched     [3]Schedule
	latency   time.Duration
}

// Wrap returns a fault-injecting view of inner with no faults scheduled.
func Wrap(inner pager.Backend) *Backend { return &Backend{inner: inner} }

// SetSchedule installs the failure schedule for one operation class.
func (b *Backend) SetSchedule(op Op, s Schedule) {
	b.mu.Lock()
	b.sched[op] = s
	b.mu.Unlock()
}

// SetCorrupt installs the read-corruption schedule: when it fires, one
// deterministically chosen bit of the page returned by ReadPage is
// flipped after the inner read succeeds — the torn-write / disk-rot model
// a checksummed backend must detect.
func (b *Backend) SetCorrupt(s Schedule) {
	b.mu.Lock()
	b.corrupt = s
	b.mu.Unlock()
}

// SetLatency makes every ReadPage and WritePage sleep for d before
// touching the inner backend (0 disables). Useful to hold singleflight
// fills open while concurrent waiters pile up.
func (b *Backend) SetLatency(d time.Duration) {
	b.mu.Lock()
	b.latency = d
	b.mu.Unlock()
}

// Heal clears every schedule and the latency; counters keep counting.
func (b *Backend) Heal() {
	b.mu.Lock()
	b.sched = [3]Schedule{}
	b.corrupt = Schedule{}
	b.latency = 0
	b.mu.Unlock()
}

// Stats snapshots the counters.
func (b *Backend) Stats() Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return Stats{Ops: b.ops, Injected: b.inj, Corrupted: b.corrupted}
}

// ResetStats zeroes the counters (schedule indices restart too: the next
// access of each class is access 1 again).
func (b *Backend) ResetStats() {
	b.mu.Lock()
	b.ops = [3]uint64{}
	b.inj = [3]uint64{}
	b.corrupted = 0
	b.mu.Unlock()
}

// decide advances op's access counter and reports (index, fault, delay).
func (b *Backend) decide(op Op) (uint64, bool, time.Duration) {
	b.mu.Lock()
	b.ops[op]++
	n := b.ops[op]
	fault := b.sched[op].fires(n)
	if fault {
		b.inj[op]++
	}
	d := b.latency
	b.mu.Unlock()
	return n, fault, d
}

// injected builds the error for one injected fault.
func injected(op Op, n uint64) error {
	return fmt.Errorf("%w: %s access %d", ErrInjected, op, n)
}

// ReadPage implements pager.Backend.
func (b *Backend) ReadPage(id pager.PageID, buf []byte) error {
	n, fault, d := b.decide(Read)
	if d > 0 {
		time.Sleep(d)
	}
	if fault {
		return injected(Read, n)
	}
	if err := b.inner.ReadPage(id, buf); err != nil {
		return err
	}
	b.mu.Lock()
	hit := b.corrupt.fires(n)
	if hit {
		b.corrupted++
	}
	b.mu.Unlock()
	if hit {
		// Flip one deterministically chosen bit of the returned page.
		bit := splitmix64(uint64(b.corrupt.Seed)^(n*0x2545F4914F6CDD1D)) % uint64(len(buf)*8)
		buf[bit/8] ^= 1 << (bit % 8)
	}
	return nil
}

// WritePage implements pager.Backend.
func (b *Backend) WritePage(id pager.PageID, buf []byte) error {
	n, fault, d := b.decide(Write)
	if d > 0 {
		time.Sleep(d)
	}
	if fault {
		return injected(Write, n)
	}
	return b.inner.WritePage(id, buf)
}

// Allocate implements pager.Backend.
func (b *Backend) Allocate() (pager.PageID, error) {
	n, fault, _ := b.decide(Alloc)
	if fault {
		return 0, injected(Alloc, n)
	}
	return b.inner.Allocate()
}

// NumPages implements pager.Backend.
func (b *Backend) NumPages() pager.PageID { return b.inner.NumPages() }

// Sync implements pager.Backend.
func (b *Backend) Sync() error { return b.inner.Sync() }

// Close implements pager.Backend.
func (b *Backend) Close() error { return b.inner.Close() }
