package faultfs

import (
	"bytes"
	"errors"
	"testing"

	"dmesh/internal/storage/pager"
)

// prep allocates n pages on a fresh mem backend and returns the wrapper.
func prep(t *testing.T, n int) *Backend {
	t.Helper()
	inner := pager.NewMemBackend()
	for i := 0; i < n; i++ {
		if _, err := inner.Allocate(); err != nil {
			t.Fatal(err)
		}
	}
	return Wrap(inner)
}

func TestPassthroughWithoutSchedules(t *testing.T) {
	b := prep(t, 2)
	buf := make([]byte, pager.PageSize)
	copy(buf, []byte("hello"))
	if err := b.WritePage(0, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, pager.PageSize)
	if err := b.ReadPage(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Fatal("round trip mismatch")
	}
	st := b.Stats()
	if st.Ops[Read] != 1 || st.Ops[Write] != 1 {
		t.Fatalf("ops = %v", st.Ops)
	}
	if st.Injected != [3]uint64{} || st.Corrupted != 0 {
		t.Fatalf("spurious faults: %+v", st)
	}
}

func TestNthAndEverySchedules(t *testing.T) {
	b := prep(t, 1)
	b.SetSchedule(Read, Schedule{Nth: []uint64{2}, Every: 5})
	buf := make([]byte, pager.PageSize)
	var failed []int
	for i := 1; i <= 10; i++ {
		if err := b.ReadPage(0, buf); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("access %d: %v", i, err)
			}
			failed = append(failed, i)
		}
	}
	want := []int{2, 5, 10}
	if len(failed) != len(want) {
		t.Fatalf("failed accesses %v, want %v", failed, want)
	}
	for i := range want {
		if failed[i] != want[i] {
			t.Fatalf("failed accesses %v, want %v", failed, want)
		}
	}
	if st := b.Stats(); st.Injected[Read] != 3 {
		t.Fatalf("injected reads = %d, want 3", st.Injected[Read])
	}
}

func TestRateIsDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		b := prep(t, 1)
		b.SetSchedule(Read, Schedule{Rate: 0.3, Seed: seed})
		buf := make([]byte, pager.PageSize)
		out := make([]bool, 200)
		for i := range out {
			out[i] = b.ReadPage(0, buf) != nil
		}
		return out
	}
	a, b2 := pattern(42), pattern(42)
	faults := 0
	for i := range a {
		if a[i] != b2[i] {
			t.Fatalf("same seed diverged at access %d", i+1)
		}
		if a[i] {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Fatalf("rate 0.3 fired %d/%d times", faults, len(a))
	}
	c := pattern(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical patterns")
	}
}

func TestCorruptionFlipsExactlyOneBit(t *testing.T) {
	b := prep(t, 1)
	want := make([]byte, pager.PageSize)
	for i := range want {
		want[i] = byte(i)
	}
	if err := b.WritePage(0, want); err != nil {
		t.Fatal(err)
	}
	b.SetCorrupt(Schedule{Nth: []uint64{2}, Seed: 9})
	got := make([]byte, pager.PageSize)
	if err := b.ReadPage(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("access 1 should be clean")
	}
	if err := b.ReadPage(0, got); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range got {
		for x := got[i] ^ want[i]; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bits, want 1", diff)
	}
	if st := b.Stats(); st.Corrupted != 1 {
		t.Fatalf("corrupted = %d, want 1", st.Corrupted)
	}
	// The backing store itself is untouched: a clean re-read matches.
	if err := b.ReadPage(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("corruption leaked into the inner backend")
	}
}

func TestHealClearsSchedules(t *testing.T) {
	b := prep(t, 1)
	b.SetSchedule(Read, Schedule{Every: 1})
	b.SetSchedule(Write, Schedule{Every: 1})
	b.SetSchedule(Alloc, Schedule{Every: 1})
	buf := make([]byte, pager.PageSize)
	if err := b.ReadPage(0, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read = %v, want injected", err)
	}
	if err := b.WritePage(0, buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("write = %v, want injected", err)
	}
	if _, err := b.Allocate(); !errors.Is(err, ErrInjected) {
		t.Fatalf("alloc = %v, want injected", err)
	}
	b.Heal()
	if err := b.ReadPage(0, buf); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if err := b.WritePage(0, buf); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
	if _, err := b.Allocate(); err != nil {
		t.Fatalf("alloc after heal: %v", err)
	}
}

// The wrapper must behave identically under a Pager: an injected read is
// one failed disk access, and recovery works once the fault clears.
func TestUnderPager(t *testing.T) {
	b := prep(t, 0)
	p := pager.New(b, 8)
	fr, err := p.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	id := fr.ID()
	fr.MarkDirty()
	fr.Unpin()
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	b.SetSchedule(Read, Schedule{Nth: []uint64{1}})
	if _, err := p.Get(id); !errors.Is(err, ErrInjected) {
		t.Fatalf("Get = %v, want injected", err)
	}
	fr, err = p.Get(id)
	if err != nil {
		t.Fatalf("Get after fault: %v", err)
	}
	fr.Unpin()
}
