package btree

import (
	"errors"
	"testing"

	"dmesh/internal/storage/pager"
)

// buildCorruptibleTree inserts enough keys for a multi-level tree.
func buildCorruptibleTree(t *testing.T) *Tree {
	t.Helper()
	p := pager.New(pager.NewMemBackend(), 4096)
	tr, err := Create(p)
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 1000; k++ {
		if err := tr.Put(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 2 {
		t.Fatalf("tree too small to corrupt meaningfully (height %d)", h)
	}
	return tr
}

// smash rewrites page id through fn.
func smash(t *testing.T, tr *Tree, id pager.PageID, fn func(d []byte)) {
	t.Helper()
	fr, err := tr.p.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	fn(fr.Data())
	fr.MarkDirty()
	fr.Unpin()
}

func TestGetCorruptTypeByte(t *testing.T) {
	tr := buildCorruptibleTree(t)
	smash(t, tr, tr.root, func(d []byte) { d[0] = 0xEE })
	if _, err := tr.Get(500); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get over corrupt type = %v, want ErrCorrupt", err)
	}
	if err := tr.Range(0, 999, func(int64, int64) bool { return true }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Range over corrupt type = %v, want ErrCorrupt", err)
	}
	if _, err := tr.Height(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Height over corrupt type = %v, want ErrCorrupt", err)
	}
}

func TestGetCorruptEntryCount(t *testing.T) {
	tr := buildCorruptibleTree(t)
	smash(t, tr, tr.root, func(d []byte) { setCount(d, 30000) })
	if _, err := tr.Get(500); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get over corrupt count = %v, want ErrCorrupt", err)
	}
}

// A child pointer redirected back to the root must trip the descent
// bound instead of looping forever.
func TestGetCorruptDescentCycle(t *testing.T) {
	tr := buildCorruptibleTree(t)
	root := tr.root
	smash(t, tr, root, func(d []byte) {
		if nodeType(d) != innerType {
			t.Fatal("root is not inner")
		}
		// Point every child entry back at the root itself.
		for i := 0; i < nodeCount(d); i++ {
			setEntry(d, i, entryKey(d, i), int64(root))
		}
	})
	if _, err := tr.Get(500); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get over descent cycle = %v, want ErrCorrupt", err)
	}
	if err := tr.Put(5000, 1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Put over descent cycle = %v, want ErrCorrupt", err)
	}
}

// A next-leaf pointer redirected at the leaf itself must trip the
// chain-length bound instead of scanning forever.
func TestRangeCorruptLeafChainCycle(t *testing.T) {
	tr := buildCorruptibleTree(t)
	// Find the first leaf.
	id := tr.root
	for {
		fr, err := tr.p.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		d := fr.Data()
		if nodeType(d) == leafType {
			fr.Unpin()
			break
		}
		id = pager.PageID(entryVal(d, 0))
		fr.Unpin()
	}
	smash(t, tr, id, func(d []byte) { setNextLeaf(d, id) })
	err := tr.Range(0, 1<<62, func(int64, int64) bool { return true })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Range over leaf cycle = %v, want ErrCorrupt", err)
	}
}

func TestGetCorruptEmptyInner(t *testing.T) {
	tr := buildCorruptibleTree(t)
	smash(t, tr, tr.root, func(d []byte) {
		if nodeType(d) != innerType {
			t.Fatal("root is not inner")
		}
		setCount(d, 0)
	})
	if _, err := tr.Get(500); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get over empty inner = %v, want ErrCorrupt", err)
	}
}
