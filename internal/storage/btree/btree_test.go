package btree

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"dmesh/internal/storage/pager"
)

func newTree(t *testing.T, poolPages int) (*Tree, *pager.Pager) {
	t.Helper()
	p := pager.New(pager.NewMemBackend(), poolPages)
	tr, err := Create(p)
	if err != nil {
		t.Fatal(err)
	}
	return tr, p
}

func TestEmptyTree(t *testing.T) {
	tr, _ := newTree(t, 16)
	if tr.Len() != 0 {
		t.Fatalf("Len = %d", tr.Len())
	}
	if _, err := tr.Get(1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on empty: %v", err)
	}
	h, err := tr.Height()
	if err != nil || h != 1 {
		t.Fatalf("Height = %d, %v", h, err)
	}
}

func TestPutGetSmall(t *testing.T) {
	tr, _ := newTree(t, 16)
	for i := int64(0); i < 50; i++ {
		if err := tr.Put(i, i*10); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 50; i++ {
		v, err := tr.Get(i)
		if err != nil {
			t.Fatalf("Get(%d): %v", i, err)
		}
		if v != i*10 {
			t.Fatalf("Get(%d) = %d", i, v)
		}
	}
	if tr.Len() != 50 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestOverwrite(t *testing.T) {
	tr, _ := newTree(t, 16)
	tr.Put(7, 1)
	tr.Put(7, 2)
	if tr.Len() != 1 {
		t.Fatalf("Len after overwrite = %d", tr.Len())
	}
	v, err := tr.Get(7)
	if err != nil || v != 2 {
		t.Fatalf("Get = %d, %v", v, err)
	}
}

func TestLargeRandomInsert(t *testing.T) {
	tr, _ := newTree(t, 256)
	const n = 20000
	rng := rand.New(rand.NewSource(42))
	keys := rng.Perm(n)
	for _, k := range keys {
		if err := tr.Put(int64(k), int64(k)*3); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if h < 2 || h > 4 {
		t.Fatalf("unexpected height %d for %d keys", h, n)
	}
	for i := 0; i < n; i += 37 {
		v, err := tr.Get(int64(i))
		if err != nil || v != int64(i)*3 {
			t.Fatalf("Get(%d) = %d, %v", i, v, err)
		}
	}
	if _, err := tr.Get(n + 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
}

func TestNegativeAndSparseKeys(t *testing.T) {
	tr, _ := newTree(t, 64)
	keys := []int64{-1 << 40, -77, 0, 1, 1 << 50}
	for i, k := range keys {
		if err := tr.Put(k, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		v, err := tr.Get(k)
		if err != nil || v != int64(i) {
			t.Fatalf("Get(%d) = %d, %v", k, v, err)
		}
	}
}

func TestRangeScan(t *testing.T) {
	tr, _ := newTree(t, 256)
	for i := int64(0); i < 5000; i++ {
		tr.Put(i*2, i) // even keys only
	}
	var got []int64
	err := tr.Range(100, 120, func(k, v int64) bool {
		got = append(got, k)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{100, 102, 104, 106, 108, 110, 112, 114, 116, 118, 120}
	if len(got) != len(want) {
		t.Fatalf("Range = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Range = %v", got)
		}
	}
	// Early stop.
	count := 0
	tr.Range(0, 1<<60, func(k, v int64) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop visited %d", count)
	}
	// Empty range.
	visited := false
	tr.Range(101, 101, func(k, v int64) bool { visited = true; return true })
	if visited {
		t.Error("odd key range must be empty")
	}
}

func TestRangeIsSorted(t *testing.T) {
	tr, _ := newTree(t, 256)
	rng := rand.New(rand.NewSource(7))
	n := 8000
	for _, k := range rng.Perm(n) {
		tr.Put(int64(k), 0)
	}
	var got []int64
	tr.Range(-1<<62, 1<<62, func(k, v int64) bool {
		got = append(got, k)
		return true
	})
	if len(got) != n {
		t.Fatalf("full scan returned %d keys, want %d", len(got), n)
	}
	if !sort.SliceIsSorted(got, func(i, j int) bool { return got[i] < got[j] }) {
		t.Fatal("range scan not sorted")
	}
}

func TestDelete(t *testing.T) {
	tr, _ := newTree(t, 64)
	for i := int64(0); i < 1000; i++ {
		tr.Put(i, i)
	}
	ok, err := tr.Delete(500)
	if err != nil || !ok {
		t.Fatalf("Delete(500) = %v, %v", ok, err)
	}
	if _, err := tr.Get(500); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted key still present")
	}
	if tr.Len() != 999 {
		t.Fatalf("Len = %d", tr.Len())
	}
	ok, err = tr.Delete(500)
	if err != nil || ok {
		t.Fatalf("second Delete = %v, %v", ok, err)
	}
	// Neighbors unaffected.
	if v, err := tr.Get(499); err != nil || v != 499 {
		t.Fatalf("Get(499) = %d, %v", v, err)
	}
	if v, err := tr.Get(501); err != nil || v != 501 {
		t.Fatalf("Get(501) = %d, %v", v, err)
	}
}

func TestPersistence(t *testing.T) {
	p := pager.New(pager.NewMemBackend(), 64)
	tr, err := Create(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 3000; i++ {
		tr.Put(i, i+1)
	}
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	tr2, err := Open(p)
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Len() != 3000 {
		t.Fatalf("reopened Len = %d", tr2.Len())
	}
	for i := int64(0); i < 3000; i += 113 {
		v, err := tr2.Get(i)
		if err != nil || v != i+1 {
			t.Fatalf("Get(%d) = %d, %v", i, v, err)
		}
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	p := pager.New(pager.NewMemBackend(), 8)
	fr, _ := p.Allocate()
	fr.Unpin()
	if _, err := Open(p); err == nil {
		t.Fatal("Open must reject bad magic")
	}
}

func TestColdGetCostIsHeight(t *testing.T) {
	tr, p := newTree(t, 512)
	for i := int64(0); i < 50000; i++ {
		tr.Put(i, i)
	}
	h, err := tr.Height()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	if _, err := tr.Get(31337); err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.Reads != uint64(h) {
		t.Fatalf("cold Get cost %d disk accesses, want height %d", s.Reads, h)
	}
}

func BenchmarkPut(b *testing.B) {
	p := pager.New(pager.NewMemBackend(), 1024)
	tr, err := Create(p)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tr.Put(int64(i), int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	p := pager.New(pager.NewMemBackend(), 1024)
	tr, _ := Create(p)
	const n = 100000
	for i := int64(0); i < n; i++ {
		tr.Put(i, i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tr.Get(int64(i % n)); err != nil {
			b.Fatal(err)
		}
	}
}
