package btree

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"dmesh/internal/storage/pager"
)

// TestModelEquivalence drives the tree with random operation sequences and
// checks it against a plain map after every batch — the model-based
// property test for the only mutable index in the repository.
func TestModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := pager.New(pager.NewMemBackend(), 256)
		tr, err := Create(p)
		if err != nil {
			t.Fatal(err)
		}
		model := make(map[int64]int64)
		const keySpace = 500
		for op := 0; op < 1500; op++ {
			k := int64(rng.Intn(keySpace))
			switch rng.Intn(3) {
			case 0, 1: // insert/overwrite twice as often as delete
				v := rng.Int63()
				if err := tr.Put(k, v); err != nil {
					t.Fatal(err)
				}
				model[k] = v
			case 2:
				ok, err := tr.Delete(k)
				if err != nil {
					t.Fatal(err)
				}
				_, inModel := model[k]
				if ok != inModel {
					t.Fatalf("Delete(%d) = %v, model has it: %v", k, ok, inModel)
				}
				delete(model, k)
			}
		}
		if tr.Len() != int64(len(model)) {
			t.Fatalf("Len = %d, model %d", tr.Len(), len(model))
		}
		for k, v := range model {
			got, err := tr.Get(k)
			if err != nil || got != v {
				t.Fatalf("Get(%d) = %d, %v; want %d", k, got, err, v)
			}
		}
		// Spot-check absent keys.
		for k := int64(0); k < keySpace; k += 7 {
			if _, inModel := model[k]; inModel {
				continue
			}
			if _, err := tr.Get(k); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get(absent %d) = %v", k, err)
			}
		}
		// Range over everything must agree with the sorted model.
		count := 0
		err = tr.Range(-1<<62, 1<<62, func(k, v int64) bool {
			if model[k] != v {
				t.Fatalf("Range saw (%d,%d), model has %d", k, v, model[k])
			}
			count++
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		return count == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestSequentialVsReverseInsertSameContent checks insertion-order
// independence of the final key set.
func TestSequentialVsReverseInsertSameContent(t *testing.T) {
	build := func(reverse bool) *Tree {
		p := pager.New(pager.NewMemBackend(), 256)
		tr, err := Create(p)
		if err != nil {
			t.Fatal(err)
		}
		const n = 5000
		for i := 0; i < n; i++ {
			k := int64(i)
			if reverse {
				k = int64(n - 1 - i)
			}
			if err := tr.Put(k, k*2); err != nil {
				t.Fatal(err)
			}
		}
		return tr
	}
	a, b := build(false), build(true)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	var seqA, seqB []int64
	a.Range(-1<<62, 1<<62, func(k, v int64) bool { seqA = append(seqA, k, v); return true })
	b.Range(-1<<62, 1<<62, func(k, v int64) bool { seqB = append(seqB, k, v); return true })
	if len(seqA) != len(seqB) {
		t.Fatal("scan lengths differ")
	}
	for i := range seqA {
		if seqA[i] != seqB[i] {
			t.Fatalf("content differs at %d", i)
		}
	}
}
