// Package btree implements a paged B+-tree mapping int64 keys to int64
// values. The paper creates "B+-tree indexes ... wherever necessary for all
// the tables used"; here they map point IDs to the heap-file records that
// hold them, so that a by-ID fetch costs the same page accesses it would in
// the paper's Oracle setup.
//
// Deletion is tolerated-underflow style (keys are removed from leaves, but
// nodes are not merged), which matches how the structure is used in this
// repository: bulk build once, then read-mostly workloads.
package btree

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dmesh/internal/storage/pager"
)

const (
	magic    = 0x42545245 // "BTRE"
	metaPage = pager.PageID(0)

	// Node layout:
	//   byte 0:    node type (leafType/innerType)
	//   bytes 1-2: key count (uint16)
	//   bytes 3-6: leaf only: next-leaf page ID (uint32, 0 = none)
	//   byte 7:    reserved
	// then entries.
	nodeHeader = 8
	leafType   = 1
	innerType  = 2

	entrySize = 16 // key + value (leaf) or key + child (inner, child in value slot)

	// MaxEntries is the per-node fanout. One slot below physical capacity
	// is reserved so a node can temporarily hold MaxEntries+1 entries
	// between insertAt and the split: (4096-8)/16 - 1 = 254.
	MaxEntries = (pager.PageSize-nodeHeader)/entrySize - 1
)

// ErrNotFound is returned by Get when the key is absent.
var ErrNotFound = errors.New("btree: key not found")

// ErrCorrupt is the sentinel wrapped by every structural-inconsistency
// error: a page whose type byte is neither leaf nor inner, an impossible
// entry count, or a descent/leaf-chain walk longer than any well-formed
// tree allows (a child- or next-leaf-pointer cycle). Corrupted pages
// surface as errors, never panics or endless loops.
var ErrCorrupt = errors.New("btree: corrupt structure")

// maxDepth bounds root-to-leaf descents: with fanout >128, a height
// beyond this is impossible for any key count that fits in int64, so a
// longer descent proves a child-pointer cycle.
const maxDepth = 64

// checkNode validates the invariants any readable node page satisfies.
func checkNode(d []byte, id pager.PageID) error {
	if typ := nodeType(d); typ != leafType && typ != innerType {
		return fmt.Errorf("%w: page %d is not a node (type %d)", ErrCorrupt, id, typ)
	}
	if n := nodeCount(d); n > MaxEntries+1 {
		return fmt.Errorf("%w: page %d has impossible entry count %d", ErrCorrupt, id, n)
	}
	return nil
}

// Tree is a B+-tree over a dedicated pager.
type Tree struct {
	p    *pager.Pager
	root pager.PageID
	size int64
}

// Create initializes a new empty tree on an empty pager.
func Create(p *pager.Pager) (*Tree, error) {
	if p.NumPages() != 0 {
		return nil, errors.New("btree: Create requires an empty pager")
	}
	meta, err := p.Allocate()
	if err != nil {
		return nil, err
	}
	defer meta.Unpin()
	rootFr, err := p.Allocate()
	if err != nil {
		return nil, err
	}
	defer rootFr.Unpin()
	initNode(rootFr.Data(), leafType)
	rootFr.MarkDirty()

	t := &Tree{p: p, root: rootFr.ID()}
	t.writeMeta(meta.Data())
	meta.MarkDirty()
	return t, nil
}

// Open attaches to an existing tree.
func Open(p *pager.Pager) (*Tree, error) {
	meta, err := p.Get(metaPage)
	if err != nil {
		return nil, fmt.Errorf("btree: open: %w", err)
	}
	defer meta.Unpin()
	d := meta.Data()
	if binary.LittleEndian.Uint32(d[0:]) != magic {
		return nil, errors.New("btree: bad magic")
	}
	return &Tree{
		p:    p,
		root: pager.PageID(binary.LittleEndian.Uint32(d[4:])),
		size: int64(binary.LittleEndian.Uint64(d[8:])),
	}, nil
}

func (t *Tree) writeMeta(d []byte) {
	binary.LittleEndian.PutUint32(d[0:], magic)
	binary.LittleEndian.PutUint32(d[4:], uint32(t.root))
	binary.LittleEndian.PutUint64(d[8:], uint64(t.size))
}

func (t *Tree) syncMeta() error {
	meta, err := t.p.Get(metaPage)
	if err != nil {
		return err
	}
	t.writeMeta(meta.Data())
	meta.MarkDirty()
	meta.Unpin()
	return nil
}

// WithSession returns a read-only view of the tree whose page accesses
// are additionally attributed to s (per-query disk-access accounting).
// The view shares the underlying pager pool; do not Put/Delete through it.
func (t *Tree) WithSession(s *pager.Session) *Tree {
	cp := *t
	cp.p = t.p.WithSession(s)
	return &cp
}

// Len returns the number of keys stored.
func (t *Tree) Len() int64 { return t.size }

// --- node accessors -------------------------------------------------------

func initNode(d []byte, typ byte) {
	for i := 0; i < nodeHeader; i++ {
		d[i] = 0
	}
	d[0] = typ
}

func nodeType(d []byte) byte   { return d[0] }
func nodeCount(d []byte) int   { return int(binary.LittleEndian.Uint16(d[1:])) }
func setCount(d []byte, n int) { binary.LittleEndian.PutUint16(d[1:], uint16(n)) }
func nextLeaf(d []byte) pager.PageID {
	return pager.PageID(binary.LittleEndian.Uint32(d[3:]))
}
func setNextLeaf(d []byte, id pager.PageID) { binary.LittleEndian.PutUint32(d[3:], uint32(id)) }

func entryKey(d []byte, i int) int64 {
	return int64(binary.LittleEndian.Uint64(d[nodeHeader+i*entrySize:]))
}
func entryVal(d []byte, i int) int64 {
	return int64(binary.LittleEndian.Uint64(d[nodeHeader+i*entrySize+8:]))
}
func setEntry(d []byte, i int, k, v int64) {
	binary.LittleEndian.PutUint64(d[nodeHeader+i*entrySize:], uint64(k))
	binary.LittleEndian.PutUint64(d[nodeHeader+i*entrySize+8:], uint64(v))
}

// insertAt shifts entries right and writes (k, v) at index i.
func insertAt(d []byte, i, n int, k, v int64) {
	copy(d[nodeHeader+(i+1)*entrySize:nodeHeader+(n+1)*entrySize],
		d[nodeHeader+i*entrySize:nodeHeader+n*entrySize])
	setEntry(d, i, k, v)
	setCount(d, n+1)
}

// removeAt shifts entries left over index i.
func removeAt(d []byte, i, n int) {
	copy(d[nodeHeader+i*entrySize:nodeHeader+(n-1)*entrySize],
		d[nodeHeader+(i+1)*entrySize:nodeHeader+n*entrySize])
	setCount(d, n-1)
}

// lowerBound returns the first index with entryKey >= k.
func lowerBound(d []byte, k int64) int {
	lo, hi := 0, nodeCount(d)
	for lo < hi {
		mid := (lo + hi) / 2
		if entryKey(d, mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// childFor returns the index of the child covering key k in an inner node.
// Inner node semantics: entry i covers keys >= key(i) (and entry 0 covers
// everything below key(1)); keys are the minimum keys of each subtree.
func childFor(d []byte, k int64) int {
	idx := lowerBound(d, k)
	if idx == nodeCount(d) || entryKey(d, idx) > k {
		if idx > 0 {
			idx--
		}
	}
	return idx
}

// --- operations ------------------------------------------------------------

// Get returns the value stored for key, or ErrNotFound.
func (t *Tree) Get(key int64) (int64, error) {
	id := t.root
	for depth := 0; ; depth++ {
		if depth >= maxDepth {
			return 0, fmt.Errorf("%w: descent exceeds %d levels at page %d", ErrCorrupt, maxDepth, id)
		}
		fr, err := t.p.Get(id)
		if err != nil {
			return 0, err
		}
		d := fr.Data()
		if err := checkNode(d, id); err != nil {
			fr.Unpin()
			return 0, err
		}
		if nodeType(d) == leafType {
			i := lowerBound(d, key)
			if i < nodeCount(d) && entryKey(d, i) == key {
				v := entryVal(d, i)
				fr.Unpin()
				return v, nil
			}
			fr.Unpin()
			return 0, ErrNotFound
		}
		if nodeCount(d) == 0 {
			fr.Unpin()
			return 0, fmt.Errorf("%w: inner page %d has no children", ErrCorrupt, id)
		}
		id = pager.PageID(entryVal(d, childFor(d, key)))
		fr.Unpin()
	}
}

// Put inserts or overwrites key -> value.
func (t *Tree) Put(key, value int64) error {
	promoted, newChild, err := t.put(t.root, key, value, maxDepth)
	if err != nil {
		return err
	}
	if newChild != 0 {
		// Root split: build a new root over the two children.
		oldRootMin, err := t.minKey(t.root)
		if err != nil {
			return err
		}
		fr, err := t.p.Allocate()
		if err != nil {
			return err
		}
		d := fr.Data()
		initNode(d, innerType)
		setEntry(d, 0, oldRootMin, int64(t.root))
		setEntry(d, 1, promoted, int64(newChild))
		setCount(d, 2)
		fr.MarkDirty()
		t.root = fr.ID()
		fr.Unpin()
	}
	return t.syncMeta()
}

// minKey returns the smallest key under node id.
func (t *Tree) minKey(id pager.PageID) (int64, error) {
	for depth := 0; ; depth++ {
		if depth >= maxDepth {
			return 0, fmt.Errorf("%w: descent exceeds %d levels at page %d", ErrCorrupt, maxDepth, id)
		}
		fr, err := t.p.Get(id)
		if err != nil {
			return 0, err
		}
		d := fr.Data()
		if err := checkNode(d, id); err != nil {
			fr.Unpin()
			return 0, err
		}
		if nodeCount(d) == 0 {
			fr.Unpin()
			return 0, nil // empty tree: any separator works
		}
		k := entryKey(d, 0)
		if nodeType(d) == leafType {
			fr.Unpin()
			return k, nil
		}
		id = pager.PageID(entryVal(d, 0))
		fr.Unpin()
	}
}

// put inserts into the subtree at id, recursing at most depth more
// levels. When the node splits, it returns the first key of the new
// right sibling and its page ID.
func (t *Tree) put(id pager.PageID, key, value int64, depth int) (promoted int64, newChild pager.PageID, err error) {
	if depth < 1 {
		return 0, 0, fmt.Errorf("%w: descent exceeds %d levels at page %d", ErrCorrupt, maxDepth, id)
	}
	fr, err := t.p.Get(id)
	if err != nil {
		return 0, 0, err
	}
	d := fr.Data()
	if err := checkNode(d, id); err != nil {
		fr.Unpin()
		return 0, 0, err
	}

	if nodeType(d) == leafType {
		n := nodeCount(d)
		i := lowerBound(d, key)
		if i < n && entryKey(d, i) == key {
			setEntry(d, i, key, value) // overwrite
			fr.MarkDirty()
			fr.Unpin()
			return 0, 0, nil
		}
		insertAt(d, i, n, key, value)
		t.size++
		fr.MarkDirty()
		if nodeCount(d) <= MaxEntries {
			fr.Unpin()
			return 0, 0, nil
		}
		promoted, newChild, err = t.splitLeaf(fr)
		fr.Unpin()
		return promoted, newChild, err
	}

	ci := childFor(d, key)
	child := pager.PageID(entryVal(d, ci))
	// Maintain the invariant that an entry's key never exceeds its
	// subtree's minimum: without this, inserting below the leftmost key
	// leaves a stale separator that can later collide with a promoted key
	// and misroute lookups.
	if key < entryKey(d, ci) {
		setEntry(d, ci, key, int64(child))
		fr.MarkDirty()
	}
	fr.Unpin() // release during recursion; page stays buffered
	pk, pc, err := t.put(child, key, value, depth-1)
	if err != nil || pc == 0 {
		return 0, 0, err
	}
	fr, err = t.p.Get(id)
	if err != nil {
		return 0, 0, err
	}
	d = fr.Data()
	n := nodeCount(d)
	i := lowerBound(d, pk)
	insertAt(d, i, n, pk, int64(pc))
	fr.MarkDirty()
	if nodeCount(d) <= MaxEntries {
		fr.Unpin()
		return 0, 0, nil
	}
	promoted, newChild, err = t.splitInner(fr)
	fr.Unpin()
	return promoted, newChild, err
}

// splitLeaf moves the upper half of fr into a new leaf.
func (t *Tree) splitLeaf(fr *pager.Frame) (int64, pager.PageID, error) {
	d := fr.Data()
	n := nodeCount(d)
	right, err := t.p.Allocate()
	if err != nil {
		return 0, 0, err
	}
	rd := right.Data()
	initNode(rd, leafType)
	half := n / 2
	copy(rd[nodeHeader:], d[nodeHeader+half*entrySize:nodeHeader+n*entrySize])
	setCount(rd, n-half)
	setNextLeaf(rd, nextLeaf(d))
	setNextLeaf(d, right.ID())
	setCount(d, half)
	fr.MarkDirty()
	right.MarkDirty()
	promoted := entryKey(rd, 0)
	id := right.ID()
	right.Unpin()
	return promoted, id, nil
}

// splitInner moves the upper half of fr into a new inner node.
func (t *Tree) splitInner(fr *pager.Frame) (int64, pager.PageID, error) {
	d := fr.Data()
	n := nodeCount(d)
	right, err := t.p.Allocate()
	if err != nil {
		return 0, 0, err
	}
	rd := right.Data()
	initNode(rd, innerType)
	half := n / 2
	copy(rd[nodeHeader:], d[nodeHeader+half*entrySize:nodeHeader+n*entrySize])
	setCount(rd, n-half)
	setCount(d, half)
	fr.MarkDirty()
	right.MarkDirty()
	promoted := entryKey(rd, 0)
	id := right.ID()
	right.Unpin()
	return promoted, id, nil
}

// Delete removes key if present and reports whether it was found. Nodes
// are allowed to underflow (no merging).
func (t *Tree) Delete(key int64) (bool, error) {
	id := t.root
	for depth := 0; ; depth++ {
		if depth >= maxDepth {
			return false, fmt.Errorf("%w: descent exceeds %d levels at page %d", ErrCorrupt, maxDepth, id)
		}
		fr, err := t.p.Get(id)
		if err != nil {
			return false, err
		}
		d := fr.Data()
		if err := checkNode(d, id); err != nil {
			fr.Unpin()
			return false, err
		}
		if nodeType(d) == leafType {
			i := lowerBound(d, key)
			if i >= nodeCount(d) || entryKey(d, i) != key {
				fr.Unpin()
				return false, nil
			}
			removeAt(d, i, nodeCount(d))
			fr.MarkDirty()
			fr.Unpin()
			t.size--
			return true, t.syncMeta()
		}
		id = pager.PageID(entryVal(d, childFor(d, key)))
		fr.Unpin()
	}
}

// Range calls fn for every (key, value) with lo <= key <= hi in ascending
// order, stopping early if fn returns false.
func (t *Tree) Range(lo, hi int64, fn func(key, value int64) bool) error {
	// Descend to the leaf covering lo.
	id := t.root
	for depth := 0; ; depth++ {
		if depth >= maxDepth {
			return fmt.Errorf("%w: descent exceeds %d levels at page %d", ErrCorrupt, maxDepth, id)
		}
		fr, err := t.p.Get(id)
		if err != nil {
			return err
		}
		d := fr.Data()
		if err := checkNode(d, id); err != nil {
			fr.Unpin()
			return err
		}
		if nodeType(d) == leafType {
			fr.Unpin()
			break
		}
		id = pager.PageID(entryVal(d, childFor(d, lo)))
		fr.Unpin()
	}
	// Walk the leaf chain. No well-formed chain is longer than the number
	// of allocated pages, so a longer walk proves a next-leaf cycle.
	maxSteps := int64(t.p.NumPages()) + 1
	for steps := int64(0); id != 0; steps++ {
		if steps >= maxSteps {
			return fmt.Errorf("%w: leaf chain longer than %d pages (cycle at page %d)", ErrCorrupt, maxSteps, id)
		}
		fr, err := t.p.Get(id)
		if err != nil {
			return err
		}
		d := fr.Data()
		if err := checkNode(d, id); err != nil {
			fr.Unpin()
			return err
		}
		n := nodeCount(d)
		for i := lowerBound(d, lo); i < n; i++ {
			k := entryKey(d, i)
			if k > hi {
				fr.Unpin()
				return nil
			}
			if !fn(k, entryVal(d, i)) {
				fr.Unpin()
				return nil
			}
		}
		id = nextLeaf(d)
		fr.Unpin()
	}
	return nil
}

// Height returns the number of levels (1 = a single leaf).
func (t *Tree) Height() (int, error) {
	h := 1
	id := t.root
	for {
		if h > maxDepth {
			return 0, fmt.Errorf("%w: descent exceeds %d levels at page %d", ErrCorrupt, maxDepth, id)
		}
		fr, err := t.p.Get(id)
		if err != nil {
			return 0, err
		}
		d := fr.Data()
		if err := checkNode(d, id); err != nil {
			fr.Unpin()
			return 0, err
		}
		if nodeType(d) == leafType {
			fr.Unpin()
			return h, nil
		}
		id = pager.PageID(entryVal(d, 0))
		fr.Unpin()
		h++
	}
}
