// Package heapfile stores fixed-size records in pages, addressed by record
// ID (RID). Terrain point records are laid out through this package; the
// physical append order is chosen by the caller (Hilbert order in the
// benchmark datasets) so that "(x, y) clustering is preserved as much as
// possible", as Section 6 of the paper requires.
package heapfile

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dmesh/internal/storage/pager"
)

// RID identifies a record within one heap file: sequential insert order.
type RID int64

const (
	magic      = 0x48454150 // "HEAP"
	headerPage = pager.PageID(0)
	// Data pages reserve a 2-byte record count at the front.
	pageHeader = 2
)

// ErrNoRecord is returned when a RID is out of range.
var ErrNoRecord = errors.New("heapfile: no such record")

// File is a heap file of fixed-size records.
type File struct {
	p       *pager.Pager
	recSize int
	perPage int
	num     int64
}

// Create initializes a new heap file of recSize-byte records on an empty
// pager.
func Create(p *pager.Pager, recSize int) (*File, error) {
	if recSize <= 0 || recSize > pager.PageSize-pageHeader {
		return nil, fmt.Errorf("heapfile: record size %d out of range (0, %d]", recSize, pager.PageSize-pageHeader)
	}
	if p.NumPages() != 0 {
		return nil, errors.New("heapfile: Create requires an empty pager")
	}
	fr, err := p.Allocate()
	if err != nil {
		return nil, err
	}
	if fr.ID() != headerPage {
		fr.Unpin()
		return nil, fmt.Errorf("heapfile: header allocated as page %d", fr.ID())
	}
	f := &File{p: p, recSize: recSize, perPage: (pager.PageSize - pageHeader) / recSize}
	f.writeHeader(fr.Data())
	fr.MarkDirty()
	fr.Unpin()
	return f, nil
}

// Open attaches to an existing heap file.
func Open(p *pager.Pager) (*File, error) {
	fr, err := p.Get(headerPage)
	if err != nil {
		return nil, fmt.Errorf("heapfile: open: %w", err)
	}
	defer fr.Unpin()
	d := fr.Data()
	if binary.LittleEndian.Uint32(d[0:]) != magic {
		return nil, errors.New("heapfile: bad magic")
	}
	recSize := int(binary.LittleEndian.Uint32(d[4:]))
	num := int64(binary.LittleEndian.Uint64(d[8:]))
	if recSize <= 0 || recSize > pager.PageSize-pageHeader {
		return nil, fmt.Errorf("heapfile: corrupt record size %d", recSize)
	}
	return &File{p: p, recSize: recSize, perPage: (pager.PageSize - pageHeader) / recSize, num: num}, nil
}

func (f *File) writeHeader(d []byte) {
	binary.LittleEndian.PutUint32(d[0:], magic)
	binary.LittleEndian.PutUint32(d[4:], uint32(f.recSize))
	binary.LittleEndian.PutUint64(d[8:], uint64(f.num))
}

// WithSession returns a read-only view of the file whose page accesses
// are additionally attributed to s (per-query disk-access accounting).
// The view shares the underlying pager pool; do not Append through it.
func (f *File) WithSession(s *pager.Session) *File {
	cp := *f
	cp.p = f.p.WithSession(s)
	return &cp
}

// RecordSize returns the fixed record size in bytes.
func (f *File) RecordSize() int { return f.recSize }

// NumRecords returns the number of records appended so far.
func (f *File) NumRecords() int64 { return f.num }

// PerPage returns how many records fit in one page.
func (f *File) PerPage() int { return f.perPage }

// rid -> (page, slot)
func (f *File) locate(rid RID) (pager.PageID, int) {
	return pager.PageID(1 + int64(rid)/int64(f.perPage)), int(int64(rid) % int64(f.perPage))
}

// Append stores rec (len RecordSize) and returns its RID. Records fill
// pages sequentially, so appending in a spatially clustered order yields a
// spatially clustered file.
func (f *File) Append(rec []byte) (RID, error) {
	if len(rec) != f.recSize {
		return 0, fmt.Errorf("heapfile: record length %d, want %d", len(rec), f.recSize)
	}
	rid := RID(f.num)
	page, slot := f.locate(rid)
	var fr *pager.Frame
	var err error
	if slot == 0 {
		fr, err = f.p.Allocate()
		if err != nil {
			return 0, err
		}
		if fr.ID() != page {
			fr.Unpin()
			return 0, fmt.Errorf("heapfile: expected page %d, allocated %d", page, fr.ID())
		}
	} else {
		fr, err = f.p.Get(page)
		if err != nil {
			return 0, err
		}
	}
	d := fr.Data()
	copy(d[pageHeader+slot*f.recSize:], rec)
	binary.LittleEndian.PutUint16(d[0:], uint16(slot+1))
	fr.MarkDirty()
	fr.Unpin()

	f.num++
	hdr, err := f.p.Get(headerPage)
	if err != nil {
		return 0, err
	}
	f.writeHeader(hdr.Data())
	hdr.MarkDirty()
	hdr.Unpin()
	return rid, nil
}

// Read copies record rid into buf (len >= RecordSize).
func (f *File) Read(rid RID, buf []byte) error {
	if rid < 0 || int64(rid) >= f.num {
		return fmt.Errorf("%w: rid %d of %d", ErrNoRecord, rid, f.num)
	}
	if len(buf) < f.recSize {
		return fmt.Errorf("heapfile: buffer %d smaller than record %d", len(buf), f.recSize)
	}
	page, slot := f.locate(rid)
	fr, err := f.p.Get(page)
	if err != nil {
		return err
	}
	copy(buf[:f.recSize], fr.Data()[pageHeader+slot*f.recSize:])
	fr.Unpin()
	return nil
}

// Scan calls fn for every record in RID order, sharing one buffer across
// calls; fn must not retain it. Scanning stops early if fn returns false.
func (f *File) Scan(fn func(rid RID, rec []byte) bool) error {
	buf := make([]byte, f.recSize)
	for rid := RID(0); int64(rid) < f.num; rid++ {
		if err := f.Read(rid, buf); err != nil {
			return err
		}
		if !fn(rid, buf) {
			return nil
		}
	}
	return nil
}
