package heapfile

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dmesh/internal/storage/pager"
)

// VarFile stores variable-length records in slotted pages. Unlike File,
// whose fixed record size makes RID -> page arithmetic, a VarFile RID
// directly encodes (page, slot), so records of any length up to
// MaxVarRecord are addressed in one page read. The connectivity-clustered
// Direct Mesh layout uses it to keep each node's whole connection list —
// and, for the rare lists that exceed a page, the overflow records —
// physically adjacent to the owning record.
//
// Page 0 is the header; data pages are slotted:
//
//	[2B slot count][2B free offset][records growing up ...
//	                ... free space ...][slot dir growing down]
//
// with one 4-byte directory entry (2B offset, 2B length) per record at
// the page tail. Records never move once appended, so RIDs are stable.
const (
	varMagic = 0x56484541 // "VHEA"
	// varPageHeader is the per-data-page bookkeeping: slot count + free
	// offset.
	varPageHeader = 4
	// varSlotSize is one slot-directory entry: record offset + length.
	varSlotSize = 4
	// MaxVarRecord is the largest record a VarFile accepts: one page
	// minus the page header and the record's own directory entry.
	MaxVarRecord = pager.PageSize - varPageHeader - varSlotSize
)

// VarRecordsPerPage estimates how many variable records of the given
// average byte length fit one slotted page, accounting for the page
// header and each record's slot-directory entry. Cost models use it as
// the density fallback when a file has no realized data pages to
// measure.
func VarRecordsPerPage(avgLen float64) float64 {
	return float64(pager.PageSize-varPageHeader) / (avgLen + varSlotSize)
}

// VarRID packs (page, slot) into the int64 record ID of a VarFile.
func VarRID(page pager.PageID, slot int) RID {
	return RID(int64(page)<<16 | int64(slot))
}

// split unpacks a VarFile RID.
func (rid RID) split() (pager.PageID, int) {
	return pager.PageID(rid >> 16), int(rid & 0xffff)
}

// VarFile is a heap file of variable-length records in slotted pages.
type VarFile struct {
	p   *pager.Pager
	num int64
	// last is the data page Append is currently filling (0 = none yet).
	last pager.PageID
}

// CreateVar initializes a new variable-record heap file on an empty pager.
func CreateVar(p *pager.Pager) (*VarFile, error) {
	if p.NumPages() != 0 {
		return nil, errors.New("heapfile: CreateVar requires an empty pager")
	}
	fr, err := p.Allocate()
	if err != nil {
		return nil, err
	}
	if fr.ID() != headerPage {
		fr.Unpin()
		return nil, fmt.Errorf("heapfile: header allocated as page %d", fr.ID())
	}
	f := &VarFile{p: p}
	f.writeHeader(fr.Data())
	fr.MarkDirty()
	fr.Unpin()
	return f, nil
}

// OpenVar attaches to an existing variable-record heap file.
func OpenVar(p *pager.Pager) (*VarFile, error) {
	fr, err := p.Get(headerPage)
	if err != nil {
		return nil, fmt.Errorf("heapfile: open: %w", err)
	}
	defer fr.Unpin()
	d := fr.Data()
	if binary.LittleEndian.Uint32(d[0:]) != varMagic {
		return nil, errors.New("heapfile: bad var-file magic")
	}
	num := int64(binary.LittleEndian.Uint64(d[8:]))
	last := pager.PageID(binary.LittleEndian.Uint64(d[16:]))
	if num < 0 || last >= p.NumPages() {
		return nil, fmt.Errorf("heapfile: corrupt var-file header (%d records, last page %d)", num, last)
	}
	return &VarFile{p: p, num: num, last: last}, nil
}

func (f *VarFile) writeHeader(d []byte) {
	binary.LittleEndian.PutUint32(d[0:], varMagic)
	binary.LittleEndian.PutUint32(d[4:], 0)
	binary.LittleEndian.PutUint64(d[8:], uint64(f.num))
	binary.LittleEndian.PutUint64(d[16:], uint64(f.last))
}

// WithSession returns a read-only view of the file whose page accesses
// are additionally attributed to s (per-query disk-access accounting).
// The view shares the underlying pager pool; do not Append through it.
func (f *VarFile) WithSession(s *pager.Session) *VarFile {
	cp := *f
	cp.p = f.p.WithSession(s)
	return &cp
}

// NumRecords returns the number of records appended so far.
func (f *VarFile) NumRecords() int64 { return f.num }

// DataPages returns the number of slotted data pages in use.
func (f *VarFile) DataPages() int64 {
	if f.last == 0 {
		return 0
	}
	return int64(f.last)
}

// Append stores rec (1..MaxVarRecord bytes) and returns its RID. Records
// fill the current page until it cannot hold the next one, then move to a
// fresh page — appending related records consecutively therefore
// co-locates them on the same or adjacent pages.
func (f *VarFile) Append(rec []byte) (RID, error) {
	if len(rec) == 0 || len(rec) > MaxVarRecord {
		return 0, fmt.Errorf("heapfile: var record length %d out of range (0, %d]", len(rec), MaxVarRecord)
	}
	var fr *pager.Frame
	var err error
	if f.last != 0 {
		fr, err = f.p.Get(f.last)
		if err != nil {
			return 0, err
		}
		d := fr.Data()
		count := int(binary.LittleEndian.Uint16(d[0:]))
		freeOff := int(binary.LittleEndian.Uint16(d[2:]))
		if freeOff+len(rec) > pager.PageSize-varSlotSize*(count+1) || count+1 > 0xffff {
			fr.Unpin()
			fr = nil
		}
	}
	if fr == nil {
		fr, err = f.p.Allocate()
		if err != nil {
			return 0, err
		}
		f.last = fr.ID()
		d := fr.Data()
		binary.LittleEndian.PutUint16(d[0:], 0)
		binary.LittleEndian.PutUint16(d[2:], varPageHeader)
	}
	d := fr.Data()
	count := int(binary.LittleEndian.Uint16(d[0:]))
	freeOff := int(binary.LittleEndian.Uint16(d[2:]))
	copy(d[freeOff:], rec)
	dirOff := pager.PageSize - varSlotSize*(count+1)
	binary.LittleEndian.PutUint16(d[dirOff:], uint16(freeOff))
	binary.LittleEndian.PutUint16(d[dirOff+2:], uint16(len(rec)))
	binary.LittleEndian.PutUint16(d[0:], uint16(count+1))
	binary.LittleEndian.PutUint16(d[2:], uint16(freeOff+len(rec)))
	rid := VarRID(fr.ID(), count)
	fr.MarkDirty()
	fr.Unpin()

	f.num++
	hdr, err := f.p.Get(headerPage)
	if err != nil {
		return 0, err
	}
	f.writeHeader(hdr.Data())
	hdr.MarkDirty()
	hdr.Unpin()
	return rid, nil
}

// VarPageSim predicts Append's page-fill decisions without touching a
// file: packing passes use it to know when the page they are filling
// rolls over. Add must mirror Append's fit rule exactly — a record goes
// on the current page unless its bytes plus its slot entry no longer fit
// (or the slot count saturates), in which case a fresh page starts.
type VarPageSim struct {
	freeOff, count int
}

// Add simulates appending a record of recLen bytes, reporting whether it
// started a new page. The zero VarPageSim has no page yet, so the first
// Add always reports true.
func (s *VarPageSim) Add(recLen int) (newPage bool) {
	if s.count == 0 || s.freeOff+recLen > pager.PageSize-varSlotSize*(s.count+1) || s.count+1 > 0xffff {
		s.freeOff, s.count = varPageHeader, 0
		newPage = true
	}
	s.freeOff += recLen
	s.count++
	return newPage
}

// slotEntry validates and returns the slot's record bounds. Corrupt
// directories (offsets into the header, past the directory, or crossing
// it) surface as errors rather than out-of-range panics.
func slotEntry(d []byte, slot, count int) (off, length int, err error) {
	dirOff := pager.PageSize - varSlotSize*(slot+1)
	off = int(binary.LittleEndian.Uint16(d[dirOff:]))
	length = int(binary.LittleEndian.Uint16(d[dirOff+2:]))
	if off < varPageHeader || off+length > pager.PageSize-varSlotSize*count {
		return 0, 0, fmt.Errorf("heapfile: corrupt slot %d (off %d, len %d)", slot, off, length)
	}
	return off, length, nil
}

// Read returns the record at rid, copied into dst if it has the capacity
// (the returned slice is dst resized, or a fresh allocation).
func (f *VarFile) Read(rid RID, dst []byte) ([]byte, error) {
	page, slot := rid.split()
	if page < 1 || page > f.last || slot < 0 {
		return nil, fmt.Errorf("%w: var rid %d", ErrNoRecord, rid)
	}
	fr, err := f.p.Get(page)
	if err != nil {
		return nil, err
	}
	defer fr.Unpin()
	d := fr.Data()
	count := int(binary.LittleEndian.Uint16(d[0:]))
	if slot >= count {
		return nil, fmt.Errorf("%w: var rid %d (page %d has %d slots)", ErrNoRecord, rid, page, count)
	}
	off, length, err := slotEntry(d, slot, count)
	if err != nil {
		return nil, err
	}
	if cap(dst) < length {
		dst = make([]byte, length)
	}
	dst = dst[:length]
	copy(dst, d[off:off+length])
	return dst, nil
}

// Scan calls fn for every record in (page, slot) order, sharing one
// buffer across calls; fn must not retain it. Scanning stops early if fn
// returns false.
func (f *VarFile) Scan(fn func(rid RID, rec []byte) bool) error {
	var buf []byte
	for page := pager.PageID(1); page <= f.last; page++ {
		fr, err := f.p.Get(page)
		if err != nil {
			return err
		}
		d := fr.Data()
		count := int(binary.LittleEndian.Uint16(d[0:]))
		for slot := 0; slot < count; slot++ {
			off, length, err := slotEntry(d, slot, count)
			if err != nil {
				fr.Unpin()
				return err
			}
			if cap(buf) < length {
				buf = make([]byte, length)
			}
			buf = buf[:length]
			copy(buf, d[off:off+length])
			if !fn(VarRID(page, slot), buf) {
				fr.Unpin()
				return nil
			}
		}
		fr.Unpin()
	}
	return nil
}
