package heapfile

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"dmesh/internal/storage/pager"
)

func newVarFile(t *testing.T) (*VarFile, pager.Backend) {
	t.Helper()
	b := pager.NewMemBackend()
	f, err := CreateVar(pager.New(b, 16))
	if err != nil {
		t.Fatal(err)
	}
	return f, b
}

// varRec builds a deterministic record of the given length tagged with i.
func varRec(i, length int) []byte {
	rec := make([]byte, length)
	for j := range rec {
		rec[j] = byte(i + j*31)
	}
	return rec
}

func TestVarFileRoundTrip(t *testing.T) {
	f, _ := newVarFile(t)
	lengths := []int{1, 7, 100, 512, 2000, MaxVarRecord, 3, MaxVarRecord - 1, 64}
	rids := make([]RID, len(lengths))
	for i, l := range lengths {
		rid, err := f.Append(varRec(i, l))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		rids[i] = rid
	}
	if f.NumRecords() != int64(len(lengths)) {
		t.Fatalf("NumRecords = %d, want %d", f.NumRecords(), len(lengths))
	}
	var buf []byte
	for i, rid := range rids {
		got, err := f.Read(rid, buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		buf = got
		if !bytes.Equal(got, varRec(i, lengths[i])) {
			t.Fatalf("record %d (len %d) mismatch", i, lengths[i])
		}
	}
}

func TestVarFileCoLocation(t *testing.T) {
	f, _ := newVarFile(t)
	// Records appended consecutively land on the same page until it fills.
	var rids []RID
	for i := 0; i < 10; i++ {
		rid, err := f.Append(varRec(i, 100))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	page0, _ := rids[0].split()
	for i, rid := range rids {
		if p, s := rid.split(); p != page0 || s != i {
			t.Fatalf("record %d on page %d slot %d, want page %d slot %d", i, p, s, page0, i)
		}
	}
}

func TestVarFilePageSpill(t *testing.T) {
	f, _ := newVarFile(t)
	// Two near-page-size records cannot share a page.
	r1, err := f.Append(varRec(1, MaxVarRecord))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := f.Append(varRec(2, MaxVarRecord))
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := r1.split()
	p2, _ := r2.split()
	if p2 != p1+1 {
		t.Fatalf("full records on pages %d, %d: want adjacent", p1, p2)
	}
	if f.DataPages() != 2 {
		t.Fatalf("DataPages = %d, want 2", f.DataPages())
	}
}

func TestVarFileRejectsBadLengths(t *testing.T) {
	f, _ := newVarFile(t)
	if _, err := f.Append(nil); err == nil {
		t.Fatal("empty record must be rejected")
	}
	if _, err := f.Append(make([]byte, MaxVarRecord+1)); err == nil {
		t.Fatal("oversized record must be rejected")
	}
}

func TestVarFileBadRID(t *testing.T) {
	f, _ := newVarFile(t)
	rid, err := f.Append(varRec(0, 32))
	if err != nil {
		t.Fatal(err)
	}
	page, _ := rid.split()
	for _, bad := range []RID{VarRID(page, 1), VarRID(page+1, 0), VarRID(0, 0), -1} {
		if _, err := f.Read(bad, nil); err == nil {
			t.Fatalf("rid %d must fail", bad)
		}
	}
}

func TestVarFileReopen(t *testing.T) {
	b := pager.NewMemBackend()
	p := pager.New(b, 16)
	f, err := CreateVar(p)
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 50; i++ {
		rid, err := f.Append(varRec(i, 50+i*7))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	g, err := OpenVar(pager.New(b, 16))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRecords() != f.NumRecords() || g.DataPages() != f.DataPages() {
		t.Fatalf("reopened: %d records / %d pages, want %d / %d",
			g.NumRecords(), g.DataPages(), f.NumRecords(), f.DataPages())
	}
	for i, rid := range rids {
		got, err := g.Read(rid, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, varRec(i, 50+i*7)) {
			t.Fatalf("record %d mismatch after reopen", i)
		}
	}
	// Appending after reopen keeps filling the last page.
	rid, err := g.Append(varRec(99, 10))
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Read(rid, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, varRec(99, 10)) {
		t.Fatal("append after reopen mismatch")
	}
}

func TestVarFileOpenRejectsFixedFile(t *testing.T) {
	b := pager.NewMemBackend()
	p := pager.New(b, 8)
	if _, err := Create(p, 64); err != nil {
		t.Fatal(err)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenVar(pager.New(b, 8)); err == nil {
		t.Fatal("OpenVar must reject a fixed-record heap file")
	}
	// And vice versa.
	b2 := pager.NewMemBackend()
	p2 := pager.New(b2, 8)
	if _, err := CreateVar(p2); err != nil {
		t.Fatal(err)
	}
	if err := p2.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(pager.New(b2, 8)); err == nil {
		t.Fatal("Open must reject a var-record heap file")
	}
}

func TestVarFileScan(t *testing.T) {
	f, _ := newVarFile(t)
	const n = 200
	for i := 0; i < n; i++ {
		if _, err := f.Append(varRec(i, 20+(i%50)*13)); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	err := f.Scan(func(rid RID, rec []byte) bool {
		if !bytes.Equal(rec, varRec(i, 20+(i%50)*13)) {
			t.Fatalf("scan record %d mismatch", i)
		}
		i++
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if i != n {
		t.Fatalf("scanned %d records, want %d", i, n)
	}
	// Early stop.
	i = 0
	if err := f.Scan(func(RID, []byte) bool { i++; return i < 5 }); err != nil {
		t.Fatal(err)
	}
	if i != 5 {
		t.Fatalf("early stop after %d records, want 5", i)
	}
}

func TestVarFileCorruptSlotDirectory(t *testing.T) {
	b := pager.NewMemBackend()
	p := pager.New(b, 8)
	f, err := CreateVar(p)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := f.Append(varRec(0, 64))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.FlushAll(); err != nil {
		t.Fatal(err)
	}
	// Smash the slot's length so it crosses the directory.
	page, _ := rid.split()
	raw := make([]byte, pager.PageSize)
	if err := b.ReadPage(page, raw); err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint16(raw[pager.PageSize-varSlotSize+2:], 0xffff)
	if err := b.WritePage(page, raw); err != nil {
		t.Fatal(err)
	}
	g, err := OpenVar(pager.New(b, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Read(rid, nil); err == nil {
		t.Fatal("corrupt slot directory must error, not panic")
	}
	if err := g.Scan(func(RID, []byte) bool { return true }); err == nil {
		t.Fatal("corrupt slot directory must fail the scan")
	}
}

func TestVarFileSessionAttribution(t *testing.T) {
	b := pager.NewMemBackend()
	p := pager.New(b, 4)
	f, err := CreateVar(p)
	if err != nil {
		t.Fatal(err)
	}
	var rids []RID
	for i := 0; i < 40; i++ {
		rid, err := f.Append(varRec(i, 400))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	s := pager.NewSession()
	view := f.WithSession(s)
	for _, rid := range rids {
		if _, err := view.Read(rid, nil); err != nil {
			t.Fatal(err)
		}
	}
	if s.Reads() == 0 {
		t.Fatal("session saw no reads")
	}
	if s.Reads() != p.Stats().Reads {
		t.Fatalf("session reads %d != pager reads %d", s.Reads(), p.Stats().Reads)
	}
}

func TestVarRIDPacking(t *testing.T) {
	for _, tc := range []struct {
		page pager.PageID
		slot int
	}{{1, 0}, {1, 5}, {1000, 65535}, {1 << 30, 7}} {
		rid := VarRID(tc.page, tc.slot)
		p, s := rid.split()
		if p != tc.page || s != tc.slot {
			t.Fatalf("VarRID(%d,%d) round-trips to (%d,%d)", tc.page, tc.slot, p, s)
		}
	}
	if fmt.Sprint(VarRID(1, 0)) != "65536" {
		t.Fatalf("unexpected RID encoding: %v", VarRID(1, 0))
	}
}
