package heapfile

import (
	"encoding/binary"
	"errors"
	"testing"

	"dmesh/internal/storage/pager"
)

func newFile(t *testing.T, recSize int) (*File, *pager.Pager) {
	t.Helper()
	p := pager.New(pager.NewMemBackend(), 16)
	f, err := Create(p, recSize)
	if err != nil {
		t.Fatal(err)
	}
	return f, p
}

func TestCreateValidation(t *testing.T) {
	p := pager.New(pager.NewMemBackend(), 16)
	if _, err := Create(p, 0); err == nil {
		t.Error("zero record size must fail")
	}
	if _, err := Create(p, pager.PageSize); err == nil {
		t.Error("record larger than page payload must fail")
	}
	if _, err := Create(p, 16); err != nil {
		t.Fatal(err)
	}
	// Second create on the same pager must fail (non-empty).
	if _, err := Create(p, 16); err == nil {
		t.Error("Create on non-empty pager must fail")
	}
}

func TestAppendRead(t *testing.T) {
	f, _ := newFile(t, 8)
	const n = 100
	for i := 0; i < n; i++ {
		rec := make([]byte, 8)
		binary.LittleEndian.PutUint64(rec, uint64(i*7))
		rid, err := f.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
		if rid != RID(i) {
			t.Fatalf("rid = %d, want %d", rid, i)
		}
	}
	if f.NumRecords() != n {
		t.Fatalf("NumRecords = %d", f.NumRecords())
	}
	buf := make([]byte, 8)
	for i := 0; i < n; i++ {
		if err := f.Read(RID(i), buf); err != nil {
			t.Fatal(err)
		}
		if got := binary.LittleEndian.Uint64(buf); got != uint64(i*7) {
			t.Fatalf("record %d = %d, want %d", i, got, i*7)
		}
	}
}

func TestAppendWrongSize(t *testing.T) {
	f, _ := newFile(t, 8)
	if _, err := f.Append(make([]byte, 7)); err == nil {
		t.Error("short record must fail")
	}
	if _, err := f.Append(make([]byte, 9)); err == nil {
		t.Error("long record must fail")
	}
}

func TestReadOutOfRange(t *testing.T) {
	f, _ := newFile(t, 8)
	buf := make([]byte, 8)
	if err := f.Read(0, buf); !errors.Is(err, ErrNoRecord) {
		t.Errorf("read empty file: %v", err)
	}
	f.Append(make([]byte, 8))
	if err := f.Read(-1, buf); !errors.Is(err, ErrNoRecord) {
		t.Errorf("negative rid: %v", err)
	}
	if err := f.Read(1, buf); !errors.Is(err, ErrNoRecord) {
		t.Errorf("rid past end: %v", err)
	}
	if err := f.Read(0, make([]byte, 4)); err == nil {
		t.Error("short buffer must fail")
	}
}

func TestRecordsSpanPages(t *testing.T) {
	// 1000-byte records: 4 per page.
	f, p := newFile(t, 1000)
	if f.PerPage() != 4 {
		t.Fatalf("PerPage = %d, want 4", f.PerPage())
	}
	for i := 0; i < 9; i++ {
		rec := make([]byte, 1000)
		rec[0] = byte(i)
		if _, err := f.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Header + 3 data pages.
	if p.NumPages() != 4 {
		t.Fatalf("NumPages = %d, want 4", p.NumPages())
	}
	buf := make([]byte, 1000)
	for i := 0; i < 9; i++ {
		if err := f.Read(RID(i), buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(i) {
			t.Fatalf("record %d corrupted", i)
		}
	}
}

func TestPersistenceAcrossOpen(t *testing.T) {
	p := pager.New(pager.NewMemBackend(), 16)
	f, err := Create(p, 16)
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, 16)
	copy(rec, "persistent")
	if _, err := f.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}

	f2, err := Open(p)
	if err != nil {
		t.Fatal(err)
	}
	if f2.NumRecords() != 1 || f2.RecordSize() != 16 {
		t.Fatalf("reopened: n=%d size=%d", f2.NumRecords(), f2.RecordSize())
	}
	buf := make([]byte, 16)
	if err := f2.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf[:10]) != "persistent" {
		t.Fatalf("read back %q", buf)
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	p := pager.New(pager.NewMemBackend(), 16)
	fr, _ := p.Allocate() // page full of zeros, wrong magic
	fr.Unpin()
	if _, err := Open(p); err == nil {
		t.Fatal("Open must reject bad magic")
	}
}

func TestScan(t *testing.T) {
	f, _ := newFile(t, 8)
	for i := 0; i < 10; i++ {
		rec := make([]byte, 8)
		rec[0] = byte(i)
		f.Append(rec)
	}
	var seen []byte
	err := f.Scan(func(rid RID, rec []byte) bool {
		seen = append(seen, rec[0])
		return rec[0] < 5 // stop early
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 7 { // 0..5 pass, 5 stops... records 0-5 appended + stop check
		// records 0,1,2,3,4 return true; record 5 returns false -> 6 seen
		if len(seen) != 6 {
			t.Fatalf("scan visited %d records: %v", len(seen), seen)
		}
	}
}

func TestReadCostIsOnePage(t *testing.T) {
	// A cold point read must cost exactly one disk access — the property
	// the whole benchmark methodology rests on.
	f, p := newFile(t, 64)
	for i := 0; i < 200; i++ {
		f.Append(make([]byte, 64))
	}
	if err := p.DropCache(); err != nil {
		t.Fatal(err)
	}
	p.ResetStats()
	buf := make([]byte, 64)
	if err := f.Read(100, buf); err != nil {
		t.Fatal(err)
	}
	if s := p.Stats(); s.Reads != 1 {
		t.Fatalf("cold record read cost %d disk accesses, want 1", s.Reads)
	}
}
