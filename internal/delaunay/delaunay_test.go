package delaunay

import (
	"math"
	"math/rand"
	"testing"

	"dmesh/internal/geom"
)

func TestTooFewPoints(t *testing.T) {
	if _, err := Triangulate([]geom.Point2{{X: 0, Y: 0}, {X: 1, Y: 0}}); err == nil {
		t.Fatal("two points must be rejected")
	}
}

func TestDuplicatePointsRejected(t *testing.T) {
	pts := []geom.Point2{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 0}}
	if _, err := Triangulate(pts); err == nil {
		t.Fatal("duplicate points must be rejected")
	}
}

func TestSingleTriangle(t *testing.T) {
	pts := []geom.Point2{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}}
	tris, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != 1 {
		t.Fatalf("got %d triangles, want 1", len(tris))
	}
	if tris[0].Canon() != (geom.Triangle{A: 0, B: 1, C: 2}) {
		t.Fatalf("got %v", tris[0])
	}
}

func TestSquare(t *testing.T) {
	pts := []geom.Point2{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}}
	tris, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tris) != 2 {
		t.Fatalf("square: %d triangles, want 2", len(tris))
	}
}

// checkDelaunay verifies the empty-circumcircle property against every
// point (brute force).
func checkDelaunay(t *testing.T, pts []geom.Point2, tris []geom.Triangle) {
	t.Helper()
	for _, tr := range tris {
		a, b, c := pts[tr.A], pts[tr.B], pts[tr.C]
		if orient2d(a, b, c) <= 0 {
			t.Fatalf("triangle %v not CCW or degenerate", tr)
		}
		for i, p := range pts {
			if int64(i) == tr.A || int64(i) == tr.B || int64(i) == tr.C {
				continue
			}
			// A tolerance absorbs cocircular cases (e.g. grid squares).
			if inCircumcircleStrict(a, b, c, p, 1e-12) {
				t.Fatalf("point %d inside circumcircle of %v", i, tr)
			}
		}
	}
}

func inCircumcircleStrict(a, b, c, p geom.Point2, eps float64) bool {
	ax, ay := a.X-p.X, a.Y-p.Y
	bx, by := b.X-p.X, b.Y-p.Y
	cx, cy := c.X-p.X, c.Y-p.Y
	det := (ax*ax+ay*ay)*(bx*cy-cx*by) -
		(bx*bx+by*by)*(ax*cy-cx*ay) +
		(cx*cx+cy*cy)*(ax*by-bx*ay)
	return det > eps
}

func TestRandomPointsAreDelaunay(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		n := 30 + rng.Intn(120)
		pts := make([]geom.Point2, n)
		for i := range pts {
			pts[i] = geom.Point2{X: rng.Float64(), Y: rng.Float64()}
		}
		tris, err := Triangulate(pts)
		if err != nil {
			t.Fatal(err)
		}
		checkDelaunay(t, pts, tris)
	}
}

func TestEulerFormula(t *testing.T) {
	// For a Delaunay triangulation of n points with h hull points:
	// triangles = 2n - h - 2.
	rng := rand.New(rand.NewSource(7))
	n := 400
	pts := make([]geom.Point2, n)
	for i := range pts {
		pts[i] = geom.Point2{X: rng.Float64(), Y: rng.Float64()}
	}
	tris, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	h := convexHullSize(pts)
	want := 2*n - h - 2
	if len(tris) != want {
		t.Fatalf("triangles = %d, want 2n-h-2 = %d (n=%d h=%d)", len(tris), want, n, h)
	}
}

// convexHullSize computes the hull vertex count (Andrew's monotone chain).
func convexHullSize(pts []geom.Point2) int {
	p := append([]geom.Point2(nil), pts...)
	// Sort by (x, y).
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && (p[j].X < p[j-1].X || (p[j].X == p[j-1].X && p[j].Y < p[j-1].Y)); j-- {
			p[j], p[j-1] = p[j-1], p[j]
		}
	}
	var hull []geom.Point2
	for _, pt := range p {
		for len(hull) >= 2 && orient2d(hull[len(hull)-2], hull[len(hull)-1], pt) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, pt)
	}
	lower := len(hull)
	for i := len(p) - 2; i >= 0; i-- {
		pt := p[i]
		for len(hull) > lower && orient2d(hull[len(hull)-2], hull[len(hull)-1], pt) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, pt)
	}
	return len(hull) - 1
}

func TestTrianglesCoverHullArea(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 200
	pts := make([]geom.Point2, n)
	for i := range pts {
		pts[i] = geom.Point2{X: rng.Float64(), Y: rng.Float64()}
	}
	tris, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, tr := range tris {
		sum += math.Abs(orient2d(pts[tr.A], pts[tr.B], pts[tr.C])) / 2
	}
	hull := hullArea(pts)
	if math.Abs(sum-hull) > 1e-9 {
		t.Fatalf("triangle area %g != hull area %g", sum, hull)
	}
}

func hullArea(pts []geom.Point2) float64 {
	p := append([]geom.Point2(nil), pts...)
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && (p[j].X < p[j-1].X || (p[j].X == p[j-1].X && p[j].Y < p[j-1].Y)); j-- {
			p[j], p[j-1] = p[j-1], p[j]
		}
	}
	var hull []geom.Point2
	for _, pt := range p {
		for len(hull) >= 2 && orient2d(hull[len(hull)-2], hull[len(hull)-1], pt) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, pt)
	}
	lower := len(hull)
	for i := len(p) - 2; i >= 0; i-- {
		pt := p[i]
		for len(hull) > lower && orient2d(hull[len(hull)-2], hull[len(hull)-1], pt) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, pt)
	}
	hull = hull[:len(hull)-1]
	var area float64
	for i := 1; i+1 < len(hull); i++ {
		area += orient2d(hull[0], hull[i], hull[i+1]) / 2
	}
	return math.Abs(area)
}

func TestEdgesManifold(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 300
	pts := make([]geom.Point2, n)
	for i := range pts {
		pts[i] = geom.Point2{X: rng.Float64(), Y: rng.Float64()}
	}
	tris, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	use := map[[2]int64]int{}
	for _, tr := range tris {
		for _, e := range [][2]int64{{tr.A, tr.B}, {tr.B, tr.C}, {tr.A, tr.C}} {
			if e[0] > e[1] {
				e[0], e[1] = e[1], e[0]
			}
			use[e]++
		}
	}
	for e, c := range use {
		if c > 2 {
			t.Fatalf("edge %v used by %d triangles", e, c)
		}
	}
}

func TestGridPoints(t *testing.T) {
	// Regular grids are the worst case for cocircularity; the result must
	// still be a valid triangulation of the square.
	var pts []geom.Point2
	const k = 8
	for j := 0; j < k; j++ {
		for i := 0; i < k; i++ {
			pts = append(pts, geom.Point2{X: float64(i) / (k - 1), Y: float64(j) / (k - 1)})
		}
	}
	tris, err := Triangulate(pts)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * (k - 1) * (k - 1)
	if len(tris) != want {
		t.Fatalf("grid: %d triangles, want %d", len(tris), want)
	}
	var sum float64
	for _, tr := range tris {
		sum += math.Abs(orient2d(pts[tr.A], pts[tr.B], pts[tr.C])) / 2
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("grid triangulation area %g, want 1", sum)
	}
}

func BenchmarkTriangulate1k(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	pts := make([]geom.Point2, 1000)
	for i := range pts {
		pts[i] = geom.Point2{X: rng.Float64(), Y: rng.Float64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Triangulate(pts); err != nil {
			b.Fatal(err)
		}
	}
}
