// Package delaunay computes 2D Delaunay triangulations with the Bowyer-
// Watson algorithm. The paper's terrain sources are "regular or irregular
// mesh[es] of millions of 3D points"; regular grids are triangulated
// directly by internal/mesh, while irregular point sets (survey data,
// LIDAR-style samples) are triangulated here before simplification.
//
// Instead of a finite super triangle — whose corners end up inside the
// huge circumcircles of near-collinear hull triangles and corrupt the
// triangulation near the boundary — the implementation uses the ghost-
// vertex convention: one symbolic vertex at infinity closes every hull
// edge with a "ghost triangle", and the in-circumcircle predicate for a
// ghost degenerates to a half-plane test beyond its hull edge. Insertion
// order follows the Hilbert curve, so the walking point locator starts
// near its target.
package delaunay

import (
	"errors"
	"fmt"
	"sort"

	"dmesh/internal/geom"
)

// ghost is the symbolic vertex at infinity.
const ghost = -1

// Triangulate returns the Delaunay triangulation of points as index
// triples into the input slice, triangles oriented counter-clockwise.
// Duplicate points are rejected; fewer than three points, or an entirely
// collinear input, are errors.
func Triangulate(points []geom.Point2) ([]geom.Triangle, error) {
	n := len(points)
	if n < 3 {
		return nil, fmt.Errorf("delaunay: need at least 3 points, got %d", n)
	}
	seen := make(map[geom.Point2]int, n)
	for i, p := range points {
		if j, dup := seen[p]; dup {
			return nil, fmt.Errorf("delaunay: points %d and %d coincide at %v", j, i, p)
		}
		seen[p] = i
	}

	// Hilbert insertion order: spatial coherence keeps the walk short.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return geom.HilbertKey(points[order[a]]) < geom.HilbertKey(points[order[b]])
	})

	// The initial triangle needs three non-collinear points: keep the
	// first two, then pull forward the first point off their line.
	k := -1
	for j := 2; j < n; j++ {
		if orient2d(points[order[0]], points[order[1]], points[order[j]]) != 0 {
			k = j
			break
		}
	}
	if k == -1 {
		return nil, errors.New("delaunay: all points are collinear")
	}
	order[2], order[k] = order[k], order[2]

	t := newTriangulator(points, order[0], order[1], order[2])
	for _, i := range order[3:] {
		if err := t.insert(i); err != nil {
			return nil, err
		}
	}
	return t.result(), nil
}

// tri is one triangle of the working triangulation. Vertices index the
// point slice (or are the ghost); neighbor k sits across the edge
// opposite vertex k (edge (v[k+1], v[k+2])).
type tri struct {
	v     [3]int
	n     [3]int
	alive bool
}

type triangulator struct {
	pts  []geom.Point2
	tris []tri
	last int // most recently created triangle: the walk's start
}

func newTriangulator(points []geom.Point2, a, b, c int) *triangulator {
	if orient2d(points[a], points[b], points[c]) < 0 {
		b, c = c, b
	}
	t := &triangulator{pts: points}
	// Real triangle 0 plus one ghost per CCW hull edge: hull edge (u->v)
	// gets ghost (v, u, ghost), whose conflict region is the open half-
	// plane beyond the edge.
	t.tris = append(t.tris,
		tri{v: [3]int{a, b, c}, n: [3]int{2, 3, 1}, alive: true},     // 0: real
		tri{v: [3]int{b, a, ghost}, n: [3]int{3, 2, 0}, alive: true}, // 1: beyond (a,b)
		tri{v: [3]int{c, b, ghost}, n: [3]int{1, 3, 0}, alive: true}, // 2: beyond (b,c)
		tri{v: [3]int{a, c, ghost}, n: [3]int{2, 1, 0}, alive: true}, // 3: beyond (c,a)
	)
	return t
}

// orient2d returns twice the signed area of (a, b, c): positive when
// counter-clockwise.
func orient2d(a, b, c geom.Point2) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// inCircumcircle reports whether p lies strictly inside the circumcircle
// of the counter-clockwise triangle (a, b, c).
func inCircumcircle(a, b, c, p geom.Point2) bool {
	ax, ay := a.X-p.X, a.Y-p.Y
	bx, by := b.X-p.X, b.Y-p.Y
	cx, cy := c.X-p.X, c.Y-p.Y
	det := (ax*ax+ay*ay)*(bx*cy-cx*by) -
		(bx*bx+by*by)*(ax*cy-cx*ay) +
		(cx*cx+cy*cy)*(ax*by-bx*ay)
	return det > 0
}

// ghostIndex returns the position of the ghost vertex, or -1 for a real
// triangle.
func (tr *tri) ghostIndex() int {
	for k, v := range tr.v {
		if v == ghost {
			return k
		}
	}
	return -1
}

// conflicts reports whether inserting p must remove triangle ti. For real
// triangles this is the circumcircle test; for ghosts the circumcircle
// degenerates to the open half-plane beyond the hull edge, plus the edge
// segment itself (a point landing exactly on the hull boundary).
func (t *triangulator) conflicts(ti int, p geom.Point2) bool {
	tr := &t.tris[ti]
	g := tr.ghostIndex()
	if g == -1 {
		return inCircumcircle(t.pts[tr.v[0]], t.pts[tr.v[1]], t.pts[tr.v[2]], p)
	}
	u := t.pts[tr.v[(g+1)%3]]
	v := t.pts[tr.v[(g+2)%3]]
	o := orient2d(u, v, p)
	if o > 0 {
		return true
	}
	if o < 0 {
		return false
	}
	// Collinear with the hull edge: conflict when p lies between u and v
	// (it lands on the hull boundary and must split this edge).
	return u.Sub(p).Dot(v.Sub(p)) < 0
}

// locate walks across real triangles toward p, returning a triangle that
// conflicts with p (a real triangle containing it, or a ghost when p lies
// outside the current hull).
func (t *triangulator) locate(p geom.Point2) (int, error) {
	cur := t.last
	if !t.tris[cur].alive || t.tris[cur].ghostIndex() != -1 {
		cur = -1
		for i := len(t.tris) - 1; i >= 0; i-- {
			if t.tris[i].alive && t.tris[i].ghostIndex() == -1 {
				cur = i
				break
			}
		}
		if cur == -1 {
			return 0, errors.New("delaunay: no live real triangle")
		}
	}
	for steps := 0; steps < 4*len(t.tris)+16; steps++ {
		tr := &t.tris[cur]
		next := -1
		for k := 0; k < 3; k++ {
			a := t.pts[tr.v[(k+1)%3]]
			b := t.pts[tr.v[(k+2)%3]]
			if orient2d(a, b, p) < 0 {
				next = tr.n[k]
				break
			}
		}
		if next == -1 {
			return cur, nil // containing real triangle
		}
		if t.tris[next].ghostIndex() != -1 {
			return next, nil // p is outside the hull, beyond this edge
		}
		cur = next
	}
	return 0, errors.New("delaunay: point location did not terminate")
}

// insert adds point pi with Bowyer-Watson: grow the conflict cavity from
// the located triangle, remove it, and fan new triangles from pi around
// the cavity boundary.
func (t *triangulator) insert(pi int) error {
	p := t.pts[pi]
	start, err := t.locate(p)
	if err != nil {
		return err
	}
	if !t.conflicts(start, p) {
		// A real triangle contains p on its boundary without conflicting
		// only in degenerate numeric corners; its circumcircle test should
		// hold whenever p is inside. Treat as conflicting regardless.
		if t.tris[start].ghostIndex() != -1 {
			return fmt.Errorf("delaunay: located ghost does not conflict with point %d", pi)
		}
	}
	conflict := map[int]bool{start: true}
	stack := []int{start}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range t.tris[cur].n {
			if nb < 0 || conflict[nb] || !t.tris[nb].alive {
				continue
			}
			if t.conflicts(nb, p) {
				conflict[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	// Cavity boundary: directed edges (a, b) of conflict triangles whose
	// cross-edge neighbor survives. They wind CCW around the cavity.
	type bedge struct {
		a, b    int
		outside int
	}
	var boundary []bedge
	for ti := range conflict {
		tr := &t.tris[ti]
		for k := 0; k < 3; k++ {
			nb := tr.n[k]
			if nb >= 0 && conflict[nb] {
				continue
			}
			boundary = append(boundary, bedge{a: tr.v[(k+1)%3], b: tr.v[(k+2)%3], outside: nb})
		}
	}
	for ti := range conflict {
		t.tris[ti].alive = false
	}
	// Fan around pi: one triangle per boundary edge. The boundary cycle
	// visits each vertex once, so linking by shared endpoints is exact.
	newIdx := make([]int, len(boundary))
	byFirst := make(map[int]int, len(boundary)) // edge start vertex -> fan triangle
	bySecond := make(map[int]int, len(boundary))
	for i, be := range boundary {
		nt := tri{v: [3]int{pi, be.a, be.b}, n: [3]int{be.outside, -1, -1}, alive: true}
		idx := len(t.tris)
		t.tris = append(t.tris, nt)
		newIdx[i] = idx
		byFirst[be.a] = idx
		bySecond[be.b] = idx
		if be.outside >= 0 {
			out := &t.tris[be.outside]
			for k := 0; k < 3; k++ {
				x, y := out.v[(k+1)%3], out.v[(k+2)%3]
				if (x == be.a && y == be.b) || (x == be.b && y == be.a) {
					out.n[k] = idx
				}
			}
		}
	}
	for i, be := range boundary {
		// Edge opposite v[1]=be.a is (be.b, pi): shared with the fan
		// triangle whose boundary edge starts at be.b. Edge opposite
		// v[2]=be.b is (pi, be.a): shared with the one ending at be.a.
		t.tris[newIdx[i]].n[1] = byFirst[be.b]
		t.tris[newIdx[i]].n[2] = bySecond[be.a]
	}
	t.last = newIdx[0]
	return nil
}

// result extracts the real triangles, CCW-oriented.
func (t *triangulator) result() []geom.Triangle {
	var out []geom.Triangle
	for i := range t.tris {
		tr := &t.tris[i]
		if !tr.alive || tr.ghostIndex() != -1 {
			continue
		}
		a, b, c := tr.v[0], tr.v[1], tr.v[2]
		if orient2d(t.pts[a], t.pts[b], t.pts[c]) < 0 {
			b, c = c, b
		}
		out = append(out, geom.Triangle{A: int64(a), B: int64(b), C: int64(c)})
	}
	return out
}
