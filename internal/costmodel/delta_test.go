package costmodel

import (
	"testing"

	"dmesh/internal/geom"
)

func TestEstimateBoxesSums(t *testing.T) {
	tr := buildTree(t, 2000, 3)
	m, err := FromRTree(tr, unitSpace())
	if err != nil {
		t.Fatal(err)
	}
	a := geom.Box{MinX: 0.1, MinY: 0.1, MinE: 0.1, MaxX: 0.3, MaxY: 0.3, MaxE: 0.3}
	b := geom.Box{MinX: 0.5, MinY: 0.5, MinE: 0.5, MaxX: 0.8, MaxY: 0.8, MaxE: 0.8}
	if got, want := m.EstimateBoxes([]geom.Box{a, b}), m.EstimateDA(a)+m.EstimateDA(b); got != want {
		t.Fatalf("EstimateBoxes = %g, want %g", got, want)
	}
	if got := m.EstimateBoxes(nil); got != 0 {
		t.Fatalf("EstimateBoxes(nil) = %g, want 0", got)
	}
}

func TestDeltaDecision(t *testing.T) {
	tr := buildTree(t, 2000, 4)
	m, err := FromRTree(tr, unitSpace())
	if err != nil {
		t.Fatal(err)
	}
	target := []geom.Box{{MinX: 0.1, MinY: 0.1, MinE: 0.1, MaxX: 0.6, MaxY: 0.6, MaxE: 0.6}}

	// Nothing new to fetch: the delta plan is free and must win.
	useDelta, fullDA, deltaDA := m.DeltaDecision(target, nil)
	if !useDelta || deltaDA != 0 || fullDA <= 0 {
		t.Fatalf("empty delta: useDelta=%v full=%g delta=%g", useDelta, fullDA, deltaDA)
	}

	// Fragments identical to the target volume: no predicted gain, so
	// the engine must prefer the clean full requery.
	useDelta, fullDA, deltaDA = m.DeltaDecision(target, target)
	if useDelta || deltaDA != fullDA {
		t.Fatalf("identical delta: useDelta=%v full=%g delta=%g", useDelta, fullDA, deltaDA)
	}

	// A thin uncovered slab must be predicted cheaper than the full box.
	frag := target[0]
	frag.MinY = frag.MaxY - 0.05
	useDelta, fullDA, deltaDA = m.DeltaDecision(target, []geom.Box{frag})
	if !useDelta || deltaDA >= fullDA {
		t.Fatalf("thin delta: useDelta=%v full=%g delta=%g", useDelta, fullDA, deltaDA)
	}
}
