package costmodel

import "dmesh/internal/geom"

// EstimateBoxes sums formula (1) over a set of query boxes, one
// independent range query per box. No sharing credit is applied between
// boxes: a coherent query's delta fragments are narrow and rarely
// co-resident in the same index subtree, and overcounting only biases
// the decision toward the safe full requery.
func (m *Model) EstimateBoxes(boxes []geom.Box) float64 {
	var sum float64
	for _, b := range boxes {
		sum += m.EstimateDA(b)
	}
	return sum
}

// DeltaDecision compares answering a moved query volume incrementally
// (fetch only the uncovered fragments) against from scratch (refetch
// the whole target volume). It returns the two formula (1) estimates
// and whether the delta plan is predicted strictly cheaper — when the
// viewpoint jumps, the fragments degenerate to (roughly) the full
// target and the coherent engine falls back to a clean full query.
func (m *Model) DeltaDecision(target, fragments []geom.Box) (useDelta bool, fullDA, deltaDA float64) {
	fullDA = m.EstimateBoxes(target)
	deltaDA = m.EstimateBoxes(fragments)
	return deltaDA < fullDA, fullDA, deltaDA
}
