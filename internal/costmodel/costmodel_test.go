package costmodel

import (
	"math"
	"math/rand"
	"testing"

	"dmesh/internal/geom"
	"dmesh/internal/rtree"
	"dmesh/internal/storage/pager"
)

func buildTree(t testing.TB, n int, seed int64) *rtree.Tree {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	items := make([]rtree.Item, n)
	for i := range items {
		x, y := rng.Float64(), rng.Float64()
		lo := rng.Float64() * 0.8
		items[i] = rtree.Item{Box: geom.VerticalSegment(x, y, lo, lo+rng.Float64()*0.2), Ref: int64(i)}
	}
	p := pager.New(pager.NewMemBackend(), 8192)
	tr, err := rtree.BulkLoad(p, items)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func unitSpace() geom.Box { return geom.Box{MaxX: 1, MaxY: 1, MaxE: 1} }

func TestFromRTreeValidation(t *testing.T) {
	tr := buildTree(t, 100, 1)
	if _, err := FromRTree(tr, geom.Box{}); err == nil {
		t.Fatal("zero-volume space must be rejected")
	}
	m, err := FromRTree(tr, unitSpace())
	if err != nil {
		t.Fatal(err)
	}
	nn, err := tr.NumNodes()
	if err != nil {
		t.Fatal(err)
	}
	if m.NumNodes() != nn {
		t.Fatalf("model has %d nodes, tree has %d", m.NumNodes(), nn)
	}
}

func TestEstimateMonotoneInQuerySize(t *testing.T) {
	tr := buildTree(t, 5000, 2)
	m, err := FromRTree(tr, unitSpace())
	if err != nil {
		t.Fatal(err)
	}
	small := m.EstimateDA(geom.Box{MinX: 0.4, MinY: 0.4, MinE: 0.4, MaxX: 0.5, MaxY: 0.5, MaxE: 0.5})
	large := m.EstimateDA(geom.Box{MinX: 0.1, MinY: 0.1, MinE: 0.1, MaxX: 0.9, MaxY: 0.9, MaxE: 0.9})
	if small <= 0 || large <= small {
		t.Fatalf("estimates not monotone: small=%g large=%g", small, large)
	}
	// The full-space query must estimate at least the node count (every
	// node is visited).
	full := m.EstimateDA(unitSpace())
	if full < float64(m.NumNodes()) {
		t.Fatalf("full-space estimate %g below node count %d", full, m.NumNodes())
	}
}

func TestEstimateTracksActualDA(t *testing.T) {
	// The estimate should correlate with reality: a thin plane query must
	// be estimated well below a tall cube query.
	tr := buildTree(t, 20000, 3)
	m, err := FromRTree(tr, unitSpace())
	if err != nil {
		t.Fatal(err)
	}
	r := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8}
	thin := m.EstimateDA(geom.BoxFromRect(r, 0.5, 0.5))
	tall := m.EstimateDA(geom.BoxFromRect(r, 0.0, 1.0))
	if thin >= tall/2 {
		t.Fatalf("thin plane estimate %g not clearly below tall cube %g", thin, tall)
	}
}

func TestPlanStripsFlatPlaneIsSingleBase(t *testing.T) {
	tr := buildTree(t, 5000, 4)
	m, err := FromRTree(tr, unitSpace())
	if err != nil {
		t.Fatal(err)
	}
	qp := geom.QueryPlane{R: geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.9, MaxY: 0.9}, EMin: 0.3, EMax: 0.3, Axis: 1}
	strips := m.PlanStrips(qp, 0)
	if len(strips) != 1 {
		t.Fatalf("flat plane planned %d strips, want 1", len(strips))
	}
	if strips[0].ELow != 0.3 || strips[0].EHigh != 0.3 {
		t.Fatalf("flat strip LOD range [%g,%g]", strips[0].ELow, strips[0].EHigh)
	}
}

func TestPlanStripsSteepPlaneSplits(t *testing.T) {
	tr := buildTree(t, 20000, 5)
	m, err := FromRTree(tr, unitSpace())
	if err != nil {
		t.Fatal(err)
	}
	qp := geom.QueryPlane{R: geom.Rect{MinX: 0.05, MinY: 0.05, MaxX: 0.95, MaxY: 0.95}, EMin: 0.0, EMax: 0.9, Axis: 1}
	strips := m.PlanStrips(qp, 0)
	if len(strips) < 2 {
		t.Fatalf("steep plane planned %d strips", len(strips))
	}
	// Strips must cover the ROI contiguously along y and hug the plane.
	total := 0.0
	for _, s := range strips {
		total += s.R.Height()
		if s.EHigh < s.ELow {
			t.Fatalf("inverted strip LOD range: %+v", s)
		}
		wantLo, wantHi := qp.EAt(0, s.R.MinY), qp.EAt(0, s.R.MaxY)
		if math.Abs(s.ELow-wantLo) > 1e-12 || math.Abs(s.EHigh-wantHi) > 1e-12 {
			t.Fatalf("strip LOD range [%g,%g], plane says [%g,%g]", s.ELow, s.EHigh, wantLo, wantHi)
		}
	}
	if math.Abs(total-qp.R.Height()) > 1e-9 {
		t.Fatalf("strips cover %g of ROI height %g", total, qp.R.Height())
	}
	// Planned total volume must not exceed the single-base cube's volume.
	single := geom.BoxFromRect(qp.R, qp.EMin, qp.EMax).Volume()
	var planned float64
	for _, s := range strips {
		planned += s.Box().Volume()
	}
	if planned > single {
		t.Fatalf("planned volume %g exceeds single-base %g", planned, single)
	}
}

func TestPlanStripsRespectsBudget(t *testing.T) {
	tr := buildTree(t, 20000, 6)
	m, err := FromRTree(tr, unitSpace())
	if err != nil {
		t.Fatal(err)
	}
	qp := geom.QueryPlane{R: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, EMin: 0, EMax: 1, Axis: 1}
	strips := m.PlanStrips(qp, 3)
	if len(strips) > 3 {
		t.Fatalf("budget 3 produced %d strips", len(strips))
	}
}

func TestPlanStripsAxisX(t *testing.T) {
	tr := buildTree(t, 10000, 7)
	m, err := FromRTree(tr, unitSpace())
	if err != nil {
		t.Fatal(err)
	}
	qp := geom.QueryPlane{R: geom.Rect{MinX: 0, MinY: 0.4, MaxX: 1, MaxY: 0.6}, EMin: 0, EMax: 0.8, Axis: 0}
	strips := m.PlanStrips(qp, 0)
	total := 0.0
	for _, s := range strips {
		total += s.R.Width()
		if s.R.MinY != 0.4 || s.R.MaxY != 0.6 {
			t.Fatalf("axis-0 split must not cut y: %+v", s.R)
		}
	}
	if math.Abs(total-1) > 1e-9 {
		t.Fatalf("x strips cover %g of width 1", total)
	}
}
