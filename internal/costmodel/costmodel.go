// Package costmodel implements the R-tree disk-access estimation and the
// multi-base query optimizer of Section 5.3 of the paper.
//
// The expected number of disk accesses for a range query q over an R-tree
// with N nodes is (formula (1), after Kamel & Faloutsos / Pagel et al.):
//
//	DA(R, q) = Σ_i (qx + wi) · (qy + hi) · (qz + di)
//
// with all quantities normalized to the data space. A viewpoint-dependent
// query plane can be covered by one query cube (single base) or several
// smaller cubes hugging the plane (multi base); splitting a cube in the
// middle of the LOD-gradient axis maximizes the volume reduction (the
// paper's analysis of formula (9)), and the split is worthwhile exactly
// when formula (7) predicts fewer disk accesses. The optimizer applies the
// split recursively until no further split is predicted to help.
package costmodel

import (
	"errors"
	"fmt"

	"dmesh/internal/geom"
	"dmesh/internal/rtree"
)

// Model holds the normalized node extents of one R*-tree. Building it
// scans the tree once (a once-off cost, like the paper's index statistics,
// not charged to queries).
//
// The paper stores DM points directly in the R-tree, so formula (1) covers
// all I/O. This repository stores records in a heap file clustered on the
// index, so a visited leaf implies additional data-page accesses; the
// data factor scales the leaf terms accordingly (leaf entries per heap
// page). With DataFactor left at zero the model is exactly formula (1).
type Model struct {
	space       geom.Box
	inner       [][3]float64 // normalized (w, h, d) of directory nodes
	leaves      [][3]float64 // normalized (w, h, d) of leaf nodes
	leafEntries int          // total data entries across leaves
	dataFactor  float64      // extra data pages per visited leaf
	// sharedPool declares that the strips of one multi-base query share a
	// buffer pool, so a node straddling two adjacent strips is read once,
	// not twice. The paper's formula (2) charges every strip its full
	// independent cost; SetSharedPool(true) subtracts the double-counted
	// boundary terms, which is how this repository's engine behaves.
	sharedPool bool
}

// FromRTree collects node extents from t, normalizing by the data space.
func FromRTree(t *rtree.Tree, space geom.Box) (*Model, error) {
	if !space.Valid() || space.Volume() == 0 {
		return nil, errors.New("costmodel: data space must have positive volume")
	}
	m := &Model{space: space}
	err := t.Nodes(func(ni rtree.NodeInfo) bool {
		dims := [3]float64{
			ni.Box.Width() / space.Width(),
			ni.Box.Height() / space.Height(),
			ni.Box.Depth() / space.Depth(),
		}
		if ni.Level == 1 {
			m.leaves = append(m.leaves, dims)
			m.leafEntries += ni.Entries
		} else {
			m.inner = append(m.inner, dims)
		}
		return true
	})
	if err != nil {
		return nil, fmt.Errorf("costmodel: scan tree: %w", err)
	}
	return m, nil
}

// AvgLeafEntries returns the average number of data entries per leaf.
func (m *Model) AvgLeafEntries() float64 {
	if len(m.leaves) == 0 {
		return 0
	}
	return float64(m.leafEntries) / float64(len(m.leaves))
}

// SetDataFactor declares how many clustered data pages accompany each
// visited index leaf (records per leaf divided by records per data page).
// Zero restores the paper's pure-index formula.
func (m *Model) SetDataFactor(f float64) {
	if f < 0 {
		f = 0
	}
	m.dataFactor = f
}

// SetSharedPool selects the shared-buffer-pool variant of the split test
// (see the sharedPool field). Off by default: the paper's formula (7).
func (m *Model) SetSharedPool(on bool) { m.sharedPool = on }

// NumNodes returns the number of nodes the model covers.
func (m *Model) NumNodes() int { return len(m.inner) + len(m.leaves) }

// EstimateDA evaluates formula (1) for query box q, with leaf terms scaled
// by the data factor when one is set.
func (m *Model) EstimateDA(q geom.Box) float64 {
	qx := q.Width() / m.space.Width()
	qy := q.Height() / m.space.Height()
	qz := q.Depth() / m.space.Depth()
	var sum float64
	for _, d := range m.inner {
		sum += (qx + d[0]) * (qy + d[1]) * (qz + d[2])
	}
	leafWeight := 1 + m.dataFactor
	for _, d := range m.leaves {
		sum += leafWeight * (qx + d[0]) * (qy + d[1]) * (qz + d[2])
	}
	return sum
}

// Strip is one query cube of a multi-base plan: the sub-ROI and the LOD
// range its cube spans.
type Strip struct {
	R           geom.Rect
	ELow, EHigh float64
}

// Box returns the strip's query cube.
func (s Strip) Box() geom.Box { return geom.BoxFromRect(s.R, s.ELow, s.EHigh) }

// PlanStrips covers the query plane qp with cubes: starting from the
// single-base cube, it recursively splits at the middle of the LOD-
// gradient axis while the cost model predicts a disk-access gain, up to
// maxStrips cubes (0 means the default of 64). The returned strips are
// ordered along the gradient axis. A single returned strip is exactly the
// single-base plan.
//
// Without SetSharedPool the split test is the paper's formula (7),
// DA(q) > DA(q1) + DA(q2). With it, the double-counted boundary terms are
// credited back and a minimal gain of one page is required, matching an
// engine whose strips share a buffer pool.
func (m *Model) PlanStrips(qp geom.QueryPlane, maxStrips int) []Strip {
	if maxStrips <= 0 {
		maxStrips = 64
	}
	budget := maxStrips
	var out []Strip
	var rec func(r geom.Rect)
	rec = func(r geom.Rect) {
		strip := stripFor(qp, r)
		if budget <= 1 || tooThin(r, qp.Axis) {
			out = append(out, strip)
			return
		}
		r1, r2 := splitMid(r, qp.Axis)
		s1, s2 := stripFor(qp, r1), stripFor(qp, r2)
		stripDA := m.EstimateDA(strip.Box())
		gain := stripDA - m.EstimateDA(s1.Box()) - m.EstimateDA(s2.Box())
		threshold := 0.0
		if m.sharedPool {
			gain += m.boundaryShared(strip.Box(), qp.Axis)
			// Keep splitting while the predicted saving is at least 1% of
			// the strip's own estimate; as strips shrink toward the plane
			// the marginal saving vanishes and the recursion stops.
			threshold = 0.01 * stripDA
		}
		if gain > threshold {
			budget--
			rec(r1)
			rec(r2)
			return
		}
		out = append(out, strip)
	}
	rec(qp.R)
	return out
}

// boundaryShared estimates the disk accesses double-counted by two
// adjacent strips of q split across the gradient axis: the nodes
// straddling the boundary plane, which a shared buffer pool reads once.
func (m *Model) boundaryShared(q geom.Box, axis int) float64 {
	qx := q.Width() / m.space.Width()
	qy := q.Height() / m.space.Height()
	var sum float64
	visit := func(dims [][3]float64, weight float64) {
		for _, d := range dims {
			if axis == 0 {
				sum += weight * d[0] * (qy + d[1]) * d[2]
			} else {
				sum += weight * (qx + d[0]) * d[1] * d[2]
			}
		}
	}
	visit(m.inner, 1)
	visit(m.leaves, 1+m.dataFactor)
	return sum
}

// EqualStrips covers qp with exactly k equal strips along the gradient
// axis, ignoring the cost model — the fixed-split baseline the optimizer
// is compared against in ablations.
func EqualStrips(qp geom.QueryPlane, k int) []Strip {
	if k < 1 {
		k = 1
	}
	out := make([]Strip, 0, k)
	for i := 0; i < k; i++ {
		r := qp.R
		if qp.Axis == 0 {
			w := r.Width() / float64(k)
			r.MinX = qp.R.MinX + float64(i)*w
			r.MaxX = r.MinX + w
		} else {
			h := r.Height() / float64(k)
			r.MinY = qp.R.MinY + float64(i)*h
			r.MaxY = r.MinY + h
		}
		out = append(out, stripFor(qp, r))
	}
	return out
}

// stripFor builds the cube that covers qp's plane over sub-ROI r: its LOD
// range spans the plane's values across r (the rectangles of Figure 5).
func stripFor(qp geom.QueryPlane, r geom.Rect) Strip {
	var lo, hi float64
	if qp.Axis == 0 {
		lo, hi = qp.EAt(r.MinX, 0), qp.EAt(r.MaxX, 0)
	} else {
		lo, hi = qp.EAt(0, r.MinY), qp.EAt(0, r.MaxY)
	}
	if hi < lo {
		lo, hi = hi, lo
	}
	return Strip{R: r, ELow: lo, EHigh: hi}
}

func splitMid(r geom.Rect, axis int) (geom.Rect, geom.Rect) {
	if axis == 0 {
		mid := (r.MinX + r.MaxX) / 2
		return geom.Rect{MinX: r.MinX, MinY: r.MinY, MaxX: mid, MaxY: r.MaxY},
			geom.Rect{MinX: mid, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
	}
	mid := (r.MinY + r.MaxY) / 2
	return geom.Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: mid},
		geom.Rect{MinX: r.MinX, MinY: mid, MaxX: r.MaxX, MaxY: r.MaxY}
}

// tooThin stops splitting when a strip's gradient-axis extent is
// negligible (avoids degenerate slivers from unbounded recursion).
func tooThin(r geom.Rect, axis int) bool {
	const minExtent = 1e-6
	if axis == 0 {
		return r.Width() < minExtent
	}
	return r.Height() < minExtent
}

// DebugSplitGain exposes the split-decision quantities for diagnostics:
// the formula (7) gain and the boundary-shared credit for splitting q at
// the middle of the gradient axis.
func (m *Model) DebugSplitGain(qp geom.QueryPlane, r geom.Rect) (gain, shared float64) {
	strip := stripFor(qp, r)
	r1, r2 := splitMid(r, qp.Axis)
	s1, s2 := stripFor(qp, r1), stripFor(qp, r2)
	gain = m.EstimateDA(strip.Box()) - m.EstimateDA(s1.Box()) - m.EstimateDA(s2.Box())
	shared = m.boundaryShared(strip.Box(), qp.Axis)
	return gain, shared
}
