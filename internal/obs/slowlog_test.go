package obs

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestSlowLogThresholdAndOrder(t *testing.T) {
	l := NewSlowLog(4, 10*time.Millisecond)
	l.Observe("fast", 5*time.Millisecond, 1, nil)
	l.Observe("slow-a", 20*time.Millisecond, 10, nil)
	l.Observe("slow-b", 40*time.Millisecond, 20, nil)
	l.Observe("slow-c", 30*time.Millisecond, 15, nil)

	got := l.Worst(10)
	if len(got) != 3 {
		t.Fatalf("got %d entries, want 3 (threshold must drop the fast one)", len(got))
	}
	if got[0].Query != "slow-b" || got[1].Query != "slow-c" || got[2].Query != "slow-a" {
		t.Errorf("order = %s,%s,%s; want slow-b,slow-c,slow-a", got[0].Query, got[1].Query, got[2].Query)
	}
	if top := l.Worst(1); len(top) != 1 || top[0].Query != "slow-b" {
		t.Errorf("Worst(1) = %+v", top)
	}
}

func TestSlowLogRingEviction(t *testing.T) {
	l := NewSlowLog(3, 0)
	for i := 0; i < 10; i++ {
		l.Observe("q", time.Duration(i)*time.Millisecond, uint64(i), nil)
	}
	got := l.Worst(10)
	if len(got) != 3 {
		t.Fatalf("ring holds %d, want 3", len(got))
	}
	// Only the 3 most recent observations survive; they happen to also
	// be the slowest here.
	if got[0].DA != 9 || got[1].DA != 8 || got[2].DA != 7 {
		t.Errorf("ring kept wrong entries: %+v", got)
	}
}

func TestSlowLogTieBreakDeterministic(t *testing.T) {
	l := NewSlowLog(8, 0)
	for i := 0; i < 5; i++ {
		l.Observe("same", time.Millisecond, uint64(i), nil)
	}
	a, b := l.Worst(5), l.Worst(5)
	for i := range a {
		if a[i].Seq != b[i].Seq {
			t.Fatalf("tie order unstable at %d: %d vs %d", i, a[i].Seq, b[i].Seq)
		}
	}
	// Newer first on equal duration.
	for i := 1; i < len(a); i++ {
		if a[i-1].Seq < a[i].Seq {
			t.Errorf("equal durations not newest-first: seq %d before %d", a[i-1].Seq, a[i].Seq)
		}
	}
}

func TestSlowLogCapturesPhases(t *testing.T) {
	da := &fakeDA{}
	tr := NewTrace(da.read)
	tr.Begin(PhaseQuery)
	tr.Begin(PhaseFetch)
	da.n += 6
	tr.End()
	tr.End()

	l := NewSlowLog(2, 0)
	l.Observe("roi", time.Second, 6, tr)
	tr.Reset() // entry must not alias the reused trace

	got := l.Worst(1)
	if len(got) != 1 || len(got[0].Phases) != 2 {
		t.Fatalf("entry = %+v", got)
	}
	if got[0].Phases[1].Name != "dm_fetch" || got[0].Phases[1].DA != 6 {
		t.Errorf("phase breakdown = %+v", got[0].Phases)
	}
}

func TestSlowLogHandler(t *testing.T) {
	l := NewSlowLog(4, 0)
	l.Observe("roi", 2*time.Second, 12, nil)
	rec := httptest.NewRecorder()
	SlowLogHandler(l).ServeHTTP(rec, httptest.NewRequest("GET", "/slowlog?n=5", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var body struct {
		ThresholdNanos int64       `json:"threshold_nanos"`
		Entries        []SlowEntry `json:"entries"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(body.Entries) != 1 || body.Entries[0].DA != 12 {
		t.Errorf("body = %+v", body)
	}

	rec = httptest.NewRecorder()
	SlowLogHandler(l).ServeHTTP(rec, httptest.NewRequest("GET", "/slowlog?n=bogus", nil))
	if rec.Code != 400 {
		t.Errorf("bad n: status %d, want 400", rec.Code)
	}
}

// TestSlowLogConcurrentObserveWithTraces hammers one slow log from many
// goroutines, each observing with its own trace carrying spans — the
// -race regression for the wire-encoding path added to Observe. Every
// retained entry must carry a decodable wire trace whose total DA
// matches the entry's.
func TestSlowLogConcurrentObserveWithTraces(t *testing.T) {
	l := NewSlowLog(64, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr := NewTrace(nil)
			for i := 0; i < 50; i++ {
				tr.Reset()
				tr.Begin(PhaseQuery)
				tr.Begin(PhaseMaterialize)
				tr.AddDA(uint64(g + 1))
				tr.End()
				tr.End()
				l.Observe(fmt.Sprintf("q-%d-%d", g, i), time.Duration(i)*time.Microsecond, uint64(g+1), tr)
			}
		}(g)
	}
	wg.Wait()
	entries := l.Worst(0)
	if len(entries) != 64 {
		t.Fatalf("retained %d entries, want the full 64-capacity ring", len(entries))
	}
	for _, e := range entries {
		if e.TraceWire == "" {
			t.Fatalf("entry %q has no wire trace", e.Query)
		}
		buf, err := base64.StdEncoding.DecodeString(e.TraceWire)
		if err != nil {
			t.Fatalf("entry %q: wire not base64: %v", e.Query, err)
		}
		wt, err := DecodeTraceWire(buf)
		if err != nil {
			t.Fatalf("entry %q: %v", e.Query, err)
		}
		if wt.TotalDA() != e.DA {
			t.Errorf("entry %q: wire trace DA %d, entry DA %d", e.Query, wt.TotalDA(), e.DA)
		}
	}
}
