package obs

// ColdMeasurable is the store-side contract of a paper-style measured
// query: drop every buffer pool, zero the counters, run, read the
// disk-access total. dm.Store, dm.Session, and the PM/HDoV comparison
// stores all satisfy it.
type ColdMeasurable interface {
	DropCaches() error
	ResetStats()
	DiskAccesses() uint64
}

// MeasuredRun executes fn as a cold measured query: DropCaches +
// ResetStats first (the two halves of the prologue the paper's
// methodology requires and that callers keep forgetting one of), then
// fn, then the store's DA total. The DA count is returned even when fn
// fails, so error paths can still report partial cost.
func MeasuredRun(s ColdMeasurable, fn func() error) (uint64, error) {
	if err := s.DropCaches(); err != nil {
		return 0, err
	}
	s.ResetStats()
	err := fn()
	return s.DiskAccesses(), err
}
