package obs

import (
	"strings"
	"testing"
)

// fakeDA simulates a session disk-access counter.
type fakeDA struct{ n uint64 }

func (f *fakeDA) read() uint64 { return f.n }

func TestTraceSampledAttribution(t *testing.T) {
	da := &fakeDA{}
	tr := NewTrace(da.read)

	tr.Begin(PhaseQuery)
	tr.Begin(PhaseRTree)
	da.n += 3
	tr.End()
	tr.Begin(PhaseFetch)
	da.n += 10
	tr.Begin(PhaseOverflow)
	da.n += 4
	tr.End()
	da.n += 2
	tr.End()
	tr.Begin(PhaseTriangulate)
	tr.End()
	tr.End()

	if err := tr.CheckTotal(19); err != nil {
		t.Fatal(err)
	}
	bd := tr.Breakdown()
	want := map[Phase]uint64{
		PhaseQuery: 0, PhaseRTree: 3, PhaseFetch: 12,
		PhaseOverflow: 4, PhaseTriangulate: 0,
	}
	for p, w := range want {
		if bd[p] != w {
			t.Errorf("%s: self DA = %d, want %d", p, bd[p], w)
		}
	}
	if got := tr.TotalDA(); got != 19 {
		t.Errorf("TotalDA = %d, want 19", got)
	}
}

func TestTraceChargedAttribution(t *testing.T) {
	// Nil sampler + AddDA is the tile-cache mode: DA is counted through
	// per-flight sessions the trace cannot sample.
	tr := NewTrace(nil)
	tr.Begin(PhaseQuery)
	tr.Begin(PhaseCache)
	tr.Begin(PhaseMaterialize)
	tr.AddDA(7)
	tr.End()
	tr.End()
	tr.Begin(PhaseCache)
	tr.End() // hit: zero DA
	tr.Begin(PhaseStitch)
	tr.End()
	tr.End()

	if err := tr.CheckTotal(7); err != nil {
		t.Fatal(err)
	}
	bd := tr.Breakdown()
	if bd[PhaseMaterialize] != 7 {
		t.Errorf("materialize self DA = %d, want 7", bd[PhaseMaterialize])
	}
	if bd[PhaseCache] != 0 || bd[PhaseQuery] != 0 || bd[PhaseStitch] != 0 {
		t.Errorf("unexpected self DA outside materialize: %v", bd)
	}
}

func TestTraceMixedSampledAndCharged(t *testing.T) {
	da := &fakeDA{}
	tr := NewTrace(da.read)
	tr.Begin(PhaseQuery)
	da.n += 5
	tr.Begin(PhaseFetch)
	da.n += 2
	tr.AddDA(9) // out-of-band cost on top of sampled reads
	tr.End()
	tr.End()
	if err := tr.CheckTotal(16); err != nil {
		t.Fatal(err)
	}
	if bd := tr.Breakdown(); bd[PhaseFetch] != 11 || bd[PhaseQuery] != 5 {
		t.Errorf("breakdown = %v, want fetch=11 query=5", bd)
	}
}

func TestTraceCheckTotalFailures(t *testing.T) {
	da := &fakeDA{}
	tr := NewTrace(da.read)
	tr.Begin(PhaseQuery)
	if err := tr.CheckTotal(0); err == nil || !strings.Contains(err.Error(), "open") {
		t.Errorf("open span not detected: %v", err)
	}
	da.n += 2
	tr.End()
	if err := tr.CheckTotal(3); err == nil {
		t.Error("total mismatch not detected")
	}
	if err := tr.CheckTotal(2); err != nil {
		t.Errorf("correct total rejected: %v", err)
	}

	var nilTr *Trace
	if err := nilTr.CheckTotal(0); err != nil {
		t.Errorf("nil trace should pass zero total: %v", err)
	}
	if err := nilTr.CheckTotal(1); err == nil {
		t.Error("nil trace should fail nonzero total")
	}
}

func TestTraceResetKeepsArena(t *testing.T) {
	da := &fakeDA{}
	tr := NewTrace(da.read)
	for i := 0; i < 10; i++ {
		tr.Begin(PhaseQuery)
		tr.End()
	}
	tr.Reset()
	if len(tr.Spans()) != 0 {
		t.Fatalf("%d spans after Reset", len(tr.Spans()))
	}
	allocs := testing.AllocsPerRun(100, func() {
		tr.Reset()
		tr.Begin(PhaseQuery)
		tr.Begin(PhaseFetch)
		tr.End()
		tr.End()
	})
	if allocs != 0 {
		t.Errorf("reused trace allocates %.1f per query, want 0", allocs)
	}
}

func TestNilTraceZeroAlloc(t *testing.T) {
	var tr *Trace
	allocs := testing.AllocsPerRun(100, func() {
		tr.Begin(PhaseQuery)
		tr.AddDA(1)
		tr.End()
		tr.Reset()
	})
	if allocs != 0 {
		t.Errorf("nil trace allocates %.1f per op, want 0", allocs)
	}
}

func TestPhaseStatsDeterministicOrder(t *testing.T) {
	da := &fakeDA{}
	tr := NewTrace(da.read)
	tr.Begin(PhaseQuery)
	tr.Begin(PhaseTriangulate)
	tr.End()
	tr.Begin(PhaseRTree)
	da.n++
	tr.End()
	tr.End()
	ps := tr.PhaseStats()
	if len(ps) != 3 {
		t.Fatalf("got %d phases, want 3", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		if ps[i-1].Phase >= ps[i].Phase {
			t.Errorf("phase stats out of order: %s before %s", ps[i-1].Name, ps[i].Name)
		}
	}
}

func TestPhaseStrings(t *testing.T) {
	seen := map[string]bool{}
	for p := Phase(0); p < NumPhases; p++ {
		s := p.String()
		if s == "" || strings.HasPrefix(s, "phase(") {
			t.Errorf("phase %d has no name", p)
		}
		if seen[s] {
			t.Errorf("duplicate phase name %q", s)
		}
		seen[s] = true
	}
}
