package obs

import (
	"bytes"
	"testing"
)

// promRegistry builds a registry with one of each metric kind and some
// recorded values — the shape every shard exposes.
func promRegistry(scale uint64) *Registry {
	reg := NewRegistry()
	c := reg.Counter("test_requests_total", "requests served")
	c.Add(3 * scale)
	g := reg.Gauge("test_entries", "entries resident")
	g.Set(int64(7 * scale))
	h := reg.Histogram("test_latency_nanos", "request latency")
	h.Observe(100 * scale)
	h.Observe(2000 * scale)
	return reg
}

// TestParsePrometheusRoundTrip: the registry's own exposition page must
// parse back into the values the registry holds, and WriteText must be
// a fixed point of the parse (parse → write → parse is the identity).
func TestParsePrometheusRoundTrip(t *testing.T) {
	var page bytes.Buffer
	if err := promRegistry(1).WritePrometheus(&page); err != nil {
		t.Fatal(err)
	}
	snap, err := ParsePrometheus(bytes.NewReader(page.Bytes()))
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, page.Bytes())
	}
	if m := snap.Metrics["test_requests_total"]; m == nil || m.Kind != "counter" || m.Value != 3 {
		t.Errorf("counter parsed as %+v", m)
	}
	if m := snap.Metrics["test_entries"]; m == nil || m.Kind != "gauge" || m.Value != 7 {
		t.Errorf("gauge parsed as %+v", m)
	}
	h := snap.Metrics["test_latency_nanos"]
	if h == nil || h.Kind != "histogram" {
		t.Fatalf("histogram parsed as %+v", h)
	}
	if h.Count != 2 || h.Sum != 2100 {
		t.Errorf("histogram count/sum = %d/%d, want 2/2100", h.Count, h.Sum)
	}
	if len(h.Buckets) == 0 || h.Buckets[len(h.Buckets)-1].LE != "+Inf" {
		t.Errorf("histogram buckets %v: want a trailing +Inf bound", h.Buckets)
	}
	for i := 1; i < len(h.Buckets); i++ {
		if h.Buckets[i].Cum < h.Buckets[i-1].Cum {
			t.Errorf("bucket counts not cumulative: %v", h.Buckets)
		}
	}

	var out bytes.Buffer
	if err := snap.WriteText(&out); err != nil {
		t.Fatal(err)
	}
	snap2, err := ParsePrometheus(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, out.Bytes())
	}
	var out2 bytes.Buffer
	if err := snap2.WriteText(&out2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), out2.Bytes()) {
		t.Errorf("WriteText not a parse fixed point:\n%s\nvs\n%s", out.Bytes(), out2.Bytes())
	}
}

// TestMergePrometheus: merging N shard pages must sum counters, gauges,
// and histograms bucket-wise, deterministically — and the merged
// histogram must still be a well-formed cumulative distribution.
func TestMergePrometheus(t *testing.T) {
	parse := func(scale uint64) *PromSnapshot {
		t.Helper()
		var page bytes.Buffer
		if err := promRegistry(scale).WritePrometheus(&page); err != nil {
			t.Fatal(err)
		}
		snap, err := ParsePrometheus(bytes.NewReader(page.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	merged, err := MergePrometheus(parse(1), nil, parse(2)) // nil = unreachable shard
	if err != nil {
		t.Fatal(err)
	}
	if m := merged.Metrics["test_requests_total"]; m.Value != 9 {
		t.Errorf("merged counter %d, want 3+6=9", m.Value)
	}
	if m := merged.Metrics["test_entries"]; m.Value != 21 {
		t.Errorf("merged gauge %d, want 7+14=21", m.Value)
	}
	h := merged.Metrics["test_latency_nanos"]
	if h.Count != 4 || h.Sum != 6300 {
		t.Errorf("merged histogram count/sum = %d/%d, want 4/6300", h.Count, h.Sum)
	}
	if last := h.Buckets[len(h.Buckets)-1]; last.LE != "+Inf" || last.Cum != h.Count {
		t.Errorf("merged +Inf bucket %+v, want cum == count %d", last, h.Count)
	}
	for i := 1; i < len(h.Buckets); i++ {
		if h.Buckets[i].Cum < h.Buckets[i-1].Cum {
			t.Fatalf("merged buckets not cumulative: %v", h.Buckets)
		}
	}

	// Determinism: merging the same inputs twice emits identical pages.
	var a, b bytes.Buffer
	if err := merged.WriteText(&a); err != nil {
		t.Fatal(err)
	}
	merged2, err := MergePrometheus(parse(1), nil, parse(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := merged2.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("merge not deterministic:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}
}

// TestMergePrometheusMismatch: a name changing kind between shards, or
// a histogram changing bucket shape, must refuse to merge — those
// registries are not the same program.
func TestMergePrometheusMismatch(t *testing.T) {
	a := &PromSnapshot{Metrics: map[string]*PromMetric{
		"m": {Name: "m", Kind: "counter", Value: 1},
	}}
	b := &PromSnapshot{Metrics: map[string]*PromMetric{
		"m": {Name: "m", Kind: "gauge", Value: 1},
	}}
	if _, err := MergePrometheus(a, b); err == nil {
		t.Error("kind mismatch merged without error")
	}
	h1 := &PromSnapshot{Metrics: map[string]*PromMetric{
		"h": {Name: "h", Kind: "histogram", Buckets: []PromBucket{{LE: "1", Cum: 1}, {LE: "+Inf", Cum: 1}}},
	}}
	h2 := &PromSnapshot{Metrics: map[string]*PromMetric{
		"h": {Name: "h", Kind: "histogram", Buckets: []PromBucket{{LE: "2", Cum: 1}, {LE: "+Inf", Cum: 1}}},
	}}
	if _, err := MergePrometheus(h1, h2); err == nil {
		t.Error("bucket-bound mismatch merged without error")
	}
	h3 := &PromSnapshot{Metrics: map[string]*PromMetric{
		"h": {Name: "h", Kind: "histogram", Buckets: []PromBucket{{LE: "+Inf", Cum: 1}}},
	}}
	if _, err := MergePrometheus(h1, h3); err == nil {
		t.Error("bucket-count mismatch merged without error")
	}
	// Merging must not mutate its inputs (the first snapshot seeds the
	// accumulator; its buckets must be deep-copied).
	before := h1.Metrics["h"].Buckets[0].Cum
	if _, err := MergePrometheus(h1, h1); err != nil {
		t.Fatal(err)
	}
	if h1.Metrics["h"].Buckets[0].Cum != before {
		t.Error("MergePrometheus mutated an input snapshot")
	}
}
