// Package obs is the stdlib-only telemetry layer of the serving stack:
// a metrics registry (atomic counters, gauges, log-bucketed histograms
// with deterministic snapshots and expvar-JSON / Prometheus-text export),
// a hierarchical query tracer whose spans attribute both wall time and
// exact disk-access deltas to query phases, and a ring-buffered slow-query
// log.
//
// The paper's entire evaluation is one number — disk accesses per query —
// so the tracer is built around an exactness invariant rather than
// sampling: every span records the DA delta of the session counter it is
// bound to while the span is open, a span's self cost is its delta minus
// its children's, and the per-phase self costs of a well-formed trace sum
// exactly to the session's total. CheckTotal verifies the invariant
// against an independently read total; the dabreakdown figure and the
// unit tests hold it on every traced query.
//
// Instrumentation is free when disabled: every Trace method is a nil-
// receiver no-op, so the hot path pays one nil check and zero allocations
// when no collector is installed.
package obs

import (
	"fmt"
	"time"
)

// Phase names the stage of query processing a span attributes its cost
// to. The taxonomy follows the serving stack: index descent, record
// fetching, overflow-chain walks, ID-index probes, in-memory
// triangulation, multi-base planning, tile materialization, tile
// stitching, seam closure, and cache lookups.
type Phase uint8

const (
	// PhaseQuery is the root span every traced query opens; its self
	// cost is whatever no child phase claimed (zero DA when the
	// instrumentation covers every read).
	PhaseQuery Phase = iota
	// PhaseRTree is the R*-tree range-query descent.
	PhaseRTree
	// PhaseFetch is the heap-file record fetch loop of a range query.
	PhaseFetch
	// PhaseOverflow is the overflow-chain walk of spilled connection
	// lists (a child of PhaseFetch).
	PhaseOverflow
	// PhaseIDIndex is a B+-tree probe (point lookups by node ID).
	PhaseIDIndex
	// PhaseTriangulate is the in-memory mesh assembly (no I/O).
	PhaseTriangulate
	// PhasePlan is cost-model planning: strip plans and the coherent
	// engine's delta-vs-full decision (no I/O).
	PhasePlan
	// PhaseMaterialize is a tile-cache materialization (one uniform
	// query building a resident patch).
	PhaseMaterialize
	// PhaseStitch is the tile-cache patch stitch (bulk merge and
	// boundary clip; no I/O).
	PhaseStitch
	// PhaseSeam is the cross-tile seam resolution and corner sweep
	// inside a stitch (no I/O).
	PhaseSeam
	// PhaseCache is one tile-cache lookup (hit, miss, or deduped wait).
	PhaseCache
	// PhaseShardHop is one cross-process hop: a router-side span whose
	// children are the spans a shard reported over the trace wire. Its
	// inclusive DA is the shard's X-DM-DA; its self DA is zero whenever
	// the shard's trace fully accounts for that header.
	PhaseShardHop
	// PhaseStreamEncode is one progressive-stream delta-batch encoding
	// (pure CPU; no I/O).
	PhaseStreamEncode
	// PhaseStreamReplay wraps the rung queries a resumed stream re-runs
	// only to rebuild delta state — work a resume pays for but never
	// transmits.
	PhaseStreamReplay

	// NumPhases bounds the phase enum; breakdown arrays index by Phase.
	NumPhases
)

var phaseNames = [NumPhases]string{
	"query", "rtree_descent", "dm_fetch", "overflow_walk", "id_index",
	"triangulate", "plan", "tile_materialize", "stitch", "seam_closure",
	"cache_lookup", "shard_hop", "stream_encode", "stream_replay",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// Span is one recorded trace span. DA is inclusive of children (like the
// wall-time Dur); SelfDA and SelfDur subtract the children.
type Span struct {
	Phase  Phase
	Parent int32 // index into Trace.Spans(); -1 for a root span
	Start  time.Duration
	Dur    time.Duration

	// DA is the disk-access delta observed while the span was open: the
	// bound sampler's end-start difference plus anything charged with
	// AddDA (the tile cache charges materialization costs it accounts
	// itself). Valid after End.
	DA uint64

	startDA  uint64
	charged  uint64
	childDA  uint64
	childDur time.Duration
	open     bool
}

// SelfDA is the span's exclusive disk-access cost: DA minus the children's.
func (s *Span) SelfDA() uint64 { return s.DA - s.childDA }

// SelfDur is the span's exclusive wall time.
func (s *Span) SelfDur() time.Duration { return s.Dur - s.childDur }

// Trace records the hierarchical spans of one query against a
// preallocated arena. A Trace is bound at creation to a DA sampler —
// typically a session's DiskAccesses method — and samples it at span
// boundaries, so phase attribution is exact, not statistical.
//
// A Trace is not safe for concurrent use: it rides a single query (or a
// single coherent session), the same discipline the pager.Session it is
// bound to already requires. All methods are no-ops on a nil *Trace, so
// instrumented code paths need no collector-installed checks beyond
// holding a possibly-nil pointer.
type Trace struct {
	da    func() uint64
	epoch time.Time
	spans []Span
	stack []int32
}

// arenaSpans is the span capacity preallocated per trace; a query deeper
// than that grows the arena (retained across Reset).
const arenaSpans = 64

// NewTrace returns an empty trace bound to the DA sampler. The sampler
// must be monotone while any span is open (a session's DiskAccesses is;
// do not ResetStats mid-span). A nil sampler records zero sampled DA —
// the tile cache uses that mode and charges DA explicitly with AddDA.
func NewTrace(da func() uint64) *Trace {
	return &Trace{
		da:    da,
		epoch: time.Now(),
		spans: make([]Span, 0, arenaSpans),
		stack: make([]int32, 0, 8),
	}
}

// Reset discards all recorded spans, keeping the arena. Call it between
// the queries of a reused trace (after ResetStats, never mid-span).
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.spans = t.spans[:0]
	t.stack = t.stack[:0]
	t.epoch = time.Now()
}

// sample reads the bound DA counter (zero with a nil sampler).
func (t *Trace) sample() uint64 {
	if t.da == nil {
		return 0
	}
	return t.da()
}

// Now returns the current offset from the trace's epoch — the Start a
// span opened at this instant would record. Unlike every other method it
// is safe to call from another goroutine (it only reads the epoch, which
// changes only on Reset), so concurrent fan-out work can timestamp the
// hops it will SpliceRemote after it rejoins the trace's goroutine. Zero
// on a nil trace.
func (t *Trace) Now() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch)
}

// Begin opens a span of the given phase as a child of the innermost open
// span. Every Begin must be matched by End before the trace is read.
func (t *Trace) Begin(p Phase) {
	if t == nil {
		return
	}
	parent := int32(-1)
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1]
	}
	t.spans = append(t.spans, Span{
		Phase:   p,
		Parent:  parent,
		Start:   time.Since(t.epoch),
		startDA: t.sample(),
		open:    true,
	})
	t.stack = append(t.stack, int32(len(t.spans)-1))
}

// AddDA charges n disk accesses to the innermost open span, for costs the
// caller counted through a channel the bound sampler cannot see (the tile
// cache's per-flight sessions). Charged DA propagates to ancestors like
// sampled DA does.
func (t *Trace) AddDA(n uint64) {
	if t == nil || n == 0 || len(t.stack) == 0 {
		return
	}
	t.spans[t.stack[len(t.stack)-1]].charged += n
}

// End closes the innermost open span, fixing its duration and DA delta
// and rolling both into its parent.
func (t *Trace) End() {
	if t == nil || len(t.stack) == 0 {
		return
	}
	i := t.stack[len(t.stack)-1]
	t.stack = t.stack[:len(t.stack)-1]
	sp := &t.spans[i]
	sp.Dur = time.Since(t.epoch) - sp.Start
	sp.DA = (t.sample() - sp.startDA) + sp.charged
	sp.open = false
	if sp.Parent >= 0 {
		par := &t.spans[sp.Parent]
		par.childDA += sp.DA
		par.childDur += sp.Dur
		// Charged DA is invisible to the parent's sampler; roll it up so
		// the parent's inclusive DA still covers the children (spans end
		// child-before-parent, so this propagates transitively).
		par.charged += sp.charged
	}
}

// Spans returns the recorded spans in Begin order. The slice aliases the
// arena; it is valid until the next Reset.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	return t.spans
}

// TotalDA sums the root spans' (inclusive) disk accesses — the trace's
// view of what the traced query cost.
func (t *Trace) TotalDA() uint64 {
	if t == nil {
		return 0
	}
	var total uint64
	for i := range t.spans {
		if t.spans[i].Parent < 0 {
			total += t.spans[i].DA
		}
	}
	return total
}

// Breakdown aggregates the spans' exclusive costs by phase. The
// invariant of a well-formed trace: the breakdown entries sum exactly to
// TotalDA.
func (t *Trace) Breakdown() [NumPhases]uint64 {
	var out [NumPhases]uint64
	if t == nil {
		return out
	}
	for i := range t.spans {
		out[t.spans[i].Phase] += t.spans[i].SelfDA()
	}
	return out
}

// PhaseStat is one phase's aggregated exclusive cost within a trace.
type PhaseStat struct {
	Phase Phase         `json:"phase_id"`
	Name  string        `json:"phase"`
	DA    uint64        `json:"disk_accesses"`
	Dur   time.Duration `json:"nanos"`
	Spans int           `json:"spans"`
}

// PhaseStats returns the per-phase aggregation of the trace in phase
// order (deterministic), skipping phases with no spans.
func (t *Trace) PhaseStats() []PhaseStat {
	if t == nil {
		return nil
	}
	var agg [NumPhases]PhaseStat
	for i := range t.spans {
		sp := &t.spans[i]
		agg[sp.Phase].DA += sp.SelfDA()
		agg[sp.Phase].Dur += sp.SelfDur()
		agg[sp.Phase].Spans++
	}
	out := make([]PhaseStat, 0, NumPhases)
	for p := Phase(0); p < NumPhases; p++ {
		if agg[p].Spans == 0 {
			continue
		}
		agg[p].Phase = p
		agg[p].Name = p.String()
		out = append(out, agg[p])
	}
	return out
}

// CheckTotal verifies the DA-attribution invariant against an
// independently read total (the session's DiskAccesses): all spans
// closed, every span's children within its own delta, and the per-phase
// breakdown summing exactly to total. A nil trace trivially passes only
// a zero total.
func (t *Trace) CheckTotal(total uint64) error {
	if t == nil {
		if total != 0 {
			return fmt.Errorf("obs: nil trace cannot account for %d disk accesses", total)
		}
		return nil
	}
	if len(t.stack) != 0 {
		return fmt.Errorf("obs: %d spans still open", len(t.stack))
	}
	var sum uint64
	for i := range t.spans {
		sp := &t.spans[i]
		if sp.open {
			return fmt.Errorf("obs: span %d (%s) never ended", i, sp.Phase)
		}
		if sp.childDA > sp.DA {
			return fmt.Errorf("obs: span %d (%s): children claim %d DA, span observed only %d",
				i, sp.Phase, sp.childDA, sp.DA)
		}
		sum += sp.SelfDA()
	}
	if sum != total {
		return fmt.Errorf("obs: phase DA sums to %d, session total is %d", sum, total)
	}
	if rt := t.TotalDA(); rt != total {
		return fmt.Errorf("obs: root spans observed %d DA, session total is %d", rt, total)
	}
	return nil
}
