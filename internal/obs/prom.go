package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromBucket is one histogram bucket in exposition order: the le label
// verbatim and the cumulative count at that bound.
type PromBucket struct {
	LE  string `json:"le"`
	Cum uint64 `json:"cum"`
}

// PromMetric is one metric parsed from Prometheus text exposition
// format — the subset this repo's Registry writes (untyped labels never
// appear except histogram le).
type PromMetric struct {
	Name string `json:"name"`
	Help string `json:"help,omitempty"`
	Kind string `json:"kind"` // counter, gauge, histogram

	Value int64 `json:"value,omitempty"` // counter and gauge

	Buckets []PromBucket `json:"buckets,omitempty"` // histogram
	Sum     uint64       `json:"sum,omitempty"`
	Count   uint64       `json:"count,omitempty"`
}

// PromSnapshot is a parsed metrics page, keyed by metric name.
type PromSnapshot struct {
	Metrics map[string]*PromMetric
}

// Names returns the snapshot's metric names sorted — the deterministic
// iteration order every consumer must use.
func (s *PromSnapshot) Names() []string {
	names := make([]string, 0, len(s.Metrics))
	for n := range s.Metrics {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParsePrometheus parses a Prometheus text-exposition page of the shape
// Registry.WritePrometheus emits: # HELP / # TYPE comments, scalar
// counter and gauge samples, and histograms as cumulative le-labeled
// buckets plus _sum and _count. Unknown comment lines are skipped;
// malformed sample lines are an error.
func ParsePrometheus(r io.Reader) (*PromSnapshot, error) {
	snap := &PromSnapshot{Metrics: make(map[string]*PromMetric)}
	get := func(name string) *PromMetric {
		m, ok := snap.Metrics[name]
		if !ok {
			m = &PromMetric{Name: name}
			snap.Metrics[name] = m
		}
		return m
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 4 && fields[1] == "HELP" {
				get(fields[2]).Help = fields[3]
			} else if len(fields) >= 4 && fields[1] == "TYPE" {
				get(fields[2]).Kind = strings.TrimSpace(fields[3])
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return nil, fmt.Errorf("obs: metrics line %d: no sample value: %q", lineNo, line)
		}
		key, valStr := line[:sp], line[sp+1:]
		if i := strings.Index(key, `_bucket{le="`); i >= 0 && strings.HasSuffix(key, `"}`) {
			base := key[:i]
			le := key[i+len(`_bucket{le="`) : len(key)-2]
			cum, err := strconv.ParseUint(valStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("obs: metrics line %d: bucket count %q: %v", lineNo, valStr, err)
			}
			m := get(base)
			m.Buckets = append(m.Buckets, PromBucket{LE: le, Cum: cum})
			continue
		}
		if base, ok := strings.CutSuffix(key, "_sum"); ok && snap.Metrics[base] != nil && snap.Metrics[base].Kind == "histogram" {
			v, err := strconv.ParseUint(valStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("obs: metrics line %d: sum %q: %v", lineNo, valStr, err)
			}
			get(base).Sum = v
			continue
		}
		if base, ok := strings.CutSuffix(key, "_count"); ok && snap.Metrics[base] != nil && snap.Metrics[base].Kind == "histogram" {
			v, err := strconv.ParseUint(valStr, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("obs: metrics line %d: count %q: %v", lineNo, valStr, err)
			}
			get(base).Count = v
			continue
		}
		v, err := strconv.ParseInt(valStr, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: metrics line %d: value %q: %v", lineNo, valStr, err)
		}
		get(key).Value = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return snap, nil
}

// MergePrometheus merges snapshots of identically-shaped registries —
// the N shards of one cluster — into one: counters, gauges, histogram
// buckets (bucket-wise; sums of cumulative counts are the cumulative
// counts of the union), sums, and counts all add. Metrics missing from
// some snapshots merge from the ones that have them. A name carrying
// different kinds, or histograms with different bucket bounds, is an
// error: those registries are not the same program.
func MergePrometheus(snaps ...*PromSnapshot) (*PromSnapshot, error) {
	out := &PromSnapshot{Metrics: make(map[string]*PromMetric)}
	for _, snap := range snaps {
		if snap == nil {
			continue
		}
		for _, name := range snap.Names() {
			m := snap.Metrics[name]
			acc, ok := out.Metrics[name]
			if !ok {
				cp := *m
				cp.Buckets = append([]PromBucket(nil), m.Buckets...)
				out.Metrics[name] = &cp
				continue
			}
			if acc.Kind != m.Kind {
				return nil, fmt.Errorf("obs: merge %s: kind %q vs %q", name, acc.Kind, m.Kind)
			}
			if acc.Help == "" {
				acc.Help = m.Help
			}
			switch m.Kind {
			case "histogram":
				if len(acc.Buckets) != len(m.Buckets) {
					return nil, fmt.Errorf("obs: merge %s: %d vs %d buckets", name, len(acc.Buckets), len(m.Buckets))
				}
				for i := range m.Buckets {
					if acc.Buckets[i].LE != m.Buckets[i].LE {
						return nil, fmt.Errorf("obs: merge %s: bucket %d bound %q vs %q",
							name, i, acc.Buckets[i].LE, m.Buckets[i].LE)
					}
					acc.Buckets[i].Cum += m.Buckets[i].Cum
				}
				acc.Sum += m.Sum
				acc.Count += m.Count
			default:
				acc.Value += m.Value
			}
		}
	}
	return out, nil
}

// WriteText re-emits the snapshot in Prometheus text exposition format,
// metrics sorted by name — byte-identical output for equal snapshots,
// and a fixed point of ParsePrometheus.
func (s *PromSnapshot) WriteText(w io.Writer) error {
	for _, name := range s.Names() {
		m := s.Metrics[name]
		if m.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, m.Help); err != nil {
				return err
			}
		}
		kind := m.Kind
		if kind == "" {
			kind = "untyped"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind); err != nil {
			return err
		}
		if m.Kind == "histogram" {
			for _, b := range m.Buckets {
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, b.LE, b.Cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, m.Sum, name, m.Count); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", name, m.Value); err != nil {
			return err
		}
	}
	return nil
}
