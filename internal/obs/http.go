package obs

import (
	"bytes"
	"encoding/json"
	"expvar"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// MetricsHandler serves the registry in Prometheus text exposition
// format. The page is rendered fully before the header goes out and the
// response declares Content-Length, so a connection cut mid-body
// surfaces to the scraper as a short read instead of a clean-looking
// 200 with half the counters missing.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		var buf bytes.Buffer
		if err := r.WritePrometheus(&buf); err != nil {
			http.Error(w, "metrics rendering failed", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
		_, _ = w.Write(buf.Bytes())
	})
}

// SlowLogHandler serves the slow log as JSON, slowest first. The n
// query parameter caps the result (default 20).
func SlowLogHandler(l *SlowLog) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := 20
		if s := req.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v <= 0 {
				http.Error(w, `{"error":"n must be a positive integer"}`, http.StatusBadRequest)
				return
			}
			n = v
		}
		// Marshal before the header goes out so the response can declare
		// Content-Length: a connection cut mid-body then surfaces to the
		// client as a short read instead of a clean-looking 200.
		body, err := json.Marshal(struct {
			ThresholdNanos int64       `json:"threshold_nanos"`
			Entries        []SlowEntry `json:"entries"`
		}{int64(l.Threshold()), l.Worst(n)})
		if err != nil {
			http.Error(w, `{"error":"encoding failed"}`, http.StatusInternalServerError)
			return
		}
		body = append(body, '\n')
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", strconv.Itoa(len(body)))
		_, _ = w.Write(body)
	})
}

// RegisterDebug mounts the standard introspection endpoints on mux:
// /debug/vars (expvar JSON, including every registry published with
// PublishExpvar) and the /debug/pprof/ suite. The stdlib registers
// these only on http.DefaultServeMux; servers with their own mux need
// this explicit mount.
func RegisterDebug(mux *http.ServeMux) {
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
