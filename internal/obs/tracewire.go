package obs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"
)

// ErrCorrupt is the sentinel wrapped by every trace-wire decode failure,
// mirroring the storage layer's corruption discipline: a malformed or
// truncated wire trace is rejected with a descriptive error, never a
// panic. (The obs package cannot import the storage sentinel without a
// cycle, so cross-layer callers match on their own layer's sentinel.)
var ErrCorrupt = errors.New("corrupt trace wire")

// Trace wire format (TraceWire, version 1) — the compact deterministic
// binary encoding a shard attaches to its responses so a router can
// splice the shard's phase spans into its own trace:
//
//	magic   "DMTW" (4 bytes)
//	version uvarint (currently 1)
//	count   uvarint (number of spans)
//	per span, in Begin order (parents strictly before children):
//	  phase    uvarint  (< NumPhases)
//	  parent   uvarint  (0 = root, else 1 + parent index; parent < own index)
//	  start    uvarint  (nanoseconds from the trace epoch)
//	  dur      uvarint  (nanoseconds)
//	  childDur uvarint  (nanoseconds, <= dur)
//	  da       uvarint  (inclusive disk accesses)
//	  childDA  uvarint  (<= da)
//
// Every field is a uvarint after the fixed magic, so the encoding of a
// given trace is unique — byte equality is trace equality.
const (
	traceWireMagic   = "DMTW"
	traceWireVersion = 1
)

// maxWireSpans bounds a decoded trace's span count: a defense against a
// corrupt count field committing the decoder to a huge allocation. Far
// above any real query's span count (deep traces run tens of spans).
const maxWireSpans = 1 << 20

// EncodeWire serializes the trace's recorded spans in the TraceWire
// format. All spans must be closed (the encoding carries final DA and
// duration figures); encoding an open trace returns an error instead of
// lying about costs still accruing. A nil or empty trace encodes to a
// valid zero-span wire.
func (t *Trace) EncodeWire() ([]byte, error) {
	var spans []Span
	if t != nil {
		if len(t.stack) != 0 {
			return nil, fmt.Errorf("obs: encoding trace with %d open spans", len(t.stack))
		}
		spans = t.spans
	}
	buf := make([]byte, 0, len(traceWireMagic)+2+len(spans)*12)
	buf = append(buf, traceWireMagic...)
	buf = binary.AppendUvarint(buf, traceWireVersion)
	buf = binary.AppendUvarint(buf, uint64(len(spans)))
	for i := range spans {
		sp := &spans[i]
		buf = binary.AppendUvarint(buf, uint64(sp.Phase))
		buf = binary.AppendUvarint(buf, uint64(sp.Parent+1))
		buf = binary.AppendUvarint(buf, uint64(sp.Start))
		buf = binary.AppendUvarint(buf, uint64(sp.Dur))
		buf = binary.AppendUvarint(buf, uint64(sp.childDur))
		buf = binary.AppendUvarint(buf, sp.DA)
		buf = binary.AppendUvarint(buf, sp.childDA)
	}
	return buf, nil
}

// WireTrace is a decoded trace wire: the remote spans with their
// hierarchy, costs, and timings, ready to splice into a local trace.
type WireTrace struct {
	Spans []Span
}

// TotalDA sums the root spans' inclusive disk accesses — the remote
// trace's view of what the traced request cost. Zero on nil.
func (wt *WireTrace) TotalDA() uint64 {
	if wt == nil {
		return 0
	}
	var total uint64
	for i := range wt.Spans {
		if wt.Spans[i].Parent < 0 {
			total += wt.Spans[i].DA
		}
	}
	return total
}

// rootDur sums the root spans' inclusive durations.
func (wt *WireTrace) rootDur() time.Duration {
	var total time.Duration
	for i := range wt.Spans {
		if wt.Spans[i].Parent < 0 {
			total += wt.Spans[i].Dur
		}
	}
	return total
}

// wireReader walks a trace wire buffer; every read failure is a
// truncation wrapped in ErrCorrupt.
type wireReader struct {
	buf []byte
	off int
}

func (r *wireReader) uvarint(field string) (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("obs: trace wire: truncated or overlong %s at offset %d: %w", field, r.off, ErrCorrupt)
	}
	// Reject non-minimal encodings (a zero final byte adds no value
	// bits): the format's uniqueness guarantee — byte equality is trace
	// equality — holds only if each value has exactly one encoding.
	if n > 1 && r.buf[r.off+n-1] == 0 {
		return 0, fmt.Errorf("obs: trace wire: non-minimal %s at offset %d: %w", field, r.off, ErrCorrupt)
	}
	r.off += n
	return v, nil
}

// DecodeTraceWire parses a TraceWire buffer. It never panics: any
// malformed input — bad magic, unknown version, phase out of range,
// forward or self parent references, child costs exceeding the span's
// own, truncation at any byte, or trailing garbage — returns an error
// wrapping ErrCorrupt.
func DecodeTraceWire(buf []byte) (*WireTrace, error) {
	if len(buf) < len(traceWireMagic) || string(buf[:len(traceWireMagic)]) != traceWireMagic {
		return nil, fmt.Errorf("obs: trace wire: bad magic: %w", ErrCorrupt)
	}
	r := &wireReader{buf: buf, off: len(traceWireMagic)}
	version, err := r.uvarint("version")
	if err != nil {
		return nil, err
	}
	if version != traceWireVersion {
		return nil, fmt.Errorf("obs: trace wire: unsupported version %d: %w", version, ErrCorrupt)
	}
	count, err := r.uvarint("span count")
	if err != nil {
		return nil, err
	}
	if count > maxWireSpans {
		return nil, fmt.Errorf("obs: trace wire: implausible span count %d: %w", count, ErrCorrupt)
	}
	// Allocation bounded by the physical buffer: a span needs >= 7 bytes.
	if int(count) > len(buf)/7+1 {
		return nil, fmt.Errorf("obs: trace wire: %d spans in a %d-byte wire: %w", count, len(buf), ErrCorrupt)
	}
	spans := make([]Span, count)
	for i := range spans {
		phase, err := r.uvarint("phase")
		if err != nil {
			return nil, err
		}
		if phase >= uint64(NumPhases) {
			return nil, fmt.Errorf("obs: trace wire: span %d: phase %d out of range: %w", i, phase, ErrCorrupt)
		}
		parent, err := r.uvarint("parent")
		if err != nil {
			return nil, err
		}
		if parent > uint64(i) {
			return nil, fmt.Errorf("obs: trace wire: span %d: parent %d not before it: %w", i, int64(parent)-1, ErrCorrupt)
		}
		start, err := r.uvarint("start")
		if err != nil {
			return nil, err
		}
		dur, err := r.uvarint("dur")
		if err != nil {
			return nil, err
		}
		childDur, err := r.uvarint("child dur")
		if err != nil {
			return nil, err
		}
		if childDur > dur {
			return nil, fmt.Errorf("obs: trace wire: span %d: children claim %dns of a %dns span: %w", i, childDur, dur, ErrCorrupt)
		}
		da, err := r.uvarint("da")
		if err != nil {
			return nil, err
		}
		childDA, err := r.uvarint("child da")
		if err != nil {
			return nil, err
		}
		if childDA > da {
			return nil, fmt.Errorf("obs: trace wire: span %d: children claim %d DA of a %d-DA span: %w", i, childDA, da, ErrCorrupt)
		}
		spans[i] = Span{
			Phase:    Phase(phase),
			Parent:   int32(parent) - 1,
			Start:    time.Duration(start),
			Dur:      time.Duration(dur),
			DA:       da,
			childDA:  childDA,
			childDur: time.Duration(childDur),
		}
	}
	if r.off != len(buf) {
		return nil, fmt.Errorf("obs: trace wire: %d trailing bytes: %w", len(buf)-r.off, ErrCorrupt)
	}
	return &WireTrace{Spans: spans}, nil
}

// SpliceRemote appends one closed span of phase p — a cross-process hop
// that started at start (trace-epoch offset, see Now) and took dur — as
// a child of the innermost open span, attaching the remote trace's spans
// beneath it. da is the hop's inclusive disk-access cost as the remote
// side reported it out of band (the X-DM-DA header); it is charged up
// the open ancestor chain exactly as AddDA would charge it, so a
// charge-based trace's CheckTotal equals the sum of the hop DAs plus
// whatever the local side sampled.
//
// When wt carries spans, they become the hop's children (parents
// remapped, starts rebased onto the hop's start): the hop's self DA is
// then da minus the remote roots' total — zero exactly when the shard's
// trace fully accounts for its own header, which is the cross-hop
// invariant CheckTotal extends across the wire. A nil or empty wt leaves
// the hop a leaf carrying all of da itself. No-op on a nil trace or when
// no span is open, matching the other nil-receiver paths.
func (t *Trace) SpliceRemote(p Phase, start, dur time.Duration, da uint64, wt *WireTrace) {
	if t == nil || len(t.stack) == 0 {
		return
	}
	parent := t.stack[len(t.stack)-1]
	hop := Span{
		Phase:  p,
		Parent: parent,
		Start:  start,
		Dur:    dur,
		DA:     da,
	}
	if wt != nil {
		hop.childDA = wt.TotalDA()
		hop.childDur = wt.rootDur()
	}
	t.spans = append(t.spans, hop)
	hopIdx := int32(len(t.spans) - 1)
	if wt != nil {
		base := int32(len(t.spans))
		for i := range wt.Spans {
			sp := wt.Spans[i]
			if sp.Parent < 0 {
				sp.Parent = hopIdx
			} else {
				sp.Parent += base
			}
			sp.Start += start
			t.spans = append(t.spans, sp)
		}
	}
	// Roll the hop into its parent the way End would: the parent's
	// children now include the hop (inclusive of the remote spans), and
	// the whole hop DA is charged — the local sampler never saw it.
	par := &t.spans[parent]
	par.childDA += da
	par.childDur += dur
	par.charged += da
}
