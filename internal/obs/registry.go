package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotone atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value reads the counter.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of finite histogram buckets: bucket i counts
// observations with value <= 2^i, covering [0, 2^39] before the overflow
// bucket — plenty for both DA counts and nanosecond latencies up to ~9m.
const histBuckets = 40

// Histogram is a log2-bucketed histogram of uint64 observations (DA
// counts, nanosecond latencies). Observation and snapshot are lock-free;
// a snapshot taken under concurrent observation is internally consistent
// per bucket but not across buckets, which is fine for monitoring.
type Histogram struct {
	buckets [histBuckets + 1]atomic.Uint64 // last bucket is +Inf
	sum     atomic.Uint64
	count   atomic.Uint64
}

// bucketIndex places v in its log2 bucket: 0 holds v<=1, i holds
// 2^(i-1) < v <= 2^i, and histBuckets holds the overflow.
func bucketIndex(v uint64) int {
	if v <= 1 {
		return 0
	}
	idx := bits.Len64(v - 1)
	if idx > histBuckets {
		return histBuckets
	}
	return idx
}

// BucketBound returns the inclusive upper bound of finite bucket i.
func BucketBound(i int) uint64 { return uint64(1) << uint(i) }

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bucketIndex(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Buckets [histBuckets + 1]uint64 // per-bucket counts (not cumulative)
	Sum     uint64
	Count   uint64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Sum = h.sum.Load()
	s.Count = h.count.Load()
	return s
}

// metricKind discriminates registry entries.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

type metric struct {
	name string
	help string
	kind metricKind

	counter *Counter
	gauge   *Gauge
	fn      func() int64
	hist    *Histogram
}

// Registry is a named collection of metrics. Get-or-create registration
// is idempotent by name; registering the same name as a different kind
// panics (a wiring bug, not a runtime condition). Export order is sorted
// by name, so two snapshots of the same state encode identically.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

func (r *Registry) getOrCreate(name, help string, kind metricKind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as a different kind", name))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	switch kind {
	case kindCounter:
		m.counter = &Counter{}
	case kindGauge:
		m.gauge = &Gauge{}
	case kindHistogram:
		m.hist = &Histogram{}
	}
	r.metrics[name] = m
	return m
}

// Counter returns the counter registered under name, creating it if
// needed. Names should follow Prometheus conventions (snake_case,
// _total suffix for counters).
func (r *Registry) Counter(name, help string) *Counter {
	return r.getOrCreate(name, help, kindCounter).counter
}

// Gauge returns the gauge registered under name, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.getOrCreate(name, help, kindGauge).gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at export
// time (for values another subsystem already maintains, like cache
// residency). Re-registering the same name replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	m := r.getOrCreate(name, help, kindGaugeFunc)
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// fnValue evaluates a GaugeFunc metric, reading the function pointer
// under the registry lock (it may be replaced concurrently) but calling
// it outside, since it may take other locks.
func (r *Registry) fnValue(m *metric) int64 {
	r.mu.Lock()
	fn := m.fn
	r.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn()
}

// Histogram returns the histogram registered under name, creating it if
// needed.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.getOrCreate(name, help, kindHistogram).hist
}

// sortedMetrics snapshots the metric set in name order.
func (r *Registry) sortedMetrics() []*metric {
	r.mu.Lock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4), metrics sorted by name, histogram buckets
// cumulative with le labels.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.sortedMetrics() {
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
				return err
			}
		}
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m.name, m.name, m.counter.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", m.name, m.name, m.gauge.Value())
		case kindGaugeFunc:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", m.name, m.name, r.fnValue(m))
		case kindHistogram:
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", m.name); err != nil {
				return err
			}
			s := m.hist.Snapshot()
			var cum uint64
			for i := 0; i < histBuckets; i++ {
				cum += s.Buckets[i]
				if _, err = fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", m.name, BucketBound(i), cum); err != nil {
					return err
				}
			}
			cum += s.Buckets[histBuckets]
			_, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
				m.name, cum, m.name, s.Sum, m.name, s.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// jsonHistogram is the JSON shape of one histogram.
type jsonHistogram struct {
	Sum     uint64            `json:"sum"`
	Count   uint64            `json:"count"`
	Buckets map[string]uint64 `json:"buckets"` // le -> cumulative count, nonzero rows only
}

// snapshotJSON builds the export map. encoding/json sorts map keys, so
// the output is deterministic for a fixed state.
func (r *Registry) snapshotJSON() map[string]any {
	out := make(map[string]any)
	for _, m := range r.sortedMetrics() {
		switch m.kind {
		case kindCounter:
			out[m.name] = m.counter.Value()
		case kindGauge:
			out[m.name] = m.gauge.Value()
		case kindGaugeFunc:
			out[m.name] = r.fnValue(m)
		case kindHistogram:
			s := m.hist.Snapshot()
			jh := jsonHistogram{Sum: s.Sum, Count: s.Count, Buckets: make(map[string]uint64)}
			var cum uint64
			for i := 0; i <= histBuckets; i++ {
				cum += s.Buckets[i]
				if s.Buckets[i] == 0 {
					continue
				}
				if i == histBuckets {
					jh.Buckets["+Inf"] = cum
				} else {
					jh.Buckets[fmt.Sprint(BucketBound(i))] = cum
				}
			}
			out[m.name] = jh
		}
	}
	return out
}

// WriteJSON writes the registry as one JSON object, keys sorted.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(r.snapshotJSON())
}

// PublishExpvar exposes the registry under the given expvar name (shown
// by /debug/vars). Publishing is idempotent: if the name is already
// taken — e.g. a test constructing two servers in one process — the
// existing binding is left in place, since expvar.Publish panics on
// duplicates and offers no unpublish.
func (r *Registry) PublishExpvar(name string) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.snapshotJSON() }))
}
