package obs

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// sampleTrace builds a closed charge-based trace shaped like a real
// shard-side /patch: a root query span over a cache lookup and a
// materialization that charges DA.
func sampleTrace() *Trace {
	tr := NewTrace(nil)
	tr.Begin(PhaseQuery)
	tr.Begin(PhaseCache)
	tr.End()
	tr.Begin(PhaseMaterialize)
	tr.AddDA(7)
	tr.Begin(PhaseFetch)
	tr.AddDA(3)
	tr.End()
	tr.End()
	tr.End()
	return tr
}

// TestTraceWireRoundTrip pins the codec contract: encode → decode
// reproduces every span field, re-encoding a decoded trace is
// byte-identical (unique encoding), and the decoded trace's TotalDA
// matches the source trace's.
func TestTraceWireRoundTrip(t *testing.T) {
	tr := sampleTrace()
	wire, err := tr.EncodeWire()
	if err != nil {
		t.Fatal(err)
	}
	wt, err := DecodeTraceWire(wire)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Spans()
	if len(wt.Spans) != len(want) {
		t.Fatalf("decoded %d spans, want %d", len(wt.Spans), len(want))
	}
	for i := range want {
		g, w := wt.Spans[i], want[i]
		if g.Phase != w.Phase || g.Parent != w.Parent || g.Start != w.Start ||
			g.Dur != w.Dur || g.DA != w.DA || g.childDA != w.childDA || g.childDur != w.childDur {
			t.Errorf("span %d: decoded %+v, want %+v", i, g, w)
		}
	}
	if wt.TotalDA() != tr.TotalDA() {
		t.Errorf("wire TotalDA %d, want %d", wt.TotalDA(), tr.TotalDA())
	}
	// Unique encoding: the decoded spans re-encode to the same bytes.
	rt := &Trace{spans: wt.Spans}
	wire2, err := rt.EncodeWire()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wire, wire2) {
		t.Error("re-encoding a decoded trace changed the bytes")
	}
}

// TestTraceWireEmptyAndNil: a nil or empty trace must encode to a valid
// zero-span wire that decodes back.
func TestTraceWireEmptyAndNil(t *testing.T) {
	for _, tr := range []*Trace{nil, NewTrace(nil)} {
		wire, err := tr.EncodeWire()
		if err != nil {
			t.Fatal(err)
		}
		wt, err := DecodeTraceWire(wire)
		if err != nil {
			t.Fatal(err)
		}
		if len(wt.Spans) != 0 || wt.TotalDA() != 0 {
			t.Errorf("zero-span wire decoded to %d spans, %d DA", len(wt.Spans), wt.TotalDA())
		}
	}
}

// TestTraceWireRejectsOpenSpans: encoding with a span still open must
// fail — the wire carries final figures, not running ones.
func TestTraceWireRejectsOpenSpans(t *testing.T) {
	tr := NewTrace(nil)
	tr.Begin(PhaseQuery)
	if _, err := tr.EncodeWire(); err == nil {
		t.Fatal("encoding an open trace succeeded")
	}
	tr.End()
	if _, err := tr.EncodeWire(); err != nil {
		t.Fatalf("encoding after closing: %v", err)
	}
}

// TestTraceWireDecodeCorrupt enumerates the malformed-input classes the
// decoder must reject, each with an error wrapping ErrCorrupt and no
// panic: bad magic, bad version, truncation at every prefix, field
// range violations, and trailing garbage.
func TestTraceWireDecodeCorrupt(t *testing.T) {
	wire, err := sampleTrace().EncodeWire()
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, buf []byte) {
		t.Helper()
		wt, err := DecodeTraceWire(buf)
		if err == nil {
			t.Errorf("%s: decoded successfully (%d spans)", name, len(wt.Spans))
			return
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: error does not wrap ErrCorrupt: %v", name, err)
		}
	}
	check("empty", nil)
	check("bad magic", []byte("XMTW\x01\x00"))
	check("bad version", []byte("DMTW\x02\x00"))
	for i := 0; i < len(wire); i++ {
		check("prefix", wire[:i])
	}
	check("trailing byte", append(append([]byte(nil), wire...), 0))

	// Field violations, hand-built on a one-span wire:
	// phase out of range.
	check("phase range", []byte{'D', 'M', 'T', 'W', 1, 1, byte(NumPhases), 0, 0, 0, 0, 0, 0})
	// self parent (parent index == own index).
	check("self parent", []byte{'D', 'M', 'T', 'W', 1, 1, 0, 1, 0, 0, 0, 0, 0})
	// childDur > dur.
	check("child dur", []byte{'D', 'M', 'T', 'W', 1, 1, 0, 0, 0, 1, 2, 0, 0})
	// childDA > da.
	check("child da", []byte{'D', 'M', 'T', 'W', 1, 1, 0, 0, 0, 0, 0, 1, 2})
	// span count far beyond the buffer.
	check("count overflow", []byte{'D', 'M', 'T', 'W', 1, 0xff, 0xff, 0x3f})
}

// TestSpliceRemoteInvariant is the cross-hop accounting property at the
// unit level: a charge-based router trace that splices shard hops
// carrying wire traces must pass CheckTotal against the sum of the
// out-of-band header DAs, the hop spans' self DA must be zero exactly
// when each shard's trace accounts for its whole header, and the
// spliced spans must keep the remote phase attribution.
func TestSpliceRemoteInvariant(t *testing.T) {
	shard, err := sampleTrace().EncodeWire()
	if err != nil {
		t.Fatal(err)
	}
	wt1, err := DecodeTraceWire(shard)
	if err != nil {
		t.Fatal(err)
	}
	wt2, err := DecodeTraceWire(shard)
	if err != nil {
		t.Fatal(err)
	}
	headerDA := wt1.TotalDA() // the shard fully accounts for its header

	tr := NewTrace(nil)
	tr.Begin(PhaseQuery)
	tr.SpliceRemote(PhaseShardHop, 10*time.Microsecond, 5*time.Microsecond, headerDA, wt1)
	tr.SpliceRemote(PhaseShardHop, 20*time.Microsecond, 5*time.Microsecond, headerDA, wt2)
	tr.Begin(PhaseStitch)
	tr.End()
	tr.End()

	if err := tr.CheckTotal(2 * headerDA); err != nil {
		t.Fatalf("CheckTotal after splicing: %v", err)
	}
	// The hop spans carry the header DA inclusively but claim none of it
	// themselves: the remote spans hold it all.
	var hops, remoteQuery int
	for _, sp := range tr.Spans() {
		if sp.Phase == PhaseShardHop {
			hops++
			if self := sp.DA - sp.childDA; self != 0 {
				t.Errorf("hop span self DA %d, want 0 (shard accounted for its header)", self)
			}
			if sp.DA != headerDA {
				t.Errorf("hop span inclusive DA %d, want %d", sp.DA, headerDA)
			}
		}
		if sp.Phase == PhaseQuery && sp.Parent >= 0 {
			remoteQuery++
		}
	}
	if hops != 2 {
		t.Fatalf("%d hop spans, want 2", hops)
	}
	if remoteQuery != 2 {
		t.Errorf("%d spliced remote root spans, want 2", remoteQuery)
	}

	// An under-claiming shard (header larger than its trace explains)
	// leaves the gap on the hop span — visible, not lost: CheckTotal
	// still balances against the header sum.
	tr2 := NewTrace(nil)
	tr2.Begin(PhaseQuery)
	wt3, _ := DecodeTraceWire(shard)
	tr2.SpliceRemote(PhaseShardHop, 0, time.Microsecond, headerDA+5, wt3)
	tr2.End()
	if err := tr2.CheckTotal(headerDA + 5); err != nil {
		t.Fatalf("CheckTotal with an under-claiming shard: %v", err)
	}
	for _, sp := range tr2.Spans() {
		if sp.Phase == PhaseShardHop {
			if self := sp.DA - sp.childDA; self != 5 {
				t.Errorf("under-claimed hop self DA %d, want the 5-access gap", self)
			}
		}
	}

	// An over-claiming shard (trace total exceeding its header) must be
	// caught by CheckTotal: the hop span's children claim more than the
	// span's own inclusive cost.
	tr3 := NewTrace(nil)
	tr3.Begin(PhaseQuery)
	wt4, _ := DecodeTraceWire(shard)
	tr3.SpliceRemote(PhaseShardHop, 0, time.Microsecond, headerDA-1, wt4)
	tr3.End()
	if err := tr3.CheckTotal(headerDA - 1); err == nil {
		t.Error("CheckTotal accepted a shard trace claiming more DA than its header")
	}
}

// TestSpliceRemoteNoOpPaths: splicing into a nil trace or outside any
// open span must be a silent no-op, like every other nil-receiver path.
func TestSpliceRemoteNoOpPaths(t *testing.T) {
	var nilTr *Trace
	nilTr.SpliceRemote(PhaseShardHop, 0, 0, 9, nil) // must not panic

	tr := NewTrace(nil)
	tr.SpliceRemote(PhaseShardHop, 0, 0, 9, nil) // no open span
	if n := len(tr.Spans()); n != 0 {
		t.Errorf("splice outside any open span recorded %d spans", n)
	}
}

// FuzzTraceWireDecode throws arbitrary bytes at the decoder: it must
// never panic, any error must wrap ErrCorrupt, and an accepted input
// must re-encode to exactly the bytes that were decoded (unique
// encoding — the decoder accepts nothing the encoder would not emit).
func FuzzTraceWireDecode(f *testing.F) {
	wire, err := sampleTrace().EncodeWire()
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i <= len(wire); i++ {
		f.Add(wire[:i])
	}
	f.Add([]byte("DMTW"))
	f.Add([]byte{'D', 'M', 'T', 'W', 1, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Fuzz(func(t *testing.T, data []byte) {
		wt, err := DecodeTraceWire(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		rt := &Trace{spans: wt.Spans}
		out, err := rt.EncodeWire()
		if err != nil {
			t.Fatalf("re-encoding an accepted wire: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("decode/encode not the identity:\n in: %x\nout: %x", data, out)
		}
	})
}
