package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestRegistryCountersGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("queries_total", "total queries")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("queries_total", "") != c {
		t.Error("re-registration returned a different counter")
	}

	g := r.Gauge("resident_tiles", "tiles resident")
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}

	r.GaugeFunc("cache_bytes", "bytes held", func() int64 { return 42 })

	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("queries_total", "")
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1 << 20, 20}, {1 << 45, histBuckets}}
	for _, c := range cases {
		if got := bucketIndex(c.v); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.v, got, c.want)
		}
		if c.want < histBuckets && c.v > BucketBound(c.want) {
			t.Errorf("value %d above its bucket bound %d", c.v, BucketBound(c.want))
		}
	}

	h := &Histogram{}
	for _, v := range []uint64{0, 1, 2, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 1103 {
		t.Errorf("count=%d sum=%d, want 5/1103", s.Count, s.Sum)
	}
}

func TestWritePrometheusParses(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second").Add(2)
	r.Counter("a_total", "first").Add(1)
	h := r.Histogram("query_da", "disk accesses per query")
	h.Observe(3)
	h.Observe(300)
	r.GaugeFunc("resident", "resident tiles", func() int64 { return 9 })

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	// Minimal exposition-format validation: every non-comment line is
	// "name{labels} value", HELP/TYPE precede samples, metrics sorted.
	var lastMetric string
	var cum uint64
	sawInf := false
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			parts := strings.Fields(line)
			if len(parts) < 3 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				t.Errorf("malformed comment line %q", line)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("sample line %q: want 2 fields", line)
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if base < lastMetric {
			t.Errorf("metrics out of order: %q after %q", base, lastMetric)
		}
		lastMetric = base
		var v uint64
		if _, err := fmt.Sscan(fields[1], &v); err != nil {
			t.Errorf("sample %q: non-numeric value: %v", line, err)
		}
		if strings.HasSuffix(name, "_bucket") {
			if v < cum && !sawInf {
				t.Errorf("histogram buckets not cumulative at %q", line)
			}
			cum = v
			if strings.Contains(fields[0], "+Inf") {
				sawInf = true
			}
		}
	}
	if !sawInf {
		t.Error("histogram missing +Inf bucket")
	}
	if !strings.Contains(text, "query_da_sum 303") || !strings.Contains(text, "query_da_count 2") {
		t.Errorf("histogram sum/count missing:\n%s", text)
	}
	if !strings.Contains(text, "resident 9") {
		t.Errorf("gauge func missing:\n%s", text)
	}
}

func TestWriteJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "").Add(3)
	r.Counter("a_total", "").Add(1)
	r.Histogram("lat", "").Observe(5)

	var b1, b2 bytes.Buffer
	if err := r.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Errorf("back-to-back JSON encodings differ:\n%s\n%s", b1.String(), b2.String())
	}
	var m map[string]any
	if err := json.Unmarshal(b1.Bytes(), &m); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(m) != 3 {
		t.Errorf("got %d metrics, want 3", len(m))
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("shared_total", "").Inc()
				r.Histogram("shared_hist", "").Observe(uint64(j))
				r.Counter(fmt.Sprintf("own_%d_total", i), "").Inc()
				var buf bytes.Buffer
				_ = r.WritePrometheus(&buf)
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("shared_total", "").Value(); got != 1600 {
		t.Errorf("shared counter = %d, want 1600", got)
	}
}
