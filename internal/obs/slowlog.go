package obs

import (
	"encoding/base64"
	"sort"
	"sync"
	"time"
)

// SlowEntry is one slow-query record: what ran, what it cost, and the
// full per-phase breakdown of where the cost went.
type SlowEntry struct {
	Seq    uint64        `json:"seq"` // monotone intake order
	Query  string        `json:"query"`
	When   time.Time     `json:"when"`
	Dur    time.Duration `json:"nanos"`
	DA     uint64        `json:"disk_accesses"`
	Phases []PhaseStat   `json:"phases,omitempty"`

	// TraceWire is the base64 TraceWire encoding of the full span tree,
	// when the observed trace had one — the drill-down a cluster-merged
	// slow log carries across process boundaries (DecodeTraceWire on the
	// decoded bytes recovers every span).
	TraceWire string `json:"trace_wire,omitempty"`
}

// SlowLog is a fixed-capacity ring buffer of queries slower than a
// threshold. Safe for concurrent use.
type SlowLog struct {
	mu        sync.Mutex
	threshold time.Duration
	ring      []SlowEntry
	next      int // ring insertion point
	n         int // entries held (<= cap)
	seq       uint64
}

// NewSlowLog returns a slow log holding the capacity most recent
// entries with duration >= threshold. Capacity must be positive.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity <= 0 {
		capacity = 1
	}
	return &SlowLog{threshold: threshold, ring: make([]SlowEntry, capacity)}
}

// Threshold reports the current admission threshold.
func (l *SlowLog) Threshold() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.threshold
}

// SetThreshold changes the admission threshold for future observations.
func (l *SlowLog) SetThreshold(d time.Duration) {
	l.mu.Lock()
	l.threshold = d
	l.mu.Unlock()
}

// Observe records a finished query if it met the threshold. The phase
// breakdown is copied out of tr (which may be nil or about to be
// reset), so entries stay valid after the trace is reused.
func (l *SlowLog) Observe(query string, dur time.Duration, da uint64, tr *Trace) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if dur < l.threshold {
		return
	}
	l.seq++
	var wire string
	if len(tr.Spans()) > 0 {
		// Encoding fails only on a trace with open spans — an entry for a
		// query that is somehow still running keeps its breakdown and just
		// drops the span tree.
		if buf, err := tr.EncodeWire(); err == nil {
			wire = base64.StdEncoding.EncodeToString(buf)
		}
	}
	l.ring[l.next] = SlowEntry{
		Seq:       l.seq,
		Query:     query,
		When:      time.Now(),
		Dur:       dur,
		DA:        da,
		Phases:    tr.PhaseStats(),
		TraceWire: wire,
	}
	l.next = (l.next + 1) % len(l.ring)
	if l.n < len(l.ring) {
		l.n++
	}
}

// Worst returns up to n retained entries, slowest first; ties break on
// intake order (newer first) so the result is deterministic.
func (l *SlowLog) Worst(n int) []SlowEntry {
	l.mu.Lock()
	out := make([]SlowEntry, 0, l.n)
	for i := 0; i < l.n; i++ {
		out = append(out, l.ring[i])
	}
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dur != out[j].Dur {
			return out[i].Dur > out[j].Dur
		}
		return out[i].Seq > out[j].Seq
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
