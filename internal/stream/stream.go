// Package stream is the progressive wire codec for query answers: a
// coarse base mesh followed by delta refinement batches in LOD order,
// the Devillers–Gandoin-style transmission path over the Direct Mesh
// property that every LOD prefix of the collapse sequence is a valid
// mesh. A stream for Q(r, e) carries one batch per LOD-ladder rung from
// the coarsest rung down to the rung e snaps to; decoding any batch
// prefix yields exactly the direct query answer at that prefix's rung,
// and decoding all batches reproduces the direct answer at the snapped
// target bit for bit.
//
// Wire layout (little endian; uvarint/varint are encoding/binary's):
//
//	header:
//	  magic "DMPS", version uvarint (1)
//	  ROI rect (4 x float64 bits), target E (float64 bits)
//	  batch count uvarint
//	frame, repeated (one per batch, coarse to fine):
//	  payload length uvarint, then the payload:
//	    batch index uvarint, batch E (float64 bits)
//	    removed triangles  (triangle set)
//	    removed edges      (pair set)
//	    removed vertex IDs (id set)
//	    added vertex count uvarint, then per vertex (ID ascending):
//	      ID delta uvarint (vs previous added ID; absolute for the first)
//	      flags byte: bits 0..2 mark x/y/z as dyadic, bits 3..7 reserved
//	      x, y, z: zigzag-uvarint dyadic index when flagged (the packed
//	      record fast path, dm.DyadicIndex), else raw float64 bits
//	    added edges        (pair set)
//	    added triangles    (triangle set)
//
// The sets are delta-coded against already-transmitted IDs:
//
//	id set:       count uvarint; ascending IDs, first absolute then
//	              strictly positive deltas, all uvarint
//	pair set:     count uvarint; pairs (a, b) with a < b in ascending
//	              order; a as uvarint delta vs the previous pair's a,
//	              b as uvarint(b-a)
//	triangle set: count uvarint; canonical triangles (A < B < C) in
//	              ascending order; A as uvarint delta vs the previous
//	              A, then uvarint(B-A), uvarint(C-B)
//
// Every frame is length-prefixed, so a connection cut mid-frame is
// detectable: the decoder keeps the last complete batch and the client
// resumes by passing that batch index to the server, which re-sends the
// header and skips ahead.
package stream

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"dmesh/internal/dm"
	"dmesh/internal/geom"
	"dmesh/internal/obs"
)

const (
	streamMagic   = "DMPS"
	streamVersion = 1
	// maxFramePayload bounds a frame's declared payload length; far
	// above any real batch, far below anything that could balloon a
	// decoder fed a hostile length.
	maxFramePayload = 1 << 30
)

// ErrCorrupt marks stream bytes that cannot be a valid encoding (bad
// magic, non-canonical set ordering, references to vertices never
// transmitted). It is not recoverable by resuming.
var ErrCorrupt = errors.New("stream: corrupt stream")

// ErrTruncated marks a stream that ended before the announced batch
// count was delivered — a cut connection, not corruption. The decoder
// holds the last complete batch; re-request with resume=LastApplied()
// and Attach the new body to continue.
var ErrTruncated = errors.New("stream: truncated")

// zigzag maps signed values to unsigned so small magnitudes of either
// sign take short varints (dyadic indices can be negative).
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func appendF64(buf []byte, vs ...float64) []byte {
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// LevelsFor returns the coarse-to-fine batch schedule for a query whose
// target snapped onto ladder rung band: every rung from the ladder top
// (coarsest, largest E) down to the target rung, descending. The ladder
// is ascending, as tilecache.Grid publishes it.
func LevelsFor(ladder []float64, band int) ([]float64, error) {
	if band < 0 || band >= len(ladder) {
		return nil, fmt.Errorf("stream: band %d outside ladder of %d rungs", band, len(ladder))
	}
	levels := make([]float64, 0, len(ladder)-band)
	for i := len(ladder) - 1; i >= band; i-- {
		levels = append(levels, ladder[i])
	}
	return levels, nil
}

// meshState is the decoded-so-far mesh both codec ends keep in lockstep:
// the encoder deltas each batch against it, the decoder applies each
// batch to it.
type meshState struct {
	verts map[int64]geom.Point3
	edges map[[2]int64]struct{}
	tris  map[geom.Triangle]struct{}
}

func newMeshState() meshState {
	return meshState{
		verts: make(map[int64]geom.Point3),
		edges: make(map[[2]int64]struct{}),
		tris:  make(map[geom.Triangle]struct{}),
	}
}

// stateFromResult normalizes a query answer into set form: edges with
// endpoints ascending, triangles canonical. Degenerate elements are an
// encoder-input error, not a wire condition.
func stateFromResult(res *dm.Result) (meshState, error) {
	s := meshState{
		verts: make(map[int64]geom.Point3, len(res.Vertices)),
		edges: make(map[[2]int64]struct{}, len(res.Edges)),
		tris:  make(map[geom.Triangle]struct{}, len(res.Triangles)),
	}
	for id, p := range res.Vertices {
		if id < 0 {
			return meshState{}, fmt.Errorf("stream: negative vertex ID %d", id)
		}
		s.verts[id] = p
	}
	for _, e := range res.Edges {
		a, b := e[0], e[1]
		if a > b {
			a, b = b, a
		}
		if a == b {
			return meshState{}, fmt.Errorf("stream: degenerate edge (%d,%d)", e[0], e[1])
		}
		s.edges[[2]int64{a, b}] = struct{}{}
	}
	for _, t := range res.Triangles {
		c := t.Canon()
		if c.A >= c.B || c.B >= c.C {
			return meshState{}, fmt.Errorf("stream: degenerate triangle (%d,%d,%d)", t.A, t.B, t.C)
		}
		s.tris[c] = struct{}{}
	}
	return s, nil
}

// result materializes the state as a dm.Result in the canonical shape
// queries produce: edges endpoint- then lexicographically sorted,
// triangles canonical and sorted.
func (s meshState) result() *dm.Result {
	res := &dm.Result{
		Vertices:  make(map[int64]geom.Point3, len(s.verts)),
		Edges:     make([][2]int64, 0, len(s.edges)),
		Triangles: make([]geom.Triangle, 0, len(s.tris)),
	}
	for id, p := range s.verts {
		res.Vertices[id] = p
	}
	for e := range s.edges {
		res.Edges = append(res.Edges, e)
	}
	sort.Slice(res.Edges, func(i, j int) bool {
		if res.Edges[i][0] != res.Edges[j][0] {
			return res.Edges[i][0] < res.Edges[j][0]
		}
		return res.Edges[i][1] < res.Edges[j][1]
	})
	for t := range s.tris {
		res.Triangles = append(res.Triangles, t)
	}
	sort.Slice(res.Triangles, func(i, j int) bool {
		a, b := res.Triangles[i], res.Triangles[j]
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return a.C < b.C
	})
	return res
}

// Encoder turns the per-rung query answers of one ROI into the
// progressive wire form. Feed it the answers coarse to fine — one
// EncodeNext per level, in the order NewEncoder was given them.
type Encoder struct {
	rect   geom.Rect
	levels []float64
	idx    int
	prev   meshState
}

// NewEncoder prepares an encoder for a stream of len(levels) batches.
// levels must be strictly descending (coarse to fine); the last one is
// the stream's target E.
func NewEncoder(rect geom.Rect, levels []float64) (*Encoder, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("stream: no levels")
	}
	for i, e := range levels {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			return nil, fmt.Errorf("stream: level %d is %g", i, e)
		}
		if i > 0 && levels[i] >= levels[i-1] {
			return nil, fmt.Errorf("stream: levels not strictly descending at %d (%g >= %g)",
				i, levels[i], levels[i-1])
		}
	}
	return &Encoder{
		rect:   rect,
		levels: append([]float64(nil), levels...),
		prev:   newMeshState(),
	}, nil
}

// NumBatches returns the stream's batch count.
func (e *Encoder) NumBatches() int { return len(e.levels) }

// TargetE returns the finest level — the LOD the full stream decodes to.
func (e *Encoder) TargetE() float64 { return e.levels[len(e.levels)-1] }

// Header returns the stream header bytes. Send once, before any frame.
func (e *Encoder) Header() []byte {
	buf := make([]byte, 0, 64)
	buf = append(buf, streamMagic...)
	buf = binary.AppendUvarint(buf, streamVersion)
	buf = appendF64(buf, e.rect.MinX, e.rect.MinY, e.rect.MaxX, e.rect.MaxY, e.TargetE())
	buf = binary.AppendUvarint(buf, uint64(len(e.levels)))
	return buf
}

// EncodeNext encodes the next batch: the delta from the previous level's
// answer to mesh, which must be the query answer at the next level of
// the schedule. Returns the complete frame (length prefix included).
func (e *Encoder) EncodeNext(mesh *dm.Result) ([]byte, error) {
	if e.idx >= len(e.levels) {
		return nil, fmt.Errorf("stream: EncodeNext past the %d scheduled batches", len(e.levels))
	}
	next, err := stateFromResult(mesh)
	if err != nil {
		return nil, err
	}
	payload, err := encodeBatch(e.idx, e.levels[e.idx], e.prev, next)
	if err != nil {
		return nil, err
	}
	e.prev = next
	e.idx++
	frame := binary.AppendUvarint(make([]byte, 0, len(payload)+4), uint64(len(payload)))
	return append(frame, payload...), nil
}

// EncodeNextTraced is EncodeNext inside a PhaseStreamEncode span on tr
// (which may be nil) — pure CPU, so the span carries wall time and zero
// DA, keeping a traced stream's encode cost visible next to the rung
// queries that feed it.
func (e *Encoder) EncodeNextTraced(mesh *dm.Result, tr *obs.Trace) ([]byte, error) {
	tr.Begin(obs.PhaseStreamEncode)
	defer tr.End()
	return e.EncodeNext(mesh)
}

// encodeBatch serializes the prev -> next delta as one frame payload.
func encodeBatch(idx int, level float64, prev, next meshState) ([]byte, error) {
	var remVerts, addVerts []int64
	for id := range prev.verts {
		if _, ok := next.verts[id]; !ok {
			remVerts = append(remVerts, id)
		}
	}
	for id, p := range next.verts {
		if q, ok := prev.verts[id]; ok {
			// A refinement only splits vertices; the codec has no "move"
			// delta, so a changed position cannot be expressed.
			if math.Float64bits(p.X) != math.Float64bits(q.X) ||
				math.Float64bits(p.Y) != math.Float64bits(q.Y) ||
				math.Float64bits(p.Z) != math.Float64bits(q.Z) {
				return nil, fmt.Errorf("stream: vertex %d moved between levels", id)
			}
			continue
		}
		addVerts = append(addVerts, id)
	}
	sortIDs := func(ids []int64) { sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] }) }
	sortIDs(remVerts)
	sortIDs(addVerts)

	var remEdges, addEdges [][2]int64
	for e := range prev.edges {
		if _, ok := next.edges[e]; !ok {
			remEdges = append(remEdges, e)
		}
	}
	for e := range next.edges {
		if _, ok := prev.edges[e]; !ok {
			addEdges = append(addEdges, e)
		}
	}
	sortPairs := func(ps [][2]int64) {
		sort.Slice(ps, func(i, j int) bool {
			if ps[i][0] != ps[j][0] {
				return ps[i][0] < ps[j][0]
			}
			return ps[i][1] < ps[j][1]
		})
	}
	sortPairs(remEdges)
	sortPairs(addEdges)

	var remTris, addTris []geom.Triangle
	for t := range prev.tris {
		if _, ok := next.tris[t]; !ok {
			remTris = append(remTris, t)
		}
	}
	for t := range next.tris {
		if _, ok := prev.tris[t]; !ok {
			addTris = append(addTris, t)
		}
	}
	sortTris := func(ts []geom.Triangle) {
		sort.Slice(ts, func(i, j int) bool {
			if ts[i].A != ts[j].A {
				return ts[i].A < ts[j].A
			}
			if ts[i].B != ts[j].B {
				return ts[i].B < ts[j].B
			}
			return ts[i].C < ts[j].C
		})
	}
	sortTris(remTris)
	sortTris(addTris)

	buf := make([]byte, 0, 16+len(addVerts)*16+(len(remEdges)+len(addEdges))*4+(len(remTris)+len(addTris))*5)
	buf = binary.AppendUvarint(buf, uint64(idx))
	buf = appendF64(buf, level)
	buf = appendTriSet(buf, remTris)
	buf = appendPairSet(buf, remEdges)
	buf = appendIDSet(buf, remVerts)

	buf = binary.AppendUvarint(buf, uint64(len(addVerts)))
	prevID := int64(0)
	for i, id := range addVerts {
		if i == 0 {
			buf = binary.AppendUvarint(buf, uint64(id))
		} else {
			buf = binary.AppendUvarint(buf, uint64(id-prevID))
		}
		prevID = id
		p := next.verts[id]
		var flags byte
		var dy [3]int64
		for ci, v := range [3]float64{p.X, p.Y, p.Z} {
			if m, ok := dm.DyadicIndex(v); ok {
				flags |= 1 << ci
				dy[ci] = m
			}
		}
		buf = append(buf, flags)
		for ci, v := range [3]float64{p.X, p.Y, p.Z} {
			if flags&(1<<ci) != 0 {
				buf = binary.AppendUvarint(buf, zigzag(dy[ci]))
			} else {
				buf = appendF64(buf, v)
			}
		}
	}

	buf = appendPairSet(buf, addEdges)
	buf = appendTriSet(buf, addTris)
	return buf, nil
}

func appendIDSet(buf []byte, ids []int64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	prev := int64(0)
	for i, id := range ids {
		if i == 0 {
			buf = binary.AppendUvarint(buf, uint64(id))
		} else {
			buf = binary.AppendUvarint(buf, uint64(id-prev))
		}
		prev = id
	}
	return buf
}

func appendPairSet(buf []byte, ps [][2]int64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ps)))
	prevA := int64(0)
	for _, p := range ps {
		buf = binary.AppendUvarint(buf, uint64(p[0]-prevA))
		buf = binary.AppendUvarint(buf, uint64(p[1]-p[0]))
		prevA = p[0]
	}
	return buf
}

func appendTriSet(buf []byte, ts []geom.Triangle) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ts)))
	prevA := int64(0)
	for _, t := range ts {
		buf = binary.AppendUvarint(buf, uint64(t.A-prevA))
		buf = binary.AppendUvarint(buf, uint64(t.B-t.A))
		buf = binary.AppendUvarint(buf, uint64(t.C-t.B))
		prevA = t.A
	}
	return buf
}

// Stream is one fully encoded progressive answer — the convenience form
// for callers that have all per-level answers in hand (experiments, the
// cluster router, tests).
type Stream struct {
	Rect   geom.Rect
	Levels []float64 // coarse to fine; the last is the target
	Header []byte
	Frames [][]byte // one frame per level, same order
}

// Encode builds the full stream for meshes[i] = Q(rect, levels[i]).
func Encode(rect geom.Rect, levels []float64, meshes []*dm.Result) (*Stream, error) {
	if len(meshes) != len(levels) {
		return nil, fmt.Errorf("stream: %d meshes for %d levels", len(meshes), len(levels))
	}
	enc, err := NewEncoder(rect, levels)
	if err != nil {
		return nil, err
	}
	s := &Stream{
		Rect:   rect,
		Levels: append([]float64(nil), levels...),
		Header: enc.Header(),
		Frames: make([][]byte, 0, len(meshes)),
	}
	for _, m := range meshes {
		f, err := enc.EncodeNext(m)
		if err != nil {
			return nil, err
		}
		s.Frames = append(s.Frames, f)
	}
	return s, nil
}

// BytesToFirstFrame is the cost of a first renderable mesh: header plus
// the coarsest batch.
func (s *Stream) BytesToFirstFrame() int {
	n := len(s.Header)
	if len(s.Frames) > 0 {
		n += len(s.Frames[0])
	}
	return n
}

// BytesToExact is the cost of the exact answer: header plus every batch.
func (s *Stream) BytesToExact() int {
	n := len(s.Header)
	for _, f := range s.Frames {
		n += len(f)
	}
	return n
}

// WriteTo writes the resume protocol's bytes: the header, then every
// frame after batch index resume (-1 sends all). Returns bytes written.
func (s *Stream) WriteTo(w io.Writer, resume int) (int, error) {
	if resume < -1 || resume >= len(s.Frames) {
		return 0, fmt.Errorf("stream: resume index %d outside [-1, %d)", resume, len(s.Frames))
	}
	total := 0
	n, err := w.Write(s.Header)
	total += n
	if err != nil {
		return total, err
	}
	for _, f := range s.Frames[resume+1:] {
		n, err := w.Write(f)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
