package stream

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"dmesh/internal/dm"
	"dmesh/internal/geom"
)

// Decoder reconstructs a progressive stream batch by batch. After any
// number of Next calls, Mesh() is the exact direct-query answer at the
// last applied batch's LOD; after NumBatches successful calls it is the
// exact answer at the stream's target.
//
// Truncation is recoverable: a Next that fails with ErrTruncated leaves
// the decoder at the last complete batch. Re-request the stream with
// resume=LastApplied() and Attach the new response body; the decoder
// verifies the re-sent header matches and continues where it stopped.
type Decoder struct {
	r         io.Reader
	started   bool
	rect      geom.Rect
	targetE   float64
	nBatches  int
	next      int
	lastE     float64
	bytesRead int64
	bytesAt1  int64 // bytesRead when the first batch completed
	state     meshState
	sticky    error
}

// NewDecoder returns an empty decoder; Attach a response body to start.
func NewDecoder() *Decoder {
	return &Decoder{state: newMeshState()}
}

// read pulls exactly len(p) bytes, counting them.
func (d *Decoder) read(p []byte) error {
	n, err := io.ReadFull(d.r, p)
	d.bytesRead += int64(n)
	return err
}

// ReadByte makes the decoder its own io.ByteReader for the frame length
// varints, so no buffering reader sits between it and the body (a
// buffered reader would over-read past frame boundaries and break the
// byte accounting).
func (d *Decoder) ReadByte() (byte, error) {
	var b [1]byte
	if err := d.read(b[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return 0, err
	}
	return b[0], nil
}

// Attach starts reading from r: it consumes and validates the stream
// header. The first Attach fixes the stream identity (ROI, target,
// batch count); later Attaches — resumed requests — must match it.
func (d *Decoder) Attach(r io.Reader) error {
	if d.sticky != nil {
		return d.sticky
	}
	d.r = r
	magic := make([]byte, len(streamMagic))
	if err := d.read(magic); err != nil {
		return fmt.Errorf("stream: reading header: %w", ErrTruncated)
	}
	if string(magic) != streamMagic {
		return d.poison(fmt.Errorf("stream: bad magic %q: %w", magic, ErrCorrupt))
	}
	version, err := binary.ReadUvarint(d)
	if err != nil {
		return fmt.Errorf("stream: reading header: %w", ErrTruncated)
	}
	if version != streamVersion {
		return d.poison(fmt.Errorf("stream: unsupported version %d: %w", version, ErrCorrupt))
	}
	var f [5]float64
	raw := make([]byte, 8*len(f))
	if err := d.read(raw); err != nil {
		return fmt.Errorf("stream: reading header: %w", ErrTruncated)
	}
	for i := range f {
		f[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	n, err := binary.ReadUvarint(d)
	if err != nil {
		return fmt.Errorf("stream: reading header: %w", ErrTruncated)
	}
	rect := geom.Rect{MinX: f[0], MinY: f[1], MaxX: f[2], MaxY: f[3]}
	targetE := f[4]
	if n == 0 || n > maxFramePayload {
		return d.poison(fmt.Errorf("stream: impossible batch count %d: %w", n, ErrCorrupt))
	}
	if !d.started {
		d.started = true
		d.rect, d.targetE, d.nBatches = rect, targetE, int(n)
		return nil
	}
	if rect != d.rect || math.Float64bits(targetE) != math.Float64bits(d.targetE) || int(n) != d.nBatches {
		return d.poison(fmt.Errorf("stream: resumed header mismatch (rect %v target %g batches %d, want %v %g %d): %w",
			rect, targetE, n, d.rect, d.targetE, d.nBatches, ErrCorrupt))
	}
	return nil
}

func (d *Decoder) poison(err error) error {
	d.sticky = err
	return err
}

// Done reports whether every announced batch has been applied.
func (d *Decoder) Done() bool { return d.started && d.next >= d.nBatches }

// LastApplied returns the index of the last applied batch, -1 before the
// first — exactly the resume parameter a re-request needs.
func (d *Decoder) LastApplied() int { return d.next - 1 }

// NumBatches returns the announced batch count (0 before Attach).
func (d *Decoder) NumBatches() int { return d.nBatches }

// Rect returns the stream's ROI.
func (d *Decoder) Rect() geom.Rect { return d.rect }

// TargetE returns the LOD the full stream decodes to.
func (d *Decoder) TargetE() float64 { return d.targetE }

// LastE returns the LOD of the last applied batch — the LOD Mesh() is
// exact at. Zero before the first batch.
func (d *Decoder) LastE() float64 { return d.lastE }

// BytesRead returns the bytes consumed so far, summed across Attaches.
func (d *Decoder) BytesRead() int64 { return d.bytesRead }

// BytesToFirstFrame returns the bytes consumed when the first renderable
// mesh was complete (0 until then).
func (d *Decoder) BytesToFirstFrame() int64 { return d.bytesAt1 }

// Next reads and applies one batch, returning its index and LOD.
// io.EOF signals a completed stream (all batches applied); ErrTruncated
// a resumable cut; ErrCorrupt an unrecoverable encoding violation.
func (d *Decoder) Next() (int, float64, error) {
	if d.sticky != nil {
		return 0, 0, d.sticky
	}
	if !d.started {
		return 0, 0, fmt.Errorf("stream: Next before Attach")
	}
	if d.Done() {
		return 0, 0, io.EOF
	}
	length, err := binary.ReadUvarint(d)
	if err != nil {
		return 0, 0, fmt.Errorf("stream: frame %d: %w", d.next, ErrTruncated)
	}
	if length > maxFramePayload {
		return 0, 0, d.poison(fmt.Errorf("stream: frame %d declares %d bytes: %w", d.next, length, ErrCorrupt))
	}
	payload := make([]byte, length)
	if err := d.read(payload); err != nil {
		return 0, 0, fmt.Errorf("stream: frame %d: %w", d.next, ErrTruncated)
	}
	e, err := d.applyBatch(payload)
	if err != nil {
		return 0, 0, d.poison(err)
	}
	d.next++
	d.lastE = e
	if d.next == 1 {
		d.bytesAt1 = d.bytesRead
	}
	return d.next - 1, e, nil
}

// Mesh returns the decoded mesh at the last applied batch — a fresh
// Result in the canonical query-answer shape, safe to retain.
func (d *Decoder) Mesh() *dm.Result { return d.state.result() }

// frameReader is the bounds-checked cursor over one frame payload;
// every violation wraps ErrCorrupt.
type frameReader struct {
	b   []byte
	off int
	err error
}

func (r *frameReader) corrupt(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("stream: %s at offset %d: %w", what, r.off, ErrCorrupt)
	}
}

func (r *frameReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.corrupt("bad uvarint " + what)
		return 0
	}
	r.off += n
	return v
}

func (r *frameReader) f64(what string) float64 {
	if r.err != nil {
		return 0
	}
	if r.off+8 > len(r.b) {
		r.corrupt("truncated float " + what)
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.b[r.off:]))
	r.off += 8
	return v
}

func (r *frameReader) byte(what string) byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.corrupt("truncated " + what)
		return 0
	}
	b := r.b[r.off]
	r.off++
	return b
}

// count reads a collection length and sanity-bounds it against the
// bytes remaining (each element takes at least minBytes on the wire).
func (r *frameReader) count(what string, minBytes int) int {
	v := r.uvarint(what)
	if r.err != nil {
		return 0
	}
	if v > uint64(len(r.b)-r.off)/uint64(minBytes) {
		r.corrupt("impossible count " + what)
		return 0
	}
	return int(v)
}

// idSet reads an ascending ID set (first absolute, then strictly
// positive deltas).
func (r *frameReader) idSet(what string) []int64 {
	n := r.count(what, 1)
	if n == 0 {
		return nil
	}
	ids := make([]int64, 0, n)
	prev := int64(0)
	for i := 0; i < n && r.err == nil; i++ {
		d := r.uvarint(what + " delta")
		if r.err != nil {
			break
		}
		if i > 0 && d == 0 {
			r.corrupt("non-ascending " + what)
			break
		}
		if d > math.MaxInt64 || prev > math.MaxInt64-int64(d) {
			r.corrupt("overflowing " + what)
			break
		}
		prev += int64(d)
		ids = append(ids, prev)
	}
	return ids
}

// pairSet reads ascending (a, b) pairs with a < b.
func (r *frameReader) pairSet(what string) [][2]int64 {
	n := r.count(what, 2)
	if n == 0 {
		return nil
	}
	ps := make([][2]int64, 0, n)
	prevA, prevB := int64(0), int64(-1)
	for i := 0; i < n && r.err == nil; i++ {
		da := r.uvarint(what + " a")
		db := r.uvarint(what + " b")
		if r.err != nil {
			break
		}
		if da > math.MaxInt64 || prevA > math.MaxInt64-int64(da) || db == 0 || db > math.MaxInt64 {
			r.corrupt("bad pair in " + what)
			break
		}
		a := prevA + int64(da)
		if a > math.MaxInt64-int64(db) {
			r.corrupt("overflowing " + what)
			break
		}
		b := a + int64(db)
		if i > 0 && da == 0 && b <= prevB {
			r.corrupt("non-ascending " + what)
			break
		}
		ps = append(ps, [2]int64{a, b})
		prevA, prevB = a, b
	}
	return ps
}

// triSet reads ascending canonical (A, B, C) triangles with A < B < C.
func (r *frameReader) triSet(what string) []geom.Triangle {
	n := r.count(what, 3)
	if n == 0 {
		return nil
	}
	ts := make([]geom.Triangle, 0, n)
	prevA, prevB, prevC := int64(0), int64(-1), int64(-1)
	for i := 0; i < n && r.err == nil; i++ {
		da := r.uvarint(what + " a")
		db := r.uvarint(what + " b")
		dc := r.uvarint(what + " c")
		if r.err != nil {
			break
		}
		if da > math.MaxInt64 || prevA > math.MaxInt64-int64(da) ||
			db == 0 || db > math.MaxInt64 || dc == 0 || dc > math.MaxInt64 {
			r.corrupt("bad triangle in " + what)
			break
		}
		a := prevA + int64(da)
		if a > math.MaxInt64-int64(db) {
			r.corrupt("overflowing " + what)
			break
		}
		b := a + int64(db)
		if b > math.MaxInt64-int64(dc) {
			r.corrupt("overflowing " + what)
			break
		}
		c := b + int64(dc)
		if i > 0 && da == 0 && (b < prevB || (b == prevB && c <= prevC)) {
			r.corrupt("non-ascending " + what)
			break
		}
		ts = append(ts, geom.Triangle{A: a, B: b, C: c})
		prevA, prevB, prevC = a, b, c
	}
	return ts
}

// applyBatch parses one frame payload and applies it to the state,
// returning the batch's LOD. Membership violations (removing what was
// never sent, re-adding what exists) are corruption: the two codec ends
// have diverged and no resume can fix that.
func (d *Decoder) applyBatch(payload []byte) (float64, error) {
	r := &frameReader{b: payload}
	idx := r.uvarint("batch index")
	e := r.f64("batch e")
	if r.err != nil {
		return 0, r.err
	}
	if idx != uint64(d.next) {
		return 0, fmt.Errorf("stream: batch %d arrived, expected %d: %w", idx, d.next, ErrCorrupt)
	}
	if d.next > 0 && e >= d.lastE {
		return 0, fmt.Errorf("stream: batch %d does not refine (E %g after %g): %w", idx, e, d.lastE, ErrCorrupt)
	}
	if int(idx) == d.nBatches-1 && math.Float64bits(e) != math.Float64bits(d.targetE) {
		return 0, fmt.Errorf("stream: final batch E %g, header target %g: %w", e, d.targetE, ErrCorrupt)
	}

	remTris := r.triSet("removed triangles")
	remEdges := r.pairSet("removed edges")
	remVerts := r.idSet("removed vertices")

	nAdd := r.count("added vertices", 5)
	type addedVert struct {
		id int64
		p  geom.Point3
	}
	adds := make([]addedVert, 0, nAdd)
	prevID := int64(0)
	for i := 0; i < nAdd && r.err == nil; i++ {
		dID := r.uvarint("added vertex id")
		if r.err != nil {
			break
		}
		if (i > 0 && dID == 0) || dID > math.MaxInt64 || prevID > math.MaxInt64-int64(dID) {
			r.corrupt("non-ascending added vertex ids")
			break
		}
		prevID += int64(dID)
		flags := r.byte("vertex flags")
		if r.err != nil {
			break
		}
		if flags&^0x07 != 0 {
			r.corrupt("reserved vertex flag bits")
			break
		}
		var c [3]float64
		for ci := 0; ci < 3; ci++ {
			if flags&(1<<ci) != 0 {
				m := unzigzag(r.uvarint("dyadic coordinate"))
				c[ci] = dm.FromDyadicIndex(m)
			} else {
				c[ci] = r.f64("coordinate")
			}
		}
		adds = append(adds, addedVert{id: prevID, p: geom.Point3{X: c[0], Y: c[1], Z: c[2]}})
	}

	addEdges := r.pairSet("added edges")
	addTris := r.triSet("added triangles")
	if r.err != nil {
		return 0, r.err
	}
	if r.off != len(r.b) {
		return 0, fmt.Errorf("stream: %d trailing bytes in batch %d: %w", len(r.b)-r.off, idx, ErrCorrupt)
	}

	for _, t := range remTris {
		if _, ok := d.state.tris[t]; !ok {
			return 0, fmt.Errorf("stream: batch %d removes unknown triangle (%d,%d,%d): %w", idx, t.A, t.B, t.C, ErrCorrupt)
		}
		delete(d.state.tris, t)
	}
	for _, p := range remEdges {
		if _, ok := d.state.edges[p]; !ok {
			return 0, fmt.Errorf("stream: batch %d removes unknown edge (%d,%d): %w", idx, p[0], p[1], ErrCorrupt)
		}
		delete(d.state.edges, p)
	}
	for _, id := range remVerts {
		if _, ok := d.state.verts[id]; !ok {
			return 0, fmt.Errorf("stream: batch %d removes unknown vertex %d: %w", idx, id, ErrCorrupt)
		}
		delete(d.state.verts, id)
	}
	for _, av := range adds {
		if _, ok := d.state.verts[av.id]; ok {
			return 0, fmt.Errorf("stream: batch %d re-adds vertex %d: %w", idx, av.id, ErrCorrupt)
		}
		d.state.verts[av.id] = av.p
	}
	for _, p := range addEdges {
		if _, ok := d.state.edges[p]; ok {
			return 0, fmt.Errorf("stream: batch %d re-adds edge (%d,%d): %w", idx, p[0], p[1], ErrCorrupt)
		}
		if _, ok := d.state.verts[p[0]]; !ok {
			return 0, fmt.Errorf("stream: batch %d edge references untransmitted vertex %d: %w", idx, p[0], ErrCorrupt)
		}
		if _, ok := d.state.verts[p[1]]; !ok {
			return 0, fmt.Errorf("stream: batch %d edge references untransmitted vertex %d: %w", idx, p[1], ErrCorrupt)
		}
		d.state.edges[p] = struct{}{}
	}
	for _, t := range addTris {
		if _, ok := d.state.tris[t]; ok {
			return 0, fmt.Errorf("stream: batch %d re-adds triangle (%d,%d,%d): %w", idx, t.A, t.B, t.C, ErrCorrupt)
		}
		for _, id := range [3]int64{t.A, t.B, t.C} {
			if _, ok := d.state.verts[id]; !ok {
				return 0, fmt.Errorf("stream: batch %d triangle references untransmitted vertex %d: %w", idx, id, ErrCorrupt)
			}
		}
		d.state.tris[t] = struct{}{}
	}
	return e, nil
}
