package stream_test

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"

	"dmesh"
	"dmesh/internal/dm"
	"dmesh/internal/geom"
	"dmesh/internal/stream"
	"dmesh/internal/tilecache"
)

var (
	fixOnce sync.Once
	fixes   map[string]*fixture
)

type fixture struct {
	terrain *dmesh.Terrain
	store   *dmesh.DMStore
	cache   *tilecache.Cache
}

// fix memoizes one terrain + store + tile cache per dataset; building
// (simplification above all) dominates test time.
func fix(t *testing.T, name string) *fixture {
	t.Helper()
	fixOnce.Do(func() {
		fixes = make(map[string]*fixture)
		for _, n := range []string{"highland", "crater"} {
			tr, err := dmesh.Build(dmesh.Config{Dataset: n, Size: 17, Seed: 7})
			if err != nil {
				panic(err)
			}
			s, err := tr.NewDMStore()
			if err != nil {
				panic(err)
			}
			c, err := tr.NewTileCache(s, 0)
			if err != nil {
				panic(err)
			}
			fixes[n] = &fixture{terrain: tr, store: s, cache: c}
		}
	})
	return fixes[name]
}

func randRects(rng *rand.Rand, n int) []geom.Rect {
	out := make([]geom.Rect, 0, n)
	for i := 0; i < n; i++ {
		w := 0.15 + rng.Float64()*0.5
		h := 0.15 + rng.Float64()*0.5
		x := rng.Float64() * (1 - w)
		y := rng.Float64() * (1 - h)
		out = append(out, geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h})
	}
	return out
}

// encodeStream builds the progressive stream for Q(roi, target) out of
// the fixture's tile cache, returning the stream and its levels.
func encodeStream(t *testing.T, f *fixture, roi geom.Rect, band int) *stream.Stream {
	t.Helper()
	levels, err := stream.LevelsFor(f.cache.Grid().Ladder(), band)
	if err != nil {
		t.Fatal(err)
	}
	meshes := make([]*dm.Result, 0, len(levels))
	for _, e := range levels {
		res, _, err := f.cache.Query(roi, e)
		if err != nil {
			t.Fatal(err)
		}
		meshes = append(meshes, res)
	}
	st, err := stream.Encode(roi, levels, meshes)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func flatten(st *stream.Stream) []byte {
	var buf bytes.Buffer
	buf.Write(st.Header)
	for _, f := range st.Frames {
		buf.Write(f)
	}
	return buf.Bytes()
}

// TestStreamPrefixExactness is the core property on both datasets:
// for random ROIs and LOD bands, decoding any batch prefix yields
// exactly (canonical serialization) the direct query answer at that
// prefix's rung, and the full stream reproduces the direct answer at
// the target. Run under -race by make streamcheck.
func TestStreamPrefixExactness(t *testing.T) {
	for _, name := range []string{"highland", "crater"} {
		t.Run(name, func(t *testing.T) {
			f := fix(t, name)
			ladder := f.cache.Grid().Ladder()
			rng := rand.New(rand.NewSource(11))
			for qi, roi := range randRects(rng, 6) {
				band := rng.Intn(len(ladder))
				st := encodeStream(t, f, roi, band)
				if got, want := len(st.Frames), len(ladder)-band; got != want {
					t.Fatalf("query %d: %d batches, want %d", qi, got, want)
				}
				if st.BytesToFirstFrame() >= st.BytesToExact() && len(st.Frames) > 1 {
					t.Fatalf("query %d: first frame (%d B) not cheaper than exact (%d B)",
						qi, st.BytesToFirstFrame(), st.BytesToExact())
				}

				dec := stream.NewDecoder()
				if err := dec.Attach(bytes.NewReader(flatten(st))); err != nil {
					t.Fatal(err)
				}
				for !dec.Done() {
					idx, e, err := dec.Next()
					if err != nil {
						t.Fatalf("query %d batch %d: %v", qi, idx, err)
					}
					direct, derr := f.store.ViewpointIndependent(roi, e)
					if derr != nil {
						t.Fatal(derr)
					}
					if !bytes.Equal(dm.CanonicalMesh(dec.Mesh()), dm.CanonicalMesh(direct)) {
						t.Fatalf("query %d: prefix through batch %d (E %g) differs from direct query", qi, idx, e)
					}
				}
				if _, _, err := dec.Next(); err != io.EOF {
					t.Fatalf("Next after completion: %v, want io.EOF", err)
				}
				if dec.LastE() != ladder[band] {
					t.Fatalf("final E %g, want rung %g", dec.LastE(), ladder[band])
				}
				if dec.BytesRead() != int64(st.BytesToExact()) {
					t.Fatalf("decoder consumed %d B, stream is %d B", dec.BytesRead(), st.BytesToExact())
				}
				if dec.BytesToFirstFrame() != int64(st.BytesToFirstFrame()) {
					t.Fatalf("decoder first-frame bytes %d, encoder says %d",
						dec.BytesToFirstFrame(), st.BytesToFirstFrame())
				}
			}
		})
	}
}

// TestStreamTruncationAndResume cuts one stream at a sweep of byte
// positions: the decoder must keep the last complete batch, report
// ErrTruncated (never panic, never corrupt state), and complete exactly
// after re-attaching a resumed body (header + the batches it lacks).
func TestStreamTruncationAndResume(t *testing.T) {
	f := fix(t, "highland")
	ladder := f.cache.Grid().Ladder()
	roi := geom.Rect{MinX: 0.2, MinY: 0.15, MaxX: 0.8, MaxY: 0.75}
	st := encodeStream(t, f, roi, 0) // deepest target: every rung
	full := flatten(st)
	direct, err := f.store.ViewpointIndependent(roi, ladder[0])
	if err != nil {
		t.Fatal(err)
	}
	want := dm.CanonicalMesh(direct)

	// Cut positions: every frame boundary, one byte to each side of it,
	// and a few interior points per frame.
	cuts := map[int]bool{0: true, 1: true, len(st.Header) - 1: true, len(st.Header): true}
	off := len(st.Header)
	for _, fr := range st.Frames {
		for _, c := range []int{off + 1, off + len(fr)/2, off + len(fr) - 1, off + len(fr)} {
			if c >= 0 && c <= len(full) {
				cuts[c] = true
			}
		}
		off += len(fr)
	}
	for cut := range cuts {
		dec := stream.NewDecoder()
		err := dec.Attach(bytes.NewReader(full[:cut]))
		if err != nil {
			if !errors.Is(err, stream.ErrTruncated) {
				t.Fatalf("cut %d: Attach: %v, want ErrTruncated", cut, err)
			}
		} else {
			for !dec.Done() {
				if _, _, err := dec.Next(); err != nil {
					if !errors.Is(err, stream.ErrTruncated) {
						t.Fatalf("cut %d: %v, want ErrTruncated", cut, err)
					}
					break
				}
			}
		}
		if dec.Done() {
			if cut != len(full) {
				t.Fatalf("cut %d: decoder done early", cut)
			}
			continue
		}

		// Resume: the server's protocol re-sends the header and skips
		// every batch the client confirmed.
		var resumed bytes.Buffer
		if _, err := st.WriteTo(&resumed, dec.LastApplied()); err != nil {
			t.Fatal(err)
		}
		if err := dec.Attach(&resumed); err != nil {
			t.Fatalf("cut %d: resumed Attach: %v", cut, err)
		}
		for !dec.Done() {
			if _, _, err := dec.Next(); err != nil {
				t.Fatalf("cut %d: resumed Next: %v", cut, err)
			}
		}
		if !bytes.Equal(dm.CanonicalMesh(dec.Mesh()), want) {
			t.Fatalf("cut %d: resumed stream decodes a different mesh", cut)
		}
	}
}

// TestStreamResumeHeaderMismatch: a resumed body for a different query
// must be rejected, not silently applied.
func TestStreamResumeHeaderMismatch(t *testing.T) {
	f := fix(t, "highland")
	roi := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.7, MaxY: 0.7}
	st := encodeStream(t, f, roi, 0)
	other := encodeStream(t, f, geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.5, MaxY: 0.5}, 0)

	dec := stream.NewDecoder()
	if err := dec.Attach(bytes.NewReader(flatten(st))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := dec.Next(); err != nil {
		t.Fatal(err)
	}
	if err := dec.Attach(bytes.NewReader(flatten(other))); !errors.Is(err, stream.ErrCorrupt) {
		t.Fatalf("mismatched resume header: %v, want ErrCorrupt", err)
	}
}

// TestStreamCorruptionRejected flips single bytes across one encoded
// stream: the decoder must never panic; any error must be ErrCorrupt or
// ErrTruncated. (A flip inside raw coordinate bits can decode to a
// different valid mesh — that is the quantizer's job to care about, not
// the framing's.)
func TestStreamCorruptionRejected(t *testing.T) {
	f := fix(t, "highland")
	roi := geom.Rect{MinX: 0.25, MinY: 0.25, MaxX: 0.7, MaxY: 0.6}
	full := flatten(encodeStream(t, f, roi, 0))
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		pos := rng.Intn(len(full))
		mut := append([]byte(nil), full...)
		mut[pos] ^= byte(1 + rng.Intn(255))
		dec := stream.NewDecoder()
		if err := dec.Attach(bytes.NewReader(mut)); err != nil {
			if !errors.Is(err, stream.ErrCorrupt) && !errors.Is(err, stream.ErrTruncated) {
				t.Fatalf("flip at %d: Attach: %v", pos, err)
			}
			continue
		}
		for !dec.Done() {
			if _, _, err := dec.Next(); err != nil {
				if !errors.Is(err, stream.ErrCorrupt) && !errors.Is(err, stream.ErrTruncated) {
					t.Fatalf("flip at %d: Next: %v", pos, err)
				}
				break
			}
		}
	}
}

// TestLevelsFor pins the batch schedule: coarse to fine, down to the
// target band, errors outside the ladder.
func TestLevelsFor(t *testing.T) {
	ladder := []float64{1, 2, 4, 8}
	levels, err := stream.LevelsFor(ladder, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 3 || levels[0] != 8 || levels[1] != 4 || levels[2] != 2 {
		t.Fatalf("LevelsFor(band 1) = %v", levels)
	}
	for _, band := range []int{-1, 4} {
		if _, err := stream.LevelsFor(ladder, band); err == nil {
			t.Fatalf("LevelsFor(band %d) succeeded", band)
		}
	}
}

// TestEncoderValidation pins the encoder's input contract.
func TestEncoderValidation(t *testing.T) {
	rect := geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	if _, err := stream.NewEncoder(rect, nil); err == nil {
		t.Fatal("NewEncoder with no levels succeeded")
	}
	if _, err := stream.NewEncoder(rect, []float64{1, 2}); err == nil {
		t.Fatal("NewEncoder with ascending levels succeeded")
	}
	enc, err := stream.NewEncoder(rect, []float64{2})
	if err != nil {
		t.Fatal(err)
	}
	empty := &dm.Result{Vertices: map[int64]geom.Point3{}}
	if _, err := enc.EncodeNext(empty); err != nil {
		t.Fatal(err)
	}
	if _, err := enc.EncodeNext(empty); err == nil {
		t.Fatal("EncodeNext past the schedule succeeded")
	}
}
