// Package heightfield generates synthetic digital elevation models (DEMs).
//
// The paper evaluates on two real datasets that are not redistributable: a
// 2-million-point terrain from a mining-survey company and the 17-million-
// point USGS "Crater Lake National Park" DEM. This package provides the
// closest synthetic equivalents: a ridged fractal highland terrain and a
// parametric crater overlaid with fractal detail. Both produce regular
// grids of (x, y, z) samples whose (x, y) distribution is uniform — the
// property the paper's indexing experiments depend on — while the z
// statistics drive realistic LOD skew after simplification.
package heightfield

import (
	"fmt"
	"math"
	"math/rand"

	"dmesh/internal/geom"
)

// Grid is a regular heightfield of Size x Size samples over the unit
// square. Heights are in arbitrary vertical units.
type Grid struct {
	Size int       // samples per side; >= 2
	Z    []float64 // row-major, len Size*Size
}

// NewGrid allocates a flat grid of the given side length.
func NewGrid(size int) *Grid {
	if size < 2 {
		panic(fmt.Sprintf("heightfield: grid size %d < 2", size))
	}
	return &Grid{Size: size, Z: make([]float64, size*size)}
}

// At returns the height at integer cell (i, j) with i indexing x and j
// indexing y.
func (g *Grid) At(i, j int) float64 { return g.Z[j*g.Size+i] }

// Set stores the height at cell (i, j).
func (g *Grid) Set(i, j int, z float64) { g.Z[j*g.Size+i] = z }

// XY returns the unit-square coordinates of cell (i, j).
func (g *Grid) XY(i, j int) (x, y float64) {
	d := float64(g.Size - 1)
	return float64(i) / d, float64(j) / d
}

// Points flattens the grid into 3D points over the unit square.
func (g *Grid) Points() []geom.Point3 {
	pts := make([]geom.Point3, 0, g.Size*g.Size)
	for j := 0; j < g.Size; j++ {
		for i := 0; i < g.Size; i++ {
			x, y := g.XY(i, j)
			pts = append(pts, geom.Point3{X: x, Y: y, Z: g.At(i, j)})
		}
	}
	return pts
}

// MinMax returns the lowest and highest sample in the grid.
func (g *Grid) MinMax() (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, z := range g.Z {
		if z < lo {
			lo = z
		}
		if z > hi {
			hi = z
		}
	}
	return lo, hi
}

// Normalize rescales heights into [0, scale].
func (g *Grid) Normalize(scale float64) {
	lo, hi := g.MinMax()
	span := hi - lo
	if span == 0 {
		for i := range g.Z {
			g.Z[i] = 0
		}
		return
	}
	for i := range g.Z {
		g.Z[i] = (g.Z[i] - lo) / span * scale
	}
}

// DiamondSquare fills a grid of side 2^k+1 with plasma-fractal terrain.
// roughness in (0, 1] controls how fast the displacement amplitude decays;
// larger values give more rugged terrain.
func DiamondSquare(k uint, roughness float64, seed int64) *Grid {
	size := (1 << k) + 1
	g := NewGrid(size)
	rng := rand.New(rand.NewSource(seed))

	// Seed corners.
	g.Set(0, 0, rng.Float64())
	g.Set(size-1, 0, rng.Float64())
	g.Set(0, size-1, rng.Float64())
	g.Set(size-1, size-1, rng.Float64())

	amp := 1.0
	for step := size - 1; step > 1; step /= 2 {
		half := step / 2
		// Diamond step.
		for j := half; j < size; j += step {
			for i := half; i < size; i += step {
				avg := (g.At(i-half, j-half) + g.At(i+half, j-half) +
					g.At(i-half, j+half) + g.At(i+half, j+half)) / 4
				g.Set(i, j, avg+(rng.Float64()*2-1)*amp)
			}
		}
		// Square step.
		for j := 0; j < size; j += half {
			start := half
			if (j/half)%2 == 1 {
				start = 0
			}
			for i := start; i < size; i += step {
				sum, n := 0.0, 0
				if i-half >= 0 {
					sum += g.At(i-half, j)
					n++
				}
				if i+half < size {
					sum += g.At(i+half, j)
					n++
				}
				if j-half >= 0 {
					sum += g.At(i, j-half)
					n++
				}
				if j+half < size {
					sum += g.At(i, j+half)
					n++
				}
				g.Set(i, j, sum/float64(n)+(rng.Float64()*2-1)*amp)
			}
		}
		amp *= roughness
	}
	return g
}

// valueNoise is smooth deterministic 2D noise built from a hashed integer
// lattice with bicubic-ish (smoothstep) interpolation. It avoids importing
// anything beyond the stdlib while giving usable fBm octaves.
type valueNoise struct {
	seed uint64
}

func (n valueNoise) lattice(ix, iy int64) float64 {
	h := uint64(ix)*0x9E3779B97F4A7C15 ^ uint64(iy)*0xC2B2AE3D27D4EB4F ^ n.seed
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return float64(h&((1<<53)-1)) / float64(int64(1)<<53) // [0,1)
}

func smooth(t float64) float64 { return t * t * (3 - 2*t) }

// at samples the noise at (x, y); output in [0, 1).
func (n valueNoise) at(x, y float64) float64 {
	ix, iy := math.Floor(x), math.Floor(y)
	fx, fy := x-ix, y-iy
	i, j := int64(ix), int64(iy)
	v00 := n.lattice(i, j)
	v10 := n.lattice(i+1, j)
	v01 := n.lattice(i, j+1)
	v11 := n.lattice(i+1, j+1)
	sx, sy := smooth(fx), smooth(fy)
	top := v00 + (v10-v00)*sx
	bot := v01 + (v11-v01)*sx
	return top + (bot-top)*sy
}

// fbm sums octaves of value noise; returns roughly [0, 1].
func fbm(n valueNoise, x, y float64, octaves int, lacunarity, gain float64) float64 {
	sum, amp, freq, norm := 0.0, 1.0, 1.0, 0.0
	for o := 0; o < octaves; o++ {
		sum += amp * n.at(x*freq, y*freq)
		norm += amp
		amp *= gain
		freq *= lacunarity
	}
	return sum / norm
}

// ridged turns fbm into sharp-ridge terrain: 1 - |2n-1| per octave.
func ridged(n valueNoise, x, y float64, octaves int, lacunarity, gain float64) float64 {
	sum, amp, freq, norm := 0.0, 1.0, 1.0, 0.0
	for o := 0; o < octaves; o++ {
		v := n.at(x*freq, y*freq)
		r := 1 - math.Abs(2*v-1)
		sum += amp * r * r
		norm += amp
		amp *= gain
		freq *= lacunarity
	}
	return sum / norm
}

// Highland synthesizes the stand-in for the paper's 2M-point mining-survey
// terrain: rugged ridged-fractal highland with broad relief. Heights are
// normalized to [0, 1].
func Highland(size int, seed int64) *Grid {
	g := NewGrid(size)
	n := valueNoise{seed: uint64(seed)*2654435761 + 1}
	base := valueNoise{seed: uint64(seed)*0x1000193 + 7}
	for j := 0; j < size; j++ {
		for i := 0; i < size; i++ {
			x, y := g.XY(i, j)
			relief := fbm(base, x*3, y*3, 4, 2.0, 0.5)
			ridge := ridged(n, x*6, y*6, 6, 2.0, 0.5)
			g.Set(i, j, 0.55*relief+0.45*ridge)
		}
	}
	g.Normalize(1)
	return g
}

// Crater synthesizes the stand-in for the USGS Crater Lake DEM: a ring
// ridge around a deep central basin (the caldera lake), with fractal detail
// on the flanks. Heights are normalized to [0, 1].
func Crater(size int, seed int64) *Grid {
	g := NewGrid(size)
	n := valueNoise{seed: uint64(seed)*0x9E3779B9 + 3}
	const (
		cx, cy     = 0.5, 0.5
		rimRadius  = 0.28 // radius of the caldera rim
		rimWidth   = 0.10
		lakeLevel  = 0.15
		rimHeight  = 1.0
		flankSlope = 1.6
	)
	for j := 0; j < size; j++ {
		for i := 0; i < size; i++ {
			x, y := g.XY(i, j)
			d := math.Hypot(x-cx, y-cy)
			var h float64
			switch {
			case d < rimRadius-rimWidth:
				// Inside the caldera: flat lake with slight bowl.
				h = lakeLevel - 0.05*(1-d/rimRadius)
			case d < rimRadius+rimWidth:
				// The rim: a smooth ridge peaking at rimRadius.
				t := (d - rimRadius) / rimWidth // [-1, 1]
				h = rimHeight * (1 - t*t)
			default:
				// Outer flanks falling off toward the edges.
				h = rimHeight * math.Exp(-flankSlope*(d-rimRadius-rimWidth)*3)
			}
			detail := fbm(n, x*8, y*8, 5, 2.0, 0.5)
			h += 0.25 * detail * (0.3 + d) // flanks are rougher than the lake
			g.Set(i, j, h)
		}
	}
	g.Normalize(1)
	return g
}

// Excavate digs a smooth circular depression centered at (cx, cy) (unit
// coordinates) with the given radius and depth — a synthetic terrain
// change (mining cut, crater, landslide scar) for multi-version analysis.
func (g *Grid) Excavate(cx, cy, radius, depth float64) {
	for j := 0; j < g.Size; j++ {
		for i := 0; i < g.Size; i++ {
			x, y := g.XY(i, j)
			d := math.Hypot(x-cx, y-cy)
			if d >= radius {
				continue
			}
			// Smooth bowl: full depth at the center, zero at the rim.
			t := d / radius
			g.Set(i, j, g.At(i, j)-depth*(1-t*t)*(1-t*t))
		}
	}
}

// Named builds one of the two benchmark datasets by name: "highland" (the
// 2M-point stand-in) or "crater" (the 17M-point stand-in).
func Named(name string, size int, seed int64) (*Grid, error) {
	switch name {
	case "highland":
		return Highland(size, seed), nil
	case "crater":
		return Crater(size, seed), nil
	default:
		return nil, fmt.Errorf("heightfield: unknown dataset %q (want highland or crater)", name)
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// HeightAt bilinearly interpolates the terrain height at unit-square
// coordinates (x, y), clamping outside samples to the border.
func (g *Grid) HeightAt(x, y float64) float64 {
	fx := clamp01(x) * float64(g.Size-1)
	fy := clamp01(y) * float64(g.Size-1)
	i0, j0 := int(fx), int(fy)
	i1, j1 := i0+1, j0+1
	if i1 >= g.Size {
		i1 = g.Size - 1
	}
	if j1 >= g.Size {
		j1 = g.Size - 1
	}
	tx, ty := fx-float64(i0), fy-float64(j0)
	top := g.At(i0, j0)*(1-tx) + g.At(i1, j0)*tx
	bot := g.At(i0, j1)*(1-tx) + g.At(i1, j1)*tx
	return top*(1-ty) + bot*ty
}

// SampleIrregular draws n survey-style sample points from the terrain:
// the four corners (so the hull covers the domain) plus uniformly random
// interior locations with bilinearly interpolated heights. This is the
// "irregular mesh" input modality of the paper's Section 1.
func (g *Grid) SampleIrregular(n int, seed int64) []geom.Point3 {
	if n < 4 {
		n = 4
	}
	rng := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point3, 0, n)
	for _, c := range [][2]float64{{0, 0}, {1, 0}, {0, 1}, {1, 1}} {
		pts = append(pts, geom.Point3{X: c[0], Y: c[1], Z: g.HeightAt(c[0], c[1])})
	}
	seen := make(map[[2]float64]bool, n)
	for len(pts) < n {
		x, y := rng.Float64(), rng.Float64()
		key := [2]float64{x, y}
		if seen[key] {
			continue
		}
		seen[key] = true
		pts = append(pts, geom.Point3{X: x, Y: y, Z: g.HeightAt(x, y)})
	}
	return pts
}

// Stats summarizes a grid for reporting.
type Stats struct {
	Points   int
	MinZ     float64
	MaxZ     float64
	MeanZ    float64
	StddevZ  float64
	RimIndex float64 // fraction of mass above 0.5, a crude shape signature
}

// Summarize computes summary statistics over the grid heights.
func Summarize(g *Grid) Stats {
	var s Stats
	s.Points = len(g.Z)
	s.MinZ, s.MaxZ = g.MinMax()
	var sum, sq float64
	above := 0
	for _, z := range g.Z {
		sum += z
		if z > 0.5 {
			above++
		}
	}
	s.MeanZ = sum / float64(s.Points)
	for _, z := range g.Z {
		d := z - s.MeanZ
		sq += d * d
	}
	s.StddevZ = math.Sqrt(sq / float64(s.Points))
	s.RimIndex = float64(above) / float64(s.Points)
	return s
}
